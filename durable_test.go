package nexus_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"nexus"
	"nexus/internal/server"
	"nexus/internal/storage"
)

// TestSessionOpenPersistDurable covers the public durability surface:
// Open a data directory as a provider, Persist an in-memory dataset
// onto it, observe the Durable flag in the catalog, and read the data
// back through a fresh session over the same directory.
func TestSessionOpenPersistDurable(t *testing.T) {
	dir := t.TempDir()

	s := nexus.NewSession()
	memName, err := s.AddEngine(nexus.Relational, "mem")
	if err != nil {
		t.Fatal(err)
	}
	durName, err := s.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store(memName, "sales", eventTable(0, 200)); err != nil {
		t.Fatal(err)
	}
	if err := s.Persist(durName, "sales"); err != nil {
		t.Fatal(err)
	}

	durables := map[string]bool{}
	for _, ds := range s.Datasets() {
		if ds.Name == "sales" {
			durables[ds.Provider] = ds.Durable
		}
	}
	if durables[memName] || !durables[durName] {
		t.Fatalf("durable flags wrong: %v", durables)
	}

	// Appends are durable too, and Scan resolves across providers (the
	// in-memory copy is found first; query the durable one explicitly
	// via a second session with only the directory attached).
	if err := s.Append(durName, "sales", eventTable(200, 250)); err != nil {
		t.Fatal(err)
	}

	s2 := nexus.NewSession()
	if _, err := s2.Open(dir); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Scan("sales").Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := eventTable(0, 250)
	if !tablesEqual(got, want) {
		t.Fatalf("reopened durable dataset differs: %d rows, want %d", got.NumRows(), want.NumRows())
	}
}

// TestDetachResumePerPartition locks down the per-partition resume
// offsets: a push-mode stream partitioned across two providers is
// detached mid-flight, the tokens report each partition's consumed
// prefix, and resuming from them completes the job with every window
// of an uninterrupted run present and byte-identical.
func TestDetachResumePerPartition(t *testing.T) {
	const totalRows = 40000
	mkQuery := func(s *nexus.Session) *nexus.StreamQuery {
		src, err := nexus.GenerateSource("ts", totalRows, func(i int64) []any {
			syms := []string{"AAA", "BBB", "CCC", "DDD"}
			return []any{i, syms[i%4], i % 100, float64(i%50) + 0.5}
		},
			nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
			nexus.ColumnDef{Name: "sym", Type: nexus.String},
			nexus.ColumnDef{Name: "vol", Type: nexus.Int64},
			nexus.ColumnDef{Name: "price", Type: nexus.Float64},
		)
		if err != nil {
			t.Fatal(err)
		}
		return s.StreamFrom(src).
			BatchSize(200).
			Window(nexus.Tumbling(1000)).
			GroupBy("sym").
			Agg(nexus.Count("n"), nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("vol")))).
			PartitionBy("sym")
	}

	s := nexus.NewSession()
	p1, _ := s.AddEngine(nexus.Relational, "p1")
	p2, _ := s.AddEngine(nexus.Relational, "p2")
	providers := []string{p1, p2}

	var mu sync.Mutex
	var recovered []*nexus.Table
	got2 := make(chan struct{})
	seen := 0
	rs, err := mkQuery(s).SubscribeRemoteDetachable(context.Background(), providers, func(tab *nexus.Table) error {
		mu.Lock()
		recovered = append(recovered, tab)
		seen++
		if seen == 2 {
			close(got2)
		}
		n := seen
		mu.Unlock()
		if n >= 2 {
			time.Sleep(10 * time.Millisecond) // backpressure: keep pipelines mid-stream
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-got2
	tokens, err := rs.Detach()
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 2 {
		t.Fatalf("detach returned %d tokens for 2 partitions", len(tokens))
	}
	var consumed int64
	for i, tok := range tokens {
		if tok.Provider != providers[i] || tok.Partition != i {
			t.Fatalf("token %d mislabeled: %+v", i, tok)
		}
		if tok.Offset() <= 0 {
			t.Fatalf("partition %d reports no resume offset", i)
		}
		consumed += tok.Offset()
	}
	if consumed >= totalRows {
		t.Fatalf("stream finished before detach (%d rows consumed); backpressure failed", consumed)
	}

	// Resume on the same providers from the tokens: the publisher skips
	// each partition's consumed prefix and the window state carries the
	// half-open windows across.
	stats, err := mkQuery(s).ResumeFrom(tokens).SubscribeRemote(context.Background(), providers, func(tab *nexus.Table) error {
		mu.Lock()
		recovered = append(recovered, tab)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != totalRows-consumed {
		t.Fatalf("resumed leg consumed %d events, want %d", stats.Events, totalRows-consumed)
	}

	// Reference: the same pipeline uninterrupted, in process.
	wantTab, err := mkQuery(s).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := map[string]string{}
	for r := 0; r < wantTab.NumRows(); r++ {
		key := cellString(wantTab, r, nexus.WindowStartCol) + "|" + cellString(wantTab, r, "sym")
		wantRows[key] = rowString(wantTab, r)
	}
	gotRows := map[string]string{}
	mu.Lock()
	for _, tab := range recovered {
		for r := 0; r < tab.NumRows(); r++ {
			key := cellString(tab, r, nexus.WindowStartCol) + "|" + cellString(tab, r, "sym")
			gotRows[key] = rowString(tab, r)
		}
	}
	mu.Unlock()
	if len(gotRows) != len(wantRows) {
		t.Fatalf("recovered %d distinct windows, uninterrupted run has %d", len(gotRows), len(wantRows))
	}
	for k, w := range wantRows {
		if g := gotRows[k]; g != w {
			t.Fatalf("window %s: got %s want %s", k, g, w)
		}
	}
}

// TestDurableCheckpointRetiredOnCompletion pins checkpoint pruning: a
// durable subscription that finishes its job must leave no checkpoint
// file behind, on every completion path — straight run to end-of-
// stream, detach-then-resume to end-of-stream, and an explicit cancel.
// Only involuntary exits (disconnects, errors) and detaches themselves
// may persist state.
func TestDurableCheckpointRetiredOnCompletion(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.OpenEngine("dur", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := server.ServeWithCheckpoints(eng, "127.0.0.1:0", eng.Backing(), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	defer srv.Close()

	const totalRows = 20000
	mkQuery := func(s *nexus.Session, durable string) *nexus.StreamQuery {
		src, err := nexus.GenerateSource("ts", totalRows, func(i int64) []any {
			syms := []string{"AAA", "BBB", "CCC", "DDD"}
			return []any{i, syms[i%4], float64(i%50) + 0.5}
		},
			nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
			nexus.ColumnDef{Name: "sym", Type: nexus.String},
			nexus.ColumnDef{Name: "price", Type: nexus.Float64},
		)
		if err != nil {
			t.Fatal(err)
		}
		return s.StreamFrom(src).
			BatchSize(200).
			Window(nexus.Tumbling(1000)).
			GroupBy("sym").
			Agg(nexus.Count("n"), nexus.Sum("rev", nexus.Col("price"))).
			Durable(durable)
	}
	noCheckpoint := func(t *testing.T, key string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, ok, err := eng.Backing().LoadCheckpoint(key); err == nil && !ok {
				return
			}
			if time.Now().After(deadline) {
				keys, _ := eng.Backing().Checkpoints()
				t.Fatalf("checkpoint %q still present after completion (stored: %v)", key, keys)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	s := nexus.NewSession()
	prov, err := s.ConnectTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	// Path 1: a durable subscription runs straight to end-of-stream.
	// The 1ms checkpoint timer persists state during the run; the clean
	// end must retire it.
	if _, err := mkQuery(s, "clean").SubscribeRemote(context.Background(), []string{prov}, func(*nexus.Table) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	noCheckpoint(t, "clean")

	// Path 2: detach mid-stream (the checkpoint must survive the detach
	// — that is the resumable handoff), then resume under the same name
	// to end-of-stream: the finished job retires it.
	var mu sync.Mutex
	seen := 0
	got2 := make(chan struct{})
	rs, err := mkQuery(s, "detached").SubscribeRemoteDetachable(context.Background(), []string{prov}, func(*nexus.Table) error {
		mu.Lock()
		seen++
		if seen == 2 {
			close(got2)
		}
		n := seen
		mu.Unlock()
		if n >= 2 {
			time.Sleep(10 * time.Millisecond) // backpressure: stay mid-stream
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-got2
	tokens, err := rs.Detach()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := eng.Backing().LoadCheckpoint("detached"); err != nil || !ok {
		t.Fatalf("detach did not persist its checkpoint: ok=%v err=%v", ok, err)
	}
	if _, err := mkQuery(s, "detached").ResumeFrom(tokens).SubscribeRemote(context.Background(), []string{prov}, func(*nexus.Table) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	noCheckpoint(t, "detached")

	// Path 3: an explicit cancel (the subscriber callback erroring makes
	// the client cancel the subscription) finishes the job too — the
	// checkpoint the timer wrote mid-run must not linger.
	wantErr := fmt.Errorf("subscriber bails out")
	canceled := 0
	_, err = mkQuery(s, "canceled").SubscribeRemote(context.Background(), []string{prov}, func(*nexus.Table) error {
		canceled++
		if canceled >= 2 {
			time.Sleep(20 * time.Millisecond) // let the checkpoint timer fire
			return wantErr
		}
		return nil
	})
	if err == nil {
		t.Fatal("canceled subscription reported no error")
	}
	noCheckpoint(t, "canceled")
}

// TestDurablePushResumeAfterDisconnect covers the server-side skip for
// push-mode durable subscriptions: the client's connection drops
// mid-stream, the server checkpoints the pipeline state (including the
// consumed-row offset the publisher never sees), and a re-subscription
// under the same durable name replays the source from the start while
// the server drops the consumed prefix — no window is lost and none is
// double-counted.
func TestDurablePushResumeAfterDisconnect(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.OpenEngine("dur", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := server.ServeWithCheckpoints(eng, "127.0.0.1:0", eng.Backing(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	defer srv.Close()

	const totalRows = 40000
	mkQuery := func(s *nexus.Session) *nexus.StreamQuery {
		src, err := nexus.GenerateSource("ts", totalRows, func(i int64) []any {
			syms := []string{"AAA", "BBB", "CCC", "DDD"}
			return []any{i, syms[i%4], i % 100, float64(i%50) + 0.5}
		},
			nexus.ColumnDef{Name: "ts", Type: nexus.Int64},
			nexus.ColumnDef{Name: "sym", Type: nexus.String},
			nexus.ColumnDef{Name: "vol", Type: nexus.Int64},
			nexus.ColumnDef{Name: "price", Type: nexus.Float64},
		)
		if err != nil {
			t.Fatal(err)
		}
		return s.StreamFrom(src).
			BatchSize(200).
			Window(nexus.Tumbling(1000)).
			GroupBy("sym").
			Agg(nexus.Count("n"), nexus.Sum("rev", nexus.Mul(nexus.Col("price"), nexus.Col("vol")))).
			Durable("pushjob")
	}

	s := nexus.NewSession()
	prov, err := s.ConnectTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: slow consumer, then drop the connection mid-stream (ctx
	// cancel closes it abruptly — the server sees the subscriber gone
	// and persists the checkpoint).
	var mu sync.Mutex
	var recovered []*nexus.Table
	ctx1, cancel1 := context.WithCancel(context.Background())
	got2 := make(chan struct{})
	seen := 0
	rs, err := mkQuery(s).SubscribeRemoteDetachable(ctx1, []string{prov}, func(tab *nexus.Table) error {
		mu.Lock()
		recovered = append(recovered, tab)
		seen++
		if seen == 2 {
			close(got2)
		}
		n := seen
		mu.Unlock()
		if n >= 2 {
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-got2
	cancel1()
	_, _ = rs.Wait() // errors: the connection was severed

	// The server persists the checkpoint when its pipeline notices the
	// gone subscriber; poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok, _ := eng.Backing().LoadCheckpoint("pushjob"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never persisted the disconnect checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 2: re-subscribe durably with a fresh source. The publisher
	// replays everything; the server skips the consumed prefix.
	s2 := nexus.NewSession()
	prov2, err := s2.ConnectTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := mkQuery(s2).SubscribeRemote(context.Background(), []string{prov2}, func(tab *nexus.Table) error {
		mu.Lock()
		recovered = append(recovered, tab)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 || stats.Events >= totalRows {
		t.Fatalf("resumed leg consumed %d events; want a proper suffix of %d (server-side push skip broken?)", stats.Events, totalRows)
	}

	// Reference: uninterrupted in-process run; dedupe by window+key and
	// require byte-identical rows with nothing lost or double-counted.
	wantTab, err := mkQuery(s).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := map[string]string{}
	for r := 0; r < wantTab.NumRows(); r++ {
		key := cellString(wantTab, r, nexus.WindowStartCol) + "|" + cellString(wantTab, r, "sym")
		wantRows[key] = rowString(wantTab, r)
	}
	gotRows := map[string]string{}
	mu.Lock()
	for _, tab := range recovered {
		for r := 0; r < tab.NumRows(); r++ {
			key := cellString(tab, r, nexus.WindowStartCol) + "|" + cellString(tab, r, "sym")
			gotRows[key] = rowString(tab, r)
		}
	}
	mu.Unlock()
	if len(gotRows) != len(wantRows) {
		t.Fatalf("recovered %d distinct windows, uninterrupted run has %d", len(gotRows), len(wantRows))
	}
	for k, w := range wantRows {
		if g := gotRows[k]; g != w {
			t.Fatalf("window %s: got %s want %s (double-counted rows?)", k, g, w)
		}
	}
}
