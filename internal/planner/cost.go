package planner

import (
	"nexus/internal/core"
	"nexus/internal/provider"
	"nexus/internal/schema"
	"nexus/internal/value"
)

// Cardinality estimation: simple textbook heuristics over the catalog's
// base-table row counts. The estimates only steer fragment placement
// (which side of a ship edge moves), so relative order matters more than
// absolute accuracy.
const (
	filterSelectivity = 0.33
	equiJoinFanout    = 1.0 // |L⋈R| ≈ max(|L|,|R|) for key joins
	groupReduction    = 0.1
	distinctReduction = 0.5
)

// Estimator computes row and byte estimates for plans against a
// registry's catalog.
type Estimator struct {
	reg *provider.Registry
}

// NewEstimator returns an estimator over the registry's datasets.
func NewEstimator(reg *provider.Registry) *Estimator { return &Estimator{reg: reg} }

// Rows estimates the output row count of a plan.
func (e *Estimator) Rows(n core.Node) float64 {
	switch x := n.(type) {
	case *core.Scan:
		if e.reg != nil {
			if p, _, ok := e.reg.FindDataset(x.Dataset); ok {
				for _, info := range p.Datasets() {
					if info.Name == x.Dataset {
						return float64(info.Rows)
					}
				}
			}
		}
		return 1000
	case *core.Literal:
		return float64(x.Table.NumRows())
	case *core.Var:
		return 1000
	case *core.Filter:
		return e.Rows(x.Children()[0]) * filterSelectivity
	case *core.Join:
		l := e.Rows(x.Children()[0])
		r := e.Rows(x.Children()[1])
		switch x.Type {
		case core.JoinSemi:
			return l * 0.5
		case core.JoinAnti:
			return l * 0.5
		case core.JoinLeft:
			out := maxf(l, r) * equiJoinFanout
			return maxf(out, l)
		default:
			return maxf(l, r) * equiJoinFanout
		}
	case *core.Product:
		return e.Rows(x.Children()[0]) * e.Rows(x.Children()[1])
	case *core.GroupAgg:
		if len(x.Keys) == 0 {
			return 1
		}
		return maxf(1, e.Rows(x.Children()[0])*groupReduction)
	case *core.Distinct:
		return maxf(1, e.Rows(x.Children()[0])*distinctReduction)
	case *core.Limit:
		in := e.Rows(x.Children()[0])
		return minf(in, float64(x.N))
	case *core.Union:
		return e.Rows(x.Children()[0]) + e.Rows(x.Children()[1])
	case *core.Except:
		return e.Rows(x.Children()[0]) * 0.5
	case *core.Intersect:
		return minf(e.Rows(x.Children()[0]), e.Rows(x.Children()[1])) * 0.5
	case *core.SliceDim:
		return maxf(1, e.Rows(x.Children()[0])*0.1)
	case *core.Dice:
		return maxf(1, e.Rows(x.Children()[0])*0.25)
	case *core.ReduceDims:
		return maxf(1, e.Rows(x.Children()[0])*groupReduction)
	case *core.MatMul:
		// Output cells ≈ (left rows / k) * (right rows / k) with unknown
		// k; use the geometric mean as a crude stand-in.
		l := e.Rows(x.Children()[0])
		r := e.Rows(x.Children()[1])
		return maxf(1, (l*r)/(l+r+1))
	case *core.Iterate:
		return e.Rows(x.Children()[0])
	case *core.Let:
		return e.Rows(x.Children()[1])
	}
	if len(n.Children()) == 1 {
		return e.Rows(n.Children()[0])
	}
	total := 0.0
	for _, c := range n.Children() {
		total += e.Rows(c)
	}
	return maxf(1, total)
}

// RowWidth estimates bytes per row for a schema.
func RowWidth(s schema.Schema) float64 {
	w := 0.0
	for i := 0; i < s.Len(); i++ {
		switch s.At(i).Kind {
		case value.KindBool:
			w += 1
		case value.KindString:
			w += 20
		default:
			w += 8
		}
	}
	return w
}

// Bytes estimates the encoded size of a plan's output.
func (e *Estimator) Bytes(n core.Node) float64 {
	return e.Rows(n) * RowWidth(n.Schema())
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
