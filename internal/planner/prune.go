package planner

import (
	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/value"
)

// ---------------------------------------------------------------------------
// Zone-map pruning support.
//
// Column pruning (below) narrows scans horizontally; ScanPreds narrows
// them vertically. It extracts the conjuncts of a filter predicate that
// compare one column against a constant — the shape a storage engine
// can test against per-segment min/max zone maps, skipping whole
// segments whose value ranges cannot satisfy the predicate. The
// extraction is conservative: anything it cannot prove is simply not
// returned, and a scan with no extractable conjuncts reads everything.

// ScanPred is one prunable conjunct: column `Col` compared against the
// constant `Val` with `Op` (always normalized to column-on-the-left).
type ScanPred struct {
	Col string
	Op  value.BinOp
	Val value.Value
}

// ScanPreds extracts the column-vs-constant comparison conjuncts of a
// predicate. Disjunctions, calls, arithmetic and column-vs-column
// comparisons contribute nothing (a row passing them may exist in any
// segment); every returned conjunct must hold for a row to pass, so a
// segment failing any one of them under its zone maps holds no matches.
func ScanPreds(e expr.Expr) []ScanPred {
	var out []ScanPred
	var walk func(expr.Expr)
	walk = func(e expr.Expr) {
		b, ok := e.(*expr.Bin)
		if !ok {
			return
		}
		if b.Op == value.OpAnd {
			walk(b.L)
			walk(b.R)
			return
		}
		if !b.Op.Comparison() {
			return
		}
		if col, okL := b.L.(*expr.Col); okL {
			if c, okR := b.R.(*expr.Const); okR {
				out = append(out, ScanPred{Col: col.Name, Op: b.Op, Val: c.Val})
			}
			return
		}
		if c, okL := b.L.(*expr.Const); okL {
			if col, okR := b.R.(*expr.Col); okR {
				out = append(out, ScanPred{Col: col.Name, Op: flipCmp(b.Op), Val: c.Val})
			}
		}
	}
	walk(e)
	return out
}

// ExactConjuncts is the strict sibling of ScanPreds: it succeeds only
// when the predicate is nothing but an AND-tree of column-vs-constant
// comparisons, i.e. when the returned conjuncts are not merely implied
// by the predicate but equivalent to it. Encoded execution needs the
// distinction — a storage engine may evaluate an exact conjunction
// directly over encoded pages and skip the generic filter entirely,
// whereas an inexact extraction still requires the residual predicate
// to run downstream.
func ExactConjuncts(e expr.Expr) ([]ScanPred, bool) {
	b, ok := e.(*expr.Bin)
	if !ok {
		return nil, false
	}
	if b.Op == value.OpAnd {
		l, okL := ExactConjuncts(b.L)
		if !okL {
			return nil, false
		}
		r, okR := ExactConjuncts(b.R)
		if !okR {
			return nil, false
		}
		return append(l, r...), true
	}
	if !b.Op.Comparison() {
		return nil, false
	}
	if col, okL := b.L.(*expr.Col); okL {
		if c, okR := b.R.(*expr.Const); okR {
			return []ScanPred{{Col: col.Name, Op: b.Op, Val: c.Val}}, true
		}
		return nil, false
	}
	if c, okL := b.L.(*expr.Const); okL {
		if col, okR := b.R.(*expr.Col); okR {
			return []ScanPred{{Col: col.Name, Op: flipCmp(b.Op), Val: c.Val}}, true
		}
	}
	return nil, false
}

// ScanAccess describes how a storage engine may serve a plan fragment
// straight from its files: which scan feeds it, which columns of the
// scanned dataset must actually be read (segment-level column
// projection), and which conjuncts may prune whole segments via zone
// maps. Produced by AnalyzeScanAccess; consumed by the durable engine's
// cold-scan override.
type ScanAccess struct {
	// Scan is the leaf the fragment reads.
	Scan *core.Scan
	// Cols are the scan-schema columns the fragment references, in
	// schema order. nil means every column is needed (no projection win).
	Cols []string
	// Preds are the fragment's prunable column-vs-constant conjuncts
	// (see ScanPreds). Every one must hold for a row to survive the
	// fragment's filters, so a segment failing any of them under its
	// zone maps holds no useful rows.
	Preds []ScanPred
	// Exact reports that Preds is not merely implied by the fragment's
	// filters but equivalent to them: every filter predicate was an
	// AND-tree of column-vs-constant comparisons, all captured. An
	// engine may then treat "row passes every pred" as the complete
	// filter decision (e.g. aggregate encoded pages directly) instead
	// of only using Preds to discard rows ahead of a re-run.
	Exact bool
}

// AnalyzeScanAccess matches the narrow plan shapes a column store can
// answer from segment files without a full materialization: any stack
// of Filter and Project nodes over a single Scan. It reports the scan,
// the union of columns the stack references (the fragment's output
// columns plus every filter's predicate columns — projections only drop
// names, never invent them, so all of these exist in the scan schema),
// and the prunable predicates of every filter in the stack. ok=false
// means the fragment has some other shape and the engine should fall
// back to a generic scan.
func AnalyzeScanAccess(n core.Node) (ScanAccess, bool) {
	need := map[string]bool{}
	for _, name := range n.Schema().Names() {
		need[name] = true
	}
	var acc ScanAccess
	acc.Exact = true
	cur := n
	for {
		switch x := cur.(type) {
		case *core.Filter:
			if preds, exact := ExactConjuncts(x.Pred); exact {
				acc.Preds = append(acc.Preds, preds...)
			} else {
				acc.Preds = append(acc.Preds, ScanPreds(x.Pred)...)
				acc.Exact = false
			}
			addCols(need, x.Pred)
			cur = x.Children()[0]
		case *core.Project:
			cur = x.Children()[0]
		case *core.Scan:
			acc.Scan = x
			sch := x.Schema()
			if len(need) < sch.Len() {
				for i := 0; i < sch.Len(); i++ {
					if name := sch.At(i).Name; need[name] {
						acc.Cols = append(acc.Cols, name)
					}
				}
			}
			return acc, true
		default:
			return ScanAccess{}, false
		}
	}
}

// AggAccess describes a grouped aggregation a storage engine may run
// directly over encoded segment pages: a GroupAgg whose input is a
// Filter/Project stack over one scan, whose filters are an exact
// conjunction of column-vs-constant comparisons, and whose aggregate
// arguments are plain column references. Cols is always populated (the
// aggregation touches only keys, arguments and predicate columns —
// never the whole row).
type AggAccess struct {
	ScanAccess
	// Keys are the group-by columns, in GroupAgg order.
	Keys []string
	// Aggs are the aggregate specs; each Arg is nil (count(*)) or a
	// column reference into the scan schema.
	Aggs []core.AggSpec
	// Args holds, per aggregate, the referenced column's name ("" for
	// count(*)) — resolved here so the engine needs no expression
	// inspection of its own.
	Args []string
}

// AnalyzeAggAccess matches the plan shape the encoded group-aggregate
// kernel can serve. ok=false means some part of the fragment needs the
// generic runtime: a non-exact filter (its residual must re-run over
// materialized rows), a computed aggregate argument, or an unexpected
// operator in the stack.
func AnalyzeAggAccess(n core.Node) (AggAccess, bool) {
	g, ok := n.(*core.GroupAgg)
	if !ok {
		return AggAccess{}, false
	}
	var acc AggAccess
	acc.Exact = true
	acc.Keys = g.Keys
	acc.Aggs = g.Aggs
	need := map[string]bool{}
	for _, k := range g.Keys {
		need[k] = true
	}
	acc.Args = make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		if a.Arg == nil {
			continue // count(*)
		}
		c, ok := a.Arg.(*expr.Col)
		if !ok {
			return AggAccess{}, false
		}
		acc.Args[i] = c.Name
		need[c.Name] = true
	}
	cur := g.Children()[0]
	for {
		switch x := cur.(type) {
		case *core.Filter:
			preds, exact := ExactConjuncts(x.Pred)
			if !exact {
				return AggAccess{}, false
			}
			acc.Preds = append(acc.Preds, preds...)
			addCols(need, x.Pred)
			cur = x.Children()[0]
		case *core.Project:
			cur = x.Children()[0]
		case *core.Scan:
			acc.Scan = x
			sch := x.Schema()
			if len(need) == 0 {
				// Pure count(*) with no filters still needs row counts;
				// the cheapest honest source is one column.
				need[sch.At(0).Name] = true
			}
			for i := 0; i < sch.Len(); i++ {
				if name := sch.At(i).Name; need[name] {
					acc.Cols = append(acc.Cols, name)
				}
			}
			if len(acc.Cols) != len(need) {
				return AggAccess{}, false // something referenced outside the scan
			}
			return acc, true
		default:
			return AggAccess{}, false
		}
	}
}

// flipCmp mirrors a comparison for constant-on-the-left normalization
// (5 < x  ≡  x > 5).
func flipCmp(op value.BinOp) value.BinOp {
	switch op {
	case value.OpLt:
		return value.OpGt
	case value.OpLe:
		return value.OpGe
	case value.OpGt:
		return value.OpLt
	case value.OpGe:
		return value.OpLe
	}
	return op // Eq and Ne are symmetric
}

// pruneColumns inserts Project nodes directly above scans whose columns
// are not all needed, computed by a top-down required-column analysis.
// Operators without a precise rule conservatively require everything
// below them. Dimension attributes are always retained (array operators
// downstream may address them positionally).
//
// The rewrite is verified: if the pruned plan's schema no longer matches
// the original root schema, the original plan is returned unchanged.
func pruneColumns(plan core.Node) (core.Node, error) {
	req := map[string]bool{}
	for _, n := range plan.Schema().Names() {
		req[n] = true
	}
	out, err := prune(plan, req)
	if err != nil || out == nil {
		return plan, nil // pruning is best-effort; keep the original
	}
	if !out.Schema().Equal(plan.Schema()) {
		return plan, nil
	}
	return out, nil
}

func allOf(n core.Node) map[string]bool {
	req := map[string]bool{}
	for _, name := range n.Schema().Names() {
		req[name] = true
	}
	return req
}

func addCols(req map[string]bool, e expr.Expr) {
	if e == nil {
		return
	}
	for _, c := range expr.Cols(e) {
		req[c] = true
	}
}

// prune returns a rewritten node whose schema contains at least the
// required columns, or nil to signal "cannot prune here" (caller keeps
// the original subtree).
func prune(n core.Node, req map[string]bool) (core.Node, error) {
	switch x := n.(type) {
	case *core.Scan:
		var keep []string
		sch := x.Schema()
		for i := 0; i < sch.Len(); i++ {
			a := sch.At(i)
			if req[a.Name] || a.Dim {
				keep = append(keep, a.Name)
			}
		}
		if len(keep) == 0 || len(keep) == sch.Len() {
			return n, nil
		}
		return core.NewProject(x, keep)
	case *core.Filter:
		creq := copyReq(req)
		addCols(creq, x.Pred)
		child, err := prune(x.Children()[0], creq)
		if err != nil || child == nil {
			return nil, err
		}
		return core.NewFilter(child, x.Pred)
	case *core.Project:
		creq := map[string]bool{}
		for _, c := range x.Cols {
			creq[c] = true
		}
		child, err := prune(x.Children()[0], creq)
		if err != nil || child == nil {
			return nil, err
		}
		return core.NewProject(child, x.Cols)
	case *core.Extend:
		creq := copyReq(req)
		var defs []core.ColDef
		for _, d := range x.Defs {
			// Keep a definition only if its output is required.
			if req[d.Name] {
				defs = append(defs, d)
				addCols(creq, d.E)
			}
			delete(creq, d.Name)
		}
		child, err := prune(x.Children()[0], creq)
		if err != nil || child == nil {
			return nil, err
		}
		if len(defs) == 0 {
			return child, nil
		}
		return core.NewExtend(child, defs)
	case *core.Rename:
		creq := map[string]bool{}
		back := make(map[string]string, len(x.From))
		for i := range x.From {
			back[x.To[i]] = x.From[i]
		}
		for name := range req {
			if orig, ok := back[name]; ok {
				creq[orig] = true
			} else {
				creq[name] = true
			}
		}
		child, err := prune(x.Children()[0], creq)
		if err != nil || child == nil {
			return nil, err
		}
		// Renames of pruned-away columns must be dropped.
		var from, to []string
		for i := range x.From {
			if child.Schema().Has(x.From[i]) {
				from = append(from, x.From[i])
				to = append(to, x.To[i])
			}
		}
		if len(from) == 0 {
			return child, nil
		}
		return core.NewRename(child, from, to)
	case *core.GroupAgg:
		creq := map[string]bool{}
		for _, k := range x.Keys {
			creq[k] = true
		}
		for _, a := range x.Aggs {
			addCols(creq, a.Arg)
		}
		child, err := prune(x.Children()[0], creq)
		if err != nil || child == nil {
			return nil, err
		}
		return core.NewGroupAgg(child, x.Keys, x.Aggs)
	case *core.Sort:
		creq := copyReq(req)
		for _, s := range x.Specs {
			creq[s.Col] = true
		}
		child, err := prune(x.Children()[0], creq)
		if err != nil || child == nil {
			return nil, err
		}
		return core.NewSort(child, x.Specs)
	case *core.Limit:
		child, err := prune(x.Children()[0], req)
		if err != nil || child == nil {
			return nil, err
		}
		return core.NewLimit(child, x.N, x.Offset)
	case *core.Join:
		return pruneJoin(x, req)
	}
	// Conservative: require every column of every child, recurse to reach
	// scans under unhandled operators.
	kids := n.Children()
	if len(kids) == 0 {
		return n, nil
	}
	newKids := make([]core.Node, len(kids))
	changed := false
	for i, c := range kids {
		nc, err := prune(c, allOf(c))
		if err != nil || nc == nil {
			return nil, err
		}
		newKids[i] = nc
		if nc != c {
			changed = true
		}
	}
	if !changed {
		return n, nil
	}
	return n.WithChildren(newKids)
}

func pruneJoin(x *core.Join, req map[string]bool) (core.Node, error) {
	left, right := x.Children()[0], x.Children()[1]
	ls := left.Schema()
	out := x.Schema()

	lreq := map[string]bool{}
	rreq := map[string]bool{}
	for i := 0; i < out.Len(); i++ {
		name := out.At(i).Name
		if !req[name] {
			continue
		}
		if i < ls.Len() {
			lreq[name] = true
		} else {
			rreq[right.Schema().At(i-ls.Len()).Name] = true
		}
	}
	for _, k := range x.LeftKeys {
		lreq[k] = true
	}
	for _, k := range x.RightKeys {
		rreq[k] = true
	}
	if x.Residual != nil {
		// Residual references concat names; attribute them by position.
		concat := ls.Concat(right.Schema())
		for _, c := range expr.Cols(x.Residual) {
			i := concat.IndexOf(c)
			if i < 0 {
				return nil, nil
			}
			if i < ls.Len() {
				lreq[ls.At(i).Name] = true
			} else {
				rreq[right.Schema().At(i-ls.Len()).Name] = true
			}
		}
	}
	nl, err := prune(left, lreq)
	if err != nil || nl == nil {
		return nil, err
	}
	nr, err := prune(right, rreq)
	if err != nil || nr == nil {
		return nil, err
	}
	nj, err := core.NewJoin(nl, nr, x.Type, x.LeftKeys, x.RightKeys, x.Residual)
	if err != nil {
		return nil, nil // suffix drift or residual breakage: give up here
	}
	// Every required output column must survive with the same name.
	for name := range req {
		if !nj.Schema().Has(name) {
			return nil, nil
		}
	}
	return nj, nil
}

func copyReq(req map[string]bool) map[string]bool {
	out := make(map[string]bool, len(req))
	for k, v := range req {
		out[k] = v
	}
	return out
}
