// Package planner implements the optimization and federation layer over
// the Big Data algebra: semantics-preserving rewrites (constant folding,
// filter pushdown, projection pruning, limit pushdown), intent
// recognition (recovering MatMul from its join+aggregate encoding, and
// routing recognized iterate kernels to providers that implement them
// natively), cardinality/byte estimation, and capability-driven
// partitioning of a plan into per-provider fragments connected by ship
// edges.
package planner

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/expr"
)

// Options selects which optimizations run; the ablation experiment (E8)
// toggles them individually.
type Options struct {
	Fold          bool // constant-fold scalar expressions
	Pushdown      bool // push filters toward scans, merge adjacent filters
	Prune         bool // prune unused columns above scans
	PushLimit     bool // push limits through width-preserving operators
	IntentMatMul  bool // recognize join+group-sum as MatMul
	IntentKernels bool // prefer providers with native kernels for recognized iterates
}

// DefaultOptions enables every optimization.
func DefaultOptions() Options {
	return Options{Fold: true, Pushdown: true, Prune: true, PushLimit: true, IntentMatMul: true, IntentKernels: true}
}

// NoOptions disables every optimization (the ablation baseline).
func NoOptions() Options { return Options{} }

// Optimize applies the enabled rewrites and returns the new plan. The
// input plan is never mutated.
//
// When IntentKernels is enabled, subtrees recognized as native kernels
// (PageRank, connected components, SSSP) are shielded from the other
// rewrites: pushdown and pruning would reshape the canonical loop bodies
// and obscure the very intent the engines recognize — the failure mode
// the paper's third desideratum warns about. The subtrees are swapped for
// placeholder scans during rewriting and restored afterwards.
func Optimize(plan core.Node, opts Options) (core.Node, error) {
	var err error
	var shielded []core.Node
	if opts.IntentKernels {
		plan, shielded, err = shieldKernels(plan)
		if err != nil {
			return nil, fmt.Errorf("planner: shield: %w", err)
		}
	}
	if opts.Fold {
		plan, err = foldConstants(plan)
		if err != nil {
			return nil, fmt.Errorf("planner: fold: %w", err)
		}
	}
	if opts.Pushdown {
		plan, err = pushdownFilters(plan)
		if err != nil {
			return nil, fmt.Errorf("planner: pushdown: %w", err)
		}
	}
	if opts.PushLimit {
		plan, err = pushdownLimits(plan)
		if err != nil {
			return nil, fmt.Errorf("planner: limit pushdown: %w", err)
		}
	}
	if opts.IntentMatMul {
		plan, err = recognizeMatMul(plan)
		if err != nil {
			return nil, fmt.Errorf("planner: intent: %w", err)
		}
	}
	if opts.Prune {
		plan, err = pruneColumns(plan)
		if err != nil {
			return nil, fmt.Errorf("planner: prune: %w", err)
		}
	}
	if len(shielded) > 0 {
		plan, err = restoreKernels(plan, shielded)
		if err != nil {
			return nil, fmt.Errorf("planner: restore: %w", err)
		}
	}
	return plan, nil
}

// kernelPlaceholder names the i-th shielded subtree's stand-in scan.
func kernelPlaceholder(i int) string { return fmt.Sprintf("__kernel_%d", i) }

// shieldKernels replaces recognized kernel subtrees with placeholder
// scans carrying the subtree's schema, returning the shielded subtrees in
// placeholder order.
func shieldKernels(plan core.Node) (core.Node, []core.Node, error) {
	var shielded []core.Node
	out, err := core.Rewrite(plan, func(n core.Node) (core.Node, error) {
		switch n.Kind() {
		case core.KLet, core.KIterate:
			if _, ok := RecognizedKernel(n); ok {
				scan, err := core.NewScan(kernelPlaceholder(len(shielded)), n.Schema())
				if err != nil {
					return nil, err
				}
				shielded = append(shielded, n)
				return scan, nil
			}
		}
		return n, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, shielded, nil
}

// restoreKernels substitutes the shielded subtrees back for their
// placeholder scans.
func restoreKernels(plan core.Node, shielded []core.Node) (core.Node, error) {
	return core.Rewrite(plan, func(n core.Node) (core.Node, error) {
		s, ok := n.(*core.Scan)
		if !ok {
			return n, nil
		}
		for i, sub := range shielded {
			if s.Dataset == kernelPlaceholder(i) {
				return sub, nil
			}
		}
		return n, nil
	})
}

// foldConstants folds scalar expressions in every node that carries them.
func foldConstants(plan core.Node) (core.Node, error) {
	return core.Rewrite(plan, func(n core.Node) (core.Node, error) {
		switch x := n.(type) {
		case *core.Filter:
			folded := expr.FoldConstants(x.Pred)
			if expr.Equal(folded, x.Pred) {
				return n, nil
			}
			// A predicate folded to TRUE removes the filter entirely.
			if c, ok := folded.(*expr.Const); ok && c.Val.Truthy() {
				return x.Children()[0], nil
			}
			return core.NewFilter(x.Children()[0], folded)
		case *core.Extend:
			defs := make([]core.ColDef, len(x.Defs))
			changed := false
			for i, d := range x.Defs {
				folded := expr.FoldConstants(d.E)
				defs[i] = core.ColDef{Name: d.Name, E: folded}
				if !expr.Equal(folded, d.E) {
					changed = true
				}
			}
			if !changed {
				return n, nil
			}
			return core.NewExtend(x.Children()[0], defs)
		case *core.Join:
			if x.Residual == nil {
				return n, nil
			}
			folded := expr.FoldConstants(x.Residual)
			if expr.Equal(folded, x.Residual) {
				return n, nil
			}
			if c, ok := folded.(*expr.Const); ok && c.Val.Truthy() {
				folded = nil
			}
			return core.NewJoin(x.Children()[0], x.Children()[1], x.Type, x.LeftKeys, x.RightKeys, folded)
		}
		return n, nil
	})
}

// splitConjuncts flattens a predicate's top-level AND chain.
func splitConjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Bin); ok && b.Op.String() == "&&" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

// refsWithin reports whether every column referenced by e resolves in the
// schema of n.
func refsWithin(e expr.Expr, n core.Node) bool {
	for _, c := range expr.Cols(e) {
		if !n.Schema().Has(c) {
			return false
		}
	}
	return true
}

// pushdownFilters repeatedly applies filter-motion rules until no rule
// fires (each pass strictly moves filters downward or merges them, so
// this terminates).
func pushdownFilters(plan core.Node) (core.Node, error) {
	for {
		changed := false
		next, err := core.Rewrite(plan, func(n core.Node) (core.Node, error) {
			f, ok := n.(*core.Filter)
			if !ok {
				return n, nil
			}
			out, fired, err := pushFilterOnce(f)
			if err != nil {
				return nil, err
			}
			if fired {
				changed = true
				return out, nil
			}
			return n, nil
		})
		if err != nil {
			return nil, err
		}
		plan = next
		if !changed {
			return plan, nil
		}
	}
}

func pushFilterOnce(f *core.Filter) (core.Node, bool, error) {
	child := f.Children()[0]
	switch c := child.(type) {
	case *core.Filter:
		merged, err := core.NewFilter(c.Children()[0], expr.And(c.Pred, f.Pred))
		return merged, err == nil, err
	case *core.Project:
		inner, err := core.NewFilter(c.Children()[0], f.Pred)
		if err != nil {
			return nil, false, nil // predicate needs projected-away names; leave as is
		}
		out, err := core.NewProject(inner, c.Cols)
		return out, err == nil, err
	case *core.Rename:
		// Translate predicate names back through the rename.
		back := make(map[string]string, len(c.From))
		for i := range c.From {
			back[c.To[i]] = c.From[i]
		}
		pred := expr.RenameCols(f.Pred, back)
		inner, err := core.NewFilter(c.Children()[0], pred)
		if err != nil {
			return nil, false, nil
		}
		out, err := core.NewRename(inner, c.From, c.To)
		return out, err == nil, err
	case *core.Extend:
		if !refsWithin(f.Pred, c.Children()[0]) {
			return nil, false, nil // references computed columns
		}
		inner, err := core.NewFilter(c.Children()[0], f.Pred)
		if err != nil {
			return nil, false, nil
		}
		out, err := core.NewExtend(inner, c.Defs)
		return out, err == nil, err
	case *core.Sort:
		inner, err := core.NewFilter(c.Children()[0], f.Pred)
		if err != nil {
			return nil, false, nil
		}
		out, err := core.NewSort(inner, c.Specs)
		return out, err == nil, err
	case *core.Union:
		fl, err := core.NewFilter(c.Children()[0], f.Pred)
		if err != nil {
			return nil, false, nil
		}
		fr, err := core.NewFilter(c.Children()[1], f.Pred)
		if err != nil {
			return nil, false, nil
		}
		out, err := core.NewUnion(fl, fr, c.All)
		return out, err == nil, err
	case *core.Dice:
		inner, err := core.NewFilter(c.Children()[0], f.Pred)
		if err != nil {
			return nil, false, nil
		}
		out, err := core.NewDice(inner, c.Bounds)
		return out, err == nil, err
	case *core.AsArray:
		inner, err := core.NewFilter(c.Children()[0], f.Pred)
		if err != nil {
			return nil, false, nil
		}
		out, err := core.NewAsArray(inner, c.Dims)
		return out, err == nil, err
	case *core.DropDims:
		inner, err := core.NewFilter(c.Children()[0], f.Pred)
		if err != nil {
			return nil, false, nil
		}
		out, err := core.NewDropDims(inner)
		return out, err == nil, err
	case *core.GroupAgg:
		// Push only predicates over grouping keys.
		keySet := map[string]bool{}
		for _, k := range c.Keys {
			keySet[k] = true
		}
		var pushable, rest []expr.Expr
		for _, cj := range splitConjuncts(f.Pred) {
			allKeys := true
			for _, col := range expr.Cols(cj) {
				if !keySet[col] {
					allKeys = false
					break
				}
			}
			if allKeys {
				pushable = append(pushable, cj)
			} else {
				rest = append(rest, cj)
			}
		}
		if len(pushable) == 0 {
			return nil, false, nil
		}
		inner, err := core.NewFilter(c.Children()[0], expr.AndAll(pushable...))
		if err != nil {
			return nil, false, nil
		}
		agg, err := core.NewGroupAgg(inner, c.Keys, c.Aggs)
		if err != nil {
			return nil, false, err
		}
		if len(rest) == 0 {
			return agg, true, nil
		}
		out, err := core.NewFilter(agg, expr.AndAll(rest...))
		return out, err == nil, err
	case *core.Join:
		return pushFilterIntoJoin(f, c)
	}
	return nil, false, nil
}

// pushFilterIntoJoin distributes conjuncts to the join sides they cover.
// For left joins only the left side is safe; semi/anti joins output left
// columns only, so every conjunct is a left conjunct.
func pushFilterIntoJoin(f *core.Filter, j *core.Join) (core.Node, bool, error) {
	left, right := j.Children()[0], j.Children()[1]
	ls := left.Schema()

	// Map join-output names to (side, source name). Right-side names may
	// have been suffixed by the concat disambiguation.
	rightSource := map[string]string{}
	outSchema := j.Schema()
	for i := 0; i < outSchema.Len(); i++ {
		name := outSchema.At(i).Name
		if i >= ls.Len() && j.Type != core.JoinSemi && j.Type != core.JoinAnti {
			rightSource[name] = right.Schema().At(i - ls.Len()).Name
		}
	}

	var toLeft, toRight, rest []expr.Expr
	for _, cj := range splitConjuncts(f.Pred) {
		cols := expr.Cols(cj)
		allLeft, allRight := true, true
		for _, col := range cols {
			if ls.IndexOf(col) < 0 {
				allLeft = false
			}
			if _, ok := rightSource[col]; !ok {
				allRight = false
			}
		}
		switch {
		case allLeft:
			toLeft = append(toLeft, cj)
		case allRight && j.Type == core.JoinInner:
			toRight = append(toRight, expr.RenameCols(cj, rightSource))
		default:
			rest = append(rest, cj)
		}
	}
	if len(toLeft) == 0 && len(toRight) == 0 {
		return nil, false, nil
	}
	var err error
	if len(toLeft) > 0 {
		left, err = core.NewFilter(left, expr.AndAll(toLeft...))
		if err != nil {
			return nil, false, nil
		}
	}
	if len(toRight) > 0 {
		right, err = core.NewFilter(right, expr.AndAll(toRight...))
		if err != nil {
			return nil, false, nil
		}
	}
	nj, err := core.NewJoin(left, right, j.Type, j.LeftKeys, j.RightKeys, j.Residual)
	if err != nil {
		return nil, false, err
	}
	if len(rest) == 0 {
		return nj, true, nil
	}
	out, err := core.NewFilter(nj, expr.AndAll(rest...))
	return out, err == nil, err
}

// pushdownLimits moves limits through width-preserving unary operators so
// servers materialize fewer rows.
func pushdownLimits(plan core.Node) (core.Node, error) {
	return core.Rewrite(plan, func(n core.Node) (core.Node, error) {
		l, ok := n.(*core.Limit)
		if !ok {
			return n, nil
		}
		switch c := l.Children()[0].(type) {
		case *core.Project:
			inner, err := core.NewLimit(c.Children()[0], l.N, l.Offset)
			if err != nil {
				return nil, err
			}
			return core.NewProject(inner, c.Cols)
		case *core.Rename:
			inner, err := core.NewLimit(c.Children()[0], l.N, l.Offset)
			if err != nil {
				return nil, err
			}
			return core.NewRename(inner, c.From, c.To)
		case *core.Extend:
			inner, err := core.NewLimit(c.Children()[0], l.N, l.Offset)
			if err != nil {
				return nil, err
			}
			return core.NewExtend(inner, c.Defs)
		case *core.Limit:
			// limit a offset b over limit c offset d composes.
			lo := l.Offset + c.Offset
			n1 := l.N
			if c.N-l.Offset < n1 {
				n1 = c.N - l.Offset
			}
			if n1 < 0 {
				n1 = 0
			}
			return core.NewLimit(c.Children()[0], n1, lo)
		}
		return n, nil
	})
}
