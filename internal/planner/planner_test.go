package planner

import (
	"strings"
	"testing"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/exec"
	"nexus/internal/engines/graph"
	"nexus/internal/engines/linalg"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/provider"
	"nexus/internal/table"
	"nexus/internal/value"
)

// testData builds a shared dataset map and a raw runtime to evaluate
// plans without capability checks — the semantics oracle for rewrites.
func testData() map[string]*table.Table {
	return map[string]*table.Table{
		"sales":     datagen.Sales(1, 2000, 50, 20),
		"customers": datagen.Customers(2, 50),
		"products":  datagen.Products(3, 20),
		"A":         datagen.Matrix(4, 20, 15, "i", "k"),
		"B":         datagen.Matrix(5, 15, 18, "k", "j"),
	}
}

func rawRun(t *testing.T, ds map[string]*table.Table, plan core.Node) *table.Table {
	t.Helper()
	rt := &exec.Runtime{Datasets: func(n string) (*table.Table, bool) {
		tab, ok := ds[n]
		return tab, ok
	}}
	out, err := rt.Run(plan)
	if err != nil {
		t.Fatalf("raw run: %v", err)
	}
	return out
}

func scan(t *testing.T, ds map[string]*table.Table, name string) *core.Scan {
	t.Helper()
	s, err := core.NewScan(name, ds[name].Schema())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertSameResults optimizes the plan under every option combination of
// interest and checks result equivalence against the unoptimized plan.
func assertSameResults(t *testing.T, ds map[string]*table.Table, plan core.Node, ordered bool) {
	t.Helper()
	want := rawRun(t, ds, plan)
	for _, opts := range []Options{
		{Fold: true},
		{Pushdown: true},
		{Prune: true},
		{PushLimit: true},
		{Fold: true, Pushdown: true, Prune: true, PushLimit: true},
		DefaultOptions(),
	} {
		opt, err := Optimize(plan, opts)
		if err != nil {
			t.Fatalf("optimize %+v: %v", opts, err)
		}
		got := rawRun(t, ds, opt)
		if ordered {
			if got.OrderedChecksum() != want.OrderedChecksum() {
				t.Fatalf("opts %+v changed ordered result\noriginal:\n%s\noptimized:\n%s", opts, core.Explain(plan), core.Explain(opt))
			}
		} else if !table.EqualUnordered(got, want) {
			t.Fatalf("opts %+v changed result\noriginal:\n%s\noptimized:\n%s", opts, core.Explain(plan), core.Explain(opt))
		}
	}
}

func TestPushdownThroughJoinPreservesSemantics(t *testing.T) {
	ds := testData()
	j, err := core.NewJoin(scan(t, ds, "sales"), scan(t, ds, "customers"),
		core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Conjuncts: one left-side, one right-side (suffixed), one mixed.
	pred := expr.AndAll(
		expr.Gt(expr.Column("qty"), expr.CInt(2)),
		expr.Eq(expr.Column("segment"), expr.CStr("consumer")),
		expr.Ne(expr.Column("region"), expr.Column("region_r")),
	)
	f, err := core.NewFilter(j, pred)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ds, f, false)

	// The pushdown must actually fire: after optimization some filter
	// sits below the join.
	opt, _ := Optimize(f, Options{Pushdown: true})
	foundBelow := false
	core.Walk(opt, func(n core.Node) bool {
		if jn, ok := n.(*core.Join); ok {
			for _, c := range jn.Children() {
				if _, isF := c.(*core.Filter); isF {
					foundBelow = true
				}
			}
		}
		return true
	})
	if !foundBelow {
		t.Fatalf("pushdown did not move filters below the join:\n%s", core.Explain(opt))
	}
}

func TestPushdownLeftJoinOnlyPushesLeft(t *testing.T) {
	ds := testData()
	j, err := core.NewJoin(scan(t, ds, "sales"), scan(t, ds, "customers"),
		core.JoinLeft, []string{"cust_id"}, []string{"cust_id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A right-side predicate over a left join cannot be pushed; row
	// counts must stay identical either way.
	pred := expr.AndAll(
		expr.Gt(expr.Column("qty"), expr.CInt(5)),
		expr.Eq(expr.Column("segment"), expr.CStr("corporate")),
	)
	f, err := core.NewFilter(j, pred)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ds, f, false)
}

func TestPushdownThroughGroupAggKeysOnly(t *testing.T) {
	ds := testData()
	ga, err := core.NewGroupAgg(scan(t, ds, "sales"), []string{"region", "cust_id"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "rev"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pred := expr.AndAll(
		expr.Eq(expr.Column("region"), expr.CStr("EU")), // key: pushable
		expr.Gt(expr.Column("rev"), expr.CFloat(100)),   // aggregate: not pushable
	)
	f, err := core.NewFilter(ga, pred)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ds, f, false)

	opt, _ := Optimize(f, Options{Pushdown: true})
	// The region predicate must appear below the aggregate.
	pushed := false
	core.Walk(opt, func(n core.Node) bool {
		if g, ok := n.(*core.GroupAgg); ok {
			if _, isF := g.Children()[0].(*core.Filter); isF {
				pushed = true
			}
		}
		return true
	})
	if !pushed {
		t.Fatalf("key predicate not pushed below groupagg:\n%s", core.Explain(opt))
	}
}

func TestFoldRemovesTrueFilter(t *testing.T) {
	ds := testData()
	f, err := core.NewFilter(scan(t, ds, "sales"), expr.Or(expr.CBool(true), expr.Gt(expr.Column("qty"), expr.CInt(100))))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(f, Options{Fold: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, stillFilter := opt.(*core.Filter); stillFilter {
		t.Fatalf("tautological filter not removed:\n%s", core.Explain(opt))
	}
	assertSameResults(t, ds, f, false)
}

func TestPruneInsertsProjectAboveScan(t *testing.T) {
	ds := testData()
	ga, err := core.NewGroupAgg(scan(t, ds, "sales"), []string{"region"}, []core.AggSpec{
		{Func: core.AggCount, As: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(ga, Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	narrowed := false
	core.Walk(opt, func(n core.Node) bool {
		if p, ok := n.(*core.Project); ok {
			if _, isScan := p.Children()[0].(*core.Scan); isScan && len(p.Cols) < ds["sales"].NumCols() {
				narrowed = true
			}
		}
		return true
	})
	if !narrowed {
		t.Fatalf("prune did not narrow the scan:\n%s", core.Explain(opt))
	}
	assertSameResults(t, ds, ga, false)
}

func TestPruneComplexPlanPreservesSemantics(t *testing.T) {
	ds := testData()
	j, _ := core.NewJoin(scan(t, ds, "sales"), scan(t, ds, "customers"),
		core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
	ext, _ := core.NewExtend(j, []core.ColDef{
		{Name: "rev", E: expr.Mul(expr.Column("price"), expr.Column("qty"))},
		{Name: "unused", E: expr.Add(expr.Column("qty"), expr.CInt(1))},
	})
	ga, _ := core.NewGroupAgg(ext, []string{"segment"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Column("rev"), As: "total"},
	})
	s, _ := core.NewSort(ga, []core.SortSpec{{Col: "total", Desc: true}})
	assertSameResults(t, ds, s, true)
}

func TestMatMulIntentRecognized(t *testing.T) {
	ds := testData()
	// Matrix multiply in pure relational form.
	j, err := core.NewJoin(scan(t, ds, "A"), scan(t, ds, "B"),
		core.JoinInner, []string{"k"}, []string{"k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := core.NewGroupAgg(j, []string{"i", "j"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("v"), expr.Column("v_r")), As: "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(ga, Options{IntentMatMul: true})
	if err != nil {
		t.Fatal(err)
	}
	hasMM := false
	core.Walk(opt, func(n core.Node) bool {
		if n.Kind() == core.KMatMul {
			hasMM = true
		}
		return true
	})
	if !hasMM {
		t.Fatalf("matmul intent not recognized:\n%s", core.Explain(opt))
	}
	if !opt.Schema().Equal(ga.Schema()) {
		t.Fatalf("intent rewrite changed schema: %v vs %v", opt.Schema(), ga.Schema())
	}
	want := rawRun(t, ds, ga)
	got := rawRun(t, ds, opt)
	if !tablesApproxEqual(got, want) {
		t.Fatal("intent rewrite changed the result")
	}
}

// tablesApproxEqual compares (i, j, v) tables cell-wise with a small
// float tolerance (sparse and dense summation orders differ).
func tablesApproxEqual(a, b *table.Table) bool {
	if a.NumRows() != b.NumRows() {
		return false
	}
	am := map[[2]int64]float64{}
	for r := 0; r < a.NumRows(); r++ {
		i, _ := a.Value(r, 0).AsInt()
		j, _ := a.Value(r, 1).AsInt()
		v, _ := a.Value(r, 2).AsFloat()
		am[[2]int64{i, j}] = v
	}
	for r := 0; r < b.NumRows(); r++ {
		i, _ := b.Value(r, 0).AsInt()
		j, _ := b.Value(r, 1).AsInt()
		v, _ := b.Value(r, 2).AsFloat()
		d := am[[2]int64{i, j}] - v
		if d > 1e-9 || d < -1e-9 {
			return false
		}
	}
	return true
}

func TestMatMulIntentNotOverTriggered(t *testing.T) {
	ds := testData()
	// A join+sum that is NOT a matmul: aggregate is not a product of one
	// column per side.
	j, _ := core.NewJoin(scan(t, ds, "A"), scan(t, ds, "B"),
		core.JoinInner, []string{"k"}, []string{"k"}, nil)
	ga, _ := core.NewGroupAgg(j, []string{"i", "j"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Add(expr.Column("v"), expr.Column("v_r")), As: "c"},
	})
	opt, err := Optimize(ga, Options{IntentMatMul: true})
	if err != nil {
		t.Fatal(err)
	}
	core.Walk(opt, func(n core.Node) bool {
		if n.Kind() == core.KMatMul {
			t.Fatal("sum-of-sums misrecognized as matmul")
		}
		return true
	})
}

// registryWith builds a three-provider registry with data spread across
// engines.
func registryWith(t *testing.T, ds map[string]*table.Table) *provider.Registry {
	t.Helper()
	rel := relational.New("rel")
	la := linalg.New("la")
	gr := graph.New("gr")
	for _, name := range []string{"sales", "customers", "products"} {
		if err := rel.Store(name, ds[name]); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"A", "B"} {
		if err := la.Store(name, ds[name]); err != nil {
			t.Fatal(err)
		}
	}
	reg := provider.NewRegistry()
	for _, p := range []provider.Provider{rel, la, gr} {
		if err := reg.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func TestPartitionSingleProviderPlan(t *testing.T) {
	ds := testData()
	reg := registryWith(t, ds)
	ga, _ := core.NewGroupAgg(scan(t, ds, "sales"), []string{"region"}, []core.AggSpec{
		{Func: core.AggCount, As: "n"},
	})
	pp, err := Partition(ga, reg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Fragments) != 1 {
		t.Fatalf("expected 1 fragment, got %d:\n%s", len(pp.Fragments), pp)
	}
	if pp.Root().Provider != "rel" {
		t.Fatalf("fragment placed on %s, want rel", pp.Root().Provider)
	}
}

func TestPartitionMatMulRoutesToLinalg(t *testing.T) {
	ds := testData()
	reg := registryWith(t, ds)
	a, _ := core.NewScan("A", ds["A"].Schema())
	b, _ := core.NewScan("B", ds["B"].Schema())
	mm, err := core.NewMatMul(a, b, "v")
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Partition(mm, reg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pp.Root().Provider != "la" {
		t.Fatalf("matmul placed on %s, want la:\n%s", pp.Root().Provider, pp)
	}
	if len(pp.Fragments) != 1 {
		t.Fatalf("A and B live on la; expected 1 fragment, got %d", len(pp.Fragments))
	}
}

func TestPartitionCrossProviderJoinShips(t *testing.T) {
	ds := testData()
	reg := registryWith(t, ds)
	// Join sales (rel) with matrix A (la): the planner must ship one side.
	a, _ := core.NewScan("A", ds["A"].Schema())
	dd, _ := core.NewDropDims(a)
	j, err := core.NewJoin(scan(t, ds, "sales"), dd,
		core.JoinInner, []string{"cust_id"}, []string{"i"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Partition(j, reg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Fragments) != 2 {
		t.Fatalf("expected 2 fragments, got %d:\n%s", len(pp.Fragments), pp)
	}
	root := pp.Root()
	if root.Provider != "rel" {
		t.Fatalf("join should run on rel (bigger side), got %s", root.Provider)
	}
	if len(root.Inputs) != 1 {
		t.Fatalf("root should have 1 ship edge, got %d", len(root.Inputs))
	}
	if !strings.HasPrefix(root.Inputs[0].StoreAs, "__ship_") {
		t.Fatalf("ship edge name %q", root.Inputs[0].StoreAs)
	}
}

func TestPartitionKernelPreference(t *testing.T) {
	ds := testData()
	reg := registryWith(t, ds)
	// Graph data lives on rel, but the graph engine advertises the
	// pagerank kernel — with IntentKernels the iterate must go to gr.
	edges := datagen.UniformGraph(9, 50, 200)
	rel, _ := reg.Get("rel")
	if err := rel.Store("edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := rel.Store("vertices", graph.VerticesTable(50)); err != nil {
		t.Fatal(err)
	}
	plan, err := graph.PageRankPlan("edges", datagen.EdgeSchema(), "vertices", graph.VerticesSchema(), 50, 0.85, 30, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Partition(plan, reg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pp.Root().Provider != "gr" {
		t.Fatalf("pagerank placed on %s, want gr:\n%s", pp.Root().Provider, pp)
	}
	// Both datasets must be shipped in.
	if len(pp.Root().Inputs) != 2 {
		t.Fatalf("expected 2 dataset ship edges, got %d", len(pp.Root().Inputs))
	}

	// Without kernel preference it stays on rel with the data.
	pp2, err := Partition(plan, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pp2.Root().Provider != "rel" {
		t.Fatalf("without intent, pagerank placed on %s, want rel", pp2.Root().Provider)
	}
}

func TestEstimatorMonotonicity(t *testing.T) {
	ds := testData()
	reg := registryWith(t, ds)
	est := NewEstimator(reg)
	sc := scan(t, ds, "sales")
	f, _ := core.NewFilter(sc, expr.Gt(expr.Column("qty"), expr.CInt(5)))
	if est.Rows(f) >= est.Rows(sc) {
		t.Fatal("filter estimate must shrink input")
	}
	l, _ := core.NewLimit(sc, 10, 0)
	if est.Rows(l) != 10 {
		t.Fatalf("limit estimate = %g", est.Rows(l))
	}
	if est.Bytes(sc) <= 0 {
		t.Fatal("bytes estimate must be positive")
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	ds := testData()
	j, _ := core.NewJoin(scan(t, ds, "sales"), scan(t, ds, "customers"),
		core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
	f, _ := core.NewFilter(j, expr.Gt(expr.Column("qty"), expr.CInt(3)))
	once, err := Optimize(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Optimize(once, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !core.Equal(once, twice) {
		t.Fatalf("optimize not idempotent:\n%s\nvs\n%s", core.Explain(once), core.Explain(twice))
	}
	_ = value.Null // keep value import for the helper below
}
