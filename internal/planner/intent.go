package planner

import (
	"nexus/internal/core"
	"nexus/internal/engines/graph"
	"nexus/internal/expr"
	"nexus/internal/value"
)

// recognizeMatMul rewrites the relational encoding of matrix
// multiplication back into the first-class MatMul node — the paper's
// canonical intent-preservation example. The pattern is:
//
//	groupagg keys=[i, j] aggs=[sum(av * bv) as s]
//	  over join A ⋈ B on A.k == B.k
//
// where i and av come from A, j and bv from B, and all of i, k, j are
// int64. The rewrite produces
//
//	dropdims(rename(matmul(asarray(A, i, k), asarray(B, k, j)), v→s))
//
// whose schema is identical to the original aggregate's.
func recognizeMatMul(plan core.Node) (core.Node, error) {
	return core.Rewrite(plan, func(n core.Node) (core.Node, error) {
		out, ok, err := tryMatMul(n)
		if err != nil {
			return nil, err
		}
		if ok {
			return out, nil
		}
		return n, nil
	})
}

func tryMatMul(n core.Node) (core.Node, bool, error) {
	ga, ok := n.(*core.GroupAgg)
	if !ok || len(ga.Keys) != 2 || len(ga.Aggs) != 1 {
		return nil, false, nil
	}
	spec := ga.Aggs[0]
	if spec.Func != core.AggSum || spec.Arg == nil {
		return nil, false, nil
	}
	mul, ok := spec.Arg.(*expr.Bin)
	if !ok || mul.Op != value.OpMul {
		return nil, false, nil
	}
	lcol, ok := mul.L.(*expr.Col)
	if !ok {
		return nil, false, nil
	}
	rcol, ok := mul.R.(*expr.Col)
	if !ok {
		return nil, false, nil
	}
	j, ok := ga.Children()[0].(*core.Join)
	if !ok || j.Type != core.JoinInner || len(j.LeftKeys) != 1 || j.Residual != nil {
		return nil, false, nil
	}
	left, right := j.Children()[0], j.Children()[1]
	ls, rs := left.Schema(), right.Schema()
	concat := ls.Concat(rs)

	// Attribute each referenced name to a join side by concat position.
	side := func(name string) (int, string) { // 0 = left, 1 = right, -1 = unknown
		i := concat.IndexOf(name)
		if i < 0 {
			return -1, ""
		}
		if i < ls.Len() {
			return 0, ls.At(i).Name
		}
		return 1, rs.At(i - ls.Len()).Name
	}

	iSide, iName := side(ga.Keys[0])
	jSide, jName := side(ga.Keys[1])
	aSide, aName := side(lcol.Name)
	bSide, bName := side(rcol.Name)
	// Normalize: i from left, j from right; value factors one per side.
	if iSide == 1 && jSide == 0 {
		iSide, jSide = jSide, iSide
		iName, jName = jName, iName
	}
	if aSide == 1 && bSide == 0 {
		aSide, bSide = bSide, aSide
		aName, bName = bName, aName
	}
	if iSide != 0 || jSide != 1 || aSide != 0 || bSide != 1 {
		return nil, false, nil
	}
	kLeft, kRight := j.LeftKeys[0], j.RightKeys[0]

	// Dimensions must be int64 and distinct from the value columns.
	for _, check := range []struct {
		s    interface{ IndexOf(string) int }
		name string
	}{{ls, iName}, {ls, kLeft}, {rs, kRight}, {rs, jName}} {
		if check.s.IndexOf(check.name) < 0 {
			return nil, false, nil
		}
	}
	if ls.At(ls.IndexOf(iName)).Kind != value.KindInt64 ||
		ls.At(ls.IndexOf(kLeft)).Kind != value.KindInt64 ||
		rs.At(rs.IndexOf(kRight)).Kind != value.KindInt64 ||
		rs.At(rs.IndexOf(jName)).Kind != value.KindInt64 {
		return nil, false, nil
	}
	if !ls.At(ls.IndexOf(aName)).Kind.Numeric() || !rs.At(rs.IndexOf(bName)).Kind.Numeric() {
		return nil, false, nil
	}
	if iName == kLeft || jName == kRight {
		return nil, false, nil
	}

	// Narrow both sides to (dim, dim, value) and tag dimensions. The
	// right side's inner dimension is renamed to match the left's so the
	// MatMul constructor sees a shared inner dimension.
	lproj, err := core.NewProject(left, []string{iName, kLeft, aName})
	if err != nil {
		return nil, false, nil
	}
	la, err := core.NewAsArray(lproj, []string{iName, kLeft})
	if err != nil {
		return nil, false, nil
	}
	rproj, err := core.NewProject(right, []string{kRight, jName, bName})
	if err != nil {
		return nil, false, nil
	}
	rin := core.Node(rproj)
	if kRight != kLeft {
		if rproj.Schema().Has(kLeft) {
			return nil, false, nil // renaming would collide
		}
		rin, err = core.NewRename(rproj, []string{kRight}, []string{kLeft})
		if err != nil {
			return nil, false, nil
		}
	}
	ra, err := core.NewAsArray(rin, []string{kLeft, jName})
	if err != nil {
		return nil, false, nil
	}
	mm, err := core.NewMatMul(la, ra, spec.As)
	if err != nil {
		return nil, false, nil
	}
	// MatMul's output dims are named after the operands' outer dims; the
	// aggregate's schema is (i, j, s) untagged. Conform.
	outNode := core.Node(mm)
	mdims := mm.Schema().DimNames()
	var from, to []string
	if mdims[0] != ga.Keys[0] {
		from = append(from, mdims[0])
		to = append(to, ga.Keys[0])
	}
	if mdims[1] != ga.Keys[1] {
		from = append(from, mdims[1])
		to = append(to, ga.Keys[1])
	}
	if len(from) > 0 {
		outNode, err = core.NewRename(outNode, from, to)
		if err != nil {
			return nil, false, nil
		}
	}
	// Conform dimension tags to the aggregate's schema (grouping keys keep
	// their tags, so the output may or may not be dimension-tagged).
	if dims := ga.Schema().DimNames(); len(dims) > 0 {
		outNode, err = core.NewAsArray(outNode, dims)
	} else {
		outNode, err = core.NewDropDims(outNode)
	}
	if err != nil {
		return nil, false, nil
	}
	if !outNode.Schema().Equal(ga.Schema()) {
		return nil, false, nil
	}
	return outNode, true, nil
}

// RecognizedKernel names the native kernel a plan subtree corresponds to,
// if any; the partitioner prefers providers advertising it.
func RecognizedKernel(n core.Node) (string, bool) {
	if _, ok := graph.RecognizePageRank(n); ok {
		return graph.KernelPageRank, true
	}
	if _, _, ok := graph.RecognizeConnectedComponents(n); ok {
		return graph.KernelConnectedComponents, true
	}
	if _, _, _, ok := graph.RecognizeSSSP(n); ok {
		return graph.KernelSSSP, true
	}
	return "", false
}
