package planner

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/provider"
	"nexus/internal/schema"
)

// ShipEdge says: before a fragment runs, store the producing fragment's
// result on the consuming fragment's provider under StoreAs. The
// federation layer realizes edges either directly (producer's server
// pushes to consumer's server) or routed through the client — the
// difference measured by the interop experiment (E4).
type ShipEdge struct {
	FromFragment int
	StoreAs      string
}

// Fragment is a maximal subtree of the plan assigned to one provider.
type Fragment struct {
	ID       int
	Provider string
	Plan     core.Node
	Inputs   []ShipEdge
	// Temp reports whether the fragment's output is an intermediate
	// (true) or the query result (false, root only).
	Temp bool
}

// PartitionedPlan is the fragment DAG in topological order; the last
// fragment is the root whose result returns to the client.
type PartitionedPlan struct {
	Fragments []*Fragment
}

// Root returns the final fragment.
func (p *PartitionedPlan) Root() *Fragment {
	return p.Fragments[len(p.Fragments)-1]
}

// String renders the fragment DAG for diagnostics.
func (p *PartitionedPlan) String() string {
	s := ""
	for _, f := range p.Fragments {
		s += fmt.Sprintf("fragment %d on %s", f.ID, f.Provider)
		for _, in := range f.Inputs {
			s += fmt.Sprintf(" <-[%s]- %d", in.StoreAs, in.FromFragment)
		}
		s += ":\n" + core.Explain(f.Plan)
	}
	return s
}

// Partition splits an optimized plan into per-provider fragments using
// the providers' capability sets and data locality, preferring providers
// with native kernels for recognized iterate subtrees when
// opts.IntentKernels is set.
func Partition(plan core.Node, reg *provider.Registry, opts Options) (*PartitionedPlan, error) {
	if len(reg.Names()) == 0 {
		return nil, fmt.Errorf("planner: no providers registered")
	}
	pt := &partitioner{reg: reg, est: NewEstimator(reg), opts: opts}
	pend, err := pt.assign(plan)
	if err != nil {
		return nil, err
	}
	if pend.prov == "" {
		pend.prov = pt.anySupporter(pend.plan)
		if pend.prov == "" {
			return nil, fmt.Errorf("planner: no provider supports the plan")
		}
	}
	root := pt.finalize(pend)
	root.Temp = false
	return &PartitionedPlan{Fragments: pt.fragments}, nil
}

type pending struct {
	prov   string // "" = unpinned (literals/vars only)
	plan   core.Node
	inputs []ShipEdge
}

type partitioner struct {
	reg       *provider.Registry
	est       *Estimator
	opts      Options
	fragments []*Fragment
	tempSeq   int
}

func (pt *partitioner) finalize(p *pending) *Fragment {
	f := &Fragment{
		ID:       len(pt.fragments),
		Provider: p.prov,
		Plan:     p.plan,
		Inputs:   p.inputs,
		Temp:     true,
	}
	pt.fragments = append(pt.fragments, f)
	return f
}

func (pt *partitioner) tempName() string {
	pt.tempSeq++
	return fmt.Sprintf("__ship_%d", pt.tempSeq)
}

// anySupporter returns the first registered provider that supports the
// whole plan.
func (pt *partitioner) anySupporter(plan core.Node) string {
	for _, p := range pt.reg.All() {
		if ok, _ := p.Capabilities().SupportsPlan(plan); ok {
			return p.Name()
		}
	}
	return ""
}

// supporters returns providers whose capabilities cover the operator.
func (pt *partitioner) supporters(kind core.OpKind) []provider.Provider {
	var out []provider.Provider
	for _, p := range pt.reg.All() {
		if p.Capabilities().Supports(kind) {
			out = append(out, p)
		}
	}
	return out
}

func (pt *partitioner) assign(n core.Node) (*pending, error) {
	switch x := n.(type) {
	case *core.Scan:
		host, _, ok := pt.reg.FindDataset(x.Dataset)
		if !ok {
			return nil, fmt.Errorf("planner: no provider hosts dataset %q", x.Dataset)
		}
		return &pending{prov: host.Name(), plan: n}, nil
	case *core.Literal, *core.Var:
		return &pending{prov: "", plan: n}, nil
	case *core.Iterate, *core.Let:
		return pt.assignAtomic(n)
	}
	return pt.assignOp(n)
}

// assignAtomic places a whole Iterate/Let subtree on a single provider:
// control iteration runs inside an engine, not across engines. Datasets
// the chosen provider does not host are shipped in under their own names.
func (pt *partitioner) assignAtomic(n core.Node) (*pending, error) {
	type candidate struct {
		p      provider.Provider
		kernel bool
		local  float64
	}
	datasets := core.DatasetNames(n)
	kernel, hasKernel := "", false
	if pt.opts.IntentKernels {
		kernel, hasKernel = RecognizedKernel(n)
	}
	var cands []candidate
	for _, p := range pt.reg.All() {
		ok, _ := p.Capabilities().SupportsPlan(n)
		if !ok {
			continue
		}
		local := 0.0
		for _, ds := range datasets {
			if _, hosted := p.DatasetSchema(ds); hosted {
				for _, info := range p.Datasets() {
					if info.Name == ds {
						local += float64(info.Rows) * RowWidth(info.Schema)
					}
				}
			}
		}
		cands = append(cands, candidate{
			p:      p,
			kernel: hasKernel && p.Capabilities().SupportsKernel(kernel),
			local:  local,
		})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("planner: no provider supports iterate subtree %q", n.Describe())
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.kernel != best.kernel {
			if c.kernel {
				best = c
			}
			continue
		}
		if c.local > best.local {
			best = c
		}
	}
	// Ship any dataset the chosen provider lacks, from its host, under
	// its original name.
	var inputs []ShipEdge
	for _, ds := range datasets {
		if _, hosted := best.p.DatasetSchema(ds); hosted {
			continue
		}
		host, sch, ok := pt.reg.FindDataset(ds)
		if !ok {
			return nil, fmt.Errorf("planner: no provider hosts dataset %q", ds)
		}
		scan, err := core.NewScan(ds, sch)
		if err != nil {
			return nil, err
		}
		frag := pt.finalize(&pending{prov: host.Name(), plan: scan})
		inputs = append(inputs, ShipEdge{FromFragment: frag.ID, StoreAs: ds})
	}
	return &pending{prov: best.p.Name(), plan: n, inputs: inputs}, nil
}

// assignOp handles ordinary operators: children are assigned first, then
// the operator is placed on the supporting provider holding the largest
// child (by estimated bytes); other children's results are shipped in.
func (pt *partitioner) assignOp(n core.Node) (*pending, error) {
	kids := n.Children()
	pends := make([]*pending, len(kids))
	for i, c := range kids {
		p, err := pt.assign(c)
		if err != nil {
			return nil, err
		}
		pends[i] = p
	}
	supp := pt.supporters(n.Kind())
	if len(supp) == 0 {
		return nil, fmt.Errorf("planner: no provider supports operator %v", n.Kind())
	}
	suppSet := map[string]bool{}
	for _, p := range supp {
		suppSet[p.Name()] = true
	}

	// Vote: each pinned child weighs its provider by estimated bytes.
	weights := map[string]float64{}
	for i, p := range pends {
		if p.prov != "" && suppSet[p.prov] {
			weights[p.prov] += pt.est.Bytes(kids[i])
		}
	}
	target := ""
	bestW := -1.0
	for _, p := range supp { // registry order breaks ties deterministically
		if w, ok := weights[p.Name()]; ok && w > bestW {
			target = p.Name()
			bestW = w
		}
	}
	if target == "" {
		// No pinned child's provider supports this op.
		allWild := true
		for _, p := range pends {
			if p.prov != "" {
				allWild = false
				break
			}
		}
		if allWild {
			// Stay unpinned only if the whole merged plan remains
			// executable somewhere; resolved at the root.
			merged, err := pt.merge(n, pends, "")
			if err == nil && merged != nil {
				return merged, nil
			}
		}
		target = supp[0].Name()
	}
	return pt.merge(n, pends, target)
}

// merge inlines children running on the target provider and converts the
// rest into ship edges + temp scans. target == "" keeps the pending
// unpinned (all children must be unpinned too).
func (pt *partitioner) merge(n core.Node, pends []*pending, target string) (*pending, error) {
	out := &pending{prov: target}
	newKids := make([]core.Node, len(pends))
	targetProv, _ := pt.reg.Get(target)
	for i, p := range pends {
		samePlace := p.prov == target
		if p.prov == "" && target != "" {
			// Wildcard child joins the target if the target can run it.
			if targetProv != nil {
				if ok, _ := targetProv.Capabilities().SupportsPlan(p.plan); ok {
					samePlace = true
				}
			}
		}
		if target == "" && p.prov == "" {
			samePlace = true
		}
		if samePlace {
			newKids[i] = p.plan
			out.inputs = append(out.inputs, p.inputs...)
			continue
		}
		// Ship: finalize the child as its own fragment and scan its
		// result under a temp name.
		if p.prov == "" {
			p.prov = pt.anySupporter(p.plan)
			if p.prov == "" {
				return nil, fmt.Errorf("planner: no provider supports subplan %q", p.plan.Describe())
			}
		}
		frag := pt.finalize(p)
		tmp := pt.tempName()
		scan, err := core.NewScan(tmp, stripDims(p.plan.Schema()))
		if err != nil {
			return nil, err
		}
		// Preserve dimension tags across the ship.
		var leaf core.Node = scan
		if dims := p.plan.Schema().DimNames(); len(dims) > 0 {
			leaf, err = core.NewAsArray(scan, dims)
			if err != nil {
				return nil, err
			}
		}
		newKids[i] = leaf
		out.inputs = append(out.inputs, ShipEdge{FromFragment: frag.ID, StoreAs: tmp})
	}
	plan, err := n.WithChildren(newKids)
	if err != nil {
		return nil, fmt.Errorf("planner: rebuild %v: %w", n.Kind(), err)
	}
	out.plan = plan
	return out, nil
}

// stripDims drops dimension tags for the shipped-table scan; tags are
// reapplied via AsArray so the receiving provider needs no catalog
// knowledge of the temp table.
func stripDims(s schema.Schema) schema.Schema {
	return s.DropDims()
}
