// Package netfault injects deterministic network faults — dropped
// connections, added latency, mid-frame cuts — by wrapping net.Conn.
// Like errfs for storage I/O, it has two modes: forced switches for
// tests that script an exact failure, and a seeded probability schedule
// for randomized chaos runs whose seed is printed on failure, so any
// run replays exactly.
package netfault

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error surfaced by faulted connection operations.
var ErrInjected = fmt.Errorf("netfault: injected connection failure")

// Faults is one fault schedule. Shared by every connection wrapped with
// it; all fields are adjusted through methods, safe for concurrent use.
type Faults struct {
	mu  sync.Mutex
	rng *rand.Rand

	// dropProb is the per-Write probability the connection is cut
	// instead (taking the data with it, or half of it with midFrame).
	dropProb float64
	// midFrame flushes the first half of the dropped write before the
	// cut, so the peer sees a torn frame, not a clean close.
	midFrame bool
	// delay is added before every Write.
	delay time.Duration
	// cutAfter cuts the connection deterministically once the wrapped
	// conns have written this many bytes in total (0 = disabled).
	cutAfter atomic.Int64
	written  atomic.Int64

	// Cuts counts injected connection cuts.
	Cuts atomic.Int64
}

// NewFaults builds a schedule driven by the given seed. The same seed
// over the same operation sequence injects the same faults.
func NewFaults(seed int64) *Faults {
	return &Faults{rng: rand.New(rand.NewSource(seed))}
}

// DropWrites sets the per-write drop probability; midFrame also leaks
// the first half of the dropped write to the peer first.
func (f *Faults) DropWrites(prob float64, midFrame bool) {
	f.mu.Lock()
	f.dropProb = prob
	f.midFrame = midFrame
	f.mu.Unlock()
}

// Delay adds latency before every write.
func (f *Faults) Delay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// CutAfter cuts the next connection write once n total bytes have been
// written across all wrapped connections — the deterministic way to
// tear a specific frame. 0 disables.
func (f *Faults) CutAfter(n int64) {
	f.written.Store(0)
	f.cutAfter.Store(n)
}

func (f *Faults) rollDrop() (drop, midFrame bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropProb > 0 && f.rng.Float64() < f.dropProb {
		return true, f.midFrame
	}
	return false, false
}

func (f *Faults) delayNow() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delay
}

// Wrap returns c with this fault schedule applied to its writes.
func (f *Faults) Wrap(c net.Conn) net.Conn {
	return &conn{Conn: c, f: f}
}

// Dialer wraps a dial function so every connection it produces carries
// the fault schedule. base nil defaults to net.DialTimeout.
func (f *Faults) Dialer(base func(addr string, timeout time.Duration) (net.Conn, error)) func(addr string, timeout time.Duration) (net.Conn, error) {
	if base == nil {
		base = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := base(addr, timeout)
		if err != nil {
			return nil, err
		}
		return f.Wrap(c), nil
	}
}

// conn applies the schedule to one connection. Only writes are faulted:
// the requester's outbound frame is where a cut tears protocol state,
// and a write-side cut makes the peer's read fail too.
type conn struct {
	net.Conn
	f   *Faults
	cut atomic.Bool
}

func (c *conn) Write(b []byte) (int, error) {
	if c.cut.Load() {
		return 0, ErrInjected
	}
	if d := c.f.delayNow(); d > 0 {
		time.Sleep(d)
	}
	drop, midFrame := c.f.rollDrop()
	if !drop {
		if limit := c.f.cutAfter.Load(); limit > 0 && c.f.written.Add(int64(len(b))) > limit {
			drop, midFrame = true, true
			c.f.cutAfter.Store(0)
		}
	}
	if drop {
		if midFrame && len(b) > 1 {
			c.Conn.Write(b[:len(b)/2])
		}
		c.cut.Store(true)
		c.f.Cuts.Add(1)
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Write(b)
}

func (c *conn) Read(b []byte) (int, error) {
	if c.cut.Load() {
		return 0, ErrInjected
	}
	return c.Conn.Read(b)
}
