package netfault

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped client side and the raw peer side of an
// in-memory connection.
func pipePair(t *testing.T, f *Faults) (client net.Conn, peer net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return f.Wrap(a), b
}

// readAll drains the peer until it sees EOF (or an error) and returns
// the bytes that made it across.
func readAll(peer net.Conn) []byte {
	var got []byte
	buf := make([]byte, 64)
	for {
		peer.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := peer.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			return got
		}
	}
}

// TestCleanPassthrough: a schedule with nothing armed forwards bytes
// untouched.
func TestCleanPassthrough(t *testing.T) {
	client, peer := pipePair(t, NewFaults(1))
	go func() {
		client.Write([]byte("hello"))
		client.Close()
	}()
	if got := readAll(peer); string(got) != "hello" {
		t.Fatalf("peer read %q, want hello", got)
	}
}

// TestCutAfterTearsMidFrame: the deterministic cut fires on the write
// that crosses the byte budget, leaks half the frame to the peer (a
// torn frame, not a clean close), closes the connection, and counts.
func TestCutAfterTearsMidFrame(t *testing.T) {
	f := NewFaults(1)
	f.CutAfter(4)
	client, peer := pipePair(t, f)

	done := make(chan []byte, 1)
	go func() { done <- readAll(peer) }()

	if _, err := client.Write([]byte("0123")); err != nil {
		t.Fatalf("write inside the budget failed: %v", err)
	}
	if _, err := client.Write([]byte("456789")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write past the budget = %v, want ErrInjected", err)
	}
	// The cut is sticky on this connection: reads and writes both fail.
	if _, err := client.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after cut = %v, want ErrInjected", err)
	}
	if _, err := client.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after cut = %v, want ErrInjected", err)
	}
	if got := string(<-done); got != "0123456" {
		t.Fatalf("peer saw %q, want the full first frame plus half the torn one", got)
	}
	if f.Cuts.Load() != 1 {
		t.Fatalf("Cuts = %d, want 1", f.Cuts.Load())
	}
}

// TestDropWritesDeterministicSeed: the same seed drops the same write
// in the same position, and the peer sees the close.
func TestDropWritesDeterministicSeed(t *testing.T) {
	run := func() int {
		f := NewFaults(7)
		f.DropWrites(0.3, false)
		client, peer := pipePair(t, f)
		go io.Copy(io.Discard, peer)
		for i := 0; i < 100; i++ {
			if _, err := client.Write([]byte("frame")); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("write %d failed with %v, want ErrInjected", i, err)
				}
				return i
			}
		}
		t.Fatal("p=0.3 over 100 writes dropped nothing")
		return -1
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("drop position diverged across identical seeds: %d vs %d", a, b)
	}
}

// TestDelayStallsWrites: armed latency is observable on every write.
func TestDelayStallsWrites(t *testing.T) {
	f := NewFaults(1)
	f.Delay(30 * time.Millisecond)
	client, peer := pipePair(t, f)
	go io.Copy(io.Discard, peer)
	start := time.Now()
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("write returned in %v, want ≥30ms", elapsed)
	}
}

// TestDialerWrapsConnections: connections from the wrapped dialer carry
// the schedule.
func TestDialerWrapsConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()

	f := NewFaults(1)
	f.CutAfter(1)
	dial := f.Dialer(nil)
	c, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("yz")); !errors.Is(err, ErrInjected) {
		t.Fatalf("dialed connection ignored the schedule: %v", err)
	}
}
