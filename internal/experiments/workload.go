package experiments

import (
	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/graph"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// The 30-query mixed workload behind the coverage experiment (E1): ten
// relational queries over the star schema, ten array queries over
// matrices/series/grids, five graph-analytic queries and five ML-flavored
// queries. Every query is a plan builder over the standard demo schemas;
// E1 classifies which algebra subsets can express each, and executes each
// on the reference runtime to prove the plan is real, not hypothetical.

// QueryClass buckets workload queries.
type QueryClass string

// Workload classes.
const (
	ClassRelational QueryClass = "relational"
	ClassArray      QueryClass = "array"
	ClassGraph      QueryClass = "graph"
	ClassML         QueryClass = "ml"
)

// WorkloadQuery is one catalog entry.
type WorkloadQuery struct {
	Name  string
	Class QueryClass
	Build func() (core.Node, error)
}

// Demo schemas shared by the workload builders.
var (
	salesSchema    = datagen.SalesSchema()
	custSchema     = datagen.CustomersSchema()
	prodSchema     = datagen.ProductsSchema()
	matASchema     = datagen.MatrixSchema("i", "k")
	matBSchema     = datagen.MatrixSchema("k", "j")
	seriesSchema   = datagen.SeriesSchema()
	gridSchema     = datagen.GridSchema()
	edgeSchema     = datagen.EdgeSchema()
	verticesSchema = graph.VerticesSchema()
)

const workloadVertices = 200

func scanOf(name string, sch schema.Schema) (core.Node, error) { return core.NewScan(name, sch) }

// chain threads a node through fallible steps.
type chain struct {
	n   core.Node
	err error
}

func start(name string, sch schema.Schema) *chain {
	n, err := scanOf(name, sch)
	return &chain{n: n, err: err}
}

func (c *chain) then(f func(core.Node) (core.Node, error)) *chain {
	if c.err != nil {
		return c
	}
	n, err := f(c.n)
	return &chain{n: n, err: err}
}

func (c *chain) done() (core.Node, error) { return c.n, c.err }

func filter(pred expr.Expr) func(core.Node) (core.Node, error) {
	return func(n core.Node) (core.Node, error) { return core.NewFilter(n, pred) }
}

func groupAgg(keys []string, aggs ...core.AggSpec) func(core.Node) (core.Node, error) {
	return func(n core.Node) (core.Node, error) { return core.NewGroupAgg(n, keys, aggs) }
}

func sortBy(specs ...core.SortSpec) func(core.Node) (core.Node, error) {
	return func(n core.Node) (core.Node, error) { return core.NewSort(n, specs) }
}

func limit(k int64) func(core.Node) (core.Node, error) {
	return func(n core.Node) (core.Node, error) { return core.NewLimit(n, k, 0) }
}

func extend(name string, e expr.Expr) func(core.Node) (core.Node, error) {
	return func(n core.Node) (core.Node, error) {
		return core.NewExtend(n, []core.ColDef{{Name: name, E: e}})
	}
}

func project(cols ...string) func(core.Node) (core.Node, error) {
	return func(n core.Node) (core.Node, error) { return core.NewProject(n, cols) }
}

func joinWith(right core.Node, typ core.JoinType, lk, rk string) func(core.Node) (core.Node, error) {
	return func(n core.Node) (core.Node, error) {
		return core.NewJoin(n, right, typ, []string{lk}, []string{rk}, nil)
	}
}

// revenue is price*qty, the workhorse expression of the star schema.
var revenue = expr.Mul(expr.Column("price"), expr.Column("qty"))

// Workload returns the 30-query catalog.
func Workload() []WorkloadQuery {
	return []WorkloadQuery{
		// --- Relational (10) -------------------------------------------------
		{"R1 revenue by region", ClassRelational, func() (core.Node, error) {
			return start("sales", salesSchema).
				then(groupAgg([]string{"region"}, core.AggSpec{Func: core.AggSum, Arg: revenue, As: "rev"})).
				then(sortBy(core.SortSpec{Col: "rev", Desc: true})).done()
		}},
		{"R2 top customers by spend", ClassRelational, func() (core.Node, error) {
			cust, err := scanOf("customers", custSchema)
			if err != nil {
				return nil, err
			}
			return start("sales", salesSchema).
				then(joinWith(cust, core.JoinInner, "cust_id", "cust_id")).
				then(groupAgg([]string{"name"}, core.AggSpec{Func: core.AggSum, Arg: revenue, As: "spend"})).
				then(sortBy(core.SortSpec{Col: "spend", Desc: true})).
				then(limit(10)).done()
		}},
		{"R3 selective filter + projection", ClassRelational, func() (core.Node, error) {
			return start("sales", salesSchema).
				then(filter(expr.And(expr.Eq(expr.Column("region"), expr.CStr("EU")), expr.Gt(expr.Column("qty"), expr.CInt(5))))).
				then(project("sale_id", "price")).done()
		}},
		{"R4 distinct product categories sold", ClassRelational, func() (core.Node, error) {
			prod, err := scanOf("products", prodSchema)
			if err != nil {
				return nil, err
			}
			c := start("sales", salesSchema).
				then(joinWith(prod, core.JoinInner, "prod_id", "prod_id")).
				then(project("category"))
			return c.then(func(n core.Node) (core.Node, error) { return core.NewDistinct(n) }).done()
		}},
		{"R5 anti join: customers with no sales", ClassRelational, func() (core.Node, error) {
			sales, err := scanOf("sales", salesSchema)
			if err != nil {
				return nil, err
			}
			return start("customers", custSchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewJoin(n, sales, core.JoinAnti, []string{"cust_id"}, []string{"cust_id"}, nil)
				}).done()
		}},
		{"R6 margin per category", ClassRelational, func() (core.Node, error) {
			prod, err := scanOf("products", prodSchema)
			if err != nil {
				return nil, err
			}
			return start("sales", salesSchema).
				then(joinWith(prod, core.JoinInner, "prod_id", "prod_id")).
				then(extend("margin", expr.Sub(expr.Column("price"), expr.Column("cost")))).
				then(groupAgg([]string{"category"}, core.AggSpec{Func: core.AggAvg, Arg: expr.Column("margin"), As: "avg_margin"})).done()
		}},
		{"R7 union of regional slices", ClassRelational, func() (core.Node, error) {
			eu := start("sales", salesSchema).then(filter(expr.Eq(expr.Column("region"), expr.CStr("EU"))))
			na, err := start("sales", salesSchema).then(filter(expr.Eq(expr.Column("region"), expr.CStr("NA")))).done()
			if err != nil {
				return nil, err
			}
			return eu.then(func(n core.Node) (core.Node, error) { return core.NewUnion(n, na, true) }).done()
		}},
		{"R8 order-count histogram by qty", ClassRelational, func() (core.Node, error) {
			return start("sales", salesSchema).
				then(groupAgg([]string{"qty"}, core.AggSpec{Func: core.AggCount, As: "orders"})).
				then(sortBy(core.SortSpec{Col: "qty"})).done()
		}},
		{"R9 residual-predicate join (cross-region)", ClassRelational, func() (core.Node, error) {
			cust, err := scanOf("customers", custSchema)
			if err != nil {
				return nil, err
			}
			return start("sales", salesSchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewJoin(n, cust, core.JoinInner, []string{"cust_id"}, []string{"cust_id"},
						expr.Ne(expr.Column("region"), expr.Column("region_r")))
				}).
				then(groupAgg(nil, core.AggSpec{Func: core.AggCount, As: "cross_region_orders"})).done()
		}},
		{"R10 count distinct buyers per region", ClassRelational, func() (core.Node, error) {
			return start("sales", salesSchema).
				then(groupAgg([]string{"region"}, core.AggSpec{Func: core.AggCountDistinct, Arg: expr.Column("cust_id"), As: "buyers"})).done()
		}},

		// --- Array (10) ------------------------------------------------------
		{"A1 matrix multiply A·B", ClassArray, func() (core.Node, error) {
			a, err := scanOf("A", matASchema)
			if err != nil {
				return nil, err
			}
			b, err := scanOf("B", matBSchema)
			if err != nil {
				return nil, err
			}
			return core.NewMatMul(a, b, "v")
		}},
		{"A2 moving average over sensor series", ClassArray, func() (core.Node, error) {
			return start("series", seriesSchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewWindow(n, []core.DimExtent{{Dim: "t", Before: 5, After: 5}}, core.AggAvg, "temp", "smooth")
				}).done()
		}},
		{"A3 2-D stencil (3×3 neighbourhood sums)", ClassArray, func() (core.Node, error) {
			return start("grid", gridSchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewWindow(n, []core.DimExtent{{Dim: "x", Before: 1, After: 1}, {Dim: "y", Before: 1, After: 1}}, core.AggSum, "v", "s")
				}).done()
		}},
		{"A4 subarray (dice) then slice", ClassArray, func() (core.Node, error) {
			return start("grid", gridSchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewDice(n, []core.DimBound{{Dim: "x", Lo: 8, Hi: 24}, {Dim: "y", Lo: 8, Hi: 24}})
				}).
				then(func(n core.Node) (core.Node, error) { return core.NewSliceDim(n, "x", 10) }).done()
		}},
		{"A5 transpose", ClassArray, func() (core.Node, error) {
			return start("A", matASchema).
				then(func(n core.Node) (core.Node, error) { return core.NewTranspose(n, []string{"k", "i"}) }).done()
		}},
		{"A6 row sums (reduce over one dim)", ClassArray, func() (core.Node, error) {
			return start("A", matASchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewReduceDims(n, []string{"k"}, []core.AggSpec{{Func: core.AggSum, Arg: expr.Column("v"), As: "rowsum"}})
				}).done()
		}},
		{"A7 elementwise matrix addition", ClassArray, func() (core.Node, error) {
			a, err := scanOf("A", matASchema)
			if err != nil {
				return nil, err
			}
			a2, err := scanOf("A", matASchema)
			if err != nil {
				return nil, err
			}
			return core.NewElemWise(a, a2, value.OpAdd, "s")
		}},
		{"A8 densify sparse grid (fill)", ClassArray, func() (core.Node, error) {
			return start("grid", gridSchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewDice(n, []core.DimBound{{Dim: "x", Lo: 0, Hi: 8}})
				}).
				then(func(n core.Node) (core.Node, error) { return core.NewFill(n, value.NewFloat(0)) }).done()
		}},
		{"A9 shift series and difference", ClassArray, func() (core.Node, error) {
			s1, err := scanOf("series", seriesSchema)
			if err != nil {
				return nil, err
			}
			shifted, err := core.NewShift(s1, "t", 1)
			if err != nil {
				return nil, err
			}
			s2, err := scanOf("series", seriesSchema)
			if err != nil {
				return nil, err
			}
			return core.NewElemWise(s2, shifted, value.OpSub, "delta")
		}},
		{"A10 global grid statistics", ClassArray, func() (core.Node, error) {
			return start("grid", gridSchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewReduceDims(n, []string{"x", "y"}, []core.AggSpec{
						{Func: core.AggMin, Arg: expr.Column("v"), As: "lo"},
						{Func: core.AggMax, Arg: expr.Column("v"), As: "hi"},
						{Func: core.AggAvg, Arg: expr.Column("v"), As: "mean"},
					})
				}).done()
		}},

		// --- Graph (5) --------------------------------------------------------
		{"G1 PageRank (fixpoint)", ClassGraph, func() (core.Node, error) {
			return graph.PageRankPlan("edges", edgeSchema, "vertices", verticesSchema, workloadVertices, 0.85, 30, 1e-9)
		}},
		{"G2 connected components (fixpoint)", ClassGraph, func() (core.Node, error) {
			return graph.ConnectedComponentsPlan("edges", edgeSchema, "vertices", verticesSchema, workloadVertices)
		}},
		{"G3 BFS hop counts (fixpoint)", ClassGraph, func() (core.Node, error) {
			return graph.SSSPPlan("edges", edgeSchema, "vertices", verticesSchema, 0, workloadVertices)
		}},
		{"G4 out-degree distribution", ClassGraph, func() (core.Node, error) {
			return start("edges", edgeSchema).
				then(groupAgg([]string{"src"}, core.AggSpec{Func: core.AggCount, As: "deg"})).
				then(groupAgg([]string{"deg"}, core.AggSpec{Func: core.AggCount, As: "vertices"})).
				then(sortBy(core.SortSpec{Col: "deg"})).done()
		}},
		{"G5 two-hop neighbourhoods", ClassGraph, func() (core.Node, error) {
			e2, err := scanOf("edges", edgeSchema)
			if err != nil {
				return nil, err
			}
			return start("edges", edgeSchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewJoin(n, e2, core.JoinInner, []string{"dst"}, []string{"src"}, nil)
				}).
				then(project("src", "dst_r")).
				then(func(n core.Node) (core.Node, error) { return core.NewDistinct(n) }).done()
		}},

		// --- ML-flavored (5) --------------------------------------------------
		{"M1 covariance matrix XᵀX", ClassML, func() (core.Node, error) {
			x, err := scanOf("A", matASchema)
			if err != nil {
				return nil, err
			}
			xt, err := core.NewTranspose(x, []string{"k", "i"})
			if err != nil {
				return nil, err
			}
			x2, err := scanOf("A", matASchema)
			if err != nil {
				return nil, err
			}
			// (k,i)·(i,k'): rename the second copy's k to avoid collision.
			x2r, err := core.NewRename(x2, []string{"k"}, []string{"k2"})
			if err != nil {
				return nil, err
			}
			x2a, err := core.NewAsArray(x2r, []string{"i", "k2"})
			if err != nil {
				return nil, err
			}
			return core.NewMatMul(xt, x2a, "cov")
		}},
		{"M2 feature standardization", ClassML, func() (core.Node, error) {
			// Per-column mean via reduce, then join back and scale.
			stats, err := start("A", matASchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewReduceDims(n, []string{"i"}, []core.AggSpec{
						{Func: core.AggAvg, Arg: expr.Column("v"), As: "mean"},
					})
				}).
				then(func(n core.Node) (core.Node, error) { return core.NewDropDims(n) }).done()
			if err != nil {
				return nil, err
			}
			return start("A", matASchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewJoin(n, stats, core.JoinInner, []string{"k"}, []string{"k"}, nil)
				}).
				then(extend("centered", expr.Sub(expr.Column("v"), expr.Column("mean")))).
				then(project("i", "k", "centered")).done()
		}},
		{"M3 gradient-descent step (fixpoint)", ClassML, func() (core.Node, error) {
			// w' = w * (1 - lr) iterated to convergence: the shape of an
			// iterative optimizer over a parameter relation.
			vertices, err := scanOf("vertices", verticesSchema)
			if err != nil {
				return nil, err
			}
			small, err := core.NewFilter(vertices, expr.Lt(expr.Column("v"), expr.CInt(10)))
			if err != nil {
				return nil, err
			}
			init, err := core.NewExtend(small, []core.ColDef{{Name: "w", E: expr.CFloat(1)}})
			if err != nil {
				return nil, err
			}
			loop, err := core.NewVar("w", init.Schema())
			if err != nil {
				return nil, err
			}
			upd, err := core.NewExtend(loop, []core.ColDef{{Name: "w2", E: expr.Mul(expr.Column("w"), expr.CFloat(0.9))}})
			if err != nil {
				return nil, err
			}
			proj, err := core.NewProject(upd, []string{"v", "w2"})
			if err != nil {
				return nil, err
			}
			body, err := core.NewRename(proj, []string{"w2"}, []string{"w"})
			if err != nil {
				return nil, err
			}
			return core.NewIterate(init, body, "w", 200, &core.Convergence{Metric: core.MetricLInf, Col: "w", Tol: 1e-6})
		}},
		{"M4 k-means assignment step", ClassML, func() (core.Node, error) {
			// Assign each 1-D point (series value) to the nearest of two
			// centroids held in a literal table.
			cb := schema.New(
				schema.Attribute{Name: "cid", Kind: value.KindInt64},
				schema.Attribute{Name: "center", Kind: value.KindFloat64},
			)
			b := table.NewBuilder(cb, 2)
			if err := b.Append(value.NewInt(0), value.NewFloat(15)); err != nil {
				return nil, err
			}
			if err := b.Append(value.NewInt(1), value.NewFloat(25)); err != nil {
				return nil, err
			}
			cents, err := core.NewLiteral(b.Build())
			if err != nil {
				return nil, err
			}
			return start("series", seriesSchema).
				then(func(n core.Node) (core.Node, error) { return core.NewProduct(n, cents) }).
				then(extend("dist", expr.NewCall("abs", expr.Sub(expr.Column("temp"), expr.Column("center"))))).
				then(groupAgg([]string{"t"}, core.AggSpec{Func: core.AggMin, Arg: expr.Column("dist"), As: "best"})).done()
		}},
		{"M5 regression normal equations XᵀX and Xᵀy", ClassML, func() (core.Node, error) {
			x, err := scanOf("A", matASchema)
			if err != nil {
				return nil, err
			}
			xt, err := core.NewTranspose(x, []string{"k", "i"})
			if err != nil {
				return nil, err
			}
			// y: first column of B reshaped as a (i, one) matrix.
			y, err := scanOf("B", matBSchema)
			if err != nil {
				return nil, err
			}
			ySlice, err := core.NewSliceDim(y, "j", 0) // (k, v) 1-D
			if err != nil {
				return nil, err
			}
			yRen, err := core.NewRename(ySlice, []string{"k"}, []string{"i"})
			if err != nil {
				return nil, err
			}
			yExt, err := core.NewExtend(yRen, []core.ColDef{{Name: "one", E: expr.CInt(0)}})
			if err != nil {
				return nil, err
			}
			yProj, err := core.NewProject(yExt, []string{"i", "one", "v"})
			if err != nil {
				return nil, err
			}
			yArr, err := core.NewAsArray(yProj, []string{"i", "one"})
			if err != nil {
				return nil, err
			}
			return core.NewMatMul(xt, yArr, "xty")
		}},
	}
}
