package experiments

import (
	"fmt"
	"time"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/array"
	"nexus/internal/engines/graph"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/provider"
	"nexus/internal/table"
)

// E6 — Portability (goal 1): "It should be relatively easy to move an
// application or tool developed on one platform to operate against
// another. As a corollary, back-end data and analytics services should be
// swappable in a particular platform."
//
// Ten queries drawn from the capability intersection of the relational
// and array engines run unchanged on both; result checksums must match
// (they do — the checksum is order-independent), and the relative
// timings show that swapping back ends changes cost, not answers.
func E6Portability() (*Result, error) {
	res := &Result{
		ID:     "E6",
		Title:  "back-end swappability: identical queries on two engines",
		Claim:  "back-end data and analytics services should be swappable in a particular platform",
		Header: []string{"query", "relational", "array", "checksums match"},
	}
	ds := map[string]*table.Table{
		"sales":    datagen.Sales(21, 5000, 200, 50),
		"series":   datagen.Series(22, 1000),
		"grid":     datagen.Grid(23, 48, 48),
		"edges":    datagen.UniformGraph(24, 300, 1200),
		"vertices": graph.VerticesTable(300),
	}
	queries := portabilityQueries()
	engines := []provider.Provider{relational.New("relational"), array.New("array")}
	for _, e := range engines {
		for name, t := range ds {
			if err := e.Store(name, t); err != nil {
				return nil, err
			}
		}
	}
	matches := 0
	for _, q := range queries {
		plan, err := q.Build()
		if err != nil {
			return nil, fmt.Errorf("E6 %s: %w", q.Name, err)
		}
		var times [2]time.Duration
		var sums [2]uint64
		for i, e := range engines {
			if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
				return nil, fmt.Errorf("E6 %s: %s does not support %v", q.Name, e.Name(), missing)
			}
			t0 := time.Now()
			out, err := e.Execute(plan)
			if err != nil {
				return nil, fmt.Errorf("E6 %s on %s: %w", q.Name, e.Name(), err)
			}
			times[i] = time.Since(t0)
			sums[i] = out.Checksum()
		}
		ok := sums[0] == sums[1]
		if ok {
			matches++
		}
		res.AddRow(q.Name, fmtDur(times[0]), fmtDur(times[1]), mark(ok))
	}
	res.AddRow("TOTAL", "", "", fmt.Sprintf("%d/%d", matches, len(queries)))
	res.Note("checksums are order-independent digests of the result multiset; a match means bit-identical answers")
	return res, nil
}

func portabilityQueries() []WorkloadQuery {
	return []WorkloadQuery{
		{"P1 revenue by region", ClassRelational, func() (core.Node, error) {
			return start("sales", salesSchema).
				then(groupAgg([]string{"region"}, core.AggSpec{Func: core.AggSum, Arg: revenue, As: "rev"})).done()
		}},
		{"P2 filter + extend + project", ClassRelational, func() (core.Node, error) {
			return start("sales", salesSchema).
				then(filter(expr.Gt(expr.Column("qty"), expr.CInt(4)))).
				then(extend("rev", revenue)).
				then(project("sale_id", "rev")).done()
		}},
		{"P3 top-10 sales", ClassRelational, func() (core.Node, error) {
			return start("sales", salesSchema).
				then(sortBy(core.SortSpec{Col: "price", Desc: true}, core.SortSpec{Col: "sale_id"})).
				then(limit(10)).done()
		}},
		{"P4 distinct regions", ClassRelational, func() (core.Node, error) {
			return start("sales", salesSchema).then(project("region")).
				then(func(n core.Node) (core.Node, error) { return core.NewDistinct(n) }).done()
		}},
		{"P5 self equijoin on qty", ClassRelational, func() (core.Node, error) {
			r, err := start("sales", salesSchema).then(limit(200)).done()
			if err != nil {
				return nil, err
			}
			return start("sales", salesSchema).
				then(limit(200)).
				then(func(n core.Node) (core.Node, error) {
					return core.NewJoin(n, r, core.JoinInner, []string{"qty"}, []string{"qty"}, nil)
				}).
				then(groupAgg(nil, core.AggSpec{Func: core.AggCount, As: "pairs"})).done()
		}},
		{"P6 series dice + reduce", ClassArray, func() (core.Node, error) {
			return start("series", seriesSchema).
				then(func(n core.Node) (core.Node, error) {
					return core.NewDice(n, []core.DimBound{{Dim: "t", Lo: 100, Hi: 900}})
				}).
				then(func(n core.Node) (core.Node, error) {
					return core.NewReduceDims(n, []string{"t"}, []core.AggSpec{
						{Func: core.AggAvg, Arg: expr.Column("temp"), As: "mean"},
					})
				}).done()
		}},
		{"P7 grid slice", ClassArray, func() (core.Node, error) {
			return start("grid", gridSchema).
				then(func(n core.Node) (core.Node, error) { return core.NewSliceDim(n, "x", 7) }).done()
		}},
		{"P8 shift + dice", ClassArray, func() (core.Node, error) {
			return start("series", seriesSchema).
				then(func(n core.Node) (core.Node, error) { return core.NewShift(n, "t", 100) }).
				then(func(n core.Node) (core.Node, error) {
					return core.NewDice(n, []core.DimBound{{Dim: "t", Lo: 150, Hi: 250}})
				}).done()
		}},
		{"P9 degree histogram", ClassGraph, func() (core.Node, error) {
			return start("edges", edgeSchema).
				then(groupAgg([]string{"src"}, core.AggSpec{Func: core.AggCount, As: "deg"})).
				then(groupAgg([]string{"deg"}, core.AggSpec{Func: core.AggCount, As: "n"})).done()
		}},
		{"P10 fixpoint decay", ClassML, func() (core.Node, error) {
			vertices, err := scanOf("vertices", verticesSchema)
			if err != nil {
				return nil, err
			}
			small, err := core.NewFilter(vertices, expr.Lt(expr.Column("v"), expr.CInt(50)))
			if err != nil {
				return nil, err
			}
			init, err := core.NewExtend(small, []core.ColDef{{Name: "x", E: expr.CFloat(1024)}})
			if err != nil {
				return nil, err
			}
			loop, err := core.NewVar("s", init.Schema())
			if err != nil {
				return nil, err
			}
			upd, err := core.NewExtend(loop, []core.ColDef{{Name: "x2", E: expr.Div(expr.Column("x"), expr.CFloat(2))}})
			if err != nil {
				return nil, err
			}
			proj, err := core.NewProject(upd, []string{"v", "x2"})
			if err != nil {
				return nil, err
			}
			body, err := core.NewRename(proj, []string{"x2"}, []string{"x"})
			if err != nil {
				return nil, err
			}
			return core.NewIterate(init, body, "s", 10, nil)
		}},
	}
}
