package experiments

import (
	"fmt"
	"time"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/federation"
	"nexus/internal/planner"
	"nexus/internal/provider"
	"nexus/internal/server"
)

// E4 — Server Interoperation (desideratum D4): "An algebra query that
// spans servers should be realizable as a plan where intermediate results
// pass directly between servers, rather than being routed through the
// application or a middle tier."
//
// A cross-site join+aggregate runs under both shipping modes at several
// data sizes; the table reports end-to-end latency, intermediate bytes
// through the client (exactly 0 in direct mode) and peer bytes. With
// useTCP the whole exchange runs over loopback sockets through real
// servers; otherwise the in-process transport gives the same byte
// accounting without socket noise.
func E4Interop(rowCounts []int, useTCP bool) (*Result, error) {
	if len(rowCounts) == 0 {
		rowCounts = []int{10000, 50000, 200000}
	}
	transport := "in-process"
	if useTCP {
		transport = "TCP loopback"
	}
	res := &Result{
		ID:     "E4",
		Title:  fmt.Sprintf("multi-server join: direct vs client-routed shipping (%s)", transport),
		Claim:  "intermediates should pass directly between servers, not through the application tier",
		Header: []string{"rows", "mode", "latency", "intermediate via client", "peer bytes", "client in", "round trips"},
	}
	for _, rows := range rowCounts {
		siteA := relational.New("siteA")
		if err := siteA.Store("sales", datagen.Sales(int64(rows), rows, rows/10+1, 50)); err != nil {
			return nil, err
		}
		siteB := relational.New("siteB")
		if err := siteB.Store("customers", datagen.Customers(7, rows/10+1)); err != nil {
			return nil, err
		}
		reg := provider.NewRegistry()
		if err := reg.Add(siteA); err != nil {
			return nil, err
		}
		if err := reg.Add(siteB); err != nil {
			return nil, err
		}
		plan, err := crossSiteJoinPlan()
		if err != nil {
			return nil, err
		}
		opt, err := planner.Optimize(plan, planner.DefaultOptions())
		if err != nil {
			return nil, err
		}
		pp, err := planner.Partition(opt, reg, planner.DefaultOptions())
		if err != nil {
			return nil, err
		}
		if len(pp.Fragments) < 2 {
			return nil, fmt.Errorf("E4: expected a multi-fragment plan, got %d", len(pp.Fragments))
		}

		var transports []federation.Transport
		var cleanup func()
		if useTCP {
			srvA, err := server.Serve(siteA, "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			srvB, err := server.Serve(siteB, "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			ta, err := federation.DialTCP(srvA.Addr())
			if err != nil {
				return nil, err
			}
			tb, err := federation.DialTCP(srvB.Addr())
			if err != nil {
				return nil, err
			}
			transports = []federation.Transport{ta, tb}
			cleanup = func() {
				ta.Close()
				tb.Close()
				srvA.Close()
				srvB.Close()
			}
		} else {
			transports = []federation.Transport{federation.NewInProc(siteA), federation.NewInProc(siteB)}
			cleanup = func() {}
		}
		coord := federation.NewCoordinator(transports...)
		var checksums [2]uint64
		for i, mode := range []federation.Mode{federation.ModeDirect, federation.ModeRouted} {
			t0 := time.Now()
			out, m, err := coord.Run(pp, mode)
			if err != nil {
				cleanup()
				return nil, fmt.Errorf("E4 %v rows=%d: %w", mode, rows, err)
			}
			elapsed := time.Since(t0)
			checksums[i] = out.Checksum()
			res.AddRow(
				fmt.Sprintf("%d", rows),
				mode.String(),
				fmtDur(elapsed),
				fmtBytes(m.IntermediateViaClient),
				fmtBytes(m.PeerBytes),
				fmtBytes(m.ClientBytesIn),
				fmt.Sprintf("%d", m.RoundTrips),
			)
		}
		cleanup()
		if checksums[0] != checksums[1] {
			return nil, fmt.Errorf("E4 rows=%d: modes disagree", rows)
		}
	}
	res.Note("both modes produce identical results (checksum-verified); direct mode keeps intermediate bytes off the client at every size")
	return res, nil
}

// crossSiteJoinPlan: filter the fact table on site A, join the dimension
// on site B, aggregate. The filtered fact rows are the intermediate that
// must travel.
func crossSiteJoinPlan() (core.Node, error) {
	sales, err := core.NewScan("sales", datagen.SalesSchema())
	if err != nil {
		return nil, err
	}
	cust, err := core.NewScan("customers", datagen.CustomersSchema())
	if err != nil {
		return nil, err
	}
	f, err := core.NewFilter(sales, expr.Gt(expr.Column("qty"), expr.CInt(3)))
	if err != nil {
		return nil, err
	}
	j, err := core.NewJoin(cust, f, core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
	if err != nil {
		return nil, err
	}
	return core.NewGroupAgg(j, []string{"segment"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "rev"},
		{Func: core.AggCount, As: "n"},
	})
}
