// Package experiments implements the evaluation suite of the
// reproduction. The paper ("Desiderata for a Big Data Language", CIDR
// 2015) is a vision paper with no tables or figures of its own, so each
// experiment here is derived from one of its explicit claims: the two
// goals (Portability, Multi-Server Applications), the three extensions
// over LINQ (expressive array model, control iteration, multi-server
// queries), and the four desiderata (Coverage, Translatability, Intent
// Preservation, Server Interoperation). EXPERIMENTS.md records the
// mapping and the measured outcomes; cmd/nexus-bench prints these tables;
// bench_test.go wraps the same code in testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"nexus/internal/table"
)

// Result is one experiment's output table.
type Result struct {
	ID     string
	Title  string
	Claim  string // the paper sentence this tests (abridged)
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a free-text note below the table.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the experiment as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	if r.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", r.Claim)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtDur renders a duration compactly for table cells.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// fmtBytes renders a byte count compactly.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// mark renders a boolean as a table cell.
func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "—"
}

// mustDropDims returns the table with dimension tags cleared (plain
// relational view of array data).
func mustDropDims(t *table.Table) *table.Table {
	out, err := t.WithSchema(t.Schema().DropDims())
	if err != nil {
		panic(err)
	}
	return out
}
