package experiments

import (
	"testing"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/planner"
	"nexus/internal/provider"
	"nexus/internal/table"
	"nexus/internal/wire"
)

func registryOf(t *testing.T, provs []provider.Provider) *provider.Registry {
	t.Helper()
	reg := provider.NewRegistry()
	for _, p := range provs {
		if err := reg.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// Operator sweep: for every operator kind's canonical micro-plan, check
// the algebra invariants the rest of the system relies on — rebuildable
// via WithChildren, self-describing, structurally self-equal, hashable,
// and stable across the wire format.
func TestEveryOperatorAlgebraInvariants(t *testing.T) {
	for _, kind := range core.AllOpKinds() {
		plan, err := microPlan(kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if plan.Kind() != kind && kind != core.KVar { // KVar's micro plan is a Let wrapper
			t.Errorf("%v: micro plan has kind %v", kind, plan.Kind())
		}
		if plan.Describe() == "" {
			t.Errorf("%v: empty Describe", kind)
		}
		// WithChildren with its own children must reproduce an equal node.
		rebuilt, err := plan.WithChildren(plan.Children())
		if err != nil {
			t.Errorf("%v: WithChildren: %v", kind, err)
			continue
		}
		if !core.Equal(plan, rebuilt) {
			t.Errorf("%v: WithChildren changed the node", kind)
		}
		if core.HashPlan(plan) != core.HashPlan(rebuilt) {
			t.Errorf("%v: hash unstable across rebuild", kind)
		}
		// Wire round trip reproduces an equal plan with an equal schema.
		decoded, err := wire.DecodePlan(wire.EncodePlan(plan))
		if err != nil {
			t.Errorf("%v: wire: %v", kind, err)
			continue
		}
		if !core.Equal(plan, decoded) {
			t.Errorf("%v: wire round trip changed the plan", kind)
		}
		if !decoded.Schema().Equal(plan.Schema()) {
			t.Errorf("%v: wire round trip changed the schema", kind)
		}
		// Explain never panics and mentions the operator's name (spot
		// checks cover exact formats elsewhere).
		if core.Explain(plan) == "" {
			t.Errorf("%v: empty Explain", kind)
		}
	}
}

// Whole-workload optimizer soundness: every E1 workload query must
// produce the same result multiset before and after full optimization —
// the broadest semantics-preservation net in the repository.
func TestOptimizerPreservesWholeWorkload(t *testing.T) {
	ds := workloadDatasets()
	rt := &exec.Runtime{Datasets: func(n string) (*table.Table, bool) {
		tab, ok := ds[n]
		return tab, ok
	}}
	for _, wq := range Workload() {
		plan, err := wq.Build()
		if err != nil {
			t.Fatalf("%s: %v", wq.Name, err)
		}
		want, err := rt.Run(plan)
		if err != nil {
			t.Fatalf("%s: baseline: %v", wq.Name, err)
		}
		opt, err := planner.Optimize(plan, planner.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: optimize: %v", wq.Name, err)
		}
		got, err := rt.Run(opt)
		if err != nil {
			t.Fatalf("%s: optimized run: %v", wq.Name, err)
		}
		if !table.EqualUnordered(got, want) && !approxSameTable(got, want) {
			t.Fatalf("%s: optimization changed the result\noriginal:\n%s\noptimized:\n%s",
				wq.Name, core.Explain(plan), core.Explain(opt))
		}
	}
}

// The partitioned form of every workload query must also execute to the
// same result through the federation layer (single provider hosting all
// data ⇒ plans stay whole, but the path exercises partitioning + the
// transport codec for every operator).
func TestPartitionedWorkloadExecutes(t *testing.T) {
	provs, ds, err := e2Providers()
	if err != nil {
		t.Fatal(err)
	}
	_ = ds
	reg := registryOf(t, provs)
	for _, wq := range Workload() {
		plan, err := wq.Build()
		if err != nil {
			t.Fatalf("%s: %v", wq.Name, err)
		}
		// The workload references datasets hosted by the E2 micro
		// providers under different names; skip queries needing data the
		// registry lacks.
		missing := false
		for _, name := range core.DatasetNames(plan) {
			if _, _, ok := reg.FindDataset(name); !ok {
				missing = true
			}
		}
		if missing {
			continue
		}
		opt, err := planner.Optimize(plan, planner.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", wq.Name, err)
		}
		if _, err := planner.Partition(opt, reg, planner.DefaultOptions()); err != nil {
			t.Fatalf("%s: partition: %v", wq.Name, err)
		}
	}
}
