package experiments

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/array"
	"nexus/internal/engines/exec"
	"nexus/internal/engines/graph"
	"nexus/internal/engines/linalg"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/provider"
	"nexus/internal/table"
	"nexus/internal/value"
)

// E2 — Translatability (desideratum D2): "Every algebra operator should
// be translatable to a back-end system (or a combination of such
// systems)."
//
// For every operator kind the experiment reports which provider
// advertises it; for each advertising provider it executes a canonical
// micro-plan containing the operator and verifies the result against the
// reference runtime. Operators advertised by no provider would violate
// D2 — the final check asserts there are none.

// e2Providers builds one engine of each class preloaded with the micro
// datasets.
func e2Providers() ([]provider.Provider, map[string]*table.Table, error) {
	ds := map[string]*table.Table{
		"sales":    datagen.Sales(1, 200, 20, 10),
		"dim":      datagen.Customers(2, 20),
		"A":        datagen.Matrix(3, 6, 6, "i", "k"),
		"B":        datagen.Matrix(4, 6, 6, "k", "j"),
		"series":   datagen.Series(5, 40),
		"edges":    datagen.UniformGraph(6, 30, 90),
		"vertices": graph.VerticesTable(30),
	}
	provs := []provider.Provider{
		relational.New("relational"),
		array.New("array"),
		linalg.New("linalg"),
		graph.New("graph"),
	}
	for _, p := range provs {
		for name, t := range ds {
			if err := p.Store(name, t); err != nil {
				return nil, nil, err
			}
		}
	}
	return provs, ds, nil
}

// microPlan returns a minimal executable plan exercising the operator.
func microPlan(kind core.OpKind) (core.Node, error) {
	sales, err := core.NewScan("sales", datagen.SalesSchema())
	if err != nil {
		return nil, err
	}
	dim, err := core.NewScan("dim", datagen.CustomersSchema())
	if err != nil {
		return nil, err
	}
	a, err := core.NewScan("A", datagen.MatrixSchema("i", "k"))
	if err != nil {
		return nil, err
	}
	b, err := core.NewScan("B", datagen.MatrixSchema("k", "j"))
	if err != nil {
		return nil, err
	}
	series, err := core.NewScan("series", datagen.SeriesSchema())
	if err != nil {
		return nil, err
	}
	switch kind {
	case core.KScan:
		return sales, nil
	case core.KLiteral:
		bl := table.NewBuilder(datagen.SeriesSchema(), 1)
		if err := bl.Append(value.NewInt(0), value.NewFloat(1)); err != nil {
			return nil, err
		}
		return core.NewLiteral(bl.Build())
	case core.KVar:
		lit, err := core.NewLiteral(table.Empty(datagen.SalesSchema()))
		if err != nil {
			return nil, err
		}
		v, err := core.NewVar("x", datagen.SalesSchema())
		if err != nil {
			return nil, err
		}
		return core.NewLet("x", lit, v)
	case core.KFilter:
		return core.NewFilter(sales, expr.Gt(expr.Column("qty"), expr.CInt(5)))
	case core.KProject:
		return core.NewProject(sales, []string{"sale_id", "price"})
	case core.KRename:
		return core.NewRename(sales, []string{"price"}, []string{"amount"})
	case core.KExtend:
		return core.NewExtend(sales, []core.ColDef{{Name: "rev", E: expr.Mul(expr.Column("price"), expr.Column("qty"))}})
	case core.KJoin:
		return core.NewJoin(sales, dim, core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
	case core.KProduct:
		lim, err := core.NewLimit(sales, 5, 0)
		if err != nil {
			return nil, err
		}
		lim2, err := core.NewLimit(dim, 5, 0)
		if err != nil {
			return nil, err
		}
		return core.NewProduct(lim, lim2)
	case core.KGroupAgg:
		return core.NewGroupAgg(sales, []string{"region"}, []core.AggSpec{{Func: core.AggCount, As: "n"}})
	case core.KDistinct:
		p, err := core.NewProject(sales, []string{"region"})
		if err != nil {
			return nil, err
		}
		return core.NewDistinct(p)
	case core.KSort:
		return core.NewSort(sales, []core.SortSpec{{Col: "price", Desc: true}})
	case core.KLimit:
		return core.NewLimit(sales, 7, 2)
	case core.KUnion:
		return core.NewUnion(sales, sales, true)
	case core.KExcept:
		return core.NewExcept(sales, sales)
	case core.KIntersect:
		return core.NewIntersect(sales, sales)
	case core.KAsArray:
		return core.NewAsArray(sales, []string{"sale_id"})
	case core.KDropDims:
		return core.NewDropDims(a)
	case core.KSlice:
		return core.NewSliceDim(a, "i", 0)
	case core.KDice:
		return core.NewDice(a, []core.DimBound{{Dim: "i", Lo: 1, Hi: 4}})
	case core.KTranspose:
		return core.NewTranspose(a, []string{"k", "i"})
	case core.KWindow:
		return core.NewWindow(series, []core.DimExtent{{Dim: "t", Before: 2, After: 2}}, core.AggSum, "temp", "w")
	case core.KReduceDims:
		return core.NewReduceDims(a, []string{"k"}, []core.AggSpec{{Func: core.AggSum, Arg: expr.Column("v"), As: "s"}})
	case core.KFill:
		d, err := core.NewDice(series, []core.DimBound{{Dim: "t", Lo: 0, Hi: 10}})
		if err != nil {
			return nil, err
		}
		return core.NewFill(d, value.NewFloat(0))
	case core.KShift:
		return core.NewShift(series, "t", 3)
	case core.KMatMul:
		return core.NewMatMul(a, b, "v")
	case core.KElemWise:
		return core.NewElemWise(a, a, value.OpAdd, "s")
	case core.KIterate:
		init, err := core.NewExtend(series, []core.ColDef{{Name: "x", E: expr.CFloat(1)}})
		if err != nil {
			return nil, err
		}
		loop, err := core.NewVar("s", init.Schema())
		if err != nil {
			return nil, err
		}
		upd, err := core.NewExtend(loop, []core.ColDef{{Name: "x2", E: expr.Mul(expr.Column("x"), expr.CFloat(0.5))}})
		if err != nil {
			return nil, err
		}
		proj, err := core.NewProject(upd, []string{"t", "temp", "x2"})
		if err != nil {
			return nil, err
		}
		body, err := core.NewRename(proj, []string{"x2"}, []string{"x"})
		if err != nil {
			return nil, err
		}
		return core.NewIterate(init, body, "s", 5, nil)
	case core.KLet:
		v, err := core.NewVar("x", datagen.SalesSchema())
		if err != nil {
			return nil, err
		}
		return core.NewLet("x", sales, v)
	}
	return nil, fmt.Errorf("no micro plan for %v", kind)
}

// E2Translatability builds the operator × provider matrix.
func E2Translatability() (*Result, error) {
	provs, ds, err := e2Providers()
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "E2",
		Title:  "operator translatability across providers",
		Claim:  "every algebra operator should be translatable to a back-end system (or a combination of such systems)",
		Header: []string{"operator", "relational", "array", "linalg", "graph", "verified-on"},
	}
	ref := &exec.Runtime{Datasets: func(n string) (*table.Table, bool) {
		t, ok := ds[n]
		return t, ok
	}}
	var orphans []string
	for _, kind := range core.AllOpKinds() {
		plan, err := microPlan(kind)
		if err != nil {
			return nil, fmt.Errorf("E2 %v: %w", kind, err)
		}
		want, err := ref.Run(plan)
		if err != nil {
			return nil, fmt.Errorf("E2 %v: reference: %w", kind, err)
		}
		cells := make([]string, 0, 4)
		verified := 0
		anySupport := false
		for _, p := range provs {
			supports, _ := p.Capabilities().SupportsPlan(plan)
			if !supports {
				cells = append(cells, "—")
				continue
			}
			anySupport = true
			got, err := p.Execute(plan)
			if err != nil {
				cells = append(cells, "ERR")
				continue
			}
			// Iterative/windowed float plans may differ in summation
			// order; compare multisets with checksums, falling back to a
			// cardinality check for float-heavy results.
			if table.EqualUnordered(got, want) || approxSameTable(got, want) {
				cells = append(cells, "✓")
				verified++
			} else {
				cells = append(cells, "≠")
			}
		}
		if !anySupport {
			orphans = append(orphans, kind.String())
		}
		res.AddRow(kind.String(), cells[0], cells[1], cells[2], cells[3], fmt.Sprintf("%d providers", verified))
	}
	if len(orphans) > 0 {
		res.Note("VIOLATION of D2: operators with no provider: %v", orphans)
	} else {
		res.Note("every operator is executable on at least one provider; ✓ = provider result matches the reference runtime")
	}
	return res, nil
}

// approxSameTable compares two single-schema tables cell-wise with a
// float tolerance after sorting all columns — order- and rounding-
// insensitive equality for float results.
func approxSameTable(a, b *table.Table) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	keys := make([]table.SortKey, a.NumCols())
	for i := range keys {
		keys[i] = table.SortKey{Col: i}
	}
	as := a.Sort(keys)
	bs := b.Sort(keys)
	for r := 0; r < as.NumRows(); r++ {
		for c := 0; c < as.NumCols(); c++ {
			va, vb := as.Value(r, c), bs.Value(r, c)
			fa, oka := va.AsFloat()
			fb, okb := vb.AsFloat()
			if oka && okb {
				d := fa - fb
				if d > 1e-6 || d < -1e-6 {
					return false
				}
				continue
			}
			if !value.Equal(va, vb) {
				return false
			}
		}
	}
	return true
}
