package experiments

import (
	"fmt"
	"time"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/linalg"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/federation"
	"nexus/internal/planner"
	"nexus/internal/provider"
)

// E3 — Intent Preservation (desideratum D3): "if the original function is
// matrix multiply, it should be recognizable as such at a server that has
// a direct implementation of matrix multiply."
//
// The client writes n×n matrix multiplication as join+group-sum. Without
// intent recognition it runs as a hash join + hash aggregate on the
// relational engine; with it, the planner recovers MatMul and routes it
// to the linalg provider's blocked dense kernel. The experiment sweeps n
// and reports both times and the speedup — the figure's shape (speedup
// growing with n) matters, not the absolute numbers.

// E3Intent runs the sweep.
func E3Intent(sizes []int) (*Result, error) {
	if len(sizes) == 0 {
		sizes = []int{32, 64, 96, 128, 192}
	}
	res := &Result{
		ID:     "E3",
		Title:  "matrix multiply: join+aggregate vs recognized MatMul",
		Claim:  "matrix multiply written relationally should be recognizable at a server with a native implementation",
		Header: []string{"n", "join+agg (relational)", "recognized (linalg)", "speedup", "plans agree"},
	}
	for _, n := range sizes {
		rel := relational.New("rel")
		la := linalg.New("la")
		a := datagen.Matrix(int64(n), n, n, "i", "k")
		b := datagen.Matrix(int64(n)+1, n, n, "k", "j")
		// The relational engine sees the matrices as plain tables (no
		// dimension tags) — exactly how a client limited to a relational
		// API would store them.
		if err := rel.Store("A", mustDropDims(a)); err != nil {
			return nil, err
		}
		if err := rel.Store("B", mustDropDims(b)); err != nil {
			return nil, err
		}
		if err := la.Store("A", mustDropDims(a)); err != nil {
			return nil, err
		}
		if err := la.Store("B", mustDropDims(b)); err != nil {
			return nil, err
		}
		reg := provider.NewRegistry()
		if err := reg.Add(rel); err != nil {
			return nil, err
		}
		if err := reg.Add(la); err != nil {
			return nil, err
		}

		plan, err := joinAggMatMulPlan()
		if err != nil {
			return nil, err
		}

		// Baseline: no intent; the plan stays join+agg on the relational
		// engine.
		baseOpts := planner.Options{Fold: true, Pushdown: true, Prune: true}
		basePlan, err := planner.Optimize(plan, baseOpts)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		baseOut, err := rel.Execute(basePlan)
		if err != nil {
			return nil, fmt.Errorf("E3 baseline n=%d: %w", n, err)
		}
		baseTime := time.Since(t0)

		// Intent on: recognized, partitioned to linalg.
		intentOpts := planner.DefaultOptions()
		intentPlan, err := planner.Optimize(plan, intentOpts)
		if err != nil {
			return nil, err
		}
		pp, err := planner.Partition(intentPlan, reg, intentOpts)
		if err != nil {
			return nil, err
		}
		if pp.Root().Provider != "la" {
			return nil, fmt.Errorf("E3 n=%d: intent plan routed to %s, want la", n, pp.Root().Provider)
		}
		coord := federation.NewCoordinator(federation.NewInProc(rel), federation.NewInProc(la))
		t1 := time.Now()
		fastOut, _, err := coord.Run(pp, federation.ModeDirect)
		if err != nil {
			return nil, fmt.Errorf("E3 intent n=%d: %w", n, err)
		}
		fastTime := time.Since(t1)

		agree := approxSameTable(baseOut, fastOut)
		res.AddRow(
			fmt.Sprintf("%d", n),
			fmtDur(baseTime),
			fmtDur(fastTime),
			fmt.Sprintf("%.1fx", float64(baseTime)/float64(fastTime)),
			mark(agree),
		)
	}
	res.Note("both sides compute identical cells; the baseline is denied only the intent rewrite (folding/pushdown/pruning stay on)")
	return res, nil
}

func joinAggMatMulPlan() (core.Node, error) {
	a, err := core.NewScan("A", datagen.MatrixSchema("i", "k").DropDims())
	if err != nil {
		return nil, err
	}
	b, err := core.NewScan("B", datagen.MatrixSchema("k", "j").DropDims())
	if err != nil {
		return nil, err
	}
	j, err := core.NewJoin(a, b, core.JoinInner, []string{"k"}, []string{"k"}, nil)
	if err != nil {
		return nil, err
	}
	return core.NewGroupAgg(j, []string{"i", "j"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("v"), expr.Column("v_r")), As: "c"},
	})
}
