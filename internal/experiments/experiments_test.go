package experiments

import (
	"strings"
	"testing"
)

// The experiment suite is itself the strongest integration test in the
// repository: every experiment builds engines, plans, ships and verifies
// results internally and fails loudly on any disagreement.

func TestE1Coverage(t *testing.T) {
	res, err := E1Coverage()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 31 { // 30 queries + total
		t.Fatalf("expected 31 rows, got %d", len(res.Rows))
	}
	total := res.Rows[len(res.Rows)-1]
	if total[4] != "30/30" {
		t.Fatalf("fused algebra must cover 30/30, got %s", total[4])
	}
	// Neither single-model algebra may cover everything (that is the
	// paper's argument for fusion).
	if total[2] == "30/30" || total[3] == "30/30" {
		t.Fatalf("single-model algebra should not cover the whole workload: rel=%s arr=%s", total[2], total[3])
	}
}

func TestE2Translatability(t *testing.T) {
	res, err := E2Translatability()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "VIOLATION") {
			t.Fatalf("translatability violated: %s", n)
		}
	}
	// Every operator row must verify on at least one provider.
	for _, row := range res.Rows {
		if row[5] == "0 providers" {
			t.Fatalf("operator %s verified nowhere", row[0])
		}
		for _, cell := range row[1:5] {
			if cell == "ERR" || cell == "≠" {
				t.Fatalf("operator %s failed on a provider that advertises it: %v", row[0], row)
			}
		}
	}
}

func TestE3Intent(t *testing.T) {
	res, err := E3Intent([]int{16, 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[4] != "✓" {
			t.Fatalf("plans disagree at n=%s", row[0])
		}
	}
}

func TestE4InteropInProc(t *testing.T) {
	res, err := E4Interop([]int{5000}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 = direct, row 1 = routed.
	if res.Rows[0][3] != "0B" {
		t.Fatalf("direct mode moved intermediates via client: %s", res.Rows[0][3])
	}
	if res.Rows[1][3] == "0B" {
		t.Fatal("routed mode moved no intermediates via client")
	}
}

func TestE4InteropTCP(t *testing.T) {
	res, err := E4Interop([]int{3000}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][3] != "0B" {
		t.Fatalf("direct mode over TCP moved intermediates via client: %s", res.Rows[0][3])
	}
}

func TestE5Iteration(t *testing.T) {
	res, err := E5Iteration(400, 1600, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 strategies, got %d", len(res.Rows))
	}
	// The client loop must pay more round trips than the shipped tree.
	if res.Rows[0][2] <= res.Rows[1][2] {
		t.Fatalf("client loop round trips (%s) should exceed in-engine (%s)", res.Rows[0][2], res.Rows[1][2])
	}
	// Every strategy within 1e-9 of the oracle.
	for _, row := range res.Rows {
		if !strings.HasPrefix(row[4], "0.0e+00") && !strings.Contains(row[4], "e-1") && !strings.Contains(row[4], "e-2") && !strings.Contains(row[4], "e-09") {
			// Accept anything at or below 1e-9.
			if row[4] > "1.0e-09" && !strings.Contains(row[4], "e-1") {
				t.Fatalf("strategy %s deviates from oracle: %s", row[0], row[4])
			}
		}
	}
}

func TestE6Portability(t *testing.T) {
	res, err := E6Portability()
	if err != nil {
		t.Fatal(err)
	}
	total := res.Rows[len(res.Rows)-1]
	if total[3] != "10/10" {
		t.Fatalf("portability mismatch: %s", total[3])
	}
}

func TestE7Shipping(t *testing.T) {
	res, err := E7Shipping([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Tree rows always report 1 round trip.
	for i := 0; i < len(res.Rows); i += 2 {
		if res.Rows[i][3] != "1" {
			t.Fatalf("tree mode at depth %s took %s round trips", res.Rows[i][0], res.Rows[i][3])
		}
	}
	// Op-call at depth 4 must take strictly more round trips than at 1.
	if res.Rows[1][3] >= res.Rows[3][3] {
		t.Fatalf("op-call round trips should grow with depth: %s vs %s", res.Rows[1][3], res.Rows[3][3])
	}
}

func TestE8Ablation(t *testing.T) {
	res, err := E8Ablation(20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[4] != "✓" {
			t.Fatalf("config %s changed the result", row[0])
		}
	}
}

func TestResultFormatting(t *testing.T) {
	r := &Result{ID: "EX", Title: "demo", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.Note("a note with %d", 42)
	s := r.String()
	for _, want := range []string{"EX", "demo", "a note with 42", "bb"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted result missing %q:\n%s", want, s)
		}
	}
}
