package experiments

import (
	"fmt"
	"math"
	"time"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/graph"
	"nexus/internal/engines/relational"
	"nexus/internal/federation"
	"nexus/internal/ref"
	"nexus/internal/table"
)

// E5 — Control iteration: "many areas, such as graph analytics and data
// mining, require repeated execution of an expression until some
// convergence criterion is met."
//
// PageRank on a power-law graph runs under three strategies:
//
//	client-loop — the application issues one algebra query per iteration
//	              and holds the state (the world without control
//	              iteration in the algebra);
//	in-engine   — one shipped Iterate tree; a relational engine runs the
//	              generic loop internally;
//	kernel      — the same tree routed to the graph engine, whose
//	              recognizer swaps in the native CSR kernel.
//
// The table reports wall time, client round trips, and bytes through the
// client for each strategy, plus agreement against the textbook oracle.
func E5Iteration(nVertices, nEdges, iters int) (*Result, error) {
	if nVertices == 0 {
		nVertices, nEdges, iters = 3000, 15000, 10
	}
	const damping = 0.85
	res := &Result{
		ID:     "E5",
		Title:  fmt.Sprintf("PageRank strategies (n=%d, m=%d, %d iterations)", nVertices, nEdges, iters),
		Claim:  "the algebra should support repeated execution of an expression until a convergence criterion is met",
		Header: []string{"strategy", "latency", "client round trips", "bytes via client", "max |Δ| vs oracle"},
	}
	edges := datagen.ZipfGraph(11, nVertices, nEdges)
	vertices := graph.VerticesTable(nVertices)
	oracle := ref.PageRank(datagen.AdjacencyList(edges, nVertices), nVertices, damping, iters)

	plan, err := graph.PageRankPlan("edges", datagen.EdgeSchema(), "vertices", graph.VerticesSchema(), nVertices, damping, iters, 0)
	if err != nil {
		return nil, err
	}

	// --- client-loop ------------------------------------------------------
	relC := relational.New("rel")
	if err := relC.Store("edges", edges); err != nil {
		return nil, err
	}
	if err := relC.Store("vertices", vertices); err != nil {
		return nil, err
	}
	trC := federation.NewInProc(relC)
	var mC federation.Metrics
	t0 := time.Now()
	state, err := clientLoopPageRank(trC, &mC, nVertices, damping, iters)
	if err != nil {
		return nil, fmt.Errorf("E5 client-loop: %w", err)
	}
	clientTime := time.Since(t0)
	res.AddRow("client-loop", fmtDur(clientTime),
		fmt.Sprintf("%d", mC.RoundTrips),
		fmtBytes(mC.ClientBytesIn+mC.ClientBytesOut),
		fmtDelta(state, oracle))

	// --- in-engine generic iterate ----------------------------------------
	relE := relational.New("rel")
	if err := relE.Store("edges", edges); err != nil {
		return nil, err
	}
	if err := relE.Store("vertices", vertices); err != nil {
		return nil, err
	}
	trE := federation.NewInProc(relE)
	var mE federation.Metrics
	t1 := time.Now()
	out, err := trE.Execute(plan, &mE)
	if err != nil {
		return nil, fmt.Errorf("E5 in-engine: %w", err)
	}
	engineTime := time.Since(t1)
	res.AddRow("in-engine iterate", fmtDur(engineTime),
		fmt.Sprintf("%d", mE.RoundTrips),
		fmtBytes(mE.ClientBytesIn+mE.ClientBytesOut),
		fmtDelta(out, oracle))

	// --- native kernel ------------------------------------------------------
	gr := graph.New("graph")
	if err := gr.Store("edges", edges); err != nil {
		return nil, err
	}
	if err := gr.Store("vertices", vertices); err != nil {
		return nil, err
	}
	trG := federation.NewInProc(gr)
	var mG federation.Metrics
	t2 := time.Now()
	out2, err := trG.Execute(plan, &mG)
	if err != nil {
		return nil, fmt.Errorf("E5 kernel: %w", err)
	}
	kernelTime := time.Since(t2)
	if gr.KernelCalls() == 0 {
		return nil, fmt.Errorf("E5: native kernel was not used")
	}
	res.AddRow("native kernel (intent)", fmtDur(kernelTime),
		fmt.Sprintf("%d", mG.RoundTrips),
		fmtBytes(mG.ClientBytesIn+mG.ClientBytesOut),
		fmtDelta(out2, oracle))

	res.Note("one shipped Iterate replaces %d client round trips; the recognized kernel additionally beats the generic loop %.1fx",
		mC.RoundTrips, float64(engineTime)/float64(kernelTime))
	return res, nil
}

// clientLoopPageRank mirrors the canonical loop but drives every
// iteration from the client: materialize state, upload it, run one step,
// download the result.
func clientLoopPageRank(tr federation.Transport, m *federation.Metrics, n int, damping float64, iters int) (*table.Table, error) {
	init, body, err := pageRankStepPlans(n, damping)
	if err != nil {
		return nil, err
	}
	state, err := tr.Execute(init, m)
	if err != nil {
		return nil, err
	}
	for i := 0; i < iters; i++ {
		if err := tr.Store("state", state, m); err != nil {
			return nil, err
		}
		state, err = tr.Execute(body, m)
		if err != nil {
			return nil, err
		}
	}
	tr.Drop("state", m)
	return state, nil
}

// pageRankStepPlans builds the init plan and a single-step plan reading
// the materialized state from the dataset "state".
func pageRankStepPlans(n int, damping float64) (core.Node, core.Node, error) {
	full, err := graph.PageRankPlan("edges", datagen.EdgeSchema(), "vertices", graph.VerticesSchema(), n, damping, 2, 0)
	if err != nil {
		return nil, nil, err
	}
	let := full.(*core.Let)
	it := let.In().(*core.Iterate)
	init := it.Init()

	// Rewrite the body: Var("state") → Scan("state"); keep Var("deg")
	// bound by wrapping the step in the same Let.
	stateScan, err := core.NewScan("state", init.Schema().DropDims())
	if err != nil {
		return nil, nil, err
	}
	body, err := core.Rewrite(it.Body(), func(nd core.Node) (core.Node, error) {
		if v, ok := nd.(*core.Var); ok && v.Name == it.LoopVar {
			return stateScan, nil
		}
		return nd, nil
	})
	if err != nil {
		return nil, nil, err
	}
	step, err := core.NewLet(let.Name, let.Bound(), body)
	if err != nil {
		return nil, nil, err
	}
	return init, step, nil
}

func fmtDelta(t *table.Table, oracle []float64) string {
	vs := t.ColByName("v").Ints()
	rs := t.ColByName("rank").Floats()
	worst := 0.0
	for i := range vs {
		d := math.Abs(rs[i] - oracle[vs[i]])
		if d > worst {
			worst = d
		}
	}
	return fmt.Sprintf("%.1e", worst)
}
