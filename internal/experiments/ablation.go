package experiments

import (
	"fmt"
	"time"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/federation"
	"nexus/internal/planner"
	"nexus/internal/provider"
)

// E8 — Optimizer ablation: the rewrites are the plumbing every
// desideratum rests on (a federated plan that ships unfiltered, unpruned
// intermediates makes D4's direct shipping pointless). The cross-site
// join of E4 runs with rewrite sets toggled; the table reports what each
// rewrite buys in shipped bytes and latency.
func E8Ablation(rows int) (*Result, error) {
	if rows == 0 {
		rows = 100000
	}
	res := &Result{
		ID:     "E8",
		Title:  fmt.Sprintf("optimizer ablation on the federated join (%d fact rows)", rows),
		Claim:  "rewrites shrink the intermediates that multi-server plans must ship",
		Header: []string{"configuration", "latency", "peer bytes shipped", "client bytes", "result ok"},
	}
	configs := []struct {
		name string
		opts planner.Options
	}{
		{"none", planner.NoOptions()},
		{"+fold", planner.Options{Fold: true}},
		{"+pushdown", planner.Options{Fold: true, Pushdown: true}},
		{"+prune", planner.Options{Fold: true, Pushdown: true, Prune: true}},
		{"all (default)", planner.DefaultOptions()},
	}

	var wantChecksum uint64
	for i, cfg := range configs {
		siteA := relational.New("siteA")
		if err := siteA.Store("sales", datagen.Sales(41, rows, rows/10+1, 50)); err != nil {
			return nil, err
		}
		siteB := relational.New("siteB")
		if err := siteB.Store("customers", datagen.Customers(42, rows/10+1)); err != nil {
			return nil, err
		}
		reg := provider.NewRegistry()
		if err := reg.Add(siteA); err != nil {
			return nil, err
		}
		if err := reg.Add(siteB); err != nil {
			return nil, err
		}
		plan, err := ablationPlan()
		if err != nil {
			return nil, err
		}
		opt, err := planner.Optimize(plan, cfg.opts)
		if err != nil {
			return nil, err
		}
		pp, err := planner.Partition(opt, reg, cfg.opts)
		if err != nil {
			return nil, err
		}
		coord := federation.NewCoordinator(federation.NewInProc(siteA), federation.NewInProc(siteB))
		t0 := time.Now()
		out, m, err := coord.Run(pp, federation.ModeDirect)
		if err != nil {
			return nil, fmt.Errorf("E8 %s: %w", cfg.name, err)
		}
		elapsed := time.Since(t0)
		sum := out.Checksum()
		if i == 0 {
			wantChecksum = sum
		}
		res.AddRow(cfg.name, fmtDur(elapsed), fmtBytes(m.PeerBytes),
			fmtBytes(m.ClientBytesIn+m.ClientBytesOut), mark(sum == wantChecksum))
	}
	res.Note("every configuration returns the same result; rewrites only change what must move between servers")
	res.Note("pushdown moves the segment predicate into the shipped dimension fragment; prune strips its unused columns")
	return res, nil
}

// ablationPlan is the E4 cross-site join with the selective predicate
// placed ABOVE the join, referencing the shipped side's column — exactly
// the shape where pushdown pays off in a federated setting: without it
// the whole dimension table ships, with it only the matching third does.
func ablationPlan() (core.Node, error) {
	base, err := crossSiteJoinPlan()
	if err != nil {
		return nil, err
	}
	ga := base.(*core.GroupAgg)
	join := ga.Children()[0]
	f, err := core.NewFilter(join, expr.Eq(expr.Column("segment"), expr.CStr("consumer")))
	if err != nil {
		return nil, err
	}
	return core.NewGroupAgg(f, ga.Keys, ga.Aggs)
}
