package experiments

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/exec"
	"nexus/internal/engines/graph"
	"nexus/internal/table"
)

// E1 — Coverage (desideratum D1): "Big Data algebra should express the
// operations commonly requested of data and analysis servers. It should
// at least span standard relational and array operations."
//
// The experiment classifies the 30-query workload by which algebra subset
// can express it — pure relational algebra, pure array algebra, or the
// fused algebra with control iteration — and executes every plan on the
// reference runtime to prove each is real.

// relationalOnlyOps is classical relational algebra plus its conventional
// extensions (grouping, sorting, limits): no dimension-aware operators,
// no control iteration.
var relationalOnlyOps = map[core.OpKind]bool{
	core.KScan: true, core.KLiteral: true,
	core.KFilter: true, core.KProject: true, core.KRename: true, core.KExtend: true,
	core.KJoin: true, core.KProduct: true, core.KGroupAgg: true, core.KDistinct: true,
	core.KSort: true, core.KLimit: true, core.KUnion: true, core.KExcept: true,
	core.KIntersect: true,
}

// arrayOnlyOps is a SciDB-style array algebra: dimension-aware operators
// plus per-cell selection and derivation, but no relational joins,
// grouping, set operations or control iteration.
var arrayOnlyOps = map[core.OpKind]bool{
	core.KScan: true, core.KLiteral: true,
	core.KFilter: true, core.KProject: true, core.KRename: true, core.KExtend: true,
	core.KAsArray: true, core.KDropDims: true, core.KSlice: true, core.KDice: true,
	core.KTranspose: true, core.KWindow: true, core.KReduceDims: true,
	core.KFill: true, core.KShift: true, core.KMatMul: true, core.KElemWise: true,
	core.KSort: true, core.KLimit: true,
}

func opsWithin(plan core.Node, allowed map[core.OpKind]bool) bool {
	ok := true
	core.Walk(plan, func(n core.Node) bool {
		if !allowed[n.Kind()] {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// workloadDatasets materializes small instances of every demo dataset for
// plan verification.
func workloadDatasets() map[string]*table.Table {
	return map[string]*table.Table{
		"sales":     datagen.Sales(1, 400, 40, 20),
		"customers": datagen.Customers(2, 40),
		"products":  datagen.Products(3, 20),
		"A":         datagen.Matrix(4, 12, 12, "i", "k"),
		"B":         datagen.Matrix(5, 12, 12, "k", "j"),
		"series":    datagen.Series(6, 100),
		"grid":      datagen.Grid(7, 32, 32),
		"edges":     datagen.UniformGraph(8, workloadVertices, 800),
		"vertices":  graph.VerticesTable(workloadVertices),
	}
}

// E1Coverage builds, classifies and executes the workload.
func E1Coverage() (*Result, error) {
	res := &Result{
		ID:     "E1",
		Title:  "algebra coverage over a 30-query mixed workload",
		Claim:  "the algebra should at least span standard relational and array operations",
		Header: []string{"query", "class", "relational-only", "array-only", "fused+iterate", "verified"},
	}
	ds := workloadDatasets()
	rt := &exec.Runtime{Datasets: func(n string) (*table.Table, bool) {
		t, ok := ds[n]
		return t, ok
	}}
	counts := map[string]int{}
	total := 0
	for _, wq := range Workload() {
		plan, err := wq.Build()
		if err != nil {
			return nil, fmt.Errorf("E1 %s: build: %w", wq.Name, err)
		}
		rel := opsWithin(plan, relationalOnlyOps)
		arr := opsWithin(plan, arrayOnlyOps)
		out, err := rt.Run(plan)
		verified := err == nil && out != nil
		if err != nil {
			return nil, fmt.Errorf("E1 %s: execute: %w", wq.Name, err)
		}
		res.AddRow(wq.Name, string(wq.Class), mark(rel), mark(arr), mark(true), mark(verified))
		total++
		if rel {
			counts["rel"]++
		}
		if arr {
			counts["arr"]++
		}
		counts["fused"]++
	}
	res.AddRow("TOTAL", fmt.Sprintf("%d queries", total),
		fmt.Sprintf("%d/%d", counts["rel"], total),
		fmt.Sprintf("%d/%d", counts["arr"], total),
		fmt.Sprintf("%d/%d", counts["fused"], total), "")
	res.Note("relational-only = classical relational algebra (+group/sort/limit); array-only = SciDB-style array algebra; fused = this paper's proposal incl. control iteration")
	res.Note("every fused plan executed successfully on the reference runtime (column 'verified')")
	return res, nil
}
