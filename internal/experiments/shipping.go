package experiments

import (
	"fmt"
	"time"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/federation"
	"nexus/internal/schema"
)

// E7 — Expression-tree shipping (the LINQ property the paper carries
// over): "It can pass queries to Providers in the form of an expression
// tree, rather than as a series of remote function calls. This capability
// obviously cuts down on communication between client and Provider."
//
// A pipeline of depth d (alternating extend/filter stages over the sales
// table) executes two ways:
//
//	tree    — the whole pipeline ships as ONE encoded plan; one round trip;
//	op-call — cursor/RPC style: each stage is a separate remote call whose
//	          intermediate result returns to the client and is re-uploaded
//	          for the next stage (2d round trips, all intermediates
//	          through the client).
func E7Shipping(depths []int) (*Result, error) {
	if len(depths) == 0 {
		depths = []int{1, 2, 4, 8, 16}
	}
	const rows = 20000
	res := &Result{
		ID:     "E7",
		Title:  "query shipping: one expression tree vs per-operator remote calls",
		Claim:  "passing queries as expression trees cuts down on communication between client and Provider",
		Header: []string{"depth", "mode", "latency", "round trips", "bytes via client"},
	}
	for _, d := range depths {
		eng := relational.New("srv")
		if err := eng.Store("sales", datagen.Sales(31, rows, 500, 50)); err != nil {
			return nil, err
		}
		tr := federation.NewInProc(eng)

		// Tree mode.
		plan, err := pipelinePlan("sales", d)
		if err != nil {
			return nil, err
		}
		var mt federation.Metrics
		t0 := time.Now()
		treeOut, err := tr.Execute(plan, &mt)
		if err != nil {
			return nil, fmt.Errorf("E7 tree d=%d: %w", d, err)
		}
		treeTime := time.Since(t0)
		res.AddRow(fmt.Sprintf("%d", d), "tree", fmtDur(treeTime),
			fmt.Sprintf("%d", mt.RoundTrips), fmtBytes(mt.ClientBytesIn+mt.ClientBytesOut))

		// Per-operator calls.
		var mo federation.Metrics
		t1 := time.Now()
		cur := "sales"
		for stage := 0; stage < d; stage++ {
			step, err := pipelineStage(cur, stage, eng)
			if err != nil {
				return nil, err
			}
			out, err := tr.Execute(step, &mo)
			if err != nil {
				return nil, fmt.Errorf("E7 op-call d=%d stage %d: %w", d, stage, err)
			}
			next := fmt.Sprintf("__cursor_%d", stage)
			if err := tr.Store(next, out, &mo); err != nil {
				return nil, err
			}
			cur = next
		}
		final, err := core.NewScan(cur, mustSchema(eng, cur))
		if err != nil {
			return nil, err
		}
		opOut, err := tr.Execute(final, &mo)
		if err != nil {
			return nil, err
		}
		opTime := time.Since(t1)
		res.AddRow(fmt.Sprintf("%d", d), "op-call", fmtDur(opTime),
			fmt.Sprintf("%d", mo.RoundTrips), fmtBytes(mo.ClientBytesIn+mo.ClientBytesOut))

		if treeOut.Checksum() != opOut.Checksum() {
			return nil, fmt.Errorf("E7 d=%d: modes disagree", d)
		}
	}
	res.Note("tree mode holds round trips at 1 regardless of depth; op-call mode pays 2 round trips and a full intermediate transfer per stage")
	return res, nil
}

// pipelinePlan builds d alternating extend/filter stages over the input.
func pipelinePlan(dataset string, depth int) (core.Node, error) {
	var n core.Node
	n, err := core.NewScan(dataset, datagen.SalesSchema())
	if err != nil {
		return nil, err
	}
	for stage := 0; stage < depth; stage++ {
		n, err = applyStage(n, stage)
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// applyStage adds one pipeline stage; stages alternate between a column
// derivation and a mild filter so intermediates stay large.
func applyStage(n core.Node, stage int) (core.Node, error) {
	if stage%2 == 0 {
		return core.NewExtend(n, []core.ColDef{{
			Name: fmt.Sprintf("d%d", stage),
			E:    expr.Add(expr.Column("price"), expr.CFloat(float64(stage))),
		}})
	}
	return core.NewFilter(n, expr.Gt(expr.Column("qty"), expr.CInt(0)))
}

// pipelineStage builds stage k as a standalone plan over the cursor
// dataset.
func pipelineStage(dataset string, stage int, eng *relational.Engine) (core.Node, error) {
	sch := mustSchema(eng, dataset)
	n, err := core.NewScan(dataset, sch)
	if err != nil {
		return nil, err
	}
	return applyStage(n, stage)
}

func mustSchema(eng *relational.Engine, name string) schema.Schema {
	sch, ok := eng.DatasetSchema(name)
	if !ok {
		panic("E7: missing dataset " + name)
	}
	return sch
}
