package provider

import (
	"testing"

	"nexus/internal/core"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

func TestCapabilityBitset(t *testing.T) {
	c := NewCapabilities(core.KScan, core.KFilter, core.KJoin)
	if !c.Supports(core.KScan) || !c.Supports(core.KJoin) {
		t.Fatal("declared ops missing")
	}
	if c.Supports(core.KMatMul) {
		t.Fatal("undeclared op present")
	}
	w := c.Without(core.KJoin)
	if w.Supports(core.KJoin) || !w.Supports(core.KScan) {
		t.Fatal("Without broken")
	}
	if !c.Supports(core.KJoin) {
		t.Fatal("Without mutated the receiver")
	}
	all := AllOps()
	for _, k := range core.AllOpKinds() {
		if !all.Supports(k) {
			t.Fatalf("AllOps missing %v", k)
		}
	}
}

func TestCapabilityKernels(t *testing.T) {
	c := NewCapabilities(core.KScan).WithKernels("pagerank", "cc")
	if !c.SupportsKernel("pagerank") || c.SupportsKernel("sssp") {
		t.Fatal("kernels broken")
	}
	if ks := c.Kernels(); len(ks) != 2 || ks[0] != "cc" {
		t.Fatalf("Kernels() = %v (want sorted)", ks)
	}
	// WithKernels must not mutate.
	c2 := c.WithKernels("sssp")
	if c.SupportsKernel("sssp") {
		t.Fatal("WithKernels mutated the receiver")
	}
	if !c2.SupportsKernel("sssp") || !c2.SupportsKernel("cc") {
		t.Fatal("WithKernels dropped kernels")
	}
}

func TestCapabilityBitsRoundTrip(t *testing.T) {
	c := NewCapabilities(core.KScan, core.KIterate).WithKernels("pagerank")
	back := FromBits(c.Bits(), c.Kernels())
	for _, k := range core.AllOpKinds() {
		if c.Supports(k) != back.Supports(k) {
			t.Fatalf("bit round trip differs at %v", k)
		}
	}
	if !back.SupportsKernel("pagerank") {
		t.Fatal("kernel lost in round trip")
	}
}

func TestSupportsPlan(t *testing.T) {
	sch := schema.New(schema.Attribute{Name: "x", Kind: value.KindInt64})
	s, _ := core.NewScan("d", sch)
	d, _ := core.NewDistinct(s)
	c := NewCapabilities(core.KScan)
	ok, missing := c.SupportsPlan(d)
	if ok || missing != core.KDistinct {
		t.Fatalf("SupportsPlan = %v, %v", ok, missing)
	}
	ok, _ = NewCapabilities(core.KScan, core.KDistinct).SupportsPlan(d)
	if !ok {
		t.Fatal("full support rejected")
	}
}

// fakeProvider exercises the registry without an engine.
type fakeProvider struct {
	name string
	data map[string]schema.Schema
}

func (f *fakeProvider) Name() string               { return f.name }
func (f *fakeProvider) Capabilities() Capabilities { return AllOps() }
func (f *fakeProvider) Datasets() []DatasetInfo    { return nil }
func (f *fakeProvider) DatasetSchema(name string) (schema.Schema, bool) {
	s, ok := f.data[name]
	return s, ok
}
func (f *fakeProvider) Execute(core.Node) (*table.Table, error) { return nil, nil }
func (f *fakeProvider) Store(string, *table.Table) error        { return nil }
func (f *fakeProvider) Drop(string)                             {}

func TestRegistry(t *testing.T) {
	sch := schema.New(schema.Attribute{Name: "x", Kind: value.KindInt64})
	a := &fakeProvider{name: "a", data: map[string]schema.Schema{"shared": sch, "onlyA": sch}}
	b := &fakeProvider{name: "b", data: map[string]schema.Schema{"shared": sch, "onlyB": sch}}
	reg := NewRegistry()
	if err := reg.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(&fakeProvider{name: "a"}); err == nil {
		t.Fatal("duplicate provider accepted")
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("Names = %v", got)
	}
	// Replication: first registered wins.
	p, _, ok := reg.FindDataset("shared")
	if !ok || p.Name() != "a" {
		t.Fatalf("FindDataset shared -> %v", p)
	}
	p, _, ok = reg.FindDataset("onlyB")
	if !ok || p.Name() != "b" {
		t.Fatal("FindDataset onlyB broken")
	}
	if _, _, ok := reg.FindDataset("ghost"); ok {
		t.Fatal("found nonexistent dataset")
	}
	if _, ok := reg.Get("b"); !ok {
		t.Fatal("Get broken")
	}
}
