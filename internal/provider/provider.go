// Package provider defines the back-end abstraction of the nexus
// framework — the analogue of a LINQ Provider. A provider hosts named
// datasets, declares which algebra operators it can execute natively
// through a capability set, accepts whole plans (expression trees, not
// per-operator calls), and can store shipped intermediate results so
// that multi-server plans pass data directly between providers.
package provider

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nexus/internal/core"
	"nexus/internal/schema"
	"nexus/internal/table"
)

// Capabilities describes what a provider can execute. Ops is a bitset
// over core.OpKind; Kernels names native iterative kernels (e.g.
// "pagerank") that the planner's intent recognizer may target.
type Capabilities struct {
	ops     uint64
	kernels map[string]bool
}

// NewCapabilities builds a capability set from supported operator kinds.
func NewCapabilities(ops ...core.OpKind) Capabilities {
	var c Capabilities
	for _, k := range ops {
		c.ops |= 1 << uint(k)
	}
	return c
}

// AllOps returns a capability set supporting every algebra operator.
func AllOps() Capabilities {
	return NewCapabilities(core.AllOpKinds()...)
}

// Bits returns the operator bitset for wire transmission.
func (c Capabilities) Bits() uint64 { return c.ops }

// FromBits reconstructs a capability set from its wire form.
func FromBits(bits uint64, kernels []string) Capabilities {
	c := Capabilities{ops: bits}
	if len(kernels) > 0 {
		c.kernels = make(map[string]bool, len(kernels))
		for _, k := range kernels {
			c.kernels[k] = true
		}
	}
	return c
}

// WithKernels returns a copy with the named native kernels added.
func (c Capabilities) WithKernels(names ...string) Capabilities {
	out := c
	out.kernels = make(map[string]bool, len(c.kernels)+len(names))
	for k := range c.kernels {
		out.kernels[k] = true
	}
	for _, n := range names {
		out.kernels[n] = true
	}
	return out
}

// Without returns a copy with the given operator kinds removed.
func (c Capabilities) Without(ops ...core.OpKind) Capabilities {
	out := c
	for _, k := range ops {
		out.ops &^= 1 << uint(k)
	}
	return out
}

// Supports reports whether the operator kind is executable here.
func (c Capabilities) Supports(k core.OpKind) bool {
	return c.ops&(1<<uint(k)) != 0
}

// SupportsKernel reports whether the named native kernel is available.
func (c Capabilities) SupportsKernel(name string) bool { return c.kernels[name] }

// Kernels returns the sorted kernel names.
func (c Capabilities) Kernels() []string {
	out := make([]string, 0, len(c.kernels))
	for k := range c.kernels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SupportsPlan reports whether every operator in the plan is supported;
// when false, the second result names the first unsupported operator.
func (c Capabilities) SupportsPlan(plan core.Node) (bool, core.OpKind) {
	ok := true
	var missing core.OpKind
	core.Walk(plan, func(n core.Node) bool {
		if !c.Supports(n.Kind()) {
			ok = false
			missing = n.Kind()
			return false
		}
		return true
	})
	return ok, missing
}

// String renders the capability set compactly.
func (c Capabilities) String() string {
	var ops []string
	for _, k := range core.AllOpKinds() {
		if c.Supports(k) {
			ops = append(ops, k.String())
		}
	}
	s := strings.Join(ops, ",")
	if len(c.kernels) > 0 {
		s += " kernels:" + strings.Join(c.Kernels(), ",")
	}
	return s
}

// DatasetInfo describes one hosted dataset.
type DatasetInfo struct {
	Name   string
	Schema schema.Schema
	Rows   int64
}

// Provider is a back-end service: a data/analytics server that accepts
// algebra plans. Implementations must be safe for concurrent use.
type Provider interface {
	// Name identifies the provider in plans and diagnostics.
	Name() string
	// Capabilities declares the executable operator set.
	Capabilities() Capabilities
	// Datasets lists hosted datasets.
	Datasets() []DatasetInfo
	// DatasetSchema resolves one dataset's schema.
	DatasetSchema(name string) (schema.Schema, bool)
	// Execute runs a whole plan and returns the result collection.
	Execute(plan core.Node) (*table.Table, error)
	// Store registers a table under a name (shipped intermediates and
	// user data both arrive this way).
	Store(name string, t *table.Table) error
	// Drop removes a dataset (intermediate cleanup).
	Drop(name string)
}

// Appender is the optional append-capable provider extension: rows are
// added to a dataset instead of replacing it, creating the dataset on
// first use. Durable providers implement it natively (a WAL append);
// Append emulates it for everyone else.
type Appender interface {
	Append(name string, t *table.Table) error
}

// appendLocks serializes emulated appends per provider: the
// materialize-concat-store cycle is not atomic, so two concurrent
// appends through it would each re-store their own concatenation and
// the last writer would silently drop the other's rows.
var appendLocks sync.Map // Provider -> *sync.Mutex

// Append adds rows to a provider's dataset. Providers implementing
// Appender get the native (durable, O(rows-added)) path; for the rest
// the existing dataset is materialized, concatenated and re-stored —
// correct, if not cheap, on any back end.
func Append(p Provider, name string, t *table.Table) error {
	if a, ok := p.(Appender); ok {
		return a.Append(name, t)
	}
	mu, _ := appendLocks.LoadOrStore(p, &sync.Mutex{})
	mu.(*sync.Mutex).Lock()
	defer mu.(*sync.Mutex).Unlock()
	sch, ok := p.DatasetSchema(name)
	if !ok {
		return p.Store(name, t)
	}
	if !sch.Equal(t.Schema()) {
		return fmt.Errorf("provider: append schema %v does not match dataset %q schema %v", t.Schema(), name, sch)
	}
	scan, err := core.NewScan(name, sch)
	if err != nil {
		return err
	}
	cur, err := p.Execute(scan)
	if err != nil {
		return fmt.Errorf("provider: append: materialize %q: %w", name, err)
	}
	merged, err := cur.Concat(t)
	if err != nil {
		return err
	}
	return p.Store(name, merged)
}

// Registry is a set of providers keyed by name, shared by the session and
// the federated planner.
type Registry struct {
	providers map[string]Provider
	order     []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{providers: map[string]Provider{}}
}

// Add registers a provider; duplicate names are an error.
func (r *Registry) Add(p Provider) error {
	if _, dup := r.providers[p.Name()]; dup {
		return fmt.Errorf("provider: duplicate provider %q", p.Name())
	}
	r.providers[p.Name()] = p
	r.order = append(r.order, p.Name())
	return nil
}

// Get returns the named provider.
func (r *Registry) Get(name string) (Provider, bool) {
	p, ok := r.providers[name]
	return p, ok
}

// Names returns provider names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// All returns providers in registration order.
func (r *Registry) All() []Provider {
	out := make([]Provider, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.providers[n])
	}
	return out
}

// FindDataset locates the provider hosting the named dataset. When
// several host it (replication), the first in registration order wins.
func (r *Registry) FindDataset(name string) (Provider, schema.Schema, bool) {
	for _, pn := range r.order {
		p := r.providers[pn]
		if s, ok := p.DatasetSchema(name); ok {
			return p, s, true
		}
	}
	return nil, schema.Schema{}, false
}
