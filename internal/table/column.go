// Package table implements the columnar collection type flowing through
// the nexus algebra and its engines: typed column vectors with validity
// bitmaps, row and batch access, stable multi-key sorting, and order-
// sensitive and order-insensitive checksums used to compare results
// across back ends.
package table

import (
	"fmt"

	"nexus/internal/value"
)

// Column is a typed vector of values with an optional validity bitmap.
// All rows share the column's Kind; NULLs are represented by valid=false
// at the row's position (the payload slot is the zero value). A nil
// valid slice means every row is valid — the common case costs nothing.
type Column struct {
	kind   value.Kind
	bools  []bool
	ints   []int64
	floats []float64
	strs   []string
	valid  []bool // nil = all valid
	length int
}

// NewColumn returns an empty column of the given kind with capacity hint n.
func NewColumn(kind value.Kind, n int) *Column {
	c := &Column{kind: kind}
	switch kind {
	case value.KindBool:
		c.bools = make([]bool, 0, n)
	case value.KindInt64:
		c.ints = make([]int64, 0, n)
	case value.KindFloat64:
		c.floats = make([]float64, 0, n)
	case value.KindString:
		c.strs = make([]string, 0, n)
	default:
		panic(fmt.Sprintf("table: NewColumn with kind %v", kind))
	}
	return c
}

// IntColumn wraps an int64 slice as a column without copying.
func IntColumn(vals []int64) *Column {
	return &Column{kind: value.KindInt64, ints: vals, length: len(vals)}
}

// FloatColumn wraps a float64 slice as a column without copying.
func FloatColumn(vals []float64) *Column {
	return &Column{kind: value.KindFloat64, floats: vals, length: len(vals)}
}

// BoolColumn wraps a bool slice as a column without copying.
func BoolColumn(vals []bool) *Column {
	return &Column{kind: value.KindBool, bools: vals, length: len(vals)}
}

// StringColumn wraps a string slice as a column without copying.
func StringColumn(vals []string) *Column {
	return &Column{kind: value.KindString, strs: vals, length: len(vals)}
}

// Kind returns the column's scalar kind.
func (c *Column) Kind() value.Kind { return c.kind }

// Len returns the number of rows.
func (c *Column) Len() int { return c.length }

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.valid != nil && !c.valid[i] }

// HasNulls reports whether any row is NULL.
func (c *Column) HasNulls() bool {
	if c.valid == nil {
		return false
	}
	for _, v := range c.valid {
		if !v {
			return true
		}
	}
	return false
}

// Value returns row i as a value.Value.
func (c *Column) Value(i int) value.Value {
	if c.IsNull(i) {
		return value.Null
	}
	switch c.kind {
	case value.KindBool:
		return value.NewBool(c.bools[i])
	case value.KindInt64:
		return value.NewInt(c.ints[i])
	case value.KindFloat64:
		return value.NewFloat(c.floats[i])
	case value.KindString:
		return value.NewString(c.strs[i])
	}
	return value.Null
}

// Ints returns the raw int64 payload slice. It panics for non-int64
// columns. Callers must not mutate the result; it is exposed for
// vectorized kernels (array and linear-algebra engines).
func (c *Column) Ints() []int64 {
	if c.kind != value.KindInt64 {
		panic("table: Ints() on " + c.kind.String())
	}
	return c.ints
}

// Floats returns the raw float64 payload slice (see Ints).
func (c *Column) Floats() []float64 {
	if c.kind != value.KindFloat64 {
		panic("table: Floats() on " + c.kind.String())
	}
	return c.floats
}

// Bools returns the raw bool payload slice (see Ints).
func (c *Column) Bools() []bool {
	if c.kind != value.KindBool {
		panic("table: Bools() on " + c.kind.String())
	}
	return c.bools
}

// Strs returns the raw string payload slice (see Ints).
func (c *Column) Strs() []string {
	if c.kind != value.KindString {
		panic("table: Strs() on " + c.kind.String())
	}
	return c.strs
}

// Validity returns the raw validity bitmap, or nil when every row is
// valid. Callers must not mutate the result; it is exposed for vectorized
// kernels that carry NULLs through batch evaluation.
func (c *Column) Validity() []bool { return c.valid }

// Append adds v to the column. A NULL appends a zero payload and marks the
// validity bitmap; a kind mismatch (other than numeric widening int→float)
// is an error.
func (c *Column) Append(v value.Value) error {
	if v.IsNull() {
		if c.valid == nil {
			c.valid = make([]bool, c.length, c.length+1)
			for i := range c.valid {
				c.valid[i] = true
			}
		}
		c.appendZero()
		c.valid = append(c.valid, false)
		return nil
	}
	switch c.kind {
	case value.KindBool:
		if v.Kind() != value.KindBool {
			return fmt.Errorf("table: append %v to bool column", v.Kind())
		}
		c.bools = append(c.bools, v.Bool())
	case value.KindInt64:
		if v.Kind() != value.KindInt64 {
			return fmt.Errorf("table: append %v to int64 column", v.Kind())
		}
		c.ints = append(c.ints, v.Int())
	case value.KindFloat64:
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("table: append %v to float64 column", v.Kind())
		}
		c.floats = append(c.floats, f)
	case value.KindString:
		if v.Kind() != value.KindString {
			return fmt.Errorf("table: append %v to string column", v.Kind())
		}
		c.strs = append(c.strs, v.Str())
	}
	c.length++
	if c.valid != nil {
		c.valid = append(c.valid, true)
	}
	return nil
}

func (c *Column) appendZero() {
	switch c.kind {
	case value.KindBool:
		c.bools = append(c.bools, false)
	case value.KindInt64:
		c.ints = append(c.ints, 0)
	case value.KindFloat64:
		c.floats = append(c.floats, 0)
	case value.KindString:
		c.strs = append(c.strs, "")
	}
	c.length++
}

// Gather returns a new column containing rows at the given indices, in
// order. Indices may repeat (hash-join output uses this).
func (c *Column) Gather(idx []int) *Column {
	out := &Column{kind: c.kind, length: len(idx)}
	if c.valid != nil {
		out.valid = make([]bool, len(idx))
		for i, j := range idx {
			out.valid[i] = c.valid[j]
		}
	}
	switch c.kind {
	case value.KindBool:
		out.bools = make([]bool, len(idx))
		for i, j := range idx {
			out.bools[i] = c.bools[j]
		}
	case value.KindInt64:
		out.ints = make([]int64, len(idx))
		for i, j := range idx {
			out.ints[i] = c.ints[j]
		}
	case value.KindFloat64:
		out.floats = make([]float64, len(idx))
		for i, j := range idx {
			out.floats[i] = c.floats[j]
		}
	case value.KindString:
		out.strs = make([]string, len(idx))
		for i, j := range idx {
			out.strs[i] = c.strs[j]
		}
	}
	return out
}

// GatherPad is Gather where index -1 produces a NULL row (outer-join
// padding).
func (c *Column) GatherPad(idx []int) *Column {
	out := &Column{kind: c.kind, length: len(idx)}
	out.valid = make([]bool, len(idx))
	switch c.kind {
	case value.KindBool:
		out.bools = make([]bool, len(idx))
	case value.KindInt64:
		out.ints = make([]int64, len(idx))
	case value.KindFloat64:
		out.floats = make([]float64, len(idx))
	case value.KindString:
		out.strs = make([]string, len(idx))
	}
	for i, j := range idx {
		if j < 0 {
			out.valid[i] = false
			continue
		}
		out.valid[i] = c.valid == nil || c.valid[j]
		switch c.kind {
		case value.KindBool:
			out.bools[i] = c.bools[j]
		case value.KindInt64:
			out.ints[i] = c.ints[j]
		case value.KindFloat64:
			out.floats[i] = c.floats[j]
		case value.KindString:
			out.strs[i] = c.strs[j]
		}
	}
	return out
}

// Slice returns the rows in [lo, hi) as a column sharing storage.
func (c *Column) Slice(lo, hi int) *Column {
	out := &Column{kind: c.kind, length: hi - lo}
	if c.valid != nil {
		out.valid = c.valid[lo:hi]
	}
	switch c.kind {
	case value.KindBool:
		out.bools = c.bools[lo:hi]
	case value.KindInt64:
		out.ints = c.ints[lo:hi]
	case value.KindFloat64:
		out.floats = c.floats[lo:hi]
	case value.KindString:
		out.strs = c.strs[lo:hi]
	}
	return out
}

// AppendColumn appends all rows of o (same kind) to c.
func (c *Column) AppendColumn(o *Column) error {
	if o.kind != c.kind {
		return fmt.Errorf("table: append %v column to %v column", o.kind, c.kind)
	}
	if o.valid != nil && c.valid == nil {
		c.valid = make([]bool, c.length)
		for i := range c.valid {
			c.valid[i] = true
		}
	}
	switch c.kind {
	case value.KindBool:
		c.bools = append(c.bools, o.bools...)
	case value.KindInt64:
		c.ints = append(c.ints, o.ints...)
	case value.KindFloat64:
		c.floats = append(c.floats, o.floats...)
	case value.KindString:
		c.strs = append(c.strs, o.strs...)
	}
	if c.valid != nil {
		if o.valid != nil {
			c.valid = append(c.valid, o.valid...)
		} else {
			for i := 0; i < o.length; i++ {
				c.valid = append(c.valid, true)
			}
		}
	}
	c.length += o.length
	return nil
}

// WithValidity returns a copy of the column's metadata with the given
// validity bitmap attached (payload shared). len(valid) must equal Len().
func (c *Column) WithValidity(valid []bool) *Column {
	out := *c
	out.valid = valid
	return &out
}
