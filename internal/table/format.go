package table

import (
	"fmt"
	"strings"
)

// String renders up to 20 rows as an aligned text table.
func (t *Table) String() string { return t.Format(20) }

// Format renders up to maxRows rows as an aligned text table with a
// schema header, suitable for the shell and examples.
func (t *Table) Format(maxRows int) string {
	n := t.rows
	truncated := false
	if maxRows >= 0 && n > maxRows {
		n = maxRows
		truncated = true
	}
	headers := make([]string, t.NumCols())
	widths := make([]int, t.NumCols())
	for i := 0; i < t.NumCols(); i++ {
		a := t.sch.At(i)
		headers[i] = a.Name
		if a.Dim {
			headers[i] += "#"
		}
		widths[i] = len(headers[i])
	}
	cells := make([][]string, n)
	for r := 0; r < n; r++ {
		cells[r] = make([]string, t.NumCols())
		for c := 0; c < t.NumCols(); c++ {
			s := t.Value(r, c).String()
			// Unquote strings for display.
			if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
				s = s[1 : len(s)-1]
			}
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for c, s := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], s)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, t.NumCols())
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	if truncated {
		fmt.Fprintf(&b, "... (%d rows total)\n", t.rows)
	}
	return b.String()
}
