package table

import (
	"strings"
	"testing"
	"testing/quick"

	"nexus/internal/schema"
	"nexus/internal/value"
)

func demoSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "id", Kind: value.KindInt64},
		schema.Attribute{Name: "name", Kind: value.KindString},
		schema.Attribute{Name: "score", Kind: value.KindFloat64},
	)
}

func demoTable(t *testing.T) *Table {
	t.Helper()
	b := NewBuilder(demoSchema(), 4)
	b.MustAppend(value.NewInt(1), value.NewString("ann"), value.NewFloat(3.5))
	b.MustAppend(value.NewInt(2), value.NewString("bob"), value.NewFloat(1.25))
	b.MustAppend(value.NewInt(3), value.NewString("cat"), value.Null)
	b.MustAppend(value.NewInt(4), value.NewString("dan"), value.NewFloat(9))
	return b.Build()
}

func TestBuilderAndAccess(t *testing.T) {
	tab := demoTable(t)
	if tab.NumRows() != 4 || tab.NumCols() != 3 {
		t.Fatalf("shape %dx%d", tab.NumRows(), tab.NumCols())
	}
	if got := tab.Value(1, 1); got.Str() != "bob" {
		t.Fatalf("value(1,1) = %v", got)
	}
	if !tab.Value(2, 2).IsNull() {
		t.Fatal("null lost")
	}
	if tab.ColByName("score") == nil || tab.ColByName("nope") != nil {
		t.Fatal("ColByName broken")
	}
	row := tab.Row(0, nil)
	if len(row) != 3 || row[0].Int() != 1 {
		t.Fatalf("row = %v", row)
	}
}

func TestBuilderArityError(t *testing.T) {
	b := NewBuilder(demoSchema(), 1)
	if err := b.Append(value.NewInt(1)); err == nil {
		t.Fatal("arity error missed")
	}
	if err := b.Append(value.NewBool(true), value.NewString("x"), value.NewFloat(1)); err == nil {
		t.Fatal("kind error missed")
	}
}

func TestGatherSliceProject(t *testing.T) {
	tab := demoTable(t)
	g := tab.Gather([]int{3, 0, 3})
	if g.NumRows() != 3 || g.Value(0, 0).Int() != 4 || g.Value(2, 0).Int() != 4 {
		t.Fatal("gather broken")
	}
	s := tab.Slice(1, 3)
	if s.NumRows() != 2 || s.Value(0, 0).Int() != 2 {
		t.Fatal("slice broken")
	}
	if tab.Slice(2, 100).NumRows() != 2 {
		t.Fatal("slice clamping broken")
	}
	if tab.Slice(-5, 2).NumRows() != 2 {
		t.Fatal("slice negative clamp broken")
	}
	p := tab.Project([]int{2, 0})
	if p.NumCols() != 2 || p.Schema().At(0).Name != "score" {
		t.Fatal("project broken")
	}
}

func TestSortStable(t *testing.T) {
	sch := schema.New(
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "seq", Kind: value.KindInt64},
	)
	b := NewBuilder(sch, 6)
	for i, k := range []int64{2, 1, 2, 1, 2, 1} {
		b.MustAppend(value.NewInt(k), value.NewInt(int64(i)))
	}
	sorted := b.Build().Sort([]SortKey{{Col: 0}})
	seqs := sorted.Col(1).Ints()
	// Stable: within k=1 group the original order 1,3,5 is kept.
	if seqs[0] != 1 || seqs[1] != 3 || seqs[2] != 5 {
		t.Fatalf("not stable: %v", seqs)
	}
	desc := b.Build().Sort([]SortKey{{Col: 0, Desc: true}})
	if desc.Value(0, 0).Int() != 2 {
		t.Fatal("desc broken")
	}
}

func TestNullsSortFirst(t *testing.T) {
	tab := demoTable(t)
	sorted := tab.Sort([]SortKey{{Col: 2}})
	if !sorted.Value(0, 2).IsNull() {
		t.Fatal("null should sort first")
	}
}

func TestConcat(t *testing.T) {
	tab := demoTable(t)
	both, err := tab.Concat(tab)
	if err != nil {
		t.Fatal(err)
	}
	if both.NumRows() != 8 {
		t.Fatalf("concat rows = %d", both.NumRows())
	}
	// Null positions preserved through concat.
	if !both.Value(2, 2).IsNull() || !both.Value(6, 2).IsNull() {
		t.Fatal("concat lost nulls")
	}
}

func TestChecksums(t *testing.T) {
	tab := demoTable(t)
	shuffled := tab.Gather([]int{3, 1, 0, 2})
	if tab.Checksum() != shuffled.Checksum() {
		t.Fatal("checksum must be order-independent")
	}
	if tab.OrderedChecksum() == shuffled.OrderedChecksum() {
		t.Fatal("ordered checksum must be order-sensitive")
	}
	different := tab.Slice(0, 3)
	if tab.Checksum() == different.Checksum() {
		t.Fatal("different tables share a checksum")
	}
}

func TestEqualityHelpers(t *testing.T) {
	tab := demoTable(t)
	if !EqualRows(tab, demoTable(t)) {
		t.Fatal("EqualRows on identical tables")
	}
	shuffled := tab.Gather([]int{1, 0, 2, 3})
	if EqualRows(tab, shuffled) {
		t.Fatal("EqualRows ignored order")
	}
	if !EqualUnordered(tab, shuffled) {
		t.Fatal("EqualUnordered rejected permutation")
	}
	if EqualUnordered(tab, tab.Slice(0, 3)) {
		t.Fatal("EqualUnordered size mismatch missed")
	}
	// Multiset semantics: duplicate counts matter.
	dup1 := tab.Gather([]int{0, 0, 1})
	dup2 := tab.Gather([]int{0, 1, 1})
	if EqualUnordered(dup1, dup2) {
		t.Fatal("EqualUnordered ignored multiplicity")
	}
}

func TestColumnGatherPad(t *testing.T) {
	c := IntColumn([]int64{10, 20, 30})
	padded := c.GatherPad([]int{1, -1, 2})
	if padded.Len() != 3 || !padded.IsNull(1) || padded.Ints()[0] != 20 {
		t.Fatal("GatherPad broken")
	}
}

func TestColumnAppendColumnValidity(t *testing.T) {
	a := NewColumn(value.KindInt64, 2)
	if err := a.Append(value.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	b := NewColumn(value.KindInt64, 2)
	if err := b.Append(value.Null); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(value.NewInt(5)); err != nil {
		t.Fatal(err)
	}
	if err := a.AppendColumn(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 || !a.IsNull(1) || a.IsNull(2) || a.IsNull(0) {
		t.Fatal("validity merge broken")
	}
	s := StringColumn([]string{"x"})
	if err := a.AppendColumn(s); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestFormat(t *testing.T) {
	out := demoTable(t).Format(2)
	if !strings.Contains(out, "id") || !strings.Contains(out, "ann") {
		t.Fatalf("format output:\n%s", out)
	}
	if !strings.Contains(out, "4 rows total") {
		t.Fatalf("truncation marker missing:\n%s", out)
	}
	// Dim marker in header.
	sch := schema.New(schema.Attribute{Name: "t", Kind: value.KindInt64, Dim: true})
	dim := MustNew(sch, []*Column{IntColumn([]int64{1})})
	if !strings.Contains(dim.String(), "t#") {
		t.Fatal("dim marker missing")
	}
}

func TestNewValidation(t *testing.T) {
	sch := demoSchema()
	if _, err := New(sch, []*Column{IntColumn([]int64{1})}); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	if _, err := New(sch, []*Column{
		IntColumn([]int64{1}), StringColumn([]string{"a"}), IntColumn([]int64{3}),
	}); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if _, err := New(sch, []*Column{
		IntColumn([]int64{1, 2}), StringColumn([]string{"a"}), FloatColumn([]float64{1}),
	}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// Property: Gather(identity) preserves equality and checksums.
func TestGatherIdentityProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		sch := schema.New(schema.Attribute{Name: "x", Kind: value.KindInt64})
		tab := MustNew(sch, []*Column{IntColumn(vals)})
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		g := tab.Gather(idx)
		return EqualRows(tab, g) && tab.OrderedChecksum() == g.OrderedChecksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sorting is idempotent.
func TestSortIdempotentProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		sch := schema.New(schema.Attribute{Name: "x", Kind: value.KindInt64})
		tab := MustNew(sch, []*Column{IntColumn(vals)})
		s1 := tab.Sort([]SortKey{{Col: 0}})
		s2 := s1.Sort([]SortKey{{Col: 0}})
		return EqualRows(s1, s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
