package table

import (
	"fmt"
	"sort"

	"nexus/internal/schema"
	"nexus/internal/value"
)

// Table is an immutable columnar collection: a schema plus one column per
// attribute, all of equal length. Query results are Tables — collections
// in the client environment, per the paper's "no cursors" property.
type Table struct {
	sch  schema.Schema
	cols []*Column
	rows int
}

// New assembles a table from a schema and matching columns. Column kinds
// and lengths must agree with the schema.
func New(sch schema.Schema, cols []*Column) (*Table, error) {
	if len(cols) != sch.Len() {
		return nil, fmt.Errorf("table: %d columns for schema of %d attributes", len(cols), sch.Len())
	}
	rows := 0
	for i, c := range cols {
		if c.Kind() != sch.At(i).Kind {
			return nil, fmt.Errorf("table: column %d is %v, schema wants %v (%s)", i, c.Kind(), sch.At(i).Kind, sch.At(i).Name)
		}
		if i == 0 {
			rows = c.Len()
		} else if c.Len() != rows {
			return nil, fmt.Errorf("table: column %d has %d rows, expected %d", i, c.Len(), rows)
		}
	}
	return &Table{sch: sch, cols: cols, rows: rows}, nil
}

// MustNew is New panicking on error, for construction from code.
func MustNew(sch schema.Schema, cols []*Column) *Table {
	t, err := New(sch, cols)
	if err != nil {
		panic(err)
	}
	return t
}

// Empty returns an empty table with the given schema.
func Empty(sch schema.Schema) *Table {
	cols := make([]*Column, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		cols[i] = NewColumn(sch.At(i).Kind, 0)
	}
	return &Table{sch: sch, cols: cols}
}

// Schema returns the table's schema.
func (t *Table) Schema() schema.Schema { return t.sch }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Col returns the i-th column.
func (t *Table) Col(i int) *Column { return t.cols[i] }

// ColByName returns the named column, or nil.
func (t *Table) ColByName(name string) *Column {
	i := t.sch.IndexOf(name)
	if i < 0 {
		return nil
	}
	return t.cols[i]
}

// Value returns the value at (row, col).
func (t *Table) Value(row, col int) value.Value { return t.cols[col].Value(row) }

// Row appends row i's values to buf and returns it.
func (t *Table) Row(i int, buf []value.Value) []value.Value {
	for _, c := range t.cols {
		buf = append(buf, c.Value(i))
	}
	return buf
}

// Gather returns a table of the rows at idx, in order (repeats allowed).
func (t *Table) Gather(idx []int) *Table {
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.Gather(idx)
	}
	return &Table{sch: t.sch, cols: cols, rows: len(idx)}
}

// Slice returns rows [lo, hi) sharing storage with t.
func (t *Table) Slice(lo, hi int) *Table {
	if lo < 0 {
		lo = 0
	}
	if hi > t.rows {
		hi = t.rows
	}
	if hi < lo {
		hi = lo
	}
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.Slice(lo, hi)
	}
	return &Table{sch: t.sch, cols: cols, rows: hi - lo}
}

// Project returns the table restricted to the given column positions.
func (t *Table) Project(positions []int) *Table {
	cols := make([]*Column, len(positions))
	for i, p := range positions {
		cols[i] = t.cols[p]
	}
	return &Table{sch: t.sch.Project(positions), cols: cols, rows: t.rows}
}

// WithSchema returns the same columns under a different schema (kinds must
// match position-wise); used by rename and dimension-tagging operators.
func (t *Table) WithSchema(sch schema.Schema) (*Table, error) {
	return New(sch, t.cols)
}

// Concat appends the rows of more tables (schemas must have equal kinds
// position-wise) producing a new table with t's schema.
func (t *Table) Concat(more ...*Table) (*Table, error) {
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		nc := NewColumn(c.Kind(), t.rows)
		if err := nc.AppendColumn(c); err != nil {
			return nil, err
		}
		cols[i] = nc
	}
	rows := t.rows
	for _, m := range more {
		if m.NumCols() != len(cols) {
			return nil, fmt.Errorf("table: concat arity mismatch: %d vs %d", m.NumCols(), len(cols))
		}
		for i := range cols {
			if err := cols[i].AppendColumn(m.cols[i]); err != nil {
				return nil, fmt.Errorf("table: concat column %d: %w", i, err)
			}
		}
		rows += m.rows
	}
	return &Table{sch: t.sch, cols: cols, rows: rows}, nil
}

// Builder accumulates rows into a table.
type Builder struct {
	sch  schema.Schema
	cols []*Column
}

// NewBuilder returns a builder for the schema with capacity hint n rows.
func NewBuilder(sch schema.Schema, n int) *Builder {
	cols := make([]*Column, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		cols[i] = NewColumn(sch.At(i).Kind, n)
	}
	return &Builder{sch: sch, cols: cols}
}

// Append adds one row. len(row) must equal the schema length.
func (b *Builder) Append(row ...value.Value) error {
	if len(row) != len(b.cols) {
		return fmt.Errorf("table: append %d values to %d columns", len(row), len(b.cols))
	}
	for i, v := range row {
		if err := b.cols[i].Append(v); err != nil {
			return fmt.Errorf("table: column %q: %w", b.sch.At(i).Name, err)
		}
	}
	return nil
}

// MustAppend is Append panicking on error.
func (b *Builder) MustAppend(row ...value.Value) {
	if err := b.Append(row...); err != nil {
		panic(err)
	}
}

// Len returns the number of rows appended so far.
func (b *Builder) Len() int {
	if len(b.cols) == 0 {
		return 0
	}
	return b.cols[0].Len()
}

// Build finalizes the table. The builder must not be reused afterwards.
func (b *Builder) Build() *Table {
	rows := 0
	if len(b.cols) > 0 {
		rows = b.cols[0].Len()
	}
	return &Table{sch: b.sch, cols: b.cols, rows: rows}
}

// SortKey names a sort column and direction.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort returns a new table sorted by the keys, using a stable sort so
// that engines produce identical orders for identical inputs.
func (t *Table) Sort(keys []SortKey) *Table {
	idx := make([]int, t.rows)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for _, k := range keys {
			c := value.Compare(t.cols[k.Col].Value(ia), t.cols[k.Col].Value(ib))
			if c != 0 {
				return (c < 0) != k.Desc
			}
		}
		return false
	})
	return t.Gather(idx)
}

// Checksum returns an order-independent 64-bit digest of the table's
// rows: the sum (mod 2^64) of per-row hashes, xored with a hash of the
// row count. Two tables with the same multiset of rows (and compatible
// value equality) produce the same checksum regardless of row order —
// this is what the portability experiments compare across engines.
func (t *Table) Checksum() uint64 {
	var sum uint64
	buf := make([]byte, 0, 64)
	for i := 0; i < t.rows; i++ {
		buf = buf[:0]
		for _, c := range t.cols {
			buf = value.AppendKey(buf, c.Value(i))
		}
		sum += fnv64(buf)
	}
	return sum ^ (uint64(t.rows) * 0x9e3779b97f4a7c15)
}

// OrderedChecksum returns an order-sensitive digest (row hashes chained),
// used when the query specifies an ordering.
func (t *Table) OrderedChecksum() uint64 {
	h := uint64(14695981039346656037)
	buf := make([]byte, 0, 64)
	for i := 0; i < t.rows; i++ {
		buf = buf[:0]
		for _, c := range t.cols {
			buf = value.AppendKey(buf, c.Value(i))
		}
		h = h*1099511628211 + fnv64(buf)
	}
	return h
}

func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// EqualRows reports whether two tables hold identical rows in identical
// order (schema kinds must match position-wise; names may differ).
func EqualRows(a, b *Table) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	for c := 0; c < a.NumCols(); c++ {
		for r := 0; r < a.NumRows(); r++ {
			if !value.Equal(a.Value(r, c), b.Value(r, c)) {
				return false
			}
		}
	}
	return true
}

// EqualUnordered reports whether two tables hold the same multiset of
// rows, irrespective of order.
func EqualUnordered(a, b *Table) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	counts := make(map[string]int, a.NumRows())
	buf := make([]byte, 0, 64)
	for i := 0; i < a.NumRows(); i++ {
		buf = buf[:0]
		for _, c := range a.cols {
			buf = value.AppendKey(buf, c.Value(i))
		}
		counts[string(buf)]++
	}
	for i := 0; i < b.NumRows(); i++ {
		buf = buf[:0]
		for _, c := range b.cols {
			buf = value.AppendKey(buf, c.Value(i))
		}
		k := string(buf)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}
