package lang

import (
	"strings"
	"testing"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/exec"
	"nexus/internal/engines/graph"
	"nexus/internal/schema"
	"nexus/internal/table"
)

func testCatalog() (Catalog, map[string]*table.Table) {
	ds := map[string]*table.Table{
		"sales":     datagen.Sales(1, 500, 30, 10),
		"customers": datagen.Customers(2, 30),
		"grid":      datagen.Grid(3, 8, 8),
		"A":         datagen.Matrix(4, 6, 5, "i", "k"),
		"B":         datagen.Matrix(5, 5, 7, "k", "j"),
		"edges":     datagen.UniformGraph(6, 40, 120),
		"vertices":  graph.VerticesTable(40),
	}
	cat := CatalogFunc(func(name string) (schema.Schema, bool) {
		t, ok := ds[name]
		if !ok {
			return schema.Schema{}, false
		}
		return t.Schema(), true
	})
	return cat, ds
}

func compileAndRun(t *testing.T, src string) *table.Table {
	t.Helper()
	cat, ds := testCatalog()
	plan, err := Compile(src, cat)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	rt := &exec.Runtime{Datasets: func(n string) (*table.Table, bool) {
		tab, ok := ds[n]
		return tab, ok
	}}
	out, err := rt.Run(plan)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return out
}

func TestCompileSimplePipeline(t *testing.T) {
	out := compileAndRun(t, `
		load sales
		| where qty > 3 && region == "EU"
		| extend total = price * qty
		| select sale_id, total
		| sort total desc
		| limit 5
	`)
	if out.NumCols() != 2 {
		t.Fatalf("got %d columns", out.NumCols())
	}
	if out.NumRows() > 5 {
		t.Fatalf("limit ignored: %d rows", out.NumRows())
	}
	totals := out.ColByName("total").Floats()
	for i := 1; i < len(totals); i++ {
		if totals[i] > totals[i-1] {
			t.Fatal("not sorted desc")
		}
	}
}

func TestCompileJoinGroup(t *testing.T) {
	out := compileAndRun(t, `
		load sales
		| join (load customers) on cust_id == cust_id
		| group by segment agg rev = sum(price * qty), n = count()
		| sort rev desc
	`)
	if out.NumRows() == 0 || out.NumRows() > 3 {
		t.Fatalf("got %d segments", out.NumRows())
	}
	if !out.Schema().Has("rev") || !out.Schema().Has("n") {
		t.Fatalf("schema %v", out.Schema())
	}
}

func TestCompileJoinVariants(t *testing.T) {
	for _, kw := range []string{"inner", "left", "semi", "anti"} {
		src := "load sales | join " + kw + " (load customers) on cust_id == cust_id"
		cat, _ := testCatalog()
		plan, err := Compile(src, cat)
		if err != nil {
			t.Fatalf("%s: %v", kw, err)
		}
		j := findNode(plan, core.KJoin)
		if j == nil {
			t.Fatalf("%s: no join node", kw)
		}
	}
}

func TestCompileArrayPipeline(t *testing.T) {
	out := compileAndRun(t, `
		load grid
		| window x(1,1), y(1,1) agg m = avg(v)
		| dice x[1:7], y[1:7]
	`)
	if out.NumRows() != 36 {
		t.Fatalf("diced window: %d rows, want 36", out.NumRows())
	}
	if !out.Schema().Has("m") {
		t.Fatalf("schema %v", out.Schema())
	}
}

func TestCompileSliceReduceFill(t *testing.T) {
	out := compileAndRun(t, `load grid | slice x = 3`)
	if out.NumRows() != 8 || out.Schema().Has("x") {
		t.Fatalf("slice: %d rows, schema %v", out.NumRows(), out.Schema())
	}
	out = compileAndRun(t, `load grid | reduce over y agg s = sum(v)`)
	if out.NumRows() != 8 {
		t.Fatalf("reduce: %d rows", out.NumRows())
	}
	out = compileAndRun(t, `load grid | dice x[0:2], y[0:2] | fill 0.0`)
	if out.NumRows() != 4 {
		t.Fatalf("fill: %d rows", out.NumRows())
	}
}

func TestCompileMatMul(t *testing.T) {
	out := compileAndRun(t, `load A | matmul (load B) as c`)
	if out.NumRows() != 6*7 {
		t.Fatalf("matmul: %d cells", out.NumRows())
	}
	if !out.Schema().Has("c") {
		t.Fatalf("schema %v", out.Schema())
	}
}

func TestCompileSetOps(t *testing.T) {
	out := compileAndRun(t, `
		(load sales | select region)
		| union (load sales | select region)
	`)
	if out.NumRows() != len(datagen.Regions) {
		t.Fatalf("union dedup: %d rows", out.NumRows())
	}
	out = compileAndRun(t, `
		(load sales | select region) | except (load sales | select region | limit 0)
	`)
	if out.NumRows() != len(datagen.Regions) {
		t.Fatalf("except: %d rows", out.NumRows())
	}
}

func TestCompileIterate(t *testing.T) {
	// x converges toward 10 halving the gap each step.
	out := compileAndRun(t, `
		iterate s
		from (load sales | limit 1 | select sale_id | extend x = 0.0 | select sale_id, x)
		step ($s | extend x2 = (x + 10.0) / 2.0 | select sale_id, x2 | rename x2 as x)
		until linf(x) <= 0.000001 max 80
	`)
	if out.NumRows() != 1 {
		t.Fatalf("iterate rows: %d", out.NumRows())
	}
	x := out.ColByName("x").Floats()[0]
	if x < 9.99 || x > 10.01 {
		t.Fatalf("did not converge: %g", x)
	}
}

func TestCompileLet(t *testing.T) {
	out := compileAndRun(t, `
		let big = (load sales | where qty > 5)
		in ($big | union all $big)
	`)
	single := compileAndRun(t, `load sales | where qty > 5`)
	if out.NumRows() != 2*single.NumRows() {
		t.Fatalf("let union: %d vs %d", out.NumRows(), single.NumRows())
	}
}

func TestCompilePageRankSurface(t *testing.T) {
	src := `
		let deg = (load edges | group by src agg deg = count())
		in iterate state
		from (load vertices | extend rank = 0.025)
		step ($state
			| join left $deg on v == src
			| extend share = rank / float(deg)
			| where isnotnull(deg) || isnull(deg)
			| select v, rank, share
			| join (load edges) on v == src
			| group by dst agg insum = sum(share)
			| join left ($state) on dst == v
			| extend nrank = 0.00375 + 0.85 * coalesce(insum, 0.0)
			| select v, nrank
			| rename nrank as rank
		)
		until l1(rank) <= 0.0000001 max 40
	`
	// A simplified PageRank (no dangling redistribution) — exercises
	// iterate + let + joins in the surface syntax. 1/40 = 0.025.
	cat, ds := testCatalog()
	plan, err := Compile(src, cat)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rt := &exec.Runtime{Datasets: func(n string) (*table.Table, bool) {
		tab, ok := ds[n]
		return tab, ok
	}}
	out, err := rt.Run(plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.NumRows() == 0 {
		t.Fatal("no ranks")
	}
}

func TestCompileExprPrecedence(t *testing.T) {
	out := compileAndRun(t, `load sales | extend z = 2 + 3 * 4 | select z | limit 1`)
	if got := out.Value(0, 0).Int(); got != 14 {
		t.Fatalf("2+3*4 = %d", got)
	}
	out = compileAndRun(t, `load sales | extend z = (2 + 3) * 4 | select z | limit 1`)
	if got := out.Value(0, 0).Int(); got != 20 {
		t.Fatalf("(2+3)*4 = %d", got)
	}
	out = compileAndRun(t, `load sales | extend z = -qty | select z | limit 1`)
	if out.Value(0, 0).Int() > 0 {
		t.Fatal("unary minus broken")
	}
}

func TestCompileErrors(t *testing.T) {
	cat, _ := testCatalog()
	cases := []struct {
		src     string
		wantSub string
	}{
		{"load nope", "unknown dataset"},
		{"load sales | where nocol > 1", "nocol"},
		{"load sales | frobnicate", "unknown pipeline stage"},
		{"load sales | select", "column name"},
		{"load sales | extend x = f00bar(1)", "unknown function"},
		{"load sales |", "stage"},
		{"$undefined", "unbound variable"},
		{`load sales | where region == "unterminated`, "unterminated string"},
		{"load sales extra", "unexpected"},
		{"load sales | group by region agg x = nosuch(qty)", "unknown aggregate"},
		{"load grid | slice q = 3", "slice"},
		{"load sales | join (load customers) on cust_id == nocol", "nocol"},
	}
	for _, tc := range cases {
		_, err := Compile(tc.src, cat)
		if err == nil {
			t.Errorf("%q compiled, expected error containing %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%q: error %q does not mention %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	cat, _ := testCatalog()
	_, err := Compile("load sales\n| where qty >", cat)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error %q lacks line info", err)
	}
}

func findNode(plan core.Node, kind core.OpKind) core.Node {
	var found core.Node
	core.Walk(plan, func(n core.Node) bool {
		if n.Kind() == kind {
			found = n
			return false
		}
		return true
	})
	return found
}

func TestCompileWindowMultiDim(t *testing.T) {
	out := compileAndRun(t, `load grid | window x(1,1) agg s = sum(v)`)
	if out.NumRows() != 64 {
		t.Fatalf("window rows: %d", out.NumRows())
	}
	// Lexer details.
	if _, err := tokenize(`a "x\ty" 1.5e-3 <= != $v # comment`); err != nil {
		t.Fatal(err)
	}
	if !isLetterOnly("abc") || isLetterOnly("a1") {
		t.Fatal("isLetterOnly broken")
	}
}
