package lang

import (
	"strconv"

	"nexus/internal/expr"
	"nexus/internal/value"
)

// Scalar expression parsing with conventional precedence:
//
//	||  <  &&  <  comparisons  <  + -  <  * / %  <  unary - !  <  primary

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPunct, "||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = expr.Or(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPunct, "&&") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = expr.And(l, r)
	}
	return l, nil
}

var cmpOps = map[string]value.BinOp{
	"==": value.OpEq, "!=": value.OpNe,
	"<": value.OpLt, "<=": value.OpLe,
	">": value.OpGt, ">=": value.OpGe,
}

func (p *parser) parseCmp() (expr.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokPunct {
		if op, ok := cmpOps[t.text]; ok {
			p.advance()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return expr.NewBin(op, l, r), nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = expr.Add(l, r)
		case p.accept(tokPunct, "-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = expr.Sub(l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = expr.Mul(l, r)
		case p.accept(tokPunct, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = expr.Div(l, r)
		case p.accept(tokPunct, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = expr.NewBin(value.OpMod, l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	switch {
	case p.accept(tokPunct, "-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals immediately for nicer plans.
		if c, ok := x.(*expr.Const); ok {
			switch c.Val.Kind() {
			case value.KindInt64:
				return expr.CInt(-c.Val.Int()), nil
			case value.KindFloat64:
				return expr.CFloat(-c.Val.Float()), nil
			}
		}
		return expr.Neg(x), nil
	case p.accept(tokPunct, "!"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return expr.Not(x), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, wrap(t, err)
		}
		return expr.CInt(v), nil
	case tokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, wrap(t, err)
		}
		return expr.CFloat(v), nil
	case tokString:
		p.advance()
		return expr.CStr(t.text), nil
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")", "closing )"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		switch t.text {
		case "true":
			p.advance()
			return expr.CBool(true), nil
		case "false":
			p.advance()
			return expr.CBool(false), nil
		case "null":
			p.advance()
			return expr.C(value.Null), nil
		}
		p.advance()
		// isnull/isnotnull are unary operators with call syntax.
		if (t.text == "isnull" || t.text == "isnotnull") && p.at(tokPunct, "(") {
			p.advance()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")", "closing )"); err != nil {
				return nil, err
			}
			op := value.OpIsNull
			if t.text == "isnotnull" {
				op = value.OpIsNotNull
			}
			return &expr.Un{Op: op, X: x}, nil
		}
		// Function call?
		if p.at(tokPunct, "(") {
			if _, ok := expr.LookupFunc(t.text); !ok {
				return nil, wrap(t, errUnknownFunc(t.text))
			}
			p.advance()
			var args []expr.Expr
			if !p.at(tokPunct, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokPunct, ")", "closing )"); err != nil {
				return nil, err
			}
			return expr.NewCall(t.text, args...), nil
		}
		// Qualified column a.b?
		name := t.text
		if p.accept(tokPunct, ".") {
			f, err := p.expect(tokIdent, "", "field name")
			if err != nil {
				return nil, err
			}
			name = name + "." + f.text
		}
		return expr.Column(name), nil
	}
	return nil, p.errf("expected an expression, found %s", t)
}

type errUnknownFunc string

func (e errUnknownFunc) Error() string { return "unknown function " + strconv.Quote(string(e)) }
