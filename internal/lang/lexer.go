// Package lang implements the nexus surface language: a pipeline-style
// query syntax compiled directly to the Big Data algebra. The paper notes
// that "client languages are free to provide syntactic sugar to provide a
// more declarative specification of queries" over the algebraic core —
// this package is that sugar. Example:
//
//	load sales
//	| where qty > 3 && region == "EU"
//	| extend total = price * qty
//	| join (load customers) on cust_id == cust_id
//	| group by segment agg rev = sum(total), n = count()
//	| sort rev desc
//	| limit 10
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct // operators and punctuation
	tokVar   // $name
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	case tokVar:
		return "$" + t.text
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer scans the input into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// multi-character operators, longest first.
var operators = []string{
	"<=", ">=", "==", "!=", "&&", "||",
	"|", "(", ")", ",", "=", "<", ">", "+", "-", "*", "/", "%", "!", "[", "]", ":", ".",
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("lang: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.off < len(l.src); i++ {
		if l.src[l.off] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.off++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance(1)
		case c == '#':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance(1)
			}
		case strings.HasPrefix(l.src[l.off:], "//"):
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	tok := token{pos: l.off, line: l.line, col: l.col}
	if l.off >= len(l.src) {
		tok.kind = tokEOF
		return tok, nil
	}
	c := l.src[l.off]

	// Variables: $name.
	if c == '$' {
		l.advance(1)
		start := l.off
		for l.off < len(l.src) && isIdentChar(l.src[l.off]) {
			l.advance(1)
		}
		if l.off == start {
			return tok, l.errf("expected name after $")
		}
		tok.kind = tokVar
		tok.text = l.src[start:l.off]
		return tok, nil
	}

	// Strings: double-quoted with \ escapes.
	if c == '"' {
		l.advance(1)
		var b strings.Builder
		for {
			if l.off >= len(l.src) {
				return tok, l.errf("unterminated string")
			}
			ch := l.src[l.off]
			if ch == '"' {
				l.advance(1)
				break
			}
			if ch == '\\' {
				if l.off+1 >= len(l.src) {
					return tok, l.errf("unterminated escape")
				}
				esc := l.src[l.off+1]
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '"':
					b.WriteByte(esc)
				default:
					return tok, l.errf("unknown escape \\%c", esc)
				}
				l.advance(2)
				continue
			}
			b.WriteByte(ch)
			l.advance(1)
		}
		tok.kind = tokString
		tok.text = b.String()
		return tok, nil
	}

	// Numbers: integer or float (including exponent).
	if c >= '0' && c <= '9' {
		start := l.off
		isFloat := false
		for l.off < len(l.src) {
			ch := l.src[l.off]
			if ch >= '0' && ch <= '9' {
				l.advance(1)
				continue
			}
			if ch == '.' && !isFloat && l.off+1 < len(l.src) && l.src[l.off+1] >= '0' && l.src[l.off+1] <= '9' {
				isFloat = true
				l.advance(1)
				continue
			}
			if (ch == 'e' || ch == 'E') && l.off+1 < len(l.src) {
				nxt := l.src[l.off+1]
				if nxt == '+' || nxt == '-' || (nxt >= '0' && nxt <= '9') {
					isFloat = true
					l.advance(2)
					continue
				}
			}
			break
		}
		tok.text = l.src[start:l.off]
		if isFloat {
			tok.kind = tokFloat
		} else {
			tok.kind = tokInt
		}
		return tok, nil
	}

	// Identifiers and keywords.
	if isIdentStart(c) {
		start := l.off
		for l.off < len(l.src) && isIdentChar(l.src[l.off]) {
			l.advance(1)
		}
		tok.kind = tokIdent
		tok.text = l.src[start:l.off]
		return tok, nil
	}

	// Operators.
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.off:], op) {
			l.advance(len(op))
			tok.kind = tokPunct
			tok.text = op
			return tok, nil
		}
	}
	return tok, l.errf("unexpected character %q", rune(c))
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// tokenize scans the whole input.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

// isLetterOnly reports whether s is purely letters (sanity helper for
// keyword checks in the parser).
func isLetterOnly(s string) bool {
	for _, r := range s {
		if !unicode.IsLetter(r) {
			return false
		}
	}
	return len(s) > 0
}
