package lang

import (
	"fmt"
	"strconv"

	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/value"
)

// Catalog resolves dataset names to schemas at compile time (the session
// supplies its provider registry).
type Catalog interface {
	DatasetSchema(name string) (schema.Schema, bool)
}

// CatalogFunc adapts a function to the Catalog interface.
type CatalogFunc func(name string) (schema.Schema, bool)

// DatasetSchema implements Catalog.
func (f CatalogFunc) DatasetSchema(name string) (schema.Schema, bool) { return f(name) }

// Compile parses and compiles a surface-language query into an algebra
// plan, resolving dataset schemas through the catalog.
func Compile(src string, cat Catalog) (core.Node, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: cat, vars: map[string]schema.Schema{}}
	n, err := p.parsePipeline()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %s after query", p.peek())
	}
	return n, nil
}

type parser struct {
	toks []token
	pos  int
	cat  Catalog
	vars map[string]schema.Schema
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text, when
// non-empty).
func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// atKeyword matches an identifier keyword.
func (p *parser) atKeyword(kw string) bool { return p.at(tokIdent, kw) }

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string, what string) (token, error) {
	if !p.at(kind, text) {
		return token{}, p.errf("expected %s, found %s", what, p.peek())
	}
	return p.advance(), nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("lang: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// wrap annotates plan-construction errors with the position of tok.
func wrap(tok token, err error) error {
	return fmt.Errorf("lang: %d:%d: %w", tok.line, tok.col, err)
}

// parsePipeline parses: source ('|' stage)*.
func (p *parser) parsePipeline() (core.Node, error) {
	n, err := p.parseSource()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPunct, "|") {
		n, err = p.parseStage(n)
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// parseSource parses a pipeline head: load, parenthesized pipeline,
// variable, iterate or let.
func (p *parser) parseSource() (core.Node, error) {
	switch {
	case p.atKeyword("load"):
		tok := p.advance()
		name, err := p.expect(tokIdent, "", "dataset name")
		if err != nil {
			return nil, err
		}
		sch, ok := p.cat.DatasetSchema(name.text)
		if !ok {
			return nil, wrap(tok, fmt.Errorf("unknown dataset %q", name.text))
		}
		n, err := core.NewScan(name.text, sch)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case p.at(tokPunct, "("):
		p.advance()
		n, err := p.parsePipeline()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")", "closing )"); err != nil {
			return nil, err
		}
		return n, nil
	case p.at(tokVar, ""):
		tok := p.advance()
		sch, ok := p.vars[tok.text]
		if !ok {
			return nil, wrap(tok, fmt.Errorf("unbound variable $%s", tok.text))
		}
		n, err := core.NewVar(tok.text, sch)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case p.atKeyword("iterate"):
		return p.parseIterate()
	case p.atKeyword("let"):
		return p.parseLet()
	}
	return nil, p.errf("expected a source (load, parenthesized query, $var, iterate, let), found %s", p.peek())
}

// parseIterate parses:
//
//	iterate NAME from SOURCE step SOURCE [until metric(col) <= NUM] [max INT]
func (p *parser) parseIterate() (core.Node, error) {
	tok := p.advance() // iterate
	name, err := p.expect(tokIdent, "", "loop variable name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "from", "'from'"); err != nil {
		return nil, err
	}
	init, err := p.parseSource()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "step", "'step'"); err != nil {
		return nil, err
	}
	// Bind the loop variable while compiling the body.
	shadow, had := p.vars[name.text]
	p.vars[name.text] = init.Schema()
	body, err := p.parseSource()
	if had {
		p.vars[name.text] = shadow
	} else {
		delete(p.vars, name.text)
	}
	if err != nil {
		return nil, err
	}
	var conv *core.Convergence
	maxIters := 100
	for {
		switch {
		case p.atKeyword("until"):
			p.advance()
			mTok, err := p.expect(tokIdent, "", "convergence metric (l1, l2, linf, rowdelta)")
			if err != nil {
				return nil, err
			}
			metric, err := core.ParseMetric(mTok.text)
			if err != nil {
				return nil, wrap(mTok, err)
			}
			col := ""
			if p.accept(tokPunct, "(") {
				if !p.at(tokPunct, ")") {
					cTok, err := p.expect(tokIdent, "", "convergence column")
					if err != nil {
						return nil, err
					}
					col = cTok.text
				}
				if _, err := p.expect(tokPunct, ")", "closing )"); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tokPunct, "<=", "'<='"); err != nil {
				return nil, err
			}
			tol, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			conv = &core.Convergence{Metric: metric, Col: col, Tol: tol}
		case p.atKeyword("max"):
			p.advance()
			nTok, err := p.expect(tokInt, "", "iteration bound")
			if err != nil {
				return nil, err
			}
			v, err := strconv.Atoi(nTok.text)
			if err != nil {
				return nil, wrap(nTok, err)
			}
			maxIters = v
		default:
			n, err := core.NewIterate(init, body, name.text, maxIters, conv)
			if err != nil {
				return nil, wrap(tok, err)
			}
			return n, nil
		}
	}
}

// parseLet parses: let NAME = SOURCE in SOURCE.
func (p *parser) parseLet() (core.Node, error) {
	tok := p.advance() // let
	name, err := p.expect(tokIdent, "", "binding name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "=", "'='"); err != nil {
		return nil, err
	}
	bound, err := p.parseSource()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "in", "'in'"); err != nil {
		return nil, err
	}
	shadow, had := p.vars[name.text]
	p.vars[name.text] = bound.Schema()
	in, err := p.parseSource()
	if had {
		p.vars[name.text] = shadow
	} else {
		delete(p.vars, name.text)
	}
	if err != nil {
		return nil, err
	}
	n, err := core.NewLet(name.text, bound, in)
	if err != nil {
		return nil, wrap(tok, err)
	}
	return n, nil
}

// parseStage parses one pipe stage applied to the input plan.
func (p *parser) parseStage(in core.Node) (core.Node, error) {
	tok := p.peek()
	if tok.kind != tokIdent {
		return nil, p.errf("expected a pipeline stage, found %s", tok)
	}
	switch tok.text {
	case "where":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		n, err := core.NewFilter(in, e)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "select":
		p.advance()
		cols, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		n, err := core.NewProject(in, cols)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "extend":
		p.advance()
		var defs []core.ColDef
		for {
			name, err := p.expect(tokIdent, "", "column name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "=", "'='"); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			defs = append(defs, core.ColDef{Name: name.text, E: e})
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		n, err := core.NewExtend(in, defs)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "rename":
		p.advance()
		var from, to []string
		for {
			f, err := p.expect(tokIdent, "", "column name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokIdent, "as", "'as'"); err != nil {
				return nil, err
			}
			t, err := p.expect(tokIdent, "", "new column name")
			if err != nil {
				return nil, err
			}
			from = append(from, f.text)
			to = append(to, t.text)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		n, err := core.NewRename(in, from, to)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "join":
		return p.parseJoin(in)
	case "product":
		p.advance()
		right, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		n, err := core.NewProduct(in, right)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "group":
		p.advance()
		if _, err := p.expect(tokIdent, "by", "'by'"); err != nil {
			return nil, err
		}
		keys, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIdent, "agg", "'agg'"); err != nil {
			return nil, err
		}
		aggs, err := p.parseAggSpecs()
		if err != nil {
			return nil, err
		}
		n, err := core.NewGroupAgg(in, keys, aggs)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "agg":
		p.advance()
		aggs, err := p.parseAggSpecs()
		if err != nil {
			return nil, err
		}
		n, err := core.NewGroupAgg(in, nil, aggs)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "distinct":
		p.advance()
		n, err := core.NewDistinct(in)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "sort":
		p.advance()
		var specs []core.SortSpec
		for {
			c, err := p.expect(tokIdent, "", "sort column")
			if err != nil {
				return nil, err
			}
			desc := false
			if p.atKeyword("desc") {
				p.advance()
				desc = true
			} else if p.atKeyword("asc") {
				p.advance()
			}
			specs = append(specs, core.SortSpec{Col: c.text, Desc: desc})
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		n, err := core.NewSort(in, specs)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "limit":
		p.advance()
		nTok, err := p.expect(tokInt, "", "row count")
		if err != nil {
			return nil, err
		}
		count, _ := strconv.ParseInt(nTok.text, 10, 64)
		offset := int64(0)
		if p.atKeyword("offset") {
			p.advance()
			oTok, err := p.expect(tokInt, "", "offset")
			if err != nil {
				return nil, err
			}
			offset, _ = strconv.ParseInt(oTok.text, 10, 64)
		}
		n, err := core.NewLimit(in, count, offset)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "union":
		p.advance()
		all := false
		if p.atKeyword("all") {
			p.advance()
			all = true
		}
		right, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		n, err := core.NewUnion(in, right, all)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "except":
		p.advance()
		right, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		n, err := core.NewExcept(in, right)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "intersect":
		p.advance()
		right, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		n, err := core.NewIntersect(in, right)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "asarray":
		p.advance()
		dims, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		n, err := core.NewAsArray(in, dims)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "dropdims":
		p.advance()
		n, err := core.NewDropDims(in)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "slice":
		p.advance()
		dim, err := p.expect(tokIdent, "", "dimension name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "=", "'='"); err != nil {
			return nil, err
		}
		at, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		n, err := core.NewSliceDim(in, dim.text, at)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "dice":
		p.advance()
		var bounds []core.DimBound
		for {
			dim, err := p.expect(tokIdent, "", "dimension name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "[", "'['"); err != nil {
				return nil, err
			}
			lo, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ":", "':'"); err != nil {
				return nil, err
			}
			hi, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]", "']'"); err != nil {
				return nil, err
			}
			bounds = append(bounds, core.DimBound{Dim: dim.text, Lo: lo, Hi: hi})
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		n, err := core.NewDice(in, bounds)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "transpose":
		p.advance()
		perm, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		n, err := core.NewTranspose(in, perm)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "window":
		return p.parseWindow(in)
	case "reduce":
		p.advance()
		if _, err := p.expect(tokIdent, "over", "'over'"); err != nil {
			return nil, err
		}
		dims, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIdent, "agg", "'agg'"); err != nil {
			return nil, err
		}
		aggs, err := p.parseAggSpecs()
		if err != nil {
			return nil, err
		}
		n, err := core.NewReduceDims(in, dims, aggs)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "fill":
		p.advance()
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		n, err := core.NewFill(in, v)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "shift":
		p.advance()
		dim, err := p.expect(tokIdent, "", "dimension name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIdent, "by", "'by'"); err != nil {
			return nil, err
		}
		off, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		n, err := core.NewShift(in, dim.text, off)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "matmul":
		p.advance()
		right, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		as := "v"
		if p.atKeyword("as") {
			p.advance()
			a, err := p.expect(tokIdent, "", "output attribute name")
			if err != nil {
				return nil, err
			}
			as = a.text
		}
		n, err := core.NewMatMul(in, right, as)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	case "elemwise":
		p.advance()
		opTok := p.advance()
		var op value.BinOp
		switch opTok.text {
		case "+":
			op = value.OpAdd
		case "-":
			op = value.OpSub
		case "*":
			op = value.OpMul
		case "/":
			op = value.OpDiv
		default:
			return nil, wrap(opTok, fmt.Errorf("elemwise operator must be one of + - * /, found %s", opTok))
		}
		right, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		as := "v"
		if p.atKeyword("as") {
			p.advance()
			a, err := p.expect(tokIdent, "", "output attribute name")
			if err != nil {
				return nil, err
			}
			as = a.text
		}
		n, err := core.NewElemWise(in, right, op, as)
		if err != nil {
			return nil, wrap(tok, err)
		}
		return n, nil
	}
	return nil, p.errf("unknown pipeline stage %q", tok.text)
}

func (p *parser) parseJoin(in core.Node) (core.Node, error) {
	tok := p.advance() // join
	typ := core.JoinInner
	switch {
	case p.atKeyword("inner"):
		p.advance()
	case p.atKeyword("left"):
		p.advance()
		typ = core.JoinLeft
	case p.atKeyword("semi"):
		p.advance()
		typ = core.JoinSemi
	case p.atKeyword("anti"):
		p.advance()
		typ = core.JoinAnti
	}
	right, err := p.parseSource()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "on", "'on'"); err != nil {
		return nil, err
	}
	var lk, rk []string
	for {
		l, err := p.expect(tokIdent, "", "left key column")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "==", "'=='"); err != nil {
			return nil, err
		}
		r, err := p.expect(tokIdent, "", "right key column")
		if err != nil {
			return nil, err
		}
		lk = append(lk, l.text)
		rk = append(rk, r.text)
		if !p.accept(tokPunct, "&&") {
			break
		}
	}
	var residual expr.Expr
	if p.atKeyword("where") {
		p.advance()
		residual, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	n, err := core.NewJoin(in, right, typ, lk, rk, residual)
	if err != nil {
		return nil, wrap(tok, err)
	}
	return n, nil
}

func (p *parser) parseWindow(in core.Node) (core.Node, error) {
	tok := p.advance() // window
	var extents []core.DimExtent
	for {
		dim, err := p.expect(tokIdent, "", "dimension name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
			return nil, err
		}
		before, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ",", "','"); err != nil {
			return nil, err
		}
		after, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
			return nil, err
		}
		if before < 0 {
			before = -before
		}
		extents = append(extents, core.DimExtent{Dim: dim.text, Before: before, After: after})
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokIdent, "agg", "'agg'"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "", "output name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "=", "'='"); err != nil {
		return nil, err
	}
	fnTok, err := p.expect(tokIdent, "", "aggregate function")
	if err != nil {
		return nil, err
	}
	fn, err := core.ParseAggFunc(fnTok.text)
	if err != nil {
		return nil, wrap(fnTok, err)
	}
	if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
		return nil, err
	}
	arg, err := p.expect(tokIdent, "", "attribute name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
		return nil, err
	}
	n, err := core.NewWindow(in, extents, fn, arg.text, name.text)
	if err != nil {
		return nil, wrap(tok, err)
	}
	return n, nil
}

func (p *parser) parseAggSpecs() ([]core.AggSpec, error) {
	var out []core.AggSpec
	for {
		name, err := p.expect(tokIdent, "", "aggregate output name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "=", "'='"); err != nil {
			return nil, err
		}
		fnTok, err := p.expect(tokIdent, "", "aggregate function")
		if err != nil {
			return nil, err
		}
		fn, err := core.ParseAggFunc(fnTok.text)
		if err != nil {
			return nil, wrap(fnTok, err)
		}
		if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
			return nil, err
		}
		var arg expr.Expr
		if p.at(tokPunct, "*") {
			p.advance()
		} else if !p.at(tokPunct, ")") {
			arg, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
			return nil, err
		}
		out = append(out, core.AggSpec{Func: fn, Arg: arg, As: name.text})
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return out, nil
}

func (p *parser) parseIdentList() ([]string, error) {
	var out []string
	for {
		t, err := p.expect(tokIdent, "", "column name")
		if err != nil {
			return nil, err
		}
		out = append(out, t.text)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return out, nil
}

func (p *parser) parseSignedInt() (int64, error) {
	neg := p.accept(tokPunct, "-")
	t, err := p.expect(tokInt, "", "integer")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, wrap(t, err)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseNumber() (float64, error) {
	neg := p.accept(tokPunct, "-")
	t := p.peek()
	if t.kind != tokInt && t.kind != tokFloat {
		return 0, p.errf("expected a number, found %s", t)
	}
	p.advance()
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, wrap(t, err)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseLiteral() (value.Value, error) {
	t := p.peek()
	switch {
	case t.kind == tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Null, wrap(t, err)
		}
		return value.NewInt(v), nil
	case t.kind == tokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return value.Null, wrap(t, err)
		}
		return value.NewFloat(v), nil
	case t.kind == tokString:
		p.advance()
		return value.NewString(t.text), nil
	case t.kind == tokIdent && t.text == "true":
		p.advance()
		return value.NewBool(true), nil
	case t.kind == tokIdent && t.text == "false":
		p.advance()
		return value.NewBool(false), nil
	case t.kind == tokIdent && t.text == "null":
		p.advance()
		return value.Null, nil
	case t.kind == tokPunct && t.text == "-":
		p.advance()
		inner, err := p.parseLiteral()
		if err != nil {
			return value.Null, err
		}
		switch inner.Kind() {
		case value.KindInt64:
			return value.NewInt(-inner.Int()), nil
		case value.KindFloat64:
			return value.NewFloat(-inner.Float()), nil
		}
		return value.Null, wrap(t, fmt.Errorf("cannot negate %v", inner.Kind()))
	}
	return value.Null, p.errf("expected a literal, found %s", t)
}
