package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/planner"
	"nexus/internal/provider"
	"nexus/internal/schema"
	"nexus/internal/table"
)

// Engine is the durable column-store provider: the relational engine's
// algebra over a crash-safe Store. Cold scans read segment files
// directly, skipping segments whose zone maps cannot satisfy the
// filter; warm scans serve from materialized RAM tables. Every mutation
// (Store/Append/Drop) is WAL-durable before it is acknowledged.
type Engine struct {
	name  string
	st    *Store
	cache *exec.ExprCache

	mu  sync.Mutex
	mat map[string]*table.Table // warm materialized datasets

	// Scan counters (atomics), reported by benchmarks and asserted by
	// the pruning tests.
	segmentsScanned atomic.Int64
	segmentsSkipped atomic.Int64
}

var _ provider.Provider = (*Engine)(nil)

// OpenEngine opens (or creates) a durable engine over the data
// directory, recovering any committed state.
func OpenEngine(name, dir string) (*Engine, error) {
	if name == "" {
		name = "durable"
	}
	st, err := Open(dir)
	if err != nil {
		return nil, err
	}
	return &Engine{name: name, st: st, cache: exec.NewExprCache(), mat: map[string]*table.Table{}}, nil
}

// NewEngine wraps an already-open Store as a provider.
func NewEngine(name string, st *Store) *Engine {
	if name == "" {
		name = "durable"
	}
	return &Engine{name: name, st: st, cache: exec.NewExprCache(), mat: map[string]*table.Table{}}
}

// Backing returns the underlying durable store (checkpoints, flushes).
// (Store would collide with the provider interface's Store method.)
func (e *Engine) Backing() *Store { return e.st }

// Name implements provider.Provider.
func (e *Engine) Name() string { return e.name }

// Durable marks the provider's datasets as surviving restarts; the
// session's catalog listing reports it.
func (e *Engine) Durable() bool { return true }

// Capabilities implements provider.Provider: the same operator set as
// the in-memory relational engine — this is a column store, not an
// array or linear-algebra system.
func (e *Engine) Capabilities() provider.Capabilities {
	return provider.AllOps().Without(
		core.KMatMul, core.KWindow, core.KFill, core.KElemWise, core.KTranspose,
	)
}

// SegmentsScanned returns how many segments scans have materialized.
func (e *Engine) SegmentsScanned() int64 { return e.segmentsScanned.Load() }

// SegmentsSkipped returns how many segments zone maps pruned away.
func (e *Engine) SegmentsSkipped() int64 { return e.segmentsSkipped.Load() }

// invalidate forgets the warm copy of a dataset after a mutation.
func (e *Engine) invalidate(name string) {
	e.mu.Lock()
	delete(e.mat, name)
	e.mu.Unlock()
}

// DropCache forgets every warm table and the decoded-segment cache, so
// the next scan is genuinely cold (benchmarks).
func (e *Engine) DropCache() {
	e.mu.Lock()
	e.mat = map[string]*table.Table{}
	e.mu.Unlock()
	e.st.DropSegmentCache()
}

// Store implements provider.Provider: replace the dataset, durably.
func (e *Engine) Store(name string, t *table.Table) error {
	if name == "" {
		return fmt.Errorf("storage %q: empty dataset name", e.name)
	}
	if t == nil {
		return fmt.Errorf("storage %q: nil table for %q", e.name, name)
	}
	if err := e.st.Replace(name, t); err != nil {
		return err
	}
	e.invalidate(name)
	return nil
}

// Append durably appends rows to a dataset (creating it on first use) —
// the streaming-ingest path that Store's replace semantics cannot
// express.
func (e *Engine) Append(name string, t *table.Table) error {
	if err := e.st.Append(name, t); err != nil {
		return err
	}
	e.invalidate(name)
	return nil
}

// Drop implements provider.Provider.
func (e *Engine) Drop(name string) {
	if err := e.st.Drop(name); err == nil {
		e.invalidate(name)
	}
}

// Flush forces unflushed tails into segments (tests and shutdown).
func (e *Engine) Flush() error { return e.st.Flush() }

// Close flushes and closes the underlying store.
func (e *Engine) Close() error { return e.st.Close() }

// DatasetSchema implements provider.Provider.
func (e *Engine) DatasetSchema(name string) (schema.Schema, bool) {
	return e.st.Schema(name)
}

// Datasets implements provider.Provider.
func (e *Engine) Datasets() []provider.DatasetInfo {
	ds := e.st.Datasets()
	out := make([]provider.DatasetInfo, 0, len(ds))
	for _, d := range ds {
		out = append(out, provider.DatasetInfo{Name: d.Name, Schema: d.Schema, Rows: d.Rows})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// dataset resolves a scan: warm RAM copy if present, otherwise
// materialize from one consistent segments+tail snapshot and keep the
// copy warm.
func (e *Engine) dataset(name string) (*table.Table, bool) {
	e.mu.Lock()
	t, ok := e.mat[name]
	e.mu.Unlock()
	if ok {
		return t, true
	}
	refs, parts, ok := e.st.Segments(name)
	if !ok {
		return nil, false
	}
	sch, _ := e.st.Schema(name)
	tables := make([]*table.Table, 0, len(refs)+len(parts))
	for _, ref := range refs {
		seg, err := e.st.ReadSegment(ref)
		if err != nil {
			return nil, false
		}
		tables = append(tables, seg)
	}
	e.segmentsScanned.Add(int64(len(refs)))
	tables = append(tables, parts...)
	t, err := concatTables(sch, tables)
	if err != nil {
		return nil, false
	}
	e.mu.Lock()
	e.mat[name] = t
	e.mu.Unlock()
	return t, true
}

// Execute implements provider.Provider. The runtime's Override hook
// implements the pruned cold-scan path: a Filter directly over a Scan
// of a cold dataset tests the filter's column-vs-constant conjuncts
// (planner.ScanPreds) against each segment's zone maps and reads only
// the segments that can match, plus the unflushed tail.
func (e *Engine) Execute(plan core.Node) (*table.Table, error) {
	if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
		return nil, fmt.Errorf("storage %q: operator %v not supported", e.name, missing)
	}
	rt := &exec.Runtime{Datasets: e.dataset, Override: e.override, Cache: e.cache}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("storage %q: %w", e.name, err)
	}
	return t, nil
}

// override intercepts Filter(Scan(cold dataset)) plans for zone-map
// pruning. Everything else falls through to the generic runtime.
func (e *Engine) override(n core.Node, env *exec.Env, rec exec.RecFunc) (*table.Table, bool, error) {
	f, ok := n.(*core.Filter)
	if !ok {
		return nil, false, nil
	}
	sc, ok := f.Children()[0].(*core.Scan)
	if !ok {
		return nil, false, nil
	}
	e.mu.Lock()
	_, warm := e.mat[sc.Dataset]
	e.mu.Unlock()
	if warm {
		return nil, false, nil // RAM scan: nothing to prune
	}
	preds := planner.ScanPreds(f.Pred)
	if len(preds) == 0 {
		return nil, false, nil
	}
	pruned, ok, err := e.prunedTable(sc.Dataset, sc.Schema(), preds)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil // unknown dataset or schema drift: generic path reports it
	}
	lit, err := core.NewLiteral(pruned)
	if err != nil {
		return nil, false, err
	}
	nf, err := core.NewFilter(lit, f.Pred)
	if err != nil {
		return nil, false, err
	}
	t, err := rec(nf, env)
	return t, true, err
}

// prunedTable materializes the rows of a dataset that can satisfy the
// predicates: segments surviving their zone maps, plus the whole
// unflushed tail (no zone maps yet — it is small by construction).
func (e *Engine) prunedTable(name string, want schema.Schema, preds []planner.ScanPred) (*table.Table, bool, error) {
	refs, parts, ok := e.st.Segments(name)
	if !ok {
		return nil, false, nil
	}
	sch, _ := e.st.Schema(name)
	if !sch.Equal(want) {
		return nil, false, nil
	}
	tables := make([]*table.Table, 0, len(refs)+len(parts))
	for _, ref := range refs {
		if segMayMatch(sch, ref, preds) {
			t, err := e.st.ReadSegment(ref)
			if err != nil {
				return nil, false, err
			}
			tables = append(tables, t)
			e.segmentsScanned.Add(1)
		} else {
			e.segmentsSkipped.Add(1)
		}
	}
	tables = append(tables, parts...)
	t, err := concatTables(sch, tables)
	if err != nil {
		return nil, false, err
	}
	return t, true, nil
}

// segMayMatch tests every predicate against the segment's zone maps; a
// single impossible conjunct excludes the whole segment.
func segMayMatch(sch schema.Schema, ref SegmentRef, preds []planner.ScanPred) bool {
	for _, p := range preds {
		i := sch.IndexOf(p.Col)
		if i < 0 || i >= len(ref.Meta.Zones) {
			continue // unknown column: cannot prune on it
		}
		if !ref.Meta.Zones[i].MayMatch(p.Op, p.Val) {
			return false
		}
	}
	return true
}
