package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/planner"
	"nexus/internal/provider"
	"nexus/internal/schema"
	"nexus/internal/table"
)

// Engine is the durable column-store provider: the relational engine's
// algebra over a crash-safe Store. Cold scans read segment files
// directly, skipping segments whose zone maps cannot satisfy the
// filter; warm scans serve from materialized RAM tables. Every mutation
// (Store/Append/Drop) is WAL-durable before it is acknowledged.
type Engine struct {
	name  string
	st    *Store
	cache *exec.ExprCache

	mu  sync.Mutex
	mat map[string]*table.Table // warm materialized datasets
	// matGen is bumped by every invalidation, so a scan that finished
	// materializing from a snapshot taken BEFORE a compaction (or other
	// mutation) invalidated the dataset does not insert its now-stale
	// table into the warm cache. Guarded by mu.
	matGen uint64

	// Scan counters (atomics), reported by benchmarks and asserted by
	// the pruning tests.
	segmentsScanned atomic.Int64
	segmentsSkipped atomic.Int64

	// Encoded execution (see encodedexec.go): encodedOff disables the
	// encoded kernels (they are on by default — the flag is inverted so
	// the zero value enables them); the counters report how often each
	// kernel served a query.
	encodedOff   atomic.Bool
	encodedScans atomic.Int64
	encodedAggs  atomic.Int64

	// Compactor liveness: the interval StartCompactor runs at (0 when no
	// compactor is running) and the wall time of the last completed pass,
	// both unix nanos. The /healthz compactor check reads them.
	compactorEvery atomic.Int64
	compactorLast  atomic.Int64
}

var _ provider.Provider = (*Engine)(nil)

// OpenEngine opens (or creates) a durable engine over the data
// directory, recovering any committed state.
func OpenEngine(name, dir string) (*Engine, error) {
	if name == "" {
		name = "durable"
	}
	st, err := Open(dir)
	if err != nil {
		return nil, err
	}
	return &Engine{name: name, st: st, cache: exec.NewExprCache(), mat: map[string]*table.Table{}}, nil
}

// NewEngine wraps an already-open Store as a provider.
func NewEngine(name string, st *Store) *Engine {
	if name == "" {
		name = "durable"
	}
	return &Engine{name: name, st: st, cache: exec.NewExprCache(), mat: map[string]*table.Table{}}
}

// Backing returns the underlying durable store (checkpoints, flushes).
// (Store would collide with the provider interface's Store method.)
func (e *Engine) Backing() *Store { return e.st }

// Name implements provider.Provider.
func (e *Engine) Name() string { return e.name }

// Durable marks the provider's datasets as surviving restarts; the
// session's catalog listing reports it.
func (e *Engine) Durable() bool { return true }

// Capabilities implements provider.Provider: the same operator set as
// the in-memory relational engine — this is a column store, not an
// array or linear-algebra system.
func (e *Engine) Capabilities() provider.Capabilities {
	return provider.AllOps().Without(
		core.KMatMul, core.KWindow, core.KFill, core.KElemWise, core.KTranspose,
	)
}

// SegmentsScanned returns how many segments scans have materialized.
func (e *Engine) SegmentsScanned() int64 { return e.segmentsScanned.Load() }

// SegmentsSkipped returns how many segments zone maps pruned away.
func (e *Engine) SegmentsSkipped() int64 { return e.segmentsSkipped.Load() }

// BytesRead returns the cumulative segment-file bytes read from disk;
// projected scans read fewer of them than full scans.
func (e *Engine) BytesRead() int64 { return e.st.BytesRead() }

// Compact runs one compaction pass over the backing store (see
// Store.Compact) and invalidates the warm copies of every dataset that
// got a new generation — their row order changed under the clustering
// sort, and warm and cold scans must keep agreeing.
func (e *Engine) Compact(opts CompactOptions) (CompactStats, error) {
	stats, err := e.st.Compact(opts)
	for _, name := range stats.Datasets {
		e.invalidate(name)
	}
	return stats, err
}

// StartCompactor runs Compact on a timer until the returned stop
// function is called. logf (optional) receives a line per pass that
// merged something, and every error.
func (e *Engine) StartCompactor(every time.Duration, opts CompactOptions, logf func(format string, args ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	e.compactorEvery.Store(int64(every))
	e.compactorLast.Store(time.Now().UnixNano())
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				stats, err := e.Compact(opts)
				e.compactorLast.Store(time.Now().UnixNano())
				switch {
				case err != nil:
					logf("storage %q: compaction: %v", e.name, err)
				case len(stats.Datasets) > 0:
					logf("storage %q: compacted %d segments into %d (%d -> %d bytes) across %v",
						e.name, stats.Merged, stats.Created, stats.BytesIn, stats.BytesOut, stats.Datasets)
				}
			}
		}
	}()
	return func() {
		once.Do(func() {
			e.compactorEvery.Store(0)
			close(done)
		})
	}
}

// Health reports whether the engine can still accept durable writes
// (store open, WAL unpoisoned).
func (e *Engine) Health() error { return e.st.Health() }

// ManifestHealth re-reads the on-disk catalog end to end (see
// Store.ManifestHealth).
func (e *Engine) ManifestHealth() error { return e.st.ManifestHealth() }

// CompactorHealth reports whether the background compactor, if one was
// started, is still making passes: an error when the last completed
// pass is more than three intervals old. With no compactor running it
// is trivially healthy.
func (e *Engine) CompactorHealth() error {
	every := e.compactorEvery.Load()
	if every == 0 {
		return nil
	}
	age := time.Since(time.Unix(0, e.compactorLast.Load()))
	if age > 3*time.Duration(every) {
		return fmt.Errorf("storage %q: compactor stalled: last pass %v ago (interval %v)",
			e.name, age.Round(time.Millisecond), time.Duration(every))
	}
	return nil
}

// DatasetOrderEpoch exposes the store's order epoch for a dataset (see
// Store.OrderEpoch); the server stamps it into dataset-replay resume
// tokens and refuses stale ones.
func (e *Engine) DatasetOrderEpoch(name string) uint64 { return e.st.OrderEpoch(name) }

// SetReplica switches the backing store into replica mode (local
// mutations refused; manifests applied from a primary instead).
func (e *Engine) SetReplica(on bool) { e.st.SetReplica(on) }

// ReplManifest implements the server's replication source: the encoded
// current manifest, optionally after flushing unflushed tails so the
// snapshot covers every committed row.
func (e *Engine) ReplManifest(flush bool) ([]byte, error) {
	if flush {
		if err := e.st.Flush(); err != nil {
			return nil, err
		}
	}
	_, raw := e.st.EncodedManifest()
	return raw, nil
}

// ReplFile serves one raw segment file for replication.
func (e *Engine) ReplFile(name string) ([]byte, error) { return e.st.SegmentFileBytes(name) }

// ReplCheckpoints serves the durable stream checkpoint set for
// replication.
func (e *Engine) ReplCheckpoints() (map[string][]byte, error) { return e.st.CheckpointSet() }

// CurrentGen exposes the store's applied manifest generation.
func (e *Engine) CurrentGen() uint64 { return e.st.CurrentGen() }

// HasSegmentFile reports whether a replicated segment already exists
// locally, so a follower only fetches what it is missing.
func (e *Engine) HasSegmentFile(name string) bool { return e.st.HasSegmentFile(name) }

// PutReplicatedSegment verifies and installs one fetched segment file.
func (e *Engine) PutReplicatedSegment(name string, data []byte) error {
	return e.st.PutReplicatedSegment(name, data)
}

// ApplyReplicatedCheckpoints mirrors the primary's durable stream
// checkpoint set locally.
func (e *Engine) ApplyReplicatedCheckpoints(set map[string][]byte) error {
	return e.st.ApplyReplicatedCheckpoints(set)
}

// ApplyReplicated installs a replicated manifest (replica side) and
// drops every warm table — the datasets under them may have changed
// wholesale.
func (e *Engine) ApplyReplicated(rawManifest []byte) error {
	if err := e.st.ApplyReplicatedManifest(rawManifest); err != nil {
		return err
	}
	e.mu.Lock()
	e.mat = map[string]*table.Table{}
	e.matGen++
	e.mu.Unlock()
	return nil
}

// invalidate forgets the warm copy of a dataset after a mutation.
func (e *Engine) invalidate(name string) {
	e.mu.Lock()
	delete(e.mat, name)
	e.matGen++
	e.mu.Unlock()
}

// DropCache forgets every warm table and the decoded-segment cache, so
// the next scan is genuinely cold (benchmarks).
func (e *Engine) DropCache() {
	e.mu.Lock()
	e.mat = map[string]*table.Table{}
	e.matGen++
	e.mu.Unlock()
	e.st.DropSegmentCache()
}

// Store implements provider.Provider: replace the dataset, durably.
func (e *Engine) Store(name string, t *table.Table) error {
	if name == "" {
		return fmt.Errorf("storage %q: empty dataset name", e.name)
	}
	if t == nil {
		return fmt.Errorf("storage %q: nil table for %q", e.name, name)
	}
	if err := e.st.Replace(name, t); err != nil {
		return err
	}
	e.invalidate(name)
	return nil
}

// Append durably appends rows to a dataset (creating it on first use) —
// the streaming-ingest path that Store's replace semantics cannot
// express.
func (e *Engine) Append(name string, t *table.Table) error {
	if err := e.st.Append(name, t); err != nil {
		return err
	}
	e.invalidate(name)
	return nil
}

// Drop implements provider.Provider.
func (e *Engine) Drop(name string) {
	if err := e.st.Drop(name); err == nil {
		e.invalidate(name)
	}
}

// Flush forces unflushed tails into segments (tests and shutdown).
func (e *Engine) Flush() error { return e.st.Flush() }

// Close flushes and closes the underlying store.
func (e *Engine) Close() error { return e.st.Close() }

// DatasetSchema implements provider.Provider.
func (e *Engine) DatasetSchema(name string) (schema.Schema, bool) {
	return e.st.Schema(name)
}

// Datasets implements provider.Provider.
func (e *Engine) Datasets() []provider.DatasetInfo {
	ds := e.st.Datasets()
	out := make([]provider.DatasetInfo, 0, len(ds))
	for _, d := range ds {
		out = append(out, provider.DatasetInfo{Name: d.Name, Schema: d.Schema, Rows: d.Rows})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// dataset resolves a scan: warm RAM copy if present, otherwise
// materialize from one consistent segments+tail snapshot (via
// Store.readSnapshot, which retries when a compaction swap deletes a
// file under it) and keep the copy warm — unless an invalidation ran
// while materializing, in which case the stale table is returned for
// this query but not cached.
func (e *Engine) dataset(name string) (*table.Table, bool) {
	e.mu.Lock()
	t, ok := e.mat[name]
	gen := e.matGen
	e.mu.Unlock()
	if ok {
		return t, true
	}
	var out *table.Table
	err := e.st.readSnapshot(name, func(refs []SegmentRef, parts []*table.Table) error {
		sch, _ := e.st.Schema(name)
		tables := make([]*table.Table, 0, len(refs)+len(parts))
		for _, ref := range refs {
			seg, err := e.st.ReadSegment(name, ref)
			if err != nil {
				return err
			}
			tables = append(tables, seg)
		}
		e.segmentsScanned.Add(int64(len(refs)))
		metSegScanned.Add(int64(len(refs)))
		tables = append(tables, parts...)
		t, err := concatTables(sch, tables)
		if err != nil {
			return err
		}
		out = t
		return nil
	})
	if err != nil {
		return nil, false
	}
	e.mu.Lock()
	if e.matGen == gen {
		e.mat[name] = out
	}
	e.mu.Unlock()
	return out, true
}

// Execute implements provider.Provider. The runtime's Override hook
// implements the direct cold-scan path: a stack of Filter/Project nodes
// over a Scan of a cold dataset (planner.AnalyzeScanAccess) reads only
// the segments whose zone maps can satisfy the filter conjuncts, and
// only the column pages the stack references — segment-level column
// projection threaded down into the file reader.
func (e *Engine) Execute(plan core.Node) (*table.Table, error) {
	if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
		return nil, fmt.Errorf("storage %q: operator %v not supported", e.name, missing)
	}
	rt := &exec.Runtime{Datasets: e.dataset, Override: e.override, Cache: e.cache}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("storage %q: %w", e.name, err)
	}
	return t, nil
}

// ExecuteTraced is Execute with a per-operator trace attached: tr
// records calls, output rows and inclusive wall time for every node of
// this plan instance (Filter/Project stacks the pushdown kernel
// absorbed show as not executed — the kernel's root carries their
// time).
func (e *Engine) ExecuteTraced(plan core.Node, tr *exec.Trace) (*table.Table, error) {
	if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
		return nil, fmt.Errorf("storage %q: operator %v not supported", e.name, missing)
	}
	rt := &exec.Runtime{Datasets: e.dataset, Override: e.override, Cache: e.cache, Trace: tr}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("storage %q: %w", e.name, err)
	}
	return t, nil
}

// override intercepts Filter/Project stacks over a Scan of a cold
// dataset and serves them with zone-map pruning and column projection.
// Everything else — and anything already warm in RAM — falls through to
// the generic runtime.
func (e *Engine) override(n core.Node, env *exec.Env, rec exec.RecFunc) (*table.Table, bool, error) {
	if t, ok, err := e.encodedAgg(n); ok || err != nil {
		return t, ok, err
	}
	acc, ok := planner.AnalyzeScanAccess(n)
	if !ok {
		return nil, false, nil
	}
	if _, isScan := n.(*core.Scan); isScan {
		return nil, false, nil // bare full-width scan: generic path materializes + warms
	}
	if len(acc.Preds) == 0 && acc.Cols == nil {
		return nil, false, nil // nothing to prune, nothing to project
	}
	e.mu.Lock()
	_, warm := e.mat[acc.Scan.Dataset]
	e.mu.Unlock()
	if warm {
		return nil, false, nil // RAM scan: nothing to win on disk
	}
	narrow, ok, err := e.accessTable(acc)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil // unknown dataset or schema drift: generic path reports it
	}
	lit, err := core.NewLiteral(narrow)
	if err != nil {
		return nil, false, err
	}
	rebuilt, err := substituteScan(n, lit)
	if err != nil {
		return nil, false, err
	}
	t, err := rec(rebuilt, env)
	return t, true, err
}

// substituteScan rebuilds a Filter/Project stack with its Scan leaf
// replaced by the materialized literal; the nodes above re-run schema
// inference, so a projection mistake fails loudly instead of silently
// returning wrong columns.
func substituteScan(n core.Node, lit core.Node) (core.Node, error) {
	if _, ok := n.(*core.Scan); ok {
		return lit, nil
	}
	kids := n.Children()
	if len(kids) != 1 {
		return nil, fmt.Errorf("storage: cannot substitute scan under %T", n)
	}
	nk, err := substituteScan(kids[0], lit)
	if err != nil {
		return nil, err
	}
	return n.WithChildren([]core.Node{nk})
}

// accessTable materializes the slice of a dataset a Filter/Project
// stack needs: segments surviving their zone maps under acc.Preds, each
// read with only the columns in acc.Cols (nil = all), plus the whole
// unflushed tail projected the same way (no zone maps yet — it is small
// by construction). Store.readSnapshot supplies the consistent
// snapshot and the retry when a compaction swap deletes a file mid-read.
func (e *Engine) accessTable(acc planner.ScanAccess) (*table.Table, bool, error) {
	name := acc.Scan.Dataset
	var out *table.Table
	unservable := false // schema drift: let the generic path report it
	err := e.st.readSnapshot(name, func(refs []SegmentRef, parts []*table.Table) error {
		sch, _ := e.st.Schema(name)
		if !sch.Equal(acc.Scan.Schema()) {
			unservable = true
			return nil
		}
		var positions []int
		outSch := sch
		if acc.Cols != nil {
			positions = make([]int, 0, len(acc.Cols))
			for _, c := range acc.Cols {
				i := sch.IndexOf(c)
				if i < 0 {
					unservable = true // stale plan vs dataset schema
					return nil
				}
				positions = append(positions, i)
			}
			outSch = sch.Project(positions)
		}
		tables := make([]*table.Table, 0, len(refs)+len(parts))
		scanned, skipped := int64(0), int64(0)
		for _, ref := range refs {
			if !segMayMatch(sch, ref, acc.Preds) {
				skipped++
				continue
			}
			var t *table.Table
			var err error
			switch {
			case positions != nil && len(acc.Preds) > 0 && e.encodedOn():
				// Encoded pre-filter: evaluate the conjuncts over the
				// pages and materialize only survivors. The stack above
				// re-runs the full predicates, so this is safe even when
				// acc.Preds is not the whole filter.
				var es *EncodedSegment
				if es, err = e.st.ReadSegmentEncoded(name, ref, positions); err == nil {
					var served bool
					t, served, err = encodedFilterTable(es, acc.Preds)
					if err == nil && served {
						e.encodedScans.Add(1)
						metEncodedScans.Inc()
					} else if err == nil {
						t, err = e.st.ReadSegmentColumns(name, ref, positions)
					}
				}
			case positions != nil:
				t, err = e.st.ReadSegmentColumns(name, ref, positions)
			default:
				t, err = e.st.ReadSegment(name, ref)
			}
			if err != nil {
				return err
			}
			tables = append(tables, t)
			scanned++
		}
		e.segmentsScanned.Add(scanned)
		e.segmentsSkipped.Add(skipped)
		metSegScanned.Add(scanned)
		metSegPruned.Add(skipped)
		for _, p := range parts {
			if positions != nil {
				p = p.Project(positions)
			}
			tables = append(tables, p)
		}
		t, err := concatTables(outSch, tables)
		if err != nil {
			return err
		}
		out = t
		return nil
	})
	if errors.Is(err, errNoDataset) || unservable {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// segMayMatch tests every predicate against the segment's zone maps; a
// single impossible conjunct excludes the whole segment.
func segMayMatch(sch schema.Schema, ref SegmentRef, preds []planner.ScanPred) bool {
	for _, p := range preds {
		i := sch.IndexOf(p.Col)
		if i < 0 || i >= len(ref.Meta.Zones) {
			continue // unknown column: cannot prune on it
		}
		if !ref.Meta.Zones[i].MayMatch(p.Op, p.Val) {
			return false
		}
	}
	return true
}
