package storage

import (
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"nexus/internal/table"
	"nexus/internal/value"
)

// Hostile wire inputs for the encoded read path. Every case must come
// back as an error — never a panic, never an out-of-bounds read, never
// a silently-wrong column. Tampered pages get their CRC re-stamped so
// the corruption reaches the structural validators, not the checksum.

// restampPage recomputes a page's trailing CRC after a tamper.
func restampPage(page []byte) {
	crcOff := len(page) - 4
	binary.BigEndian.PutUint32(page[crcOff:], crc32.ChecksumIEEE(page[:crcOff]))
}

// tamperedPage returns a copy of page with 4 bytes at off overwritten
// and the CRC fixed up.
func tamperedPage(page []byte, off int, v uint32) []byte {
	p := append([]byte(nil), page...)
	binary.BigEndian.PutUint32(p[off:], v)
	restampPage(p)
	return p
}

// mustFailPage asserts both decode paths (materializing and encoded)
// reject the page.
func mustFailPage(t *testing.T, page []byte, kind value.Kind, ctx pageCtx, what string) {
	t.Helper()
	if _, err := decodePage(page, kind, ctx); err == nil {
		t.Fatalf("%s: decodePage accepted hostile page", what)
	}
	if _, err := parsePageEncoded(page, kind, ctx); err == nil {
		t.Fatalf("%s: parsePageEncoded accepted hostile page", what)
	}
}

func sharedTestPage(t *testing.T) (page []byte, dict *SharedDict) {
	t.Helper()
	dict = &SharedDict{Col: "tier", Epoch: dictEpochFirst}
	vals := []string{"gold", "silver", "bronze"}
	for _, v := range vals {
		if _, ok := dict.Add(v); !ok {
			t.Fatal("dict full")
		}
	}
	b := table.NewBuilder(rowsTable(0, 1).Schema().Project([]int{1}), 100)
	for i := 0; i < 100; i++ {
		if i%7 == 3 {
			b.MustAppend(value.Null)
		} else {
			b.MustAppend(value.NewString(vals[i%len(vals)]))
		}
	}
	col := b.Build().Col(0)
	return encodePage(col, PageEncDictShared, dict), dict
}

func TestHostileSharedDictPage(t *testing.T) {
	page, dict := sharedTestPage(t)
	ctx := pageCtx{col: "tier", dict: dict}

	// Sanity: the untampered page round-trips on both paths.
	if _, err := decodePage(page, value.KindString, ctx); err != nil {
		t.Fatalf("control decode: %v", err)
	}
	ec, err := parsePageEncoded(page, value.KindString, ctx)
	if err != nil {
		t.Fatalf("control parse: %v", err)
	}
	if ec.Encoding() != PageEncDictShared {
		t.Fatalf("control page encoding = %d", ec.Encoding())
	}

	// Out-of-range code on a valid (non-NULL) row. Row 99 (99%7 != 3) is
	// valid; its code is the last u32 before the CRC.
	hostile := tamperedPage(page, len(page)-8, 0xfffffff0)
	mustFailPage(t, hostile, value.KindString, ctx, "out-of-range code")

	// usedLen claiming a longer dictionary prefix than the catalog holds.
	short := &SharedDict{Col: "tier", Epoch: dict.Epoch, Vals: dict.Vals[:1]}
	mustFailPage(t, page, value.KindString, pageCtx{col: "tier", dict: short}, "usedLen beyond dictionary")

	// Epoch mismatch must surface as the dedicated stale-dictionary
	// error, the signal readSnapshot retries on and stale plans refuse.
	bumped := &SharedDict{Col: "tier", Epoch: dict.Epoch + 1, Vals: dict.Vals}
	if _, err := decodePage(page, value.KindString, pageCtx{col: "tier", dict: bumped}); !isStaleDict(err) {
		t.Fatalf("epoch mismatch: got %v, want stale-dict error", err)
	}
	if _, err := parsePageEncoded(page, value.KindString, pageCtx{col: "tier", dict: bumped}); !isStaleDict(err) {
		t.Fatalf("epoch mismatch (encoded): got %v, want stale-dict error", err)
	}

	// No dictionary at all: the page is undecodable, not a panic.
	mustFailPage(t, page, value.KindString, pageCtx{col: "tier"}, "missing dictionary")

	// Structural verification needs no dictionary (replication verifies
	// fetched segments before the manifest carrying the dicts applies)
	// but must still bounds-check the codes.
	structural := pageCtx{col: "tier", structural: true}
	if _, err := decodePage(page, value.KindString, structural); err != nil {
		t.Fatalf("structural verify of good page: %v", err)
	}
	if _, err := decodePage(hostile, value.KindString, structural); err == nil {
		t.Fatal("structural verify accepted out-of-range code")
	}
}

func TestHostileRLEPage(t *testing.T) {
	b := table.NewBuilder(rowsTable(0, 1).Schema().Project([]int{0}), 96)
	for i := 0; i < 96; i++ {
		b.MustAppend(value.NewInt(int64(i / 16)))
	}
	col := b.Build().Col(0)
	page := encodePage(col, PageEncRLE, nil)
	ctx := pageCtx{col: "k"}
	if _, err := decodePage(page, value.KindInt64, ctx); err != nil {
		t.Fatalf("control decode: %v", err)
	}

	// Payload starts at offset 10: u32 nRuns | runs × {u32 len, ...}.
	const nRunsOff = pageHeaderLen
	const firstLenOff = pageHeaderLen + 4

	// First run claims more rows than the page holds: a naive expander
	// would allocate and fill past the column.
	mustFailPage(t, tamperedPage(page, firstLenOff, 0x7fffff00), value.KindInt64, ctx, "overlong run")
	// Zero-length run: run loops that assume progress would spin.
	mustFailPage(t, tamperedPage(page, firstLenOff, 0), value.KindInt64, ctx, "zero-length run")
	// Run count far past the payload.
	mustFailPage(t, tamperedPage(page, nRunsOff, 0x00ffffff), value.KindInt64, ctx, "run count exceeds page")
	// Truncated mid-run, CRC re-stamped so framing is the failing check.
	trunc := append([]byte(nil), page[:len(page)-9]...)
	trunc = append(trunc, 0, 0, 0, 0)
	restampPage(trunc)
	mustFailPage(t, trunc, value.KindInt64, ctx, "truncated runs")
}

func TestHostilePrivateDictPage(t *testing.T) {
	b := table.NewBuilder(rowsTable(0, 1).Schema().Project([]int{1}), 80)
	for i := 0; i < 80; i++ {
		b.MustAppend(value.NewString([]string{"x", "y", "z"}[i%3]))
	}
	col := b.Build().Col(0)
	page := encodePage(col, PageEncDict, nil)
	ctx := pageCtx{col: "s"}
	if _, err := decodePage(page, value.KindString, ctx); err != nil {
		t.Fatalf("control decode: %v", err)
	}
	// A private-dict page carries its entries inline; the codes are the
	// trailing u32s. Point the last row past the 3-entry dictionary.
	mustFailPage(t, tamperedPage(page, len(page)-8, 12345), value.KindString, ctx, "private dict code out of range")
}

// TestHostileManifestTruncation feeds DecodeManifest every prefix of a
// dictionary-carrying manifest: all must error (CRC or framing), none
// may panic — a half-written MANIFEST file is exactly what a crash
// leaves behind.
func TestHostileManifestTruncation(t *testing.T) {
	m := &Manifest{Gen: 7, WalGen: 7, NextSeg: 3}
	dm := DatasetManifest{
		Name:       "d",
		Schema:     rowsTable(0, 1).Schema(),
		OrderEpoch: 2,
		Segments:   []SegmentRef{{File: "seg-000001.nxs", Meta: SegmentMeta{SchemaHash: SchemaHash(rowsTable(0, 1).Schema()), Rows: 10}}},
		Dicts: []*SharedDict{
			{Col: "s", Epoch: 3, Vals: []string{"gold", "silver", "bronze", "iron"}},
		},
	}
	m.Datasets = append(m.Datasets, dm)
	enc := EncodeManifest(m)

	back, err := DecodeManifest(enc)
	if err != nil {
		t.Fatalf("control: %v", err)
	}
	got := back.Datasets[0].Dicts[0]
	if got.Epoch != 3 || len(got.Vals) != 4 || got.Vals[2] != "bronze" {
		t.Fatalf("dict did not round-trip: %+v", got)
	}

	for i := 0; i < len(enc); i++ {
		if _, err := DecodeManifest(enc[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(enc))
		}
	}

	// A dictionary count pointing past the body must be caught by the
	// count guard even when the CRC is re-stamped to match. The nVals
	// field is the u32(4) right before "gold"'s length prefix.
	marker := "\x00\x00\x00\x04\x00\x00\x00\x04gold"
	tampered := append([]byte(nil), enc...)
	i := strings.Index(string(tampered), marker)
	if i < 0 {
		t.Fatal("dictionary length marker not found in encoding")
	}
	binary.BigEndian.PutUint32(tampered[i:], 0x7fffffff)
	body := tampered[len(manMagic)+4 : len(tampered)-4]
	binary.BigEndian.PutUint32(tampered[len(tampered)-4:], crc32.ChecksumIEEE(body))
	if _, err := DecodeManifest(tampered); err == nil {
		t.Fatal("hostile dictionary length decoded without error")
	}
}

// TestHostileSegmentSharedTruncation truncates a v3 segment at every
// length: DecodeSegmentDicts and VerifySegment must error, never panic.
func TestHostileSegmentSharedTruncation(t *testing.T) {
	dicts := DictSet{}
	tbl := lowCardTable(130)
	data := EncodeSegmentDict(tbl, dicts, true)
	if data[len(segMagic)] != segVersionV3 {
		t.Fatalf("seed segment is v%d, want v3", data[len(segMagic)])
	}
	if _, err := DecodeSegmentDicts(data, dicts); err != nil {
		t.Fatalf("control: %v", err)
	}
	if err := VerifySegment(data); err != nil {
		t.Fatalf("control verify: %v", err)
	}
	step := 1
	if len(data) > 4096 {
		step = 7
	}
	for i := 0; i < len(data); i += step {
		if _, err := DecodeSegmentDicts(data[:i], dicts); err == nil {
			t.Fatalf("truncated segment (%d/%d bytes) decoded", i, len(data))
		}
		if err := VerifySegment(data[:i]); err == nil {
			t.Fatalf("truncated segment (%d/%d bytes) verified", i, len(data))
		}
	}
}

// lowCardTable builds rows of rowsTable's schema whose string column is
// low-cardinality, so dictionary encodings win.
func lowCardTable(rows int) *table.Table {
	base := rowsTable(0, 1)
	b := table.NewBuilder(base.Schema(), rows)
	for i := 0; i < rows; i++ {
		b.MustAppend(
			value.NewInt(int64(i/9)),
			value.NewString([]string{"gold", "silver", "bronze", "iron"}[i%4]),
			value.NewFloat(float64(i%5)),
		)
	}
	return b.Build()
}
