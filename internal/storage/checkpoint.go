package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nexus/internal/wire"
)

// Durable stream checkpoints. A nexus server hosting long-running
// subscriptions periodically persists each pipeline's portable state
// (the same wire.WindowState that crosses the network on detach, plus
// the subscription descriptor with its per-partition resume offset)
// under a caller-chosen key. Each checkpoint is one atomically-replaced
// file, so a SIGKILL mid-checkpoint leaves the previous version intact
// — never a torn one.

// ckptDir is the checkpoint subdirectory of a data directory.
const ckptDir = "ckpt"

var ckptMagic = []byte("NXCKP\x01\r\n")

// ckptPath maps a checkpoint key to its file. Keys are sanitized so a
// hostile key cannot escape the checkpoint directory.
func (s *Store) ckptPath(key string) string {
	clean := make([]byte, 0, len(key))
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	// Distinct keys must stay distinct after sanitizing: suffix a digest
	// of the raw key.
	name := fmt.Sprintf("%s-%08x.ckpt", clean, crc32.ChecksumIEEE([]byte(key)))
	return filepath.Join(s.dir, ckptDir, name)
}

// SaveCheckpoint durably stores an opaque checkpoint payload under key,
// replacing any previous version atomically.
func (s *Store) SaveCheckpoint(key string, data []byte) error {
	if key == "" {
		return fmt.Errorf("storage: empty checkpoint key")
	}
	var e wire.Encoder
	e.Raw(ckptMagic)
	e.Str(key)
	e.U32(uint32(len(data)))
	e.Raw(data)
	e.U32(crc32.ChecksumIEEE(data))
	return atomicWriteFile(s.ckptPath(key), e.Bytes())
}

// LoadCheckpoint retrieves a checkpoint payload. ok=false means no
// checkpoint exists under the key.
func (s *Store) LoadCheckpoint(key string) ([]byte, bool, error) {
	raw, err := os.ReadFile(s.ckptPath(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("storage: read checkpoint: %w", err)
	}
	data, storedKey, err := decodeCheckpoint(raw)
	if err != nil {
		return nil, false, fmt.Errorf("storage: checkpoint %q: %w", key, err)
	}
	if storedKey != key {
		return nil, false, fmt.Errorf("storage: checkpoint file for %q holds key %q", key, storedKey)
	}
	return data, true, nil
}

// DeleteCheckpoint removes a checkpoint (missing is not an error).
func (s *Store) DeleteCheckpoint(key string) error {
	err := os.Remove(s.ckptPath(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: delete checkpoint: %w", err)
	}
	return nil
}

// Checkpoints lists the stored checkpoint keys, sorted.
func (s *Store) Checkpoints() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, ckptDir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: list checkpoints: %w", err)
	}
	var keys []string
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".ckpt") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.dir, ckptDir, ent.Name()))
		if err != nil {
			continue
		}
		if _, key, err := decodeCheckpoint(raw); err == nil {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// decodeCheckpoint verifies a checkpoint file and returns its payload
// and key.
func decodeCheckpoint(raw []byte) (data []byte, key string, err error) {
	if len(raw) < len(ckptMagic)+8 {
		return nil, "", fmt.Errorf("truncated")
	}
	for i, c := range ckptMagic {
		if raw[i] != c {
			return nil, "", fmt.Errorf("bad magic")
		}
	}
	d := wire.NewDecoder(raw[len(ckptMagic):])
	key = d.Str()
	n := int(d.U32())
	if d.Err() != nil || n < 0 || n > d.Remaining()-4 {
		return nil, "", fmt.Errorf("bad payload length")
	}
	data = append([]byte(nil), d.RawN(n)...)
	crc := d.U32()
	if err := d.Err(); err != nil {
		return nil, "", err
	}
	if crc32.ChecksumIEEE(data) != crc {
		return nil, "", fmt.Errorf("crc mismatch")
	}
	return data, key, nil
}
