package storage

import (
	"os"
	"strconv"
	"testing"

	"nexus/internal/errfs"
	"nexus/internal/table"
)

// TestSeededFaultsNeverLoseAckedRows is the randomized crash-consistency
// smoke: a store runs under a seeded errfs schedule failing a fraction
// of writes and fsyncs (with torn writes), and whatever happens — sticky
// WAL poison, a failed flush, debris on disk — every append that was
// ACKED must survive a reopen with the faults removed. Override the
// schedule with NEXUS_CHAOS_SEED to replay a CI failure exactly.
func TestSeededFaultsNeverLoseAckedRows(t *testing.T) {
	seed := int64(20260808)
	if env := os.Getenv("NEXUS_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("NEXUS_CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (replay: NEXUS_CHAOS_SEED=%d)", seed, seed)

	dir := t.TempDir()
	fl := errfs.NewFaults(seed)
	fl.WriteFailProb = 0.05
	fl.SyncFailProb = 0.05
	fl.TornWrites = true
	remove := errfs.Install(dir, fl)

	st, err := Open(dir)
	if err != nil {
		// The schedule can fault the very first manifest write; that is a
		// failed open, not data loss.
		remove()
		t.Logf("open failed under faults (acceptable): %v", err)
		return
	}

	const batch = 20
	acked := 0
	for i := 0; i < 50; i++ {
		lo := int64(i * batch)
		err := st.Append("events", rowsTable(lo, lo+batch))
		if err != nil {
			t.Logf("append %d refused under faults: %v", i, err)
			break // the WAL poisons sticky; acked rows form a prefix
		}
		acked += batch
		if i%10 == 9 {
			if err := st.Flush(); err != nil {
				t.Logf("flush refused under faults: %v", err)
			}
		}
	}
	faults := fl.WriteFaults.Load() + fl.SyncFaults.Load()
	t.Logf("acked %d rows with %d injected faults", acked, faults)
	st.Close() // may fail under poison; reopen is the real check
	remove()

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after faults removed: %v", err)
	}
	defer st2.Close()
	got, ok, err := st2.Dataset("events")
	if err != nil {
		t.Fatalf("read back events: %v", err)
	}
	if acked == 0 {
		return // nothing was promised; nothing to verify
	}
	if !ok {
		t.Fatalf("dataset with %d acked rows vanished", acked)
	}
	if got.NumRows() < acked {
		t.Fatalf("acked rows lost: %d survive of %d acked", got.NumRows(), acked)
	}
	// The acked prefix must be intact row for row (appends preserve
	// order; the tail beyond acked may hold one un-acked batch whose WAL
	// record happened to land fully before its fault).
	want := rowsTable(0, int64(acked))
	if !table.EqualRows(want, got.Slice(0, acked)) {
		t.Fatal("acked prefix differs after recovery")
	}
}
