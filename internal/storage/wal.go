package storage

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"nexus/internal/errfs"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// Write-ahead log. Every mutation (append / replace / drop of a dataset)
// is written and fsynced here before it is applied in memory and before
// the caller's ack, so a SIGKILL at any instant loses at most the
// un-acked writes in flight. Commits are grouped: while one fsync is in
// progress every concurrent Append piles its record into the file and
// waits, and the next fsync commits the whole batch — one disk flush
// for N acks under load.
//
// Record layout:
//
//	u32 length | u8 kind | payload | u32 crc32(kind|payload)
//
// Replay reads records until EOF or the first torn/corrupt record — the
// expected state after a crash mid-write — and truncates the tail so
// the log never re-reports it.

// WAL record kinds.
const (
	walAppend  uint8 = 1 // dataset name, table: append rows
	walReplace uint8 = 2 // dataset name, table: replace dataset contents
	walDrop    uint8 = 3 // dataset name: remove dataset
)

// WalRecord is one replayed log record.
type WalRecord struct {
	Kind    uint8
	Dataset string
	Table   *table.Table // nil for drops
}

// WAL is an append-only log with group commit.
type WAL struct {
	path string

	mu      sync.Mutex // serializes file writes
	f       *os.File
	written uint64 // records written (under mu)
	bytes   int64

	smu     sync.Mutex // guards the sync state below
	scond   *sync.Cond
	synced  uint64 // records durably synced
	syncing bool
	syncErr error // sticky: a failed fsync poisons the log
}

// CreateWAL creates (truncating) a log at path.
func CreateWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create wal: %w", err)
	}
	w := &WAL{path: path, f: f}
	w.scond = sync.NewCond(&w.smu)
	return w, nil
}

// openWALForAppend opens an existing log, positioned at size (the replay
// already validated the prefix and truncated any torn tail).
func openWALForAppend(path string, size int64) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek wal: %w", err)
	}
	w := &WAL{path: path, f: f, bytes: size}
	w.scond = sync.NewCond(&w.smu)
	return w, nil
}

// Size returns the bytes written so far (committed or in flight).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// Append writes one record and returns once it is durable (fsynced).
func (w *WAL) Append(rec WalRecord) error {
	start := time.Now()
	payload := encodeWalRecord(rec)

	w.mu.Lock()
	if err := w.syncError(); err != nil {
		w.mu.Unlock()
		return err
	}
	if _, err := errfs.Write(w.f, payload); err != nil {
		w.mu.Unlock()
		w.poison(err)
		return fmt.Errorf("storage: wal write: %w", err)
	}
	w.written++
	w.bytes += int64(len(payload))
	seq := w.written
	w.mu.Unlock()

	metWalRecords.Inc()
	metWalBytes.Add(int64(len(payload)))
	err := w.commit(seq)
	metWalAppendSeconds.ObserveSince(start)
	return err
}

// commit blocks until record seq is fsynced, electing one goroutine as
// the group's sync leader while the rest wait on its flush.
func (w *WAL) commit(seq uint64) error {
	w.smu.Lock()
	defer w.smu.Unlock()
	for w.synced < seq && w.syncErr == nil {
		if w.syncing {
			w.scond.Wait()
			continue
		}
		w.syncing = true
		w.smu.Unlock()
		// Snapshot how far the file has been written before flushing: the
		// fsync commits at least that many records, possibly more.
		w.mu.Lock()
		target := w.written
		w.mu.Unlock()
		fsyncStart := time.Now()
		err := errfs.Sync(w.f)
		metWalFsyncSeconds.ObserveSince(fsyncStart)
		w.smu.Lock()
		w.syncing = false
		if err != nil && w.syncErr == nil {
			w.syncErr = fmt.Errorf("storage: wal fsync: %w", err)
		}
		if err == nil && target > w.synced {
			metWalBatchRecords.Observe(float64(target - w.synced))
			w.synced = target
		}
		w.scond.Broadcast()
	}
	return w.syncErr
}

// poison marks the log failed so later appends refuse instead of
// silently losing durability.
func (w *WAL) poison(err error) {
	w.smu.Lock()
	if w.syncErr == nil {
		w.syncErr = err
	}
	w.scond.Broadcast()
	w.smu.Unlock()
}

func (w *WAL) syncError() error {
	w.smu.Lock()
	defer w.smu.Unlock()
	return w.syncErr
}

// Close flushes and closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// encodeWalRecord frames one record.
func encodeWalRecord(rec WalRecord) []byte {
	var body wire.Encoder
	body.U8(rec.Kind)
	body.Str(rec.Dataset)
	if rec.Kind != walDrop {
		wire.PutTable(&body, rec.Table)
	}
	var e wire.Encoder
	e.U32(uint32(body.Len()))
	e.Raw(body.Bytes())
	e.U32(crc32.ChecksumIEEE(body.Bytes()))
	return e.Bytes()
}

// ReplayWAL reads every committed record of the log at path, in order.
// A torn or corrupt tail — the normal aftermath of a crash — ends the
// replay silently and is truncated away; the valid prefix is the
// committed history. A missing file replays as empty.
func ReplayWAL(path string, apply func(WalRecord) error) (size int64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("storage: read wal: %w", err)
	}
	off := 0
	for {
		rec, n, ok := decodeWalRecord(data[off:])
		if !ok {
			break
		}
		if err := apply(rec); err != nil {
			return int64(off), err
		}
		off += n
	}
	if off < len(data) {
		// Drop the torn tail so the reopened log never replays garbage
		// after new records are appended beyond it.
		if err := os.Truncate(path, int64(off)); err != nil {
			return int64(off), fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
	}
	return int64(off), nil
}

// decodeWalRecord parses one record from the head of b, reporting how
// many bytes it spans. ok=false means truncated or corrupt.
func decodeWalRecord(b []byte) (WalRecord, int, bool) {
	if len(b) < 8 {
		return WalRecord{}, 0, false
	}
	bodyLen := int(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
	total := 4 + bodyLen + 4
	if bodyLen <= 0 || total > len(b) {
		return WalRecord{}, 0, false
	}
	body := b[4 : 4+bodyLen]
	crc := uint32(b[4+bodyLen])<<24 | uint32(b[5+bodyLen])<<16 | uint32(b[6+bodyLen])<<8 | uint32(b[7+bodyLen])
	if crc32.ChecksumIEEE(body) != crc {
		return WalRecord{}, 0, false
	}
	d := wire.NewDecoder(body)
	rec := WalRecord{Kind: d.U8(), Dataset: d.Str()}
	switch rec.Kind {
	case walAppend, walReplace:
		rec.Table = wire.GetTable(d)
	case walDrop:
	default:
		return WalRecord{}, 0, false
	}
	if d.Err() != nil || rec.Dataset == "" {
		return WalRecord{}, 0, false
	}
	return rec, total, true
}
