package storage

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"nexus/internal/table"
)

// SIGKILL crash tests: a child process (this test binary re-executed
// with -test.run=TestCrashHelper and a mode in the environment) writes
// to a store and prints an ACK line after each committed operation. The
// parent kills it with SIGKILL mid-write, reopens the directory, and
// asserts that everything acked survived — and that what survived is
// byte-identical to what was written.

// TestCrashHelper is the child-process entry point. Without the mode
// variable it is skipped, so a normal test run never enters it.
func TestCrashHelper(t *testing.T) {
	mode := os.Getenv("NEXUS_CRASH_MODE")
	if mode == "" {
		t.Skip("crash helper (only runs re-executed)")
	}
	dir := os.Getenv("NEXUS_CRASH_DIR")
	switch mode {
	case "append":
		st, err := Open(dir)
		if err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		// Small flush threshold so the kill also lands around segment
		// flushes and manifest swaps, not only WAL appends.
		st.FlushBytes = 4 << 10
		for i := int64(0); i < 100000; i++ {
			if err := st.Append("d", rowsTable(i*10, i*10+10)); err != nil {
				fmt.Println("ERR", err)
				os.Exit(1)
			}
			fmt.Println("ACK", i)
		}
	case "ckpt":
		st, err := Open(dir)
		if err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		for i := int64(0); i < 1000000; i++ {
			payload := []byte(strings.Repeat(fmt.Sprintf("payload-%06d;", i), 64))
			if err := st.SaveCheckpoint("job", payload); err != nil {
				fmt.Println("ERR", err)
				os.Exit(1)
			}
			fmt.Println("ACK", i)
		}
	case "compact":
		st, err := Open(dir)
		if err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		// Tiny flush threshold: every few appends seals a small segment,
		// and every third batch runs a compaction pass — so the SIGKILL
		// lands inside merges, manifest writes and CURRENT swaps, not
		// only WAL appends.
		st.FlushBytes = 2 << 10
		for i := int64(0); i < 100000; i++ {
			if err := st.Append("d", rowsTable(i*10, i*10+10)); err != nil {
				fmt.Println("ERR", err)
				os.Exit(1)
			}
			if i%3 == 2 {
				if _, err := st.Compact(CompactOptions{ClusterBy: map[string]string{"d": "k"}}); err != nil {
					fmt.Println("ERR", err)
					os.Exit(1)
				}
			}
			fmt.Println("ACK", i)
		}
	default:
		fmt.Println("ERR unknown mode", mode)
		os.Exit(1)
	}
}

// TestCrashRecoverMidCompaction kills a writer whose every third batch
// triggers a compaction pass, so the SIGKILL lands in the middle of
// segment merges and manifest generation swaps. Recovery must expose a
// consistent generation — pre- or post-compaction — holding every acked
// row, byte-identical to what was written (the clustering key is the
// append order, so even merged generations keep the global row order).
func TestCrashRecoverMidCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	acked := runCrashChild(t, dir, "compact", 25)

	st, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after SIGKILL mid-compaction: %v", err)
	}
	defer st.Close()
	got, ok, err := st.Dataset("d")
	if err != nil || !ok {
		t.Fatalf("dataset d after recovery: ok=%v err=%v", ok, err)
	}
	committed := (acked + 1) * 10
	rows := int64(got.NumRows())
	if rows < committed {
		t.Fatalf("lost committed rows across compaction crash: recovered %d, acked %d", rows, committed)
	}
	if rows%10 != 0 {
		t.Fatalf("recovered a torn batch: %d rows", rows)
	}
	if !table.EqualRows(rowsTable(0, rows), got) {
		t.Fatal("recovered rows are not byte-identical to what was written")
	}
	// Recovery settled on exactly one manifest and one WAL generation.
	entries, _ := os.ReadDir(dir)
	var manifests, wals int
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasPrefix(name, "MANIFEST-") {
			manifests++
		}
		if strings.HasPrefix(name, "wal-") {
			wals++
		}
	}
	if manifests != 1 || wals != 1 {
		t.Fatalf("recovery left %d manifests, %d wals; want 1 and 1", manifests, wals)
	}
}

// runCrashChild re-executes the test binary in the given mode, waits
// for minAcks acked operations, SIGKILLs it, and returns the highest
// acked sequence number.
func runCrashChild(t *testing.T, dir, mode string, minAcks int) int64 {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "NEXUS_CRASH_MODE="+mode, "NEXUS_CRASH_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	acked := int64(-1)
	sc := bufio.NewScanner(out)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "ERR") {
			cmd.Process.Kill()
			t.Fatalf("crash child failed: %s", line)
		}
		if strings.HasPrefix(line, "ACK ") {
			n, _ := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, "ACK ")), 10, 64)
			acked = n
			if acked >= int64(minAcks-1) {
				break
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("crash child made no progress")
		}
	}
	// SIGKILL, no warning: the child gets no chance to flush anything.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if acked < int64(minAcks-1) {
		t.Fatalf("child acked only %d operations", acked+1)
	}
	return acked
}

// TestCrashRecoverMidAppend kills the writer mid-append and asserts
// zero committed-row loss with byte-identical contents.
func TestCrashRecoverMidAppend(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	acked := runCrashChild(t, dir, "append", 25)

	st, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	defer st.Close()
	got, ok, err := st.Dataset("d")
	if err != nil || !ok {
		t.Fatalf("dataset d after recovery: ok=%v err=%v", ok, err)
	}
	committed := (acked + 1) * 10
	rows := int64(got.NumRows())
	// Every acked row must be present; rows beyond the last ack may have
	// committed in the instant before the kill.
	if rows < committed {
		t.Fatalf("lost committed rows: recovered %d, acked %d", rows, committed)
	}
	if rows%10 != 0 {
		t.Fatalf("recovered a torn batch: %d rows", rows)
	}
	if !table.EqualRows(rowsTable(0, rows), got) {
		t.Fatal("recovered rows are not byte-identical to what was written")
	}
}

// TestCrashRecoverMidCheckpoint kills the writer mid-checkpoint and
// asserts the surviving checkpoint is a complete, untorn version.
func TestCrashRecoverMidCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	acked := runCrashChild(t, dir, "ckpt", 50)

	st, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	defer st.Close()
	data, ok, err := st.LoadCheckpoint("job")
	if err != nil {
		t.Fatalf("checkpoint corrupted by crash: %v", err)
	}
	if !ok {
		t.Fatal("acked checkpoint vanished")
	}
	// The payload must be exactly version j for some j >= acked (the
	// last acked version, or the next one if its rename won the race
	// with the kill) — never a torn mix.
	s := string(data)
	first := s[:strings.Index(s, ";")+1]
	if strings.Repeat(first, 64) != s {
		t.Fatalf("checkpoint payload is torn: %.60q...", s)
	}
	var ver int64
	if _, err := fmt.Sscanf(first, "payload-%d;", &ver); err != nil {
		t.Fatalf("checkpoint payload malformed: %.60q", s)
	}
	if ver < acked {
		t.Fatalf("checkpoint went backwards: acked %d, recovered version %d", acked, ver)
	}
}
