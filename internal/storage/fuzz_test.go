package storage

import (
	"testing"

	"nexus/internal/table"
	"nexus/internal/value"
)

// FuzzSegment hardens the segment decoder against arbitrary bytes: it
// must either return an error or a segment whose rows survive a
// re-encode/decode round trip — never panic, never fabricate rows.
func FuzzSegment(f *testing.F) {
	f.Add(EncodeSegment(rowsTable(0, 10)))
	f.Add(EncodeSegment(rowsTable(0, 0)))
	f.Add(EncodeSegment(nullableTable()))
	// Legacy v1 seeds: the decoder dispatches on the version byte and
	// must stay robust for both layouts.
	f.Add(EncodeSegmentV1(rowsTable(0, 10)))
	f.Add(EncodeSegmentV1(nullableTable()))
	// A dict-heavy v2 seed (few distinct values over many rows) steers
	// the fuzzer at the non-plain page decoders.
	small := rowsTable(0, 10)
	parts := make([]*table.Table, 19)
	for i := range parts {
		parts[i] = small
	}
	if repeated, err := small.Concat(parts...); err == nil {
		f.Add(EncodeSegment(repeated))
	}
	// v3 seeds: segments whose string pages resolve through a shared
	// dictionary. fuzzDicts below carries the same dictionary into the
	// fuzz body, so mutations reach the code-bounds and epoch armor
	// rather than dying at "no dictionary".
	fuzzDicts := DictSet{}
	v3 := EncodeSegmentDict(lowCardTable(130), fuzzDicts, true)
	f.Add(v3)
	f.Add(v3[:len(v3)-3])
	hostileCode := append([]byte(nil), v3...)
	hostileCode[len(hostileCode)-6] ^= 0xff // codes sit at the tail of the last page
	f.Add(hostileCode)

	// A few structurally-broken seeds steer the fuzzer at the armor.
	trunc := EncodeSegment(rowsTable(0, 3))
	f.Add(trunc[:len(trunc)-2])
	flip := append([]byte(nil), trunc...)
	flip[len(flip)/2] ^= 0xff
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The structural verifier and the dictionary-aware decoder see
		// every input too: error or success, never a panic. A segment
		// that decodes must agree with itself on the row count.
		_ = VerifySegment(data)
		if dseg, err := DecodeSegmentDicts(data, fuzzDicts); err == nil {
			if int64(dseg.Table.NumRows()) != dseg.Meta.Rows {
				t.Fatalf("dict decode claims %d rows, table has %d", dseg.Meta.Rows, dseg.Table.NumRows())
			}
		}
		seg, err := DecodeSegment(data)
		if err != nil {
			return
		}
		// Anything that decodes must be internally consistent.
		if int64(seg.Table.NumRows()) != seg.Meta.Rows {
			t.Fatalf("decoded segment claims %d rows, table has %d", seg.Meta.Rows, seg.Table.NumRows())
		}
		re2, err := DecodeSegment(EncodeSegment(seg.Table))
		if err != nil {
			t.Fatalf("re-encoded segment fails to decode: %v", err)
		}
		if !table.EqualRows(seg.Table, re2.Table) {
			t.Fatal("rows changed across re-encode")
		}
	})
}

// nullableTable mixes NULLs into every column, exercising validity
// bitmaps and NULL zone minima.
func nullableTable() *table.Table {
	base := rowsTable(0, 6)
	b := table.NewBuilder(base.Schema(), 8)
	for i := 0; i < base.NumRows(); i++ {
		if i%2 == 1 {
			b.MustAppend(value.Null, value.Null, value.Null)
		} else {
			b.MustAppend(base.Value(i, 0), base.Value(i, 1), base.Value(i, 2))
		}
	}
	return b.Build()
}
