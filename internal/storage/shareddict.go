package storage

import (
	"fmt"
	"sync"
)

// Shared (per-dataset) dictionaries: the cross-segment code space behind
// the v3 segment format. A v2 dictionary page carries its own private
// dictionary, so the same string gets a different code in every segment
// and every encoded comparison has to re-translate. A shared dictionary
// lives in the manifest instead — one ordered value list per (dataset,
// column) — and v3 segments store only codes into it (PageEncDictShared
// pages). Codes are stable across segments, so a constant is translated
// once per query, group-by keys can run on codes, and the dictionary
// replicates for free with the manifest.
//
// Growth is append-only within an epoch: Flush extends the dictionary
// with values it has not seen and commits the extension in the same
// manifest generation as the segments referencing them. Every page
// records the dictionary prefix length it was written against, so a
// segment stays decodable no matter how much the dictionary grows after
// it. Only a full rewrite (compaction merging every live segment) may
// rebuild the dictionary — reassigning codes compactly in the new sort
// order — and that bumps Epoch, exactly like OrderEpoch: anything that
// cached code-based state (a translated constant, a code-keyed plan)
// must revalidate against the epoch and is refused when stale.

// dictEpochFirst is the epoch a freshly created shared dictionary
// starts at; 0 means "no dictionary" in stale-plan checks.
const dictEpochFirst = 1

// SharedDict is one column's shared dictionary: the ordered value list
// codes index, plus the epoch guarding code-based state. Only string
// columns get shared dictionaries — they are where repeating a value
// per segment costs the most and where comparing codes instead of
// bytes wins the most.
type SharedDict struct {
	Col   string
	Epoch uint64
	Vals  []string

	// index is the reverse lookup, built lazily exactly once (readers
	// translating query constants hit it concurrently; mutation beyond
	// the build happens only on writer-private clones under the store
	// lock).
	indexOnce sync.Once
	index     map[string]uint32
}

// Len returns the number of entries.
func (d *SharedDict) Len() int { return len(d.Vals) }

// Code returns the code of v, if present.
func (d *SharedDict) Code(v string) (uint32, bool) {
	d.ensureIndex()
	c, ok := d.index[v]
	return c, ok
}

// Add returns the code of v, appending it if new. ok=false means the
// dictionary is full (dictMaxEntries) and v was not added — the caller
// must fall back to a non-shared encoding for that page.
func (d *SharedDict) Add(v string) (code uint32, ok bool) {
	d.ensureIndex()
	if c, ok := d.index[v]; ok {
		return c, true
	}
	if len(d.Vals) >= dictMaxEntries {
		return 0, false
	}
	c := uint32(len(d.Vals))
	d.Vals = append(d.Vals, v)
	d.index[v] = c
	return c, true
}

// Covers reports whether every value of vals is already in the
// dictionary (the no-growth writer check compaction uses).
func (d *SharedDict) Covers(vals []string, valid []bool) bool {
	d.ensureIndex()
	for i, v := range vals {
		if valid != nil && !valid[i] {
			continue
		}
		if _, ok := d.index[v]; !ok {
			return false
		}
	}
	return true
}

func (d *SharedDict) ensureIndex() {
	d.indexOnce.Do(func() {
		d.index = make(map[string]uint32, len(d.Vals))
		for i, v := range d.Vals {
			d.index[v] = uint32(i)
		}
	})
}

// clone returns a writer-private copy whose appends never disturb the
// original's view (the value slice is shared up to its length; appends
// under the store lock only ever write beyond every published length).
func (d *SharedDict) clone() *SharedDict {
	return &SharedDict{Col: d.Col, Epoch: d.Epoch, Vals: d.Vals}
}

// DictSet maps column names to the shared dictionaries a segment's
// PageEncDictShared pages resolve codes through. nil is a valid set
// (no shared dictionaries; shared pages fail to decode).
type DictSet map[string]*SharedDict

// cloneDictSet deep-clones a dict set for a writer.
func cloneDictSet(ds DictSet) DictSet {
	if ds == nil {
		return nil
	}
	out := make(DictSet, len(ds))
	for k, d := range ds {
		out[k] = d.clone()
	}
	return out
}

// errStaleDict marks decode failures caused by a shared-dictionary
// epoch mismatch: the segment's codes belong to a dictionary generation
// that no longer exists (a full-rewrite compaction rebuilt it). Readers
// holding a pre-rebuild snapshot retry on it exactly like they retry on
// a deleted segment file — the fresh snapshot references the rebuilt
// files and dictionary together.
type errStaleDictT struct{ msg string }

func (e *errStaleDictT) Error() string { return e.msg }

// staleDictErr builds an epoch-mismatch error.
func staleDictErr(col string, pageEpoch, dictEpoch uint64) error {
	return &errStaleDictT{msg: fmt.Sprintf(
		"storage: column %q codes are epoch %d, shared dictionary is epoch %d (stale)", col, pageEpoch, dictEpoch)}
}

// isStaleDict reports whether err is (or wraps) an epoch mismatch.
func isStaleDict(err error) bool {
	for err != nil {
		if _, ok := err.(*errStaleDictT); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
