package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"nexus/internal/core"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// The encoded-vs-decoded differential suite: every result the encoded
// kernels produce must be byte-identical to materialize-then-evaluate.
// Three layers:
//
//   - page level: AndMatches / Materialize / MaterializeRows against a
//     row-at-a-time oracle over the decoded column, for every encoding a
//     column admits (plain, RLE, dict, shared dict), across NULLs, row
//     counts straddling the encoder thresholds, and all six operators;
//   - engine level: filtered+projected scans with encoded execution on
//     vs off vs the in-memory relational engine;
//   - aggregate level: GroupAgg plans served by the encoded fold vs the
//     generic runtime.

// diffSchema is the column mix the differential tables use: something
// for every encoding to win on.
func diffSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "id", Kind: value.KindInt64},      // unique: plain
		schema.Attribute{Name: "bucket", Kind: value.KindInt64},  // long runs: RLE
		schema.Attribute{Name: "tier", Kind: value.KindString},   // few distinct + NULLs: dict/shared
		schema.Attribute{Name: "score", Kind: value.KindFloat64}, // few distinct + NULLs
		schema.Attribute{Name: "wide", Kind: value.KindString},   // unique: plain
		schema.Attribute{Name: "flag", Kind: value.KindBool},
	)
}

var diffTiers = []string{"gold", "silver", "bronze", "iron"}

// genDiffTable generates rows rows of diffSchema. next numbers rows
// across calls so "id"/"wide" stay unique across batches.
func genDiffTable(rng *rand.Rand, rows int, next *int64) *table.Table {
	b := table.NewBuilder(diffSchema(), rows)
	for i := 0; i < rows; i++ {
		id := *next
		*next++
		tier := value.Value(value.Null)
		if rng.Intn(8) != 0 {
			tier = value.NewString(diffTiers[rng.Intn(len(diffTiers))])
		}
		score := value.Value(value.Null)
		if rng.Intn(8) != 0 {
			score = value.NewFloat(float64(rng.Intn(5)) + 0.25)
		}
		b.MustAppend(
			value.NewInt(id),
			value.NewInt(id/17), // runs of 17: RLE wins at >=68 rows
			tier,
			score,
			value.NewString(fmt.Sprintf("w-%06d", id)),
			value.NewBool(id%3 == 0),
		)
	}
	return b.Build()
}

// opHolds is the test's own spelling of the comparison semantics, kept
// deliberately independent of cmpHoldsEnc.
func opHolds(op value.BinOp, l, r value.Value) bool {
	c := value.Compare(l, r)
	switch op {
	case value.OpEq:
		return c == 0
	case value.OpNe:
		return c != 0
	case value.OpLt:
		return c < 0
	case value.OpLe:
		return c <= 0
	case value.OpGt:
		return c > 0
	case value.OpGe:
		return c >= 0
	}
	return false
}

func colEq(t *testing.T, want, got *table.Column, what string) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: %d rows, want %d", what, got.Len(), want.Len())
	}
	for r := 0; r < want.Len(); r++ {
		if value.Compare(want.Value(r), got.Value(r)) != 0 {
			t.Fatalf("%s: row %d = %v, want %v", what, r, got.Value(r), want.Value(r))
		}
	}
}

var diffOps = []value.BinOp{value.OpEq, value.OpNe, value.OpLt, value.OpLe, value.OpGt, value.OpGe}

// TestEncodedPageDifferential drives every page encoding a column
// admits through parse/filter/materialize and compares row by row
// against the decoded column. Row counts straddle the encoder
// thresholds (64-row plain floor, run-density and distinct-count
// cutoffs) so run boundaries land on and around batch edges.
func TestEncodedPageDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var next int64
	for _, rows := range []int{1, 2, 63, 64, 65, 127, 128, 200, 256} {
		tbl := genDiffTable(rng, rows, &next)
		for c := 0; c < tbl.NumCols(); c++ {
			col := tbl.Col(c)
			name := tbl.Schema().At(c).Name
			kind := col.Kind()

			encs := []uint8{PageEncPlain, PageEncRLE}
			if kind != value.KindBool {
				encs = append(encs, PageEncDict)
			}
			var dict *SharedDict
			if kind == value.KindString {
				dict = &SharedDict{Col: name, Epoch: dictEpochFirst}
				full := true
				for r := 0; r < col.Len(); r++ {
					v := col.Value(r)
					if v.IsNull() {
						continue
					}
					if _, ok := dict.Add(v.Str()); !ok {
						full = false
						break
					}
				}
				if full {
					encs = append(encs, PageEncDictShared)
				}
			}

			for _, enc := range encs {
				ctx := pageCtx{col: name, dict: dict}
				page := encodePage(col, enc, dict)
				dec, err := decodePage(page, kind, ctx)
				if err != nil {
					t.Fatalf("%s/%s rows=%d: decode: %v", name, encodingName(enc), rows, err)
				}
				ec, err := parsePageEncoded(page, kind, ctx)
				if err != nil {
					t.Fatalf("%s/%s rows=%d: parse encoded: %v", name, encodingName(enc), rows, err)
				}
				if ec.Encoding() != enc || ec.Rows() != rows {
					t.Fatalf("%s/%s: parsed enc=%d rows=%d", name, encodingName(enc), ec.Encoding(), ec.Rows())
				}

				mat, err := ec.Materialize()
				if err != nil {
					t.Fatalf("%s/%s: materialize: %v", name, encodingName(enc), err)
				}
				colEq(t, dec, mat, name+"/"+encodingName(enc)+" materialize")

				// Constants: present values, absent values, NULL, and
				// cross-kind (numeric columns vs a string constant and
				// vice versa — the total order must agree everywhere).
				consts := []value.Value{value.Null, col.Value(rng.Intn(rows))}
				switch kind {
				case value.KindInt64:
					consts = append(consts, value.NewInt(-1), value.NewFloat(2.5), value.NewString("x"))
				case value.KindFloat64:
					consts = append(consts, value.NewFloat(-1.5), value.NewInt(2), value.NewString("x"))
				case value.KindString:
					consts = append(consts, value.NewString("zzz"), value.NewString(""), value.NewInt(3))
				case value.KindBool:
					consts = append(consts, value.NewBool(true), value.NewInt(0))
				}
				for _, cv := range consts {
					for _, op := range diffOps {
						// Random pre-mask: AndMatches may only clear bits.
						pre := make([]bool, rows)
						for i := range pre {
							pre[i] = rng.Intn(4) != 0
						}
						got := append([]bool(nil), pre...)
						ec.AndMatches(op, cv, got)
						for r := 0; r < rows; r++ {
							want := pre[r] && opHolds(op, dec.Value(r), cv)
							if got[r] != want {
								t.Fatalf("%s/%s: row %d (%v %v %v) = %v, want %v",
									name, encodingName(enc), r, dec.Value(r), op, cv, got[r], want)
							}
						}
					}
				}

				// Selective materialization: empty, full, and random
				// ascending subsets.
				sels := [][]int{{}, allRows(rows)}
				for trial := 0; trial < 3; trial++ {
					var sel []int
					for r := 0; r < rows; r++ {
						if rng.Intn(3) == 0 {
							sel = append(sel, r)
						}
					}
					sels = append(sels, sel)
				}
				for _, sel := range sels {
					got, err := ec.MaterializeRows(sel)
					if err != nil {
						t.Fatalf("%s/%s: materialize rows: %v", name, encodingName(enc), err)
					}
					if got.Len() != len(sel) {
						t.Fatalf("%s/%s: materialized %d of %d selected", name, encodingName(enc), got.Len(), len(sel))
					}
					for i, r := range sel {
						if value.Compare(dec.Value(r), got.Value(i)) != 0 {
							t.Fatalf("%s/%s: sel[%d]=row %d = %v, want %v",
								name, encodingName(enc), i, r, got.Value(i), dec.Value(r))
						}
					}
				}
			}
		}
	}
}

func allRows(n int) []int {
	sel := make([]int, n)
	for i := range sel {
		sel[i] = i
	}
	return sel
}

// buildDiffDataset appends batches sized to hit every encoder
// threshold, flushing between them (one segment per batch, so v3
// shared-dict pages appear and the dictionary grows across flushes) and
// leaving the last batch in the unflushed tail. Returns the
// concatenated whole for the in-memory oracle.
func buildDiffDataset(t *testing.T, eng *Engine, rng *rand.Rand) *table.Table {
	t.Helper()
	var next int64
	batches := []int{63, 80, 64, 130, 5}
	var parts []*table.Table
	for i, n := range batches {
		p := genDiffTable(rng, n, &next)
		parts = append(parts, p)
		if err := eng.Append("d", p); err != nil {
			t.Fatal(err)
		}
		if i < len(batches)-1 {
			if err := eng.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	whole, err := parts[0].Concat(parts[1:]...)
	if err != nil {
		t.Fatal(err)
	}
	return whole
}

func diffPreds() []expr.Expr {
	nullConst := &expr.Const{Val: value.Null}
	return []expr.Expr{
		expr.Eq(expr.Column("tier"), expr.CStr("gold")),
		expr.Ne(expr.Column("tier"), expr.CStr("iron")),
		expr.Lt(expr.Column("tier"), expr.CStr("gold")), // NULL sorts first: NULL rows match
		expr.Ge(expr.Column("tier"), nullConst),         // everything matches
		expr.Gt(expr.Column("bucket"), expr.CInt(3)),
		expr.Le(expr.Column("bucket"), expr.CInt(1)),
		expr.Eq(expr.Column("bucket"), expr.CFloat(2)), // cross-kind numeric
		expr.Lt(expr.Column("score"), expr.CFloat(2.0)),
		expr.Gt(expr.Column("score"), nullConst),
		expr.Gt(expr.Column("id"), expr.CInt(200)), // zone-prunes early segments
		expr.Eq(expr.Column("flag"), expr.CBool(true)),
		expr.And(
			expr.Eq(expr.Column("tier"), expr.CStr("silver")),
			expr.Gt(expr.Column("bucket"), expr.CInt(2))),
		expr.And(
			expr.Ge(expr.Column("id"), expr.CInt(64)),
			expr.And(
				expr.Lt(expr.Column("id"), expr.CInt(208)),
				expr.Ne(expr.Column("tier"), nullConst))),
		// Not an exact conjunction: the encoded pre-filter may only use
		// the captured half, the residual must still re-run.
		expr.And(
			expr.Gt(expr.Column("bucket"), expr.CInt(1)),
			expr.Or(
				expr.Eq(expr.Column("tier"), expr.CStr("gold")),
				expr.Lt(expr.Column("score"), expr.CFloat(1.0)))),
	}
}

// TestEncodedScanDifferential holds filtered+projected cold scans
// byte-identical across encoded execution on, off, and the in-memory
// relational engine.
func TestEncodedScanDifferential(t *testing.T) {
	dir := t.TempDir()
	eng, err := OpenEngine("disk", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rng := rand.New(rand.NewSource(11))
	whole := buildDiffDataset(t, eng, rng)
	mem := relational.New("mem")
	if err := mem.Store("d", whole); err != nil {
		t.Fatal(err)
	}

	projections := [][]string{
		{"id", "tier"},
		{"tier", "score", "bucket"},
		{"wide"},
		nil, // full width
	}
	for pi, pred := range diffPreds() {
		for ci, cols := range projections {
			mkPlan := func() core.Node {
				sc, _ := core.NewScan("d", whole.Schema())
				f, err := core.NewFilter(sc, pred)
				if err != nil {
					t.Fatal(err)
				}
				if cols == nil {
					return f
				}
				p, err := core.NewProject(f, cols)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			want, err := mem.Execute(mkPlan())
			if err != nil {
				t.Fatalf("pred %d proj %d: mem: %v", pi, ci, err)
			}
			eng.SetEncodedExec(false)
			eng.DropCache()
			off, err := eng.Execute(mkPlan())
			if err != nil {
				t.Fatalf("pred %d proj %d: encoded off: %v", pi, ci, err)
			}
			eng.SetEncodedExec(true)
			eng.DropCache()
			on, err := eng.Execute(mkPlan())
			if err != nil {
				t.Fatalf("pred %d proj %d: encoded on: %v", pi, ci, err)
			}
			if !table.EqualRows(want, off) {
				t.Fatalf("pred %d proj %d: encoded-off differs from memory oracle", pi, ci)
			}
			if !table.EqualRows(want, on) {
				t.Fatalf("pred %d proj %d: encoded-on differs from oracle", pi, ci)
			}
		}
	}
	if eng.EncodedScans() == 0 {
		t.Fatal("encoded pre-filter never served a segment — the differential ran vacuously")
	}
}

// TestEncodedAggDifferential holds grouped aggregations over cold scans
// byte-identical across the encoded fold, the generic runtime, and the
// in-memory engine — global and keyed, filtered and not, every
// aggregate function, keys on dict, RLE and plain columns.
func TestEncodedAggDifferential(t *testing.T) {
	dir := t.TempDir()
	eng, err := OpenEngine("disk", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rng := rand.New(rand.NewSource(13))
	whole := buildDiffDataset(t, eng, rng)
	mem := relational.New("mem")
	if err := mem.Store("d", whole); err != nil {
		t.Fatal(err)
	}

	aggSets := [][]core.AggSpec{
		{{Func: core.AggCount, As: "n"}},
		{
			{Func: core.AggCount, As: "n"},
			{Func: core.AggSum, Arg: expr.Column("bucket"), As: "sb"},
			{Func: core.AggSum, Arg: expr.Column("score"), As: "ss"},
			{Func: core.AggAvg, Arg: expr.Column("score"), As: "avg"},
		},
		{
			{Func: core.AggMin, Arg: expr.Column("tier"), As: "lo"},
			{Func: core.AggMax, Arg: expr.Column("wide"), As: "hi"},
			{Func: core.AggCountDistinct, Arg: expr.Column("tier"), As: "dt"},
			{Func: core.AggCount, Arg: expr.Column("score"), As: "ns"},
		},
	}
	keySets := [][]string{nil, {"tier"}, {"bucket"}, {"id"}}
	filters := []expr.Expr{
		nil,
		expr.Gt(expr.Column("bucket"), expr.CInt(2)),
		expr.And(
			expr.Ne(expr.Column("tier"), expr.CStr("iron")),
			expr.Lt(expr.Column("id"), expr.CInt(250))),
		expr.Eq(expr.Column("tier"), expr.CStr("no-such-tier")), // empty result
	}

	for ki, keys := range keySets {
		for ai, aggs := range aggSets {
			for fi, pred := range filters {
				mkPlan := func() core.Node {
					sc, _ := core.NewScan("d", whole.Schema())
					var child core.Node = sc
					if pred != nil {
						f, err := core.NewFilter(child, pred)
						if err != nil {
							t.Fatal(err)
						}
						child = f
					}
					g, err := core.NewGroupAgg(child, keys, aggs)
					if err != nil {
						t.Fatal(err)
					}
					return g
				}
				want, err := mem.Execute(mkPlan())
				if err != nil {
					t.Fatalf("keys %d aggs %d filter %d: mem: %v", ki, ai, fi, err)
				}
				eng.SetEncodedExec(false)
				eng.DropCache()
				off, err := eng.Execute(mkPlan())
				if err != nil {
					t.Fatalf("keys %d aggs %d filter %d: encoded off: %v", ki, ai, fi, err)
				}
				eng.SetEncodedExec(true)
				eng.DropCache()
				on, err := eng.Execute(mkPlan())
				if err != nil {
					t.Fatalf("keys %d aggs %d filter %d: encoded on: %v", ki, ai, fi, err)
				}
				if !table.EqualRows(want, off) {
					t.Fatalf("keys %d aggs %d filter %d: generic differs from memory oracle", ki, ai, fi)
				}
				if !table.EqualRows(want, on) {
					t.Fatalf("keys %d aggs %d filter %d: encoded fold differs from oracle", ki, ai, fi)
				}
			}
		}
	}
	if eng.EncodedAggs() == 0 {
		t.Fatal("encoded aggregate kernel never served — the differential ran vacuously")
	}
}

// TestEncodedReadV1Fallback pins the encoded read's v1 path: a legacy
// segment has no pages to stay encoded in, so it decodes whole and
// wraps — and must still answer identically.
func TestEncodedReadV1Fallback(t *testing.T) {
	dir := t.TempDir()
	tbl := rowsTable(0, 50)
	if err := atomicWriteFile(dir+"/seg-v1.nxs", EncodeSegmentV1(tbl)); err != nil {
		t.Fatal(err)
	}
	positions := []int{0, 2}
	es, err := ReadSegmentFileColumnsEncoded(dir+"/seg-v1.nxs", positions, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ReadSegmentFileColumns(dir+"/seg-v1.nxs", positions)
	if err != nil {
		t.Fatal(err)
	}
	for i, ec := range es.Cols {
		mat, err := ec.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		colEq(t, dec.Table.Col(i), mat, "v1 fallback col")
	}
}
