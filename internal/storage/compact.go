package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nexus/internal/schema"
	"nexus/internal/table"
)

// Background compaction. Streaming ingest and small appends leave a
// spray of little segment files behind (each Flush seals whatever the
// WAL accumulated); every cold scan then pays per-file open/decode
// overhead, and zone maps stay loose because each small segment spans
// whatever rows happened to arrive together. Compact merges a dataset's
// small segments into one large segment sorted by a clustering key, so
// zone maps become tight value ranges and range predicates prune most
// of the data. The swap is registered as a new manifest generation
// through the same atomic CURRENT protocol flushes use: a crash at any
// instant leaves either the pre-compaction or the post-compaction
// generation fully readable, and the loser's files are orphans the next
// Open garbage-collects.
//
// Compaction never touches the WAL or the unflushed tails — it only
// rewrites already-sealed segments — so it runs concurrently with
// writes. The merge (read, sort, write the new segment) happens outside
// the store lock; the commit re-validates that every input segment is
// still live and aborts harmlessly if a replace or drop raced it.

// Compaction defaults: segments smaller than DefaultCompactTargetBytes
// are merge candidates once DefaultCompactMinSegments of them exist.
const (
	DefaultCompactTargetBytes = 4 << 20
	DefaultCompactMinSegments = 2
)

// CompactOptions tunes a compaction pass. The zero value uses the
// defaults and clusters every dataset by its first column.
type CompactOptions struct {
	// TargetBytes: segments at least this large are left alone; smaller
	// ones are merged, and the merged output is re-chunked into segments
	// of roughly this size (zone maps prune at segment granularity, so
	// one monster segment would trade pruning away for fewer files).
	// 0 means DefaultCompactTargetBytes.
	TargetBytes int64
	// MinSegments: a dataset is compacted only when it has at least this
	// many small segments (merging one file into itself is wasted I/O).
	// 0 means DefaultCompactMinSegments.
	MinSegments int
	// ClusterBy maps dataset names to the column the merged rows are
	// sorted by. Datasets not listed (or listed with a column the schema
	// lacks) cluster by their first column.
	ClusterBy map[string]string
	// Exclude, when non-nil, vetoes compaction per dataset. The server
	// uses it to protect datasets that durable dataset-replay
	// subscriptions resume by row offset: compaction re-sorts rows, so
	// a stored offset would skip the wrong prefix afterwards.
	Exclude func(dataset string) bool
}

func (o CompactOptions) targetBytes() int64 {
	if o.TargetBytes <= 0 {
		return DefaultCompactTargetBytes
	}
	return o.TargetBytes
}

func (o CompactOptions) minSegments() int {
	if o.MinSegments <= 0 {
		return DefaultCompactMinSegments
	}
	return o.MinSegments
}

// CompactStats reports what one compaction pass did.
type CompactStats struct {
	Datasets []string // datasets that got a new, merged generation
	Merged   int      // small segments replaced
	Created  int      // merged segments written in their place
	BytesIn  int64    // file bytes of the replaced segments
	BytesOut int64    // file bytes of the merged segments written
}

// Compact runs one compaction pass over every dataset: for each one
// with at least MinSegments segments smaller than TargetBytes, merge
// them, sort the rows by the clustering key, re-chunk the result into
// ~TargetBytes segments (consecutive key ranges with tight zone maps),
// and commit the swap as a new manifest generation. Safe to call
// concurrently with reads and writes; datasets that race a replace or
// drop are skipped. Idempotent at the fixed point: a pass that cannot
// strictly reduce a dataset's segment count leaves it untouched.
func (s *Store) Compact(opts CompactOptions) (CompactStats, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return CompactStats{}, fmt.Errorf("storage: store is closed")
	}
	if s.replica {
		// A replica's generations belong to the primary; compacting
		// locally would fork the catalog and break every future apply.
		s.mu.RUnlock()
		return CompactStats{}, nil
	}
	names := make([]string, 0, len(s.man.Datasets))
	for _, dm := range s.man.Datasets {
		names = append(names, dm.Name)
	}
	s.mu.RUnlock()

	start := time.Now()
	var stats CompactStats
	for _, name := range names {
		if opts.Exclude != nil && opts.Exclude(name) {
			continue
		}
		merged, created, in, out, err := s.compactDataset(name, opts)
		if err != nil {
			return stats, err
		}
		if merged > 0 {
			stats.Datasets = append(stats.Datasets, name)
			stats.Merged += merged
			stats.Created += created
			stats.BytesIn += in
			stats.BytesOut += out
		}
	}
	if stats.Merged > 0 {
		metCompactions.Inc()
		metCompactSeconds.ObserveSince(start)
		metCompactMerged.Add(int64(stats.Merged))
		metCompactCreated.Add(int64(stats.Created))
		metCompactBytesIn.Add(stats.BytesIn)
		metCompactBytesOut.Add(stats.BytesOut)
	}
	return stats, nil
}

// cand is one compaction input segment and its file size.
type cand struct {
	ref  SegmentRef
	size int64
}

// compactDataset merges one dataset's small segments under a leveled,
// size-tiered policy. When every live segment is below the size target,
// the dataset is rewritten whole — one merge group — which is also the
// only moment the shared dictionaries may be rebuilt (codes reassigned
// compactly in the new sort order, epoch bumped). Once target-sized
// segments exist, sustained ingest keeps spraying small flush segments
// next to them; those are grouped into size tiers (tier k holds files in
// [target/4^(k+1), target/4^k)) and each tier merges independently, so a
// fresh 100KB segment is never re-merged with a 3MB one just to reach
// the target — the 100KB tier rolls up into the 400KB tier, that one
// into the 1.6MB tier, and so on. Each merge costs I/O proportional to
// its tier, which keeps total write amplification logarithmic under
// sustained ingest while clustering (and the shared dictionary) survive.
//
// Returns how many input segments were replaced (0 = nothing to do or
// lost a benign race), how many merged segments were written in their
// place, and the input/output file bytes.
func (s *Store) compactDataset(name string, opts CompactOptions) (merged, created int, bytesIn, bytesOut int64, err error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return 0, 0, 0, 0, nil
	}
	refs := append([]SegmentRef(nil), s.liveSegmentsLocked(name)...)
	sch, ok := s.schemaLocked(name)
	s.mu.RUnlock()
	if !ok || len(refs) < opts.minSegments() {
		return 0, 0, 0, 0, nil
	}

	target := opts.targetBytes()
	allSmall := true
	var cands []cand
	for _, ref := range refs {
		fi, err := os.Stat(filepath.Join(s.dir, ref.File))
		if err != nil {
			return 0, 0, 0, 0, nil // raced a concurrent swap; try next pass
		}
		if fi.Size() >= target {
			allSmall = false
			continue
		}
		cands = append(cands, cand{ref: ref, size: fi.Size()})
	}

	var groups [][]cand
	if allSmall {
		groups = [][]cand{cands} // whole-dataset rewrite, dicts may rebuild
	} else {
		// Size tiers, deepest (smallest files) first so one pass can roll
		// a tier up and the next pass continues from there.
		tierOf := func(size int64) int {
			t, bound := 0, target/4
			for t < 7 && size < bound {
				bound /= 4
				t++
			}
			return t
		}
		byTier := map[int][]cand{}
		for _, c := range cands {
			k := tierOf(c.size)
			byTier[k] = append(byTier[k], c)
		}
		for k := 7; k >= 0; k-- {
			if g := byTier[k]; len(g) > 0 {
				groups = append(groups, g)
			}
		}
	}

	for _, g := range groups {
		gm, gc, gin, gout, err := s.compactGroup(name, sch, g, opts, allSmall)
		if err != nil {
			return merged, created, bytesIn, bytesOut, err
		}
		merged += gm
		created += gc
		bytesIn += gin
		bytesOut += gout
	}
	return merged, created, bytesIn, bytesOut, nil
}

// compactGroup merges one group of a dataset's segments and commits the
// swap. rebuild marks a whole-dataset rewrite: the shared dictionaries
// are rebuilt from scratch (fresh codes in the new sort order) under
// bumped epochs, and the commit insists the group still covers every
// live segment — otherwise codes from the surviving old segments would
// dangle.
func (s *Store) compactGroup(name string, sch schema.Schema, cands []cand, opts CompactOptions, rebuild bool) (merged, created int, bytesIn, bytesOut int64, err error) {
	for _, c := range cands {
		bytesIn += c.size
	}
	// The output is chunked at the size target — one monster segment
	// would be the granularity zone maps prune at, so merging everything
	// into it could make filtered scans WORSE, not better. Chunking also
	// guarantees a fixed point: compaction only runs when it strictly
	// reduces the segment count, so re-running it over its own output is
	// a no-op rather than an endless rewrite churn.
	chunks := int((bytesIn + opts.targetBytes() - 1) / opts.targetBytes())
	if chunks < 1 {
		chunks = 1
	}
	if len(cands) < opts.minSegments() || len(cands) <= chunks {
		return 0, 0, 0, 0, nil
	}

	// Resolve the dictionaries the inputs decode through and the set the
	// outputs encode against. A partial (tiered) merge must not touch the
	// dictionary — uncovered values simply fall back to private
	// encodings — while a whole-dataset rewrite starts fresh dictionaries
	// whose epochs supersede the old ones.
	s.mu.RLock()
	oldDicts := s.dictsLocked(name)
	s.mu.RUnlock()
	outDicts := oldDicts
	grow := false
	if rebuild {
		outDicts = DictSet{}
		for col, d := range oldDicts {
			outDicts[col] = &SharedDict{Col: col, Epoch: d.Epoch + 1}
		}
		grow = true
	}

	// Merge and sort outside the lock — segments are immutable, so the
	// reads need no coordination with writers. Inputs are read WITHOUT
	// populating the decoded-segment cache: a background pass over a
	// never-queried dataset must not pin the whole dataset in RAM.
	parts := make([]*table.Table, 0, len(cands))
	for _, c := range cands {
		t, err := s.readSegmentUncached(name, c.ref)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) || isStaleDict(err) {
				return 0, 0, 0, 0, nil // raced a concurrent swap; try next pass
			}
			return 0, 0, 0, 0, err
		}
		parts = append(parts, t)
	}
	mergedTab, err := concatTables(sch, parts)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	clusterIdx := 0
	if key := opts.ClusterBy[name]; key != "" {
		if i := sch.IndexOf(key); i >= 0 {
			clusterIdx = i
		}
	}
	sorted := mergedTab.Sort([]table.SortKey{{Col: clusterIdx}})

	// Write the sorted rows as `chunks` segments of near-equal row
	// count: consecutive clustering-key ranges, so each chunk's zone map
	// is a tight, (near-)disjoint slice of the key space. Until a
	// manifest names them, the files are orphans a crash leaves for GC.
	rows := sorted.NumRows()
	rowsPerChunk := (rows + chunks - 1) / chunks
	if rowsPerChunk < 1 {
		rowsPerChunk = 1
	}
	type outSeg struct {
		file string
		meta SegmentMeta
	}
	var outs []outSeg
	removeOuts := func() {
		for _, o := range outs {
			os.Remove(filepath.Join(s.dir, o.file))
		}
	}
	for lo := 0; lo < rows || (rows == 0 && lo == 0); lo += rowsPerChunk {
		hi := lo + rowsPerChunk
		if hi > rows {
			hi = rows
		}
		chunk := sorted.Slice(lo, hi)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			removeOuts()
			return 0, 0, 0, 0, nil
		}
		file := segName(s.nextSeg)
		s.nextSeg++
		s.mu.Unlock()
		meta, err := WriteSegmentFileDict(s.dir, file, chunk, outDicts, grow)
		if err != nil {
			removeOuts()
			return 0, 0, 0, 0, err
		}
		outs = append(outs, outSeg{file: file, meta: meta})
		if fi, err := os.Stat(filepath.Join(s.dir, file)); err == nil {
			bytesOut += fi.Size()
		}
		if rows == 0 {
			break
		}
	}

	// Commit: under the store lock (which also serializes against Flush,
	// whose whole body holds it), re-validate that every input segment
	// is still live, then swap in a new manifest generation. The WAL
	// generation is untouched — compaction rewrites sealed history only,
	// so the live log keeps replaying over the new catalog unchanged.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		removeOuts()
		return 0, 0, 0, 0, nil
	}
	// Re-check the veto at commit: a resume-sensitive subscription that
	// appeared while the merge ran outside the lock must still win. (A
	// subscription starting between this check and the CURRENT swap can
	// in principle still observe the old order — the window is now the
	// lock-held commit, not the whole merge.)
	if opts.Exclude != nil && opts.Exclude(name) {
		removeOuts()
		return 0, 0, 0, 0, nil
	}
	candSet := make(map[string]bool, len(cands))
	for _, c := range cands {
		candSet[c.ref.File] = true
	}
	live := s.liveSegmentsLocked(name)
	liveSet := make(map[string]bool, len(live))
	for _, r := range live {
		liveSet[r.File] = true
	}
	for f := range candSet {
		if !liveSet[f] {
			removeOuts() // replace/drop raced the merge: the inputs are gone
			return 0, 0, 0, 0, nil
		}
	}
	if rebuild {
		// A dictionary rebuild is only sound as a whole-dataset rewrite:
		// every live segment must be among the inputs, or the survivors'
		// codes would reference the dictionary being thrown away. A Flush
		// that slipped in a new segment (or grew the dictionary) since the
		// snapshot aborts the rebuild; the next pass retries.
		if len(liveSet) != len(candSet) {
			removeOuts()
			return 0, 0, 0, 0, nil
		}
		cur := s.dictsLocked(name)
		stale := len(cur) != len(oldDicts)
		if !stale {
			for col, d := range oldDicts {
				c, ok := cur[col]
				if !ok || c.Epoch != d.Epoch || len(c.Vals) != len(d.Vals) {
					stale = true
					break
				}
			}
		}
		if stale {
			removeOuts()
			return 0, 0, 0, 0, nil
		}
	}

	var newRefs []SegmentRef
	inserted := false
	for _, r := range live {
		if candSet[r.File] {
			if !inserted {
				for _, o := range outs {
					newRefs = append(newRefs, SegmentRef{File: o.file, Meta: o.meta})
				}
				inserted = true
			}
			continue
		}
		newRefs = append(newRefs, r)
	}
	next := &Manifest{Gen: s.man.Gen + 1, WalGen: s.man.WalGen, NextSeg: s.nextSeg}
	for _, dm := range s.man.Datasets {
		cp := DatasetManifest{Name: dm.Name, Schema: dm.Schema, OrderEpoch: dm.OrderEpoch}
		cp.Dicts = append([]*SharedDict(nil), dm.Dicts...)
		if dm.Name == name {
			cp.Segments = newRefs
			// The clustering sort rewrote the dataset's row order: stale
			// row-offset resume tokens must stop matching.
			cp.OrderEpoch++
			if rebuild {
				// The rebuilt dictionaries (fresh codes, bumped epochs)
				// replace the old set in the same generation as the
				// segments written against them.
				cp.setDicts(outDicts)
			}
		} else {
			cp.Segments = append([]SegmentRef(nil), dm.Segments...)
		}
		next.Datasets = append(next.Datasets, cp)
	}
	if err := writeManifest(s.dir, next); err != nil {
		removeOuts()
		return 0, 0, 0, 0, err
	}
	// The swap succeeded: the merged generation is authoritative. The
	// replaced files and the superseded manifest are garbage now (and
	// would be collected on the next open if this process died here).
	// Output tables are deliberately NOT cached — the first scan that
	// wants them reads and caches them like any other segment.
	s.man = next
	s.cacheGen++ // in-flight reads of the purged files must not re-cache them
	for _, c := range cands {
		delete(s.segs, c.ref.File)
		for k := range s.segs {
			if strings.HasPrefix(k, c.ref.File+"?") {
				delete(s.segs, k)
			}
		}
		for k := range s.encs {
			if strings.HasPrefix(k, c.ref.File+"?") {
				delete(s.encs, k)
			}
		}
		os.Remove(filepath.Join(s.dir, c.ref.File))
	}
	if next.Gen > 1 {
		os.Remove(filepath.Join(s.dir, manifestName(next.Gen-1)))
	}
	return len(cands), len(outs), bytesIn, bytesOut, nil
}

// readSegmentUncached materializes a segment, reusing a cached table if
// one exists but never inserting into the cache (compaction's read
// path: the inputs are about to be deleted).
func (s *Store) readSegmentUncached(name string, ref SegmentRef) (*table.Table, error) {
	s.mu.RLock()
	t, ok := s.segs[ref.File]
	dicts := s.dictsLocked(name)
	s.mu.RUnlock()
	if ok {
		return t, nil
	}
	seg, err := ReadSegmentFileDicts(filepath.Join(s.dir, ref.File), dicts)
	if err != nil {
		return nil, err
	}
	metBytesReadFull.Add(seg.FileBytes)
	s.mu.Lock()
	s.bytesRead += seg.FileBytes
	s.mu.Unlock()
	return seg.Table, nil
}
