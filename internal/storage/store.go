package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"nexus/internal/schema"
	"nexus/internal/table"
)

// DefaultFlushBytes is the WAL size that triggers an automatic flush of
// in-memory tails into segments.
const DefaultFlushBytes = 8 << 20

// Store is a crash-safe dataset store: every mutation hits the WAL
// (group-committed fsync) before memory, segments hold flushed history,
// and the manifest binds them. Open replays the catalog plus the WAL,
// reconstructing exactly the acknowledged state.
type Store struct {
	dir string

	// FlushBytes is the WAL size that triggers an automatic flush; 0
	// means DefaultFlushBytes. Set before concurrent use.
	FlushBytes int64

	mu      sync.RWMutex
	man     *Manifest
	wal     *WAL
	tails   map[string]*tail           // unflushed rows per dataset
	segs    map[string]*table.Table    // decoded segment cache: file (full) or file+cols (projected)
	encs    map[string]*EncodedSegment // encoded-view cache: file+cols, pages parsed but not materialized
	nextSeg uint64                     // next segment file number (flushes and compactions share it)
	closed  bool
	replica bool // replica mode: local mutations refused, manifests applied from a primary

	// cacheGen is bumped whenever compaction purges cache entries, so a
	// read that raced the purge (decoded a file the swap just deleted)
	// knows not to re-insert the dead entry. Guarded by mu.
	cacheGen uint64

	// bytesRead counts the segment-file bytes scans actually consumed;
	// the projection benchmarks report it. Guarded by mu.
	bytesRead int64

	// dsLocks serializes WAL-write + memory-apply per dataset, so the
	// in-memory row order always matches the log's replay order. Writes
	// to different datasets still interleave — that is what group commit
	// batches into one fsync.
	dsLocks sync.Map // dataset name -> *sync.Mutex

	// rotmu excludes WAL rotation (Flush) from in-flight writes: a write
	// holds the read side from log append through memory apply, so a
	// record never lands in a log generation the manifest has already
	// superseded.
	rotmu sync.RWMutex
}

// dsLock returns the per-dataset write lock.
func (s *Store) dsLock(name string) *sync.Mutex {
	if m, ok := s.dsLocks.Load(name); ok {
		return m.(*sync.Mutex)
	}
	m, _ := s.dsLocks.LoadOrStore(name, &sync.Mutex{})
	return m.(*sync.Mutex)
}

// tail is one dataset's rows appended since the last flush, plus its
// authoritative schema.
type tail struct {
	sch      schema.Schema
	parts    []*table.Table
	replaced bool // dataset was replaced/created after the last flush: ignore manifest segments

	// epochBump counts how many times the dataset's row order restarted
	// since the last flush (replace, or drop + recreate). The dataset's
	// effective order epoch is the manifest's OrderEpoch plus this bump;
	// Flush folds it into the next manifest generation. WAL replay
	// reproduces the same bumps, so the epoch is crash-stable.
	epochBump uint64
}

// Open opens (or creates) a data directory, recovering committed state:
// the current manifest is loaded, the live WAL replayed on top, any
// torn WAL tail truncated, and orphaned files from interrupted flushes
// removed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, ckptDir), 0o755); err != nil {
		return nil, fmt.Errorf("storage: create checkpoint dir: %w", err)
	}
	man, err := readCurrentManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		man:     man,
		tails:   map[string]*tail{},
		segs:    map[string]*table.Table{},
		encs:    map[string]*EncodedSegment{},
		nextSeg: man.NextSeg,
	}
	walPath := filepath.Join(dir, walName(man.WalGen))
	size, err := ReplayWAL(walPath, s.applyRecord)
	if err != nil {
		return nil, err
	}
	s.wal, err = openWALForAppend(walPath, size)
	if err != nil {
		return nil, err
	}
	collectGarbage(dir, man)
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// applyRecord replays one WAL record into the in-memory tails.
func (s *Store) applyRecord(rec WalRecord) error {
	switch rec.Kind {
	case walAppend:
		s.applyAppend(rec.Dataset, rec.Table, false)
	case walReplace:
		s.applyAppend(rec.Dataset, rec.Table, true)
	case walDrop:
		s.applyDrop(rec.Dataset)
	}
	return nil
}

func (s *Store) applyAppend(name string, t *table.Table, replace bool) {
	tl := s.tails[name]
	switch {
	case tl == nil:
		// First touch since the last flush: appends extend the manifest's
		// segments, while a brand-new dataset starts from nothing. A
		// replace of an existing dataset restarts its row order.
		bump := uint64(0)
		if replace && s.man.dataset(name) != nil {
			bump = 1
		}
		tl = &tail{sch: t.Schema(), replaced: replace || s.man.dataset(name) == nil, epochBump: bump}
		s.tails[name] = tl
	case replace, tl.replaced && len(tl.parts) == 0:
		// Replace, or the first append after a drop tombstone: restart the
		// tail and keep the manifest's segments shadowed. A replace starts
		// a new row order; the post-drop restart already bumped at drop.
		bump := tl.epochBump
		if replace {
			bump++
		}
		tl = &tail{sch: t.Schema(), replaced: true, epochBump: bump}
		s.tails[name] = tl
	}
	tl.parts = append(tl.parts, t)
}

func (s *Store) applyDrop(name string) {
	// A drop tombstones the manifest's segments via an empty replaced
	// tail with no schema; lookups treat it as absent. Dropping ends the
	// current row order, so the epoch bump carries into any recreation.
	bump := uint64(1)
	if tl := s.tails[name]; tl != nil {
		bump = tl.epochBump + 1
	}
	s.tails[name] = &tail{replaced: true, epochBump: bump}
}

// OrderEpoch returns the dataset's current order epoch: it increments
// whenever the dataset's row order restarts or is rewritten (replace,
// drop + recreate, compaction re-sort). Row-offset resume tokens carry
// the epoch they were minted under; a mismatch means the offset no
// longer addresses the same rows. Unknown datasets report 0.
func (s *Store) OrderEpoch(name string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var epoch uint64
	if dm := s.man.dataset(name); dm != nil {
		epoch = dm.OrderEpoch
	}
	if tl := s.tails[name]; tl != nil {
		epoch += tl.epochBump
	}
	return epoch
}

// Health reports whether the store can still accept durable writes:
// nil when open with an unpoisoned WAL, an error otherwise.
func (s *Store) Health() error {
	s.mu.RLock()
	closed, wal := s.closed, s.wal
	s.mu.RUnlock()
	if closed {
		return fmt.Errorf("storage: store is closed")
	}
	return wal.syncError()
}

// ManifestHealth probes the catalog on disk: it re-reads the manifest
// CURRENT names, end to end, so a torn disk, a deleted file or a
// corrupted checksum surfaces as an error rather than on the next
// restart.
func (s *Store) ManifestHealth() error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return fmt.Errorf("storage: store is closed")
	}
	_, err := readCurrentManifest(s.dir)
	return err
}

// exists reports whether the dataset currently exists (s.mu held).
func (s *Store) existsLocked(name string) bool {
	if tl, ok := s.tails[name]; ok {
		return len(tl.parts) > 0 || (!tl.replaced && s.man.dataset(name) != nil)
	}
	return s.man.dataset(name) != nil
}

// schemaLocked resolves the dataset's schema (s.mu held).
func (s *Store) schemaLocked(name string) (schema.Schema, bool) {
	if tl, ok := s.tails[name]; ok {
		if len(tl.parts) > 0 {
			return tl.sch, true
		}
		if tl.replaced {
			return schema.Schema{}, false
		}
	}
	if dm := s.man.dataset(name); dm != nil {
		return dm.Schema, true
	}
	return schema.Schema{}, false
}

// Schema resolves a dataset's schema.
func (s *Store) Schema(name string) (schema.Schema, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.schemaLocked(name)
}

// Datasets lists dataset names with schemas and row counts.
func (s *Store) Datasets() []struct {
	Name   string
	Schema schema.Schema
	Rows   int64
} {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	var out []struct {
		Name   string
		Schema schema.Schema
		Rows   int64
	}
	add := func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		sch, ok := s.schemaLocked(name)
		if !ok {
			return
		}
		var rows int64
		for _, ref := range s.liveSegmentsLocked(name) {
			rows += ref.Meta.Rows
		}
		if tl := s.tails[name]; tl != nil {
			for _, p := range tl.parts {
				rows += int64(p.NumRows())
			}
		}
		out = append(out, struct {
			Name   string
			Schema schema.Schema
			Rows   int64
		}{name, sch, rows})
	}
	for _, dm := range s.man.Datasets {
		add(dm.Name)
	}
	for name := range s.tails {
		add(name)
	}
	return out
}

// liveSegmentsLocked returns the manifest segments still visible for a
// dataset (none when a replace/drop tombstoned them). s.mu held.
func (s *Store) liveSegmentsLocked(name string) []SegmentRef {
	if tl, ok := s.tails[name]; ok && tl.replaced {
		return nil
	}
	if dm := s.man.dataset(name); dm != nil {
		return dm.Segments
	}
	return nil
}

// Append durably appends rows to a dataset, creating it on first use.
// The schema of later appends must match the dataset's (names, kinds
// and dimension tags).
func (s *Store) Append(name string, t *table.Table) error {
	return s.write(walAppend, name, t)
}

// Replace durably replaces a dataset's contents (provider Store
// semantics).
func (s *Store) Replace(name string, t *table.Table) error {
	return s.write(walReplace, name, t)
}

func (s *Store) write(kind uint8, name string, t *table.Table) error {
	if name == "" {
		return fmt.Errorf("storage: empty dataset name")
	}
	if t == nil {
		return fmt.Errorf("storage: nil table for %q", name)
	}
	lock := s.dsLock(name)
	lock.Lock()
	s.rotmu.RLock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rotmu.RUnlock()
		lock.Unlock()
		return fmt.Errorf("storage: store is closed")
	}
	if s.replica {
		s.mu.Unlock()
		s.rotmu.RUnlock()
		lock.Unlock()
		return ErrReplicaReadOnly
	}
	if kind == walAppend {
		if sch, ok := s.schemaLocked(name); ok && !sch.Equal(t.Schema()) {
			s.mu.Unlock()
			s.rotmu.RUnlock()
			lock.Unlock()
			return fmt.Errorf("storage: append schema %v does not match dataset %q schema %v", t.Schema(), name, sch)
		}
	}
	wal := s.wal
	s.mu.Unlock()

	// WAL first — the record is durable before memory changes and before
	// the caller's ack. The per-dataset lock spans log write and memory
	// apply, so replay order and in-memory order agree; writes to other
	// datasets proceed concurrently and share the group commit's fsync.
	// The rotation read-lock pins the log generation across both steps.
	err := wal.Append(WalRecord{Kind: kind, Dataset: name, Table: t})
	if err == nil {
		s.mu.Lock()
		s.applyAppend(name, t, kind == walReplace)
		s.mu.Unlock()
	}
	s.rotmu.RUnlock()
	lock.Unlock()
	if err != nil {
		return err
	}
	s.mu.RLock()
	needFlush := s.flushThresholdLocked()
	s.mu.RUnlock()
	if needFlush {
		return s.Flush()
	}
	return nil
}

func (s *Store) flushThresholdLocked() bool {
	limit := s.FlushBytes
	if limit <= 0 {
		limit = DefaultFlushBytes
	}
	return s.wal.Size() >= limit
}

// Drop durably removes a dataset.
func (s *Store) Drop(name string) error {
	lock := s.dsLock(name)
	lock.Lock()
	defer lock.Unlock()
	s.rotmu.RLock()
	defer s.rotmu.RUnlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("storage: store is closed")
	}
	if s.replica {
		s.mu.Unlock()
		return ErrReplicaReadOnly
	}
	wal := s.wal
	s.mu.Unlock()
	if err := wal.Append(WalRecord{Kind: walDrop, Dataset: name}); err != nil {
		return err
	}
	s.mu.Lock()
	s.applyDrop(name)
	s.mu.Unlock()
	return nil
}

// Segments returns the dataset's durable segment references (for
// zone-map pruning) and its unflushed tail parts. Either may be empty.
func (s *Store) Segments(name string) (refs []SegmentRef, tailParts []*table.Table, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.existsLocked(name) {
		return nil, nil, false
	}
	refs = append(refs, s.liveSegmentsLocked(name)...)
	if tl := s.tails[name]; tl != nil {
		tailParts = append(tailParts, tl.parts...)
	}
	return refs, tailParts, true
}

// SharedDicts returns the dataset's live shared dictionaries (nil when
// it has none). The returned dictionaries are immutable — growth and
// rebuilds publish new objects via the manifest — so callers may hold
// them across queries, revalidating code-based state by Epoch.
func (s *Store) SharedDicts(name string) DictSet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dictsLocked(name)
}

// dictsLocked resolves the dataset's dict set (s.mu held). A tombstoned
// dataset (replace/drop since last flush) has no live dictionaries: its
// unflushed rows live in the tail, and its old segments are shadowed.
func (s *Store) dictsLocked(name string) DictSet {
	if tl, ok := s.tails[name]; ok && tl.replaced {
		return nil
	}
	if dm := s.man.dataset(name); dm != nil {
		return dm.DictSet()
	}
	return nil
}

// ReadSegment materializes one segment by manifest reference, serving
// repeat reads from an in-memory cache (the warm path). The cache is
// sound because segments are immutable. The dataset name resolves the
// shared dictionaries v3 pages decode through.
func (s *Store) ReadSegment(dataset string, ref SegmentRef) (*table.Table, error) {
	s.mu.RLock()
	t, ok := s.segs[ref.File]
	gen := s.cacheGen
	dicts := s.dictsLocked(dataset)
	s.mu.RUnlock()
	if ok {
		metSegCacheHit.Inc()
		return t, nil
	}
	metSegCacheMiss.Inc()
	seg, err := ReadSegmentFileDicts(filepath.Join(s.dir, ref.File), dicts)
	if err != nil {
		return nil, err
	}
	metBytesReadFull.Add(seg.FileBytes)
	s.cacheInsert(ref.File, seg.Table, gen, seg.FileBytes)
	return seg.Table, nil
}

// ReadSegmentColumns materializes only the given column positions of a
// segment (the projected cold-scan path): a v2 segment file yields just
// its header, meta block and the selected pages; a v1 file is read
// whole and projected. Projections are cached separately from full
// reads — both are immutable — and a cached full table short-circuits
// to an in-memory projection.
func (s *Store) ReadSegmentColumns(dataset string, ref SegmentRef, positions []int) (*table.Table, error) {
	key := ref.File + "?" + colsKey(positions)
	s.mu.RLock()
	t, ok := s.segs[key]
	full, fullOK := s.segs[ref.File]
	gen := s.cacheGen
	dicts := s.dictsLocked(dataset)
	s.mu.RUnlock()
	if ok || fullOK {
		metSegCacheHit.Inc()
		if ok {
			return t, nil
		}
		return full.Project(positions), nil
	}
	metSegCacheMiss.Inc()
	seg, err := ReadSegmentFileColumnsDicts(filepath.Join(s.dir, ref.File), positions, dicts)
	if err != nil {
		return nil, err
	}
	metBytesReadProjected.Add(seg.FileBytes)
	s.cacheInsert(key, seg.Table, gen, seg.FileBytes)
	return seg.Table, nil
}

// ReadSegmentEncoded reads only the given column positions of a segment
// in encoded form — pages parsed and verified but not materialized, so
// predicates can run over runs and dictionary codes first. Encoded views
// are immutable (dictionary growth is append-only within an epoch, and a
// rebuild deletes the referencing files) and cached like decoded ones.
func (s *Store) ReadSegmentEncoded(dataset string, ref SegmentRef, positions []int) (*EncodedSegment, error) {
	key := ref.File + "?" + colsKey(positions)
	s.mu.RLock()
	es, ok := s.encs[key]
	gen := s.cacheGen
	dicts := s.dictsLocked(dataset)
	s.mu.RUnlock()
	if ok {
		metSegCacheHit.Inc()
		return es, nil
	}
	metSegCacheMiss.Inc()
	es, err := ReadSegmentFileColumnsEncoded(filepath.Join(s.dir, ref.File), positions, dicts)
	if err != nil {
		return nil, err
	}
	metBytesReadEncoded.Add(es.FileBytes)
	s.mu.Lock()
	if s.cacheGen == gen {
		s.encs[key] = es
	}
	s.bytesRead += es.FileBytes
	s.mu.Unlock()
	return es, nil
}

// cacheInsert adds a decoded segment under key unless a compaction
// purge ran since the caller snapshotted gen — inserting then would
// resurrect an entry for a deleted file that nothing ever evicts.
// Bytes read are counted either way; the disk read happened.
func (s *Store) cacheInsert(key string, t *table.Table, gen uint64, bytes int64) {
	s.mu.Lock()
	if s.cacheGen == gen {
		s.segs[key] = t
	}
	s.bytesRead += bytes
	s.mu.Unlock()
}

// colsKey renders column positions as a cache-key suffix.
func colsKey(positions []int) string {
	var b []byte
	for i, c := range positions {
		if i > 0 {
			b = append(b, ',')
		}
		b = fmt.Appendf(b, "%d", c)
	}
	return string(b)
}

// BytesRead returns the cumulative segment-file bytes scans have read
// from disk (cache hits cost nothing). Benchmarks compare this across
// full and projected cold scans.
func (s *Store) BytesRead() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytesRead
}

// DropSegmentCache empties the decoded-segment cache (benchmarks use
// this to measure genuinely cold scans). Reads already in flight will
// not repopulate it — the generation bump makes their inserts no-ops.
func (s *Store) DropSegmentCache() {
	s.mu.Lock()
	s.segs = map[string]*table.Table{}
	s.encs = map[string]*EncodedSegment{}
	s.cacheGen++
	s.mu.Unlock()
}

// maxSwapRetries bounds how often a scan re-snapshots after losing the
// race against a compaction swap deleting its input files.
const maxSwapRetries = 3

// errNoDataset is the readSnapshot sentinel for an unknown dataset.
var errNoDataset = errors.New("storage: no such dataset")

// readSnapshot hands run one consistent (segments, tail) snapshot of a
// dataset. A concurrent compaction swap can delete a snapshotted
// segment file before run reads it (surfacing as fs.ErrNotExist), or a
// full rewrite can rebuild the shared dictionary out from under the
// snapshot's v3 segments (surfacing as a stale-dictionary epoch
// mismatch); either way the whole body re-runs over a fresh snapshot
// (the new generation references the merged files and their dictionary
// together) up to maxSwapRetries times. Every reader of segment files
// goes through this, so the retry policy lives in exactly one place.
func (s *Store) readSnapshot(name string, run func(refs []SegmentRef, parts []*table.Table) error) error {
	for attempt := 0; ; attempt++ {
		refs, parts, ok := s.Segments(name)
		if !ok {
			return errNoDataset
		}
		err := run(refs, parts)
		if err != nil && attempt < maxSwapRetries && (errors.Is(err, fs.ErrNotExist) || isStaleDict(err)) {
			continue
		}
		return err
	}
}

// Dataset materializes a whole dataset: durable segments in manifest
// order, then the unflushed tail.
func (s *Store) Dataset(name string) (*table.Table, bool, error) {
	var out *table.Table
	err := s.readSnapshot(name, func(refs []SegmentRef, parts []*table.Table) error {
		sch, _ := s.Schema(name)
		tables := make([]*table.Table, 0, len(refs)+len(parts))
		for _, ref := range refs {
			t, err := s.ReadSegment(name, ref)
			if err != nil {
				return err
			}
			tables = append(tables, t)
		}
		tables = append(tables, parts...)
		t, err := concatTables(sch, tables)
		if err != nil {
			return err
		}
		out = t
		return nil
	})
	if errors.Is(err, errNoDataset) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// concatTables concatenates parts under sch (empty table when none).
func concatTables(sch schema.Schema, parts []*table.Table) (*table.Table, error) {
	switch len(parts) {
	case 0:
		return table.Empty(sch), nil
	case 1:
		return parts[0], nil
	}
	return parts[0].Concat(parts[1:]...)
}

// Flush writes every unflushed tail into new segment files, commits a
// new manifest generation referencing them, rotates the WAL, and
// atomically swaps CURRENT. A crash anywhere in between leaves the old
// generation authoritative (new files are garbage-collected on the
// next open); after the swap the new generation is complete.
func (s *Store) Flush() error {
	s.rotmu.Lock()
	defer s.rotmu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: store is closed")
	}
	dirty := false
	for _, tl := range s.tails {
		if len(tl.parts) > 0 || tl.replaced {
			dirty = true
			break
		}
	}
	if !dirty {
		return nil
	}
	flushStart := time.Now()
	defer func() {
		metFlushes.Inc()
		metFlushSeconds.ObserveSince(flushStart)
	}()

	next := &Manifest{Gen: s.man.Gen + 1, WalGen: s.man.WalGen + 1, NextSeg: s.nextSeg}
	// Carry forward untouched datasets and surviving segments.
	names := map[string]bool{}
	for _, dm := range s.man.Datasets {
		names[dm.Name] = true
	}
	for name := range s.tails {
		names[name] = true
	}
	newSegCache := map[string]*table.Table{}
	var ordered []string
	for _, dm := range s.man.Datasets {
		ordered = append(ordered, dm.Name)
	}
	var fresh []string
	for name := range s.tails {
		if s.man.dataset(name) == nil {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh) // deterministic manifest order for new datasets
	ordered = append(ordered, fresh...)
	for _, name := range ordered {
		if !names[name] {
			continue
		}
		names[name] = false
		sch, ok := s.schemaLocked(name)
		if !ok {
			continue // dropped
		}
		dm := DatasetManifest{Name: name, Schema: sch}
		prev := s.man.dataset(name)
		tl := s.tails[name]
		if prev != nil {
			dm.OrderEpoch = prev.OrderEpoch
		}
		if tl != nil {
			dm.OrderEpoch += tl.epochBump
		}
		// Shared dictionaries: grow a writer-private clone of the live set
		// while encoding the new segment, then commit the grown set in
		// this same manifest generation — a reader either sees neither the
		// new codes nor the new entries, or both. A tombstoned dataset
		// (replace, drop + recreate) restarts with empty dictionaries
		// whose epochs supersede the old ones, so a stale reader of the
		// shadowed v3 files gets a loud epoch mismatch, never a silent
		// decode against the wrong value list.
		var dicts DictSet
		switch {
		case prev != nil && (tl == nil || !tl.replaced):
			dicts = cloneDictSet(prev.DictSet())
			if dicts == nil {
				dicts = DictSet{}
			}
		case prev != nil:
			dicts = DictSet{}
			for _, d := range prev.Dicts {
				dicts[d.Col] = &SharedDict{Col: d.Col, Epoch: d.Epoch + 1}
			}
		default:
			dicts = DictSet{}
		}
		dm.Segments = append(dm.Segments, s.liveSegmentsLocked(name)...)
		if tl != nil && len(tl.parts) > 0 {
			t, err := concatTables(sch, tl.parts)
			if err != nil {
				return err
			}
			if t.NumRows() > 0 {
				file := segName(s.nextSeg)
				s.nextSeg++
				next.NextSeg = s.nextSeg
				meta, err := WriteSegmentFileDict(s.dir, file, t, dicts, true)
				if err != nil {
					return err
				}
				dm.Segments = append(dm.Segments, SegmentRef{File: file, Meta: meta})
				newSegCache[file] = t
			}
		}
		dm.setDicts(dicts)
		next.Datasets = append(next.Datasets, dm)
	}

	// New WAL before the manifest that names it: an empty WAL file for a
	// generation nobody points at is harmless garbage on crash.
	newWal, err := CreateWAL(filepath.Join(s.dir, walName(next.WalGen)))
	if err != nil {
		return err
	}
	if err := writeManifest(s.dir, next); err != nil {
		newWal.Close()
		os.Remove(filepath.Join(s.dir, walName(next.WalGen)))
		return err
	}
	// The swap succeeded: the new generation is authoritative.
	old := s.man
	oldWal := s.wal
	s.wal = newWal
	s.man = next
	s.tails = map[string]*tail{}
	for f, t := range newSegCache {
		s.segs[f] = t
	}
	oldWal.Close()
	os.Remove(filepath.Join(s.dir, walName(next.WalGen-1)))
	if next.Gen > 1 {
		os.Remove(filepath.Join(s.dir, manifestName(next.Gen-1)))
	}
	// Segments the new generation no longer references (replace/drop
	// tombstones just committed) are dead: delete them now instead of
	// waiting for the next open's garbage collection, so a stale reader
	// fails fast with not-exist and re-snapshots.
	liveFiles := map[string]bool{}
	for _, dm := range next.Datasets {
		for _, ref := range dm.Segments {
			liveFiles[ref.File] = true
		}
	}
	purged := false
	for _, dm := range old.Datasets {
		for _, ref := range dm.Segments {
			if !liveFiles[ref.File] {
				os.Remove(filepath.Join(s.dir, ref.File))
				purged = true
			}
		}
	}
	if purged {
		// Drop dead decoded tables and stop in-flight reads from
		// re-inserting them.
		for key := range s.segs {
			file, _, _ := strings.Cut(key, "?")
			if !liveFiles[file] {
				delete(s.segs, key)
			}
		}
		for key := range s.encs {
			file, _, _ := strings.Cut(key, "?")
			if !liveFiles[file] {
				delete(s.encs, key)
			}
		}
		s.cacheGen++
	}
	return nil
}

// Close flushes tails to segments and shuts the store down.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}
