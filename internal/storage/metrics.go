package storage

import "nexus/internal/obs"

// Storage-layer metrics, registered in the process-wide obs registry.
// Each update is one or two atomic adds, cheap enough to stay on in
// the write path the durability benchmarks measure.
var (
	metWalFsyncSeconds = obs.Default.Histogram("nexus_wal_fsync_seconds",
		"Latency of WAL fsync calls (one flush commits a whole group-commit batch).",
		obs.LatencyBuckets())
	metWalAppendSeconds = obs.Default.Histogram("nexus_wal_append_seconds",
		"End-to-end latency of WAL appends: file write plus the wait for the batch's fsync.",
		obs.LatencyBuckets())
	metWalBatchRecords = obs.Default.Histogram("nexus_wal_commit_batch_records",
		"Records made durable per fsync — the group-commit batch size.",
		obs.SizeBuckets())
	metWalBytes = obs.Default.Counter("nexus_wal_append_bytes_total",
		"Bytes written to the write-ahead log.")
	metWalRecords = obs.Default.Counter("nexus_wal_records_total",
		"Records written to the write-ahead log.")

	metFlushes = obs.Default.Counter("nexus_storage_flushes_total",
		"WAL-to-segment flushes (manifest generation swaps).")
	metFlushSeconds = obs.Default.Histogram("nexus_storage_flush_seconds",
		"Duration of flushes: segment writes plus manifest commit.",
		obs.LatencyBuckets())

	metCompactions = obs.Default.Counter("nexus_storage_compactions_total",
		"Compaction passes that merged at least one dataset.")
	metCompactSeconds = obs.Default.Histogram("nexus_storage_compact_seconds",
		"Duration of compaction passes that merged something.",
		obs.LatencyBuckets())
	metCompactMerged = obs.Default.Counter("nexus_storage_compact_segments_merged_total",
		"Small segments replaced by compaction.")
	metCompactCreated = obs.Default.Counter("nexus_storage_compact_segments_created_total",
		"Merged segments written by compaction.")
	metCompactBytesIn = obs.Default.Counter("nexus_storage_compact_bytes_in_total",
		"File bytes of segments consumed by compaction.")
	metCompactBytesOut = obs.Default.Counter("nexus_storage_compact_bytes_out_total",
		"File bytes of segments produced by compaction.")

	metSegCache = obs.Default.CounterVec("nexus_storage_segment_cache_total",
		"Decoded-segment cache lookups by result.", "result")
	metSegCacheHit  = metSegCache.With("hit")
	metSegCacheMiss = metSegCache.With("miss")

	metBytesRead = obs.Default.CounterVec("nexus_storage_bytes_read_total",
		"Segment-file bytes read from disk, by read mode (full segment vs projected columns).",
		"mode")
	metBytesReadFull      = metBytesRead.With("full")
	metBytesReadProjected = metBytesRead.With("projected")
	metBytesReadEncoded   = metBytesRead.With("encoded")

	metEncodedScans = obs.Default.Counter("nexus_storage_encoded_scans_total",
		"Cold scans answered by the encoded path: predicates evaluated over "+
			"runs and dictionary codes, survivors materialized selectively.")
	metEncodedAggs = obs.Default.Counter("nexus_storage_encoded_aggs_total",
		"Grouped aggregations folded directly over encoded pages.")

	metSegScanned = obs.Default.Counter("nexus_storage_segments_scanned_total",
		"Segments materialized by scans.")
	metSegPruned = obs.Default.Counter("nexus_storage_segments_pruned_total",
		"Segments skipped by zone-map pruning.")
)
