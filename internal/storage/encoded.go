package storage

import (
	"fmt"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Encoded execution: evaluate scan predicates directly over the page
// encodings instead of decoding every page to plain columns first. An
// EncodedColumn is the parsed-but-not-materialized view of one page —
// for an RLE page that is the run list (a predicate tests each run's
// value once and accepts or rejects all its rows in O(1)), for a dict or
// shared-dict page the dictionary entries plus per-row codes (the
// constant is compared against each distinct entry once, then rows are
// filtered by a table lookup on their code — no string comparison per
// row). Rows that survive every conjunct are materialized selectively.
//
// Correctness contract: AndMatches must agree exactly with what the
// vectorized expression kernels would compute on the materialized
// column. Both sides bottom out in value.Compare's total order (NULL
// first, int64 exact, mixed numerics as NaN-first floats), so a NULL row
// matches `<`, `<=`, and `!=` against a non-NULL constant here exactly
// as it does there; the differential suite in encoded_diff_test.go holds
// the two paths byte-identical.

// EncodedColumn is one column page in its encoded form. Exactly one
// representation is populated, per enc:
//
//	PageEncPlain                  col
//	PageEncDict/PageEncDictShared dict + codes + valid
//	PageEncRLE                    runLens + runVals
type EncodedColumn struct {
	kind value.Kind
	rows int
	enc  uint8

	col *table.Column // plain: already materialized

	dict  *table.Column // dict entries, indexed by code
	codes []uint32      // per-row codes (bounds-checked at parse)
	valid []bool        // nil = all valid

	runLens []int         // per-run lengths (positive, sum = rows)
	runVals []value.Value // per-run values (value.Null for null runs)
}

// Rows returns the page's row count.
func (ec *EncodedColumn) Rows() int { return ec.rows }

// Kind returns the column kind.
func (ec *EncodedColumn) Kind() value.Kind { return ec.kind }

// Encoding returns the page encoding this view was parsed from.
func (ec *EncodedColumn) Encoding() uint8 { return ec.enc }

// EncodedSegment is a projected segment read whose columns stay in
// encoded form: what ReadSegmentFileColumnsEncoded returns and the
// encoded scan/aggregate paths consume. Schema, Meta.Zones and Cols
// cover only the selected columns, in selection order.
type EncodedSegment struct {
	Schema    schema.Schema
	Cols      []*EncodedColumn
	Meta      SegmentMeta
	FileBytes int64
}

// encodedFromColumn wraps an already-materialized column so callers can
// treat warm tables, tails, and v1 segments uniformly with encoded
// pages.
func encodedFromColumn(col *table.Column) *EncodedColumn {
	return &EncodedColumn{kind: col.Kind(), rows: col.Len(), enc: PageEncPlain, col: col}
}

// parsePageEncoded parses one page into its encoded view without
// materializing rows. Framing, CRCs, and code bounds are verified
// exactly as decodePage does.
func parsePageEncoded(b []byte, kind value.Kind, ctx pageCtx) (*EncodedColumn, error) {
	enc, rows, d, err := parsePageHeader(b)
	if err != nil {
		return nil, err
	}
	ec := &EncodedColumn{kind: kind, rows: rows, enc: enc}
	switch enc {
	case PageEncPlain:
		ec.col, err = getPlainPayload(d, kind, rows)
	case PageEncDict:
		ec.dict, ec.codes, ec.valid, err = getDictEncoded(d, kind, rows)
	case PageEncRLE:
		ec.runLens, ec.runVals, err = getRLERuns(d, kind, rows)
	case PageEncDictShared:
		ec.dict, ec.codes, ec.valid, err = getDictSharedEncoded(d, kind, rows, ctx)
	default:
		return nil, fmt.Errorf("storage: unknown column page encoding %d", enc)
	}
	if err != nil {
		return nil, err
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("storage: %s page: %w", encodingName(enc), err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("storage: %s page has %d trailing bytes", encodingName(enc), d.Remaining())
	}
	if ec.col != nil && ec.col.Len() != rows {
		return nil, fmt.Errorf("storage: %s page decoded %d rows, header says %d", encodingName(enc), ec.col.Len(), rows)
	}
	return ec, nil
}

// cmpHoldsEnc mirrors the expression kernels' comparison dispatch
// (expr.cmpHolds): given value.Compare's three-way result, does op hold?
// Copied rather than imported to keep storage free of an expr
// dependency; the differential suite pins the two in agreement.
func cmpHoldsEnc(op value.BinOp, c int) bool {
	switch op {
	case value.OpEq:
		return c == 0
	case value.OpNe:
		return c != 0
	case value.OpLt:
		return c < 0
	case value.OpLe:
		return c <= 0
	case value.OpGt:
		return c > 0
	default: // OpGe
		return c >= 0
	}
}

// AndMatches ANDs `row op val` into acc (len acc == Rows()): acc[r] is
// cleared wherever the predicate does not hold; rows already false are
// skipped. NULL rows compare as value.Null under the total order, which
// is exactly what the vectorized kernels do on a materialized column.
//
// Cost: one value.Compare per RLE run, one per distinct dictionary
// entry, one per still-live row on plain pages.
func (ec *EncodedColumn) AndMatches(op value.BinOp, val value.Value, acc []bool) {
	switch ec.enc {
	case PageEncRLE:
		at := 0
		for i, n := range ec.runLens {
			if !cmpHoldsEnc(op, value.Compare(ec.runVals[i], val)) {
				for j := at; j < at+n; j++ {
					acc[j] = false
				}
			}
			at += n
		}
	case PageEncDict, PageEncDictShared:
		verdict := make([]bool, ec.dict.Len())
		for c := range verdict {
			verdict[c] = cmpHoldsEnc(op, value.Compare(ec.dict.Value(c), val))
		}
		nullVerdict := cmpHoldsEnc(op, value.Compare(value.Null, val))
		if ec.valid == nil {
			for r, c := range ec.codes {
				if acc[r] && !verdict[c] {
					acc[r] = false
				}
			}
			return
		}
		for r, c := range ec.codes {
			if !acc[r] {
				continue
			}
			v := nullVerdict
			if ec.valid[r] {
				v = verdict[c]
			}
			if !v {
				acc[r] = false
			}
		}
	default: // plain (and wrapped columns)
		for r := 0; r < ec.rows; r++ {
			if acc[r] && !cmpHoldsEnc(op, value.Compare(ec.col.Value(r), val)) {
				acc[r] = false
			}
		}
	}
}

// Materialize decodes the full page to a plain column.
func (ec *EncodedColumn) Materialize() (*table.Column, error) {
	switch ec.enc {
	case PageEncRLE:
		return fillRuns(ec.kind, ec.runLens, ec.runVals, ec.rows)
	case PageEncDict, PageEncDictShared:
		return materializeDict(ec.dict, ec.codes, ec.valid), nil
	default:
		return ec.col, nil
	}
}

// MaterializeRows decodes only the selected rows (sel strictly
// ascending, every index < Rows()) to a plain column — the selective
// half of encoded execution: rows a predicate rejected are never
// materialized.
func (ec *EncodedColumn) MaterializeRows(sel []int) (*table.Column, error) {
	switch ec.enc {
	case PageEncRLE:
		return ec.gatherRuns(sel)
	case PageEncDict, PageEncDictShared:
		codes := make([]uint32, len(sel))
		var valid []bool
		if ec.valid != nil {
			valid = make([]bool, len(sel))
			for i, r := range sel {
				codes[i] = ec.codes[r]
				valid[i] = ec.valid[r]
			}
			allValid := true
			for _, v := range valid {
				if !v {
					allValid = false
					break
				}
			}
			if allValid {
				valid = nil
			}
		} else {
			for i, r := range sel {
				codes[i] = ec.codes[r]
			}
		}
		return materializeDict(ec.dict, codes, valid), nil
	default:
		return ec.col.Gather(sel), nil
	}
}

// gatherRuns materializes selected rows of an RLE page by walking runs
// and selection together (both ascending), so cost is O(runs + len(sel))
// with one unbox per touched run.
func (ec *EncodedColumn) gatherRuns(sel []int) (*table.Column, error) {
	lens := make([]int, 0, len(ec.runLens))
	vals := make([]value.Value, 0, len(ec.runVals))
	i, at := 0, 0 // current run, its start row
	count := 0
	for _, r := range sel {
		for r >= at+ec.runLens[i] {
			at += ec.runLens[i]
			i++
		}
		if n := len(lens); n > 0 && vals[n-1] == ec.runVals[i] {
			lens[n-1]++
		} else {
			lens = append(lens, 1)
			vals = append(vals, ec.runVals[i])
		}
		count++
	}
	return fillRuns(ec.kind, lens, vals, count)
}
