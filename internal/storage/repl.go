package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nexus/internal/table"
)

// Segment replication, storage side. The existing generation protocol
// already is a replication protocol in waiting: segments are immutable,
// the manifest names exactly the files of a generation, and CURRENT
// swaps atomically. A primary therefore ships (a) its encoded manifest
// and (b) the raw segment files it references; a follower fetches the
// files it is missing, verifies their CRCs by decoding them, and
// applies the manifest with the same write-files-then-swap-CURRENT
// ordering a local flush uses — a crash mid-sync leaves the previous
// generation authoritative on the follower, never a torn catalog.

// ErrReplicaReadOnly refuses mutations on a store opened as a replica:
// its contents are owned by the primary's manifest stream, and a local
// write would be silently destroyed by the next applied generation.
var ErrReplicaReadOnly = errors.New("storage: replica is read-only (serving replicated data)")

// SetReplica switches the store into (or out of) replica mode: Append,
// Replace and Drop refuse with ErrReplicaReadOnly, and
// ApplyReplicatedManifest becomes legal. Checkpoints stay writable —
// a failed-over subscriber checkpoints its stream state on the replica
// that adopted it.
func (s *Store) SetReplica(on bool) {
	s.mu.Lock()
	s.replica = on
	s.mu.Unlock()
}

// IsReplica reports replica mode.
func (s *Store) IsReplica() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.replica
}

// CurrentGen returns the manifest generation currently applied.
func (s *Store) CurrentGen() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man.Gen
}

// EncodedManifest snapshots the live catalog in its on-disk encoding
// (magic, body, CRC) — the exact bytes a follower verifies and applies.
func (s *Store) EncodedManifest() (gen uint64, raw []byte) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man.Gen, EncodeManifest(s.man)
}

// validSegName admits exactly the file names a manifest may reference —
// a hostile fetch request must not escape the data directory.
func validSegName(name string) bool {
	return strings.HasPrefix(name, "seg-") &&
		strings.HasSuffix(name, ".nxs") &&
		!strings.ContainsAny(name, "/\\") &&
		!strings.Contains(name, "..")
}

// SegmentFileBytes serves one raw segment file for replication. Only
// manifest-shaped segment names are served.
func (s *Store) SegmentFileBytes(name string) ([]byte, error) {
	if !validSegName(name) {
		return nil, fmt.Errorf("storage: refusing to serve non-segment file %q", name)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("storage: read segment for replication: %w", err)
	}
	return data, nil
}

// HasSegmentFile reports whether the segment file exists locally.
func (s *Store) HasSegmentFile(name string) bool {
	if !validSegName(name) {
		return false
	}
	_, err := os.Stat(filepath.Join(s.dir, name))
	return err == nil
}

// PutReplicatedSegment verifies a fetched segment end to end — magic,
// version, page checksums, footer CRC, code bounds — and writes it
// atomically under its manifest name. A corrupt or truncated transfer
// is rejected before a single byte lands under the name. Verification
// is structural: a v3 segment's shared-dict pages are checked without
// their dictionary, which arrives later inside the manifest generation
// that references both.
func (s *Store) PutReplicatedSegment(name string, data []byte) error {
	if !validSegName(name) {
		return fmt.Errorf("storage: bad replicated segment name %q", name)
	}
	if err := VerifySegment(data); err != nil {
		return fmt.Errorf("storage: replicated segment %s failed verification: %w", name, err)
	}
	return atomicWriteFile(filepath.Join(s.dir, name), data)
}

// CheckpointSet snapshots every durable stream checkpoint (key to
// payload) for replication, so a failed-over durable subscriber resumes
// on the replica from the primary's last persisted state instead of
// replaying from scratch.
func (s *Store) CheckpointSet() (map[string][]byte, error) {
	keys, err := s.Checkpoints()
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		data, ok, err := s.LoadCheckpoint(k)
		if err != nil {
			return nil, err
		}
		if ok {
			out[k] = data
		}
	}
	return out, nil
}

// ApplyReplicatedCheckpoints mirrors the primary's checkpoint set:
// every key in set is saved, every local key absent from it removed —
// the primary retiring a completed subscription's checkpoint retires it
// here too.
func (s *Store) ApplyReplicatedCheckpoints(set map[string][]byte) error {
	for k, data := range set {
		if err := s.SaveCheckpoint(k, data); err != nil {
			return err
		}
	}
	local, err := s.Checkpoints()
	if err != nil {
		return err
	}
	for _, k := range local {
		if _, ok := set[k]; !ok {
			if err := s.DeleteCheckpoint(k); err != nil {
				return err
			}
		}
	}
	return nil
}

// ApplyReplicatedManifest installs a primary's manifest as the local
// current generation. The caller has already fetched and verified every
// segment the manifest references (PutReplicatedSegment); this method
// re-checks their presence, persists the manifest bytes, atomically
// swaps CURRENT, and rotates the (empty — the store is a replica) WAL
// to the generation the manifest names. The ordering mirrors Flush:
// everything durable before the swap, so a crash mid-apply leaves the
// previous generation live.
func (s *Store) ApplyReplicatedManifest(raw []byte) error {
	m, err := DecodeManifest(raw)
	if err != nil {
		return fmt.Errorf("storage: replicated manifest: %w", err)
	}
	s.rotmu.Lock()
	defer s.rotmu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: store is closed")
	}
	if !s.replica {
		return fmt.Errorf("storage: ApplyReplicatedManifest on a non-replica store")
	}
	switch {
	case m.Gen == s.man.Gen:
		return nil // already applied
	case m.Gen < s.man.Gen:
		return fmt.Errorf("storage: replicated manifest gen %d behind local gen %d (primary went backwards?)", m.Gen, s.man.Gen)
	}
	for _, ds := range m.Datasets {
		for _, ref := range ds.Segments {
			if !validSegName(ref.File) {
				return fmt.Errorf("storage: replicated manifest names invalid segment %q", ref.File)
			}
			if _, err := os.Stat(filepath.Join(s.dir, ref.File)); err != nil {
				return fmt.Errorf("storage: replicated manifest references missing segment %s: %w", ref.File, err)
			}
		}
	}

	// A fresh (empty) WAL for the new generation, created before the
	// manifest that names it — the same crash-ordering Flush uses.
	var newWal *WAL
	if m.WalGen != s.man.WalGen {
		newWal, err = CreateWAL(filepath.Join(s.dir, walName(m.WalGen)))
		if err != nil {
			return err
		}
	}
	// Persist the exact bytes that passed the CRC check, then swap.
	if err := atomicWriteFile(filepath.Join(s.dir, manifestName(m.Gen)), raw); err != nil {
		if newWal != nil {
			newWal.Close()
			os.Remove(filepath.Join(s.dir, walName(m.WalGen)))
		}
		return err
	}
	if err := atomicWriteFile(filepath.Join(s.dir, "CURRENT"), []byte(manifestName(m.Gen)+"\n")); err != nil {
		if newWal != nil {
			newWal.Close()
			os.Remove(filepath.Join(s.dir, walName(m.WalGen)))
		}
		return err
	}

	oldMan := s.man
	if newWal != nil {
		oldWal := s.wal
		s.wal = newWal
		oldWal.Close()
		os.Remove(filepath.Join(s.dir, walName(oldMan.WalGen)))
	}
	s.man = m
	s.nextSeg = m.NextSeg
	s.tails = map[string]*tail{} // a replica holds no local writes
	// Purge the decoded-segment cache wholesale: a compaction on the
	// primary retires files this cache may still hold, and nothing would
	// ever evict them.
	s.segs = map[string]*table.Table{}
	s.encs = map[string]*EncodedSegment{}
	s.cacheGen++
	if m.Gen > 0 && oldMan.Gen > 0 {
		os.Remove(filepath.Join(s.dir, manifestName(oldMan.Gen)))
	}
	collectGarbage(s.dir, m)
	return nil
}
