package storage

import (
	"hash/crc32"

	"testing"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// pageColumns builds columns exercising every kind, null patterns, and
// shapes that favor each encoding.
func pageColumns() map[string]*table.Column {
	n := 1000
	runs := make([]int64, n) // long runs -> RLE
	lowCard := make([]string, n)
	highCard := make([]int64, n) // all distinct -> plain
	floats := make([]float64, n)
	bools := make([]bool, n)
	for i := 0; i < n; i++ {
		runs[i] = int64(i / 100)
		lowCard[i] = []string{"red", "green", "blue"}[i%3]
		highCard[i] = int64(i * 7)
		floats[i] = float64(i%5) + 0.25
		bools[i] = i%97 == 0
	}
	withNulls := table.NewColumn(value.KindString, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			withNulls.Append(value.Null)
		} else {
			withNulls.Append(value.NewString(lowCard[i]))
		}
	}
	return map[string]*table.Column{
		"runs":      table.IntColumn(runs),
		"lowCard":   table.StringColumn(lowCard),
		"highCard":  table.IntColumn(highCard),
		"floats":    table.FloatColumn(floats),
		"bools":     table.BoolColumn(bools),
		"withNulls": withNulls,
	}
}

// TestPageEncodingRoundtrip decodes every column under every encoding
// back to identical values — the chooser may pick any of them, so all
// three must be lossless for all kinds and null patterns.
func TestPageEncodingRoundtrip(t *testing.T) {
	for name, col := range pageColumns() {
		for _, enc := range []uint8{PageEncPlain, PageEncRLE} {
			checkPageRoundtrip(t, name, col, enc)
		}
		if col.Kind() != value.KindBool {
			checkPageRoundtrip(t, name, col, PageEncDict)
		}
	}
}

func checkPageRoundtrip(t *testing.T, name string, col *table.Column, enc uint8) {
	t.Helper()
	page := encodePage(col, enc, nil)
	got, err := decodePage(page, col.Kind(), pageCtx{})
	if err != nil {
		t.Fatalf("%s/%s: decode: %v", name, encodingName(enc), err)
	}
	if got.Len() != col.Len() {
		t.Fatalf("%s/%s: %d rows, want %d", name, encodingName(enc), got.Len(), col.Len())
	}
	for r := 0; r < col.Len(); r++ {
		if !value.Equal(col.Value(r), got.Value(r)) {
			t.Fatalf("%s/%s: row %d: got %v want %v", name, encodingName(enc), r, got.Value(r), col.Value(r))
		}
	}
	// Corrupt any byte: the page CRC must catch it.
	bad := append([]byte(nil), page...)
	bad[len(bad)/2] ^= 0x20
	if _, err := decodePage(bad, col.Kind(), pageCtx{}); err == nil {
		t.Fatalf("%s/%s: corrupted page decoded successfully", name, encodingName(enc))
	}
}

// TestChoosePageEncoding pins the heuristic: long runs pick RLE, low
// cardinality picks dict, incompressible data stays plain, and tiny
// columns always stay plain.
func TestChoosePageEncoding(t *testing.T) {
	cols := pageColumns()
	want := map[string]uint8{
		"runs":     PageEncRLE,
		"lowCard":  PageEncDict,
		"highCard": PageEncPlain,
		"floats":   PageEncDict,
		"bools":    PageEncRLE, // rare trues -> long false runs
	}
	for name, enc := range want {
		if got := choosePageEncoding(cols[name]); got != enc {
			t.Errorf("%s: chose %s, want %s", name, encodingName(got), encodingName(enc))
		}
	}
	tiny := table.IntColumn([]int64{1, 1, 1, 1})
	if got := choosePageEncoding(tiny); got != PageEncPlain {
		t.Errorf("tiny column: chose %s, want plain", encodingName(got))
	}
}

// TestEncodedSegmentSmaller pins the size win the encodings exist for:
// clustered low-cardinality data encodes substantially smaller under v2
// than the plain v1 layout.
func TestEncodedSegmentSmaller(t *testing.T) {
	sch := schema.New(
		schema.Attribute{Name: "bucket", Kind: value.KindInt64},
		schema.Attribute{Name: "region", Kind: value.KindString},
		schema.Attribute{Name: "price", Kind: value.KindFloat64},
	)
	b := table.NewBuilder(sch, 20000)
	for i := 0; i < 20000; i++ {
		b.MustAppend(
			value.NewInt(int64(i/500)),
			value.NewString([]string{"emea", "apac", "amer"}[(i/200)%3]),
			value.NewFloat(float64(i%40)+0.5),
		)
	}
	tab := b.Build()
	v1 := len(EncodeSegmentV1(tab))
	v2 := len(EncodeSegment(tab))
	if v2*2 > v1 {
		t.Fatalf("v2 segment is %d bytes vs %d plain v1 — encodings bought less than 2x", v2, v1)
	}
}

// TestMixedVersionSegments is the compatibility acceptance test: a v1
// (plain-encoded) segment written by the old writer sits in the same
// dataset as v2 dict/RLE segments and every read path — full decode,
// projected read, store scan — returns identical rows.
func TestMixedVersionSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Two flushed segments.
	for i := int64(0); i < 2; i++ {
		if err := st.Append("d", rowsTable(i*100, i*100+100)); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	refs, _, _ := st.Segments("d")
	if len(refs) != 2 {
		t.Fatalf("%d segments, want 2", len(refs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the first segment file in the v1 layout — exactly what a
	// directory written by the previous release holds.
	seg0, err := ReadSegmentFile(dir + "/" + refs[0].File)
	if err != nil {
		t.Fatal(err)
	}
	if err := atomicWriteFile(dir+"/"+refs[0].File, EncodeSegmentV1(seg0.Table)); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen over mixed-version segments: %v", err)
	}
	defer st2.Close()
	got, ok, err := st2.Dataset("d")
	if err != nil || !ok {
		t.Fatalf("dataset over mixed versions: ok=%v err=%v", ok, err)
	}
	if !table.EqualRows(rowsTable(0, 200), got) {
		t.Fatal("mixed-version dataset rows differ")
	}

	// Projected reads work on both versions (v1 falls back to a full
	// read; v2 fetches only the selected pages) and agree byte-for-byte.
	for i, ref := range refs {
		full, err := ReadSegmentFile(dir + "/" + ref.File)
		if err != nil {
			t.Fatal(err)
		}
		proj, err := ReadSegmentFileColumns(dir+"/"+ref.File, []int{0, 2})
		if err != nil {
			t.Fatalf("segment %d projected read: %v", i, err)
		}
		if !table.EqualRows(full.Table.Project([]int{0, 2}), proj.Table) {
			t.Fatalf("segment %d: projected read differs from full read", i)
		}
		if proj.FileBytes <= 0 || proj.FileBytes > full.FileBytes {
			t.Fatalf("segment %d: projected read consumed %d of %d file bytes", i, proj.FileBytes, full.FileBytes)
		}
	}

	// And the v2 projected read is genuinely cheaper than the whole file.
	full1, _ := ReadSegmentFile(dir + "/" + refs[1].File)
	proj1, _ := ReadSegmentFileColumns(dir+"/"+refs[1].File, []int{0})
	if proj1.FileBytes >= full1.FileBytes {
		t.Fatalf("v2 projected read consumed %d bytes, full read %d — no byte savings", proj1.FileBytes, full1.FileBytes)
	}
}

// TestSegmentHostilePageDirectory pins the decoder against a
// CRC-consistent v2 meta block whose page directory carries an
// overflowing offset/length pair: the decode must fail with an error,
// never panic — the bounds check cannot be allowed to wrap int64.
func TestSegmentHostilePageDirectory(t *testing.T) {
	tab := rowsTable(0, 10)
	for _, hostile := range []struct {
		name string
		off  uint64
		len  uint32
	}{
		{"overflow", 0x7FFFFFFFFFFFFFFF, 16},
		{"pastEOF", 1 << 20, 64},
		{"negative", 0xFFFFFFFFFFFFFFFF, 8},
	} {
		// Rebuild a v2 segment by hand with one poisoned directory entry,
		// re-CRCing the meta so only the bounds check can reject it.
		var pre wire.Encoder
		wire.PutSchema(&pre, tab.Schema())
		pre.U32(uint32(tab.NumCols()))
		var foot wire.Encoder
		foot.U64(SchemaHash(tab.Schema()))
		foot.I64(int64(tab.NumRows()))
		putZones(&foot, ComputeZones(tab))
		var meta wire.Encoder
		meta.Raw(pre.Bytes())
		for c := 0; c < tab.NumCols(); c++ {
			meta.U64(hostile.off)
			meta.U32(hostile.len)
		}
		meta.Raw(foot.Bytes())
		var e wire.Encoder
		e.Raw(segMagic)
		e.U8(segVersion)
		e.U32(uint32(meta.Len()))
		e.Raw(meta.Bytes())
		e.U32(crc32.ChecksumIEEE(meta.Bytes()))
		if _, err := DecodeSegment(e.Bytes()); err == nil {
			t.Fatalf("%s: hostile page directory decoded successfully", hostile.name)
		}
		// The file-based projected reader must reject it too (and must
		// not allocate the bogus length).
		dir := t.TempDir()
		path := dir + "/seg-hostile.nxs"
		if err := atomicWriteFile(path, e.Bytes()); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSegmentFileColumns(path, []int{0}); err == nil {
			t.Fatalf("%s: hostile page directory read successfully from file", hostile.name)
		}
	}
}

// TestRLEPageRowCap pins the anti-amplification cap: an RLE page whose
// header claims more rows than maxRLERows must be rejected before any
// materialization — a ~60-byte hostile file must not demand gigabytes.
func TestRLEPageRowCap(t *testing.T) {
	// Handcraft the page: one run claiming 2^32-1 rows of int64 zero.
	var payload wire.Encoder
	payload.U32(1)          // one run
	payload.U32(0xFFFFFFFF) // covering ~4.3e9 rows
	payload.Bool(true)
	payload.I64(0)
	var e wire.Encoder
	e.U8(pageVersion)
	e.U8(PageEncRLE)
	e.U32(0xFFFFFFFF) // header row count
	e.U32(uint32(payload.Len()))
	e.Raw(payload.Bytes())
	e.U32(crc32.ChecksumIEEE(e.Bytes()))
	if _, err := decodePage(e.Bytes(), value.KindInt64, pageCtx{}); err == nil {
		t.Fatal("hostile RLE row count decoded successfully")
	}
	// The writer never chooses RLE above the cap either (synthetic check
	// against the chooser's guard, not a real 2^27-row column).
	if maxRLERows >= 1<<31 {
		t.Fatal("maxRLERows implausibly large")
	}
}

// TestSegmentV1Roundtrip keeps the legacy encoder/decoder pair honest —
// it is what the mixed-version guarantee rests on.
func TestSegmentV1Roundtrip(t *testing.T) {
	for _, tab := range []*table.Table{rowsTable(0, 100), rowsTable(0, 0), nullableTable()} {
		data := EncodeSegmentV1(tab)
		seg, err := DecodeSegment(data)
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualRows(tab, seg.Table) {
			t.Fatal("v1 segment rows differ after roundtrip")
		}
		for _, off := range []int{len(segMagic) + 6, len(data) / 2, len(data) - 3} {
			if off >= len(data) {
				continue
			}
			bad := append([]byte(nil), data...)
			bad[off] ^= 0x40
			if _, err := DecodeSegment(bad); err == nil {
				t.Fatalf("corrupt v1 byte at %d decoded successfully", off)
			}
		}
	}
}
