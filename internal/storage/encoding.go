package storage

import (
	"fmt"
	"hash/crc32"

	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// Column page encodings. A v2 segment stores every column as one page
// with a small versioned header, so the writer can pick a different
// physical encoding per column while readers of any vintage either
// decode the page or reject it loudly:
//
//	u8 pageVersion | u8 encoding | u32 rows | u32 payloadLen | payload | u32 crc32(header|payload)
//
// The CRC covers the header and the payload, so a projected read that
// touches only some pages still verifies every byte it consumed.
// pageVersion is bumped when a payload layout changes incompatibly;
// decoders reject versions they do not know rather than misparse.
//
// Three encodings exist today, chosen per column at write time by
// choosePageEncoding:
//
//   - PageEncPlain: validity bitmap + raw values, the v1 layout carried
//     over. Always decodable, always the fallback.
//   - PageEncDict: validity bitmap + value dictionary + one u32 code per
//     row. Pays off when a column holds few distinct values (regions,
//     categories, enum-ish ints): an 8-byte value becomes a 4-byte code
//     and each distinct string is stored once.
//   - PageEncRLE: (length, value) runs. Pays off when equal values sit
//     next to each other — exactly what compaction's clustering sort
//     produces.

// pageVersion is the current column-page header version. Readers reject
// pages with a newer version instead of misparsing them.
const pageVersion = 1

// Page encodings (the `encoding` byte of a column-page header).
const (
	PageEncPlain      = 0 // validity bitmap + raw values (v1 layout)
	PageEncDict       = 1 // dictionary + u32 codes per row
	PageEncRLE        = 2 // run-length (length, validity, value) runs
	PageEncDictShared = 3 // u32 codes into the dataset's shared dictionary (v3 segments only)
)

// pageHeaderLen is the fixed prefix of a column page before the payload:
// version byte, encoding byte, u32 row count, u32 payload length.
const pageHeaderLen = 1 + 1 + 4 + 4

// dictMaxEntries caps dictionary sizes; a column with more distinct
// values than this is never dictionary-encoded (the scan that counts
// distincts also stops here).
const dictMaxEntries = 1 << 16

// maxRLERows caps the rows one RLE page may claim. RLE is the only
// encoding whose decoded size is not bounded by its payload size (one
// 9-byte run legitimately covers billions of rows), so without a cap a
// ~60-byte hostile file could demand a multi-gigabyte materialization.
// The writer respects the cap too — choosePageEncoding never picks RLE
// above it — and 2^27 rows is far beyond any segment the flush/compact
// size thresholds produce.
const maxRLERows = 1 << 27

// minValueWidth is the smallest possible encoded size of one value of
// the kind — the bound the page decoders use to reject hostile row
// counts before allocating.
func minValueWidth(kind value.Kind) int64 {
	switch kind {
	case value.KindBool:
		return 1
	case value.KindString:
		return 4 // u32 length prefix of an empty string
	}
	return 8 // int64 / float64
}

// encodingName reports a page encoding for error messages and stats.
func encodingName(enc uint8) string {
	switch enc {
	case PageEncPlain:
		return "plain"
	case PageEncDict:
		return "dict"
	case PageEncRLE:
		return "rle"
	case PageEncDictShared:
		return "dict-shared"
	}
	return fmt.Sprintf("enc%d", enc)
}

// choosePageEncoding picks the physical encoding for one column: RLE
// when values cluster into long runs (average run length ≥ 4), a
// dictionary when few distinct values repeat often (≤ rows/4 distincts,
// capped at dictMaxEntries), plain otherwise. Tiny columns are always
// plain — the headers would outweigh the savings. The scan runs on the
// typed payload slices (no per-row value boxing): it sits on the flush
// hot path, right next to the WAL group commit.
func choosePageEncoding(col *table.Column) uint8 {
	rows := col.Len()
	if rows < 64 {
		return PageEncPlain
	}
	runs, distinct, overflow := columnShape(col)
	if runs*4 <= rows && rows <= maxRLERows {
		return PageEncRLE
	}
	if !overflow && col.Kind() != value.KindBool && distinct*4 <= rows {
		return PageEncDict
	}
	return PageEncPlain
}

// columnShape counts the column's value runs and (capped) distinct
// values with typed tight loops. NULL is one more distinct symbol and
// breaks runs like any other value change.
func columnShape(col *table.Column) (runs, distinct int, overflow bool) {
	rows := col.Len()
	valid := col.Validity()
	isNull := func(r int) bool { return valid != nil && !valid[r] }
	runs = 1
	sawNull := false
	switch col.Kind() {
	case value.KindBool:
		vals := col.Bools()
		seen := [2]bool{}
		for r := 0; r < rows; r++ {
			if isNull(r) {
				sawNull = true
			} else {
				seen[b2i(vals[r])] = true
			}
			if r > 0 && (isNull(r) != isNull(r-1) || (!isNull(r) && vals[r] != vals[r-1])) {
				runs++
			}
		}
		for _, s := range seen {
			if s {
				distinct++
			}
		}
	case value.KindInt64:
		vals := col.Ints()
		set := map[int64]struct{}{}
		for r := 0; r < rows; r++ {
			if isNull(r) {
				sawNull = true
			} else if !overflow {
				set[vals[r]] = struct{}{}
				overflow = len(set) > dictMaxEntries
			}
			if r > 0 && (isNull(r) != isNull(r-1) || (!isNull(r) && vals[r] != vals[r-1])) {
				runs++
			}
		}
		distinct = len(set)
	case value.KindFloat64:
		vals := col.Floats()
		set := map[float64]struct{}{}
		for r := 0; r < rows; r++ {
			if isNull(r) {
				sawNull = true
			} else if !overflow {
				set[vals[r]] = struct{}{}
				overflow = len(set) > dictMaxEntries
			}
			if r > 0 && (isNull(r) != isNull(r-1) || (!isNull(r) && vals[r] != vals[r-1])) {
				runs++
			}
		}
		distinct = len(set)
	case value.KindString:
		vals := col.Strs()
		set := map[string]struct{}{}
		for r := 0; r < rows; r++ {
			if isNull(r) {
				sawNull = true
			} else if !overflow {
				set[vals[r]] = struct{}{}
				overflow = len(set) > dictMaxEntries
			}
			if r > 0 && (isNull(r) != isNull(r-1) || (!isNull(r) && vals[r] != vals[r-1])) {
				runs++
			}
		}
		distinct = len(set)
	}
	if sawNull {
		distinct++
	}
	return runs, distinct, overflow
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// pageCtx carries the per-column context page decoding may need beyond
// the raw bytes: the column's name (error messages, dictionary lookup),
// the shared dictionary its PageEncDictShared codes resolve through (nil
// when the dataset has none — such pages then fail to decode), and the
// structural flag (verify-only: shared pages are bounds-checked but not
// materialized, so replication can verify a fetched segment before the
// manifest carrying its dictionary has been applied).
type pageCtx struct {
	col        string
	dict       *SharedDict
	structural bool
}

// encodePage frames one column as a page with the given encoding. A
// PageEncDictShared page needs the shared dictionary the codes index;
// every value of the column must already be present in it.
func encodePage(col *table.Column, enc uint8, dict *SharedDict) []byte {
	var payload wire.Encoder
	switch enc {
	case PageEncPlain:
		putPlainPayload(&payload, col)
	case PageEncDict:
		putDictPayload(&payload, col)
	case PageEncRLE:
		putRLEPayload(&payload, col)
	case PageEncDictShared:
		putDictSharedPayload(&payload, col, dict)
	default:
		panic(fmt.Sprintf("storage: encodePage with unknown encoding %d", enc))
	}
	var e wire.Encoder
	e.U8(pageVersion)
	e.U8(enc)
	e.U32(uint32(col.Len()))
	e.U32(uint32(payload.Len()))
	e.Raw(payload.Bytes())
	e.U32(crc32.ChecksumIEEE(e.Bytes()))
	return e.Bytes()
}

// parsePageHeader verifies a page's CRC and framing and returns its
// encoding, row count, and a decoder positioned at the payload. Every
// malformed input is an error, never a panic (FuzzSegment feeds this
// arbitrary bytes via segments).
func parsePageHeader(b []byte) (enc uint8, rows int, payload *wire.Decoder, err error) {
	if len(b) < pageHeaderLen+4 {
		return 0, 0, nil, fmt.Errorf("storage: column page too short (%d bytes)", len(b))
	}
	crcOff := len(b) - 4
	want := uint32(b[crcOff])<<24 | uint32(b[crcOff+1])<<16 | uint32(b[crcOff+2])<<8 | uint32(b[crcOff+3])
	if got := crc32.ChecksumIEEE(b[:crcOff]); got != want {
		return 0, 0, nil, fmt.Errorf("storage: column page crc mismatch (got %08x, want %08x)", got, want)
	}
	d := wire.NewDecoder(b[:crcOff])
	ver := d.U8()
	if ver == 0 || ver > pageVersion {
		return 0, 0, nil, fmt.Errorf("storage: unsupported column page version %d", ver)
	}
	enc = d.U8()
	rows = int(d.U32())
	payloadLen := int(d.U32())
	if d.Err() != nil || rows < 0 || payloadLen != d.Remaining() {
		return 0, 0, nil, fmt.Errorf("storage: column page header disagrees with page size")
	}
	return enc, rows, d, nil
}

// decodePage parses and verifies one column page of the given kind,
// materializing it as a plain column. The whole page (header through
// trailing CRC) must be the input. In structural mode a shared-dict page
// returns a nil column after its framing and code bounds are verified.
func decodePage(b []byte, kind value.Kind, ctx pageCtx) (*table.Column, error) {
	enc, rows, d, err := parsePageHeader(b)
	if err != nil {
		return nil, err
	}
	var col *table.Column
	switch enc {
	case PageEncPlain:
		col, err = getPlainPayload(d, kind, rows)
	case PageEncDict:
		var dict *table.Column
		var codes []uint32
		var valid []bool
		dict, codes, valid, err = getDictEncoded(d, kind, rows)
		if err == nil {
			col = materializeDict(dict, codes, valid)
		}
	case PageEncRLE:
		var lens []int
		var vals []value.Value
		lens, vals, err = getRLERuns(d, kind, rows)
		if err == nil {
			col, err = fillRuns(kind, lens, vals, rows)
		}
	case PageEncDictShared:
		var entries *table.Column
		var codes []uint32
		var valid []bool
		entries, codes, valid, err = getDictSharedEncoded(d, kind, rows, ctx)
		if err == nil && !ctx.structural {
			col = materializeDict(entries, codes, valid)
		}
	default:
		return nil, fmt.Errorf("storage: unknown column page encoding %d", enc)
	}
	if err != nil {
		return nil, err
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("storage: %s page: %w", encodingName(enc), err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("storage: %s page has %d trailing bytes", encodingName(enc), d.Remaining())
	}
	if col == nil {
		return nil, nil // structural shared-dict page: verified, not materialized
	}
	if col.Len() != rows {
		return nil, fmt.Errorf("storage: %s page decoded %d rows, header says %d", encodingName(enc), col.Len(), rows)
	}
	return col, nil
}

// ---------------------------------------------------------------------------
// Plain: bool hasNulls | [rows validity bools] | raw values.
// Byte-for-byte the per-column layout wire.PutTable uses (and therefore
// the layout inside v1 segment bodies).

func putPlainPayload(e *wire.Encoder, col *table.Column) {
	putValidity(e, col)
	switch col.Kind() {
	case value.KindBool:
		for _, v := range col.Bools() {
			e.Bool(v)
		}
	case value.KindInt64:
		for _, v := range col.Ints() {
			e.I64(v)
		}
	case value.KindFloat64:
		for _, v := range col.Floats() {
			e.F64(v)
		}
	case value.KindString:
		for _, v := range col.Strs() {
			e.Str(v)
		}
	}
}

func getPlainPayload(d *wire.Decoder, kind value.Kind, rows int) (*table.Column, error) {
	valid, err := getValidity(d, rows)
	if err != nil {
		return nil, err
	}
	// Bound the allocation against the remaining payload before trusting
	// the header's row count: a hostile count must fail the read, not
	// OOM it. Every kind costs at least minValueWidth bytes per row.
	if int64(rows)*minValueWidth(kind) > int64(d.Remaining()) {
		return nil, fmt.Errorf("storage: plain page claims %d rows in %d payload bytes", rows, d.Remaining())
	}
	var col *table.Column
	switch kind {
	case value.KindBool:
		vals := make([]bool, rows)
		for r := range vals {
			vals[r] = d.Bool()
		}
		col = table.BoolColumn(vals)
	case value.KindInt64:
		vals := make([]int64, rows)
		for r := range vals {
			vals[r] = d.I64()
		}
		col = table.IntColumn(vals)
	case value.KindFloat64:
		vals := make([]float64, rows)
		for r := range vals {
			vals[r] = d.F64()
		}
		col = table.FloatColumn(vals)
	case value.KindString:
		vals := make([]string, rows)
		for r := range vals {
			vals[r] = d.Str()
		}
		col = table.StringColumn(vals)
	default:
		return nil, fmt.Errorf("storage: plain page of kind %v", kind)
	}
	if valid != nil {
		col = col.WithValidity(valid)
	}
	return col, nil
}

// ---------------------------------------------------------------------------
// Dict: bool hasNulls | [validity] | u32 dictLen | dict values | rows × u32 code.
// Codes of NULL rows are written as 0 and ignored on decode.

func putDictPayload(e *wire.Encoder, col *table.Column) {
	putValidity(e, col)
	rows := col.Len()
	codes := make([]uint32, rows)
	switch col.Kind() {
	case value.KindInt64:
		dict := make(map[int64]uint32)
		var order []int64
		vals := col.Ints()
		for r := 0; r < rows; r++ {
			if col.IsNull(r) {
				continue
			}
			c, ok := dict[vals[r]]
			if !ok {
				c = uint32(len(order))
				dict[vals[r]] = c
				order = append(order, vals[r])
			}
			codes[r] = c
		}
		e.U32(uint32(len(order)))
		for _, v := range order {
			e.I64(v)
		}
	case value.KindFloat64:
		dict := make(map[float64]uint32)
		var order []float64
		vals := col.Floats()
		for r := 0; r < rows; r++ {
			if col.IsNull(r) {
				continue
			}
			c, ok := dict[vals[r]]
			if !ok {
				c = uint32(len(order))
				dict[vals[r]] = c
				order = append(order, vals[r])
			}
			codes[r] = c
		}
		e.U32(uint32(len(order)))
		for _, v := range order {
			e.F64(v)
		}
	case value.KindString:
		dict := make(map[string]uint32)
		var order []string
		vals := col.Strs()
		for r := 0; r < rows; r++ {
			if col.IsNull(r) {
				continue
			}
			c, ok := dict[vals[r]]
			if !ok {
				c = uint32(len(order))
				dict[vals[r]] = c
				order = append(order, vals[r])
			}
			codes[r] = c
		}
		e.U32(uint32(len(order)))
		for _, v := range order {
			e.Str(v)
		}
	default:
		// choosePageEncoding never picks dict for bools; encode the raw
		// values as a degenerate one-entry-per-row dictionary is pointless,
		// so this is a programming error.
		panic(fmt.Sprintf("storage: dict page of kind %v", col.Kind()))
	}
	for _, c := range codes {
		e.U32(c)
	}
}

// getDictEncoded parses a dict payload into its encoded parts: the
// dictionary entries (a column indexed by code), the per-row codes, and
// the validity. Codes of non-null rows are bounds-checked here, so every
// consumer — materializing or not — sees only in-range codes.
func getDictEncoded(d *wire.Decoder, kind value.Kind, rows int) (dict *table.Column, codes []uint32, valid []bool, err error) {
	valid, err = getValidity(d, rows)
	if err != nil {
		return nil, nil, nil, err
	}
	n := int(d.U32())
	if d.Err() != nil || n < 0 || n > d.Remaining() {
		return nil, nil, nil, fmt.Errorf("storage: dict page dictionary length %d exceeds page", n)
	}
	// Codes are 4 bytes per row; the dictionary itself costs at least
	// minValueWidth per entry. Bound both before allocating.
	if int64(n)*minValueWidth(kind)+int64(rows)*4 > int64(d.Remaining()) {
		return nil, nil, nil, fmt.Errorf("storage: dict page claims %d rows over %d entries in %d payload bytes", rows, n, d.Remaining())
	}
	switch kind {
	case value.KindInt64:
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = d.I64()
		}
		dict = table.IntColumn(vals)
	case value.KindFloat64:
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = d.F64()
		}
		dict = table.FloatColumn(vals)
	case value.KindString:
		vals := make([]string, n)
		for i := range vals {
			vals[i] = d.Str()
		}
		dict = table.StringColumn(vals)
	default:
		return nil, nil, nil, fmt.Errorf("storage: dict page of kind %v", kind)
	}
	codes = make([]uint32, rows)
	for r := 0; r < rows; r++ {
		c := d.U32()
		codes[r] = c
		if valid != nil && !valid[r] {
			continue // NULL rows carry a placeholder code; never dereferenced
		}
		if int(c) >= n {
			return nil, nil, nil, fmt.Errorf("storage: dict code %d out of range %d", c, n)
		}
	}
	return dict, codes, valid, nil
}

// materializeDict gathers dictionary entries into a plain column (codes
// of non-null rows are already bounds-checked by the parser).
func materializeDict(dict *table.Column, codes []uint32, valid []bool) *table.Column {
	rows := len(codes)
	isNull := func(r int) bool { return valid != nil && !valid[r] }
	var col *table.Column
	switch dict.Kind() {
	case value.KindInt64:
		dv := dict.Ints()
		vals := make([]int64, rows)
		for r, c := range codes {
			if !isNull(r) {
				vals[r] = dv[c]
			}
		}
		col = table.IntColumn(vals)
	case value.KindFloat64:
		dv := dict.Floats()
		vals := make([]float64, rows)
		for r, c := range codes {
			if !isNull(r) {
				vals[r] = dv[c]
			}
		}
		col = table.FloatColumn(vals)
	default:
		dv := dict.Strs()
		vals := make([]string, rows)
		for r, c := range codes {
			if !isNull(r) {
				vals[r] = dv[c]
			}
		}
		col = table.StringColumn(vals)
	}
	if valid != nil {
		col = col.WithValidity(valid)
	}
	return col
}

// ---------------------------------------------------------------------------
// Shared dict: bool hasNulls | [validity] | u64 epoch | u32 usedLen |
// rows × u32 code. The dictionary itself lives in the manifest
// (SharedDict); the page records the epoch its codes were assigned under
// and the dictionary prefix length it was written against, so the page
// stays decodable while the dictionary grows and is refused loudly after
// a rebuild reassigns codes.

func putDictSharedPayload(e *wire.Encoder, col *table.Column, dict *SharedDict) {
	if col.Kind() != value.KindString {
		panic(fmt.Sprintf("storage: shared-dict page of kind %v", col.Kind()))
	}
	putValidity(e, col)
	e.U64(dict.Epoch)
	e.U32(uint32(len(dict.Vals)))
	vals := col.Strs()
	for r := 0; r < col.Len(); r++ {
		if col.IsNull(r) {
			e.U32(0)
			continue
		}
		c, ok := dict.Code(vals[r])
		if !ok {
			// The writer checks coverage (or grows the dictionary) before
			// choosing this encoding; a miss here is a programming error.
			panic(fmt.Sprintf("storage: value missing from shared dictionary %q", dict.Col))
		}
		e.U32(c)
	}
}

// getDictSharedEncoded parses a shared-dict payload: per-row codes plus
// the dictionary prefix they index (resolved through ctx.dict). In
// structural mode no dictionary is needed — framing and code bounds are
// still fully verified, entries comes back nil.
func getDictSharedEncoded(d *wire.Decoder, kind value.Kind, rows int, ctx pageCtx) (entries *table.Column, codes []uint32, valid []bool, err error) {
	if kind != value.KindString {
		return nil, nil, nil, fmt.Errorf("storage: shared-dict page of kind %v", kind)
	}
	valid, err = getValidity(d, rows)
	if err != nil {
		return nil, nil, nil, err
	}
	epoch := d.U64()
	used := int(d.U32())
	if d.Err() != nil || used < 0 {
		return nil, nil, nil, fmt.Errorf("storage: shared-dict page header truncated")
	}
	if int64(rows)*4 > int64(d.Remaining()) {
		return nil, nil, nil, fmt.Errorf("storage: shared-dict page claims %d rows in %d payload bytes", rows, d.Remaining())
	}
	if !ctx.structural {
		if ctx.dict == nil {
			return nil, nil, nil, fmt.Errorf("storage: column %q needs a shared dictionary the catalog does not carry", ctx.col)
		}
		if epoch != ctx.dict.Epoch {
			return nil, nil, nil, staleDictErr(ctx.col, epoch, ctx.dict.Epoch)
		}
		if used > len(ctx.dict.Vals) {
			return nil, nil, nil, fmt.Errorf("storage: column %q codes index a %d-entry prefix, dictionary has %d", ctx.col, used, len(ctx.dict.Vals))
		}
	}
	codes = make([]uint32, rows)
	for r := 0; r < rows; r++ {
		c := d.U32()
		codes[r] = c
		if valid != nil && !valid[r] {
			continue
		}
		if int(c) >= used {
			return nil, nil, nil, fmt.Errorf("storage: shared-dict code %d out of range %d", c, used)
		}
	}
	if !ctx.structural {
		entries = table.StringColumn(ctx.dict.Vals[:used])
	}
	return entries, codes, valid, nil
}

// ---------------------------------------------------------------------------
// RLE: u32 nRuns | runs × { u32 length | bool valid | value if valid }.
// NULL runs carry no value payload.

// putRLEPayload writes the column as runs, finding run boundaries with
// typed loops over the raw payload slices — like columnShape, it sits
// on the flush hot path and must not box a value per row.
func putRLEPayload(e *wire.Encoder, col *table.Column) {
	rows := col.Len()
	valid := col.Validity()
	isNull := func(r int) bool { return valid != nil && !valid[r] }
	sameAsPrev := func(r int) bool {
		if isNull(r) != isNull(r-1) {
			return false
		}
		if isNull(r) {
			return true
		}
		switch col.Kind() {
		case value.KindBool:
			return col.Bools()[r] == col.Bools()[r-1]
		case value.KindInt64:
			return col.Ints()[r] == col.Ints()[r-1]
		case value.KindFloat64:
			return col.Floats()[r] == col.Floats()[r-1]
		case value.KindString:
			return col.Strs()[r] == col.Strs()[r-1]
		}
		return false
	}
	putRun := func(start, length int) {
		e.U32(uint32(length))
		if isNull(start) {
			e.Bool(false)
			return
		}
		e.Bool(true)
		switch col.Kind() {
		case value.KindBool:
			e.Bool(col.Bools()[start])
		case value.KindInt64:
			e.I64(col.Ints()[start])
		case value.KindFloat64:
			e.F64(col.Floats()[start])
		case value.KindString:
			e.Str(col.Strs()[start])
		}
	}
	nRuns := 0
	for r := 1; r < rows; r++ {
		if !sameAsPrev(r) {
			nRuns++
		}
	}
	if rows > 0 {
		nRuns++
	}
	e.U32(uint32(nRuns))
	start := 0
	for r := 1; r < rows; r++ {
		if !sameAsPrev(r) {
			putRun(start, r-start)
			start = r
		}
	}
	if rows > 0 {
		putRun(start, rows-start)
	}
}

// getRLERuns parses an RLE payload into validated run lengths and run
// values (value.Null for null runs). Lengths are positive and sum to
// exactly rows, so consumers can fold whole runs without re-checking.
func getRLERuns(d *wire.Decoder, kind value.Kind, rows int) (lens []int, vals []value.Value, err error) {
	nRuns := int(d.U32())
	if d.Err() != nil || nRuns < 0 || nRuns > d.Remaining() {
		return nil, nil, fmt.Errorf("storage: rle page run count %d exceeds page", nRuns)
	}
	// A run legitimately covers many rows in few bytes, so the payload
	// cannot bound the row count the way plain/dict payloads do; the
	// absolute cap (which the writer honors) rejects hostile claims
	// before any materialization.
	if rows > maxRLERows {
		return nil, nil, fmt.Errorf("storage: rle page claims %d rows (cap %d)", rows, maxRLERows)
	}
	lens = make([]int, 0, nRuns)
	vals = make([]value.Value, 0, nRuns)
	total := 0
	for i := 0; i < nRuns; i++ {
		length := int(d.U32())
		rvalid := d.Bool()
		if d.Err() != nil {
			return nil, nil, d.Err()
		}
		if length <= 0 || total+length > rows {
			return nil, nil, fmt.Errorf("storage: rle run %d of length %d overflows %d rows", i, length, rows)
		}
		v := value.Null
		if rvalid {
			switch kind {
			case value.KindBool:
				v = value.NewBool(d.Bool())
			case value.KindInt64:
				v = value.NewInt(d.I64())
			case value.KindFloat64:
				v = value.NewFloat(d.F64())
			case value.KindString:
				v = value.NewString(d.Str())
			default:
				return nil, nil, fmt.Errorf("storage: rle page of kind %v", kind)
			}
			if d.Err() != nil {
				return nil, nil, d.Err()
			}
		}
		lens = append(lens, length)
		vals = append(vals, v)
		total += length
	}
	if total != rows {
		return nil, nil, fmt.Errorf("storage: rle runs cover %d of %d rows", total, rows)
	}
	return lens, vals, nil
}

// fillRuns expands validated runs into a plain column with one typed
// bulk fill per run — this path handles whole compacted segments and
// must not box a value per row.
func fillRuns(kind value.Kind, lens []int, vals []value.Value, rows int) (*table.Column, error) {
	var valid []bool
	for _, v := range vals {
		if v.IsNull() {
			valid = make([]bool, rows)
			for r := range valid {
				valid[r] = true
			}
			break
		}
	}
	if valid != nil {
		at := 0
		for i, n := range lens {
			if vals[i].IsNull() {
				for j := 0; j < n; j++ {
					valid[at+j] = false
				}
			}
			at += n
		}
	}
	var col *table.Column
	switch kind {
	case value.KindBool:
		out := make([]bool, rows)
		at := 0
		for i, n := range lens {
			if !vals[i].IsNull() {
				v := vals[i].Bool()
				for j := 0; j < n; j++ {
					out[at+j] = v
				}
			}
			at += n
		}
		col = table.BoolColumn(out)
	case value.KindInt64:
		out := make([]int64, rows)
		at := 0
		for i, n := range lens {
			if !vals[i].IsNull() {
				v := vals[i].Int()
				for j := 0; j < n; j++ {
					out[at+j] = v
				}
			}
			at += n
		}
		col = table.IntColumn(out)
	case value.KindFloat64:
		out := make([]float64, rows)
		at := 0
		for i, n := range lens {
			if !vals[i].IsNull() {
				v := vals[i].Float()
				for j := 0; j < n; j++ {
					out[at+j] = v
				}
			}
			at += n
		}
		col = table.FloatColumn(out)
	case value.KindString:
		out := make([]string, rows)
		at := 0
		for i, n := range lens {
			if !vals[i].IsNull() {
				v := vals[i].Str()
				for j := 0; j < n; j++ {
					out[at+j] = v
				}
			}
			at += n
		}
		col = table.StringColumn(out)
	default:
		return nil, fmt.Errorf("storage: rle page of kind %v", kind)
	}
	if valid != nil {
		col = col.WithValidity(valid)
	}
	return col, nil
}

// ---------------------------------------------------------------------------
// Shared validity framing: bool hasNulls | [rows validity bools].

func putValidity(e *wire.Encoder, col *table.Column) {
	hasNulls := col.HasNulls()
	e.Bool(hasNulls)
	if hasNulls {
		for r := 0; r < col.Len(); r++ {
			e.Bool(!col.IsNull(r))
		}
	}
}

func getValidity(d *wire.Decoder, rows int) ([]bool, error) {
	hasNulls := d.Bool()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if !hasNulls {
		return nil, nil
	}
	if rows > d.Remaining() {
		return nil, fmt.Errorf("storage: validity bitmap of %d rows exceeds page", rows)
	}
	valid := make([]bool, rows)
	for r := range valid {
		valid[r] = d.Bool()
	}
	return valid, d.Err()
}
