package storage

import (
	"fmt"
	"hash/crc32"

	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// Column page encodings. A v2 segment stores every column as one page
// with a small versioned header, so the writer can pick a different
// physical encoding per column while readers of any vintage either
// decode the page or reject it loudly:
//
//	u8 pageVersion | u8 encoding | u32 rows | u32 payloadLen | payload | u32 crc32(header|payload)
//
// The CRC covers the header and the payload, so a projected read that
// touches only some pages still verifies every byte it consumed.
// pageVersion is bumped when a payload layout changes incompatibly;
// decoders reject versions they do not know rather than misparse.
//
// Three encodings exist today, chosen per column at write time by
// choosePageEncoding:
//
//   - PageEncPlain: validity bitmap + raw values, the v1 layout carried
//     over. Always decodable, always the fallback.
//   - PageEncDict: validity bitmap + value dictionary + one u32 code per
//     row. Pays off when a column holds few distinct values (regions,
//     categories, enum-ish ints): an 8-byte value becomes a 4-byte code
//     and each distinct string is stored once.
//   - PageEncRLE: (length, value) runs. Pays off when equal values sit
//     next to each other — exactly what compaction's clustering sort
//     produces.

// pageVersion is the current column-page header version. Readers reject
// pages with a newer version instead of misparsing them.
const pageVersion = 1

// Page encodings (the `encoding` byte of a column-page header).
const (
	PageEncPlain = 0 // validity bitmap + raw values (v1 layout)
	PageEncDict  = 1 // dictionary + u32 codes per row
	PageEncRLE   = 2 // run-length (length, validity, value) runs
)

// pageHeaderLen is the fixed prefix of a column page before the payload:
// version byte, encoding byte, u32 row count, u32 payload length.
const pageHeaderLen = 1 + 1 + 4 + 4

// dictMaxEntries caps dictionary sizes; a column with more distinct
// values than this is never dictionary-encoded (the scan that counts
// distincts also stops here).
const dictMaxEntries = 1 << 16

// maxRLERows caps the rows one RLE page may claim. RLE is the only
// encoding whose decoded size is not bounded by its payload size (one
// 9-byte run legitimately covers billions of rows), so without a cap a
// ~60-byte hostile file could demand a multi-gigabyte materialization.
// The writer respects the cap too — choosePageEncoding never picks RLE
// above it — and 2^27 rows is far beyond any segment the flush/compact
// size thresholds produce.
const maxRLERows = 1 << 27

// minValueWidth is the smallest possible encoded size of one value of
// the kind — the bound the page decoders use to reject hostile row
// counts before allocating.
func minValueWidth(kind value.Kind) int64 {
	switch kind {
	case value.KindBool:
		return 1
	case value.KindString:
		return 4 // u32 length prefix of an empty string
	}
	return 8 // int64 / float64
}

// encodingName reports a page encoding for error messages and stats.
func encodingName(enc uint8) string {
	switch enc {
	case PageEncPlain:
		return "plain"
	case PageEncDict:
		return "dict"
	case PageEncRLE:
		return "rle"
	}
	return fmt.Sprintf("enc%d", enc)
}

// choosePageEncoding picks the physical encoding for one column: RLE
// when values cluster into long runs (average run length ≥ 4), a
// dictionary when few distinct values repeat often (≤ rows/4 distincts,
// capped at dictMaxEntries), plain otherwise. Tiny columns are always
// plain — the headers would outweigh the savings. The scan runs on the
// typed payload slices (no per-row value boxing): it sits on the flush
// hot path, right next to the WAL group commit.
func choosePageEncoding(col *table.Column) uint8 {
	rows := col.Len()
	if rows < 64 {
		return PageEncPlain
	}
	runs, distinct, overflow := columnShape(col)
	if runs*4 <= rows && rows <= maxRLERows {
		return PageEncRLE
	}
	if !overflow && col.Kind() != value.KindBool && distinct*4 <= rows {
		return PageEncDict
	}
	return PageEncPlain
}

// columnShape counts the column's value runs and (capped) distinct
// values with typed tight loops. NULL is one more distinct symbol and
// breaks runs like any other value change.
func columnShape(col *table.Column) (runs, distinct int, overflow bool) {
	rows := col.Len()
	valid := col.Validity()
	isNull := func(r int) bool { return valid != nil && !valid[r] }
	runs = 1
	sawNull := false
	switch col.Kind() {
	case value.KindBool:
		vals := col.Bools()
		seen := [2]bool{}
		for r := 0; r < rows; r++ {
			if isNull(r) {
				sawNull = true
			} else {
				seen[b2i(vals[r])] = true
			}
			if r > 0 && (isNull(r) != isNull(r-1) || (!isNull(r) && vals[r] != vals[r-1])) {
				runs++
			}
		}
		for _, s := range seen {
			if s {
				distinct++
			}
		}
	case value.KindInt64:
		vals := col.Ints()
		set := map[int64]struct{}{}
		for r := 0; r < rows; r++ {
			if isNull(r) {
				sawNull = true
			} else if !overflow {
				set[vals[r]] = struct{}{}
				overflow = len(set) > dictMaxEntries
			}
			if r > 0 && (isNull(r) != isNull(r-1) || (!isNull(r) && vals[r] != vals[r-1])) {
				runs++
			}
		}
		distinct = len(set)
	case value.KindFloat64:
		vals := col.Floats()
		set := map[float64]struct{}{}
		for r := 0; r < rows; r++ {
			if isNull(r) {
				sawNull = true
			} else if !overflow {
				set[vals[r]] = struct{}{}
				overflow = len(set) > dictMaxEntries
			}
			if r > 0 && (isNull(r) != isNull(r-1) || (!isNull(r) && vals[r] != vals[r-1])) {
				runs++
			}
		}
		distinct = len(set)
	case value.KindString:
		vals := col.Strs()
		set := map[string]struct{}{}
		for r := 0; r < rows; r++ {
			if isNull(r) {
				sawNull = true
			} else if !overflow {
				set[vals[r]] = struct{}{}
				overflow = len(set) > dictMaxEntries
			}
			if r > 0 && (isNull(r) != isNull(r-1) || (!isNull(r) && vals[r] != vals[r-1])) {
				runs++
			}
		}
		distinct = len(set)
	}
	if sawNull {
		distinct++
	}
	return runs, distinct, overflow
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// encodePage frames one column as a page with the given encoding.
func encodePage(col *table.Column, enc uint8) []byte {
	var payload wire.Encoder
	switch enc {
	case PageEncPlain:
		putPlainPayload(&payload, col)
	case PageEncDict:
		putDictPayload(&payload, col)
	case PageEncRLE:
		putRLEPayload(&payload, col)
	default:
		panic(fmt.Sprintf("storage: encodePage with unknown encoding %d", enc))
	}
	var e wire.Encoder
	e.U8(pageVersion)
	e.U8(enc)
	e.U32(uint32(col.Len()))
	e.U32(uint32(payload.Len()))
	e.Raw(payload.Bytes())
	e.U32(crc32.ChecksumIEEE(e.Bytes()))
	return e.Bytes()
}

// decodePage parses and verifies one column page of the given kind. The
// whole page (header through trailing CRC) must be the input; every
// malformed input is an error, never a panic (FuzzSegment feeds this
// arbitrary bytes via segments).
func decodePage(b []byte, kind value.Kind) (*table.Column, error) {
	if len(b) < pageHeaderLen+4 {
		return nil, fmt.Errorf("storage: column page too short (%d bytes)", len(b))
	}
	crcOff := len(b) - 4
	want := uint32(b[crcOff])<<24 | uint32(b[crcOff+1])<<16 | uint32(b[crcOff+2])<<8 | uint32(b[crcOff+3])
	if got := crc32.ChecksumIEEE(b[:crcOff]); got != want {
		return nil, fmt.Errorf("storage: column page crc mismatch (got %08x, want %08x)", got, want)
	}
	d := wire.NewDecoder(b[:crcOff])
	ver := d.U8()
	if ver == 0 || ver > pageVersion {
		return nil, fmt.Errorf("storage: unsupported column page version %d", ver)
	}
	enc := d.U8()
	rows := int(d.U32())
	payloadLen := int(d.U32())
	if d.Err() != nil || rows < 0 || payloadLen != d.Remaining() {
		return nil, fmt.Errorf("storage: column page header disagrees with page size")
	}
	var col *table.Column
	var err error
	switch enc {
	case PageEncPlain:
		col, err = getPlainPayload(d, kind, rows)
	case PageEncDict:
		col, err = getDictPayload(d, kind, rows)
	case PageEncRLE:
		col, err = getRLEPayload(d, kind, rows)
	default:
		return nil, fmt.Errorf("storage: unknown column page encoding %d", enc)
	}
	if err != nil {
		return nil, err
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("storage: %s page: %w", encodingName(enc), err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("storage: %s page has %d trailing bytes", encodingName(enc), d.Remaining())
	}
	if col.Len() != rows {
		return nil, fmt.Errorf("storage: %s page decoded %d rows, header says %d", encodingName(enc), col.Len(), rows)
	}
	return col, nil
}

// ---------------------------------------------------------------------------
// Plain: bool hasNulls | [rows validity bools] | raw values.
// Byte-for-byte the per-column layout wire.PutTable uses (and therefore
// the layout inside v1 segment bodies).

func putPlainPayload(e *wire.Encoder, col *table.Column) {
	putValidity(e, col)
	switch col.Kind() {
	case value.KindBool:
		for _, v := range col.Bools() {
			e.Bool(v)
		}
	case value.KindInt64:
		for _, v := range col.Ints() {
			e.I64(v)
		}
	case value.KindFloat64:
		for _, v := range col.Floats() {
			e.F64(v)
		}
	case value.KindString:
		for _, v := range col.Strs() {
			e.Str(v)
		}
	}
}

func getPlainPayload(d *wire.Decoder, kind value.Kind, rows int) (*table.Column, error) {
	valid, err := getValidity(d, rows)
	if err != nil {
		return nil, err
	}
	// Bound the allocation against the remaining payload before trusting
	// the header's row count: a hostile count must fail the read, not
	// OOM it. Every kind costs at least minValueWidth bytes per row.
	if int64(rows)*minValueWidth(kind) > int64(d.Remaining()) {
		return nil, fmt.Errorf("storage: plain page claims %d rows in %d payload bytes", rows, d.Remaining())
	}
	var col *table.Column
	switch kind {
	case value.KindBool:
		vals := make([]bool, rows)
		for r := range vals {
			vals[r] = d.Bool()
		}
		col = table.BoolColumn(vals)
	case value.KindInt64:
		vals := make([]int64, rows)
		for r := range vals {
			vals[r] = d.I64()
		}
		col = table.IntColumn(vals)
	case value.KindFloat64:
		vals := make([]float64, rows)
		for r := range vals {
			vals[r] = d.F64()
		}
		col = table.FloatColumn(vals)
	case value.KindString:
		vals := make([]string, rows)
		for r := range vals {
			vals[r] = d.Str()
		}
		col = table.StringColumn(vals)
	default:
		return nil, fmt.Errorf("storage: plain page of kind %v", kind)
	}
	if valid != nil {
		col = col.WithValidity(valid)
	}
	return col, nil
}

// ---------------------------------------------------------------------------
// Dict: bool hasNulls | [validity] | u32 dictLen | dict values | rows × u32 code.
// Codes of NULL rows are written as 0 and ignored on decode.

func putDictPayload(e *wire.Encoder, col *table.Column) {
	putValidity(e, col)
	rows := col.Len()
	codes := make([]uint32, rows)
	switch col.Kind() {
	case value.KindInt64:
		dict := make(map[int64]uint32)
		var order []int64
		vals := col.Ints()
		for r := 0; r < rows; r++ {
			if col.IsNull(r) {
				continue
			}
			c, ok := dict[vals[r]]
			if !ok {
				c = uint32(len(order))
				dict[vals[r]] = c
				order = append(order, vals[r])
			}
			codes[r] = c
		}
		e.U32(uint32(len(order)))
		for _, v := range order {
			e.I64(v)
		}
	case value.KindFloat64:
		dict := make(map[float64]uint32)
		var order []float64
		vals := col.Floats()
		for r := 0; r < rows; r++ {
			if col.IsNull(r) {
				continue
			}
			c, ok := dict[vals[r]]
			if !ok {
				c = uint32(len(order))
				dict[vals[r]] = c
				order = append(order, vals[r])
			}
			codes[r] = c
		}
		e.U32(uint32(len(order)))
		for _, v := range order {
			e.F64(v)
		}
	case value.KindString:
		dict := make(map[string]uint32)
		var order []string
		vals := col.Strs()
		for r := 0; r < rows; r++ {
			if col.IsNull(r) {
				continue
			}
			c, ok := dict[vals[r]]
			if !ok {
				c = uint32(len(order))
				dict[vals[r]] = c
				order = append(order, vals[r])
			}
			codes[r] = c
		}
		e.U32(uint32(len(order)))
		for _, v := range order {
			e.Str(v)
		}
	default:
		// choosePageEncoding never picks dict for bools; encode the raw
		// values as a degenerate one-entry-per-row dictionary is pointless,
		// so this is a programming error.
		panic(fmt.Sprintf("storage: dict page of kind %v", col.Kind()))
	}
	for _, c := range codes {
		e.U32(c)
	}
}

func getDictPayload(d *wire.Decoder, kind value.Kind, rows int) (*table.Column, error) {
	valid, err := getValidity(d, rows)
	if err != nil {
		return nil, err
	}
	n := int(d.U32())
	if d.Err() != nil || n < 0 || n > d.Remaining() {
		return nil, fmt.Errorf("storage: dict page dictionary length %d exceeds page", n)
	}
	// Codes are 4 bytes per row; the dictionary itself costs at least
	// minValueWidth per entry. Bound both before allocating.
	if int64(n)*minValueWidth(kind)+int64(rows)*4 > int64(d.Remaining()) {
		return nil, fmt.Errorf("storage: dict page claims %d rows over %d entries in %d payload bytes", rows, n, d.Remaining())
	}
	isNull := func(r int) bool { return valid != nil && !valid[r] }
	var col *table.Column
	switch kind {
	case value.KindInt64:
		dict := make([]int64, n)
		for i := range dict {
			dict[i] = d.I64()
		}
		vals := make([]int64, rows)
		for r := 0; r < rows; r++ {
			c := int(d.U32())
			if isNull(r) {
				continue
			}
			if c < 0 || c >= n {
				return nil, fmt.Errorf("storage: dict code %d out of range %d", c, n)
			}
			vals[r] = dict[c]
		}
		col = table.IntColumn(vals)
	case value.KindFloat64:
		dict := make([]float64, n)
		for i := range dict {
			dict[i] = d.F64()
		}
		vals := make([]float64, rows)
		for r := 0; r < rows; r++ {
			c := int(d.U32())
			if isNull(r) {
				continue
			}
			if c < 0 || c >= n {
				return nil, fmt.Errorf("storage: dict code %d out of range %d", c, n)
			}
			vals[r] = dict[c]
		}
		col = table.FloatColumn(vals)
	case value.KindString:
		dict := make([]string, n)
		for i := range dict {
			dict[i] = d.Str()
		}
		vals := make([]string, rows)
		for r := 0; r < rows; r++ {
			c := int(d.U32())
			if isNull(r) {
				continue
			}
			if c < 0 || c >= n {
				return nil, fmt.Errorf("storage: dict code %d out of range %d", c, n)
			}
			vals[r] = dict[c]
		}
		col = table.StringColumn(vals)
	default:
		return nil, fmt.Errorf("storage: dict page of kind %v", kind)
	}
	if valid != nil {
		col = col.WithValidity(valid)
	}
	return col, nil
}

// ---------------------------------------------------------------------------
// RLE: u32 nRuns | runs × { u32 length | bool valid | value if valid }.
// NULL runs carry no value payload.

// putRLEPayload writes the column as runs, finding run boundaries with
// typed loops over the raw payload slices — like columnShape, it sits
// on the flush hot path and must not box a value per row.
func putRLEPayload(e *wire.Encoder, col *table.Column) {
	rows := col.Len()
	valid := col.Validity()
	isNull := func(r int) bool { return valid != nil && !valid[r] }
	sameAsPrev := func(r int) bool {
		if isNull(r) != isNull(r-1) {
			return false
		}
		if isNull(r) {
			return true
		}
		switch col.Kind() {
		case value.KindBool:
			return col.Bools()[r] == col.Bools()[r-1]
		case value.KindInt64:
			return col.Ints()[r] == col.Ints()[r-1]
		case value.KindFloat64:
			return col.Floats()[r] == col.Floats()[r-1]
		case value.KindString:
			return col.Strs()[r] == col.Strs()[r-1]
		}
		return false
	}
	putRun := func(start, length int) {
		e.U32(uint32(length))
		if isNull(start) {
			e.Bool(false)
			return
		}
		e.Bool(true)
		switch col.Kind() {
		case value.KindBool:
			e.Bool(col.Bools()[start])
		case value.KindInt64:
			e.I64(col.Ints()[start])
		case value.KindFloat64:
			e.F64(col.Floats()[start])
		case value.KindString:
			e.Str(col.Strs()[start])
		}
	}
	nRuns := 0
	for r := 1; r < rows; r++ {
		if !sameAsPrev(r) {
			nRuns++
		}
	}
	if rows > 0 {
		nRuns++
	}
	e.U32(uint32(nRuns))
	start := 0
	for r := 1; r < rows; r++ {
		if !sameAsPrev(r) {
			putRun(start, r-start)
			start = r
		}
	}
	if rows > 0 {
		putRun(start, rows-start)
	}
}

func getRLEPayload(d *wire.Decoder, kind value.Kind, rows int) (*table.Column, error) {
	nRuns := int(d.U32())
	if d.Err() != nil || nRuns < 0 || nRuns > d.Remaining() {
		return nil, fmt.Errorf("storage: rle page run count %d exceeds page", nRuns)
	}
	// A run legitimately covers many rows in few bytes, so the payload
	// cannot bound the row count the way plain/dict payloads do; the
	// absolute cap (which the writer honors) rejects hostile claims
	// before any materialization.
	if rows > maxRLERows {
		return nil, fmt.Errorf("storage: rle page claims %d rows (cap %d)", rows, maxRLERows)
	}
	// Decode run headers first (cheap, bounded by the payload), then
	// bulk-fill typed slices — like the encoder, this path handles whole
	// compacted segments and must not box a value per row.
	type run struct {
		length int
		valid  bool
	}
	runs := make([]run, nRuns)
	// Cap the upfront capacity: hostile headers must not buy a huge
	// allocation before the run lengths prove the rows are real.
	capRows := rows
	if capRows > 1<<16 {
		capRows = 1 << 16
	}
	var (
		bools  []bool
		ints   []int64
		floats []float64
		strs   []string
		valid  []bool
	)
	total := 0
	fill := func(i int, appendVal func(length int)) error {
		length := runs[i].length
		if !runs[i].valid {
			if valid == nil {
				valid = make([]bool, 0, capRows)
				for j := 0; j < total; j++ {
					valid = append(valid, true)
				}
			}
			for j := 0; j < length; j++ {
				valid = append(valid, false)
			}
		} else if valid != nil {
			for j := 0; j < length; j++ {
				valid = append(valid, true)
			}
		}
		appendVal(length)
		total += length
		return nil
	}
	for i := 0; i < nRuns; i++ {
		runs[i].length = int(d.U32())
		runs[i].valid = d.Bool()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if runs[i].length <= 0 || total+runs[i].length > rows {
			return nil, fmt.Errorf("storage: rle run %d of length %d overflows %d rows", i, runs[i].length, rows)
		}
		var err error
		switch kind {
		case value.KindBool:
			if bools == nil {
				bools = make([]bool, 0, capRows)
			}
			v := false
			if runs[i].valid {
				v = d.Bool()
			}
			err = fill(i, func(n int) {
				for j := 0; j < n; j++ {
					bools = append(bools, v)
				}
			})
		case value.KindInt64:
			if ints == nil {
				ints = make([]int64, 0, capRows)
			}
			var v int64
			if runs[i].valid {
				v = d.I64()
			}
			err = fill(i, func(n int) {
				for j := 0; j < n; j++ {
					ints = append(ints, v)
				}
			})
		case value.KindFloat64:
			if floats == nil {
				floats = make([]float64, 0, capRows)
			}
			var v float64
			if runs[i].valid {
				v = d.F64()
			}
			err = fill(i, func(n int) {
				for j := 0; j < n; j++ {
					floats = append(floats, v)
				}
			})
		case value.KindString:
			if strs == nil {
				strs = make([]string, 0, capRows)
			}
			var v string
			if runs[i].valid {
				v = d.Str()
			}
			err = fill(i, func(n int) {
				for j := 0; j < n; j++ {
					strs = append(strs, v)
				}
			})
		default:
			return nil, fmt.Errorf("storage: rle page of kind %v", kind)
		}
		if err != nil {
			return nil, err
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
	}
	if total != rows {
		return nil, fmt.Errorf("storage: rle runs cover %d of %d rows", total, rows)
	}
	var col *table.Column
	switch kind {
	case value.KindBool:
		if bools == nil {
			bools = []bool{}
		}
		col = table.BoolColumn(bools)
	case value.KindInt64:
		if ints == nil {
			ints = []int64{}
		}
		col = table.IntColumn(ints)
	case value.KindFloat64:
		if floats == nil {
			floats = []float64{}
		}
		col = table.FloatColumn(floats)
	case value.KindString:
		if strs == nil {
			strs = []string{}
		}
		col = table.StringColumn(strs)
	}
	if valid != nil {
		col = col.WithValidity(valid)
	}
	return col, nil
}

// ---------------------------------------------------------------------------
// Shared validity framing: bool hasNulls | [rows validity bools].

func putValidity(e *wire.Encoder, col *table.Column) {
	hasNulls := col.HasNulls()
	e.Bool(hasNulls)
	if hasNulls {
		for r := 0; r < col.Len(); r++ {
			e.Bool(!col.IsNull(r))
		}
	}
}

func getValidity(d *wire.Decoder, rows int) ([]bool, error) {
	hasNulls := d.Bool()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if !hasNulls {
		return nil, nil
	}
	if rows > d.Remaining() {
		return nil, fmt.Errorf("storage: validity bitmap of %d rows exceeds page", rows)
	}
	valid := make([]bool, rows)
	for r := range valid {
		valid[r] = d.Bool()
	}
	return valid, d.Err()
}
