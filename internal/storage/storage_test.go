package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nexus/internal/core"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// rows builds a (k int64, s string, f float64) table covering [lo, hi).
func rowsTable(lo, hi int64) *table.Table {
	sch := schema.New(
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "s", Kind: value.KindString},
		schema.Attribute{Name: "f", Kind: value.KindFloat64},
	)
	b := table.NewBuilder(sch, int(hi-lo))
	for i := lo; i < hi; i++ {
		b.MustAppend(value.NewInt(i), value.NewString(fmt.Sprintf("s%03d", i)), value.NewFloat(float64(i)+0.5))
	}
	return b.Build()
}

func TestSegmentRoundtrip(t *testing.T) {
	in := rowsTable(0, 100)
	data := EncodeSegment(in)
	seg, err := DecodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualRows(in, seg.Table) {
		t.Fatal("segment rows differ after roundtrip")
	}
	if seg.Meta.Rows != 100 {
		t.Fatalf("meta rows = %d", seg.Meta.Rows)
	}
	z := seg.Meta.Zones[0]
	if z.Min.Int() != 0 || z.Max.Int() != 99 || z.Nulls != 0 {
		t.Fatalf("zone map = %+v", z)
	}
	// Flip one byte anywhere in the body: decode must fail, not misread.
	for _, off := range []int{len(segMagic) + 6, len(data) / 2, len(data) - 3} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, err := DecodeSegment(bad); err == nil {
			t.Fatalf("corrupt byte at %d decoded successfully", off)
		}
	}
	// Truncations must fail too.
	for _, n := range []int{0, 4, len(data) - 1} {
		if _, err := DecodeSegment(data[:n]); err == nil {
			t.Fatalf("truncated to %d decoded successfully", n)
		}
	}
}

func TestZoneMapNullsSortFirst(t *testing.T) {
	sch := schema.New(schema.Attribute{Name: "k", Kind: value.KindInt64})
	b := table.NewBuilder(sch, 3)
	b.MustAppend(value.NewInt(10))
	b.MustAppend(value.Null)
	b.MustAppend(value.NewInt(20))
	zones := ComputeZones(b.Build())
	z := zones[0]
	if !z.Min.IsNull() || z.Max.Int() != 20 || z.Nulls != 1 {
		t.Fatalf("zone = %+v", z)
	}
	// NULL sorts first under the total order, so k < 5 can match (the
	// NULL row passes value.Compare) and the zone must not prune it.
	if !z.MayMatch(value.OpLt, value.NewInt(5)) {
		t.Fatal("zone with NULLs pruned a < predicate NULL rows satisfy")
	}
	if z.MayMatch(value.OpGt, value.NewInt(20)) {
		t.Fatal("zone failed to prune > max")
	}
}

func TestWALReplayAndTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(WalRecord{Kind: walAppend, Dataset: "d", Table: rowsTable(int64(i*10), int64(i*10+10))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append garbage that looks like the
	// start of a record.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{0, 0, 1, 0, walAppend, 1, 2, 3})
	f.Close()

	var got []WalRecord
	size, err := ReplayWAL(path, func(r WalRecord) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("replayed %d records, want 5", len(got))
	}
	if fi, _ := os.Stat(path); fi.Size() != size {
		t.Fatalf("torn tail not truncated: file %d bytes, valid prefix %d", fi.Size(), size)
	}
	for i, r := range got {
		if r.Dataset != "d" || r.Table.NumRows() != 10 || r.Table.Value(0, 0).Int() != int64(i*10) {
			t.Fatalf("record %d wrong: %+v", i, r)
		}
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := w.Append(WalRecord{Kind: walAppend, Dataset: fmt.Sprintf("d%d", g), Table: rowsTable(0, 3)}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	w.Close()
	n := 0
	if _, err := ReplayWAL(filepath.Join(dir, "wal.log"), func(WalRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 32*8 {
		t.Fatalf("replayed %d records, want %d", n, 32*8)
	}
}

func TestStoreRecoverAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append("d", rowsTable(0, 50)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil { // first 50 rows become a segment
		t.Fatal(err)
	}
	if err := st.Append("d", rowsTable(50, 80)); err != nil { // WAL only
		t.Fatal(err)
	}
	if err := st.Append("other", rowsTable(0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Drop("other"); err != nil {
		t.Fatal(err)
	}
	// No Close: reopen simulates a crash after the last fsynced ack.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := st2.Dataset("d")
	if err != nil || !ok {
		t.Fatalf("dataset d: ok=%v err=%v", ok, err)
	}
	if !table.EqualRows(rowsTable(0, 80), got) {
		t.Fatalf("recovered rows differ: got %d rows", got.NumRows())
	}
	if _, ok, _ := st2.Dataset("other"); ok {
		t.Fatal("dropped dataset survived recovery")
	}
	// Replace semantics recover too.
	if err := st2.Replace("d", rowsTable(100, 110)); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got3, _, _ := st3.Dataset("d")
	if !table.EqualRows(rowsTable(100, 110), got3) {
		t.Fatal("replace did not survive recovery")
	}
	st3.Close()
}

func TestStoreFlushRotatesAndGarbageCollects(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append("d", rowsTable(int64(i*10), int64(i*10+10))); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	refs, _, _ := st.Segments("d")
	if len(refs) != 3 {
		t.Fatalf("%d segments after 3 flushes, want 3", len(refs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Exactly one manifest and one (empty) WAL generation remain.
	entries, _ := os.ReadDir(dir)
	var manifests, wals int
	for _, ent := range entries {
		name := ent.Name()
		if len(name) > 8 && name[:9] == "MANIFEST-" {
			manifests++
		}
		if len(name) > 4 && name[:4] == "wal-" {
			wals++
		}
	}
	if manifests != 1 || wals != 1 {
		t.Fatalf("dir holds %d manifests, %d wals; want 1 and 1", manifests, wals)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"sub/alpha#0", "sub/alpha#1", "plain"}
	for i, k := range keys {
		if err := st.SaveCheckpoint(k, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite is atomic-replace.
	if err := st.SaveCheckpoint("plain", []byte("payload-new")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, ok, err := st2.LoadCheckpoint("plain")
	if err != nil || !ok || string(got) != "payload-new" {
		t.Fatalf("plain checkpoint: %q ok=%v err=%v", got, ok, err)
	}
	list, err := st2.Checkpoints()
	if err != nil || len(list) != 3 {
		t.Fatalf("checkpoints = %v err=%v", list, err)
	}
	if err := st2.DeleteCheckpoint("sub/alpha#0"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st2.LoadCheckpoint("sub/alpha#0"); ok {
		t.Fatal("deleted checkpoint still loads")
	}
}

// TestEnginePrunedScanDifferential is the zone-map acceptance test: a
// filtered cold scan over many segments must skip non-matching segments
// and still return rows byte-identical to the in-memory relational
// engine over the same data.
func TestEnginePrunedScanDifferential(t *testing.T) {
	dir := t.TempDir()
	eng, err := OpenEngine("disk", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mem := relational.New("mem")

	// Ten segments with disjoint key ranges [i*100, i*100+100).
	for i := int64(0); i < 10; i++ {
		part := rowsTable(i*100, i*100+100)
		if err := eng.Append("d", part); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	whole := rowsTable(0, 1000)
	if err := mem.Store("d", whole); err != nil {
		t.Fatal(err)
	}

	preds := []expr.Expr{
		expr.And(expr.Ge(expr.Column("k"), expr.CInt(250)), expr.Lt(expr.Column("k"), expr.CInt(450))),
		expr.Eq(expr.Column("k"), expr.CInt(777)),
		expr.Gt(expr.Column("k"), expr.CInt(899)),
		expr.Lt(expr.CInt(950), expr.Column("k")), // constant on the left
		expr.Eq(expr.Column("s"), expr.CStr("s123")),
	}
	for i, pred := range preds {
		eng.DropCache() // force the cold path every time
		sc, _ := core.NewScan("d", whole.Schema())
		f, err := core.NewFilter(sc, pred)
		if err != nil {
			t.Fatal(err)
		}
		skippedBefore := eng.SegmentsSkipped()
		got, err := eng.Execute(f)
		if err != nil {
			t.Fatalf("pred %d: %v", i, err)
		}
		want, err := mem.Execute(f)
		if err != nil {
			t.Fatalf("pred %d mem: %v", i, err)
		}
		if !table.EqualRows(want, got) {
			t.Fatalf("pred %d: cold pruned scan differs from in-memory result", i)
		}
		if eng.SegmentsSkipped() == skippedBefore {
			t.Fatalf("pred %d: no segments were pruned", i)
		}
	}

	// A non-prunable predicate must still be correct (and skip nothing).
	eng.DropCache()
	sc, _ := core.NewScan("d", whole.Schema())
	f, _ := core.NewFilter(sc, expr.Gt(expr.Column("f"), expr.Column("k")))
	got, err := eng.Execute(f)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := mem.Execute(f)
	if !table.EqualRows(want, got) {
		t.Fatal("non-prunable filter differs from in-memory result")
	}
}

// TestEngineWarmMatchesCold pins warm (RAM) and cold (segment) scans to
// identical bytes for a whole-table read.
func TestEngineWarmMatchesCold(t *testing.T) {
	dir := t.TempDir()
	eng, err := OpenEngine("disk", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Append("d", rowsTable(0, 300)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Append("d", rowsTable(300, 321)); err != nil { // tail rows, WAL only
		t.Fatal(err)
	}
	sc, _ := core.NewScan("d", rowsTable(0, 1).Schema())
	eng.DropCache()
	cold, err := eng.Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualRows(cold, warm) || !table.EqualRows(rowsTable(0, 321), cold) {
		t.Fatal("cold/warm scans disagree")
	}
}
