package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nexus/internal/core"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/table"
)

// TestCompactMergesSmallSegments covers the mechanics: a spray of small
// segments (appended out of key order) merges into one segment sorted
// by the clustering key, unflushed tail rows survive untouched, the
// replaced files and superseded manifest are removed, and a reopen sees
// exactly the same rows.
func TestCompactMergesSmallSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order ranges: the clustering sort must interleave them.
	for _, r := range [][2]int64{{200, 300}, {0, 100}, {100, 200}} {
		if err := st.Append("d", rowsTable(r[0], r[1])); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append("d", rowsTable(300, 320)); err != nil { // WAL-only tail
		t.Fatal(err)
	}

	stats, err := st.Compact(CompactOptions{ClusterBy: map[string]string{"d": "k"}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Merged != 3 || len(stats.Datasets) != 1 || stats.Datasets[0] != "d" {
		t.Fatalf("compact stats = %+v, want 3 segments of d merged", stats)
	}
	refs, parts, _ := st.Segments("d")
	if len(refs) != 1 {
		t.Fatalf("%d segments after compaction, want 1", len(refs))
	}
	if len(parts) == 0 {
		t.Fatal("unflushed tail vanished during compaction")
	}
	// Tight zone maps: the merged segment's k spans exactly [0, 299].
	z := refs[0].Meta.Zones[0]
	if z.Min.Int() != 0 || z.Max.Int() != 299 {
		t.Fatalf("merged zone map = [%v, %v], want [0, 299]", z.Min, z.Max)
	}
	got, ok, err := st.Dataset("d")
	if err != nil || !ok {
		t.Fatalf("dataset after compaction: ok=%v err=%v", ok, err)
	}
	// The sort by k puts the merged rows into ascending order; the tail
	// follows in append order.
	if !table.EqualRows(rowsTable(0, 320), got) {
		t.Fatal("compacted dataset rows differ")
	}

	// Only one segment file and one manifest remain on disk.
	entries, _ := os.ReadDir(dir)
	var segFiles, manifests int
	for _, ent := range entries {
		name := ent.Name()
		if len(name) > 4 && name[:4] == "seg-" {
			segFiles++
		}
		if len(name) > 9 && name[:9] == "MANIFEST-" {
			manifests++
		}
	}
	if segFiles != 1 || manifests != 1 {
		t.Fatalf("dir holds %d segment files, %d manifests; want 1 and 1", segFiles, manifests)
	}

	// The new generation (and the WAL tail) survives a reopen.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got2, _, err := st2.Dataset("d")
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualRows(rowsTable(0, 320), got2) {
		t.Fatal("compacted dataset differs after reopen")
	}

	// A second pass has nothing small enough left to merge twice over —
	// the merged segment plus the tail's flush may combine once more,
	// then the store reaches a fixed point.
	if _, err := st2.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	stats3, err := st2.Compact(CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Merged != 0 {
		t.Fatalf("compaction did not reach a fixed point: %+v", stats3)
	}
}

// TestCompactLargeSegmentsLeftAlone pins the size threshold: segments
// at or above TargetBytes are not rewritten.
func TestCompactLargeSegmentsLeftAlone(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := int64(0); i < 3; i++ {
		if err := st.Append("d", rowsTable(i*100, i*100+100)); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := st.Compact(CompactOptions{TargetBytes: 1}) // everything is "large"
	if err != nil {
		t.Fatal(err)
	}
	if stats.Merged != 0 {
		t.Fatalf("compaction merged %d segments above the size target", stats.Merged)
	}
	refs, _, _ := st.Segments("d")
	if len(refs) != 3 {
		t.Fatalf("%d segments, want the original 3", len(refs))
	}
}

// TestCompactCrashProtocol simulates the two crash windows of a
// compaction deterministically: the merged segment written but no
// manifest yet, and the new manifest written but CURRENT not swapped.
// In both, the pre-compaction generation must stay fully readable and
// the next open must garbage-collect the orphans.
func TestCompactCrashProtocol(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := st.Append("d", rowsTable(i*50, i*50+50)); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	refs, _, _ := st.Segments("d")
	sch, _ := st.Schema("d")
	merged, _, _ := st.Dataset("d")
	gen := st.man.Gen
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash window 1: merged segment on disk, no manifest names it.
	orphanSeg := segName(9001)
	meta, err := WriteSegmentFile(dir, orphanSeg, merged)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with orphan segment: %v", err)
	}
	got, _, err := st1.Dataset("d")
	if err != nil || !table.EqualRows(merged, got) {
		t.Fatalf("pre-compaction generation unreadable after crash window 1: %v", err)
	}
	st1.Close()
	if _, err := os.Stat(filepath.Join(dir, orphanSeg)); !os.IsNotExist(err) {
		t.Fatal("orphan segment survived garbage collection")
	}

	// Crash window 2: merged segment AND its manifest exist, but CURRENT
	// still names the old generation.
	if _, err := WriteSegmentFile(dir, orphanSeg, merged); err != nil {
		t.Fatal(err)
	}
	orphanMan := &Manifest{Gen: gen + 1, WalGen: gen, NextSeg: 9002, Datasets: []DatasetManifest{{
		Name:     "d",
		Schema:   sch,
		Segments: []SegmentRef{{File: orphanSeg, Meta: meta}},
	}}}
	if err := atomicWriteFile(filepath.Join(dir, manifestName(orphanMan.Gen)), EncodeManifest(orphanMan)); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with orphan manifest: %v", err)
	}
	defer st2.Close()
	got2, _, err := st2.Dataset("d")
	if err != nil || !table.EqualRows(merged, got2) {
		t.Fatalf("pre-compaction generation unreadable after crash window 2: %v", err)
	}
	if len(st2.man.Datasets) != 1 || len(st2.man.Datasets[0].Segments) != len(refs) {
		t.Fatal("recovered manifest is not the pre-compaction generation")
	}
	for _, f := range []string{orphanSeg, manifestName(orphanMan.Gen)} {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived garbage collection", f)
		}
	}
}

// TestEngineCompactionDifferential is the end-to-end acceptance test:
// the same queries against the durable engine before and after
// compaction, and against the in-memory relational engine, return
// byte-identical rows — and the post-compaction pruned scan reads no
// more segments than the pre-compaction one.
func TestEngineCompactionDifferential(t *testing.T) {
	dir := t.TempDir()
	eng, err := OpenEngine("disk", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mem := relational.New("mem")

	// Twenty tiny segments in ascending key order (so the clustering
	// sort preserves the global order and ordered comparisons stay
	// meaningful).
	for i := int64(0); i < 20; i++ {
		if err := eng.Append("d", rowsTable(i*50, i*50+50)); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	whole := rowsTable(0, 1000)
	if err := mem.Store("d", whole); err != nil {
		t.Fatal(err)
	}

	mkFilter := func() core.Node {
		sc, _ := core.NewScan("d", whole.Schema())
		f, err := core.NewFilter(sc, expr.And(
			expr.Ge(expr.Column("k"), expr.CInt(100)),
			expr.Lt(expr.Column("k"), expr.CInt(180)),
		))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	run := func(label string) (scanned int64) {
		t.Helper()
		eng.DropCache()
		before := eng.SegmentsScanned()
		got, err := eng.Execute(mkFilter())
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want, err := mem.Execute(mkFilter())
		if err != nil {
			t.Fatal(err)
		}
		if !table.EqualRows(want, got) {
			t.Fatalf("%s: durable result differs from in-memory engine", label)
		}
		return eng.SegmentsScanned() - before
	}

	preScanned := run("pre-compaction")

	stats, err := eng.Compact(CompactOptions{ClusterBy: map[string]string{"d": "k"}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Merged != 20 {
		t.Fatalf("compaction merged %d segments, want 20", stats.Merged)
	}

	postScanned := run("post-compaction")
	if postScanned > preScanned {
		t.Fatalf("post-compaction scan reads %d segments, pre-compaction read %d", postScanned, preScanned)
	}

	// Full scans agree too (same multiset; same order here because the
	// ranges were appended in ascending key order).
	eng.DropCache()
	sc, _ := core.NewScan("d", whole.Schema())
	got, err := eng.Execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualRows(whole, got) {
		t.Fatal("full scan differs after compaction")
	}
}

// TestEngineProjectedScanDifferential pins segment-level column
// projection: Project/Filter stacks over a cold scan return rows
// byte-identical to the in-memory engine while reading strictly fewer
// file bytes than a full cold scan.
func TestEngineProjectedScanDifferential(t *testing.T) {
	dir := t.TempDir()
	eng, err := OpenEngine("disk", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mem := relational.New("mem")

	for i := int64(0); i < 10; i++ {
		if err := eng.Append("d", rowsTable(i*100, i*100+100)); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	whole := rowsTable(0, 1000)
	if err := mem.Store("d", whole); err != nil {
		t.Fatal(err)
	}

	// Baseline: full-width cold scan bytes.
	eng.DropCache()
	base := eng.BytesRead()
	sc, _ := core.NewScan("d", whole.Schema())
	if _, err := eng.Execute(sc); err != nil {
		t.Fatal(err)
	}
	fullBytes := eng.BytesRead() - base

	type tc struct {
		name string
		plan func() (core.Node, error)
	}
	cases := []tc{
		{"project-scan", func() (core.Node, error) {
			sc, _ := core.NewScan("d", whole.Schema())
			return core.NewProject(sc, []string{"k", "f"})
		}},
		{"filter-project-scan", func() (core.Node, error) {
			sc, _ := core.NewScan("d", whole.Schema())
			p, err := core.NewProject(sc, []string{"k"})
			if err != nil {
				return nil, err
			}
			return core.NewFilter(p, expr.Lt(expr.Column("k"), expr.CInt(250)))
		}},
		{"project-filter-scan", func() (core.Node, error) {
			sc, _ := core.NewScan("d", whole.Schema())
			f, err := core.NewFilter(sc, expr.Ge(expr.Column("k"), expr.CInt(800)))
			if err != nil {
				return nil, err
			}
			return core.NewProject(f, []string{"s"})
		}},
	}
	for _, c := range cases {
		plan, err := c.plan()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		eng.DropCache()
		before := eng.BytesRead()
		got, err := eng.Execute(plan)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		projBytes := eng.BytesRead() - before
		want, err := mem.Execute(plan)
		if err != nil {
			t.Fatalf("%s mem: %v", c.name, err)
		}
		if !table.EqualRows(want, got) {
			t.Fatalf("%s: projected cold scan differs from in-memory result", c.name)
		}
		if projBytes <= 0 || projBytes >= fullBytes {
			t.Fatalf("%s: projected scan read %d bytes, full scan %d — projection saved nothing", c.name, projBytes, fullBytes)
		}
	}

	// NULLs flow through projected pages unharmed.
	sch := nullableTable().Schema()
	if err := eng.Append("nulls", nullableTable()); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := mem.Store("nulls", nullableTable()); err != nil {
		t.Fatal(err)
	}
	eng.DropCache()
	nsc, _ := core.NewScan("nulls", sch)
	np, err := core.NewProject(nsc, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Execute(np)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := mem.Execute(np)
	if !table.EqualRows(want, got) {
		t.Fatal("projected NULL column differs from in-memory result")
	}
}

// TestCompactExcludeDataset pins CompactOptions.Exclude: a vetoed
// dataset keeps its segment spray (the server vetoes datasets whose
// hosted streams resume by row offset).
func TestCompactExcludeDataset(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := int64(0); i < 3; i++ {
		for _, name := range []string{"guarded", "free"} {
			if err := st.Append(name, rowsTable(i*50, i*50+50)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := st.Compact(CompactOptions{Exclude: func(name string) bool { return name == "guarded" }})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Datasets) != 1 || stats.Datasets[0] != "free" {
		t.Fatalf("compacted %v, want only free", stats.Datasets)
	}
	refs, _, _ := st.Segments("guarded")
	if len(refs) != 3 {
		t.Fatalf("excluded dataset was rewritten: %d segments, want 3", len(refs))
	}
	if free, _, _ := st.Segments("free"); len(free) != 1 {
		t.Fatalf("unexcluded dataset not compacted: %d segments", len(free))
	}
}

// TestCompactConcurrentReaders hammers cold scans while compaction
// passes rewrite the dataset under them: the swap deletes input files,
// so readers must transparently re-snapshot — never surface a
// file-not-found, never return wrong rows.
func TestCompactConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	eng, err := OpenEngine("disk", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var hi int64
	addSeg := func() {
		if err := eng.Append("d", rowsTable(hi, hi+50)); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		hi += 50
	}
	for i := 0; i < 6; i++ {
		addSeg()
	}

	stop := make(chan struct{})
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc, _ := core.NewScan("d", rowsTable(0, 1).Schema())
			p, _ := core.NewProject(sc, []string{"k", "f"})
			for {
				select {
				case <-stop:
					return
				default:
				}
				eng.DropCache()
				got, err := eng.Execute(p)
				if err != nil {
					errs <- fmt.Errorf("reader: %w", err)
					return
				}
				// Rows are a prefix of the growing dataset; every scan
				// must see a complete multiple of the append batches.
				if got.NumRows()%50 != 0 || got.NumRows() == 0 {
					errs <- fmt.Errorf("reader saw %d rows", got.NumRows())
					return
				}
			}
		}()
	}
	for i := 0; i < 30; i++ {
		addSeg()
		if _, err := eng.Compact(CompactOptions{ClusterBy: map[string]string{"d": "k"}}); err != nil {
			errs <- fmt.Errorf("compact: %w", err)
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got, ok, err := eng.Backing().Dataset("d")
	if err != nil || !ok {
		t.Fatalf("final dataset: ok=%v err=%v", ok, err)
	}
	if !table.EqualRows(rowsTable(0, hi), got) {
		t.Fatal("final rows differ after concurrent compaction")
	}
}
