// Package storage is the durability substrate of the nexus framework: a
// columnar segment file format with per-column page encodings
// (plain/dictionary/run-length), a group-commit write-ahead log, a
// generation-numbered on-disk catalog, a background compactor that
// merges small segments under a clustering sort, and durable stream
// checkpoints. Together they turn the in-memory providers into
// crash-recoverable servers — a nexus-server killed mid-write reopens
// its data directory and resumes with zero committed-row loss, and a
// hosted stream subscription picks up from its last checkpoint. Cold
// scans read only the column pages a plan needs (segment-level column
// projection) and skip whole segments whose zone maps cannot satisfy
// the filter.
//
// The byte-level layout of every file in a data directory is specified
// in docs/STORAGE_FORMAT.md; the constants and structs here are its
// source of truth.
//
// Layout of a data directory:
//
//	CURRENT              name of the live manifest (atomically swapped)
//	MANIFEST-<gen>       catalog: datasets -> segment manifests
//	wal-<gen>.log        write-ahead log since the manifest's flush
//	seg-<n>.nxs          immutable columnar segments
//	ckpt/<key>.ckpt      durable stream checkpoints
package storage

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"nexus/internal/errfs"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// segMagic opens every segment file; the version byte after it is
// bumped on format changes (readers reject unknown versions rather than
// misparse).
var segMagic = []byte("NXSEG\x01\r\n")

const (
	// segVersionV1 is the original layout: one wire.PutTable body plus a
	// footer, CRC-armored as a whole. Still decoded; no longer written.
	segVersionV1 = 1
	// segVersion is the current layout: a CRC-armored meta block (schema,
	// column-page directory, footer) up front, followed by one
	// independently CRC-armored page per column — so a projected read
	// fetches only the pages it needs and still verifies every byte.
	segVersion = 2
	// segVersionV3 is byte-for-byte the v2 layout, but at least one page
	// uses PageEncDictShared — its codes only resolve through the
	// dataset's shared dictionary in the manifest, so the version byte is
	// bumped to keep pre-v3 readers from half-decoding the file. The
	// writer emits 3 only when a shared page is actually present.
	segVersionV3 = 3
)

// segHeaderLen is the fixed file prefix before the meta block: magic,
// version byte, u32 meta length.
const segHeaderLen = 8 + 1 + 4

// pageDirEntryLen is one column's directory entry inside the meta
// block: u64 absolute page offset + u32 page length.
const pageDirEntryLen = 8 + 4

// ZoneMap is one column's value summary: the minimum and maximum under
// the value total order (NULL sorts first, so a column containing NULLs
// has a NULL Min) and the NULL count. Scans prune whole segments by
// testing filter predicates against these bounds.
type ZoneMap struct {
	Min, Max value.Value
	Nulls    int64
}

// MayMatch reports whether a row satisfying `col op val` can exist in a
// column summarized by z. It is conservative: unknown operators match.
// The semantics mirror value.Compare's total order, which the engines
// use for comparisons — NULL sorts before every other value.
func (z ZoneMap) MayMatch(op value.BinOp, val value.Value) bool {
	switch op {
	case value.OpEq:
		return value.Compare(z.Min, val) <= 0 && value.Compare(val, z.Max) <= 0
	case value.OpNe:
		// Only a constant column equal to val everywhere cannot match.
		return !(value.Compare(z.Min, val) == 0 && value.Compare(z.Max, val) == 0)
	case value.OpLt:
		return value.Compare(z.Min, val) < 0
	case value.OpLe:
		return value.Compare(z.Min, val) <= 0
	case value.OpGt:
		return value.Compare(z.Max, val) > 0
	case value.OpGe:
		return value.Compare(z.Max, val) >= 0
	}
	return true
}

// SegmentMeta is the footer of a segment file: everything a catalog (or
// a pruning scan) needs without touching the column pages.
type SegmentMeta struct {
	SchemaHash uint64
	Rows       int64
	Zones      []ZoneMap // one per column
}

// Segment is a decoded segment: its rows plus the footer metadata.
// FileBytes is how many bytes the reader actually consumed — the whole
// file for full reads, header+meta+selected pages for projected reads.
type Segment struct {
	Table     *table.Table
	Meta      SegmentMeta
	FileBytes int64
}

// SchemaHash digests a schema (names, kinds, dimension tags, in order);
// segments and manifests carry it so a reader detects schema drift
// before misreading pages.
func SchemaHash(s schema.Schema) uint64 {
	h := uint64(14695981039346656037)
	step := func(b byte) { h ^= uint64(b); h *= 1099511628211 }
	for i := 0; i < s.Len(); i++ {
		a := s.At(i)
		for j := 0; j < len(a.Name); j++ {
			step(a.Name[j])
		}
		step(0)
		step(byte(a.Kind))
		if a.Dim {
			step(1)
		} else {
			step(0)
		}
	}
	return h
}

// ComputeZones builds the per-column zone maps of a table.
func ComputeZones(t *table.Table) []ZoneMap {
	zones := make([]ZoneMap, t.NumCols())
	for c := range zones {
		col := t.Col(c)
		z := ZoneMap{Min: value.Null, Max: value.Null}
		for r := 0; r < col.Len(); r++ {
			v := col.Value(r)
			if v.IsNull() {
				z.Nulls++
			}
			if r == 0 {
				z.Min, z.Max = v, v
				continue
			}
			if value.Compare(v, z.Min) < 0 {
				z.Min = v
			}
			if value.Compare(v, z.Max) > 0 {
				z.Max = v
			}
		}
		zones[c] = z
	}
	return zones
}

// putZones encodes zone maps.
func putZones(e *wire.Encoder, zones []ZoneMap) {
	e.U32(uint32(len(zones)))
	for _, z := range zones {
		wire.PutValue(e, z.Min)
		wire.PutValue(e, z.Max)
		e.I64(z.Nulls)
	}
}

// getZones decodes zone maps.
func getZones(d *wire.Decoder) []ZoneMap {
	n := int(d.U32())
	if d.Err() != nil || n > d.Remaining() {
		return nil
	}
	zones := make([]ZoneMap, 0, n)
	for i := 0; i < n; i++ {
		zones = append(zones, ZoneMap{
			Min:   wire.GetValue(d),
			Max:   wire.GetValue(d),
			Nulls: d.I64(),
		})
	}
	return zones
}

// pageRef locates one column page inside a segment file.
type pageRef struct {
	off    int64 // absolute file offset
	length int
}

// EncodeSegment serializes a table as one current-version (v2) segment:
//
//	magic | u8 version=2 | u32 metaLen | meta | u32 crc32(meta) | pages
//	meta  := schema | u32 ncols | ncols×{u64 pageOff, u32 pageLen} | footer
//	footer:= u64 schema hash | i64 row count | zone maps
//	page  := u8 pageVersion | u8 encoding | u32 rows | u32 payloadLen |
//	         payload | u32 crc32(header|payload)
//
// The meta block and each page carry their own CRC, so a projected read
// (header + meta + a subset of pages) verifies every byte it touches
// without reading the rest of the file. Page encodings are chosen per
// column by choosePageEncoding.
func EncodeSegment(t *table.Table) []byte {
	return EncodeSegmentDict(t, nil, false)
}

// EncodeSegmentDict is EncodeSegment with a shared-dictionary set:
// string columns whose private-dict encoding would win are written as
// PageEncDictShared pages when the dataset's dictionary covers their
// values — or, with grow set, can be extended to cover them (the caller
// must commit the grown dictionaries in the same manifest generation as
// the segment, which Flush does under the store lock). The version byte
// is 3 iff at least one shared page was emitted, so dictionary-free
// tables keep producing plain v2 files.
func EncodeSegmentDict(t *table.Table, dicts DictSet, grow bool) []byte {
	ncols := t.NumCols()
	pages := make([][]byte, ncols)
	shared := false
	for c := 0; c < ncols; c++ {
		col := t.Col(c)
		enc := choosePageEncoding(col)
		var dict *SharedDict
		if enc == PageEncDict && col.Kind() == value.KindString {
			if d := sharedDictFor(dicts, t.Schema().At(c).Name, col, grow); d != nil {
				enc, dict, shared = PageEncDictShared, d, true
			}
		}
		pages[c] = encodePage(col, enc, dict)
	}

	var pre wire.Encoder
	wire.PutSchema(&pre, t.Schema())
	pre.U32(uint32(ncols))
	var foot wire.Encoder
	foot.U64(SchemaHash(t.Schema()))
	foot.I64(int64(t.NumRows()))
	putZones(&foot, ComputeZones(t))

	metaLen := pre.Len() + ncols*pageDirEntryLen + foot.Len()
	pagesStart := int64(segHeaderLen + metaLen + 4)

	var meta wire.Encoder
	meta.Raw(pre.Bytes())
	rel := int64(0)
	for _, p := range pages {
		meta.U64(uint64(pagesStart + rel))
		meta.U32(uint32(len(p)))
		rel += int64(len(p))
	}
	meta.Raw(foot.Bytes())

	ver := uint8(segVersion)
	if shared {
		ver = segVersionV3
	}
	var e wire.Encoder
	e.Raw(segMagic)
	e.U8(ver)
	e.U32(uint32(meta.Len()))
	e.Raw(meta.Bytes())
	e.U32(crc32.ChecksumIEEE(meta.Bytes()))
	for _, p := range pages {
		e.Raw(p)
	}
	return e.Bytes()
}

// sharedDictFor resolves (and with grow, extends) the shared dictionary
// one string column's page would encode against, or nil when shared
// encoding is not possible — no dictionary and no license to create one,
// values the dictionary does not cover, or a dictionary at capacity.
func sharedDictFor(dicts DictSet, name string, col *table.Column, grow bool) *SharedDict {
	if dicts == nil {
		return nil
	}
	d := dicts[name]
	if !grow {
		if d == nil || !d.Covers(col.Strs(), col.Validity()) {
			return nil
		}
		return d
	}
	if d == nil {
		d = &SharedDict{Col: name, Epoch: dictEpochFirst}
		dicts[name] = d
	}
	vals := col.Strs()
	for r := 0; r < col.Len(); r++ {
		if col.IsNull(r) {
			continue
		}
		if _, ok := d.Add(vals[r]); !ok {
			return nil // dictionary full — fall back to a private encoding
		}
	}
	return d
}

// EncodeSegmentV1 serializes a table in the legacy v1 layout:
//
//	magic | u8 version=1 | u32 bodyLen | body | u32 crc32(body)
//	body := table pages (wire.PutTable) | footer
//	footer := schema hash | row count | zone maps
//
// The current writer always emits v2; this encoder is kept as
// executable documentation of the v1 layout and for the mixed-version
// read tests — DecodeSegment accepts both versions side by side.
func EncodeSegmentV1(t *table.Table) []byte {
	var body wire.Encoder
	wire.PutTable(&body, t)
	body.U64(SchemaHash(t.Schema()))
	body.I64(int64(t.NumRows()))
	putZones(&body, ComputeZones(t))

	var e wire.Encoder
	e.Raw(segMagic)
	e.U8(segVersionV1)
	e.U32(uint32(body.Len()))
	e.Raw(body.Bytes())
	e.U32(crc32.ChecksumIEEE(body.Bytes()))
	return e.Bytes()
}

// DecodeSegment parses and verifies a segment encoding of any supported
// version. Every failure mode — bad magic, bad version, truncation, CRC
// mismatch, footer disagreeing with the pages — is an error, never a
// panic: the fuzz target FuzzSegment feeds this arbitrary bytes.
func DecodeSegment(b []byte) (*Segment, error) {
	return DecodeSegmentDicts(b, nil)
}

// DecodeSegmentDicts decodes a segment resolving PageEncDictShared pages
// through dicts (the dataset's shared dictionaries). A nil set decodes
// every pre-v3 segment; v3 segments then fail with a descriptive error
// rather than misread.
func DecodeSegmentDicts(b []byte, dicts DictSet) (*Segment, error) {
	ver, err := segmentVersion(b)
	if err != nil {
		return nil, err
	}
	switch ver {
	case segVersionV1:
		return decodeSegmentV1(b)
	case segVersion, segVersionV3:
		return decodeSegmentV2(b, dicts)
	}
	return nil, fmt.Errorf("storage: unsupported segment version %d", ver)
}

// VerifySegment structurally verifies a segment encoding without needing
// shared dictionaries: every CRC, every framing rule, and every code
// bound is checked, but PageEncDictShared pages are not materialized (and
// their epoch is not compared — the dictionary may not have arrived yet).
// Replication uses this to vet a fetched segment file before the manifest
// generation carrying its dictionary has been applied.
func VerifySegment(b []byte) error {
	ver, err := segmentVersion(b)
	if err != nil {
		return err
	}
	if ver == segVersionV1 {
		_, err := decodeSegmentV1(b)
		return err
	}
	if ver != segVersion && ver != segVersionV3 {
		return fmt.Errorf("storage: unsupported segment version %d", ver)
	}
	sch, meta, refs, err := decodeSegmentMetaV2(b[segHeaderLen:], headerMetaLen(b))
	if err != nil {
		return err
	}
	for c, ref := range refs {
		if ref.off < 0 || ref.length < 0 || ref.off > int64(len(b)) || int64(ref.length) > int64(len(b))-ref.off {
			return fmt.Errorf("storage: column %d page [%d,+%d) exceeds file of %d bytes", c, ref.off, ref.length, len(b))
		}
		ctx := pageCtx{col: sch.At(c).Name, structural: true}
		col, err := decodePage(b[ref.off:ref.off+int64(ref.length)], sch.At(c).Kind, ctx)
		if err != nil {
			return fmt.Errorf("storage: column %d (%s): %w", c, sch.At(c).Name, err)
		}
		if col != nil && int64(col.Len()) != meta.Rows {
			return fmt.Errorf("storage: column %d holds %d rows, footer says %d", c, col.Len(), meta.Rows)
		}
	}
	return nil
}

// SegmentPageEncodings reports the page encoding of every column of a
// v2/v3 segment encoding, in schema order (tests and the storage bench
// use it to assert what a writer actually chose).
func SegmentPageEncodings(b []byte) ([]uint8, error) {
	ver, err := segmentVersion(b)
	if err != nil {
		return nil, err
	}
	if ver != segVersion && ver != segVersionV3 {
		return nil, fmt.Errorf("storage: segment version %d has no page directory", ver)
	}
	_, _, refs, err := decodeSegmentMetaV2(b[segHeaderLen:], headerMetaLen(b))
	if err != nil {
		return nil, err
	}
	encs := make([]uint8, len(refs))
	for c, ref := range refs {
		if ref.off < 0 || ref.length < 0 || ref.off > int64(len(b)) || int64(ref.length) > int64(len(b))-ref.off {
			return nil, fmt.Errorf("storage: column %d page [%d,+%d) exceeds file of %d bytes", c, ref.off, ref.length, len(b))
		}
		enc, _, _, err := parsePageHeader(b[ref.off : ref.off+int64(ref.length)])
		if err != nil {
			return nil, fmt.Errorf("storage: column %d: %w", c, err)
		}
		encs[c] = enc
	}
	return encs, nil
}

// segmentVersion checks the magic and returns the version byte.
func segmentVersion(b []byte) (uint8, error) {
	if len(b) < segHeaderLen {
		return 0, fmt.Errorf("storage: segment too short (%d bytes)", len(b))
	}
	for i, m := range segMagic {
		if b[i] != m {
			return 0, fmt.Errorf("storage: bad segment magic")
		}
	}
	return b[len(segMagic)], nil
}

// decodeSegmentV1 parses the legacy whole-body layout.
func decodeSegmentV1(b []byte) (*Segment, error) {
	d := wire.NewDecoder(b[len(segMagic)+1:])
	bodyLen := int(d.U32())
	if bodyLen < 0 || bodyLen > d.Remaining()-4 {
		return nil, fmt.Errorf("storage: segment body length %d exceeds file", bodyLen)
	}
	body := d.RawN(bodyLen)
	crc := d.U32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, fmt.Errorf("storage: segment crc mismatch (got %08x, want %08x)", got, crc)
	}

	bd := wire.NewDecoder(body)
	t := wire.GetTable(bd)
	if err := bd.Err(); err != nil {
		return nil, fmt.Errorf("storage: segment pages: %w", err)
	}
	meta := SegmentMeta{
		SchemaHash: bd.U64(),
		Rows:       bd.I64(),
	}
	meta.Zones = getZones(bd)
	if err := bd.Err(); err != nil {
		return nil, fmt.Errorf("storage: segment footer: %w", err)
	}
	if meta.Zones == nil && t.NumCols() > 0 {
		return nil, fmt.Errorf("storage: segment footer has no zone maps")
	}
	if err := checkSegmentMeta(meta, t); err != nil {
		return nil, err
	}
	return &Segment{Table: t, Meta: meta, FileBytes: int64(len(b))}, nil
}

// decodeSegmentV2 parses the paged layout (v2 and v3 — same bytes, v3
// may hold shared-dict pages resolved through dicts) from a fully-read
// file.
func decodeSegmentV2(b []byte, dicts DictSet) (*Segment, error) {
	sch, meta, refs, err := decodeSegmentMetaV2(b[segHeaderLen:], headerMetaLen(b))
	if err != nil {
		return nil, err
	}
	cols := make([]*table.Column, len(refs))
	for c, ref := range refs {
		// Each term is bounded before the subtraction so a hostile
		// off/length pair cannot wrap int64 past the slice check.
		if ref.off < 0 || ref.length < 0 || ref.off > int64(len(b)) || int64(ref.length) > int64(len(b))-ref.off {
			return nil, fmt.Errorf("storage: column %d page [%d,+%d) exceeds file of %d bytes", c, ref.off, ref.length, len(b))
		}
		ctx := pageCtx{col: sch.At(c).Name, dict: dicts[sch.At(c).Name]}
		col, err := decodePage(b[ref.off:ref.off+int64(ref.length)], sch.At(c).Kind, ctx)
		if err != nil {
			return nil, fmt.Errorf("storage: column %d (%s): %w", c, sch.At(c).Name, err)
		}
		if int64(col.Len()) != meta.Rows {
			return nil, fmt.Errorf("storage: column %d holds %d rows, footer says %d", c, col.Len(), meta.Rows)
		}
		cols[c] = col
	}
	t, err := table.New(sch, cols)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if err := checkSegmentMeta(meta, t); err != nil {
		return nil, err
	}
	return &Segment{Table: t, Meta: meta, FileBytes: int64(len(b))}, nil
}

// headerMetaLen reads the u32 meta length from a v2 header (the caller
// already validated len(b) >= segHeaderLen).
func headerMetaLen(b []byte) int {
	o := len(segMagic) + 1
	return int(uint32(b[o])<<24 | uint32(b[o+1])<<16 | uint32(b[o+2])<<8 | uint32(b[o+3]))
}

// decodeSegmentMetaV2 parses and CRC-verifies a v2 meta block. The
// input starts right after the fixed header (so at the meta bytes) and
// must contain at least metaLen+4 bytes.
func decodeSegmentMetaV2(b []byte, metaLen int) (schema.Schema, SegmentMeta, []pageRef, error) {
	fail := func(err error) (schema.Schema, SegmentMeta, []pageRef, error) {
		return schema.Schema{}, SegmentMeta{}, nil, err
	}
	if metaLen < 0 || metaLen > len(b)-4 {
		return fail(fmt.Errorf("storage: segment meta length %d exceeds file", metaLen))
	}
	meta := b[:metaLen]
	crc := uint32(b[metaLen])<<24 | uint32(b[metaLen+1])<<16 | uint32(b[metaLen+2])<<8 | uint32(b[metaLen+3])
	if got := crc32.ChecksumIEEE(meta); got != crc {
		return fail(fmt.Errorf("storage: segment meta crc mismatch (got %08x, want %08x)", got, crc))
	}
	d := wire.NewDecoder(meta)
	sch := wire.GetSchema(d)
	if err := d.Err(); err != nil {
		return fail(fmt.Errorf("storage: segment schema: %w", err))
	}
	ncols := int(d.U32())
	if d.Err() != nil || ncols != sch.Len() {
		return fail(fmt.Errorf("storage: segment directory has %d columns for schema of %d", ncols, sch.Len()))
	}
	if ncols*pageDirEntryLen > d.Remaining() {
		return fail(fmt.Errorf("storage: segment page directory exceeds meta block"))
	}
	refs := make([]pageRef, ncols)
	for c := range refs {
		refs[c] = pageRef{off: int64(d.U64()), length: int(d.U32())}
	}
	sm := SegmentMeta{SchemaHash: d.U64(), Rows: d.I64()}
	sm.Zones = getZones(d)
	if err := d.Err(); err != nil {
		return fail(fmt.Errorf("storage: segment footer: %w", err))
	}
	if sm.Zones == nil && ncols > 0 {
		return fail(fmt.Errorf("storage: segment footer has no zone maps"))
	}
	if len(sm.Zones) != ncols {
		return fail(fmt.Errorf("storage: segment footer has %d zone maps for %d columns", len(sm.Zones), ncols))
	}
	if sm.Rows < 0 {
		return fail(fmt.Errorf("storage: segment footer claims %d rows", sm.Rows))
	}
	if sm.SchemaHash != SchemaHash(sch) {
		return fail(fmt.Errorf("storage: segment footer schema hash disagrees with schema"))
	}
	return sch, sm, refs, nil
}

// checkSegmentMeta cross-checks a decoded footer against the decoded
// pages.
func checkSegmentMeta(meta SegmentMeta, t *table.Table) error {
	if meta.SchemaHash != SchemaHash(t.Schema()) {
		return fmt.Errorf("storage: segment footer schema hash disagrees with pages")
	}
	if meta.Rows != int64(t.NumRows()) {
		return fmt.Errorf("storage: segment footer says %d rows, pages hold %d", meta.Rows, t.NumRows())
	}
	if len(meta.Zones) != t.NumCols() {
		return fmt.Errorf("storage: segment footer has %d zone maps for %d columns", len(meta.Zones), t.NumCols())
	}
	return nil
}

// WriteSegmentFile writes a table as a segment under dir, atomically
// (temp file + fsync + rename), returning the metadata for the catalog.
func WriteSegmentFile(dir, name string, t *table.Table) (SegmentMeta, error) {
	return WriteSegmentFileDict(dir, name, t, nil, false)
}

// WriteSegmentFileDict is WriteSegmentFile encoding against (and, with
// grow, extending) the dataset's shared dictionaries.
func WriteSegmentFileDict(dir, name string, t *table.Table, dicts DictSet, grow bool) (SegmentMeta, error) {
	data := EncodeSegmentDict(t, dicts, grow)
	if err := atomicWriteFile(filepath.Join(dir, name), data); err != nil {
		return SegmentMeta{}, err
	}
	return SegmentMeta{
		SchemaHash: SchemaHash(t.Schema()),
		Rows:       int64(t.NumRows()),
		Zones:      ComputeZones(t),
	}, nil
}

// ReadSegmentFile reads and fully verifies one segment file.
func ReadSegmentFile(path string) (*Segment, error) {
	return ReadSegmentFileDicts(path, nil)
}

// ReadSegmentFileDicts is ReadSegmentFile resolving shared-dict pages
// through the dataset's dictionaries.
func ReadSegmentFileDicts(path string, dicts DictSet) (*Segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: read segment: %w", err)
	}
	seg, err := DecodeSegmentDicts(data, dicts)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", filepath.Base(path), err)
	}
	return seg, nil
}

// ReadSegmentFileColumns reads only the named column positions of a
// segment file (positions index the segment's full schema, ascending).
// For a v2 segment this fetches the header, the meta block, and the
// selected pages — the returned Segment's FileBytes reports exactly the
// bytes consumed, which is how the benchmarks demonstrate projected
// cold scans reading less. A v1 segment has no page directory, so it is
// read whole and projected in memory (correct, just not cheaper). The
// returned Segment's Table and Meta.Zones cover only the selected
// columns, in the given order.
func ReadSegmentFileColumns(path string, positions []int) (*Segment, error) {
	return ReadSegmentFileColumnsDicts(path, positions, nil)
}

// ReadSegmentFileColumnsDicts is ReadSegmentFileColumns resolving
// shared-dict pages through the dataset's dictionaries. It is the
// materializing wrapper over the encoded read: every page is decoded to
// a plain column.
func ReadSegmentFileColumnsDicts(path string, positions []int, dicts DictSet) (*Segment, error) {
	es, err := ReadSegmentFileColumnsEncoded(path, positions, dicts)
	if err != nil {
		return nil, err
	}
	cols := make([]*table.Column, len(es.Cols))
	for i, ec := range es.Cols {
		if cols[i], err = ec.Materialize(); err != nil {
			return nil, fmt.Errorf("storage: %s: column %s: %w", filepath.Base(path), es.Schema.At(i).Name, err)
		}
	}
	t, err := table.New(es.Schema, cols)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", filepath.Base(path), err)
	}
	return &Segment{Table: t, Meta: es.Meta, FileBytes: es.FileBytes}, nil
}

// ReadSegmentFileColumnsEncoded reads only the named column positions of
// a segment file, leaving each page in its encoded form (see
// EncodedColumn) — the entry point of encoded execution, where
// predicates run over runs and dictionary codes before any row is
// materialized. Framing, CRCs and code bounds are verified exactly as a
// decoding read would. A v1 segment has no page directory and no
// compressed pages, so it is read whole and its projected columns
// wrapped as plain views.
func ReadSegmentFileColumnsEncoded(path string, positions []int, dicts DictSet) (*EncodedSegment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: read segment: %w", err)
	}
	defer f.Close()

	header := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, fmt.Errorf("storage: %s: short header: %w", filepath.Base(path), err)
	}
	ver, err := segmentVersion(header)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", filepath.Base(path), err)
	}
	if ver == segVersionV1 {
		// No page directory: fall back to a full read + in-memory project.
		seg, err := ReadSegmentFile(path)
		if err != nil {
			return nil, err
		}
		proj, err := projectSegment(seg, positions)
		if err != nil {
			return nil, err
		}
		ecols := make([]*EncodedColumn, proj.Table.NumCols())
		for i := range ecols {
			ecols[i] = encodedFromColumn(proj.Table.Col(i))
		}
		return &EncodedSegment{
			Schema:    proj.Table.Schema(),
			Cols:      ecols,
			Meta:      proj.Meta,
			FileBytes: proj.FileBytes,
		}, nil
	}
	if ver != segVersion && ver != segVersionV3 {
		return nil, fmt.Errorf("storage: %s: unsupported segment version %d", filepath.Base(path), ver)
	}

	metaLen := headerMetaLen(header)
	if metaLen < 0 || metaLen > 1<<30 {
		return nil, fmt.Errorf("storage: %s: implausible meta length %d", filepath.Base(path), metaLen)
	}
	metaBuf := make([]byte, metaLen+4)
	if _, err := io.ReadFull(f, metaBuf); err != nil {
		return nil, fmt.Errorf("storage: %s: short meta: %w", filepath.Base(path), err)
	}
	sch, meta, refs, err := decodeSegmentMetaV2(metaBuf, metaLen)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", filepath.Base(path), err)
	}

	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", filepath.Base(path), err)
	}
	bytesRead := int64(segHeaderLen + len(metaBuf))
	cols := make([]*EncodedColumn, len(positions))
	zones := make([]ZoneMap, len(positions))
	for i, c := range positions {
		if c < 0 || c >= len(refs) {
			return nil, fmt.Errorf("storage: %s: projected column %d out of %d", filepath.Base(path), c, len(refs))
		}
		ref := refs[c]
		// Bound the page against the real file size before allocating —
		// a corrupt directory must fail the read, not OOM it (and the
		// subtraction form cannot wrap like off+length could).
		if ref.off < int64(segHeaderLen) || ref.length < 0 || ref.off > fi.Size() || int64(ref.length) > fi.Size()-ref.off {
			return nil, fmt.Errorf("storage: %s: column %d page [%d,+%d) malformed", filepath.Base(path), c, ref.off, ref.length)
		}
		page := make([]byte, ref.length)
		if _, err := f.ReadAt(page, ref.off); err != nil {
			return nil, fmt.Errorf("storage: %s: column %d page: %w", filepath.Base(path), c, err)
		}
		bytesRead += int64(ref.length)
		ctx := pageCtx{col: sch.At(c).Name, dict: dicts[sch.At(c).Name]}
		col, err := parsePageEncoded(page, sch.At(c).Kind, ctx)
		if err != nil {
			return nil, fmt.Errorf("storage: %s: column %d (%s): %w", filepath.Base(path), c, sch.At(c).Name, err)
		}
		if int64(col.Rows()) != meta.Rows {
			return nil, fmt.Errorf("storage: %s: column %d holds %d rows, footer says %d", filepath.Base(path), c, col.Rows(), meta.Rows)
		}
		cols[i] = col
		zones[i] = meta.Zones[c]
	}
	return &EncodedSegment{
		Schema:    sch.Project(positions),
		Cols:      cols,
		Meta:      SegmentMeta{SchemaHash: meta.SchemaHash, Rows: meta.Rows, Zones: zones},
		FileBytes: bytesRead,
	}, nil
}

// projectSegment narrows a fully-decoded segment to the given column
// positions (the v1 fallback path of ReadSegmentFileColumns).
func projectSegment(seg *Segment, positions []int) (*Segment, error) {
	for _, c := range positions {
		if c < 0 || c >= seg.Table.NumCols() {
			return nil, fmt.Errorf("storage: projected column %d out of %d", c, seg.Table.NumCols())
		}
	}
	zones := make([]ZoneMap, len(positions))
	for i, c := range positions {
		zones[i] = seg.Meta.Zones[c]
	}
	return &Segment{
		Table:     seg.Table.Project(positions),
		Meta:      SegmentMeta{SchemaHash: seg.Meta.SchemaHash, Rows: seg.Meta.Rows, Zones: zones},
		FileBytes: seg.FileBytes,
	}, nil
}

// atomicWriteFile writes data to path via a temp file in the same
// directory, fsyncing the file before the rename and the directory
// after, so the path never exposes a torn file — even across SIGKILL.
// Write and fsync route through errfs, the deterministic
// fault-injection seam the chaos suite drives.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := errfs.Write(tmp, data); err != nil {
		cleanup()
		return fmt.Errorf("storage: write %s: %w", path, err)
	}
	if err := errfs.Sync(tmp); err != nil {
		cleanup()
		return fmt.Errorf("storage: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("storage: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: rename into %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Filesystems that refuse directory fsync are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
