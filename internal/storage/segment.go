// Package storage is the durability substrate of the nexus framework: a
// columnar segment file format, a group-commit write-ahead log, a
// generation-numbered on-disk catalog, and durable stream checkpoints.
// Together they turn the in-memory providers into crash-recoverable
// servers — a nexus-server killed mid-write reopens its data directory
// and resumes with zero committed-row loss, and a hosted stream
// subscription picks up from its last checkpoint.
//
// Layout of a data directory:
//
//	CURRENT              name of the live manifest (atomically swapped)
//	MANIFEST-<gen>       catalog: datasets -> segment manifests
//	wal-<gen>.log        write-ahead log since the manifest's flush
//	seg-<n>.nxs          immutable columnar segments
//	ckpt/<key>.ckpt      durable stream checkpoints
package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// segMagic opens every segment file; segVersion is bumped on format
// changes (readers reject unknown versions rather than misparse).
var segMagic = []byte("NXSEG\x01\r\n")

const segVersion = 1

// ZoneMap is one column's value summary: the minimum and maximum under
// the value total order (NULL sorts first, so a column containing NULLs
// has a NULL Min) and the NULL count. Scans prune whole segments by
// testing filter predicates against these bounds.
type ZoneMap struct {
	Min, Max value.Value
	Nulls    int64
}

// MayMatch reports whether a row satisfying `col op val` can exist in a
// column summarized by z. It is conservative: unknown operators match.
// The semantics mirror value.Compare's total order, which the engines
// use for comparisons — NULL sorts before every other value.
func (z ZoneMap) MayMatch(op value.BinOp, val value.Value) bool {
	switch op {
	case value.OpEq:
		return value.Compare(z.Min, val) <= 0 && value.Compare(val, z.Max) <= 0
	case value.OpNe:
		// Only a constant column equal to val everywhere cannot match.
		return !(value.Compare(z.Min, val) == 0 && value.Compare(z.Max, val) == 0)
	case value.OpLt:
		return value.Compare(z.Min, val) < 0
	case value.OpLe:
		return value.Compare(z.Min, val) <= 0
	case value.OpGt:
		return value.Compare(z.Max, val) > 0
	case value.OpGe:
		return value.Compare(z.Max, val) >= 0
	}
	return true
}

// SegmentMeta is the footer of a segment file: everything a catalog (or
// a pruning scan) needs without touching the column pages.
type SegmentMeta struct {
	SchemaHash uint64
	Rows       int64
	Zones      []ZoneMap // one per column
}

// Segment is a decoded segment: its rows plus the footer metadata.
type Segment struct {
	Table *table.Table
	Meta  SegmentMeta
}

// SchemaHash digests a schema (names, kinds, dimension tags, in order);
// segments and manifests carry it so a reader detects schema drift
// before misreading pages.
func SchemaHash(s schema.Schema) uint64 {
	h := uint64(14695981039346656037)
	step := func(b byte) { h ^= uint64(b); h *= 1099511628211 }
	for i := 0; i < s.Len(); i++ {
		a := s.At(i)
		for j := 0; j < len(a.Name); j++ {
			step(a.Name[j])
		}
		step(0)
		step(byte(a.Kind))
		if a.Dim {
			step(1)
		} else {
			step(0)
		}
	}
	return h
}

// ComputeZones builds the per-column zone maps of a table.
func ComputeZones(t *table.Table) []ZoneMap {
	zones := make([]ZoneMap, t.NumCols())
	for c := range zones {
		col := t.Col(c)
		z := ZoneMap{Min: value.Null, Max: value.Null}
		for r := 0; r < col.Len(); r++ {
			v := col.Value(r)
			if v.IsNull() {
				z.Nulls++
			}
			if r == 0 {
				z.Min, z.Max = v, v
				continue
			}
			if value.Compare(v, z.Min) < 0 {
				z.Min = v
			}
			if value.Compare(v, z.Max) > 0 {
				z.Max = v
			}
		}
		zones[c] = z
	}
	return zones
}

// putZones encodes zone maps.
func putZones(e *wire.Encoder, zones []ZoneMap) {
	e.U32(uint32(len(zones)))
	for _, z := range zones {
		wire.PutValue(e, z.Min)
		wire.PutValue(e, z.Max)
		e.I64(z.Nulls)
	}
}

// getZones decodes zone maps.
func getZones(d *wire.Decoder) []ZoneMap {
	n := int(d.U32())
	if d.Err() != nil || n > d.Remaining() {
		return nil
	}
	zones := make([]ZoneMap, 0, n)
	for i := 0; i < n; i++ {
		zones = append(zones, ZoneMap{
			Min:   wire.GetValue(d),
			Max:   wire.GetValue(d),
			Nulls: d.I64(),
		})
	}
	return zones
}

// EncodeSegment serializes a table as one segment:
//
//	magic | version | body | crc32(body)
//	body := table pages (wire.PutTable) | footer
//	footer := schema hash | row count | zone maps
//
// The CRC covers the body, so a torn or bit-rotted file fails loudly on
// open instead of yielding wrong rows.
func EncodeSegment(t *table.Table) []byte {
	var body wire.Encoder
	wire.PutTable(&body, t)
	body.U64(SchemaHash(t.Schema()))
	body.I64(int64(t.NumRows()))
	putZones(&body, ComputeZones(t))

	var e wire.Encoder
	e.Raw(segMagic)
	e.U8(segVersion)
	e.U32(uint32(body.Len()))
	e.Raw(body.Bytes())
	e.U32(crc32.ChecksumIEEE(body.Bytes()))
	return e.Bytes()
}

// DecodeSegment parses and verifies a segment encoding. Every failure
// mode — bad magic, bad version, truncation, CRC mismatch, footer
// disagreeing with the pages — is an error, never a panic: the fuzz
// target FuzzSegment feeds this arbitrary bytes.
func DecodeSegment(b []byte) (*Segment, error) {
	if len(b) < len(segMagic)+1+4 {
		return nil, fmt.Errorf("storage: segment too short (%d bytes)", len(b))
	}
	for i, m := range segMagic {
		if b[i] != m {
			return nil, fmt.Errorf("storage: bad segment magic")
		}
	}
	d := wire.NewDecoder(b[len(segMagic):])
	if v := d.U8(); v != segVersion {
		return nil, fmt.Errorf("storage: unsupported segment version %d", v)
	}
	bodyLen := int(d.U32())
	if bodyLen < 0 || bodyLen > d.Remaining()-4 {
		return nil, fmt.Errorf("storage: segment body length %d exceeds file", bodyLen)
	}
	body := d.RawN(bodyLen)
	crc := d.U32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, fmt.Errorf("storage: segment crc mismatch (got %08x, want %08x)", got, crc)
	}

	bd := wire.NewDecoder(body)
	t := wire.GetTable(bd)
	if err := bd.Err(); err != nil {
		return nil, fmt.Errorf("storage: segment pages: %w", err)
	}
	meta := SegmentMeta{
		SchemaHash: bd.U64(),
		Rows:       bd.I64(),
	}
	meta.Zones = getZones(bd)
	if err := bd.Err(); err != nil {
		return nil, fmt.Errorf("storage: segment footer: %w", err)
	}
	if meta.Zones == nil && t.NumCols() > 0 {
		return nil, fmt.Errorf("storage: segment footer has no zone maps")
	}
	if meta.SchemaHash != SchemaHash(t.Schema()) {
		return nil, fmt.Errorf("storage: segment footer schema hash disagrees with pages")
	}
	if meta.Rows != int64(t.NumRows()) {
		return nil, fmt.Errorf("storage: segment footer says %d rows, pages hold %d", meta.Rows, t.NumRows())
	}
	if len(meta.Zones) != t.NumCols() {
		return nil, fmt.Errorf("storage: segment footer has %d zone maps for %d columns", len(meta.Zones), t.NumCols())
	}
	return &Segment{Table: t, Meta: meta}, nil
}

// WriteSegmentFile writes a table as a segment under dir, atomically
// (temp file + fsync + rename), returning the metadata for the catalog.
func WriteSegmentFile(dir, name string, t *table.Table) (SegmentMeta, error) {
	data := EncodeSegment(t)
	if err := atomicWriteFile(filepath.Join(dir, name), data); err != nil {
		return SegmentMeta{}, err
	}
	return SegmentMeta{
		SchemaHash: SchemaHash(t.Schema()),
		Rows:       int64(t.NumRows()),
		Zones:      ComputeZones(t),
	}, nil
}

// ReadSegmentFile reads and fully verifies one segment file.
func ReadSegmentFile(path string) (*Segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: read segment: %w", err)
	}
	seg, err := DecodeSegment(data)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", filepath.Base(path), err)
	}
	return seg, nil
}

// atomicWriteFile writes data to path via a temp file in the same
// directory, fsyncing the file before the rename and the directory
// after, so the path never exposes a torn file — even across SIGKILL.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("storage: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("storage: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("storage: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: rename into %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Filesystems that refuse directory fsync are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
