package storage

import (
	"errors"
	"fmt"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/planner"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Encoded execution, engine side. Two kernels run over EncodedColumn
// views instead of materialized rows:
//
//   - The scan pre-filter (encodedFilterTable): every captured conjunct
//     is ANDed over the encoded pages — one comparison per RLE run, one
//     per distinct dictionary entry — and only surviving rows are
//     materialized. Safe even when the conjuncts are not the whole
//     filter, because the generic runtime re-runs the full predicate
//     stack over the result; the pre-filter only drops rows that stack
//     would drop anyway.
//
//   - The grouped-aggregate kernel (encAggState): a GroupAgg whose
//     filters are an exact conjunction and whose arguments are plain
//     columns folds directly over pages — group ids resolved once per
//     RLE run or dictionary code, whole runs folded through
//     Accumulator.AddN. Nothing re-runs downstream here, so the shape
//     gate (planner.AnalyzeAggAccess) is strict, and every fold mirrors
//     exec's groupAggregate exactly: same group order (first
//     occurrence in dataset row order), same accumulator arithmetic
//     (float sums stay sequential), same NULL handling. The
//     differential suite holds the two paths byte-identical.

// SetEncodedExec toggles encoded execution (on by default). Turning it
// off forces every scan and aggregate through the materialize-first
// paths — the oracle the differential tests compare against.
func (e *Engine) SetEncodedExec(on bool) { e.encodedOff.Store(!on) }

func (e *Engine) encodedOn() bool { return !e.encodedOff.Load() }

// EncodedScans returns how many segment reads the encoded pre-filter
// served.
func (e *Engine) EncodedScans() int64 { return e.encodedScans.Load() }

// EncodedAggs returns how many grouped aggregations the encoded kernel
// served without materializing the dataset.
func (e *Engine) EncodedAggs() int64 { return e.encodedAggs.Load() }

// encodedMatches ANDs every conjunct over the part's encoded columns.
// ok=false means a predicate column is missing from the projected
// schema — the caller must fall back, never silently skip a conjunct.
func encodedMatches(sch schema.Schema, cols []*EncodedColumn, preds []planner.ScanPred) ([]bool, bool) {
	if len(cols) == 0 {
		return nil, false
	}
	match := make([]bool, cols[0].Rows())
	for i := range match {
		match[i] = true
	}
	for _, p := range preds {
		i := sch.IndexOf(p.Col)
		if i < 0 {
			return nil, false
		}
		cols[i].AndMatches(p.Op, p.Val, match)
	}
	return match, true
}

// encodedFilterTable materializes only the rows of an encoded segment
// that pass every conjunct. ok=false falls back to the decoding read.
func encodedFilterTable(es *EncodedSegment, preds []planner.ScanPred) (*table.Table, bool, error) {
	match, ok := encodedMatches(es.Schema, es.Cols, preds)
	if !ok {
		return nil, false, nil
	}
	n := 0
	for _, m := range match {
		if m {
			n++
		}
	}
	cols := make([]*table.Column, len(es.Cols))
	var err error
	if n == len(match) {
		for i, ec := range es.Cols {
			if cols[i], err = ec.Materialize(); err != nil {
				return nil, false, err
			}
		}
	} else {
		sel := make([]int, 0, n)
		for r, m := range match {
			if m {
				sel = append(sel, r)
			}
		}
		for i, ec := range es.Cols {
			if cols[i], err = ec.MaterializeRows(sel); err != nil {
				return nil, false, err
			}
		}
	}
	t, err := table.New(es.Schema, cols)
	if err != nil {
		return nil, false, err
	}
	return t, true, nil
}

// encodedAgg serves a GroupAgg over a cold scan directly from encoded
// pages. ok=false means the fragment (or the engine's state) wants the
// generic path.
func (e *Engine) encodedAgg(n core.Node) (*table.Table, bool, error) {
	if !e.encodedOn() {
		return nil, false, nil
	}
	agg, ok := planner.AnalyzeAggAccess(n)
	if !ok || len(agg.Keys) > 1 {
		return nil, false, nil
	}
	e.mu.Lock()
	_, warm := e.mat[agg.Scan.Dataset]
	e.mu.Unlock()
	if warm {
		return nil, false, nil // RAM scan: the generic fold is already cheap
	}
	return e.aggTable(agg, n.Schema())
}

// aggTable runs the encoded grouped-aggregate kernel over one
// consistent snapshot of the dataset: manifest segments in order (zone
// pruning applies — the conjunction is exact, so an excluded segment
// contributes no rows), then the unflushed tail.
func (e *Engine) aggTable(agg planner.AggAccess, outSchema schema.Schema) (*table.Table, bool, error) {
	name := agg.Scan.Dataset
	var out *table.Table
	unservable := false
	err := e.st.readSnapshot(name, func(refs []SegmentRef, parts []*table.Table) error {
		sch, _ := e.st.Schema(name)
		if !sch.Equal(agg.Scan.Schema()) {
			unservable = true
			return nil
		}
		positions := make([]int, 0, len(agg.Cols))
		for _, c := range agg.Cols {
			i := sch.IndexOf(c)
			if i < 0 {
				unservable = true
				return nil
			}
			positions = append(positions, i)
		}
		proj := sch.Project(positions)
		keyIdx := -1
		if len(agg.Keys) == 1 {
			if keyIdx = proj.IndexOf(agg.Keys[0]); keyIdx < 0 {
				unservable = true
				return nil
			}
		}
		argIdx := make([]int, len(agg.Aggs))
		for i, arg := range agg.Args {
			argIdx[i] = -1
			if arg != "" {
				if argIdx[i] = proj.IndexOf(arg); argIdx[i] < 0 {
					unservable = true
					return nil
				}
			}
		}

		st := newEncAggState(agg.Aggs, keyIdx >= 0)
		scanned, skipped := int64(0), int64(0)
		for _, ref := range refs {
			if !segMayMatch(sch, ref, agg.Preds) {
				skipped++
				continue
			}
			es, err := e.st.ReadSegmentEncoded(name, ref, positions)
			if err != nil {
				return err
			}
			if !st.addPart(proj, es.Cols, keyIdx, argIdx, agg.Preds) {
				unservable = true
				return nil
			}
			scanned++
		}
		e.segmentsScanned.Add(scanned)
		e.segmentsSkipped.Add(skipped)
		metSegScanned.Add(scanned)
		metSegPruned.Add(skipped)
		for _, p := range parts {
			p = p.Project(positions)
			ecols := make([]*EncodedColumn, p.NumCols())
			for i := range ecols {
				ecols[i] = encodedFromColumn(p.Col(i))
			}
			if !st.addPart(proj, ecols, keyIdx, argIdx, agg.Preds) {
				unservable = true
				return nil
			}
		}
		t, err := st.build(outSchema, len(agg.Keys))
		if err != nil {
			return err
		}
		out = t
		return nil
	})
	if errors.Is(err, errNoDataset) || unservable {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	e.encodedAggs.Add(1)
	metEncodedAggs.Inc()
	return out, true, nil
}

// encAggState accumulates groups across parts. Group ids are dense,
// assigned at first occurrence in dataset row order — exactly the order
// exec's groupAggregate assigns them over the concatenated table, so
// output rows land in the same order.
type encAggState struct {
	aggs []core.AggSpec
	gids map[string]int32      // canonical key encoding -> group id
	keys []value.Value         // first-occurrence key value per group
	accs [][]*exec.Accumulator // per group, per aggregate
	buf  []byte                // AppendKey scratch
}

func newEncAggState(aggs []core.AggSpec, hasKey bool) *encAggState {
	st := &encAggState{aggs: aggs, gids: map[string]int32{}}
	if !hasKey {
		// Global aggregate: exactly one group, present even over an
		// empty input (SQL's one-row global aggregate).
		st.addGroup(value.Null)
	}
	return st
}

func (st *encAggState) addGroup(key value.Value) int32 {
	g := int32(len(st.keys))
	st.keys = append(st.keys, key)
	row := make([]*exec.Accumulator, len(st.aggs))
	for i, a := range st.aggs {
		row[i] = exec.NewAccumulator(a.Func)
	}
	st.accs = append(st.accs, row)
	return g
}

// group resolves a key value to its dense group id, creating the group
// on first occurrence. Grouping equivalence is the canonical key
// encoding — the same equivalence groupAggregate's general case uses.
func (st *encAggState) group(key value.Value) int32 {
	st.buf = value.AppendKey(st.buf[:0], key)
	g, ok := st.gids[string(st.buf)]
	if !ok {
		g = st.addGroup(key)
		st.gids[string(st.buf)] = g
	}
	return g
}

// addPart folds one part (segment or tail chunk) into the running
// groups: filter via encoded conjuncts, assign group ids at run/code
// granularity, fold each aggregate column. false means a predicate
// column was missing — the caller falls back to the generic path.
func (st *encAggState) addPart(sch schema.Schema, cols []*EncodedColumn, keyIdx int, argIdx []int, preds []planner.ScanPred) bool {
	if len(cols) == 0 {
		return false
	}
	rows := cols[0].Rows()
	if rows == 0 {
		return true
	}
	match, ok := encodedMatches(sch, cols, preds)
	if !ok {
		return false
	}
	// Per-row group ids; -1 marks rows the filter removed.
	gids := make([]int32, rows)
	if keyIdx < 0 {
		for r, m := range match {
			if m {
				gids[r] = 0
			} else {
				gids[r] = -1
			}
		}
	} else {
		st.assignGids(cols[keyIdx], match, gids)
	}
	for j, ai := range argIdx {
		if ai < 0 {
			// count(*): every surviving row counts, NULL or not.
			for _, g := range gids {
				if g >= 0 {
					st.accs[g][j].AddRows(1)
				}
			}
			continue
		}
		st.fold(cols[ai], gids, j)
	}
	return true
}

// assignGids computes each surviving row's group id from the key
// column: one key resolution per RLE run, one per dictionary code, one
// per row on plain pages. Resolution happens at the first *surviving*
// occurrence, so group creation order matches the filtered row order
// the generic path sees.
func (st *encAggState) assignGids(key *EncodedColumn, match []bool, gids []int32) {
	const unresolved = int32(-2)
	switch key.Encoding() {
	case PageEncRLE:
		at := 0
		for i, n := range key.runLens {
			g := unresolved
			for r := at; r < at+n; r++ {
				if !match[r] {
					gids[r] = -1
					continue
				}
				if g == unresolved {
					g = st.group(key.runVals[i])
				}
				gids[r] = g
			}
			at += n
		}
	case PageEncDict, PageEncDictShared:
		codeGid := make([]int32, key.dict.Len())
		for i := range codeGid {
			codeGid[i] = unresolved
		}
		nullGid := unresolved
		for r := range gids {
			if !match[r] {
				gids[r] = -1
				continue
			}
			if key.valid != nil && !key.valid[r] {
				if nullGid == unresolved {
					nullGid = st.group(value.Null)
				}
				gids[r] = nullGid
				continue
			}
			c := key.codes[r]
			if codeGid[c] == unresolved {
				codeGid[c] = st.group(key.dict.Value(int(c)))
			}
			gids[r] = codeGid[c]
		}
	default:
		for r := range gids {
			if !match[r] {
				gids[r] = -1
				continue
			}
			gids[r] = st.group(key.col.Value(r))
		}
	}
}

// fold accumulates one aggregate's argument column. RLE runs fold
// through AddN (one call per consecutive same-group stretch — for float
// sums AddN itself loops, keeping the arithmetic order identical to
// row-at-a-time). Dictionary pages box each distinct entry once.
func (st *encAggState) fold(col *EncodedColumn, gids []int32, j int) {
	switch col.Encoding() {
	case PageEncRLE:
		at := 0
		for i, n := range col.runLens {
			v := col.runVals[i]
			end := at + n
			for r := at; r < end; {
				g := gids[r]
				if g < 0 {
					r++
					continue
				}
				stretch := r + 1
				for stretch < end && gids[stretch] == g {
					stretch++
				}
				st.accs[g][j].AddN(v, stretch-r)
				r = stretch
			}
			at = end
		}
	case PageEncDict, PageEncDictShared:
		var entries []value.Value // boxed lazily, once per distinct entry
		for r, g := range gids {
			if g < 0 {
				continue
			}
			if col.valid != nil && !col.valid[r] {
				continue // NULL: Add would ignore it anyway
			}
			if entries == nil {
				entries = make([]value.Value, col.dict.Len())
				for c := range entries {
					entries[c] = col.dict.Value(c)
				}
			}
			st.accs[g][j].Add(entries[col.codes[r]])
		}
	default:
		for r, g := range gids {
			if g < 0 {
				continue
			}
			st.accs[g][j].Add(col.col.Value(r))
		}
	}
}

// build emits one row per group in creation order: the key value at
// first occurrence, then each aggregate's Result coerced to the output
// schema's kind — the same construction groupAggregate performs.
func (st *encAggState) build(outSchema schema.Schema, nKeys int) (*table.Table, error) {
	b := table.NewBuilder(outSchema, len(st.keys))
	rowBuf := make([]value.Value, 0, outSchema.Len())
	for g := range st.keys {
		rowBuf = rowBuf[:0]
		if nKeys == 1 {
			rowBuf = append(rowBuf, st.keys[g])
		}
		for i := range st.aggs {
			want := outSchema.At(nKeys + i).Kind
			rowBuf = append(rowBuf, st.accs[g][i].Result(want))
		}
		if err := b.Append(rowBuf...); err != nil {
			return nil, fmt.Errorf("storage: encoded groupagg: %w", err)
		}
	}
	return b.Build(), nil
}
