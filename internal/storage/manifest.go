package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nexus/internal/schema"
	"nexus/internal/wire"
)

// The on-disk catalog. A manifest is one immutable, CRC-protected file
// (MANIFEST-<gen>) listing every dataset and the segment files holding
// its rows, plus the generation of the write-ahead log that continues
// it. The CURRENT file names the live manifest and is replaced
// atomically, so a flush either fully happens or leaves the previous
// catalog (and its WAL) authoritative — there is no intermediate state
// a crash can expose.

// Manifest magic: "NXMAN" + version byte + CRLF. v2 added the
// per-dataset OrderEpoch (v1 files decode with every epoch at 0); v3
// added per-dataset shared dictionaries (v2 files decode with none).
var (
	manMagic   = []byte("NXMAN\x03\r\n")
	manMagicV2 = []byte("NXMAN\x02\r\n")
	manMagicV1 = []byte("NXMAN\x01\r\n")
)

// SegmentRef is one segment file inside a dataset manifest. The zone
// maps are duplicated from the segment footer so pruning decisions need
// no file reads.
type SegmentRef struct {
	File string
	Meta SegmentMeta
}

// DatasetManifest is one dataset's durable description. OrderEpoch
// increments every time the dataset's row order restarts or is
// rewritten (replace, drop + recreate, compaction re-sort); row-offset
// resume tokens are only valid within the epoch they were minted in.
type DatasetManifest struct {
	Name       string
	Schema     schema.Schema
	OrderEpoch uint64
	Segments   []SegmentRef
	// Dicts are the dataset's shared dictionaries (sorted by column name
	// for a deterministic encoding), which v3 segments' PageEncDictShared
	// pages resolve codes through. Persisting them in the manifest means
	// a dictionary extension commits atomically with the segments that
	// reference it, and replicas receive dictionaries with the catalog.
	Dicts []*SharedDict
}

// DictSet builds the column-indexed view of the dataset's dictionaries.
func (dm *DatasetManifest) DictSet() DictSet {
	if len(dm.Dicts) == 0 {
		return nil
	}
	ds := make(DictSet, len(dm.Dicts))
	for _, d := range dm.Dicts {
		ds[d.Col] = d
	}
	return ds
}

// setDicts installs a dict set as the sorted slice the encoder wants.
func (dm *DatasetManifest) setDicts(ds DictSet) {
	dm.Dicts = dm.Dicts[:0]
	for _, d := range ds {
		dm.Dicts = append(dm.Dicts, d)
	}
	sort.Slice(dm.Dicts, func(i, j int) bool { return dm.Dicts[i].Col < dm.Dicts[j].Col })
}

// Rows sums the dataset's segment row counts.
func (dm *DatasetManifest) Rows() int64 {
	var n int64
	for _, s := range dm.Segments {
		n += s.Meta.Rows
	}
	return n
}

// Manifest is the root catalog object.
type Manifest struct {
	Gen      uint64 // manifest generation
	WalGen   uint64 // generation of the WAL continuing this manifest
	NextSeg  uint64 // next segment file number
	Datasets []DatasetManifest
}

// dataset returns the named dataset manifest, or nil.
func (m *Manifest) dataset(name string) *DatasetManifest {
	for i := range m.Datasets {
		if m.Datasets[i].Name == name {
			return &m.Datasets[i]
		}
	}
	return nil
}

// EncodeManifest serializes a manifest with the same magic|body|crc
// armor segments use.
func EncodeManifest(m *Manifest) []byte {
	var body wire.Encoder
	body.U64(m.Gen)
	body.U64(m.WalGen)
	body.U64(m.NextSeg)
	body.U32(uint32(len(m.Datasets)))
	for _, ds := range m.Datasets {
		body.Str(ds.Name)
		wire.PutSchema(&body, ds.Schema)
		body.U64(ds.OrderEpoch)
		body.U32(uint32(len(ds.Segments)))
		for _, s := range ds.Segments {
			body.Str(s.File)
			body.U64(s.Meta.SchemaHash)
			body.I64(s.Meta.Rows)
			putZones(&body, s.Meta.Zones)
		}
		body.U32(uint32(len(ds.Dicts)))
		for _, d := range ds.Dicts {
			body.Str(d.Col)
			body.U64(d.Epoch)
			body.U32(uint32(len(d.Vals)))
			for _, v := range d.Vals {
				body.Str(v)
			}
		}
	}
	var e wire.Encoder
	e.Raw(manMagic)
	e.U32(uint32(body.Len()))
	e.Raw(body.Bytes())
	e.U32(crc32.ChecksumIEEE(body.Bytes()))
	return e.Bytes()
}

// DecodeManifest parses and verifies a manifest encoding.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < len(manMagic)+8 {
		return nil, fmt.Errorf("storage: manifest too short")
	}
	matches := func(magic []byte) bool {
		for i, c := range magic {
			if b[i] != c {
				return false
			}
		}
		return true
	}
	v1 := matches(manMagicV1)
	v2 := matches(manMagicV2)
	if !v1 && !v2 && !matches(manMagic) {
		return nil, fmt.Errorf("storage: bad manifest magic")
	}
	d := wire.NewDecoder(b[len(manMagic):])
	bodyLen := int(d.U32())
	if bodyLen < 0 || bodyLen > d.Remaining()-4 {
		return nil, fmt.Errorf("storage: manifest body length %d exceeds file", bodyLen)
	}
	body := d.RawN(bodyLen)
	crc := d.U32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, fmt.Errorf("storage: manifest crc mismatch")
	}
	bd := wire.NewDecoder(body)
	m := &Manifest{Gen: bd.U64(), WalGen: bd.U64(), NextSeg: bd.U64()}
	nd := int(bd.U32())
	if bd.Err() != nil || nd > bd.Remaining() {
		return nil, fmt.Errorf("storage: bad manifest dataset count")
	}
	for i := 0; i < nd; i++ {
		ds := DatasetManifest{Name: bd.Str(), Schema: wire.GetSchema(bd)}
		if !v1 {
			ds.OrderEpoch = bd.U64()
		}
		ns := int(bd.U32())
		if bd.Err() != nil || ns > bd.Remaining() {
			return nil, fmt.Errorf("storage: bad manifest segment count")
		}
		for j := 0; j < ns; j++ {
			ref := SegmentRef{File: bd.Str()}
			ref.Meta.SchemaHash = bd.U64()
			ref.Meta.Rows = bd.I64()
			ref.Meta.Zones = getZones(bd)
			ds.Segments = append(ds.Segments, ref)
		}
		if !v1 && !v2 {
			nDicts := int(bd.U32())
			if bd.Err() != nil || nDicts < 0 || nDicts > bd.Remaining() {
				return nil, fmt.Errorf("storage: bad manifest dictionary count")
			}
			for j := 0; j < nDicts; j++ {
				dict := &SharedDict{Col: bd.Str(), Epoch: bd.U64()}
				nVals := int(bd.U32())
				if bd.Err() != nil || nVals < 0 || nVals > bd.Remaining() {
					return nil, fmt.Errorf("storage: dictionary %q length %d exceeds manifest", dict.Col, nVals)
				}
				dict.Vals = make([]string, nVals)
				for k := range dict.Vals {
					dict.Vals[k] = bd.Str()
				}
				if bd.Err() != nil {
					return nil, fmt.Errorf("storage: dictionary %q truncated", dict.Col)
				}
				ds.Dicts = append(ds.Dicts, dict)
			}
		}
		m.Datasets = append(m.Datasets, ds)
	}
	if err := bd.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// manifestName returns the file name of generation gen.
func manifestName(gen uint64) string { return fmt.Sprintf("MANIFEST-%06d", gen) }

// walName returns the WAL file name of generation gen.
func walName(gen uint64) string { return fmt.Sprintf("wal-%06d.log", gen) }

// segName returns the segment file name for sequence n.
func segName(n uint64) string { return fmt.Sprintf("seg-%06d.nxs", n) }

// writeManifest persists a manifest and atomically repoints CURRENT at
// it. Ordering matters: the manifest file (and every segment it names)
// is durable before CURRENT moves, so a crash between the two leaves
// the previous generation live and the new files as garbage for the
// next open to collect.
func writeManifest(dir string, m *Manifest) error {
	name := manifestName(m.Gen)
	if err := atomicWriteFile(filepath.Join(dir, name), EncodeManifest(m)); err != nil {
		return err
	}
	return atomicWriteFile(filepath.Join(dir, "CURRENT"), []byte(name+"\n"))
}

// readCurrentManifest loads the manifest CURRENT names. A missing
// CURRENT means a fresh directory: generation 0, empty catalog.
func readCurrentManifest(dir string) (*Manifest, error) {
	cur, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if os.IsNotExist(err) {
		return &Manifest{Gen: 0, WalGen: 0, NextSeg: 1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: read CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(cur))
	if name == "" || strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("storage: CURRENT names invalid manifest %q", name)
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("storage: read %s: %w", name, err)
	}
	m, err := DecodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", name, err)
	}
	return m, nil
}

// collectGarbage removes files a crash orphaned: segments no manifest
// references, manifests older than the live one, and WALs of dead
// generations. Called once on open, after recovery settles.
func collectGarbage(dir string, m *Manifest) {
	live := map[string]bool{
		"CURRENT":              true,
		manifestName(m.Gen):    true,
		walName(m.WalGen):      true,
		filepath.Base(ckptDir): true,
	}
	for _, ds := range m.Datasets {
		for _, s := range ds.Segments {
			live[s.File] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		if live[name] || ent.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "seg-") || strings.HasPrefix(name, "MANIFEST-") ||
			strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
