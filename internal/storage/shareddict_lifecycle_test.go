package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Shared-dictionary lifecycle: codes are append-only within an epoch
// (so segments written years apart agree on what code 2 means), survive
// crash recovery byte-for-byte, and are only ever reassigned by a
// whole-dataset compaction rewrite — which bumps the epoch so anything
// still holding old codes is refused, not silently misread.

func dictSnapshot(t *testing.T, st *Store, dataset, col string) (uint64, []string) {
	t.Helper()
	d := st.SharedDicts(dataset)[col]
	if d == nil {
		t.Fatalf("dataset %q has no shared dictionary for %q", dataset, col)
	}
	return d.Epoch, append([]string(nil), d.Vals...)
}

func segmentEncodings(t *testing.T, st *Store, dataset string) map[uint8]int {
	t.Helper()
	refs, _, ok := st.Segments(dataset)
	if !ok {
		t.Fatalf("dataset %q missing", dataset)
	}
	counts := map[uint8]int{}
	for _, ref := range refs {
		raw, err := os.ReadFile(filepath.Join(st.Dir(), ref.File))
		if err != nil {
			t.Fatal(err)
		}
		encs, err := SegmentPageEncodings(raw)
		if err != nil {
			t.Fatalf("%s: %v", ref.File, err)
		}
		for _, e := range encs {
			counts[e]++
		}
	}
	return counts
}

// TestSharedDictGrowsAcrossAppends pins the append-only contract: a
// later flush that introduces new values extends the dictionary in
// place — same epoch, existing codes untouched — and segments written
// against the shorter prefix still decode against the grown dictionary.
func TestSharedDictGrowsAcrossAppends(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	mk := func(rows int, tiers []string) *table.Table {
		b := table.NewBuilder(lowCardTable(1).Schema(), rows)
		for i := 0; i < rows; i++ {
			b.MustAppend(value.NewInt(int64(i/9)), value.NewString(tiers[i%len(tiers)]), value.NewFloat(float64(i%3)))
		}
		return b.Build()
	}

	first := mk(100, []string{"gold", "silver"})
	if err := st.Append("d", first); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	epoch1, vals1 := dictSnapshot(t, st, "d", "s")
	if epoch1 != dictEpochFirst {
		t.Fatalf("first epoch = %d, want %d", epoch1, dictEpochFirst)
	}

	second := mk(120, []string{"bronze", "gold", "iron"})
	if err := st.Append("d", second); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	epoch2, vals2 := dictSnapshot(t, st, "d", "s")
	if epoch2 != epoch1 {
		t.Fatalf("append bumped the dict epoch %d -> %d", epoch1, epoch2)
	}
	if len(vals2) <= len(vals1) {
		t.Fatalf("dictionary did not grow: %d -> %d entries", len(vals1), len(vals2))
	}
	for i, v := range vals1 {
		if vals2[i] != v {
			t.Fatalf("code %d reassigned %q -> %q within an epoch", i, v, vals2[i])
		}
	}

	if counts := segmentEncodings(t, st, "d"); counts[PageEncDictShared] == 0 {
		t.Fatalf("no shared-dict pages written (encodings: %v)", counts)
	}

	// Both generations of segments must read back through the one grown
	// dictionary.
	whole, err := first.Concat(second)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Dataset("d")
	if err != nil || !ok {
		t.Fatalf("read back: ok=%v err=%v", ok, err)
	}
	if !table.EqualRows(whole, got) {
		t.Fatal("rows changed after dictionary growth")
	}
}

// TestSharedDictSurvivesCrashRecovery freezes the store's directory
// mid-life — flushed segments plus a WAL tail, exactly what a SIGKILL
// leaves — and reopens the copy: WAL replay must restore the same rows
// and the dictionary with identical codes and epoch, so pre-crash
// segments remain readable.
func TestSharedDictSurvivesCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if err := st.Append("d", lowCardTable(130)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tail rows live only in the WAL at crash time.
	tail := lowCardTable(40)
	if err := st.Append("d", tail); err != nil {
		t.Fatal(err)
	}
	epoch0, vals0 := dictSnapshot(t, st, "d", "s")
	want, ok, err := st.Dataset("d")
	if err != nil || !ok {
		t.Fatalf("pre-crash read: ok=%v err=%v", ok, err)
	}

	// The crash image: every durable byte as it sits right now, with the
	// original store still open (nothing it would write on Close may be
	// required for recovery).
	img := t.TempDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(img, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2, err := Open(img)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer st2.Close()
	epoch1, vals1 := dictSnapshot(t, st2, "d", "s")
	if epoch1 != epoch0 {
		t.Fatalf("recovery changed dict epoch %d -> %d", epoch0, epoch1)
	}
	if len(vals1) != len(vals0) {
		t.Fatalf("recovery changed dict size %d -> %d", len(vals0), len(vals1))
	}
	for i := range vals0 {
		if vals1[i] != vals0[i] {
			t.Fatalf("recovery reassigned code %d: %q -> %q", i, vals0[i], vals1[i])
		}
	}
	got, ok, err := st2.Dataset("d")
	if err != nil || !ok {
		t.Fatalf("post-recovery read: ok=%v err=%v", ok, err)
	}
	if !table.EqualRows(want, got) {
		t.Fatal("rows differ after WAL replay")
	}
}

// TestCompactionRebuildBumpsDictEpoch pins the one legal reassignment
// point: a clustering rewrite starts fresh dictionaries at epoch+1, and
// segments encoded against the old epoch are refused with the stale-
// dictionary error rather than misread through the new code space.
func TestCompactionRebuildBumpsDictEpoch(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for i := 0; i < 3; i++ {
		if err := st.Append("d", lowCardTable(100)); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	epoch0, _ := dictSnapshot(t, st, "d", "s")
	want, _, err := st.Dataset("d")
	if err != nil {
		t.Fatal(err)
	}

	// Keep one pre-rewrite segment's bytes: after the rebuild its codes
	// belong to a dead epoch.
	refs, _, _ := st.Segments("d")
	oldRaw, err := os.ReadFile(filepath.Join(dir, refs[0].File))
	if err != nil {
		t.Fatal(err)
	}

	stats, err := st.Compact(CompactOptions{ClusterBy: map[string]string{"d": "s"}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Merged == 0 {
		t.Fatalf("clustering rewrite merged nothing: %+v", stats)
	}
	epoch1, _ := dictSnapshot(t, st, "d", "s")
	if epoch1 != epoch0+1 {
		t.Fatalf("rewrite moved epoch %d -> %d, want %d", epoch0, epoch1, epoch0+1)
	}

	// Old-epoch segment vs new dictionaries: refused as stale.
	if _, err := DecodeSegmentDicts(oldRaw, st.SharedDicts("d")); !isStaleDict(err) {
		t.Fatalf("old-epoch segment decoded as %v, want stale-dict refusal", err)
	}

	// The rewritten dataset still holds the same multiset of rows (order
	// changed by clustering), readable through the new dictionary.
	got, _, err := st.Dataset("d")
	if err != nil {
		t.Fatal(err)
	}
	if want.NumRows() != got.NumRows() {
		t.Fatalf("rewrite changed row count %d -> %d", want.NumRows(), got.NumRows())
	}
	if !table.EqualRows(sortRows(want), sortRows(got)) {
		t.Fatal("rewrite changed row contents")
	}
}

// sortRows returns the table's rows in a canonical order (by encoded
// key of the whole row) for order-insensitive comparison.
func sortRows(tbl *table.Table) *table.Table {
	n := tbl.NumRows()
	keys := make([]string, n)
	idx := make([]int, n)
	for r := 0; r < n; r++ {
		var buf []byte
		for c := 0; c < tbl.NumCols(); c++ {
			buf = value.AppendKey(buf, tbl.Value(r, c))
		}
		keys[r] = string(buf)
		idx[r] = r
	}
	for i := 1; i < n; i++ { // insertion sort: test-sized inputs
		for j := i; j > 0 && keys[idx[j]] < keys[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	b := table.NewBuilder(tbl.Schema(), n)
	row := make([]value.Value, tbl.NumCols())
	for _, r := range idx {
		for c := range row {
			row[c] = tbl.Value(r, c)
		}
		b.MustAppend(row...)
	}
	return b.Build()
}

// TestCompactionReChoosesEncodings pins the satellite fix: segments
// flushed as under-64-row plain pages must come out of a merge with the
// encodings the merged shape earns — RLE for the clustered key, shared
// dict for the low-cardinality strings — not the inputs' plain pages.
func TestCompactionReChoosesEncodings(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// 8 segments × 20 rows: every page plain (below the 64-row floor).
	for i := 0; i < 8; i++ {
		if err := st.Append("d", lowCardTable(20)); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	before := segmentEncodings(t, st, "d")
	if len(before) != 1 || before[PageEncPlain] == 0 {
		t.Fatalf("seed segments should be all-plain, got %v", before)
	}

	if _, err := st.Compact(CompactOptions{ClusterBy: map[string]string{"d": "s"}}); err != nil {
		t.Fatal(err)
	}
	after := segmentEncodings(t, st, "d")
	// 160 rows sorted by s: the string column runs in 4 blocks (RLE),
	// k/f have few distinct values (dict family). Nothing should need to
	// stay plain, but the load-bearing claim is that non-plain encodings
	// appear at all.
	if after[PageEncRLE] == 0 {
		t.Fatalf("merge did not re-choose RLE for the clustered column: %v", after)
	}
	if after[PageEncDict]+after[PageEncDictShared] == 0 {
		t.Fatalf("merge did not re-choose dictionary encodings: %v", after)
	}
}

// TestEncodedExecCompactionRaceSoak runs encoded scans and aggregates
// against continuous append/flush/compact churn. Run with -race: the
// assertions are "no data race, no error, no stale result escapes" —
// readSnapshot retries stale-dict refusals internally, so readers must
// never observe one.
func TestEncodedExecCompactionRaceSoak(t *testing.T) {
	dir := t.TempDir()
	eng, err := OpenEngine("disk", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rng := rand.New(rand.NewSource(17))
	var next int64
	if err := eng.Append("d", genDiffTable(rng, 200, &next)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	sch := diffSchema()

	mkScan := func() core.Node {
		sc, _ := core.NewScan("d", sch)
		f, _ := core.NewFilter(sc, expr.Eq(expr.Column("tier"), expr.CStr("gold")))
		p, _ := core.NewProject(f, []string{"id", "tier"})
		return p
	}
	mkAgg := func() core.Node {
		sc, _ := core.NewScan("d", sch)
		f, _ := core.NewFilter(sc, expr.Gt(expr.Column("bucket"), expr.CInt(1)))
		g, _ := core.NewGroupAgg(f, []string{"tier"}, []core.AggSpec{
			{Func: core.AggCount, As: "n"},
			{Func: core.AggSum, Arg: expr.Column("score"), As: "s"},
		})
		return g
	}

	const readers = 4
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := eng.Execute(mkScan()); err != nil {
					errs <- err
					return
				}
				if _, err := eng.Execute(mkAgg()); err != nil {
					errs <- err
					return
				}
				if i%10 == 0 {
					eng.DropCache()
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(19))
		var wnext int64 = 1 << 20
		for i := 0; i < 15; i++ {
			if err := eng.Append("d", genDiffTable(wrng, 64, &wnext)); err != nil {
				errs <- err
				return
			}
			if err := eng.Flush(); err != nil {
				errs <- err
				return
			}
			if i%3 == 2 {
				if _, err := eng.Compact(CompactOptions{ClusterBy: map[string]string{"d": "tier"}}); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("soak: %v", err)
	}
	if eng.EncodedScans() == 0 && eng.EncodedAggs() == 0 {
		t.Fatal("soak never exercised the encoded paths")
	}
}
