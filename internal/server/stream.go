package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/core"
	"nexus/internal/obs"
	"nexus/internal/obs/trace"
	"nexus/internal/schema"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// ErrSubscriberGone is the typed error a subscription pipeline stops
// with when its subscriber's connection disappears: queued result
// batches are not silently dropped — every path that would have
// delivered them reports this error instead.
var ErrSubscriberGone = errors.New("server: subscriber gone")

// PublishWindow is the initial number of event batches a subscriber may
// publish into a push-source subscription before waiting for credit.
// The server grants one credit back per batch its pipeline consumes.
const PublishWindow = 4

// subSession is one long-running subscription hosted on one connection.
type subSession struct {
	id     uint64
	cc     *connCtx
	cancel context.CancelFunc
	done   chan struct{}

	// durable carries the subscription descriptor when the client asked
	// for server-side checkpoints (wire.StreamSub.Durable) and the host
	// has a checkpoint store; nil otherwise.
	durable *wire.StreamSub

	// dataset names the replayed dataset of a dataset-mode subscription
	// ("" for push sources). Resume offsets count rows of the replay in
	// its storage order, so the compactor must not reorder the dataset
	// while the subscription (or its checkpoint) is alive — see
	// Server.ResumeSensitiveDatasets.
	dataset string

	// epoch is the dataset's order epoch at subscribe time (0 for push
	// sources and providers without epoch tracking). It is stamped into
	// every state the session hands out, and a resume whose state
	// carries a different epoch is refused — the row offset counts rows
	// of an ordering that no longer exists.
	epoch uint64

	// subGauge is the per-dataset active-subscription gauge child; set
	// once the subscription is acknowledged, decremented when run ends.
	subGauge *obs.Gauge

	// sp is the server-side subscription span (nil when the subscribe
	// carried no trace context); op is the live-ops registry entry.
	// Both stay open for the life of the subscription and close with
	// its terminal status.
	sp *trace.Span
	op *trace.Op

	// admRelease returns this subscription's quota slot to its tenant
	// (nil when the host has no admission control). Called exactly once:
	// by run's defer, or by handleSubscribeStream if run never starts.
	admRelease func()

	// ckptStale counts consecutive failed periodic checkpoint saves —
	// nonzero means the durable checkpoint on disk lags the stream and a
	// resume will replay the gap (at-least-once holds either way).
	ckptStale atomic.Int64

	mu        sync.Mutex
	cond      *sync.Cond
	credit    int64 // result batches the subscriber will still accept
	gone      bool  // connection lost
	closeMode uint8 // wire.Close* once the subscriber asked to stop; 0 while running
	err       error // terminal pipeline error

	push *pushSource // non-nil for StreamSrcPush subscriptions
}

// handleSubscribeStream validates a subscription request, acknowledges
// it, and starts the pipeline. The connection stays in its read loop for
// credits, published batches and close requests; results flow back from
// the pipeline goroutine under the connection's write lock.
func (cc *connCtx) handleSubscribeStream(payload []byte) error {
	sub, err := wire.DecodeSubscribeStream(payload)
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	sp := trace.Default.StartChild(traceCtx(sub.Trace), "server.subscribe")
	part := int32(-1)
	if sub.PartCnt > 1 {
		part = int32(sub.PartIdx)
	}
	sp.Set(trace.String("dataset", sub.Dataset),
		trace.Int("partition", int64(part)),
		trace.String("durable", sub.Durable),
		trace.Bool("resume", sub.Resume != nil))
	dsLabel := sub.Dataset
	if sub.SourceKind == wire.StreamSrcPush {
		dsLabel = "(push)"
	}
	op := trace.Ops().Begin("subscription", cc.tenantName(), dsLabel, part, sp.Context())
	op.SetCredit(int64(sub.Credit))
	refuse := func(err error) error {
		op.End(err)
		sp.End(err)
		return cc.writeFrame(wire.MsgError, wire.EncodeError(sub.ID, err.Error()))
	}
	cc.mu.Lock()
	_, dup := cc.subs[sub.ID]
	cc.mu.Unlock()
	if dup {
		return refuse(fmt.Errorf("server: duplicate subscription id %d", sub.ID))
	}

	s := &subSession{id: sub.ID, cc: cc, done: make(chan struct{}), credit: int64(sub.Credit), sp: sp, op: op}
	s.cond = sync.NewCond(&s.mu)

	// Admission: shedding and the tenant's subscription quota are checked
	// before any pipeline work. The slot is held from here; every exit
	// that does not hand the subscription to run must give it back.
	if cc.adm != nil {
		admStart := time.Now()
		at := cc.tenantState()
		r := cc.adm.admitSubscription(at)
		if sp != nil {
			aerr := error(nil)
			if r != nil {
				aerr = errors.New(r.msg)
			}
			trace.Default.Emit(sp.Context(), "server.admission", admStart, time.Since(admStart), nil, aerr)
		}
		if r != nil {
			op.End(errors.New(r.msg))
			sp.End(errors.New(r.msg))
			return cc.refuseFrame(sub.ID, r)
		}
		s.admRelease = func() { cc.adm.releaseSubscription(at) }
	}
	started := false
	defer func() {
		if !started && s.admRelease != nil {
			s.admRelease()
		}
	}()
	if sub.SourceKind == wire.StreamSrcDataset {
		s.dataset = sub.Dataset
		if ep, ok := cc.prov.(orderEpochProvider); ok {
			s.epoch = ep.DatasetOrderEpoch(sub.Dataset)
		}
	}

	// A durable subscription with no explicit resume picks up from the
	// server-side checkpoint: the stored descriptor's Resume is the
	// state the last checkpoint (or disconnect) persisted. Since the
	// resume point lives only here — the re-subscribing publisher knows
	// nothing of it — push sources must also skip the consumed prefix
	// server-side (fromCkpt), relying on the publisher replaying its
	// rows deterministically from the start.
	fromCkpt := false
	if sub.Durable != "" && cc.ckpt != nil && sub.Resume == nil {
		data, ok, err := cc.ckpt.LoadCheckpoint(sub.Durable)
		if err != nil {
			return refuse(err)
		}
		if ok {
			stored, err := wire.DecodeSubscribeStream(data)
			if err != nil {
				return refuse(fmt.Errorf("server: checkpoint %q: %w", sub.Durable, err))
			}
			sub.Resume = stored.Resume
			fromCkpt = sub.Resume != nil
		}
	}

	// A dataset replay's resume offset counts rows in the dataset's
	// storage order, which compaction, replace and drop+recreate all
	// change (each bumps the order epoch). A state captured under a
	// different epoch would skip the wrong prefix, so it is refused
	// cleanly — wherever the state came from, a client-held ResumeToken
	// or this server's own checkpoint. Providers without epoch tracking
	// report 0 on both sides and are never refused.
	if sub.Resume != nil && sub.SourceKind == wire.StreamSrcDataset && sub.Resume.Epoch != s.epoch {
		metStaleResume.Inc()
		return refuse(fmt.Errorf("server: stale resume state for dataset %q: captured at order epoch %d, dataset is now at epoch %d (rows were re-ordered by compaction, replace or re-create); restart the stream from scratch", sub.Dataset, sub.Resume.Epoch, s.epoch))
	}

	src, err := cc.buildSource(sub, s, fromCkpt)
	if err != nil {
		return refuse(err)
	}
	p, err := stream.FromSpec(src, sub.Spec)
	if err != nil {
		return refuse(err)
	}
	p.WithCache(cc.cache)
	if sub.Resume != nil && !p.Windowed() && len(sub.Resume.Windows) > 0 {
		return refuse(fmt.Errorf("server: resume state carries windows but the pipeline is not windowed"))
	}
	if sub.Durable != "" && cc.ckpt != nil {
		s.durable = &sub
		p.WithCheckpoint(cc.ckptEvery, func(st *stream.State) error {
			st.Epoch = s.epoch
			if err := cc.saveSubCheckpoint(&sub, st); err != nil {
				// A failed periodic save must not kill a healthy stream:
				// the previous checkpoint is intact (saves replace
				// atomically), so a resume just replays a little more.
				// Count it, log it, note the staleness, and keep going.
				metCkptSaveErrs.Inc()
				n := s.ckptStale.Add(1)
				cc.logf("server: subscription %d: checkpoint save failed (%d consecutive, resume falls back to previous): %v", s.id, n, err)
				return nil
			}
			s.ckptStale.Store(0)
			return nil
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	cc.mu.Lock()
	cc.subs[sub.ID] = s
	cc.mu.Unlock()

	if err := cc.writeFrame(wire.MsgSubAck, wire.EncodeSubAck(sub.ID, p.OutputSchema())); err != nil {
		cc.removeSub(sub.ID)
		cancel()
		op.End(err)
		sp.End(err)
		return err
	}
	label := s.dataset
	if label == "" {
		label = "(push)"
	}
	s.subGauge = metSubs.With(label)
	s.subGauge.Inc()
	started = true
	go s.run(ctx, p, sub.Resume)
	return nil
}

// orderEpochProvider is implemented by providers that track a per-dataset
// order epoch (the durable engine); others leave every epoch at 0.
type orderEpochProvider interface {
	DatasetOrderEpoch(name string) uint64
}

// buildSource resolves the subscription's event source: a (possibly
// partition-filtered, possibly resumed) replay of a stored dataset, or a
// channel fed by the subscriber's published batches. fromCkpt marks a
// resume state restored from the server's own checkpoint, whose offset
// the publisher cannot know.
func (cc *connCtx) buildSource(sub wire.StreamSub, s *subSession, fromCkpt bool) (stream.Source, error) {
	var skip int64
	if sub.Resume != nil {
		skip = sub.Resume.Events
	}
	var src stream.Source
	switch sub.SourceKind {
	case wire.StreamSrcDataset:
		sch, ok := cc.prov.DatasetSchema(sub.Dataset)
		if !ok {
			return nil, fmt.Errorf("server: no dataset %q", sub.Dataset)
		}
		scan, err := core.NewScan(sub.Dataset, sch)
		if err != nil {
			return nil, err
		}
		prov := cc.prov
		src = stream.NewLazyReplay(sch, sub.TimeCol, func() (*table.Table, error) {
			return prov.Execute(scan)
		})
	case wire.StreamSrcPush:
		if sub.SrcSchema.Len() == 0 {
			return nil, fmt.Errorf("server: push subscription carries no source schema")
		}
		s.push = newPushSource(sub.SrcSchema, sub.TimeCol, s)
		src = s.push
	default:
		return nil, fmt.Errorf("server: bad stream source kind %d", sub.SourceKind)
	}
	if sub.PartCnt > 1 {
		// Server-side partition filter: this provider streams only its
		// share of the keyspace. Push subscriptions are already split by
		// the client, but filtering again is harmless and keeps the
		// invariant local.
		var err error
		src, err = stream.NewPartition(src, sub.PartKey, sub.PartIdx, sub.PartCnt)
		if err != nil {
			return nil, err
		}
	}
	// Dataset replays skip the rows a resumed stream already consumed.
	// The skip wraps the partition filter: State.Events counts the rows
	// the pipeline consumed, which are post-filter rows. Push sources
	// are normally not skipped — the publisher decides where to pick up
	// (ResumeFrom tokens skip client-side) — except when the resume
	// state was restored from a server checkpoint the publisher has
	// never seen: then the consumed prefix must be dropped here, or it
	// would fold into the restored windows a second time.
	if sub.SourceKind == wire.StreamSrcDataset || fromCkpt {
		src = stream.NewSkip(src, skip)
	}
	return src, nil
}

// saveSubCheckpoint persists a subscription's descriptor with its
// current state as the durable checkpoint — exactly the bytes a
// re-subscription needs to resume.
func (cc *connCtx) saveSubCheckpoint(sub *wire.StreamSub, st *stream.State) error {
	c := *sub
	c.Resume = st
	return cc.ckpt.SaveCheckpoint(sub.Durable, wire.EncodeSubscribeStream(c))
}

// run drives the pipeline and sends the terminal frame. Exactly one
// terminal frame per subscription: WindowState for a detach, StreamEnd
// for end-of-stream or cancel, Error otherwise.
func (s *subSession) run(ctx context.Context, p *stream.Pipeline, resume *stream.State) {
	defer close(s.done)
	defer s.cc.removeSub(s.id)
	defer s.subGauge.Dec()
	if s.admRelease != nil {
		defer s.admRelease()
	}
	sink := &subSink{s: s}
	stats, state, err := p.RunState(ctx, sink, resume)
	if state != nil {
		// Stamp the order epoch before the state leaves the session — a
		// resume under a re-ordered dataset must be refused, not let
		// through to skip the wrong rows.
		state.Epoch = s.epoch
	}

	s.mu.Lock()
	mode := s.closeMode
	gone := s.gone
	s.mu.Unlock()

	// Durable subscriptions: a completed job retires its checkpoint —
	// both a clean end-of-stream and an explicit cancel (the subscriber
	// deliberately finished the job without asking for state; a stale
	// checkpoint would otherwise make some future subscription under the
	// same name silently "resume" a job nobody is running). A detach
	// persists the final state instead — that is the whole point of
	// detaching — and so does every involuntary exit (disconnect,
	// pipeline error), so a reconnecting subscriber or a restarted
	// server resumes where this run stopped.
	if s.durable != nil {
		completed := (err == nil && mode == 0 && !gone) || mode == wire.CloseCancel
		switch {
		case mode == wire.CloseDetach && state != nil:
			if serr := s.cc.saveSubCheckpoint(s.durable, state); serr != nil {
				metCkptSaveErrs.Inc()
				s.cc.logf("server: subscription %d: save checkpoint: %v", s.id, serr)
			}
		case completed:
			if derr := s.cc.ckpt.DeleteCheckpoint(s.durable.Durable); derr != nil {
				s.cc.logf("server: subscription %d: retire checkpoint: %v", s.id, derr)
			}
		case state != nil:
			if serr := s.cc.saveSubCheckpoint(s.durable, state); serr != nil {
				metCkptSaveErrs.Inc()
				s.cc.logf("server: subscription %d: save checkpoint: %v", s.id, serr)
			}
		}
	}

	switch {
	case gone || errors.Is(err, ErrSubscriberGone):
		s.fail(ErrSubscriberGone)
		s.cc.logf("server: subscription %d: %v", s.id, ErrSubscriberGone)
	case mode == wire.CloseDetach:
		// The subscriber detached: hand the window state over so it can
		// resume here or migrate to another provider. A pipeline that
		// never produced state (detached before consuming anything) still
		// gets a real one — the empty state must carry this dataset's
		// order epoch, or the client's ResumeToken would resume epoch 0
		// against a dataset whose rows may have been re-ordered since.
		if state == nil {
			state = &stream.State{MaxTime: minInt64, Watermark: minInt64, Epoch: s.epoch}
		}
		s.cc.logf("server: subscription %d detached with %d open windows at event %d", s.id, len(state.Windows), state.Events)
		s.fail(s.cc.writeFrame(wire.MsgWindowState, wire.EncodeWindowState(s.id, state)))
	case mode == wire.CloseCancel:
		s.fail(s.cc.writeFrame(wire.MsgStreamEnd, wire.EncodeStreamEnd(s.id, stats)))
	case err != nil:
		s.fail(err)
		s.cc.logf("server: subscription %d failed: %v", s.id, err)
		_ = s.cc.writeFrame(wire.MsgError, wire.EncodeError(s.id, err.Error()))
	default:
		s.fail(s.cc.writeFrame(wire.MsgStreamEnd, wire.EncodeStreamEnd(s.id, stats)))
	}

	// Close the live-ops entry and the subscription span with the
	// terminal status: a vanished subscriber ends the span with
	// ErrSubscriberGone rather than leaking it open in the ring.
	terr := s.Err()
	s.op.End(terr)
	s.sp.Set(trace.Int("events", stats.Events),
		trace.Int("windows", stats.Windows),
		trace.Int("out_rows", stats.OutRows),
		trace.Bool("detached", mode == wire.CloseDetach))
	s.sp.End(terr)
}

// fail records the session's terminal error (first one wins). Gone-
// subscriber errors are also noted on the connection, so the read loop's
// cleanup reports them even if this session has already removed itself.
func (s *subSession) fail(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	if errors.Is(err, ErrSubscriberGone) {
		s.cc.noteSubErr(err)
	}
}

// Err returns the terminal error, if any (valid after done).
func (s *subSession) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// addCredit grants the pipeline n more result batches.
func (s *subSession) addCredit(n uint32) {
	s.mu.Lock()
	s.credit += int64(n)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// markGone flags the subscriber's connection as lost and releases every
// wait, so queued batches fail with ErrSubscriberGone instead of
// vanishing.
func (s *subSession) markGone() {
	s.mu.Lock()
	s.gone = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.cancel()
}

// close handles a MsgStreamClose from the subscriber.
func (s *subSession) close(mode uint8) {
	switch mode {
	case wire.CloseEndInput:
		if s.push != nil {
			s.push.endInput()
		}
	case wire.CloseCancel, wire.CloseDetach:
		s.mu.Lock()
		s.closeMode = mode
		s.mu.Unlock()
		s.cond.Broadcast()
		s.cancel()
	}
}

// stopping reports whether the session should stop emitting.
func (s *subSession) stopping() (uint8, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeMode, s.gone
}

// subSink delivers pipeline output over the wire under credit-based flow
// control and piggybacks watermark progress.
type subSink struct {
	s   *subSession
	seq uint64
	// mark is the latest watermark the pipeline reported; written and
	// read only from the pipeline goroutine.
	mark   int64
	haveWM bool
}

// Emit implements stream.Sink: wait for credit, then push the batch.
func (k *subSink) Emit(t *table.Table) error {
	emitStart := time.Now()
	s := k.s
	s.mu.Lock()
	if s.credit <= 0 && !s.gone && s.closeMode == 0 {
		// Only actual waits are observed, so the histogram's count is
		// "emissions that stalled on credit", not "emissions".
		stallStart := time.Now()
		for s.credit <= 0 && !s.gone && s.closeMode == 0 {
			s.cond.Wait()
		}
		metCreditStall.ObserveSince(stallStart)
		if s.cc.adm != nil {
			// The same wait feeds admission's sliding-window stall tail,
			// which drives subscription shedding.
			s.cc.adm.noteStall(time.Since(stallStart))
		}
	}
	if s.gone {
		s.mu.Unlock()
		return ErrSubscriberGone
	}
	if s.closeMode != 0 {
		s.mu.Unlock()
		return context.Canceled
	}
	s.credit--
	s.mu.Unlock()

	mark := k.mark
	if !k.haveWM {
		mark = minInt64
	}
	k.seq++
	payload := wire.EncodeStreamBatch(s.id, k.seq, mark, t)
	if err := s.cc.writeFrame(wire.MsgStreamBatch, payload); err != nil {
		// A result we could not deliver means the subscriber is gone —
		// whether or not the read loop has noticed the dead connection
		// yet.
		return fmt.Errorf("%w: %v", ErrSubscriberGone, err)
	}
	s.op.AddRows(int64(t.NumRows()))
	s.op.AddBytes(int64(len(payload)))
	s.op.SetCredit(s.creditLeft())
	if k.haveWM {
		s.op.SetWatermark(mark)
	}
	metEmitSeconds.ObserveSince(emitStart)
	return nil
}

// creditLeft reads the subscriber's remaining credit for introspection.
func (s *subSession) creditLeft() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.credit
}

// Progress implements stream.ProgressSink: watermark advances reach the
// subscriber even when no window closes, so a federated merge can
// release windows on idle partitions.
func (k *subSink) Progress(mark int64) error {
	k.mark = mark
	k.haveWM = true
	k.s.op.SetWatermark(mark)
	if _, gone := k.s.stopping(); gone {
		return ErrSubscriberGone
	}
	if err := k.s.cc.writeFrame(wire.MsgWatermark, wire.EncodeWatermark(k.s.id, mark)); err != nil {
		return fmt.Errorf("%w: %v", ErrSubscriberGone, err)
	}
	return nil
}

const minInt64 = -1 << 63

// pushSource adapts subscriber-published batches into a stream
// BatchSource. Publishes land in a bounded buffer sized to the publish
// window; a forwarder hands them to the pipeline and returns one credit
// per consumed batch, so the connection's read loop never blocks on a
// slow pipeline (which would deadlock result-credit processing).
type pushSource struct {
	sch     schema.Schema
	timeCol string
	s       *subSession

	buf chan *table.Table

	mu     sync.Mutex
	closed bool
	err    error
}

func newPushSource(sch schema.Schema, timeCol string, s *subSession) *pushSource {
	return &pushSource{sch: sch, timeCol: timeCol, s: s, buf: make(chan *table.Table, PublishWindow+1)}
}

// Schema implements stream.Source.
func (p *pushSource) Schema() schema.Schema { return p.sch }

// TimeCol implements stream.Source.
func (p *pushSource) TimeCol() string { return p.timeCol }

// Err implements stream.Source.
func (p *pushSource) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// publish enqueues one published batch; the publish window guarantees
// space, so a full buffer means the client overran its credit.
func (p *pushSource) publish(t *table.Table) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return fmt.Errorf("server: publish after end of input")
	}
	select {
	case p.buf <- t:
		return nil
	default:
		return fmt.Errorf("server: publish overran credit window")
	}
}

// endInput ends the stream; the pipeline drains what was published.
func (p *pushSource) endInput() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.buf)
	}
	p.mu.Unlock()
}

// OpenBatches implements stream.BatchSource: forward buffered publishes,
// granting one publish credit per batch the pipeline takes.
func (p *pushSource) OpenBatches(ctx context.Context, batchSize int) <-chan *table.Table {
	out := make(chan *table.Table)
	go func() {
		defer close(out)
		for {
			var t *table.Table
			var ok bool
			select {
			case t, ok = <-p.buf:
			case <-ctx.Done():
				return
			}
			if !ok {
				return
			}
			select {
			case out <- t:
				// The pipeline owns the batch now; its buffer slot is
				// free — return the credit to the publisher.
				_ = p.s.cc.writeFrame(wire.MsgCredit, wire.EncodeCredit(p.s.id, 1))
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Open implements stream.Source row-wise (the pipeline prefers
// OpenBatches; this exists to satisfy the interface).
func (p *pushSource) Open(ctx context.Context) <-chan stream.Row {
	batches := p.OpenBatches(ctx, 0)
	ch := make(chan stream.Row, 256)
	go func() {
		defer close(ch)
		for t := range batches {
			for i := 0; i < t.NumRows(); i++ {
				select {
				case ch <- t.Row(i, nil):
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return ch
}
