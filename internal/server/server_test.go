package server

import (
	"net"
	"testing"

	"nexus/internal/datagen"
	"nexus/internal/engines/relational"
	"nexus/internal/wire"
)

func startServer(t *testing.T) (*Server, *relational.Engine) {
	t.Helper()
	eng := relational.New("srv")
	if err := eng.Store("sales", datagen.Sales(1, 200, 20, 10)); err != nil {
		t.Fatal(err)
	}
	s, err := Serve(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Logf = t.Logf
	t.Cleanup(s.Close)
	return s, eng
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestHelloExchange(t *testing.T) {
	s, eng := startServer(t)
	conn := dial(t, s.Addr())
	if _, err := wire.WriteFrame(conn, wire.MsgHello, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgHelloAck {
		t.Fatalf("got %v", typ)
	}
	h, err := wire.DecodeHelloAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "srv" || len(h.Datasets) != 1 || h.Datasets[0].Name != "sales" {
		t.Fatalf("hello = %+v", h)
	}
	if h.CapBits != eng.Capabilities().Bits() {
		t.Fatal("capability bits differ")
	}
}

func TestMalformedPayloadSurvives(t *testing.T) {
	s, _ := startServer(t)
	conn := dial(t, s.Addr())
	// Garbage execute payload: the server must reply MsgError, not die.
	if _, err := wire.WriteFrame(conn, wire.MsgExecute, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("got %v, want error", typ)
	}
	// The same connection must still answer a hello.
	if _, err := wire.WriteFrame(conn, wire.MsgHello, nil); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err = wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgHelloAck {
		t.Fatalf("connection dead after error: %v %v", typ, err)
	}
}

func TestStoreDropRoundTrip(t *testing.T) {
	s, eng := startServer(t)
	conn := dial(t, s.Addr())
	tab := datagen.Customers(2, 10)
	if _, err := wire.WriteFrame(conn, wire.MsgStore, wire.EncodeStore("c", tab)); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgAck {
		t.Fatalf("store reply %v %v", typ, err)
	}
	if _, ok := eng.Dataset("c"); !ok {
		t.Fatal("store lost")
	}
	if _, err := wire.WriteFrame(conn, wire.MsgDrop, wire.EncodeDrop("c")); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err = wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgAck {
		t.Fatalf("drop reply %v %v", typ, err)
	}
	if _, ok := eng.Dataset("c"); ok {
		t.Fatal("drop ignored")
	}
}

func TestPushTableBetweenServers(t *testing.T) {
	_, engA := startServer(t)
	sB, engB := startServer(t)
	_ = engA
	tab := datagen.Products(3, 15)
	bytes, err := PushTable(sB.Addr(), "products", tab)
	if err != nil {
		t.Fatal(err)
	}
	if bytes <= 0 {
		t.Fatal("no bytes accounted")
	}
	got, ok := engB.Dataset("products")
	if !ok || got.NumRows() != 15 {
		t.Fatal("push did not land")
	}
}

func TestCloseStopsAccepting(t *testing.T) {
	s, _ := startServer(t)
	addr := s.Addr()
	s.Close()
	if _, err := net.Dial("tcp", addr); err == nil {
		// A dial race can succeed just as the listener closes; a
		// subsequent read must fail.
		conn, _ := net.Dial("tcp", addr)
		if conn != nil {
			conn.Close()
		}
	}
}

// memCkpt is an in-memory CheckpointStore for tests.
type memCkpt struct{ m map[string][]byte }

func (c *memCkpt) SaveCheckpoint(k string, d []byte) error {
	c.m[k] = append([]byte(nil), d...)
	return nil
}
func (c *memCkpt) LoadCheckpoint(k string) ([]byte, bool, error) { d, ok := c.m[k]; return d, ok, nil }
func (c *memCkpt) DeleteCheckpoint(k string) error               { delete(c.m, k); return nil }
func (c *memCkpt) Checkpoints() ([]string, error) {
	var keys []string
	for k := range c.m {
		keys = append(keys, k)
	}
	return keys, nil
}

// TestResumeSensitiveDatasets pins the compactor guard: datasets named
// by stored dataset-mode durable checkpoints are reported (their resume
// positions are row offsets into the replay's storage order), while
// push-mode checkpoints mark nothing.
func TestResumeSensitiveDatasets(t *testing.T) {
	cs := &memCkpt{m: map[string][]byte{}}
	cs.m["job"] = wire.EncodeSubscribeStream(wire.StreamSub{
		ID: 1, SourceKind: wire.StreamSrcDataset, Dataset: "sales",
		TimeCol: "sale_id", Durable: "job", Spec: windowedSpec(t),
	})
	cs.m["pjob"] = wire.EncodeSubscribeStream(wire.StreamSub{
		ID: 2, SourceKind: wire.StreamSrcPush, Durable: "pjob", Spec: windowedSpec(t),
	})
	eng := relational.New("srv")
	if err := eng.Store("sales", datagen.Sales(1, 100, 10, 5)); err != nil {
		t.Fatal(err)
	}
	s, err := ServeWithCheckpoints(eng, "127.0.0.1:0", cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Logf = func(string, ...any) {}
	defer s.Close()

	got, err := s.ResumeSensitiveDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if !got["sales"] {
		t.Fatal("dataset-mode checkpoint did not mark its dataset resume-sensitive")
	}
	if len(got) != 1 {
		t.Fatalf("resume-sensitive set = %v, want only sales", got)
	}
	// An undecodable checkpoint fails SAFE: the caller gets an error and
	// must veto compaction entirely, not proceed with a partial set.
	cs.m["junk"] = []byte("not a subscription")
	if _, err := s.ResumeSensitiveDatasets(); err == nil {
		t.Fatal("corrupt checkpoint did not surface an error")
	}
	cs.DeleteCheckpoint("junk")
	// Retiring the checkpoint releases the dataset for compaction.
	cs.DeleteCheckpoint("job")
	if got, err := s.ResumeSensitiveDatasets(); err != nil || len(got) != 0 {
		t.Fatalf("resume-sensitive set after retirement = %v err=%v, want empty", got, err)
	}
}
