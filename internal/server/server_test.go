package server

import (
	"net"
	"testing"

	"nexus/internal/datagen"
	"nexus/internal/engines/relational"
	"nexus/internal/wire"
)

func startServer(t *testing.T) (*Server, *relational.Engine) {
	t.Helper()
	eng := relational.New("srv")
	if err := eng.Store("sales", datagen.Sales(1, 200, 20, 10)); err != nil {
		t.Fatal(err)
	}
	s, err := Serve(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Logf = t.Logf
	t.Cleanup(s.Close)
	return s, eng
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestHelloExchange(t *testing.T) {
	s, eng := startServer(t)
	conn := dial(t, s.Addr())
	if _, err := wire.WriteFrame(conn, wire.MsgHello, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgHelloAck {
		t.Fatalf("got %v", typ)
	}
	h, err := wire.DecodeHelloAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "srv" || len(h.Datasets) != 1 || h.Datasets[0].Name != "sales" {
		t.Fatalf("hello = %+v", h)
	}
	if h.CapBits != eng.Capabilities().Bits() {
		t.Fatal("capability bits differ")
	}
}

func TestMalformedPayloadSurvives(t *testing.T) {
	s, _ := startServer(t)
	conn := dial(t, s.Addr())
	// Garbage execute payload: the server must reply MsgError, not die.
	if _, err := wire.WriteFrame(conn, wire.MsgExecute, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("got %v, want error", typ)
	}
	// The same connection must still answer a hello.
	if _, err := wire.WriteFrame(conn, wire.MsgHello, nil); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err = wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgHelloAck {
		t.Fatalf("connection dead after error: %v %v", typ, err)
	}
}

func TestStoreDropRoundTrip(t *testing.T) {
	s, eng := startServer(t)
	conn := dial(t, s.Addr())
	tab := datagen.Customers(2, 10)
	if _, err := wire.WriteFrame(conn, wire.MsgStore, wire.EncodeStore("c", tab)); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgAck {
		t.Fatalf("store reply %v %v", typ, err)
	}
	if _, ok := eng.Dataset("c"); !ok {
		t.Fatal("store lost")
	}
	if _, err := wire.WriteFrame(conn, wire.MsgDrop, wire.EncodeDrop("c")); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err = wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgAck {
		t.Fatalf("drop reply %v %v", typ, err)
	}
	if _, ok := eng.Dataset("c"); ok {
		t.Fatal("drop ignored")
	}
}

func TestPushTableBetweenServers(t *testing.T) {
	_, engA := startServer(t)
	sB, engB := startServer(t)
	_ = engA
	tab := datagen.Products(3, 15)
	bytes, err := PushTable(sB.Addr(), "products", tab)
	if err != nil {
		t.Fatal(err)
	}
	if bytes <= 0 {
		t.Fatal("no bytes accounted")
	}
	got, ok := engB.Dataset("products")
	if !ok || got.NumRows() != 15 {
		t.Fatal("push did not land")
	}
}

func TestCloseStopsAccepting(t *testing.T) {
	s, _ := startServer(t)
	addr := s.Addr()
	s.Close()
	if _, err := net.Dial("tcp", addr); err == nil {
		// A dial race can succeed just as the listener closes; a
		// subsequent read must fail.
		conn, _ := net.Dial("tcp", addr)
		if conn != nil {
			conn.Close()
		}
	}
}
