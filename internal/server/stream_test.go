package server

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"nexus/internal/core"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

func eventSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "ts", Kind: value.KindInt64},
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "v", Kind: value.KindInt64},
	)
}

func eventsTable(n int) *table.Table {
	b := table.NewBuilder(eventSchema(), n)
	for i := 0; i < n; i++ {
		b.MustAppend(value.NewInt(int64(i)), value.NewInt(int64(i%4)), value.NewInt(int64(i)*3))
	}
	return b.Build()
}

func windowedSpec(t *testing.T) stream.Spec {
	t.Helper()
	v, err := core.NewVar(stream.BatchVar, eventSchema())
	if err != nil {
		t.Fatal(err)
	}
	return stream.Spec{
		Pre:       v,
		Windowed:  true,
		Win:       core.StreamWindow{Kind: core.WindowTumbling, Size: 10, Slide: 10},
		Keys:      []string{"k"},
		Aggs:      []core.AggSpec{{Func: core.AggSum, Arg: expr.Column("v"), As: "s"}, {Func: core.AggCount, As: "n"}},
		BatchSize: 16,
	}
}

// oracleRun executes the spec in-process over a replay of the events.
func oracleRun(t *testing.T, events *table.Table, sp stream.Spec) *table.Table {
	t.Helper()
	p, err := stream.FromSpec(stream.NewReplay(events, "ts"), sp)
	if err != nil {
		t.Fatal(err)
	}
	sink := stream.NewCollect(p.OutputSchema())
	if _, err := p.Run(context.Background(), sink); err != nil {
		t.Fatal(err)
	}
	out, err := sink.Table()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// readUntilEnd consumes subscription frames, collecting result tables,
// until a terminal frame arrives. It returns the collected tables and
// the terminal type.
func readUntilEnd(t *testing.T, conn net.Conn) ([]*table.Table, wire.MsgType, []byte) {
	t.Helper()
	var tabs []*table.Table
	for {
		typ, payload, _, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		switch typ {
		case wire.MsgStreamBatch:
			_, _, _, tab, err := wire.DecodeStreamBatch(payload)
			if err != nil {
				t.Fatal(err)
			}
			tabs = append(tabs, tab)
		case wire.MsgWatermark, wire.MsgCredit:
		case wire.MsgStreamEnd, wire.MsgWindowState, wire.MsgError:
			return tabs, typ, payload
		default:
			t.Fatalf("unexpected frame %v", typ)
		}
	}
}

func concatBytes(t *testing.T, tabs []*table.Table, sch schema.Schema) []byte {
	t.Helper()
	all, err := table.Empty(sch).Concat(tabs...)
	if err != nil {
		t.Fatal(err)
	}
	return wire.EncodeTable(all)
}

// TestSubscribeDatasetStream: a windowed subscription over a stored
// dataset streams exactly what the in-process pipeline produces.
func TestSubscribeDatasetStream(t *testing.T) {
	eng := relational.New("srv")
	events := eventsTable(100)
	if err := eng.Store("events", events); err != nil {
		t.Fatal(err)
	}
	s, err := Serve(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Logf = t.Logf
	t.Cleanup(s.Close)

	conn := dial(t, s.Addr())
	sub := wire.StreamSub{
		ID: 1, SourceKind: wire.StreamSrcDataset,
		Dataset: "events", TimeCol: "ts",
		Spec: windowedSpec(t), Credit: 1000,
	}
	if _, err := wire.WriteFrame(conn, wire.MsgSubscribeStream, wire.EncodeSubscribeStream(sub)); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgSubAck {
		t.Fatalf("got %v", typ)
	}
	_, outSch, err := wire.DecodeSubAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	tabs, term, _ := readUntilEnd(t, conn)
	if term != wire.MsgStreamEnd {
		t.Fatalf("terminal %v", term)
	}
	want := oracleRun(t, events, windowedSpec(t))
	if !bytes.Equal(concatBytes(t, tabs, outSch), wire.EncodeTable(want)) {
		t.Fatal("federated results differ from in-process oracle")
	}
}

// TestSubscriberGone: dropping the connection while the pipeline waits
// for credit surfaces ErrSubscriberGone — queued batches are not
// silently discarded.
func TestSubscriberGone(t *testing.T) {
	eng := relational.New("srv")
	if err := eng.Store("events", eventsTable(5000)); err != nil {
		t.Fatal(err)
	}
	cli, srv := net.Pipe()
	served := make(chan error, 1)
	go func() { served <- ServeConn(eng, srv) }()

	sub := wire.StreamSub{
		ID: 1, SourceKind: wire.StreamSrcDataset,
		Dataset: "events", TimeCol: "ts",
		Spec: windowedSpec(t), Credit: 1, // exhausts after one batch
	}
	if _, err := wire.WriteFrame(cli, wire.MsgSubscribeStream, wire.EncodeSubscribeStream(sub)); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err := wire.ReadFrame(cli)
	if err != nil || typ != wire.MsgSubAck {
		t.Fatalf("%v %v", typ, err)
	}
	// Take the first batch (skipping watermark progress), then vanish
	// without granting more credit.
	for {
		typ, _, _, err = wire.ReadFrame(cli)
		if err != nil {
			t.Fatal(err)
		}
		if typ == wire.MsgWatermark {
			continue
		}
		if typ != wire.MsgStreamBatch {
			t.Fatalf("got %v", typ)
		}
		break
	}
	cli.Close()

	select {
	case err := <-served:
		if !errors.Is(err, ErrSubscriberGone) {
			t.Fatalf("ServeConn returned %v, want ErrSubscriberGone", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not release the orphaned subscription")
	}
}

// TestPushStream: published event batches flow through the pipeline;
// publish credits come back as the pipeline consumes; EndInput flushes
// final windows and terminates with stats.
func TestPushStream(t *testing.T) {
	eng := relational.New("srv")
	cli, srv := net.Pipe()
	go func() { _ = ServeConn(eng, srv) }()
	t.Cleanup(func() { cli.Close() })

	events := eventsTable(40)
	sub := wire.StreamSub{
		ID: 1, SourceKind: wire.StreamSrcPush,
		TimeCol: "ts", SrcSchema: eventSchema(),
		Spec: windowedSpec(t), Credit: 1000,
	}
	if _, err := wire.WriteFrame(cli, wire.MsgSubscribeStream, wire.EncodeSubscribeStream(sub)); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := wire.ReadFrame(cli)
	if err != nil || typ != wire.MsgSubAck {
		t.Fatalf("%v %v", typ, err)
	}
	_, outSch, err := wire.DecodeSubAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Publish in two halves, then end input.
	if _, err := wire.WriteFrame(cli, wire.MsgStreamPublish, wire.EncodeStreamPublish(1, events.Slice(0, 20))); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.WriteFrame(cli, wire.MsgStreamPublish, wire.EncodeStreamPublish(1, events.Slice(20, 40))); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.WriteFrame(cli, wire.MsgStreamClose, wire.EncodeStreamClose(1, wire.CloseEndInput)); err != nil {
		t.Fatal(err)
	}
	tabs, term, payload := readUntilEnd(t, cli)
	if term != wire.MsgStreamEnd {
		t.Fatalf("terminal %v", term)
	}
	_, stats, err := wire.DecodeStreamEnd(payload)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 40 {
		t.Fatalf("stats.Events = %d, want 40", stats.Events)
	}
	want := oracleRun(t, events, windowedSpec(t))
	if !bytes.Equal(concatBytes(t, tabs, outSch), wire.EncodeTable(want)) {
		t.Fatal("push-mode results differ from in-process oracle")
	}
}

// TestSubscribeErrors: bad subscriptions are refused with MsgError, and
// duplicate IDs are rejected.
func TestSubscribeErrors(t *testing.T) {
	eng := relational.New("srv")
	cli, srv := net.Pipe()
	go func() { _ = ServeConn(eng, srv) }()
	t.Cleanup(func() { cli.Close() })

	sub := wire.StreamSub{
		ID: 1, SourceKind: wire.StreamSrcDataset,
		Dataset: "nosuch", TimeCol: "ts",
		Spec: windowedSpec(t), Credit: 8,
	}
	if _, err := wire.WriteFrame(cli, wire.MsgSubscribeStream, wire.EncodeSubscribeStream(sub)); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := wire.ReadFrame(cli)
	if err != nil || typ != wire.MsgError {
		t.Fatalf("%v %v", typ, err)
	}
	if _, msg, _ := wire.DecodeError(payload); msg == "" {
		t.Fatal("empty refusal")
	}
}
