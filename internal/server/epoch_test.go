package server

import (
	"net"
	"strings"
	"testing"

	"nexus/internal/storage"
	"nexus/internal/wire"
)

// subscribeDataset sends a dataset-replay subscription and returns the
// server's first answer frame.
func subscribeDataset(t *testing.T, conn net.Conn, sub wire.StreamSub) (wire.MsgType, []byte) {
	t.Helper()
	if _, err := wire.WriteFrame(conn, wire.MsgSubscribeStream, wire.EncodeSubscribeStream(sub)); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return typ, payload
}

// TestStaleResumeEpochRefused locks down the order-epoch guard on
// client-held resume tokens: a detached dataset-replay subscription's
// state resumes fine while the dataset keeps its row order, but once
// compaction re-sorts the rows (bumping the order epoch) the same state
// is refused with a clear error instead of silently skipping the wrong
// prefix.
func TestStaleResumeEpochRefused(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.OpenEngine("dur", dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Four small appends, each flushed to its own segment, so a
	// compaction pass has something to merge (and re-sort).
	events := eventsTable(100)
	for lo := 0; lo < 100; lo += 25 {
		if err := eng.Append("events", events.Slice(lo, lo+25)); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	cli, srv := net.Pipe()
	go func() { _ = ServeConn(eng, srv) }()
	t.Cleanup(func() { cli.Close() })

	// Subscribe with one batch of credit so the pipeline stalls
	// mid-stream, then detach to capture a resumable state.
	sub := wire.StreamSub{
		ID: 1, SourceKind: wire.StreamSrcDataset,
		Dataset: "events", TimeCol: "ts",
		Spec: windowedSpec(t), Credit: 1,
	}
	typ, _ := subscribeDataset(t, cli, sub)
	if typ != wire.MsgSubAck {
		t.Fatalf("subscribe answered %v", typ)
	}
	for {
		typ, _, _, err := wire.ReadFrame(cli)
		if err != nil {
			t.Fatal(err)
		}
		if typ == wire.MsgStreamBatch {
			break
		}
	}
	if _, err := wire.WriteFrame(cli, wire.MsgStreamClose, wire.EncodeStreamClose(1, wire.CloseDetach)); err != nil {
		t.Fatal(err)
	}
	tabs, term, payload := readUntilEnd(t, cli)
	if term != wire.MsgWindowState {
		t.Fatalf("detach terminal %v", term)
	}
	_, state, err := wire.DecodeWindowState(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.DatasetOrderEpoch("events"); state.Epoch != got {
		t.Fatalf("detached state carries epoch %d, dataset is at %d", state.Epoch, got)
	}
	if state.Events <= 0 || state.Events >= 100 {
		t.Fatalf("detach consumed %d events, want mid-stream", state.Events)
	}

	// Positive control: the token resumes cleanly while the epoch holds.
	resume := sub
	resume.ID = 2
	resume.Credit = 1000
	resume.Resume = state
	typ, _ = subscribeDataset(t, cli, resume)
	if typ != wire.MsgSubAck {
		t.Fatalf("same-epoch resume answered %v", typ)
	}
	more, term, _ := readUntilEnd(t, cli)
	if term != wire.MsgStreamEnd {
		t.Fatalf("resumed stream ended with %v", term)
	}
	if len(tabs)+len(more) == 0 {
		t.Fatal("no windows delivered across detach+resume")
	}

	// Re-sort the rows: a compaction pass that actually merges segments
	// bumps the dataset's order epoch.
	stats, err := eng.Compact(storage.CompactOptions{ClusterBy: map[string]string{"events": "k"}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Merged == 0 {
		t.Fatal("compaction merged nothing; epoch cannot have moved")
	}
	if got := eng.DatasetOrderEpoch("events"); got != state.Epoch+1 {
		t.Fatalf("epoch after compaction = %d, want %d", got, state.Epoch+1)
	}

	// The client-held token now points into an ordering that no longer
	// exists: the resume must be refused, naming the epochs.
	stale := sub
	stale.ID = 3
	stale.Credit = 1000
	stale.Resume = state
	typ, payload = subscribeDataset(t, cli, stale)
	if typ != wire.MsgError {
		t.Fatalf("stale resume answered %v, want refusal", typ)
	}
	_, msg, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "order epoch") || !strings.Contains(msg, "stale") {
		t.Fatalf("refusal does not explain the stale epoch: %q", msg)
	}
}
