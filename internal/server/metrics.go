package server

import (
	"nexus/internal/core"
	"nexus/internal/obs"
)

// datasetLabelCap bounds per-dataset metric cardinality: a tenant
// minting thousands of datasets aggregates under "(other)" past it,
// mirroring the admission gauges' bucket for unconfigured tenants.
const datasetLabelCap = 512

// Server-layer metrics on the process-wide registry. Per-dataset labels
// come from client requests; the cardinality cap keeps a hostile or
// dataset-happy tenant from bloating /metrics. Push-source
// subscriptions have no dataset and report under "(push)".
var (
	metConns = obs.Default.Gauge("nexus_server_connections",
		"Connections currently being served (TCP and in-process).")
	metSubs = obs.Default.GaugeVec("nexus_server_subscriptions",
		"Active stream subscriptions by replayed dataset (\"(push)\" for push sources).",
		"dataset").Cap(datasetLabelCap)
	metAppends = obs.Default.CounterVec("nexus_server_appends_total",
		"Append requests committed, by dataset.", "dataset").Cap(datasetLabelCap)
	metAppendRows = obs.Default.CounterVec("nexus_server_append_rows_total",
		"Rows committed by append requests, by dataset.", "dataset").Cap(datasetLabelCap)
	metScans = obs.Default.CounterVec("nexus_server_scans_total",
		"Scan operators in executed plans, by dataset.", "dataset").Cap(datasetLabelCap)
	metCreditStall = obs.Default.Histogram("nexus_server_credit_stall_seconds",
		"Time result emission spent blocked waiting for subscriber credit (only waits are observed).",
		obs.LatencyBuckets())
	metEmitSeconds = obs.Default.Histogram("nexus_server_window_emit_seconds",
		"Wall time to deliver one result batch to a subscriber, credit wait included.",
		obs.LatencyBuckets())
	metSubGone = obs.Default.Counter("nexus_server_subscriber_gone_total",
		"Subscriptions terminated because the subscriber's connection vanished.")
	metStaleResume = obs.Default.Counter("nexus_server_stale_resume_total",
		"Dataset-replay resume attempts refused because the dataset's order epoch moved.")
	metCkptSaveErrs = obs.Default.Counter("nexus_server_checkpoint_save_errors_total",
		"Durable subscription checkpoint saves that failed (the subscription keeps running on its previous checkpoint).")
	metReplServed = obs.Default.CounterVec("nexus_server_repl_requests_total",
		"Replication requests served as primary, by kind (manifest, segment, checkpoints).", "kind")
	metReplBytesOut = obs.Default.Counter("nexus_server_repl_bytes_total",
		"Segment bytes shipped to followers.")
)

// countPlanScans bumps the per-dataset scan counter for every Scan
// operator in an executed plan.
func countPlanScans(n core.Node) {
	if n == nil {
		return
	}
	if sc, ok := n.(*core.Scan); ok {
		metScans.With(sc.Dataset).Inc()
	}
	for _, c := range n.Children() {
		countPlanScans(c)
	}
}
