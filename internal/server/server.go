// Package server hosts any nexus provider behind the wire protocol on a
// TCP listener. Servers accept whole plans (expression trees), store
// shipped intermediates, and — the interoperation desideratum — push
// results directly to peer servers on request, so multi-server plans
// never route intermediates through the application tier.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"nexus/internal/engines/exec"
	"nexus/internal/obs/trace"
	"nexus/internal/provider"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// CheckpointStore persists opaque subscription checkpoints. A durable
// data directory (internal/storage.Store) implements it; the server
// stays decoupled from the storage engine's package.
type CheckpointStore interface {
	SaveCheckpoint(key string, data []byte) error
	LoadCheckpoint(key string) ([]byte, bool, error)
	DeleteCheckpoint(key string) error
	Checkpoints() ([]string, error)
}

// ReplSource is a provider that can act as a replication primary:
// it serves its encoded manifest (optionally after flushing dirty
// tails), raw segment files by manifest name, and its durable stream
// checkpoint set. storage.Engine implements it, so any durable server
// — including test helpers — is a primary with no extra wiring.
type ReplSource interface {
	ReplManifest(flush bool) ([]byte, error)
	ReplFile(name string) ([]byte, error)
	ReplCheckpoints() (map[string][]byte, error)
}

// Server exposes one provider on a TCP address.
type Server struct {
	prov provider.Provider
	ln   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]*connCtx // value set once the handler builds it

	// exprCache is shared by every streaming subscription the server
	// hosts, so a plan subscribed N times compiles once.
	cacheOnce sync.Once
	exprCache *exec.ExprCache

	// ckpt + ckptEvery enable durable subscription checkpoints (see
	// EnableCheckpoints); guarded by mu — connections may already be
	// arriving when EnableCheckpoints runs.
	ckpt      CheckpointStore
	ckptEvery time.Duration

	// replStatus, when set, answers MsgReplStatus probes — a replica
	// reports its sync state on its main port so a primary-side monitor
	// needs no second listener. Guarded by mu.
	replStatus func() wire.ReplStatus

	// adm, when set, applies per-tenant quotas and backpressure shedding
	// to new work (see SetAdmission). Guarded by mu.
	adm *admission

	// Logf receives diagnostics; defaults to log.Printf. Tests silence it.
	Logf func(format string, args ...any)
}

// Serve starts a server for the provider on addr (e.g. "127.0.0.1:0").
func Serve(prov provider.Provider, addr string) (*Server, error) {
	return ServeWithCheckpoints(prov, addr, nil, 0)
}

// ServeWithCheckpoints is Serve with durable subscription checkpoints
// enabled before the listener accepts its first connection, so even a
// subscriber that dials the instant the port opens gets checkpointing.
func ServeWithCheckpoints(prov provider.Provider, addr string, cs CheckpointStore, every time.Duration) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s := &Server{prov: prov, ln: ln, conns: map[net.Conn]*connCtx{}, Logf: log.Printf, ckpt: cs, ckptEvery: every}
	go s.acceptLoop()
	return s, nil
}

// cache returns the server's shared compiled-expression cache.
func (s *Server) cache() *exec.ExprCache {
	s.cacheOnce.Do(func() { s.exprCache = exec.NewExprCache() })
	return s.exprCache
}

// EnableCheckpoints turns on durable subscription checkpoints: every
// hosted pipeline whose subscription carries a Durable key persists its
// state to cs on the given interval (and at detach or disconnect), and
// a re-subscription under the same key resumes from the stored state.
// Connections established after the call see the store; call it before
// subscribers are expected.
func (s *Server) EnableCheckpoints(cs CheckpointStore, every time.Duration) {
	s.mu.Lock()
	s.ckpt = cs
	s.ckptEvery = every
	s.mu.Unlock()
}

// SetReplStatus installs the callback answering MsgReplStatus probes
// (a replica's sync state). Connections established after the call see
// it; install before replication starts.
func (s *Server) SetReplStatus(fn func() wire.ReplStatus) {
	s.mu.Lock()
	s.replStatus = fn
	s.mu.Unlock()
}

// ResumeSensitiveDatasets reports the datasets whose on-disk row order
// hosted streams depend on: every active dataset-replay subscription's
// dataset, plus every dataset named by a stored durable checkpoint with
// a dataset source. Their resume positions are row offsets into the
// replay in storage order, so a background compactor must exclude them
// — re-sorting the rows would make a stored offset skip the wrong
// prefix on resume (see storage.CompactOptions.Exclude). This is a
// safety veto, so it fails SAFE: an error listing or decoding the
// stored checkpoints is returned to the caller, who must treat every
// dataset as sensitive for this pass rather than compact blind.
//
// ResumeTokens of NON-durable detached dataset-replay subscriptions live
// only on the client, so the server cannot see them here — compaction
// between such a detach and its resume can still reorder the replay
// under the token's row offset. That case is handled at resume time
// instead: tokens carry the dataset's order epoch, and a resume whose
// epoch no longer matches is refused cleanly rather than silently
// replaying the wrong rows (see handleSubscribeStream).
func (s *Server) ResumeSensitiveDatasets() (map[string]bool, error) {
	out := map[string]bool{}
	s.mu.Lock()
	ccs := make([]*connCtx, 0, len(s.conns))
	for _, cc := range s.conns {
		if cc != nil {
			ccs = append(ccs, cc)
		}
	}
	ckpt := s.ckpt
	s.mu.Unlock()
	for _, cc := range ccs {
		cc.datasetStreams(out)
	}
	if ckpt == nil {
		return out, nil
	}
	keys, err := ckpt.Checkpoints()
	if err != nil {
		return nil, fmt.Errorf("server: list checkpoints: %w", err)
	}
	for _, k := range keys {
		data, ok, err := ckpt.LoadCheckpoint(k)
		if err != nil {
			return nil, fmt.Errorf("server: checkpoint %q: %w", k, err)
		}
		if !ok {
			continue // retired between the listing and the load
		}
		sub, err := wire.DecodeSubscribeStream(data)
		if err != nil {
			return nil, fmt.Errorf("server: checkpoint %q: %w", k, err)
		}
		if sub.SourceKind == wire.StreamSrcDataset && sub.Dataset != "" {
			out[sub.Dataset] = true
		}
	}
	return out, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Provider returns the hosted provider.
func (s *Server) Provider() provider.Provider { return s.prov }

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.Logf("server %s: accept: %v", s.prov.Name(), err)
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = nil
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Logf is read lazily at log time: tests install their logger right
	// after Serve returns, before any traffic arrives.
	s.mu.Lock()
	ckpt, ckptEvery, replStatus, adm := s.ckpt, s.ckptEvery, s.replStatus, s.adm
	s.mu.Unlock()
	cc := &connCtx{
		prov: s.prov, conn: conn, cache: s.cache(),
		ckpt: ckpt, ckptEvery: ckptEvery,
		replStatus: replStatus, adm: adm,
		subs: map[uint64]*subSession{},
		logf: func(format string, args ...any) { s.Logf(format, args...) },
	}
	s.mu.Lock()
	if _, ok := s.conns[conn]; ok {
		s.conns[conn] = cc
	}
	s.mu.Unlock()
	if err := cc.serve(); err != nil {
		if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.Logf("server %s: %v", s.prov.Name(), err)
			}
		}
	}
}

// ServeConn serves the wire protocol — including long-running stream
// subscriptions — on an already-established connection, returning when
// the connection ends. The returned error is the terminal condition: nil
// on clean shutdown, ErrSubscriberGone when the peer vanished under an
// active subscription, or the first dispatch failure. The in-process
// federation transport runs real protocol bytes through a net.Pipe via
// this entry point, so InProc and TCP subscriptions exercise one code
// path.
func ServeConn(prov provider.Provider, conn net.Conn) error {
	return ServeConnCached(prov, conn, exec.NewExprCache())
}

// ServeConnCached is ServeConn with a caller-owned compiled-expression
// cache, so a host serving many connections for one provider (the
// in-process federation transport) compiles each subscribed plan once
// across all of them.
func ServeConnCached(prov provider.Provider, conn net.Conn, cache *exec.ExprCache) error {
	defer conn.Close()
	cc := &connCtx{prov: prov, conn: conn, cache: cache, subs: map[uint64]*subSession{}, logf: func(string, ...any) {}}
	err := cc.serve()
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// connCtx is one connection's server-side state: the hosted provider, a
// write lock serializing frames from the dispatch loop and from
// subscription pipelines, and the live subscriptions.
type connCtx struct {
	prov  provider.Provider
	conn  net.Conn
	cache *exec.ExprCache
	logf  func(format string, args ...any)

	// ckpt enables durable subscriptions on this connection (nil when
	// the host has no checkpoint store).
	ckpt      CheckpointStore
	ckptEvery time.Duration

	// replStatus answers MsgReplStatus probes (nil when this server is
	// not a replica).
	replStatus func() wire.ReplStatus

	// adm applies admission control (nil when the host has none).
	adm *admission

	wmu sync.Mutex // serializes frame writes

	mu     sync.Mutex
	subs   map[uint64]*subSession
	subErr error // first gone-subscriber error (survives sub removal)

	// tenant is the hello-declared tenant token ("" for anonymous or
	// pre-hello traffic); admT caches its admission state. Guarded by mu.
	tenant string
	admT   *tenantState
}

// setTenant records the connection's hello-declared tenant token.
func (cc *connCtx) setTenant(token string) {
	cc.mu.Lock()
	if token != cc.tenant {
		cc.tenant = token
		cc.admT = nil
	}
	cc.mu.Unlock()
}

// tenantState resolves this connection's admission accounting, lazily —
// a client that never sent a tenant token is the anonymous tenant.
func (cc *connCtx) tenantState() *tenantState {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.admT == nil {
		cc.admT = cc.adm.tenant(cc.tenant)
	}
	return cc.admT
}

// refuseFrame writes the typed admission refusal for a request.
func (cc *connCtx) refuseFrame(id uint64, r *refusal) error {
	return cc.writeFrame(wire.MsgRefused, wire.EncodeRefused(id, r.code, r.msg))
}

// noteSubErr records the first gone-subscriber error on the connection.
func (cc *connCtx) noteSubErr(err error) {
	metSubGone.Inc()
	cc.mu.Lock()
	if cc.subErr == nil {
		cc.subErr = err
	}
	cc.mu.Unlock()
}

// writeFrame writes one frame under the connection's write lock.
func (cc *connCtx) writeFrame(t wire.MsgType, payload []byte) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	_, err := wire.WriteFrame(cc.conn, t, payload)
	return err
}

// removeSub forgets a finished subscription.
func (cc *connCtx) removeSub(id uint64) {
	cc.mu.Lock()
	delete(cc.subs, id)
	cc.mu.Unlock()
}

// datasetStreams adds the datasets of this connection's active
// dataset-replay subscriptions to out.
func (cc *connCtx) datasetStreams(out map[string]bool) {
	cc.mu.Lock()
	for _, s := range cc.subs {
		if s.dataset != "" {
			out[s.dataset] = true
		}
	}
	cc.mu.Unlock()
}

// sub looks up a live subscription.
func (cc *connCtx) sub(id uint64) (*subSession, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	s, ok := cc.subs[id]
	return s, ok
}

// serve runs the read loop until the connection ends, then releases any
// still-running subscriptions. If the peer vanished while subscriptions
// were live, the terminal error is ErrSubscriberGone.
func (cc *connCtx) serve() error {
	metConns.Inc()
	defer metConns.Dec()
	var readErr error
	for {
		typ, payload, _, err := wire.ReadFrame(cc.conn)
		if err != nil {
			readErr = err
			break
		}
		if err := cc.dispatch(typ, payload); err != nil {
			readErr = err
			break
		}
	}
	// Connection over: mark every live subscription's subscriber gone and
	// wait for their pipelines to stop. Their queued batches fail with
	// ErrSubscriberGone rather than disappearing silently.
	cc.mu.Lock()
	live := make([]*subSession, 0, len(cc.subs))
	for _, s := range cc.subs {
		live = append(live, s)
	}
	cc.mu.Unlock()
	for _, s := range live {
		s.markGone()
	}
	for _, s := range live {
		<-s.done
	}
	cc.mu.Lock()
	subErr := cc.subErr
	cc.mu.Unlock()
	if subErr != nil {
		return subErr
	}
	return readErr
}

func (cc *connCtx) dispatch(typ wire.MsgType, payload []byte) error {
	switch typ {
	case wire.MsgHello:
		return cc.handleHello(payload)
	case wire.MsgExecute:
		return cc.handleExecute(payload)
	case wire.MsgExecuteTo:
		return cc.handleExecuteTo(payload)
	case wire.MsgStore:
		return cc.handleStore(payload)
	case wire.MsgAppend:
		return cc.handleAppend(payload)
	case wire.MsgDrop:
		name, err := wire.DecodeDrop(payload)
		if err != nil {
			return err
		}
		cc.prov.Drop(name)
		return cc.writeFrame(wire.MsgAck, wire.EncodeAck(0, 0, 0))
	case wire.MsgList:
		return cc.handleHello(nil)
	case wire.MsgSubscribeStream:
		return cc.handleSubscribeStream(payload)
	case wire.MsgCredit:
		id, n, err := wire.DecodeCredit(payload)
		if err != nil {
			return err
		}
		if s, ok := cc.sub(id); ok {
			s.addCredit(n)
		}
		return nil
	case wire.MsgStreamPublish:
		id, t, err := wire.DecodeStreamPublish(payload)
		if err != nil {
			return err
		}
		s, ok := cc.sub(id)
		if !ok || s.push == nil {
			return cc.writeFrame(wire.MsgError, wire.EncodeError(id, "server: publish to unknown push subscription"))
		}
		if err := s.push.publish(t); err != nil {
			return cc.writeFrame(wire.MsgError, wire.EncodeError(id, err.Error()))
		}
		return nil
	case wire.MsgStreamClose:
		id, mode, err := wire.DecodeStreamClose(payload)
		if err != nil {
			return err
		}
		if s, ok := cc.sub(id); ok {
			s.close(mode)
		}
		return nil
	case wire.MsgReplManifest:
		return cc.handleReplManifest(payload)
	case wire.MsgReplFetch:
		return cc.handleReplFetch(payload)
	case wire.MsgReplCkpts:
		return cc.handleReplCkpts()
	case wire.MsgReplStatus:
		return cc.handleReplStatus()
	}
	return fmt.Errorf("unexpected message %v", typ)
}

// replSource returns the provider's replication interface, or an error
// frame payload-ready message when the provider cannot act as a primary
// (in-memory providers have no segments to ship).
func (cc *connCtx) replSource() (ReplSource, error) {
	if rs, ok := cc.prov.(ReplSource); ok {
		return rs, nil
	}
	return nil, fmt.Errorf("server: provider %s is not a replication source (not durable)", cc.prov.Name())
}

// handleReplManifest serves the encoded current manifest, flushing
// unflushed tails first when the follower asks (the normal case: the
// replication granularity is the flush granularity).
func (cc *connCtx) handleReplManifest(payload []byte) error {
	flush, err := wire.DecodeReplManifest(payload)
	if err != nil {
		return err
	}
	rs, err := cc.replSource()
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	raw, err := rs.ReplManifest(flush)
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	metReplServed.With("manifest").Inc()
	return cc.writeFrame(wire.MsgReplManifestData, raw)
}

// handleReplFetch serves one raw segment file by manifest name.
func (cc *connCtx) handleReplFetch(payload []byte) error {
	name, err := wire.DecodeReplFetch(payload)
	if err != nil {
		return err
	}
	rs, err := cc.replSource()
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	data, err := rs.ReplFile(name)
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	metReplServed.With("segment").Inc()
	metReplBytesOut.Add(int64(len(data)))
	return cc.writeFrame(wire.MsgReplFile, wire.EncodeReplFile(name, data))
}

// handleReplCkpts serves the durable stream checkpoint set so a
// follower can adopt failed-over durable subscribers at the primary's
// last persisted position.
func (cc *connCtx) handleReplCkpts() error {
	rs, err := cc.replSource()
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	set, err := rs.ReplCheckpoints()
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	metReplServed.With("checkpoints").Inc()
	return cc.writeFrame(wire.MsgReplCkptData, wire.EncodeReplCkptData(set))
}

// handleReplStatus reports this server's replication sync state (only
// meaningful on a replica; see Server.SetReplStatus).
func (cc *connCtx) handleReplStatus() error {
	if cc.replStatus == nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, "server: not a replica"))
	}
	return cc.writeFrame(wire.MsgReplStatusData, wire.EncodeReplStatus(cc.replStatus()))
}

func (cc *connCtx) handleHello(payload []byte) error {
	var sp *trace.Span
	if len(payload) > 0 {
		tenant, tc, err := wire.DecodeHelloTrace(payload)
		if err != nil {
			return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
		}
		cc.setTenant(tenant)
		sp = trace.Default.StartChild(traceCtx(tc), "server.hello")
		sp.Set(trace.String("tenant", tenant))
	}
	defer sp.End(nil)
	caps := cc.prov.Capabilities()
	h := wire.HelloInfo{
		Name:    cc.prov.Name(),
		CapBits: caps.Bits(),
		Kernels: caps.Kernels(),
	}
	if d, ok := cc.prov.(interface{ Durable() bool }); ok {
		h.Durable = d.Durable()
	}
	for _, ds := range cc.prov.Datasets() {
		var e wire.Encoder
		wire.PutSchema(&e, ds.Schema)
		h.Datasets = append(h.Datasets, wire.DatasetHello{
			Name:   ds.Name,
			Rows:   ds.Rows,
			Schema: e.Bytes(),
		})
	}
	return cc.writeFrame(wire.MsgHelloAck, wire.EncodeHelloAck(h))
}

func (cc *connCtx) handleExecute(payload []byte) error {
	id, plan, tc, err := wire.DecodeExecuteTrace(payload)
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	sp := trace.Default.StartChild(traceCtx(tc), "server.execute")
	op := trace.Ops().Begin("query", cc.tenantName(), firstScanDataset(plan), -1, sp.Context())
	if cc.adm != nil {
		admStart := time.Now()
		r := cc.adm.admitScan(cc.tenantState())
		if sp != nil {
			aerr := error(nil)
			if r != nil {
				aerr = errors.New(r.msg)
			}
			trace.Default.Emit(sp.Context(), "server.admission", admStart, time.Since(admStart), nil, aerr)
		}
		if r != nil {
			op.End(errors.New(r.msg))
			sp.End(errors.New(r.msg))
			return cc.refuseFrame(id, r)
		}
	}
	countPlanScans(plan)
	t, err := cc.executeTraced(plan, sp)
	if err != nil {
		op.End(err)
		sp.End(err)
		return cc.writeFrame(wire.MsgError, wire.EncodeError(id, err.Error()))
	}
	if cc.adm != nil {
		cc.adm.chargeScan(cc.tenantState(), int64(t.NumRows()))
	}
	op.AddRows(int64(t.NumRows()))
	werr := cc.writeFrame(wire.MsgResult, wire.EncodeResult(id, t))
	op.End(werr)
	sp.Set(trace.Int("rows", int64(t.NumRows())))
	sp.End(werr)
	return werr
}

// handleExecuteTo executes a plan and pushes the result to a peer server,
// returning only a small ack to the requester. This realizes the paper's
// D4: "intermediate results pass directly between servers, rather than
// being routed through the application or a middle tier."
func (cc *connCtx) handleExecuteTo(payload []byte) error {
	id, peerAddr, storeAs, plan, err := wire.DecodeExecuteTo(payload)
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	if cc.adm != nil {
		if r := cc.adm.admitScan(cc.tenantState()); r != nil {
			return cc.refuseFrame(id, r)
		}
	}
	countPlanScans(plan)
	t, err := cc.prov.Execute(plan)
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(id, err.Error()))
	}
	if cc.adm != nil {
		cc.adm.chargeScan(cc.tenantState(), int64(t.NumRows()))
	}
	shipped, err := PushTable(peerAddr, storeAs, t)
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(id, fmt.Sprintf("push to %s: %v", peerAddr, err)))
	}
	return cc.writeFrame(wire.MsgAck, wire.EncodeAck(id, int64(t.NumRows()), int64(shipped)))
}

// handleAppend adds rows to a dataset (durable providers take the WAL
// path; others are emulated via materialize + concat + store). The ack
// is only written once the rows are committed, so a client that saw it
// may rely on them surviving a crash of a durable server.
func (cc *connCtx) handleAppend(payload []byte) error {
	name, t, tc, err := wire.DecodeStoreTrace(payload)
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	sp := trace.Default.StartChild(traceCtx(tc), "server.append")
	sp.Set(trace.String("dataset", name), trace.Int("rows", int64(t.NumRows())))
	op := trace.Ops().Begin("append", cc.tenantName(), name, -1, sp.Context())
	if cc.adm != nil {
		if r := cc.adm.admitAppend(cc.tenantState(), int64(t.NumRows())); r != nil {
			op.End(errors.New(r.msg))
			sp.End(errors.New(r.msg))
			return cc.refuseFrame(0, r)
		}
	}
	if err := provider.Append(cc.prov, name, t); err != nil {
		op.End(err)
		sp.End(err)
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	metAppends.With(name).Inc()
	metAppendRows.With(name).Add(int64(t.NumRows()))
	op.AddRows(int64(t.NumRows()))
	op.End(nil)
	sp.End(nil)
	return cc.writeFrame(wire.MsgAck, wire.EncodeAck(0, int64(t.NumRows()), 0))
}

func (cc *connCtx) handleStore(payload []byte) error {
	name, t, err := wire.DecodeStore(payload)
	if err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	if err := cc.prov.Store(name, t); err != nil {
		return cc.writeFrame(wire.MsgError, wire.EncodeError(0, err.Error()))
	}
	return cc.writeFrame(wire.MsgAck, wire.EncodeAck(0, int64(t.NumRows()), 0))
}

// PushTable dials a peer server, stores a table there, and waits for the
// ack. It returns the bytes moved on the peer link.
func PushTable(addr, name string, t *table.Table) (int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("server: dial peer %s: %w", addr, err)
	}
	defer conn.Close()
	out, err := wire.WriteFrame(conn, wire.MsgStore, wire.EncodeStore(name, t))
	if err != nil {
		return 0, err
	}
	typ, payload, in, err := wire.ReadFrame(conn)
	if err != nil {
		return out, err
	}
	if typ == wire.MsgError {
		_, msg, _ := wire.DecodeError(payload)
		return out + in, fmt.Errorf("server: peer %s: %s", addr, msg)
	}
	if typ != wire.MsgAck {
		return out + in, fmt.Errorf("server: peer %s replied %v to store", addr, typ)
	}
	return out + in, nil
}
