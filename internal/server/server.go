// Package server hosts any nexus provider behind the wire protocol on a
// TCP listener. Servers accept whole plans (expression trees), store
// shipped intermediates, and — the interoperation desideratum — push
// results directly to peer servers on request, so multi-server plans
// never route intermediates through the application tier.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"nexus/internal/provider"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// Server exposes one provider on a TCP address.
type Server struct {
	prov provider.Provider
	ln   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	// Logf receives diagnostics; defaults to log.Printf. Tests silence it.
	Logf func(format string, args ...any)
}

// Serve starts a server for the provider on addr (e.g. "127.0.0.1:0").
func Serve(prov provider.Provider, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s := &Server{prov: prov, ln: ln, conns: map[net.Conn]struct{}{}, Logf: log.Printf}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Provider returns the hosted provider.
func (s *Server) Provider() provider.Provider { return s.prov }

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.Logf("server %s: accept: %v", s.prov.Name(), err)
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		typ, payload, _, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.mu.Lock()
				closed := s.closed
				s.mu.Unlock()
				if !closed {
					s.Logf("server %s: read: %v", s.prov.Name(), err)
				}
			}
			return
		}
		if err := s.dispatch(conn, typ, payload); err != nil {
			s.Logf("server %s: %v", s.prov.Name(), err)
			return
		}
	}
}

func (s *Server) dispatch(conn net.Conn, typ wire.MsgType, payload []byte) error {
	switch typ {
	case wire.MsgHello:
		return s.handleHello(conn)
	case wire.MsgExecute:
		return s.handleExecute(conn, payload)
	case wire.MsgExecuteTo:
		return s.handleExecuteTo(conn, payload)
	case wire.MsgStore:
		return s.handleStore(conn, payload)
	case wire.MsgDrop:
		name, err := wire.DecodeDrop(payload)
		if err != nil {
			return err
		}
		s.prov.Drop(name)
		_, err = wire.WriteFrame(conn, wire.MsgAck, wire.EncodeAck(0, 0, 0))
		return err
	case wire.MsgList:
		return s.handleHello(conn)
	}
	return fmt.Errorf("unexpected message %v", typ)
}

func (s *Server) handleHello(conn net.Conn) error {
	caps := s.prov.Capabilities()
	h := wire.HelloInfo{
		Name:    s.prov.Name(),
		CapBits: caps.Bits(),
		Kernels: caps.Kernels(),
	}
	for _, ds := range s.prov.Datasets() {
		var e wire.Encoder
		wire.PutSchema(&e, ds.Schema)
		h.Datasets = append(h.Datasets, wire.DatasetHello{
			Name:   ds.Name,
			Rows:   ds.Rows,
			Schema: e.Bytes(),
		})
	}
	_, err := wire.WriteFrame(conn, wire.MsgHelloAck, wire.EncodeHelloAck(h))
	return err
}

func (s *Server) handleExecute(conn net.Conn, payload []byte) error {
	id, plan, err := wire.DecodeExecute(payload)
	if err != nil {
		_, werr := wire.WriteFrame(conn, wire.MsgError, wire.EncodeError(0, err.Error()))
		return werr
	}
	t, err := s.prov.Execute(plan)
	if err != nil {
		_, werr := wire.WriteFrame(conn, wire.MsgError, wire.EncodeError(id, err.Error()))
		return werr
	}
	_, err = wire.WriteFrame(conn, wire.MsgResult, wire.EncodeResult(id, t))
	return err
}

// handleExecuteTo executes a plan and pushes the result to a peer server,
// returning only a small ack to the requester. This realizes the paper's
// D4: "intermediate results pass directly between servers, rather than
// being routed through the application or a middle tier."
func (s *Server) handleExecuteTo(conn net.Conn, payload []byte) error {
	id, peerAddr, storeAs, plan, err := wire.DecodeExecuteTo(payload)
	if err != nil {
		_, werr := wire.WriteFrame(conn, wire.MsgError, wire.EncodeError(0, err.Error()))
		return werr
	}
	t, err := s.prov.Execute(plan)
	if err != nil {
		_, werr := wire.WriteFrame(conn, wire.MsgError, wire.EncodeError(id, err.Error()))
		return werr
	}
	shipped, err := PushTable(peerAddr, storeAs, t)
	if err != nil {
		_, werr := wire.WriteFrame(conn, wire.MsgError, wire.EncodeError(id, fmt.Sprintf("push to %s: %v", peerAddr, err)))
		return werr
	}
	_, err = wire.WriteFrame(conn, wire.MsgAck, wire.EncodeAck(id, int64(t.NumRows()), int64(shipped)))
	return err
}

func (s *Server) handleStore(conn net.Conn, payload []byte) error {
	name, t, err := wire.DecodeStore(payload)
	if err != nil {
		_, werr := wire.WriteFrame(conn, wire.MsgError, wire.EncodeError(0, err.Error()))
		return werr
	}
	if err := s.prov.Store(name, t); err != nil {
		_, werr := wire.WriteFrame(conn, wire.MsgError, wire.EncodeError(0, err.Error()))
		return werr
	}
	_, err = wire.WriteFrame(conn, wire.MsgAck, wire.EncodeAck(0, int64(t.NumRows()), 0))
	return err
}

// PushTable dials a peer server, stores a table there, and waits for the
// ack. It returns the bytes moved on the peer link.
func PushTable(addr, name string, t *table.Table) (int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, fmt.Errorf("server: dial peer %s: %w", addr, err)
	}
	defer conn.Close()
	out, err := wire.WriteFrame(conn, wire.MsgStore, wire.EncodeStore(name, t))
	if err != nil {
		return 0, err
	}
	typ, payload, in, err := wire.ReadFrame(conn)
	if err != nil {
		return out, err
	}
	if typ == wire.MsgError {
		_, msg, _ := wire.DecodeError(payload)
		return out + in, fmt.Errorf("server: peer %s: %s", addr, msg)
	}
	if typ != wire.MsgAck {
		return out + in, fmt.Errorf("server: peer %s replied %v to store", addr, typ)
	}
	return out + in, nil
}
