package server

import (
	"sync"
	"testing"

	"nexus/internal/engines/relational"
	"nexus/internal/wire"
)

// flakyCkpt is a checkpoint store whose saves can be made to fail —
// the "checkpoint disk full / gone" scenario.
type flakyCkpt struct {
	mu        sync.Mutex
	m         map[string][]byte
	failSaves bool
	fails     int
}

func (c *flakyCkpt) SaveCheckpoint(k string, d []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failSaves {
		c.fails++
		return errInjectedSave
	}
	if c.m == nil {
		c.m = map[string][]byte{}
	}
	c.m[k] = append([]byte(nil), d...)
	return nil
}

func (c *flakyCkpt) LoadCheckpoint(k string) ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[k]
	return d, ok, nil
}

func (c *flakyCkpt) DeleteCheckpoint(k string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, k)
	return nil
}

func (c *flakyCkpt) Checkpoints() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var keys []string
	for k := range c.m {
		keys = append(keys, k)
	}
	return keys, nil
}

func (c *flakyCkpt) failCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fails
}

var errInjectedSave = &injectedErr{}

type injectedErr struct{}

func (*injectedErr) Error() string { return "injected: checkpoint store unavailable" }

// TestCheckpointSaveErrorDoesNotKillStream pins the degraded mode: a
// durable subscription whose periodic checkpoint saves all fail still
// streams every window to a clean end — the failure is counted and
// logged, and resume falls back to the last checkpoint that did land
// (here: none, i.e. a from-scratch replay) instead of the stream dying.
func TestCheckpointSaveErrorDoesNotKillStream(t *testing.T) {
	eng := relational.New("srv")
	if err := eng.Store("events", eventsTable(100)); err != nil {
		t.Fatal(err)
	}
	cs := &flakyCkpt{failSaves: true}
	s, err := ServeWithCheckpoints(eng, "127.0.0.1:0", cs, 0) // checkpoint every batch
	if err != nil {
		t.Fatal(err)
	}
	s.Logf = func(string, ...any) {}
	t.Cleanup(s.Close)

	errsBefore := metCkptSaveErrs.Value()
	conn := dial(t, s.Addr())
	sub := wire.StreamSub{
		ID: 1, SourceKind: wire.StreamSrcDataset,
		Dataset: "events", TimeCol: "ts",
		Spec: windowedSpec(t), Credit: 1000, Durable: "job",
	}
	if typ, _ := subscribeDataset(t, conn, sub); typ != wire.MsgSubAck {
		t.Fatalf("subscribe answered %v", typ)
	}
	tabs, typ, _ := readUntilEnd(t, conn)
	if typ != wire.MsgStreamEnd {
		t.Fatalf("stream terminated with %v, want StreamEnd (save errors must not kill it)", typ)
	}
	if len(tabs) == 0 {
		t.Fatal("stream delivered no windows")
	}
	if cs.failCount() == 0 {
		t.Fatal("no checkpoint saves failed — the test exercised nothing")
	}
	if got := metCkptSaveErrs.Value(); got <= errsBefore {
		t.Fatalf("checkpoint save errors were not counted (%d -> %d)", errsBefore, got)
	}
}
