package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"nexus/internal/obs"
	"nexus/internal/storage"
	"nexus/internal/wire"
)

// HTTP observability round trip against a genuinely separate process:
// the test binary re-executes itself as a durable server that loads
// itself (appends, compaction, one stalled subscription) and announces
// its sidecar address on stdout; the parent then speaks plain HTTP to
// it, the way curl or a Prometheus scraper would. In-process tests
// cannot catch a sidecar that binds the wrong socket, double-registers
// its mux, or reads registries that only look populated because the
// client shares their process.

// TestObsLiveHelper is the child entry point; skipped unless re-executed.
func TestObsLiveHelper(t *testing.T) {
	if os.Getenv("NEXUS_OBS_MODE") != "serve" {
		t.Skip("obs live helper (only runs re-executed)")
	}
	dir := os.Getenv("NEXUS_OBS_DIR")
	eng, err := storage.OpenEngine("live", dir)
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	// Durable appends, each flushed to its own segment: WAL fsync and
	// flush histograms fill, and the fast compactor below has small
	// segments to merge.
	events := eventsTable(400)
	for lo := 0; lo < 400; lo += 100 {
		if err := eng.Append("events", events.Slice(lo, lo+100)); err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		if err := eng.Flush(); err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
	}
	stopCompactor := eng.StartCompactor(50*time.Millisecond,
		storage.CompactOptions{ClusterBy: map[string]string{"events": "k"}}, nil)
	defer stopCompactor()

	srv, err := ServeWithCheckpoints(eng, "127.0.0.1:0", eng.Backing(), time.Second)
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	srv.Logf = func(string, ...any) {}
	bound, _, err := obs.Serve("127.0.0.1:0", obs.Default, map[string]obs.HealthCheck{
		"wal":       eng.Health,
		"manifest":  eng.ManifestHealth,
		"compactor": eng.CompactorHealth,
	})
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}

	// Server-level metrics need wire traffic: one append and one
	// subscription that stays open (credit 1, never drained), so the
	// parent sees a live per-dataset subscription gauge.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	if _, err := wire.WriteFrame(conn, wire.MsgAppend, wire.EncodeStore("events", eventsTable(50))); err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	if typ, _, _, err := wire.ReadFrame(conn); err != nil || typ != wire.MsgAck {
		fmt.Println("ERR append reply", typ, err)
		os.Exit(1)
	}
	sub := wire.StreamSub{
		ID: 1, SourceKind: wire.StreamSrcDataset,
		Dataset: "events", TimeCol: "ts",
		Spec: windowedSpec(t), Credit: 1,
	}
	if typ, _ := subscribeDataset(t, conn, sub); typ != wire.MsgSubAck {
		fmt.Println("ERR subscribe reply", typ)
		os.Exit(1)
	}

	fmt.Println("HTTP", bound)
	time.Sleep(5 * time.Minute) // parent kills us long before this
}

// TestMetricsHealthzLiveSubprocess scrapes a child nexus server over
// real HTTP: /metrics must expose non-zero WAL fsync and compaction
// activity plus the per-dataset server families, /healthz must pass all
// durable checks, and /debug/stats must be well-formed JSON naming the
// same families.
func TestMetricsHealthzLiveSubprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestObsLiveHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"NEXUS_OBS_MODE=serve", "NEXUS_OBS_DIR="+t.TempDir())
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})

	var addr string
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "ERR") {
			t.Fatalf("child failed: %s", line)
		}
		if rest, ok := strings.CutPrefix(line, "HTTP "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("child never announced its sidecar address: %v", sc.Err())
	}
	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	// Compaction is asynchronous in the child; poll /metrics until a
	// pass lands (or the deadline proves the compactor dead).
	var body string
	deadline := time.Now().Add(10 * time.Second)
	for {
		var code int
		var ctype string
		code, ctype, body = get("/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics status %d", code)
		}
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Fatalf("/metrics content type %q", ctype)
		}
		if metricValue(t, body, "nexus_storage_compactions_total") > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no compaction pass ever reported:\n%s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n := metricValue(t, body, "nexus_wal_fsync_seconds_count"); n <= 0 {
		t.Fatalf("WAL fsync histogram empty (count=%d)", n)
	}
	if n := metricValue(t, body, `nexus_server_appends_total{dataset="events"}`); n != 1 {
		t.Fatalf("server append counter = %d, want 1", n)
	}
	if n := metricValue(t, body, `nexus_server_subscriptions{dataset="events"}`); n != 1 {
		t.Fatalf("subscription gauge = %d, want 1 (child holds one open)", n)
	}
	if !strings.Contains(body, "# TYPE nexus_wal_fsync_seconds histogram") {
		t.Fatalf("missing TYPE line for the fsync histogram:\n%s", body)
	}

	code, _, hbody := get("/healthz")
	if code != http.StatusOK || strings.TrimSpace(hbody) != "ok" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, hbody)
	}

	code, ctype, sbody := get("/debug/stats")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/debug/stats = %d %q", code, ctype)
	}
	var stats map[string]json.RawMessage
	if err := json.Unmarshal([]byte(sbody), &stats); err != nil {
		t.Fatalf("/debug/stats is not JSON: %v", err)
	}
	for _, fam := range []string{"nexus_wal_fsync_seconds", "nexus_server_subscriptions"} {
		if _, ok := stats[fam]; !ok {
			t.Fatalf("/debug/stats missing family %q", fam)
		}
	}
}

// metricValue extracts one sample's integer value from Prometheus text
// exposition; series is the exact "name" or `name{labels}` prefix.
func metricValue(t *testing.T, body, series string) int64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + ` (-?\d+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatalf("series %s: %v", series, err)
	}
	return v
}
