package server

import (
	"time"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/obs/trace"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// Server-side half of distributed tracing: requests that arrive with a
// wire.TraceCtx trailing field get spans recorded into the process
// tracer (trace.Default), parented under the client's span, so the
// client's trace id stitches across every server it touches. Requests
// without the field cost nothing — every helper here is nil-safe.

// traceCtx converts the wire representation into the tracer's.
func traceCtx(tc wire.TraceCtx) trace.Context {
	return trace.Context{TraceID: trace.TraceID(tc.TraceID), SpanID: trace.SpanID(tc.SpanID)}
}

// tracedExecutor is a provider that can attach a per-operator
// exec.Trace to a plan execution; every engine implements it.
type tracedExecutor interface {
	ExecuteTraced(plan core.Node, tr *exec.Trace) (*table.Table, error)
}

// scanStatsProvider exposes cumulative storage-scan counters (the
// durable engine implements it); the execute path snapshots them
// around a traced run so the storage span can report this request's
// segment reads.
type scanStatsProvider interface {
	SegmentsScanned() int64
	SegmentsSkipped() int64
	BytesRead() int64
}

// scanStats is one snapshot of a scanStatsProvider.
type scanStats struct {
	scanned, skipped, bytes int64
	ok                      bool
}

func snapshotScanStats(p any) scanStats {
	sp, ok := p.(scanStatsProvider)
	if !ok {
		return scanStats{}
	}
	return scanStats{scanned: sp.SegmentsScanned(), skipped: sp.SegmentsSkipped(), bytes: sp.BytesRead(), ok: true}
}

// executeTraced runs a plan under the provider, with per-operator
// tracing when the request carries a trace (sp non-nil) and the
// provider supports it. The exec.Trace node stats become child spans
// of sp, one per plan node, mirroring the plan tree; a storage.scan
// span carries the segment pruning/read deltas when the provider
// exposes them.
func (cc *connCtx) executeTraced(plan core.Node, sp *trace.Span) (*table.Table, error) {
	te, canTrace := cc.prov.(tracedExecutor)
	if sp == nil || !canTrace {
		return cc.prov.Execute(plan)
	}
	before := snapshotScanStats(cc.prov)
	tr := exec.NewTrace()
	start := time.Now()
	t, err := te.ExecuteTraced(plan, tr)
	dur := time.Since(start)
	EmitPlanSpans(sp.Context(), plan, tr, start)
	if before.ok {
		after := snapshotScanStats(cc.prov)
		trace.Default.Emit(sp.Context(), "storage.scan", start, dur, []trace.Attr{
			trace.Int("segments_scanned", after.scanned-before.scanned),
			trace.Int("segments_pruned", after.skipped-before.skipped),
			trace.Int("bytes_read", after.bytes-before.bytes),
		}, nil)
	}
	return t, err
}

// EmitPlanSpans converts a traced plan's node stats into spans that
// mirror the plan tree under parent. Node wall time is inclusive of
// children (exec.Trace's measure); each span starts at the execution
// start — the runtime does not record per-node start offsets. Exported
// for the public API's local-fragment fast path, which traces local
// executions the same way a server traces remote ones.
func EmitPlanSpans(parent trace.Context, n core.Node, tr *exec.Trace, start time.Time) {
	if n == nil {
		return
	}
	st, ok := tr.Get(n)
	ctx := parent
	if ok {
		name := "exec:" + n.Describe()
		if len(name) > 120 {
			name = name[:120]
		}
		id := trace.Default.Emit(parent, name, start, st.Wall, []trace.Attr{
			trace.Int("calls", st.Calls),
			trace.Int("rows_out", st.RowsOut),
		}, nil)
		if id != 0 {
			ctx = trace.Context{TraceID: parent.TraceID, SpanID: id}
		}
	}
	// Nodes a fused kernel absorbed have no stats; their children hang
	// off the nearest traced ancestor.
	for _, c := range n.Children() {
		EmitPlanSpans(ctx, c, tr, start)
	}
}

// firstScanDataset names the first Scan operator's dataset in a plan
// ("" when the plan scans nothing) — the dataset label for the live
// ops registry.
func firstScanDataset(n core.Node) string {
	if n == nil {
		return ""
	}
	if sc, ok := n.(*core.Scan); ok {
		return sc.Dataset
	}
	for _, c := range n.Children() {
		if ds := firstScanDataset(c); ds != "" {
			return ds
		}
	}
	return ""
}

// tenantName returns the connection's hello-declared tenant.
func (cc *connCtx) tenantName() string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.tenant
}
