package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"nexus/internal/obs"
	"nexus/internal/wire"
)

// Admission control: the server-side half of the production front
// door. Each connection identifies a tenant in its hello exchange;
// quotas bound what a tenant may hold open (subscriptions) and how fast
// it may push and pull rows (append/scan token buckets), and a
// backpressure signal — the credit-stall tail over a sliding window —
// sheds NEW subscriptions while existing ones are already waiting on
// their subscribers. Refusals travel as MsgRefused, which clients
// surface as a typed *federation.RefusedError, distinct from request
// errors.

// TenantQuota bounds one tenant. Zero fields are unlimited.
type TenantQuota struct {
	// MaxSubscriptions caps concurrently active stream subscriptions.
	MaxSubscriptions int
	// AppendRowsPerSec refills the append token bucket; AppendBurst is
	// its capacity (default 2× the rate). Appends are charged by row.
	AppendRowsPerSec float64
	AppendBurst      float64
	// ScanRowsPerSec refills the scan token bucket; ScanBurst is its
	// capacity (default 2× the rate). Executes are admitted while the
	// bucket is positive and charged by result row afterwards — the row
	// count is unknowable before running the plan, so a huge scan
	// overdraws the bucket and later executes wait out the debt.
	ScanRowsPerSec float64
	ScanBurst      float64
}

// AdmissionConfig configures Server.SetAdmission.
type AdmissionConfig struct {
	// Default applies to tenants not named in Tenants — including the
	// anonymous tenant (empty token).
	Default TenantQuota
	// Tenants maps tenant tokens to their quotas.
	Tenants map[string]TenantQuota
	// ShedStallP99 sheds new subscriptions while the p99 of credit
	// stalls observed in the last ShedWindow exceeds it. Zero disables
	// shedding. Existing streams keep running — they are the ones
	// stalling; admission only stops the problem growing.
	ShedStallP99 time.Duration
	// ShedWindow is the sliding window for the stall tail (default 10s).
	ShedWindow time.Duration
}

var (
	metAdmAdmitted = obs.Default.CounterVec("nexus_server_admission_admitted_total",
		"Requests admitted by admission control, by kind (subscribe, append, execute).", "kind")
	metAdmRefused = obs.Default.CounterVec("nexus_server_admission_refused_total",
		"Requests refused by admission control, by kind and reason (quota, shed).", "kind", "reason")
	metAdmShedding = obs.Default.Gauge("nexus_server_admission_shedding",
		"1 while the server is shedding new subscriptions (credit-stall p99 over its bound), else 0.")
	metAdmTenantSubs = obs.Default.GaugeVec("nexus_server_admission_tenant_subscriptions",
		"Active subscriptions per configured tenant (\"(other)\" aggregates unconfigured tokens).", "tenant")
)

// refusal is an admission decision against a request; it becomes a
// MsgRefused frame.
type refusal struct {
	code uint32
	msg  string
}

// admission is the server's admission controller, shared by every
// connection.
type admission struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	tenants map[string]*tenantState

	// stalls is a ring of recent credit-stall observations feeding the
	// shed decision (the same waits nexus_server_credit_stall_seconds
	// observes — the histogram itself is cumulative and cannot answer
	// "p99 over the last ten seconds").
	stalls  []stallSample
	stallAt int

	// now is the clock; tests pin it.
	now func() time.Time
}

type stallSample struct {
	at time.Time
	d  time.Duration
}

// stallRing bounds remembered stall observations. At the default 10s
// window this comfortably covers sustained stalling; overwriting the
// oldest sample under overload only makes the p99 estimate fresher.
const stallRing = 1024

// tenantState is one tenant's live accounting.
type tenantState struct {
	token string
	label string // metrics label: token if configured, else "(other)"
	quota TenantQuota

	mu     sync.Mutex
	subs   int
	append tokenBucket
	scan   tokenBucket
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.ShedWindow <= 0 {
		cfg.ShedWindow = 10 * time.Second
	}
	return &admission{
		cfg:     cfg,
		tenants: map[string]*tenantState{},
		stalls:  make([]stallSample, 0, stallRing),
		now:     time.Now,
	}
}

// SetAdmission installs admission control: per-tenant quotas and
// backpressure shedding. Connections established after the call see it;
// install before clients are expected.
func (s *Server) SetAdmission(cfg AdmissionConfig) {
	s.mu.Lock()
	s.adm = newAdmission(cfg)
	s.mu.Unlock()
}

// tenant resolves a hello token to its accounting state, creating it on
// first sight. Unknown tokens get the default quota; their metrics
// aggregate under "(other)" so client-chosen tokens cannot explode
// label cardinality.
func (a *admission) tenant(token string) *tenantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[token]; ok {
		return t
	}
	quota, configured := a.cfg.Tenants[token]
	if !configured {
		quota = a.cfg.Default
	}
	label := "(other)"
	if configured {
		label = token
	}
	t := &tenantState{token: token, label: label, quota: quota}
	t.append.init(quota.AppendRowsPerSec, quota.AppendBurst, a.now())
	t.scan.init(quota.ScanRowsPerSec, quota.ScanBurst, a.now())
	a.tenants[token] = t
	return t
}

// noteStall records one completed credit-stall wait for the shed signal.
func (a *admission) noteStall(d time.Duration) {
	a.mu.Lock()
	s := stallSample{at: a.now(), d: d}
	if len(a.stalls) < stallRing {
		a.stalls = append(a.stalls, s)
	} else {
		a.stalls[a.stallAt] = s
		a.stallAt = (a.stallAt + 1) % stallRing
	}
	a.mu.Unlock()
}

// stallP99 estimates the p99 of credit stalls observed inside the
// sliding window.
func (a *admission) stallP99() time.Duration {
	a.mu.Lock()
	cutoff := a.now().Add(-a.cfg.ShedWindow)
	var ds []time.Duration
	for _, s := range a.stalls {
		if s.at.After(cutoff) {
			ds = append(ds, s.d)
		}
	}
	a.mu.Unlock()
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := (len(ds)*99 + 99) / 100
	if idx > len(ds) {
		idx = len(ds)
	}
	return ds[idx-1]
}

// shedding reports whether new subscriptions should be refused, and
// keeps the gauge current.
func (a *admission) shedding() bool {
	if a.cfg.ShedStallP99 <= 0 {
		return false
	}
	shed := a.stallP99() > a.cfg.ShedStallP99
	if shed {
		metAdmShedding.Set(1)
	} else {
		metAdmShedding.Set(0)
	}
	return shed
}

// admitSubscription admits or refuses one new subscription for the
// tenant. On admission the tenant's count is already incremented; the
// caller MUST pair it with releaseSubscription when the subscription
// ends (or never starts).
func (a *admission) admitSubscription(t *tenantState) *refusal {
	if a.shedding() {
		metAdmRefused.With("subscribe", "shed").Inc()
		return &refusal{code: wire.RefusedShedding,
			msg: fmt.Sprintf("server shedding new subscriptions: credit-stall p99 over %v (subscribers are not keeping up); retry later", a.cfg.ShedStallP99)}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quota.MaxSubscriptions > 0 && t.subs >= t.quota.MaxSubscriptions {
		metAdmRefused.With("subscribe", "quota").Inc()
		return &refusal{code: wire.RefusedOverQuota,
			msg: fmt.Sprintf("tenant %q is at its subscription quota (%d)", t.token, t.quota.MaxSubscriptions)}
	}
	t.subs++
	metAdmAdmitted.With("subscribe").Inc()
	metAdmTenantSubs.With(t.label).Inc()
	return nil
}

// releaseSubscription returns one subscription slot to the tenant.
func (a *admission) releaseSubscription(t *tenantState) {
	t.mu.Lock()
	t.subs--
	t.mu.Unlock()
	metAdmTenantSubs.With(t.label).Dec()
}

// admitAppend charges rows against the tenant's append budget.
func (a *admission) admitAppend(t *tenantState, rows int64) *refusal {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.append.take(float64(rows), a.now()) {
		metAdmRefused.With("append", "quota").Inc()
		return &refusal{code: wire.RefusedOverQuota,
			msg: fmt.Sprintf("tenant %q is over its append quota (%.0f rows/s); lower the rate or batch smaller", t.token, t.quota.AppendRowsPerSec)}
	}
	metAdmAdmitted.With("append").Inc()
	return nil
}

// admitScan admits an execute while the tenant's scan budget is
// positive. The plan's row count is unknown before it runs, so
// admission is optimistic and chargeScan settles the real cost after —
// a huge result overdraws the bucket and later executes wait the debt
// out.
func (a *admission) admitScan(t *tenantState) *refusal {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.scan.positive(a.now()) {
		metAdmRefused.With("execute", "quota").Inc()
		return &refusal{code: wire.RefusedOverQuota,
			msg: fmt.Sprintf("tenant %q is over its scan quota (%.0f rows/s); retry later", t.token, t.quota.ScanRowsPerSec)}
	}
	metAdmAdmitted.With("execute").Inc()
	return nil
}

// chargeScan settles an executed plan's row cost.
func (a *admission) chargeScan(t *tenantState, rows int64) {
	t.mu.Lock()
	t.scan.charge(float64(rows), a.now())
	t.mu.Unlock()
}

// tokenBucket is a standard refill-on-read token bucket; rate 0 means
// unlimited. Tokens may go negative through chargeScan's post-paid
// settling — the refill works the debt off.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

func (b *tokenBucket) init(rate, burst float64, now time.Time) {
	if rate <= 0 {
		return
	}
	if burst <= 0 {
		burst = 2 * rate
	}
	b.rate, b.burst, b.tokens, b.last = rate, burst, burst, now
}

// refill advances the bucket to now.
func (b *tokenBucket) refill(now time.Time) {
	if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens += el * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// take admits a pre-known cost: the bucket must be positive, and the
// cost is debited (possibly into debt, so one oversized batch is not
// silently free).
func (b *tokenBucket) take(n float64, now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	b.refill(now)
	if b.tokens <= 0 {
		return false
	}
	b.tokens -= n
	return true
}

// positive reports whether the bucket currently has budget.
func (b *tokenBucket) positive(now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	b.refill(now)
	return b.tokens > 0
}

// charge debits an after-the-fact cost (post-paid admission).
func (b *tokenBucket) charge(n float64, now time.Time) {
	if b.rate <= 0 {
		return
	}
	b.refill(now)
	b.tokens -= n
}
