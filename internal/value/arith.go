package value

import (
	"fmt"
	"math"
)

// BinOp enumerates the scalar binary operators of the expression language.
type BinOp uint8

// Binary operators. Arithmetic ops promote int64 to float64 when either
// operand is a float; comparison ops use the cross-kind total order;
// logical ops require bools.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// String returns the operator's surface-language spelling.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "&&"
	case OpOr:
		return "||"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Comparison reports whether the operator yields a bool from two
// comparable operands.
func (op BinOp) Comparison() bool { return op >= OpEq && op <= OpGe }

// Arithmetic reports whether the operator is numeric.
func (op BinOp) Arithmetic() bool { return op <= OpMod }

// Logical reports whether the operator combines bools.
func (op BinOp) Logical() bool { return op == OpAnd || op == OpOr }

// ResultKind computes the static result kind of op applied to operands of
// kinds a and b, mirroring Apply's dynamic behaviour. It returns an error
// for statically ill-typed combinations. KindNull operands are accepted
// anywhere (NULL literals adopt the context's type).
func (op BinOp) ResultKind(a, b Kind) (Kind, error) {
	switch {
	case op.Comparison():
		return KindBool, nil
	case op.Logical():
		if (a == KindBool || a == KindNull) && (b == KindBool || b == KindNull) {
			return KindBool, nil
		}
		return KindNull, fmt.Errorf("value: %v requires bool operands, got %v and %v", op, a, b)
	case op.Arithmetic():
		if a == KindString && b == KindString && op == OpAdd {
			return KindString, nil
		}
		an := a.Numeric() || a == KindNull
		bn := b.Numeric() || b == KindNull
		if !an || !bn {
			return KindNull, fmt.Errorf("value: %v requires numeric operands, got %v and %v", op, a, b)
		}
		if a == KindFloat64 || b == KindFloat64 {
			return KindFloat64, nil
		}
		if op == OpDiv {
			// Integer division stays integral, like Go.
			return KindInt64, nil
		}
		return KindInt64, nil
	}
	return KindNull, fmt.Errorf("value: unknown operator %v", op)
}

// Apply evaluates op on two values. NULL operands propagate to a NULL
// result for arithmetic; comparisons use the total order (so NULL == NULL
// is true — see the package comment); logical ops treat NULL as false.
// Division and modulus by integer zero return NULL rather than faulting,
// so a single bad row cannot abort a whole query.
func Apply(op BinOp, a, b Value) (Value, error) {
	switch {
	case op.Comparison():
		c := Compare(a, b)
		switch op {
		case OpEq:
			return NewBool(c == 0), nil
		case OpNe:
			return NewBool(c != 0), nil
		case OpLt:
			return NewBool(c < 0), nil
		case OpLe:
			return NewBool(c <= 0), nil
		case OpGt:
			return NewBool(c > 0), nil
		default:
			return NewBool(c >= 0), nil
		}
	case op.Logical():
		av := a.Truthy()
		bv := b.Truthy()
		if !a.IsNull() && a.kind != KindBool {
			return Null, fmt.Errorf("value: %v on non-bool %v", op, a.kind)
		}
		if !b.IsNull() && b.kind != KindBool {
			return Null, fmt.Errorf("value: %v on non-bool %v", op, b.kind)
		}
		if op == OpAnd {
			return NewBool(av && bv), nil
		}
		return NewBool(av || bv), nil
	}
	// Arithmetic.
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.kind == KindString && b.kind == KindString && op == OpAdd {
		return NewString(a.s + b.s), nil
	}
	if !a.kind.Numeric() || !b.kind.Numeric() {
		return Null, fmt.Errorf("value: %v requires numeric operands, got %v and %v", op, a.kind, b.kind)
	}
	if a.kind == KindFloat64 || b.kind == KindFloat64 {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch op {
		case OpAdd:
			return NewFloat(af + bf), nil
		case OpSub:
			return NewFloat(af - bf), nil
		case OpMul:
			return NewFloat(af * bf), nil
		case OpDiv:
			return NewFloat(af / bf), nil
		case OpMod:
			return NewFloat(math.Mod(af, bf)), nil
		}
	}
	ai, bi := a.i, b.i
	switch op {
	case OpAdd:
		return NewInt(ai + bi), nil
	case OpSub:
		return NewInt(ai - bi), nil
	case OpMul:
		return NewInt(ai * bi), nil
	case OpDiv:
		if bi == 0 {
			return Null, nil
		}
		return NewInt(ai / bi), nil
	case OpMod:
		if bi == 0 {
			return Null, nil
		}
		return NewInt(ai % bi), nil
	}
	return Null, fmt.Errorf("value: unknown operator %v", op)
}

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators: arithmetic negation, logical not, and null tests.
const (
	OpNeg UnOp = iota
	OpNot
	OpIsNull
	OpIsNotNull
)

// String returns the operator's surface spelling.
func (op UnOp) String() string {
	switch op {
	case OpNeg:
		return "-"
	case OpNot:
		return "!"
	case OpIsNull:
		return "isnull"
	case OpIsNotNull:
		return "isnotnull"
	}
	return fmt.Sprintf("unop(%d)", uint8(op))
}

// ResultKind computes the static result kind of the unary operator.
func (op UnOp) ResultKind(a Kind) (Kind, error) {
	switch op {
	case OpNeg:
		if a.Numeric() || a == KindNull {
			if a == KindNull {
				return KindInt64, nil
			}
			return a, nil
		}
		return KindNull, fmt.Errorf("value: - requires numeric operand, got %v", a)
	case OpNot:
		if a == KindBool || a == KindNull {
			return KindBool, nil
		}
		return KindNull, fmt.Errorf("value: ! requires bool operand, got %v", a)
	case OpIsNull, OpIsNotNull:
		return KindBool, nil
	}
	return KindNull, fmt.Errorf("value: unknown unary operator %v", op)
}

// ApplyUnary evaluates a unary operator.
func ApplyUnary(op UnOp, a Value) (Value, error) {
	switch op {
	case OpNeg:
		switch a.kind {
		case KindNull:
			return Null, nil
		case KindInt64:
			return NewInt(-a.i), nil
		case KindFloat64:
			return NewFloat(-a.f), nil
		}
		return Null, fmt.Errorf("value: - on %v", a.kind)
	case OpNot:
		if a.IsNull() {
			return NewBool(true), nil // !NULL treats NULL as false
		}
		if a.kind != KindBool {
			return Null, fmt.Errorf("value: ! on %v", a.kind)
		}
		return NewBool(a.i == 0), nil
	case OpIsNull:
		return NewBool(a.IsNull()), nil
	case OpIsNotNull:
		return NewBool(!a.IsNull()), nil
	}
	return Null, fmt.Errorf("value: unknown unary operator %v", op)
}
