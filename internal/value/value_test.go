package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindNames(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt64: "int64",
		KindFloat64: "float64", KindString: "string",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
		parsed, err := ParseKind(want)
		if err != nil || parsed != k {
			t.Errorf("ParseKind(%q) = %v, %v", want, parsed, err)
		}
	}
	if _, err := ParseKind("decimal"); err == nil {
		t.Error("ParseKind accepted unknown name")
	}
	if Kind(200).Valid() {
		t.Error("invalid kind considered valid")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("Null broken")
	}
	if v := NewBool(true); !v.Bool() || v.Kind() != KindBool {
		t.Fatal("bool broken")
	}
	if v := NewInt(-7); v.Int() != -7 {
		t.Fatal("int broken")
	}
	if v := NewFloat(2.5); v.Float() != 2.5 {
		t.Fatal("float broken")
	}
	if v := NewString("hi"); v.Str() != "hi" {
		t.Fatal("string broken")
	}
}

func TestAccessorPanicsOnKindMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewInt(1).Bool()
}

func TestCoercions(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Fatal("int→float")
	}
	if i, ok := NewFloat(3.9).AsInt(); !ok || i != 3 {
		t.Fatal("float→int truncation")
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Fatal("string should not coerce")
	}
	if _, ok := Null.AsInt(); ok {
		t.Fatal("null should not coerce")
	}
}

func TestTotalOrder(t *testing.T) {
	// NULL < bool < numeric < string.
	ordered := []Value{
		Null,
		NewBool(false), NewBool(true),
		NewFloat(math.Inf(-1)), NewInt(-5), NewFloat(-1.5), NewInt(0),
		NewFloat(0.5), NewInt(2), NewFloat(2.5), NewFloat(math.Inf(1)),
		NewString(""), NewString("a"), NewString("b"),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCrossKindNumericEquality(t *testing.T) {
	if !Equal(NewInt(2), NewFloat(2.0)) {
		t.Fatal("2 != 2.0")
	}
	if Hash(NewInt(2)) != Hash(NewFloat(2.0)) {
		t.Fatal("hash(2) != hash(2.0)")
	}
	if Equal(NewInt(2), NewFloat(2.5)) {
		t.Fatal("2 == 2.5")
	}
}

func TestNaNIsSelfEqual(t *testing.T) {
	nan := NewFloat(math.NaN())
	if !Equal(nan, nan) {
		t.Fatal("NaN != NaN under the total order")
	}
	if Hash(nan) != Hash(NewFloat(math.NaN())) {
		t.Fatal("NaN hashes differ")
	}
	if Compare(nan, NewFloat(math.Inf(-1))) >= 0 {
		t.Fatal("NaN must sort before -Inf")
	}
}

// Property: Hash is consistent with Equal.
func TestHashEqualConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewFloat(float64(b))
		if Equal(va, vb) && Hash(va) != Hash(vb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: AppendKey is injective w.r.t. Equal.
func TestAppendKeyInjective(t *testing.T) {
	f := func(a int64, b string, pick bool) bool {
		var v1, v2 Value
		if pick {
			v1, v2 = NewInt(a), NewString(b)
		} else {
			v1, v2 = NewInt(a), NewInt(a+1)
		}
		k1 := string(AppendKey(nil, v1))
		k2 := string(AppendKey(nil, v2))
		return (k1 == k2) == Equal(v1, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric and transitive on random ints/floats.
func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b float64) bool {
		va, vb := NewFloat(a), NewFloat(b)
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	vals := []Value{
		NewBool(true), NewInt(-99), NewFloat(2.25), NewString("hello world"), Null,
	}
	for _, v := range vals {
		got, err := Parse(v.Kind(), v.String())
		if err != nil {
			t.Fatalf("parse %v: %v", v, err)
		}
		if !Equal(got, v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
	if _, err := Parse(KindInt64, "abc"); err == nil {
		t.Fatal("parsed garbage int")
	}
	if _, err := Parse(KindBool, "maybe"); err == nil {
		t.Fatal("parsed garbage bool")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   BinOp
		a, b Value
		want Value
	}{
		{OpAdd, NewInt(2), NewInt(3), NewInt(5)},
		{OpAdd, NewInt(2), NewFloat(0.5), NewFloat(2.5)},
		{OpSub, NewFloat(5), NewInt(2), NewFloat(3)},
		{OpMul, NewInt(4), NewInt(-2), NewInt(-8)},
		{OpDiv, NewInt(7), NewInt(2), NewInt(3)},
		{OpDiv, NewFloat(7), NewInt(2), NewFloat(3.5)},
		{OpMod, NewInt(7), NewInt(4), NewInt(3)},
		{OpAdd, NewString("a"), NewString("b"), NewString("ab")},
		{OpDiv, NewInt(1), NewInt(0), Null}, // div by zero → NULL
		{OpMod, NewInt(1), NewInt(0), Null},
		{OpAdd, Null, NewInt(1), Null}, // NULL propagates
	}
	for _, c := range cases {
		got, err := Apply(c.op, c.a, c.b)
		if err != nil {
			t.Fatalf("%v %v %v: %v", c.a, c.op, c.b, err)
		}
		if got.Kind() != c.want.Kind() || !Equal(got, c.want) {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
	if _, err := Apply(OpMul, NewString("a"), NewInt(2)); err == nil {
		t.Error("string*int should error")
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	tr, fa := NewBool(true), NewBool(false)
	if got, _ := Apply(OpLt, NewInt(1), NewInt(2)); !got.Bool() {
		t.Error("1 < 2")
	}
	if got, _ := Apply(OpEq, Null, Null); !got.Bool() {
		t.Error("NULL == NULL must hold under the total order")
	}
	if got, _ := Apply(OpAnd, tr, fa); got.Bool() {
		t.Error("true && false")
	}
	if got, _ := Apply(OpOr, fa, tr); !got.Bool() {
		t.Error("false || true")
	}
	if got, _ := Apply(OpAnd, Null, tr); got.Bool() {
		t.Error("NULL && true should be false (NULL is not truthy)")
	}
	if _, err := Apply(OpAnd, NewInt(1), tr); err == nil {
		t.Error("int && bool should error")
	}
}

func TestUnaryOps(t *testing.T) {
	if got, _ := ApplyUnary(OpNeg, NewInt(5)); got.Int() != -5 {
		t.Error("neg int")
	}
	if got, _ := ApplyUnary(OpNeg, NewFloat(2.5)); got.Float() != -2.5 {
		t.Error("neg float")
	}
	if got, _ := ApplyUnary(OpNot, NewBool(false)); !got.Bool() {
		t.Error("not false")
	}
	if got, _ := ApplyUnary(OpIsNull, Null); !got.Bool() {
		t.Error("isnull(NULL)")
	}
	if got, _ := ApplyUnary(OpIsNotNull, NewInt(1)); !got.Bool() {
		t.Error("isnotnull(1)")
	}
	if _, err := ApplyUnary(OpNeg, NewString("x")); err == nil {
		t.Error("neg string should error")
	}
}

func TestResultKinds(t *testing.T) {
	if k, _ := OpAdd.ResultKind(KindInt64, KindFloat64); k != KindFloat64 {
		t.Error("int+float should be float")
	}
	if k, _ := OpAdd.ResultKind(KindInt64, KindInt64); k != KindInt64 {
		t.Error("int+int should be int")
	}
	if k, _ := OpEq.ResultKind(KindString, KindInt64); k != KindBool {
		t.Error("comparisons are bool")
	}
	if _, err := OpAdd.ResultKind(KindBool, KindInt64); err == nil {
		t.Error("bool+int should be a type error")
	}
	if k, _ := OpAdd.ResultKind(KindString, KindString); k != KindString {
		t.Error("string concat")
	}
}

func TestTruthy(t *testing.T) {
	if Null.Truthy() || NewBool(false).Truthy() || NewInt(1).Truthy() {
		t.Fatal("only bool true is truthy")
	}
	if !NewBool(true).Truthy() {
		t.Fatal("true is truthy")
	}
}
