// Package value defines the scalar value representation used throughout
// the nexus Big Data algebra: a compact tagged struct (no interface
// boxing) with NULL as a first-class kind, a total order over all values,
// hash-consistent equality, and numeric arithmetic with promotion.
//
// Null semantics (documented deviation from SQL tri-state logic): NULL
// orders before every non-null value and is equal to itself. This keeps
// grouping and join keys hash-consistent without a three-valued logic in
// the executor; predicates treat NULL comparisons as false except for
// IS NULL-style tests, which the expression layer provides.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the scalar types of the algebra's type system.
type Kind uint8

// The scalar kinds. Null is the kind of the untyped NULL literal; columns
// always carry one of the four non-null kinds plus a validity bitmap.
const (
	KindNull Kind = iota
	KindBool
	KindInt64
	KindFloat64
	KindString
	numKinds
)

// String returns the lower-case type name used in schemas, error messages
// and the surface language.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	case KindString:
		return "string"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k < numKinds }

// Numeric reports whether k is an arithmetic kind.
func (k Kind) Numeric() bool { return k == KindInt64 || k == KindFloat64 }

// ParseKind parses a type name as printed by Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "null":
		return KindNull, nil
	case "bool":
		return KindBool, nil
	case "int64", "int":
		return KindInt64, nil
	case "float64", "float":
		return KindFloat64, nil
	case "string":
		return KindString, nil
	}
	return KindNull, fmt.Errorf("value: unknown type name %q", s)
}

// Value is a scalar value: one of NULL, bool, int64, float64 or string.
// The zero Value is NULL. Values are immutable and safe to copy.
type Value struct {
	kind Kind
	i    int64 // bool (0/1) and int64 payload
	f    float64
	s    string
}

// Null is the NULL value.
var Null = Value{}

// NewBool returns a bool value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewInt returns an int64 value.
func NewInt(i int64) Value { return Value{kind: KindInt64, i: i} }

// NewFloat returns a float64 value.
func NewFloat(f float64) Value { return Value{kind: KindFloat64, f: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload. It panics when the value is not a
// bool; callers must check Kind first (a kind mismatch is a bug in the
// caller, not a data error).
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("value: Bool() on " + v.kind.String())
	}
	return v.i != 0
}

// Int returns the int64 payload, panicking on kind mismatch.
func (v Value) Int() int64 {
	if v.kind != KindInt64 {
		panic("value: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the float64 payload, panicking on kind mismatch.
func (v Value) Float() float64 {
	if v.kind != KindFloat64 {
		panic("value: Float() on " + v.kind.String())
	}
	return v.f
}

// Str returns the string payload, panicking on kind mismatch.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("value: Str() on " + v.kind.String())
	}
	return v.s
}

// AsFloat coerces a numeric value to float64. ok is false for non-numeric
// values (including NULL).
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindInt64:
		return float64(v.i), true
	case KindFloat64:
		return v.f, true
	}
	return 0, false
}

// AsInt coerces a numeric value to int64 (floats truncate). ok is false
// for non-numeric values.
func (v Value) AsInt() (i int64, ok bool) {
	switch v.kind {
	case KindInt64:
		return v.i, true
	case KindFloat64:
		return int64(v.f), true
	}
	return 0, false
}

// String renders the value for display and for the Explain output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt64:
		return strconv.FormatInt(v.i, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	}
	return "?"
}

// Parse parses the textual form of a value of the given kind. It accepts
// the representations produced by String (strings may be quoted or bare).
func Parse(k Kind, s string) (Value, error) {
	switch k {
	case KindNull:
		return Null, nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null, fmt.Errorf("value: parse bool %q: %w", s, err)
		}
		return NewBool(b), nil
	case KindInt64:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("value: parse int64 %q: %w", s, err)
		}
		return NewInt(i), nil
	case KindFloat64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, fmt.Errorf("value: parse float64 %q: %w", s, err)
		}
		return NewFloat(f), nil
	case KindString:
		if len(s) >= 2 && s[0] == '"' {
			u, err := strconv.Unquote(s)
			if err != nil {
				return Null, fmt.Errorf("value: parse string %q: %w", s, err)
			}
			return NewString(u), nil
		}
		return NewString(s), nil
	}
	return Null, fmt.Errorf("value: parse: bad kind %v", k)
}

// kindRank orders kinds for the cross-kind total order: NULL < bool <
// numeric < string. Int64 and Float64 share a rank and compare
// numerically against each other.
func kindRank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt64, KindFloat64:
		return 2
	case KindString:
		return 3
	}
	return 4
}

// Compare defines a total order over all values: NULL first, then bools
// (false < true), then numbers (int64 and float64 compared numerically),
// then strings (byte order). It returns -1, 0 or +1.
func Compare(a, b Value) int {
	ra, rb := kindRank(a.kind), kindRank(b.kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // bools
		switch {
		case a.i == b.i:
			return 0
		case a.i < b.i:
			return -1
		}
		return 1
	case 2: // numbers
		if a.kind == KindInt64 && b.kind == KindInt64 {
			switch {
			case a.i == b.i:
				return 0
			case a.i < b.i:
				return -1
			}
			return 1
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		// NaN sorts before all other floats and equals itself so that
		// sorting and grouping stay deterministic.
		an, bn := math.IsNaN(af), math.IsNaN(bf)
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		case bn:
			return 1
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	default: // strings
		switch {
		case a.s == b.s:
			return 0
		case a.s < b.s:
			return -1
		}
		return 1
	}
}

// Equal reports whether a and b are equal under the total order (so
// NULL == NULL, and 2 == 2.0 across numeric kinds).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Less reports a < b under the total order.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// Hash returns a 64-bit hash consistent with Equal: values that compare
// equal hash equal, including integral floats vs ints (2.0 vs 2) and NaN
// vs NaN.
func Hash(v Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mix8 := func(u uint64) {
		for s := 0; s < 64; s += 8 {
			mix(byte(u >> s))
		}
	}
	switch v.kind {
	case KindNull:
		mix(0)
	case KindBool:
		mix(1)
		mix(byte(v.i))
	case KindInt64:
		mix(2)
		mix8(uint64(v.i))
	case KindFloat64:
		// Normalize integral floats to the int64 representation so that
		// Hash agrees with Equal across numeric kinds.
		f := v.f
		if math.IsNaN(f) {
			mix(3)
			break
		}
		if i := int64(f); float64(i) == f {
			mix(2)
			mix8(uint64(i))
			break
		}
		mix(4)
		mix8(math.Float64bits(f))
	case KindString:
		mix(5)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	}
	return h
}

// AppendKey appends a canonical byte encoding of v to dst. Two values
// produce the same encoding iff they are Equal, so the result can be used
// directly as a hash-map key for joins and grouping.
func AppendKey(dst []byte, v Value) []byte {
	put8 := func(dst []byte, u uint64) []byte {
		return append(dst,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	switch v.kind {
	case KindNull:
		return append(dst, 0)
	case KindBool:
		return append(dst, 1, byte(v.i))
	case KindInt64:
		return put8(append(dst, 2), uint64(v.i))
	case KindFloat64:
		f := v.f
		if math.IsNaN(f) {
			return append(dst, 3)
		}
		if i := int64(f); float64(i) == f {
			return put8(append(dst, 2), uint64(i))
		}
		return put8(append(dst, 4), math.Float64bits(f))
	case KindString:
		dst = put8(append(dst, 5), uint64(len(v.s)))
		return append(dst, v.s...)
	}
	return append(dst, 0xff)
}

// Truthy reports whether v counts as true in a predicate position: only a
// non-null bool true is truthy; NULL and false are not.
func (v Value) Truthy() bool { return v.kind == KindBool && v.i != 0 }
