package expr

import (
	"fmt"
	"math"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// This file implements the vectorized batch compiler: every expression
// node compiles to a batchFn producing a typed vector (vec) over all rows
// of a table in tight loops over raw payload slices, with NULLs carried in
// validity bitmaps. The row-at-a-time evalFn in eval.go remains the
// semantic oracle and the fallback used for Call leaves, whose registered
// functions only expose row-wise evaluators.
//
// Semantics mirror value.Apply/ApplyUnary exactly:
//   - comparisons use the cross-kind total order (NULL first, NULL==NULL)
//     and always yield a non-NULL bool;
//   - logical ops treat NULL as false and always yield a non-NULL bool;
//   - arithmetic propagates NULL; integer division/modulus by zero is NULL;
//   - int64 operands compare and compute as int64 (no float64 round trip).

// vec is a batch evaluation result: a typed payload, an optional validity
// bitmap (nil = all rows valid), and a stride distinguishing a broadcast
// scalar (stride 0, payload length 1) from a per-row column (stride 1).
type vec struct {
	kind   value.Kind
	bools  []bool
	ints   []int64
	floats []float64
	strs   []string
	valid  []bool
	stride int
	n      int
}

// batchFn evaluates an expression over all n rows of t.
type batchFn func(t *table.Table, n int) (*vec, error)

// null reports whether row i of the vector is NULL.
func (v *vec) null(i int) bool { return v.valid != nil && !v.valid[i*v.stride] }

// allValid reports whether no row can be NULL.
func (v *vec) allValid() bool { return v.valid == nil }

// valueAt returns row i boxed, for the generic fallback paths.
func (v *vec) valueAt(i int) value.Value {
	if v.null(i) {
		return value.Null
	}
	j := i * v.stride
	switch v.kind {
	case value.KindBool:
		return value.NewBool(v.bools[j])
	case value.KindInt64:
		return value.NewInt(v.ints[j])
	case value.KindFloat64:
		return value.NewFloat(v.floats[j])
	case value.KindString:
		return value.NewString(v.strs[j])
	}
	return value.Null
}

// truthyAt mirrors value.Truthy: only a valid bool true counts.
func (v *vec) truthyAt(i int) bool {
	return v.kind == value.KindBool && !v.null(i) && v.bools[i*v.stride]
}

// constVec broadcasts a scalar. NULL becomes an all-invalid int64 vector,
// so downstream kernels handle the bare-NULL literal through the same
// validity machinery as data NULLs.
func constVec(val value.Value) *vec {
	v := &vec{stride: 0}
	switch val.Kind() {
	case value.KindBool:
		v.kind = value.KindBool
		v.bools = []bool{val.Bool()}
	case value.KindInt64:
		v.kind = value.KindInt64
		v.ints = []int64{val.Int()}
	case value.KindFloat64:
		v.kind = value.KindFloat64
		v.floats = []float64{val.Float()}
	case value.KindString:
		v.kind = value.KindString
		v.strs = []string{val.Str()}
	default:
		v.kind = value.KindInt64
		v.ints = []int64{0}
		v.valid = []bool{false}
	}
	return v
}

// colVec wraps a table column's payload without copying.
func colVec(c *table.Column) *vec {
	v := &vec{kind: c.Kind(), valid: c.Validity(), stride: 1, n: c.Len()}
	switch c.Kind() {
	case value.KindBool:
		v.bools = c.Bools()
	case value.KindInt64:
		v.ints = c.Ints()
	case value.KindFloat64:
		v.floats = c.Floats()
	case value.KindString:
		v.strs = c.Strs()
	}
	return v
}

// column materializes the vector as a table column of n rows, sharing
// payload storage for per-row vectors.
func (v *vec) column(n int) *table.Column {
	if v.stride == 1 {
		var c *table.Column
		switch v.kind {
		case value.KindBool:
			c = table.BoolColumn(v.bools)
		case value.KindInt64:
			c = table.IntColumn(v.ints)
		case value.KindFloat64:
			c = table.FloatColumn(v.floats)
		case value.KindString:
			c = table.StringColumn(v.strs)
		}
		if v.valid != nil {
			c = c.WithValidity(v.valid)
		}
		return c
	}
	// Broadcast scalar.
	out := &vec{kind: v.kind, stride: 1, n: n}
	switch v.kind {
	case value.KindBool:
		out.bools = make([]bool, n)
		for i := range out.bools {
			out.bools[i] = v.bools[0]
		}
	case value.KindInt64:
		out.ints = make([]int64, n)
		for i := range out.ints {
			out.ints[i] = v.ints[0]
		}
	case value.KindFloat64:
		out.floats = make([]float64, n)
		for i := range out.floats {
			out.floats[i] = v.floats[0]
		}
	case value.KindString:
		out.strs = make([]string, n)
		for i := range out.strs {
			out.strs[i] = v.strs[0]
		}
	}
	if v.valid != nil {
		out.valid = make([]bool, n)
		for i := range out.valid {
			out.valid[i] = v.valid[0]
		}
	}
	return out.column(n)
}

// compileBatch builds the vectorized program for e. It succeeds for every
// well-typed expression: sub-trees it cannot vectorize (Call leaves) run
// the row evaluator internally.
func compileBatch(e Expr, sch schema.Schema) (batchFn, error) {
	switch node := e.(type) {
	case *Const:
		v := constVec(node.Val)
		return func(*table.Table, int) (*vec, error) { return v, nil }, nil
	case *Col:
		i := sch.IndexOf(node.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown column %q", node.Name)
		}
		return func(t *table.Table, _ int) (*vec, error) {
			return colVec(t.Col(i)), nil
		}, nil
	case *Bin:
		l, err := compileBatch(node.L, sch)
		if err != nil {
			return nil, err
		}
		r, err := compileBatch(node.R, sch)
		if err != nil {
			return nil, err
		}
		op := node.Op
		return func(t *table.Table, n int) (*vec, error) {
			lv, err := l(t, n)
			if err != nil {
				return nil, err
			}
			rv, err := r(t, n)
			if err != nil {
				return nil, err
			}
			return binVec(op, lv, rv, n)
		}, nil
	case *Un:
		x, err := compileBatch(node.X, sch)
		if err != nil {
			return nil, err
		}
		op := node.Op
		return func(t *table.Table, n int) (*vec, error) {
			xv, err := x(t, n)
			if err != nil {
				return nil, err
			}
			return unVec(op, xv, n)
		}, nil
	case *Call:
		// Row-oracle fallback: registered functions are row-wise.
		prog, err := compileNode(node, sch)
		if err != nil {
			return nil, err
		}
		kind, err := InferKind(node, sch)
		if err != nil {
			return nil, err
		}
		outKind := nonNullKind(kind)
		return func(t *table.Table, n int) (*vec, error) {
			col := table.NewColumn(outKind, n)
			for row := 0; row < n; row++ {
				val, err := prog(t, row)
				if err != nil {
					return nil, err
				}
				if err := col.Append(val); err != nil {
					return nil, err
				}
			}
			return colVec(col), nil
		}, nil
	}
	return nil, fmt.Errorf("expr: unknown node %T", e)
}

// combineValidity intersects two validity bitmaps into a per-row bitmap
// for n rows, or nil when neither operand can be NULL.
func combineValidity(l, r *vec, n int) []bool {
	if l.valid == nil && r.valid == nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = !l.null(i) && !r.null(i)
	}
	return out
}

func binVec(op value.BinOp, l, r *vec, n int) (*vec, error) {
	switch {
	case op.Logical():
		return logicalVec(op, l, r, n), nil
	case op.Comparison():
		return compareVec(op, l, r, n), nil
	}
	return arithVec(op, l, r, n)
}

// logicalVec computes && / || with NULL-is-false semantics; the result is
// always a valid bool, matching value.Apply.
func logicalVec(op value.BinOp, l, r *vec, n int) *vec {
	out := make([]bool, n)
	if l.kind == value.KindBool && r.kind == value.KindBool &&
		l.allValid() && r.allValid() && l.stride == 1 && r.stride == 1 {
		lb, rb := l.bools, r.bools
		if op == value.OpAnd {
			for i := 0; i < n; i++ {
				out[i] = lb[i] && rb[i]
			}
		} else {
			for i := 0; i < n; i++ {
				out[i] = lb[i] || rb[i]
			}
		}
		return &vec{kind: value.KindBool, bools: out, stride: 1, n: n}
	}
	if op == value.OpAnd {
		for i := 0; i < n; i++ {
			out[i] = l.truthyAt(i) && r.truthyAt(i)
		}
	} else {
		for i := 0; i < n; i++ {
			out[i] = l.truthyAt(i) || r.truthyAt(i)
		}
	}
	return &vec{kind: value.KindBool, bools: out, stride: 1, n: n}
}

// cmpHolds translates a three-way comparison into the operator's verdict.
func cmpHolds(op value.BinOp, c int) bool {
	switch op {
	case value.OpEq:
		return c == 0
	case value.OpNe:
		return c != 0
	case value.OpLt:
		return c < 0
	case value.OpLe:
		return c <= 0
	case value.OpGt:
		return c > 0
	}
	return c >= 0
}

// cmpLoop runs one comparison over null-free same-type operands.
func cmpLoop[T int64 | float64 | string](op value.BinOp, a []T, as int, b []T, bs int, out []bool) {
	n := len(out)
	switch op {
	case value.OpEq:
		for i := 0; i < n; i++ {
			out[i] = a[i*as] == b[i*bs]
		}
	case value.OpNe:
		for i := 0; i < n; i++ {
			out[i] = a[i*as] != b[i*bs]
		}
	case value.OpLt:
		for i := 0; i < n; i++ {
			out[i] = a[i*as] < b[i*bs]
		}
	case value.OpLe:
		for i := 0; i < n; i++ {
			out[i] = a[i*as] <= b[i*bs]
		}
	case value.OpGt:
		for i := 0; i < n; i++ {
			out[i] = a[i*as] > b[i*bs]
		}
	case value.OpGe:
		for i := 0; i < n; i++ {
			out[i] = a[i*as] >= b[i*bs]
		}
	}
}

// compareVec evaluates a comparison under the total order. Same-kind
// null-free operands run type-specialized tight loops; everything else
// (NULLs, cross-rank operands, bools, NaN-bearing floats) goes through
// per-row three-way comparison consistent with value.Compare.
func compareVec(op value.BinOp, l, r *vec, n int) *vec {
	out := make([]bool, n)
	res := &vec{kind: value.KindBool, bools: out, stride: 1, n: n}
	bothValid := l.allValid() && r.allValid()

	switch {
	case bothValid && l.kind == value.KindInt64 && r.kind == value.KindInt64:
		// int64 operands compare exactly — no float64 round trip, so
		// values beyond 2^53 keep full precision.
		cmpLoop(op, l.ints, l.stride, r.ints, r.stride, out)
		return res
	case bothValid && l.kind == value.KindString && r.kind == value.KindString:
		cmpLoop(op, l.strs, l.stride, r.strs, r.stride, out)
		return res
	case bothValid && l.kind.Numeric() && r.kind.Numeric():
		// Mixed numeric kinds compare as float64, like value.Compare;
		// NaN needs the total order (NaN first, NaN == NaN).
		lf, ls := asFloats(l, n)
		rf, rs := asFloats(r, n)
		if !hasNaN(lf) && !hasNaN(rf) {
			cmpLoop(op, lf, ls, rf, rs, out)
			return res
		}
		for i := 0; i < n; i++ {
			out[i] = cmpHolds(op, cmpFloatTotal(lf[i*ls], rf[i*rs]))
		}
		return res
	}

	// Generic path: honours NULL ordering and cross-rank comparison.
	for i := 0; i < n; i++ {
		out[i] = cmpHolds(op, value.Compare(l.valueAt(i), r.valueAt(i)))
	}
	return res
}

// cmpFloatTotal is value.Compare's float leg: NaN sorts first and equals
// itself.
func cmpFloatTotal(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func hasNaN(f []float64) bool {
	for _, x := range f {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// asFloats views a numeric vector as float64s, converting int64 payloads.
func asFloats(v *vec, n int) ([]float64, int) {
	if v.kind == value.KindFloat64 {
		return v.floats, v.stride
	}
	if v.stride == 0 {
		return []float64{float64(v.ints[0])}, 0
	}
	out := make([]float64, n)
	for i, x := range v.ints[:n] {
		out[i] = float64(x)
	}
	return out, 1
}

// arithVec evaluates +,-,*,/,% with NULL propagation. Result kind follows
// value.Apply: all-int64 stays int64 (division/modulus by zero is NULL),
// any float64 operand promotes to float64, string+string concatenates.
func arithVec(op value.BinOp, l, r *vec, n int) (*vec, error) {
	valid := combineValidity(l, r, n)

	if l.kind == value.KindString && r.kind == value.KindString && op == value.OpAdd {
		out := make([]string, n)
		ls, rs := l.strs, r.strs
		a, b := l.stride, r.stride
		if valid == nil {
			for i := 0; i < n; i++ {
				out[i] = ls[i*a] + rs[i*b]
			}
		} else {
			for i := 0; i < n; i++ {
				if valid[i] {
					out[i] = ls[i*a] + rs[i*b]
				}
			}
		}
		return &vec{kind: value.KindString, strs: out, valid: valid, stride: 1, n: n}, nil
	}
	if !l.kind.Numeric() || !r.kind.Numeric() {
		return nil, fmt.Errorf("expr: %v requires numeric operands, got %v and %v", op, l.kind, r.kind)
	}

	if l.kind == value.KindInt64 && r.kind == value.KindInt64 {
		out := make([]int64, n)
		a, b := l.stride, r.stride
		li, ri := l.ints, r.ints
		switch op {
		case value.OpAdd:
			for i := 0; i < n; i++ {
				out[i] = li[i*a] + ri[i*b]
			}
		case value.OpSub:
			for i := 0; i < n; i++ {
				out[i] = li[i*a] - ri[i*b]
			}
		case value.OpMul:
			for i := 0; i < n; i++ {
				out[i] = li[i*a] * ri[i*b]
			}
		case value.OpDiv, value.OpMod:
			// Zero divisors yield NULL rather than faulting.
			for i := 0; i < n; i++ {
				d := ri[i*b]
				if d == 0 {
					if valid == nil {
						valid = newAllValid(n)
					}
					valid[i] = false
					continue
				}
				if valid != nil && !valid[i] {
					continue
				}
				if op == value.OpDiv {
					out[i] = li[i*a] / d
				} else {
					out[i] = li[i*a] % d
				}
			}
		default:
			return nil, fmt.Errorf("expr: unknown operator %v", op)
		}
		return &vec{kind: value.KindInt64, ints: out, valid: valid, stride: 1, n: n}, nil
	}

	lf, a := asFloats(l, n)
	rf, b := asFloats(r, n)
	out := make([]float64, n)
	switch op {
	case value.OpAdd:
		for i := 0; i < n; i++ {
			out[i] = lf[i*a] + rf[i*b]
		}
	case value.OpSub:
		for i := 0; i < n; i++ {
			out[i] = lf[i*a] - rf[i*b]
		}
	case value.OpMul:
		for i := 0; i < n; i++ {
			out[i] = lf[i*a] * rf[i*b]
		}
	case value.OpDiv:
		for i := 0; i < n; i++ {
			out[i] = lf[i*a] / rf[i*b]
		}
	case value.OpMod:
		for i := 0; i < n; i++ {
			out[i] = math.Mod(lf[i*a], rf[i*b])
		}
	default:
		return nil, fmt.Errorf("expr: unknown operator %v", op)
	}
	return &vec{kind: value.KindFloat64, floats: out, valid: valid, stride: 1, n: n}, nil
}

func newAllValid(n int) []bool {
	v := make([]bool, n)
	for i := range v {
		v[i] = true
	}
	return v
}

// unVec evaluates unary operators, mirroring value.ApplyUnary.
func unVec(op value.UnOp, x *vec, n int) (*vec, error) {
	switch op {
	case value.OpNeg:
		switch x.kind {
		case value.KindInt64:
			out := make([]int64, n)
			s := x.stride
			for i := 0; i < n; i++ {
				out[i] = -x.ints[i*s]
			}
			return &vec{kind: value.KindInt64, ints: out, valid: spreadValidity(x, n), stride: 1, n: n}, nil
		case value.KindFloat64:
			out := make([]float64, n)
			s := x.stride
			for i := 0; i < n; i++ {
				out[i] = -x.floats[i*s]
			}
			return &vec{kind: value.KindFloat64, floats: out, valid: spreadValidity(x, n), stride: 1, n: n}, nil
		}
		return nil, fmt.Errorf("expr: - on %v", x.kind)
	case value.OpNot:
		// !NULL is true (NULL counts as false), so the result is always
		// a valid bool.
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			out[i] = !x.truthyAt(i)
		}
		return &vec{kind: value.KindBool, bools: out, stride: 1, n: n}, nil
	case value.OpIsNull, value.OpIsNotNull:
		want := op == value.OpIsNull
		out := make([]bool, n)
		if x.valid != nil {
			for i := 0; i < n; i++ {
				out[i] = x.null(i) == want
			}
		} else if !want {
			for i := range out {
				out[i] = true
			}
		}
		return &vec{kind: value.KindBool, bools: out, stride: 1, n: n}, nil
	}
	return nil, fmt.Errorf("expr: unknown unary operator %v", op)
}

// spreadValidity materializes x's validity as a stride-1 bitmap (nil when
// all valid), so a derived vector can own it.
func spreadValidity(x *vec, n int) []bool {
	if x.valid == nil {
		return nil
	}
	if x.stride == 1 {
		return x.valid
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = x.valid[0]
	}
	return out
}
