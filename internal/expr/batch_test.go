package expr

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Differential tests: the vectorized batch evaluator must agree with the
// row-at-a-time oracle on every row, for every expression shape, NULL
// pattern and value range — including int64 values past 2^53, where a
// float64 round trip would silently lose precision.

func diffSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "i", Kind: value.KindInt64},
		schema.Attribute{Name: "j", Kind: value.KindInt64},
		schema.Attribute{Name: "f", Kind: value.KindFloat64},
		schema.Attribute{Name: "g", Kind: value.KindFloat64},
		schema.Attribute{Name: "s", Kind: value.KindString},
		schema.Attribute{Name: "t", Kind: value.KindString},
		schema.Attribute{Name: "p", Kind: value.KindBool},
		schema.Attribute{Name: "q", Kind: value.KindBool},
	)
}

// diffTable builds n rows of random data with NULLs sprinkled into every
// column and int64 values drawn from the full 64-bit range.
func diffTable(r *rand.Rand, n int) *table.Table {
	sch := diffSchema()
	b := table.NewBuilder(sch, n)
	edgeInts := []int64{
		0, 1, -1, 1 << 53, 1<<53 + 1, -(1 << 53), -(1<<53 + 1),
		math.MaxInt64, math.MinInt64, math.MaxInt64 - 1,
	}
	edgeFloats := []float64{0, -0.5, 2.5, math.NaN(), math.Inf(1), math.Inf(-1), 1e300}
	strs := []string{"", "a", "ab", "b", "zz", "\x00x"}
	randInt := func() value.Value {
		if r.Intn(5) == 0 {
			return value.NewInt(edgeInts[r.Intn(len(edgeInts))])
		}
		return value.NewInt(int64(r.Intn(201) - 100))
	}
	randFloat := func() value.Value {
		if r.Intn(6) == 0 {
			return value.NewFloat(edgeFloats[r.Intn(len(edgeFloats))])
		}
		return value.NewFloat(r.NormFloat64() * 10)
	}
	maybeNull := func(v value.Value) value.Value {
		if r.Intn(5) == 0 {
			return value.Null
		}
		return v
	}
	for row := 0; row < n; row++ {
		b.MustAppend(
			maybeNull(randInt()),
			maybeNull(randInt()),
			maybeNull(randFloat()),
			maybeNull(randFloat()),
			maybeNull(value.NewString(strs[r.Intn(len(strs))])),
			maybeNull(value.NewString(strs[r.Intn(len(strs))])),
			maybeNull(value.NewBool(r.Intn(2) == 0)),
			maybeNull(value.NewBool(r.Intn(2) == 0)),
		)
	}
	return b.Build()
}

// genExpr builds a random well-typed expression of the wanted kind.
func genExpr(r *rand.Rand, depth int, want value.Kind) Expr {
	leaf := depth <= 0
	switch want {
	case value.KindInt64:
		if leaf || r.Intn(3) == 0 {
			switch r.Intn(4) {
			case 0:
				return Column("i")
			case 1:
				return Column("j")
			case 2:
				return CInt([]int64{0, 1, -3, 7, 1<<53 + 1, math.MaxInt64}[r.Intn(6)])
			default:
				return C(value.Null)
			}
		}
		switch r.Intn(6) {
		case 0:
			return Neg(genExpr(r, depth-1, value.KindInt64))
		case 1:
			return NewCall("abs", genExpr(r, depth-1, value.KindInt64))
		default:
			ops := []value.BinOp{value.OpAdd, value.OpSub, value.OpMul, value.OpDiv, value.OpMod}
			return NewBin(ops[r.Intn(len(ops))], genExpr(r, depth-1, value.KindInt64), genExpr(r, depth-1, value.KindInt64))
		}
	case value.KindFloat64:
		if leaf || r.Intn(3) == 0 {
			switch r.Intn(3) {
			case 0:
				return Column("f")
			case 1:
				return Column("g")
			default:
				return CFloat([]float64{0, 0.5, -2.25, 1e300}[r.Intn(4)])
			}
		}
		if r.Intn(6) == 0 {
			return NewCall("sqrt", genExpr(r, depth-1, value.KindFloat64))
		}
		ops := []value.BinOp{value.OpAdd, value.OpSub, value.OpMul, value.OpDiv, value.OpMod}
		// Mixed int/float operands exercise promotion.
		argKind := value.KindFloat64
		if r.Intn(3) == 0 {
			argKind = value.KindInt64
		}
		return NewBin(ops[r.Intn(len(ops))], genExpr(r, depth-1, value.KindFloat64), genExpr(r, depth-1, argKind))
	case value.KindString:
		if leaf || r.Intn(2) == 0 {
			switch r.Intn(3) {
			case 0:
				return Column("s")
			case 1:
				return Column("t")
			default:
				return CStr([]string{"", "a", "zz"}[r.Intn(3)])
			}
		}
		if r.Intn(4) == 0 {
			return NewCall("upper", genExpr(r, depth-1, value.KindString))
		}
		return Add(genExpr(r, depth-1, value.KindString), genExpr(r, depth-1, value.KindString))
	default: // bool
		if leaf {
			switch r.Intn(3) {
			case 0:
				return Column("p")
			case 1:
				return Column("q")
			default:
				return CBool(r.Intn(2) == 0)
			}
		}
		switch r.Intn(7) {
		case 0:
			return Not(genExpr(r, depth-1, value.KindBool))
		case 1:
			kinds := []value.Kind{value.KindInt64, value.KindFloat64, value.KindString, value.KindBool}
			return IsNull(genExpr(r, depth-1, kinds[r.Intn(len(kinds))]))
		case 2:
			return And(genExpr(r, depth-1, value.KindBool), genExpr(r, depth-1, value.KindBool))
		case 3:
			return Or(genExpr(r, depth-1, value.KindBool), genExpr(r, depth-1, value.KindBool))
		default:
			// Comparison over same- or cross-kind operands (total order).
			ops := []value.BinOp{value.OpEq, value.OpNe, value.OpLt, value.OpLe, value.OpGt, value.OpGe}
			op := ops[r.Intn(len(ops))]
			kinds := []value.Kind{value.KindInt64, value.KindFloat64, value.KindString, value.KindBool}
			lk := kinds[r.Intn(len(kinds))]
			rk := lk
			if r.Intn(4) == 0 {
				rk = kinds[r.Intn(len(kinds))] // cross-rank comparison
			}
			return NewBin(op, genExpr(r, depth-1, lk), genExpr(r, depth-1, rk))
		}
	}
}

// assertBatchMatchesOracle compiles e and checks EvalBatch against the
// per-row oracle on tab.
func assertBatchMatchesOracle(t *testing.T, e Expr, tab *table.Table) {
	t.Helper()
	c, err := Compile(e, tab.Schema())
	if err != nil {
		t.Fatalf("%s: compile: %v", e, err)
	}
	batch, err := c.EvalBatch(tab)
	if err != nil {
		t.Fatalf("%s: batch: %v", e, err)
	}
	if batch.Len() != tab.NumRows() {
		t.Fatalf("%s: batch length %d, want %d", e, batch.Len(), tab.NumRows())
	}
	for row := 0; row < tab.NumRows(); row++ {
		single, err := c.Eval(tab, row)
		if err != nil {
			t.Fatalf("%s row %d: oracle: %v", e, row, err)
		}
		if !value.Equal(single, batch.Value(row)) {
			t.Fatalf("%s row %d: oracle %v, batch %v", e, row, single, batch.Value(row))
		}
	}
}

func TestBatchDifferentialProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tables := []*table.Table{
		diffTable(r, 257),
		diffTable(r, 1),
		table.Empty(diffSchema()), // empty input must produce empty output
	}
	kinds := []value.Kind{value.KindBool, value.KindInt64, value.KindFloat64, value.KindString}
	for trial := 0; trial < 400; trial++ {
		e := genExpr(r, 1+r.Intn(3), kinds[trial%len(kinds)])
		for _, tab := range tables {
			assertBatchMatchesOracle(t, e, tab)
		}
	}
}

// TestBatchFixedExpressions pins the shapes the kernels special-case:
// NULL literals, logical ops over NULLs, zero divisors, string concat and
// comparison, unary ops, cross-kind comparisons and Call fallbacks.
func TestBatchFixedExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tab := diffTable(r, 128)
	exprs := []Expr{
		Add(Column("i"), Column("j")),
		Mul(Column("i"), CInt(3)),
		Div(Column("i"), Column("j")),             // int division, NULL on zero
		NewBin(value.OpMod, Column("i"), CInt(0)), // mod by zero is NULL
		Div(Column("f"), CFloat(0)),               // float division by zero is Inf
		Add(Column("f"), Column("i")),             // promotion
		Add(Column("s"), Column("t")),             // concat
		Eq(Column("i"), Column("j")),
		Lt(Column("s"), Column("t")),
		Ge(Column("f"), Column("i")),
		Eq(Column("p"), Column("q")),     // bool comparison
		Lt(Column("i"), Column("s")),     // cross-rank: numbers before strings
		Eq(C(value.Null), C(value.Null)), // NULL == NULL under the total order
		Lt(C(value.Null), Column("i")),   // NULL sorts first
		And(Column("p"), Column("q")),
		Or(Column("p"), Not(Column("q"))),
		And(Column("p"), C(value.Null)), // NULL is false in logic
		Not(C(value.Null)),
		Neg(Column("i")),
		Neg(Column("f")),
		IsNull(Column("f")),
		&Un{Op: value.OpIsNotNull, X: Column("s")},
		NewCall("abs", Column("i")),
		NewCall("if", Column("p"), CStr("yes"), CStr("no")),
		NewCall("coalesce", Column("f"), CFloat(0)),
		And(Gt(Add(Column("i"), Column("j")), CInt(0)), Lt(Column("f"), Column("g"))),
		Mul(Add(Column("f"), CFloat(1)), NewCall("sqrt", NewCall("abs", Column("g")))),
	}
	for _, e := range exprs {
		assertBatchMatchesOracle(t, e, tab)
	}
}

// TestBatchInt64Precision is the regression test for the old vectorized
// fast path, which compared int64 operands through float64: values above
// 2^53 that differ by 1 collapse to the same float64.
func TestBatchInt64Precision(t *testing.T) {
	sch := schema.New(
		schema.Attribute{Name: "x", Kind: value.KindInt64},
		schema.Attribute{Name: "y", Kind: value.KindInt64},
	)
	const big = int64(1) << 53
	b := table.NewBuilder(sch, 3)
	b.MustAppend(value.NewInt(big), value.NewInt(big+1))
	b.MustAppend(value.NewInt(math.MaxInt64), value.NewInt(math.MaxInt64-1))
	b.MustAppend(value.NewInt(big), value.NewInt(big))
	tab := b.Build()

	cases := []struct {
		e    Expr
		want []bool
	}{
		{Eq(Column("x"), Column("y")), []bool{false, false, true}},
		{Lt(Column("x"), Column("y")), []bool{true, false, false}},
		{Gt(Column("x"), Column("y")), []bool{false, true, false}},
		{Ne(Column("x"), CInt(big+1)), []bool{true, true, true}},
	}
	for _, c := range cases {
		compiled := MustCompile(c.e, sch)
		batch, err := compiled.EvalBatch(tab)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		for row, want := range c.want {
			if got := batch.Value(row); got.Bool() != want {
				t.Errorf("%s row %d: got %v, want %v", c.e, row, got, want)
			}
		}
		assertBatchMatchesOracle(t, c.e, tab)
	}
}

// TestAppendSelected checks the selection-vector path against a row-eval
// filter.
func TestAppendSelected(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	tables := []*table.Table{diffTable(r, 300), table.Empty(diffSchema())}
	for trial := 0; trial < 100; trial++ {
		e := genExpr(r, 1+r.Intn(3), value.KindBool)
		c, err := Compile(e, diffSchema())
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		for _, tab := range tables {
			sel, err := c.AppendSelected(nil, tab)
			if err != nil {
				t.Fatalf("%s: %v", e, err)
			}
			var want []int
			for row := 0; row < tab.NumRows(); row++ {
				v, err := c.Eval(tab, row)
				if err != nil {
					t.Fatalf("%s row %d: %v", e, row, err)
				}
				if v.Truthy() {
					want = append(want, row)
				}
			}
			if fmt.Sprint(sel) != fmt.Sprint(want) {
				t.Fatalf("%s: selection %v, oracle %v", e, sel, want)
			}
		}
	}
}

// TestBatchConstantPredicate covers the broadcast (stride-0) result path.
func TestBatchConstantPredicate(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tab := diffTable(r, 10)
	for _, e := range []Expr{CBool(true), CBool(false), C(value.Null), Gt(CInt(2), CInt(1))} {
		if k, _ := InferKind(e, tab.Schema()); k == value.KindBool || k == value.KindNull {
			c := MustCompile(e, tab.Schema())
			sel, err := c.AppendSelected(nil, tab)
			if err != nil {
				t.Fatal(err)
			}
			var want []int
			for row := 0; row < tab.NumRows(); row++ {
				v, _ := c.Eval(tab, row)
				if v.Truthy() {
					want = append(want, row)
				}
			}
			if fmt.Sprint(sel) != fmt.Sprint(want) {
				t.Fatalf("%s: selection %v, oracle %v", e, sel, want)
			}
		}
		assertBatchMatchesOracle(t, e, tab)
	}
}
