package expr

import (
	"fmt"
	"math"
	"strings"

	"nexus/internal/value"
)

// Func describes a registered scalar function: its arity bounds, a static
// type-inference rule and a row-wise evaluator. The registry is fixed at
// init time (no global mutation afterwards), so lookups are safe for
// concurrent use.
type Func struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 = variadic
	Infer   func(args []value.Kind) (value.Kind, error)
	Eval    func(args []value.Value) (value.Value, error)
}

var funcs = map[string]*Func{}

func register(f *Func) {
	if _, dup := funcs[f.Name]; dup {
		panic("expr: duplicate function " + f.Name)
	}
	funcs[f.Name] = f
}

// LookupFunc returns the registered function with the given name.
func LookupFunc(name string) (*Func, bool) {
	f, ok := funcs[name]
	return f, ok
}

// FuncNames returns the registered function names (unsorted).
func FuncNames() []string {
	out := make([]string, 0, len(funcs))
	for n := range funcs {
		out = append(out, n)
	}
	return out
}

func inferNumeric1(args []value.Kind) (value.Kind, error) {
	k := args[0]
	if !k.Numeric() && k != value.KindNull {
		return value.KindNull, fmt.Errorf("numeric argument required, got %v", k)
	}
	return value.KindFloat64, nil
}

func numeric1(name string, fn func(float64) float64) *Func {
	return &Func{
		Name: name, MinArgs: 1, MaxArgs: 1,
		Infer: inferNumeric1,
		Eval: func(args []value.Value) (value.Value, error) {
			if args[0].IsNull() {
				return value.Null, nil
			}
			f, ok := args[0].AsFloat()
			if !ok {
				return value.Null, fmt.Errorf("%s: non-numeric argument %v", name, args[0].Kind())
			}
			return value.NewFloat(fn(f)), nil
		},
	}
}

func init() {
	register(numeric1("sqrt", math.Sqrt))
	register(numeric1("exp", math.Exp))
	register(numeric1("log", math.Log))
	register(numeric1("floor", math.Floor))
	register(numeric1("ceil", math.Ceil))
	register(numeric1("round", math.Round))
	register(numeric1("sin", math.Sin))
	register(numeric1("cos", math.Cos))

	register(&Func{
		Name: "abs", MinArgs: 1, MaxArgs: 1,
		Infer: func(args []value.Kind) (value.Kind, error) {
			k := args[0]
			if !k.Numeric() && k != value.KindNull {
				return value.KindNull, fmt.Errorf("numeric argument required, got %v", k)
			}
			if k == value.KindNull {
				return value.KindFloat64, nil
			}
			return k, nil
		},
		Eval: func(args []value.Value) (value.Value, error) {
			switch args[0].Kind() {
			case value.KindNull:
				return value.Null, nil
			case value.KindInt64:
				i := args[0].Int()
				if i < 0 {
					i = -i
				}
				return value.NewInt(i), nil
			case value.KindFloat64:
				return value.NewFloat(math.Abs(args[0].Float())), nil
			}
			return value.Null, fmt.Errorf("abs: non-numeric argument %v", args[0].Kind())
		},
	})

	register(&Func{
		Name: "pow", MinArgs: 2, MaxArgs: 2,
		Infer: func(args []value.Kind) (value.Kind, error) { return value.KindFloat64, nil },
		Eval: func(args []value.Value) (value.Value, error) {
			if args[0].IsNull() || args[1].IsNull() {
				return value.Null, nil
			}
			a, ok1 := args[0].AsFloat()
			b, ok2 := args[1].AsFloat()
			if !ok1 || !ok2 {
				return value.Null, fmt.Errorf("pow: non-numeric arguments")
			}
			return value.NewFloat(math.Pow(a, b)), nil
		},
	})

	minmax := func(name string, want int) *Func {
		return &Func{
			Name: name, MinArgs: 2, MaxArgs: -1,
			Infer: func(args []value.Kind) (value.Kind, error) {
				k := value.KindNull
				for _, a := range args {
					if a == value.KindNull {
						continue
					}
					if k == value.KindNull {
						k = a
					} else if k != a {
						if k.Numeric() && a.Numeric() {
							k = value.KindFloat64
						} else {
							return value.KindNull, fmt.Errorf("%s: mixed kinds %v and %v", name, k, a)
						}
					}
				}
				if k == value.KindNull {
					k = value.KindFloat64
				}
				return k, nil
			},
			Eval: func(args []value.Value) (value.Value, error) {
				best := value.Null
				for _, a := range args {
					if a.IsNull() {
						continue
					}
					if best.IsNull() || value.Compare(a, best) == want {
						best = a
					}
				}
				return best, nil
			},
		}
	}
	register(minmax("min", -1))
	register(minmax("max", +1))

	register(&Func{
		Name: "if", MinArgs: 3, MaxArgs: 3,
		Infer: func(args []value.Kind) (value.Kind, error) {
			if args[0] != value.KindBool && args[0] != value.KindNull {
				return value.KindNull, fmt.Errorf("if: condition must be bool, got %v", args[0])
			}
			a, b := args[1], args[2]
			switch {
			case a == b:
				return a, nil
			case a == value.KindNull:
				return b, nil
			case b == value.KindNull:
				return a, nil
			case a.Numeric() && b.Numeric():
				return value.KindFloat64, nil
			}
			return value.KindNull, fmt.Errorf("if: branch kinds differ: %v vs %v", a, b)
		},
		Eval: func(args []value.Value) (value.Value, error) {
			if args[0].Truthy() {
				return args[1], nil
			}
			return args[2], nil
		},
	})

	register(&Func{
		Name: "coalesce", MinArgs: 1, MaxArgs: -1,
		Infer: func(args []value.Kind) (value.Kind, error) {
			for _, a := range args {
				if a != value.KindNull {
					return a, nil
				}
			}
			return value.KindNull, fmt.Errorf("coalesce: all arguments NULL-typed")
		},
		Eval: func(args []value.Value) (value.Value, error) {
			for _, a := range args {
				if !a.IsNull() {
					return a, nil
				}
			}
			return value.Null, nil
		},
	})

	str1 := func(name string, fn func(string) string) *Func {
		return &Func{
			Name: name, MinArgs: 1, MaxArgs: 1,
			Infer: func(args []value.Kind) (value.Kind, error) {
				if args[0] != value.KindString && args[0] != value.KindNull {
					return value.KindNull, fmt.Errorf("%s: string argument required, got %v", name, args[0])
				}
				return value.KindString, nil
			},
			Eval: func(args []value.Value) (value.Value, error) {
				if args[0].IsNull() {
					return value.Null, nil
				}
				return value.NewString(fn(args[0].Str())), nil
			},
		}
	}
	register(str1("lower", strings.ToLower))
	register(str1("upper", strings.ToUpper))

	register(&Func{
		Name: "len", MinArgs: 1, MaxArgs: 1,
		Infer: func(args []value.Kind) (value.Kind, error) {
			if args[0] != value.KindString && args[0] != value.KindNull {
				return value.KindNull, fmt.Errorf("len: string argument required, got %v", args[0])
			}
			return value.KindInt64, nil
		},
		Eval: func(args []value.Value) (value.Value, error) {
			if args[0].IsNull() {
				return value.Null, nil
			}
			return value.NewInt(int64(len(args[0].Str()))), nil
		},
	})

	register(&Func{
		Name: "substr", MinArgs: 3, MaxArgs: 3,
		Infer: func(args []value.Kind) (value.Kind, error) { return value.KindString, nil },
		Eval: func(args []value.Value) (value.Value, error) {
			if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
				return value.Null, nil
			}
			s := args[0].Str()
			lo, _ := args[1].AsInt()
			n, _ := args[2].AsInt()
			if lo < 0 {
				lo = 0
			}
			if lo > int64(len(s)) {
				lo = int64(len(s))
			}
			hi := lo + n
			if hi > int64(len(s)) {
				hi = int64(len(s))
			}
			if hi < lo {
				hi = lo
			}
			return value.NewString(s[lo:hi]), nil
		},
	})

	register(&Func{
		Name: "contains", MinArgs: 2, MaxArgs: 2,
		Infer: func(args []value.Kind) (value.Kind, error) { return value.KindBool, nil },
		Eval: func(args []value.Value) (value.Value, error) {
			if args[0].IsNull() || args[1].IsNull() {
				return value.NewBool(false), nil
			}
			return value.NewBool(strings.Contains(args[0].Str(), args[1].Str())), nil
		},
	})

	// Casts.
	register(&Func{
		Name: "int", MinArgs: 1, MaxArgs: 1,
		Infer: func(args []value.Kind) (value.Kind, error) { return value.KindInt64, nil },
		Eval: func(args []value.Value) (value.Value, error) {
			switch args[0].Kind() {
			case value.KindNull:
				return value.Null, nil
			case value.KindInt64:
				return args[0], nil
			case value.KindFloat64:
				return value.NewInt(int64(args[0].Float())), nil
			case value.KindBool:
				if args[0].Bool() {
					return value.NewInt(1), nil
				}
				return value.NewInt(0), nil
			case value.KindString:
				return value.Parse(value.KindInt64, args[0].Str())
			}
			return value.Null, fmt.Errorf("int: cannot cast %v", args[0].Kind())
		},
	})
	register(&Func{
		Name: "float", MinArgs: 1, MaxArgs: 1,
		Infer: func(args []value.Kind) (value.Kind, error) { return value.KindFloat64, nil },
		Eval: func(args []value.Value) (value.Value, error) {
			switch args[0].Kind() {
			case value.KindNull:
				return value.Null, nil
			case value.KindFloat64:
				return args[0], nil
			case value.KindInt64:
				return value.NewFloat(float64(args[0].Int())), nil
			case value.KindString:
				return value.Parse(value.KindFloat64, args[0].Str())
			}
			return value.Null, fmt.Errorf("float: cannot cast %v", args[0].Kind())
		},
	})
	register(&Func{
		Name: "str", MinArgs: 1, MaxArgs: 1,
		Infer: func(args []value.Kind) (value.Kind, error) { return value.KindString, nil },
		Eval: func(args []value.Value) (value.Value, error) {
			if args[0].IsNull() {
				return value.Null, nil
			}
			if args[0].Kind() == value.KindString {
				return args[0], nil
			}
			return value.NewString(args[0].String()), nil
		},
	})

	register(&Func{
		Name: "hash", MinArgs: 1, MaxArgs: -1,
		Infer: func(args []value.Kind) (value.Kind, error) { return value.KindInt64, nil },
		Eval: func(args []value.Value) (value.Value, error) {
			h := uint64(14695981039346656037)
			for _, a := range args {
				h = (h ^ value.Hash(a)) * 1099511628211
			}
			return value.NewInt(int64(h)), nil
		},
	})
}
