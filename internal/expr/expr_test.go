package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

func demoSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "a", Kind: value.KindInt64},
		schema.Attribute{Name: "b", Kind: value.KindFloat64},
		schema.Attribute{Name: "s", Kind: value.KindString},
		schema.Attribute{Name: "ok", Kind: value.KindBool},
	)
}

func demoTable() *table.Table {
	sch := demoSchema()
	b := table.NewBuilder(sch, 3)
	b.MustAppend(value.NewInt(1), value.NewFloat(1.5), value.NewString("x"), value.NewBool(true))
	b.MustAppend(value.NewInt(2), value.NewFloat(-2), value.NewString("yy"), value.NewBool(false))
	b.MustAppend(value.NewInt(3), value.Null, value.NewString(""), value.NewBool(true))
	return b.Build()
}

func TestInferKinds(t *testing.T) {
	sch := demoSchema()
	cases := []struct {
		e    Expr
		want value.Kind
	}{
		{CInt(1), value.KindInt64},
		{Column("b"), value.KindFloat64},
		{Add(Column("a"), CInt(2)), value.KindInt64},
		{Add(Column("a"), Column("b")), value.KindFloat64},
		{Gt(Column("a"), CInt(0)), value.KindBool},
		{And(Column("ok"), CBool(true)), value.KindBool},
		{NewCall("sqrt", Column("a")), value.KindFloat64},
		{NewCall("len", Column("s")), value.KindInt64},
		{NewCall("if", Column("ok"), CInt(1), CInt(2)), value.KindInt64},
		{IsNull(Column("b")), value.KindBool},
	}
	for _, c := range cases {
		got, err := InferKind(c.e, sch)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if got != c.want {
			t.Errorf("%s: inferred %v, want %v", c.e, got, c.want)
		}
	}
}

func TestInferErrors(t *testing.T) {
	sch := demoSchema()
	bad := []Expr{
		Column("missing"),
		Add(Column("s"), CInt(1)),
		And(Column("a"), CBool(true)),
		NewCall("nosuchfn", CInt(1)),
		NewCall("sqrt"),                          // arity
		NewCall("if", CInt(1), CInt(2), CInt(3)), // non-bool condition
	}
	for _, e := range bad {
		if _, err := InferKind(e, sch); err == nil {
			t.Errorf("%s: expected type error", e)
		}
	}
}

func TestEvalRowAndBatchAgree(t *testing.T) {
	tab := demoTable()
	exprs := []Expr{
		Add(Column("a"), CInt(10)),
		Mul(Column("b"), CFloat(2)),
		Gt(Column("a"), CInt(1)),
		And(Gt(Column("a"), CInt(0)), Column("ok")),
		NewCall("coalesce", Column("b"), CFloat(0)),
		NewCall("upper", Column("s")),
		NewCall("if", Column("ok"), CStr("yes"), CStr("no")),
		IsNull(Column("b")),
		Neg(Column("a")),
	}
	for _, e := range exprs {
		c, err := Compile(e, tab.Schema())
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		batch, err := c.EvalBatch(tab)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		for row := 0; row < tab.NumRows(); row++ {
			single, err := c.Eval(tab, row)
			if err != nil {
				t.Fatalf("%s row %d: %v", e, row, err)
			}
			if !value.Equal(single, batch.Value(row)) {
				t.Fatalf("%s row %d: row eval %v, batch %v", e, row, single, batch.Value(row))
			}
		}
	}
}

// Property: the vectorized fast path agrees with the row evaluator on
// random numeric data.
func TestVectorizedAgreesProperty(t *testing.T) {
	sch := schema.New(
		schema.Attribute{Name: "x", Kind: value.KindFloat64},
		schema.Attribute{Name: "y", Kind: value.KindFloat64},
	)
	e := Mul(Add(Column("x"), CFloat(1)), Column("y"))
	cmp := Gt(Column("x"), Column("y"))
	f := func(xs []float64) bool {
		n := len(xs) / 2
		if n == 0 {
			return true
		}
		tab := table.MustNew(sch, []*table.Column{
			table.FloatColumn(xs[:n]),
			table.FloatColumn(xs[n : 2*n]),
		})
		for _, ex := range []Expr{e, cmp} {
			c, err := Compile(ex, sch)
			if err != nil {
				return false
			}
			batch, err := c.EvalBatch(tab)
			if err != nil {
				return false
			}
			for row := 0; row < n; row++ {
				single, err := c.Eval(tab, row)
				if err != nil {
					return false
				}
				if !value.Equal(single, batch.Value(row)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShortCircuit(t *testing.T) {
	// (a > 0) || (1/0 ... ) — the right side would yield NULL, but ||
	// short-circuits on true.
	tab := demoTable()
	e := Or(Gt(Column("a"), CInt(0)), Gt(Div(CInt(1), CInt(0)), CInt(0)))
	c := MustCompile(e, tab.Schema())
	v, err := c.Eval(tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bool() {
		t.Fatal("short-circuit or broken")
	}
}

func TestFoldConstants(t *testing.T) {
	cases := []struct {
		in   Expr
		want Expr
	}{
		{Add(CInt(2), CInt(3)), CInt(5)},
		{Mul(CFloat(2), CFloat(4)), CFloat(8)},
		{And(CBool(true), Column("ok")), Column("ok")},
		{And(CBool(false), Column("ok")), CBool(false)},
		{Or(CBool(false), Column("ok")), Column("ok")},
		{Or(Column("ok"), CBool(false)), Column("ok")},
		{NewCall("sqrt", CFloat(9)), CFloat(3)},
		{Not(CBool(true)), CBool(false)},
		{Add(Column("a"), CInt(0)), Add(Column("a"), CInt(0))}, // not folded (no identity rules)
	}
	for _, c := range cases {
		got := FoldConstants(c.in)
		if !Equal(got, c.want) {
			t.Errorf("fold %s = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestWalkRewriteCols(t *testing.T) {
	e := And(Gt(Column("a"), CInt(1)), Or(Column("ok"), Eq(Column("s"), CStr("x"))))
	if got := Cols(e); strings.Join(got, ",") != "a,ok,s" {
		t.Fatalf("cols = %v", got)
	}
	renamed := RenameCols(e, map[string]string{"a": "alpha"})
	if got := Cols(renamed); strings.Join(got, ",") != "alpha,ok,s" {
		t.Fatalf("renamed cols = %v", got)
	}
	// Original untouched (immutability).
	if got := Cols(e); strings.Join(got, ",") != "a,ok,s" {
		t.Fatal("rewrite mutated the original")
	}
	count := 0
	Walk(e, func(Expr) bool { count++; return true })
	if count != 9 {
		t.Fatalf("walk visited %d nodes", count)
	}
}

func TestEqualAndHash(t *testing.T) {
	a := Add(Column("x"), CInt(1))
	b := Add(Column("x"), CInt(1))
	c := Add(Column("x"), CInt(2))
	if !Equal(a, b) || Equal(a, c) {
		t.Fatal("Equal broken")
	}
	if Hash(a) != Hash(b) {
		t.Fatal("hash of equal exprs differs")
	}
	if Equal(a, nil) || !Equal(nil, nil) {
		t.Fatal("nil handling broken")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Add(Column("x"), CInt(1))); err != nil {
		t.Fatal(err)
	}
	if err := Validate(&Bin{Op: value.OpAdd, L: Column("x")}); err == nil {
		t.Fatal("nil operand accepted")
	}
	if err := Validate(NewCall("frobnicate")); err == nil {
		t.Fatal("unknown function accepted")
	}
	if err := Validate(nil); err == nil {
		t.Fatal("nil expr accepted")
	}
}

func TestStringForms(t *testing.T) {
	e := Or(Not(Column("ok")), Le(Column("a"), CInt(3)))
	s := e.String()
	for _, want := range []string{"!", "ok", "<=", "3", "||"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%q missing %q", s, want)
		}
	}
	if IsNull(Column("b")).String() != "isnull(b)" {
		t.Fatalf("isnull rendering: %s", IsNull(Column("b")).String())
	}
}

func TestFunctions(t *testing.T) {
	run := func(name string, args ...value.Value) value.Value {
		f, ok := LookupFunc(name)
		if !ok {
			t.Fatalf("missing function %s", name)
		}
		v, err := f.Eval(args)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v
	}
	if v := run("abs", value.NewInt(-5)); v.Int() != 5 {
		t.Error("abs int")
	}
	if v := run("min", value.NewInt(3), value.NewInt(1), value.NewInt(2)); v.Int() != 1 {
		t.Error("min")
	}
	if v := run("max", value.NewFloat(1), value.NewFloat(9)); v.Float() != 9 {
		t.Error("max")
	}
	if v := run("substr", value.NewString("hello"), value.NewInt(1), value.NewInt(3)); v.Str() != "ell" {
		t.Error("substr")
	}
	if v := run("substr", value.NewString("hi"), value.NewInt(0), value.NewInt(99)); v.Str() != "hi" {
		t.Error("substr clamp")
	}
	if v := run("contains", value.NewString("hello"), value.NewString("ell")); !v.Bool() {
		t.Error("contains")
	}
	if v := run("int", value.NewString("42")); v.Int() != 42 {
		t.Error("int cast")
	}
	if v := run("float", value.NewInt(2)); v.Float() != 2 {
		t.Error("float cast")
	}
	if v := run("str", value.NewInt(7)); v.Str() != "7" {
		t.Error("str cast")
	}
	if v := run("coalesce", value.Null, value.Null, value.NewInt(3)); v.Int() != 3 {
		t.Error("coalesce")
	}
	if v := run("pow", value.NewInt(2), value.NewInt(10)); v.Float() != 1024 {
		t.Error("pow")
	}
	if len(FuncNames()) < 15 {
		t.Error("registry suspiciously small")
	}
}

func TestEvalConst(t *testing.T) {
	v, err := EvalConst(Mul(CInt(6), CInt(7)))
	if err != nil || v.Int() != 42 {
		t.Fatalf("EvalConst = %v, %v", v, err)
	}
}
