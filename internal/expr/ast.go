// Package expr implements the scalar expression language embedded in the
// nexus algebra: a small typed AST (constants, column references, unary
// and binary operators, function calls), static type inference against a
// schema, a compiling row evaluator with a vectorized batch path, a
// function registry, constant folding, and structural utilities (walk,
// rewrite, equality, hashing) used by the planner and the wire format.
package expr

import (
	"fmt"
	"sort"
	"strings"

	"nexus/internal/value"
)

// Expr is a scalar expression tree node. Implementations are *Const,
// *Col, *Bin, *Un and *Call. Expressions are immutable; rewrites build
// new trees.
type Expr interface {
	// String renders the expression in surface-language syntax.
	String() string
	isExpr()
}

// Const is a literal value.
type Const struct {
	Val value.Value
}

// Col references an attribute by name. Names may be qualified ("t.a");
// resolution against a schema happens at compile time.
type Col struct {
	Name string
}

// Bin applies a binary operator.
type Bin struct {
	Op   value.BinOp
	L, R Expr
}

// Un applies a unary operator.
type Un struct {
	Op value.UnOp
	X  Expr
}

// Call invokes a registered function.
type Call struct {
	Name string
	Args []Expr
}

func (*Const) isExpr() {}
func (*Col) isExpr()   {}
func (*Bin) isExpr()   {}
func (*Un) isExpr()    {}
func (*Call) isExpr()  {}

// String implements Expr.
func (e *Const) String() string { return e.Val.String() }

// String implements Expr.
func (e *Col) String() string { return e.Name }

// String implements Expr.
func (e *Bin) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// String implements Expr.
func (e *Un) String() string {
	switch e.Op {
	case value.OpIsNull:
		return "isnull(" + e.X.String() + ")"
	case value.OpIsNotNull:
		return "isnotnull(" + e.X.String() + ")"
	}
	return e.Op.String() + "(" + e.X.String() + ")"
}

// String implements Expr.
func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

// Convenience constructors, used heavily by the fluent API, the surface
// language compiler and tests.

// C returns a constant expression.
func C(v value.Value) *Const { return &Const{Val: v} }

// CInt returns an int64 constant.
func CInt(i int64) *Const { return &Const{Val: value.NewInt(i)} }

// CFloat returns a float64 constant.
func CFloat(f float64) *Const { return &Const{Val: value.NewFloat(f)} }

// CStr returns a string constant.
func CStr(s string) *Const { return &Const{Val: value.NewString(s)} }

// CBool returns a bool constant.
func CBool(b bool) *Const { return &Const{Val: value.NewBool(b)} }

// Column returns a column reference.
func Column(name string) *Col { return &Col{Name: name} }

// NewBin returns a binary expression.
func NewBin(op value.BinOp, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Add returns l + r.
func Add(l, r Expr) *Bin { return NewBin(value.OpAdd, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) *Bin { return NewBin(value.OpSub, l, r) }

// Mul returns l * r.
func Mul(l, r Expr) *Bin { return NewBin(value.OpMul, l, r) }

// Div returns l / r.
func Div(l, r Expr) *Bin { return NewBin(value.OpDiv, l, r) }

// Eq returns l == r.
func Eq(l, r Expr) *Bin { return NewBin(value.OpEq, l, r) }

// Ne returns l != r.
func Ne(l, r Expr) *Bin { return NewBin(value.OpNe, l, r) }

// Lt returns l < r.
func Lt(l, r Expr) *Bin { return NewBin(value.OpLt, l, r) }

// Le returns l <= r.
func Le(l, r Expr) *Bin { return NewBin(value.OpLe, l, r) }

// Gt returns l > r.
func Gt(l, r Expr) *Bin { return NewBin(value.OpGt, l, r) }

// Ge returns l >= r.
func Ge(l, r Expr) *Bin { return NewBin(value.OpGe, l, r) }

// And returns l && r.
func And(l, r Expr) *Bin { return NewBin(value.OpAnd, l, r) }

// Or returns l || r.
func Or(l, r Expr) *Bin { return NewBin(value.OpOr, l, r) }

// Not returns !x.
func Not(x Expr) *Un { return &Un{Op: value.OpNot, X: x} }

// Neg returns -x.
func Neg(x Expr) *Un { return &Un{Op: value.OpNeg, X: x} }

// IsNull returns isnull(x).
func IsNull(x Expr) *Un { return &Un{Op: value.OpIsNull, X: x} }

// NewCall returns a function call expression.
func NewCall(name string, args ...Expr) *Call { return &Call{Name: name, Args: args} }

// AndAll conjoins the expressions (nil for an empty list).
func AndAll(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = And(out, e)
		}
	}
	return out
}

// Walk calls fn on e and every sub-expression, pre-order. fn returning
// false prunes the subtree.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *Bin:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *Un:
		Walk(n.X, fn)
	case *Call:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	}
}

// Rewrite rebuilds the tree bottom-up, replacing each node with fn(node).
// fn receives a node whose children are already rewritten.
func Rewrite(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Bin:
		l, r := Rewrite(n.L, fn), Rewrite(n.R, fn)
		if l != n.L || r != n.R {
			e = &Bin{Op: n.Op, L: l, R: r}
		}
	case *Un:
		x := Rewrite(n.X, fn)
		if x != n.X {
			e = &Un{Op: n.Op, X: x}
		}
	case *Call:
		args := n.Args
		changed := false
		for i, a := range n.Args {
			ra := Rewrite(a, fn)
			if ra != a {
				if !changed {
					args = make([]Expr, len(n.Args))
					copy(args, n.Args)
					changed = true
				}
				args[i] = ra
			}
		}
		if changed {
			e = &Call{Name: n.Name, Args: args}
		}
	}
	return fn(e)
}

// Cols returns the sorted set of column names referenced by e.
func Cols(e Expr) []string {
	set := map[string]bool{}
	Walk(e, func(x Expr) bool {
		if c, ok := x.(*Col); ok {
			set[c.Name] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RenameCols returns e with column references renamed per the mapping.
func RenameCols(e Expr, mapping map[string]string) Expr {
	return Rewrite(e, func(x Expr) Expr {
		if c, ok := x.(*Col); ok {
			if to, ok := mapping[c.Name]; ok {
				return &Col{Name: to}
			}
		}
		return x
	})
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *Const:
		y, ok := b.(*Const)
		return ok && x.Val.Kind() == y.Val.Kind() && value.Equal(x.Val, y.Val)
	case *Col:
		y, ok := b.(*Col)
		return ok && x.Name == y.Name
	case *Bin:
		y, ok := b.(*Bin)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Un:
		y, ok := b.(*Un)
		return ok && x.Op == y.Op && Equal(x.X, y.X)
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Hash returns a structural hash consistent with Equal.
func Hash(e Expr) uint64 {
	h := uint64(14695981039346656037)
	mix := func(u uint64) {
		h = (h ^ u) * 1099511628211
	}
	switch n := e.(type) {
	case nil:
		mix(0)
	case *Const:
		mix(1)
		mix(value.Hash(n.Val))
	case *Col:
		mix(2)
		mix(strHash(n.Name))
	case *Bin:
		mix(3)
		mix(uint64(n.Op))
		mix(Hash(n.L))
		mix(Hash(n.R))
	case *Un:
		mix(4)
		mix(uint64(n.Op))
		mix(Hash(n.X))
	case *Call:
		mix(5)
		mix(strHash(n.Name))
		for _, a := range n.Args {
			mix(Hash(a))
		}
	}
	return h
}

func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Validate checks the tree for nil children and unknown functions,
// returning a descriptive error; used when decoding expressions off the
// wire.
func Validate(e Expr) error {
	if e == nil {
		return fmt.Errorf("expr: nil expression")
	}
	var err error
	Walk(e, func(x Expr) bool {
		switch n := x.(type) {
		case *Bin:
			if n.L == nil || n.R == nil {
				err = fmt.Errorf("expr: binary %v with nil operand", n.Op)
				return false
			}
		case *Un:
			if n.X == nil {
				err = fmt.Errorf("expr: unary %v with nil operand", n.Op)
				return false
			}
		case *Call:
			if _, ok := LookupFunc(n.Name); !ok {
				err = fmt.Errorf("expr: unknown function %q", n.Name)
				return false
			}
		}
		return true
	})
	return err
}
