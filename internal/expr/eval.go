package expr

import (
	"fmt"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// InferKind statically types e against a schema, returning the result
// kind or a descriptive error for ill-typed expressions.
func InferKind(e Expr, sch schema.Schema) (value.Kind, error) {
	switch n := e.(type) {
	case *Const:
		return n.Val.Kind(), nil
	case *Col:
		i := sch.IndexOf(n.Name)
		if i < 0 {
			return value.KindNull, fmt.Errorf("expr: unknown column %q in schema %v", n.Name, sch)
		}
		return sch.At(i).Kind, nil
	case *Bin:
		lk, err := InferKind(n.L, sch)
		if err != nil {
			return value.KindNull, err
		}
		rk, err := InferKind(n.R, sch)
		if err != nil {
			return value.KindNull, err
		}
		k, err := n.Op.ResultKind(lk, rk)
		if err != nil {
			return value.KindNull, fmt.Errorf("expr: %s: %w", e.String(), err)
		}
		return k, nil
	case *Un:
		xk, err := InferKind(n.X, sch)
		if err != nil {
			return value.KindNull, err
		}
		k, err := n.Op.ResultKind(xk)
		if err != nil {
			return value.KindNull, fmt.Errorf("expr: %s: %w", e.String(), err)
		}
		return k, nil
	case *Call:
		f, ok := LookupFunc(n.Name)
		if !ok {
			return value.KindNull, fmt.Errorf("expr: unknown function %q", n.Name)
		}
		if len(n.Args) < f.MinArgs || (f.MaxArgs >= 0 && len(n.Args) > f.MaxArgs) {
			return value.KindNull, fmt.Errorf("expr: %s takes %d..%d args, got %d", n.Name, f.MinArgs, f.MaxArgs, len(n.Args))
		}
		kinds := make([]value.Kind, len(n.Args))
		for i, a := range n.Args {
			k, err := InferKind(a, sch)
			if err != nil {
				return value.KindNull, err
			}
			kinds[i] = k
		}
		k, err := f.Infer(kinds)
		if err != nil {
			return value.KindNull, fmt.Errorf("expr: %s: %w", e.String(), err)
		}
		return k, nil
	}
	return value.KindNull, fmt.Errorf("expr: unknown node %T", e)
}

// Compiled is an expression bound to a schema: column references are
// resolved to positions and the result kind is known. Compiled values are
// immutable and safe for concurrent use.
type Compiled struct {
	root Expr
	sch  schema.Schema
	kind value.Kind
	prog evalFn
}

type evalFn func(t *table.Table, row int) (value.Value, error)

// Compile binds e to the schema, type-checking it and building a
// closure-tree evaluator.
func Compile(e Expr, sch schema.Schema) (*Compiled, error) {
	kind, err := InferKind(e, sch)
	if err != nil {
		return nil, err
	}
	prog, err := compileNode(e, sch)
	if err != nil {
		return nil, err
	}
	return &Compiled{root: e, sch: sch, kind: kind, prog: prog}, nil
}

// MustCompile is Compile panicking on error, for tests and examples.
func MustCompile(e Expr, sch schema.Schema) *Compiled {
	c, err := Compile(e, sch)
	if err != nil {
		panic(err)
	}
	return c
}

// Kind returns the static result kind.
func (c *Compiled) Kind() value.Kind { return c.kind }

// Expr returns the source expression.
func (c *Compiled) Expr() Expr { return c.root }

// Eval evaluates the expression on one row of t (t must have the compile
// schema's layout).
func (c *Compiled) Eval(t *table.Table, row int) (value.Value, error) {
	return c.prog(t, row)
}

func compileNode(e Expr, sch schema.Schema) (evalFn, error) {
	switch n := e.(type) {
	case *Const:
		v := n.Val
		return func(*table.Table, int) (value.Value, error) { return v, nil }, nil
	case *Col:
		i := sch.IndexOf(n.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown column %q", n.Name)
		}
		return func(t *table.Table, row int) (value.Value, error) {
			return t.Col(i).Value(row), nil
		}, nil
	case *Bin:
		l, err := compileNode(n.L, sch)
		if err != nil {
			return nil, err
		}
		r, err := compileNode(n.R, sch)
		if err != nil {
			return nil, err
		}
		op := n.Op
		// Short-circuit logical operators.
		switch op {
		case value.OpAnd:
			return func(t *table.Table, row int) (value.Value, error) {
				lv, err := l(t, row)
				if err != nil {
					return value.Null, err
				}
				if !lv.Truthy() {
					return value.NewBool(false), nil
				}
				rv, err := r(t, row)
				if err != nil {
					return value.Null, err
				}
				return value.NewBool(rv.Truthy()), nil
			}, nil
		case value.OpOr:
			return func(t *table.Table, row int) (value.Value, error) {
				lv, err := l(t, row)
				if err != nil {
					return value.Null, err
				}
				if lv.Truthy() {
					return value.NewBool(true), nil
				}
				rv, err := r(t, row)
				if err != nil {
					return value.Null, err
				}
				return value.NewBool(rv.Truthy()), nil
			}, nil
		}
		return func(t *table.Table, row int) (value.Value, error) {
			lv, err := l(t, row)
			if err != nil {
				return value.Null, err
			}
			rv, err := r(t, row)
			if err != nil {
				return value.Null, err
			}
			return value.Apply(op, lv, rv)
		}, nil
	case *Un:
		x, err := compileNode(n.X, sch)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(t *table.Table, row int) (value.Value, error) {
			xv, err := x(t, row)
			if err != nil {
				return value.Null, err
			}
			return value.ApplyUnary(op, xv)
		}, nil
	case *Call:
		f, ok := LookupFunc(n.Name)
		if !ok {
			return nil, fmt.Errorf("expr: unknown function %q", n.Name)
		}
		args := make([]evalFn, len(n.Args))
		for i, a := range n.Args {
			fn, err := compileNode(a, sch)
			if err != nil {
				return nil, err
			}
			args[i] = fn
		}
		return func(t *table.Table, row int) (value.Value, error) {
			vals := make([]value.Value, len(args))
			for i, fn := range args {
				v, err := fn(t, row)
				if err != nil {
					return value.Null, err
				}
				vals[i] = v
			}
			return f.Eval(vals)
		}, nil
	}
	return nil, fmt.Errorf("expr: unknown node %T", e)
}

// EvalBatch evaluates the expression over every row of t, returning a
// column of length t.NumRows(). Numeric binary operations over plain
// int64/float64 columns take a vectorized fast path; everything else
// falls back to the row evaluator.
func (c *Compiled) EvalBatch(t *table.Table) (*table.Column, error) {
	if col, ok, err := evalVectorized(c.root, c.sch, t); err != nil || ok {
		return col, err
	}
	out := table.NewColumn(nonNullKind(c.kind), t.NumRows())
	for row := 0; row < t.NumRows(); row++ {
		v, err := c.prog(t, row)
		if err != nil {
			return nil, err
		}
		if err := out.Append(v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// nonNullKind maps the static NULL kind (e.g. a bare NULL literal) to a
// concrete column kind for materialization.
func nonNullKind(k value.Kind) value.Kind {
	if k == value.KindNull {
		return value.KindInt64
	}
	return k
}

// evalVectorized handles the hot patterns Col op Col and Col op Const for
// arithmetic and comparisons over null-free numeric columns. ok=false
// means "not vectorizable here" and the caller falls back.
func evalVectorized(e Expr, sch schema.Schema, t *table.Table) (*table.Column, bool, error) {
	b, isBin := e.(*Bin)
	if !isBin || b.Op.Logical() {
		return nil, false, nil
	}
	lc, lok := operandFloats(b.L, sch, t)
	rc, rok := operandFloats(b.R, sch, t)
	if !lok || !rok {
		return nil, false, nil
	}
	n := t.NumRows()
	if b.Op.Arithmetic() {
		out := make([]float64, n)
		switch b.Op {
		case value.OpAdd:
			for i := 0; i < n; i++ {
				out[i] = lc.at(i) + rc.at(i)
			}
		case value.OpSub:
			for i := 0; i < n; i++ {
				out[i] = lc.at(i) - rc.at(i)
			}
		case value.OpMul:
			for i := 0; i < n; i++ {
				out[i] = lc.at(i) * rc.at(i)
			}
		case value.OpDiv:
			for i := 0; i < n; i++ {
				out[i] = lc.at(i) / rc.at(i)
			}
		default:
			return nil, false, nil
		}
		// Only float results are vectorized; integer arithmetic keeps
		// exact semantics through the row path.
		if lc.isInt && rc.isInt {
			return nil, false, nil
		}
		return table.FloatColumn(out), true, nil
	}
	out := make([]bool, n)
	switch b.Op {
	case value.OpEq:
		for i := 0; i < n; i++ {
			out[i] = lc.at(i) == rc.at(i)
		}
	case value.OpNe:
		for i := 0; i < n; i++ {
			out[i] = lc.at(i) != rc.at(i)
		}
	case value.OpLt:
		for i := 0; i < n; i++ {
			out[i] = lc.at(i) < rc.at(i)
		}
	case value.OpLe:
		for i := 0; i < n; i++ {
			out[i] = lc.at(i) <= rc.at(i)
		}
	case value.OpGt:
		for i := 0; i < n; i++ {
			out[i] = lc.at(i) > rc.at(i)
		}
	case value.OpGe:
		for i := 0; i < n; i++ {
			out[i] = lc.at(i) >= rc.at(i)
		}
	default:
		return nil, false, nil
	}
	return table.BoolColumn(out), true, nil
}

// vecOperand is a numeric operand for the vectorized path: either a
// null-free column or a scalar constant.
type vecOperand struct {
	ints   []int64
	floats []float64
	konst  float64
	isInt  bool
}

func (v *vecOperand) at(i int) float64 {
	if v.ints != nil {
		return float64(v.ints[i])
	}
	if v.floats != nil {
		return v.floats[i]
	}
	return v.konst
}

func operandFloats(e Expr, sch schema.Schema, t *table.Table) (*vecOperand, bool) {
	switch n := e.(type) {
	case *Const:
		f, ok := n.Val.AsFloat()
		if !ok {
			return nil, false
		}
		return &vecOperand{konst: f, isInt: n.Val.Kind() == value.KindInt64}, true
	case *Col:
		i := sch.IndexOf(n.Name)
		if i < 0 || i >= t.NumCols() {
			return nil, false
		}
		col := t.Col(i)
		if col.HasNulls() {
			return nil, false
		}
		switch col.Kind() {
		case value.KindInt64:
			return &vecOperand{ints: col.Ints(), isInt: true}, true
		case value.KindFloat64:
			return &vecOperand{floats: col.Floats()}, true
		}
	}
	return nil, false
}

// EvalConst evaluates a constant expression (no column references).
func EvalConst(e Expr) (value.Value, error) {
	c, err := Compile(e, schema.Schema{})
	if err != nil {
		return value.Null, err
	}
	return c.Eval(table.Empty(schema.Schema{}), 0)
}

// FoldConstants rewrites e bottom-up, replacing constant subtrees with
// their values. Functions are assumed pure (the registry contains no
// impure functions).
func FoldConstants(e Expr) Expr {
	return Rewrite(e, func(x Expr) Expr {
		switch n := x.(type) {
		case *Bin:
			lc, lok := n.L.(*Const)
			rc, rok := n.R.(*Const)
			if lok && rok {
				if v, err := value.Apply(n.Op, lc.Val, rc.Val); err == nil {
					return &Const{Val: v}
				}
			}
			// Boolean identities: true && x => x, false || x => x, etc.
			if lok && lc.Val.Kind() == value.KindBool {
				switch {
				case n.Op == value.OpAnd && lc.Val.Bool():
					return n.R
				case n.Op == value.OpAnd && !lc.Val.Bool():
					return CBool(false)
				case n.Op == value.OpOr && !lc.Val.Bool():
					return n.R
				case n.Op == value.OpOr && lc.Val.Bool():
					return CBool(true)
				}
			}
			if rok && rc.Val.Kind() == value.KindBool {
				switch {
				case n.Op == value.OpAnd && rc.Val.Bool():
					return n.L
				case n.Op == value.OpOr && !rc.Val.Bool():
					return n.L
				}
			}
		case *Un:
			if xc, ok := n.X.(*Const); ok {
				if v, err := value.ApplyUnary(n.Op, xc.Val); err == nil {
					return &Const{Val: v}
				}
			}
		case *Call:
			allConst := true
			vals := make([]value.Value, len(n.Args))
			for i, a := range n.Args {
				c, ok := a.(*Const)
				if !ok {
					allConst = false
					break
				}
				vals[i] = c.Val
			}
			if allConst {
				if f, ok := LookupFunc(n.Name); ok {
					if len(vals) >= f.MinArgs && (f.MaxArgs < 0 || len(vals) <= f.MaxArgs) {
						if v, err := f.Eval(vals); err == nil {
							return &Const{Val: v}
						}
					}
				}
			}
		}
		return x
	})
}
