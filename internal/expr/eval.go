package expr

import (
	"fmt"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// InferKind statically types e against a schema, returning the result
// kind or a descriptive error for ill-typed expressions.
func InferKind(e Expr, sch schema.Schema) (value.Kind, error) {
	switch n := e.(type) {
	case *Const:
		return n.Val.Kind(), nil
	case *Col:
		i := sch.IndexOf(n.Name)
		if i < 0 {
			return value.KindNull, fmt.Errorf("expr: unknown column %q in schema %v", n.Name, sch)
		}
		return sch.At(i).Kind, nil
	case *Bin:
		lk, err := InferKind(n.L, sch)
		if err != nil {
			return value.KindNull, err
		}
		rk, err := InferKind(n.R, sch)
		if err != nil {
			return value.KindNull, err
		}
		k, err := n.Op.ResultKind(lk, rk)
		if err != nil {
			return value.KindNull, fmt.Errorf("expr: %s: %w", e.String(), err)
		}
		return k, nil
	case *Un:
		xk, err := InferKind(n.X, sch)
		if err != nil {
			return value.KindNull, err
		}
		k, err := n.Op.ResultKind(xk)
		if err != nil {
			return value.KindNull, fmt.Errorf("expr: %s: %w", e.String(), err)
		}
		return k, nil
	case *Call:
		f, ok := LookupFunc(n.Name)
		if !ok {
			return value.KindNull, fmt.Errorf("expr: unknown function %q", n.Name)
		}
		if len(n.Args) < f.MinArgs || (f.MaxArgs >= 0 && len(n.Args) > f.MaxArgs) {
			return value.KindNull, fmt.Errorf("expr: %s takes %d..%d args, got %d", n.Name, f.MinArgs, f.MaxArgs, len(n.Args))
		}
		kinds := make([]value.Kind, len(n.Args))
		for i, a := range n.Args {
			k, err := InferKind(a, sch)
			if err != nil {
				return value.KindNull, err
			}
			kinds[i] = k
		}
		k, err := f.Infer(kinds)
		if err != nil {
			return value.KindNull, fmt.Errorf("expr: %s: %w", e.String(), err)
		}
		return k, nil
	}
	return value.KindNull, fmt.Errorf("expr: unknown node %T", e)
}

// Compiled is an expression bound to a schema: column references are
// resolved to positions and the result kind is known. Compiled values are
// immutable and safe for concurrent use.
type Compiled struct {
	root  Expr
	sch   schema.Schema
	kind  value.Kind
	prog  evalFn
	batch batchFn
}

type evalFn func(t *table.Table, row int) (value.Value, error)

// Compile binds e to the schema, type-checking it and building both the
// row evaluator (the semantic oracle) and the vectorized batch program.
func Compile(e Expr, sch schema.Schema) (*Compiled, error) {
	kind, err := InferKind(e, sch)
	if err != nil {
		return nil, err
	}
	prog, err := compileNode(e, sch)
	if err != nil {
		return nil, err
	}
	batch, err := compileBatch(e, sch)
	if err != nil {
		return nil, err
	}
	return &Compiled{root: e, sch: sch, kind: kind, prog: prog, batch: batch}, nil
}

// MustCompile is Compile panicking on error, for tests and examples.
func MustCompile(e Expr, sch schema.Schema) *Compiled {
	c, err := Compile(e, sch)
	if err != nil {
		panic(err)
	}
	return c
}

// Kind returns the static result kind.
func (c *Compiled) Kind() value.Kind { return c.kind }

// Expr returns the source expression.
func (c *Compiled) Expr() Expr { return c.root }

// Schema returns the schema the expression was compiled against.
func (c *Compiled) Schema() schema.Schema { return c.sch }

// Eval evaluates the expression on one row of t (t must have the compile
// schema's layout).
func (c *Compiled) Eval(t *table.Table, row int) (value.Value, error) {
	return c.prog(t, row)
}

func compileNode(e Expr, sch schema.Schema) (evalFn, error) {
	switch n := e.(type) {
	case *Const:
		v := n.Val
		return func(*table.Table, int) (value.Value, error) { return v, nil }, nil
	case *Col:
		i := sch.IndexOf(n.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown column %q", n.Name)
		}
		return func(t *table.Table, row int) (value.Value, error) {
			return t.Col(i).Value(row), nil
		}, nil
	case *Bin:
		l, err := compileNode(n.L, sch)
		if err != nil {
			return nil, err
		}
		r, err := compileNode(n.R, sch)
		if err != nil {
			return nil, err
		}
		op := n.Op
		// Short-circuit logical operators.
		switch op {
		case value.OpAnd:
			return func(t *table.Table, row int) (value.Value, error) {
				lv, err := l(t, row)
				if err != nil {
					return value.Null, err
				}
				if !lv.Truthy() {
					return value.NewBool(false), nil
				}
				rv, err := r(t, row)
				if err != nil {
					return value.Null, err
				}
				return value.NewBool(rv.Truthy()), nil
			}, nil
		case value.OpOr:
			return func(t *table.Table, row int) (value.Value, error) {
				lv, err := l(t, row)
				if err != nil {
					return value.Null, err
				}
				if lv.Truthy() {
					return value.NewBool(true), nil
				}
				rv, err := r(t, row)
				if err != nil {
					return value.Null, err
				}
				return value.NewBool(rv.Truthy()), nil
			}, nil
		}
		return func(t *table.Table, row int) (value.Value, error) {
			lv, err := l(t, row)
			if err != nil {
				return value.Null, err
			}
			rv, err := r(t, row)
			if err != nil {
				return value.Null, err
			}
			return value.Apply(op, lv, rv)
		}, nil
	case *Un:
		x, err := compileNode(n.X, sch)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(t *table.Table, row int) (value.Value, error) {
			xv, err := x(t, row)
			if err != nil {
				return value.Null, err
			}
			return value.ApplyUnary(op, xv)
		}, nil
	case *Call:
		f, ok := LookupFunc(n.Name)
		if !ok {
			return nil, fmt.Errorf("expr: unknown function %q", n.Name)
		}
		args := make([]evalFn, len(n.Args))
		for i, a := range n.Args {
			fn, err := compileNode(a, sch)
			if err != nil {
				return nil, err
			}
			args[i] = fn
		}
		return func(t *table.Table, row int) (value.Value, error) {
			vals := make([]value.Value, len(args))
			for i, fn := range args {
				v, err := fn(t, row)
				if err != nil {
					return value.Null, err
				}
				vals[i] = v
			}
			return f.Eval(vals)
		}, nil
	}
	return nil, fmt.Errorf("expr: unknown node %T", e)
}

// EvalBatch evaluates the expression over every row of t, returning a
// column of length t.NumRows(). Evaluation runs through the vectorized
// batch program: typed tight loops over raw payload slices with validity
// bitmaps for NULLs; only Call sub-trees fall back to the row evaluator.
func (c *Compiled) EvalBatch(t *table.Table) (*table.Column, error) {
	n := t.NumRows()
	v, err := c.batch(t, n)
	if err != nil {
		return nil, err
	}
	return v.column(n), nil
}

// AppendSelected evaluates the (boolean) expression over t and appends the
// indices of rows where it holds — true and non-NULL — to sel, returning
// the grown slice. Filter uses this selection-vector path so a predicate
// never materializes a bool column followed by a second gather pass.
func (c *Compiled) AppendSelected(sel []int, t *table.Table) ([]int, error) {
	n := t.NumRows()
	v, err := c.batch(t, n)
	if err != nil {
		return nil, err
	}
	if v.kind != value.KindBool {
		return sel, nil
	}
	if v.stride == 0 {
		if v.truthyAt(0) {
			for i := 0; i < n; i++ {
				sel = append(sel, i)
			}
		}
		return sel, nil
	}
	if v.valid == nil {
		for i, b := range v.bools[:n] {
			if b {
				sel = append(sel, i)
			}
		}
		return sel, nil
	}
	for i, b := range v.bools[:n] {
		if b && v.valid[i] {
			sel = append(sel, i)
		}
	}
	return sel, nil
}

// nonNullKind maps the static NULL kind (e.g. a bare NULL literal) to a
// concrete column kind for materialization.
func nonNullKind(k value.Kind) value.Kind {
	if k == value.KindNull {
		return value.KindInt64
	}
	return k
}

// EvalConst evaluates a constant expression (no column references).
func EvalConst(e Expr) (value.Value, error) {
	c, err := Compile(e, schema.Schema{})
	if err != nil {
		return value.Null, err
	}
	return c.Eval(table.Empty(schema.Schema{}), 0)
}

// FoldConstants rewrites e bottom-up, replacing constant subtrees with
// their values. Functions are assumed pure (the registry contains no
// impure functions).
func FoldConstants(e Expr) Expr {
	return Rewrite(e, func(x Expr) Expr {
		switch n := x.(type) {
		case *Bin:
			lc, lok := n.L.(*Const)
			rc, rok := n.R.(*Const)
			if lok && rok {
				if v, err := value.Apply(n.Op, lc.Val, rc.Val); err == nil {
					return &Const{Val: v}
				}
			}
			// Boolean identities: true && x => x, false || x => x, etc.
			if lok && lc.Val.Kind() == value.KindBool {
				switch {
				case n.Op == value.OpAnd && lc.Val.Bool():
					return n.R
				case n.Op == value.OpAnd && !lc.Val.Bool():
					return CBool(false)
				case n.Op == value.OpOr && !lc.Val.Bool():
					return n.R
				case n.Op == value.OpOr && lc.Val.Bool():
					return CBool(true)
				}
			}
			if rok && rc.Val.Kind() == value.KindBool {
				switch {
				case n.Op == value.OpAnd && rc.Val.Bool():
					return n.L
				case n.Op == value.OpOr && !rc.Val.Bool():
					return n.L
				}
			}
		case *Un:
			if xc, ok := n.X.(*Const); ok {
				if v, err := value.ApplyUnary(n.Op, xc.Val); err == nil {
					return &Const{Val: v}
				}
			}
		case *Call:
			allConst := true
			vals := make([]value.Value, len(n.Args))
			for i, a := range n.Args {
				c, ok := a.(*Const)
				if !ok {
					allConst = false
					break
				}
				vals[i] = c.Val
			}
			if allConst {
				if f, ok := LookupFunc(n.Name); ok {
					if len(vals) >= f.MinArgs && (f.MaxArgs < 0 || len(vals) <= f.MaxArgs) {
						if v, err := f.Eval(vals); err == nil {
							return &Const{Val: v}
						}
					}
				}
			}
		}
		return x
	})
}
