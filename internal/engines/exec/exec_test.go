package exec

import (
	"math"
	"testing"
	"testing/quick"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/expr"
	"nexus/internal/ref"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

func runtimeFor(datasets map[string]*table.Table) *Runtime {
	return &Runtime{Datasets: func(name string) (*table.Table, bool) {
		t, ok := datasets[name]
		return t, ok
	}}
}

func mustScan(t *testing.T, name string, ds map[string]*table.Table) *core.Scan {
	t.Helper()
	s, err := core.NewScan(name, ds[name].Schema())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, rt *Runtime, plan core.Node) *table.Table {
	t.Helper()
	out, err := rt.Run(plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func TestFilterProjectExtend(t *testing.T) {
	ds := map[string]*table.Table{"sales": datagen.Sales(1, 1000, 50, 20)}
	rt := runtimeFor(ds)
	scan := mustScan(t, "sales", ds)

	f, err := core.NewFilter(scan, expr.Gt(expr.Column("qty"), expr.CInt(5)))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := core.NewExtend(f, []core.ColDef{{Name: "total", E: expr.Mul(expr.Column("price"), expr.Column("qty"))}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProject(ex, []string{"sale_id", "total"})
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, p)

	// Oracle: row-at-a-time.
	want := 0
	sales := ds["sales"]
	qty := sales.ColByName("qty").Ints()
	price := sales.ColByName("price").Floats()
	var wantSum float64
	for i := range qty {
		if qty[i] > 5 {
			want++
			wantSum += price[i] * float64(qty[i])
		}
	}
	if out.NumRows() != want {
		t.Fatalf("filter kept %d rows, want %d", out.NumRows(), want)
	}
	var gotSum float64
	for _, v := range out.ColByName("total").Floats() {
		gotSum += v
	}
	if math.Abs(gotSum-wantSum) > 1e-6 {
		t.Fatalf("total sum = %g, want %g", gotSum, wantSum)
	}
	if out.NumCols() != 2 {
		t.Fatalf("project kept %d cols, want 2", out.NumCols())
	}
}

func TestHashJoinAgainstNestedLoop(t *testing.T) {
	ds := map[string]*table.Table{
		"sales":     datagen.Sales(2, 500, 40, 15),
		"customers": datagen.Customers(3, 40),
	}
	rt := runtimeFor(ds)
	j, err := core.NewJoin(mustScan(t, "sales", ds), mustScan(t, "customers", ds),
		core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := run(t, rt, j)
	want := ref.NestedLoopJoin(ds["sales"], ds["customers"], []string{"cust_id"}, []string{"cust_id"})
	if !table.EqualUnordered(got, want) {
		t.Fatalf("hash join disagrees with nested loop: %d vs %d rows", got.NumRows(), want.NumRows())
	}
}

func TestJoinVariants(t *testing.T) {
	left := table.MustNew(schema.New(
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "a", Kind: value.KindString},
	), []*table.Column{
		table.IntColumn([]int64{1, 2, 3, 4}),
		table.StringColumn([]string{"w", "x", "y", "z"}),
	})
	right := table.MustNew(schema.New(
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "b", Kind: value.KindInt64},
	), []*table.Column{
		table.IntColumn([]int64{2, 2, 3, 9}),
		table.IntColumn([]int64{20, 21, 30, 90}),
	})
	ds := map[string]*table.Table{"l": left, "r": right}
	rt := runtimeFor(ds)

	cases := []struct {
		typ      core.JoinType
		wantRows int
	}{
		{core.JoinInner, 3},
		{core.JoinLeft, 5}, // 1 and 4 padded, 2 matches twice
		{core.JoinSemi, 2},
		{core.JoinAnti, 2},
	}
	for _, tc := range cases {
		j, err := core.NewJoin(mustScan(t, "l", ds), mustScan(t, "r", ds),
			tc.typ, []string{"k"}, []string{"k"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := run(t, rt, j)
		if out.NumRows() != tc.wantRows {
			t.Errorf("%v join: got %d rows, want %d", tc.typ, out.NumRows(), tc.wantRows)
		}
	}

	// Left join must pad with NULLs.
	j, _ := core.NewJoin(mustScan(t, "l", ds), mustScan(t, "r", ds),
		core.JoinLeft, []string{"k"}, []string{"k"}, nil)
	out := run(t, rt, j)
	nulls := 0
	bcol := out.ColByName("b")
	for i := 0; i < out.NumRows(); i++ {
		if bcol.IsNull(i) {
			nulls++
		}
	}
	if nulls != 2 {
		t.Fatalf("left join padded %d rows, want 2", nulls)
	}
}

func TestJoinResidual(t *testing.T) {
	ds := map[string]*table.Table{
		"sales":     datagen.Sales(4, 300, 30, 10),
		"customers": datagen.Customers(5, 30),
	}
	rt := runtimeFor(ds)
	// Join where the sale's region differs from the customer's region.
	res := expr.Ne(expr.Column("region"), expr.Column("region_r"))
	j, err := core.NewJoin(mustScan(t, "sales", ds), mustScan(t, "customers", ds),
		core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, res)
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, j)
	ri := out.Schema().IndexOf("region")
	rr := out.Schema().IndexOf("region_r")
	for i := 0; i < out.NumRows(); i++ {
		if value.Equal(out.Value(i, ri), out.Value(i, rr)) {
			t.Fatalf("row %d violates residual", i)
		}
	}
	full := ref.NestedLoopJoin(ds["sales"], ds["customers"], []string{"cust_id"}, []string{"cust_id"})
	same := 0
	fi := full.Schema().IndexOf("region")
	fr := full.Schema().IndexOf("region_r")
	for i := 0; i < full.NumRows(); i++ {
		if !value.Equal(full.Value(i, fi), full.Value(i, fr)) {
			same++
		}
	}
	if out.NumRows() != same {
		t.Fatalf("residual join kept %d rows, oracle says %d", out.NumRows(), same)
	}
}

func TestGroupAggregateAgainstOracle(t *testing.T) {
	ds := map[string]*table.Table{"sales": datagen.Sales(6, 2000, 60, 25)}
	rt := runtimeFor(ds)
	ga, err := core.NewGroupAgg(mustScan(t, "sales", ds), []string{"region"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "revenue"},
		{Func: core.AggCount, As: "n"},
		{Func: core.AggMin, Arg: expr.Column("price"), As: "cheapest"},
		{Func: core.AggAvg, Arg: expr.Column("qty"), As: "avg_qty"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, ga)
	if out.NumRows() != len(datagen.Regions) {
		t.Fatalf("got %d groups, want %d", out.NumRows(), len(datagen.Regions))
	}
	// Oracle for revenue per region.
	sales := ds["sales"]
	oracle := map[string]float64{}
	counts := map[string]int64{}
	region := sales.ColByName("region").Strs()
	price := sales.ColByName("price").Floats()
	qty := sales.ColByName("qty").Ints()
	for i := range region {
		oracle[region[i]] += price[i] * float64(qty[i])
		counts[region[i]]++
	}
	for i := 0; i < out.NumRows(); i++ {
		reg := out.ColByName("region").Strs()[i]
		rev := out.ColByName("revenue").Floats()[i]
		if math.Abs(rev-oracle[reg]) > 1e-6 {
			t.Errorf("region %s revenue %g, want %g", reg, rev, oracle[reg])
		}
		if out.ColByName("n").Ints()[i] != counts[reg] {
			t.Errorf("region %s count mismatch", reg)
		}
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	empty := table.Empty(datagen.SalesSchema())
	ds := map[string]*table.Table{"sales": empty}
	rt := runtimeFor(ds)
	ga, err := core.NewGroupAgg(mustScan(t, "sales", ds), nil, []core.AggSpec{
		{Func: core.AggCount, As: "n"},
		{Func: core.AggSum, Arg: expr.Column("price"), As: "s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, ga)
	if out.NumRows() != 1 {
		t.Fatalf("global aggregate over empty input: %d rows, want 1", out.NumRows())
	}
	if got := out.Value(0, 0); got.Int() != 0 {
		t.Fatalf("count = %v, want 0", got)
	}
	if !out.Value(0, 1).IsNull() {
		t.Fatalf("sum over empty = %v, want NULL", out.Value(0, 1))
	}
}

func TestSortLimitDistinct(t *testing.T) {
	ds := map[string]*table.Table{"sales": datagen.Sales(7, 500, 20, 10)}
	rt := runtimeFor(ds)
	s, err := core.NewSort(mustScan(t, "sales", ds), []core.SortSpec{{Col: "price", Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := core.NewLimit(s, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, l)
	if out.NumRows() != 10 {
		t.Fatalf("limit: %d rows", out.NumRows())
	}
	prices := out.ColByName("price").Floats()
	for i := 1; i < len(prices); i++ {
		if prices[i] > prices[i-1] {
			t.Fatalf("not sorted desc at %d", i)
		}
	}

	p, _ := core.NewProject(mustScan(t, "sales", ds), []string{"region"})
	d, _ := core.NewDistinct(p)
	out = run(t, rt, d)
	if out.NumRows() != len(datagen.Regions) {
		t.Fatalf("distinct regions: %d, want %d", out.NumRows(), len(datagen.Regions))
	}
}

func TestSetOperations(t *testing.T) {
	mk := func(vals ...int64) *table.Table {
		return table.MustNew(schema.New(schema.Attribute{Name: "x", Kind: value.KindInt64}),
			[]*table.Column{table.IntColumn(vals)})
	}
	ds := map[string]*table.Table{
		"a": mk(1, 2, 2, 3, 4),
		"b": mk(3, 4, 5),
	}
	rt := runtimeFor(ds)

	u, _ := core.NewUnion(mustScan(t, "a", ds), mustScan(t, "b", ds), true)
	if got := run(t, rt, u).NumRows(); got != 8 {
		t.Fatalf("union all: %d rows, want 8", got)
	}
	u2, _ := core.NewUnion(mustScan(t, "a", ds), mustScan(t, "b", ds), false)
	if got := run(t, rt, u2).NumRows(); got != 5 {
		t.Fatalf("union: %d rows, want 5", got)
	}
	ex, _ := core.NewExcept(mustScan(t, "a", ds), mustScan(t, "b", ds))
	if got := run(t, rt, ex).NumRows(); got != 2 {
		t.Fatalf("except: %d rows, want 2 (1,2)", got)
	}
	in, _ := core.NewIntersect(mustScan(t, "a", ds), mustScan(t, "b", ds))
	if got := run(t, rt, in).NumRows(); got != 2 {
		t.Fatalf("intersect: %d rows, want 2 (3,4)", got)
	}
}

func TestSliceDiceShift(t *testing.T) {
	grid := datagen.Grid(8, 10, 10)
	ds := map[string]*table.Table{"grid": grid}
	rt := runtimeFor(ds)

	sl, err := core.NewSliceDim(mustScan(t, "grid", ds), "x", 3)
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, sl)
	if out.NumRows() != 10 {
		t.Fatalf("slice x=3: %d rows, want 10", out.NumRows())
	}
	if out.Schema().Has("x") {
		t.Fatal("slice should remove the sliced dimension")
	}

	di, err := core.NewDice(mustScan(t, "grid", ds), []core.DimBound{
		{Dim: "x", Lo: 2, Hi: 5}, {Dim: "y", Lo: 0, Hi: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	out = run(t, rt, di)
	if out.NumRows() != 3*4 {
		t.Fatalf("dice: %d rows, want 12", out.NumRows())
	}

	sh, err := core.NewShift(mustScan(t, "grid", ds), "x", 100)
	if err != nil {
		t.Fatal(err)
	}
	out = run(t, rt, sh)
	xs := out.ColByName("x").Ints()
	for _, x := range xs {
		if x < 100 || x > 109 {
			t.Fatalf("shift out of range: %d", x)
		}
	}
}

func TestWindowAgainstOracle(t *testing.T) {
	series := datagen.Series(9, 200)
	ds := map[string]*table.Table{"s": series}
	rt := runtimeFor(ds)
	w, err := core.NewWindow(mustScan(t, "s", ds), []core.DimExtent{{Dim: "t", Before: 2, After: 2}},
		core.AggSum, "temp", "smooth")
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, w)
	want := ref.WindowSum1D(series.ColByName("temp").Floats(), 2, 2)
	if out.NumRows() != len(want) {
		t.Fatalf("window rows: %d, want %d", out.NumRows(), len(want))
	}
	// Output may be in any order; index by t.
	ts := out.ColByName("t").Ints()
	sm := out.ColByName("smooth").Floats()
	for i := range ts {
		if math.Abs(sm[i]-want[ts[i]]) > 1e-9 {
			t.Fatalf("window at t=%d: %g, want %g", ts[i], sm[i], want[ts[i]])
		}
	}
}

func TestReduceDims(t *testing.T) {
	grid := datagen.Grid(10, 8, 6)
	ds := map[string]*table.Table{"g": grid}
	rt := runtimeFor(ds)
	rd, err := core.NewReduceDims(mustScan(t, "g", ds), []string{"y"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Column("v"), As: "rowsum"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, rd)
	if out.NumRows() != 8 {
		t.Fatalf("reduce over y: %d rows, want 8", out.NumRows())
	}
	if !out.Schema().At(0).Dim {
		t.Fatal("surviving dimension should stay tagged")
	}
	// Oracle.
	oracle := make([]float64, 8)
	xs := grid.ColByName("x").Ints()
	vs := grid.ColByName("v").Floats()
	for i := range xs {
		oracle[xs[i]] += vs[i]
	}
	ox := out.ColByName("x").Ints()
	ov := out.ColByName("rowsum").Floats()
	for i := range ox {
		if math.Abs(ov[i]-oracle[ox[i]]) > 1e-9 {
			t.Fatalf("rowsum x=%d: %g want %g", ox[i], ov[i], oracle[ox[i]])
		}
	}
}

func TestFillDensifies(t *testing.T) {
	sch := datagen.GridSchema()
	b := table.NewBuilder(sch, 3)
	b.MustAppend(value.NewInt(0), value.NewInt(0), value.NewFloat(1))
	b.MustAppend(value.NewInt(2), value.NewInt(2), value.NewFloat(2))
	b.MustAppend(value.NewInt(0), value.NewInt(2), value.NewFloat(3))
	sparse := b.Build()
	ds := map[string]*table.Table{"g": sparse}
	rt := runtimeFor(ds)
	f, err := core.NewFill(mustScan(t, "g", ds), value.NewFloat(0))
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, f)
	if out.NumRows() != 9 { // box [0,2]x[0,2]
		t.Fatalf("fill: %d rows, want 9", out.NumRows())
	}
	var sum float64
	for _, v := range out.ColByName("v").Floats() {
		sum += v
	}
	if math.Abs(sum-6) > 1e-9 {
		t.Fatalf("fill sum: %g, want 6", sum)
	}
}

func TestMatMulSparseAgainstDense(t *testing.T) {
	const m, k, n = 7, 5, 6
	a := datagen.Matrix(11, m, k, "i", "k")
	bm := datagen.Matrix(12, k, n, "k", "j")
	ds := map[string]*table.Table{"A": a, "B": bm}
	rt := runtimeFor(ds)
	mm, err := core.NewMatMul(mustScan(t, "A", ds), mustScan(t, "B", ds), "v")
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, mm)
	want := ref.MatMulDense(datagen.MatrixDense(11, m, k), datagen.MatrixDense(12, k, n), m, k, n)
	if out.NumRows() != m*n {
		t.Fatalf("matmul: %d cells, want %d", out.NumRows(), m*n)
	}
	is := out.ColByName("i").Ints()
	js := out.ColByName("j").Ints()
	vs := out.ColByName("v").Floats()
	for r := range is {
		if math.Abs(vs[r]-want[is[r]*n+js[r]]) > 1e-9 {
			t.Fatalf("cell (%d,%d): %g want %g", is[r], js[r], vs[r], want[is[r]*n+js[r]])
		}
	}
}

func TestElemWise(t *testing.T) {
	a := datagen.Matrix(13, 4, 4, "i", "j")
	b := datagen.Matrix(14, 4, 4, "i", "j")
	ds := map[string]*table.Table{"A": a, "B": b}
	rt := runtimeFor(ds)
	ew, err := core.NewElemWise(mustScan(t, "A", ds), mustScan(t, "B", ds), value.OpAdd, "s")
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, ew)
	if out.NumRows() != 16 {
		t.Fatalf("elemwise: %d rows, want 16", out.NumRows())
	}
	av := a.ColByName("v").Floats()
	bv := b.ColByName("v").Floats()
	// Both generators emit cells in the same (i,j) order.
	idx := map[[2]int64]float64{}
	ai := a.ColByName("i").Ints()
	aj := a.ColByName("j").Ints()
	for r := range av {
		idx[[2]int64{ai[r], aj[r]}] = av[r] + bv[r]
	}
	oi := out.ColByName("i").Ints()
	oj := out.ColByName("j").Ints()
	ov := out.ColByName("s").Floats()
	for r := range ov {
		if math.Abs(ov[r]-idx[[2]int64{oi[r], oj[r]}]) > 1e-9 {
			t.Fatalf("elemwise cell (%d,%d) mismatch", oi[r], oj[r])
		}
	}
}

func TestTranspose(t *testing.T) {
	a := datagen.Matrix(15, 3, 5, "i", "j")
	ds := map[string]*table.Table{"A": a}
	rt := runtimeFor(ds)
	tr, err := core.NewTranspose(mustScan(t, "A", ds), []string{"j", "i"})
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, tr)
	if out.Schema().DimNames()[0] != "j" {
		t.Fatalf("transpose dims: %v", out.Schema().DimNames())
	}
	if out.NumRows() != a.NumRows() {
		t.Fatalf("transpose changed cardinality")
	}
}

func TestIterateConvergence(t *testing.T) {
	// state(k, x): x converges to 10 via x' = (x + 10) / 2.
	sch := schema.New(
		schema.Attribute{Name: "k", Kind: value.KindInt64},
		schema.Attribute{Name: "x", Kind: value.KindFloat64},
	)
	b := table.NewBuilder(sch, 2)
	b.MustAppend(value.NewInt(0), value.NewFloat(0))
	b.MustAppend(value.NewInt(1), value.NewFloat(100))
	init, err := core.NewLiteral(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	loopVar, err := core.NewVar("state", sch)
	if err != nil {
		t.Fatal(err)
	}
	step, err := core.NewExtend(loopVar, []core.ColDef{
		{Name: "xnew", E: expr.Div(expr.Add(expr.Column("x"), expr.CFloat(10)), expr.CFloat(2))},
	})
	if err != nil {
		t.Fatal(err)
	}
	proj, err := core.NewProject(step, []string{"k", "xnew"})
	if err != nil {
		t.Fatal(err)
	}
	body, err := core.NewRename(proj, []string{"xnew"}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	it, err := core.NewIterate(init, body, "state", 100, &core.Convergence{
		Metric: core.MetricLInf, Col: "x", Tol: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := runtimeFor(nil)
	out := run(t, rt, it)
	for i := 0; i < out.NumRows(); i++ {
		x := out.ColByName("x").Floats()[i]
		if math.Abs(x-10) > 1e-6 {
			t.Fatalf("row %d did not converge: %g", i, x)
		}
	}
	if rt.Stats.Iterations >= 100 {
		t.Fatalf("should converge well before 100 iterations, took %d", rt.Stats.Iterations)
	}
	if rt.Stats.Iterations < 10 {
		t.Fatalf("converged suspiciously fast: %d iterations", rt.Stats.Iterations)
	}
}

func TestIterateMaxItersWithoutConvergence(t *testing.T) {
	sch := schema.New(schema.Attribute{Name: "x", Kind: value.KindInt64})
	b := table.NewBuilder(sch, 1)
	b.MustAppend(value.NewInt(0))
	init, _ := core.NewLiteral(b.Build())
	loopVar, _ := core.NewVar("s", sch)
	step, _ := core.NewExtend(loopVar, []core.ColDef{{Name: "x2", E: expr.Add(expr.Column("x"), expr.CInt(1))}})
	proj, _ := core.NewProject(step, []string{"x2"})
	body, _ := core.NewRename(proj, []string{"x2"}, []string{"x"})
	it, err := core.NewIterate(init, body, "s", 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt := runtimeFor(nil)
	out := run(t, rt, it)
	if got := out.Value(0, 0).Int(); got != 7 {
		t.Fatalf("x = %d after 7 iterations, want 7", got)
	}
}

func TestLetBinding(t *testing.T) {
	ds := map[string]*table.Table{"sales": datagen.Sales(16, 200, 10, 5)}
	rt := runtimeFor(ds)
	scan := mustScan(t, "sales", ds)
	bound, err := core.NewFilter(scan, expr.Gt(expr.Column("qty"), expr.CInt(5)))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := core.NewVar("big", bound.Schema())
	u, err := core.NewUnion(v, v, true)
	if err != nil {
		t.Fatal(err)
	}
	let, err := core.NewLet("big", bound, u)
	if err != nil {
		t.Fatal(err)
	}
	out := run(t, rt, let)
	single := run(t, rt, bound)
	if out.NumRows() != 2*single.NumRows() {
		t.Fatalf("let union: %d rows, want %d", out.NumRows(), 2*single.NumRows())
	}
}

func TestFreeVarRejected(t *testing.T) {
	sch := schema.New(schema.Attribute{Name: "x", Kind: value.KindInt64})
	v, _ := core.NewVar("nowhere", sch)
	rt := runtimeFor(nil)
	if _, err := rt.Run(v); err == nil {
		t.Fatal("expected error for free variable")
	}
}

// Property: distinct is idempotent and never increases cardinality.
func TestDistinctProperties(t *testing.T) {
	f := func(xs []int64) bool {
		if len(xs) == 0 {
			return true
		}
		tab := table.MustNew(schema.New(schema.Attribute{Name: "x", Kind: value.KindInt64}),
			[]*table.Column{table.IntColumn(xs)})
		d1 := distinctRows(tab)
		d2 := distinctRows(d1)
		return d1.NumRows() <= tab.NumRows() &&
			d1.NumRows() == d2.NumRows() &&
			d1.NumRows() == ref.Distinct(tab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: hash join row count equals nested-loop row count on random
// key data.
func TestJoinCardinalityProperty(t *testing.T) {
	f := func(lk, rk []uint8) bool {
		l := make([]int64, len(lk))
		for i, v := range lk {
			l[i] = int64(v % 8)
		}
		r := make([]int64, len(rk))
		for i, v := range rk {
			r[i] = int64(v % 8)
		}
		sch := schema.New(schema.Attribute{Name: "k", Kind: value.KindInt64})
		lt := table.MustNew(sch, []*table.Column{table.IntColumn(l)})
		rt := table.MustNew(sch, []*table.Column{table.IntColumn(r)})
		ls, _ := core.NewLiteral(lt)
		rs, _ := core.NewLiteral(rt)
		j, err := core.NewJoin(ls, rs, core.JoinInner, []string{"k"}, []string{"k"}, nil)
		if err != nil {
			return false
		}
		got, err := HashJoin(lt, rt, j)
		if err != nil {
			return false
		}
		want := ref.NestedLoopJoin(lt, rt, []string{"k"}, []string{"k"})
		return got.NumRows() == want.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: group-by-sum per key equals the oracle on random data.
func TestGroupSumProperty(t *testing.T) {
	f := func(keys []uint8, vals []int16) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		if n == 0 {
			return true
		}
		ks := make([]int64, n)
		vs := make([]float64, n)
		for i := 0; i < n; i++ {
			ks[i] = int64(keys[i] % 5)
			vs[i] = float64(vals[i])
		}
		sch := schema.New(
			schema.Attribute{Name: "k", Kind: value.KindInt64},
			schema.Attribute{Name: "v", Kind: value.KindFloat64},
		)
		tab := table.MustNew(sch, []*table.Column{table.IntColumn(ks), table.FloatColumn(vs)})
		lit, _ := core.NewLiteral(tab)
		ga, err := core.NewGroupAgg(lit, []string{"k"}, []core.AggSpec{
			{Func: core.AggSum, Arg: expr.Column("v"), As: "s"},
		})
		if err != nil {
			return false
		}
		rt := runtimeFor(nil)
		out, err := rt.Run(ga)
		if err != nil {
			return false
		}
		oracle := ref.GroupSum(tab, "k", "v")
		if out.NumRows() != len(oracle) {
			return false
		}
		for i := 0; i < out.NumRows(); i++ {
			k := out.Value(i, 0).String()
			s := out.ColByName("s").Floats()[i]
			if math.Abs(s-oracle[k]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
