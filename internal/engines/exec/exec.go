// Package exec implements the generic execution runtime shared by every
// nexus engine: a recursive evaluator for the full Big Data algebra over
// columnar tables. Engines specialize it through the Override hook — the
// array engine substitutes dense-array kernels, the linear-algebra engine
// substitutes blocked matmul, the graph engine substitutes native
// iterative kernels — and fall back to this runtime for everything else.
// That fallback is what makes every operator "translatable to a back-end
// system (or a combination of such systems)" (desideratum D2).
package exec

import (
	"fmt"
	"sync/atomic"
	"time"

	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Env carries variable bindings (Iterate loop variables and Let
// bindings) during evaluation. Bindings shadow outward.
type Env struct {
	parent *Env
	name   string
	val    *table.Table
}

// Bind returns a child environment with one more binding.
func (e *Env) Bind(name string, t *table.Table) *Env {
	return &Env{parent: e, name: name, val: t}
}

// Lookup resolves a variable, innermost binding first.
func (e *Env) Lookup(name string) (*table.Table, bool) {
	for env := e; env != nil; env = env.parent {
		if env.name == name {
			return env.val, true
		}
	}
	return nil, false
}

// RecFunc recursively evaluates a sub-plan in an environment; Override
// implementations use it to evaluate their children.
type RecFunc func(n core.Node, env *Env) (*table.Table, error)

// Runtime executes algebra plans. Datasets resolves Scan leaves;
// Override, when non-nil, is consulted for every node and may take over
// its evaluation (handled=true).
type Runtime struct {
	Datasets func(name string) (*table.Table, bool)
	Override func(n core.Node, env *Env, rec RecFunc) (t *table.Table, handled bool, err error)

	// Parallelism caps the morsel worker pool used by filter, extend and
	// hash-join evaluation: 0 means one worker per available CPU, 1 runs
	// everything on the calling goroutine.
	Parallelism int

	// Cache memoizes compiled expressions across operators, micro-batches
	// and Iterate iterations. Nil means the runtime lazily creates a
	// private cache; engines inject a shared one to persist it across
	// plan executions.
	Cache *ExprCache

	// Trace, when non-nil, records per-node calls, output rows and
	// inclusive wall time — the data behind EXPLAIN ANALYZE. Tracing
	// costs a clock read and a map update per node evaluation, so it is
	// attached per-query, never left on.
	Trace *Trace

	// Stats accumulate across Run calls; callers may reset between runs.
	Stats Stats
}

// Stats counts work done by the runtime, reported by the benchmark
// harness. Counters are updated atomically, so a Runtime (or a shared
// Stats snapshot) stays consistent under parallel morsel execution.
type Stats struct {
	NodesExecuted int64
	RowsProduced  int64
	Iterations    int64
}

// Run evaluates a closed plan (no free variables).
func (r *Runtime) Run(plan core.Node) (*table.Table, error) {
	if fv := core.FreeVars(plan); len(fv) > 0 {
		return nil, fmt.Errorf("exec: plan has free variables %v", fv)
	}
	return r.Eval(plan, nil)
}

// Eval evaluates a plan in an environment.
func (r *Runtime) Eval(n core.Node, env *Env) (*table.Table, error) {
	if r.Trace == nil {
		return r.eval(n, env)
	}
	start := time.Now()
	t, err := r.eval(n, env)
	if err == nil && n != nil {
		rows := 0
		if t != nil {
			rows = t.NumRows()
		}
		r.Trace.record(n, rows, time.Since(start))
	}
	return t, err
}

func (r *Runtime) eval(n core.Node, env *Env) (*table.Table, error) {
	if n == nil {
		return nil, fmt.Errorf("exec: nil plan")
	}
	if r.Override != nil {
		t, handled, err := r.Override(n, env, r.Eval)
		if err != nil {
			return nil, err
		}
		if handled {
			atomic.AddInt64(&r.Stats.NodesExecuted, 1)
			if t != nil {
				atomic.AddInt64(&r.Stats.RowsProduced, int64(t.NumRows()))
			}
			countOp(n.Kind())
			return t, nil
		}
	}
	t, err := r.evalGeneric(n, env)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&r.Stats.NodesExecuted, 1)
	atomic.AddInt64(&r.Stats.RowsProduced, int64(t.NumRows()))
	countOp(n.Kind())
	return t, nil
}

func (r *Runtime) evalGeneric(n core.Node, env *Env) (*table.Table, error) {
	switch x := n.(type) {
	case *core.Scan:
		if r.Datasets == nil {
			return nil, fmt.Errorf("exec: no dataset resolver for scan %q", x.Dataset)
		}
		t, ok := r.Datasets(x.Dataset)
		if !ok {
			return nil, fmt.Errorf("exec: unknown dataset %q", x.Dataset)
		}
		if !t.Schema().EqualIgnoreDims(x.Schema()) {
			return nil, fmt.Errorf("exec: dataset %q schema %v does not match plan schema %v", x.Dataset, t.Schema(), x.Schema())
		}
		// Present the dataset under the plan's schema so dimension tags
		// declared in the plan apply.
		return t.WithSchema(x.Schema())
	case *core.Literal:
		return x.Table, nil
	case *core.Var:
		t, ok := env.Lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("exec: unbound variable %q", x.Name)
		}
		return t, nil
	case *core.Filter:
		return r.evalFilter(x, env)
	case *core.Project:
		return r.evalProject(x, env)
	case *core.Rename:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		return in.WithSchema(x.Schema())
	case *core.Extend:
		return r.evalExtend(x, env)
	case *core.Join:
		return r.evalJoin(x, env)
	case *core.Product:
		return r.evalProduct(x, env)
	case *core.GroupAgg:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		return groupAggregate(r, in, x.Keys, x.Aggs, x.Schema())
	case *core.Distinct:
		return r.evalDistinct(x, env)
	case *core.Sort:
		return r.evalSort(x, env)
	case *core.Limit:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		lo := int(x.Offset)
		hi := lo + int(x.N)
		return in.Slice(lo, hi), nil
	case *core.Union:
		return r.evalUnion(x, env)
	case *core.Except:
		return r.evalExcept(x, env)
	case *core.Intersect:
		return r.evalIntersect(x, env)
	case *core.AsArray, *core.DropDims:
		in, err := r.Eval(n.Children()[0], env)
		if err != nil {
			return nil, err
		}
		return in.WithSchema(n.Schema())
	case *core.SliceDim:
		return r.evalSliceDim(x, env)
	case *core.Dice:
		return r.evalDice(x, env)
	case *core.Transpose:
		return r.evalTranspose(x, env)
	case *core.Window:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		return windowAggregate(in, x)
	case *core.ReduceDims:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		// Desugar: group by the surviving dimensions.
		keys := x.Schema().DimNames()
		out, err := groupAggregate(r, in, keys, x.Aggs, x.Schema().DropDims())
		if err != nil {
			return nil, err
		}
		return out.WithSchema(x.Schema())
	case *core.Fill:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		return fillDense(in, x.Default)
	case *core.Shift:
		return r.evalShift(x, env)
	case *core.MatMul:
		return r.evalMatMulSparse(x, env)
	case *core.ElemWise:
		return r.evalElemWise(x, env)
	case *core.Iterate:
		return r.evalIterate(x, env)
	case *core.Let:
		bound, err := r.Eval(x.Bound(), env)
		if err != nil {
			return nil, err
		}
		return r.Eval(x.In(), env.Bind(x.Name, bound))
	}
	return nil, fmt.Errorf("exec: unsupported operator %v", n.Kind())
}

func (r *Runtime) evalFilter(x *core.Filter, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	c, err := r.compile(x.Pred, in.Schema())
	if err != nil {
		return nil, fmt.Errorf("exec: filter: %w", err)
	}
	sel, err := r.selectRows(c, in)
	if err != nil {
		return nil, fmt.Errorf("exec: filter: %w", err)
	}
	return in.Gather(sel), nil
}

// selectRows evaluates a compiled predicate into a selection vector,
// chunking the input into morsels across the worker pool when it pays.
func (r *Runtime) selectRows(c *expr.Compiled, in *table.Table) ([]int, error) {
	n := in.NumRows()
	w := r.workers()
	if w <= 1 || n < 2*morselRows {
		return c.AppendSelected(make([]int, 0, n/2+1), in)
	}
	parts := make([][]int, morselCount(n))
	err := forEachMorsel(w, n, func(m, lo, hi int) error {
		sel, err := c.AppendSelected(nil, in.Slice(lo, hi))
		if err != nil {
			return err
		}
		for i := range sel {
			sel[i] += lo
		}
		parts[m] = sel
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	sel := make([]int, 0, total)
	for _, p := range parts {
		sel = append(sel, p...)
	}
	return sel, nil
}

// evalColumn evaluates a compiled expression over all rows, splitting into
// parallel morsels when it pays, and coerces the result to want (use
// value.KindNull to keep the runtime kind).
func (r *Runtime) evalColumn(c *expr.Compiled, in *table.Table, want value.Kind) (*table.Column, error) {
	n := in.NumRows()
	w := r.workers()
	if w <= 1 || n < 2*morselRows {
		col, err := c.EvalBatch(in)
		if err != nil {
			return nil, err
		}
		if want != value.KindNull {
			return coerceColumn(col, want)
		}
		return col, nil
	}
	parts := make([]*table.Column, morselCount(n))
	err := forEachMorsel(w, n, func(m, lo, hi int) error {
		col, err := c.EvalBatch(in.Slice(lo, hi))
		if err != nil {
			return err
		}
		if want != value.KindNull {
			if col, err = coerceColumn(col, want); err != nil {
				return err
			}
		}
		parts[m] = col
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := table.NewColumn(parts[0].Kind(), n)
	for _, p := range parts {
		if err := out.AppendColumn(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *Runtime) evalProject(x *core.Project, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	positions := make([]int, len(x.Cols))
	for i, c := range x.Cols {
		p := in.Schema().IndexOf(c)
		if p < 0 {
			return nil, fmt.Errorf("exec: project: no column %q", c)
		}
		positions[i] = p
	}
	out := in.Project(positions)
	return out.WithSchema(x.Schema())
}

func (r *Runtime) evalExtend(x *core.Extend, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	cols := make([]*table.Column, 0, in.NumCols()+len(x.Defs))
	for i := 0; i < in.NumCols(); i++ {
		cols = append(cols, in.Col(i))
	}
	for di, d := range x.Defs {
		c, err := r.compile(d.E, in.Schema())
		if err != nil {
			return nil, fmt.Errorf("exec: extend %q: %w", d.Name, err)
		}
		// The schema fixed the output kind at plan time; coerce numeric
		// columns if the runtime produced the other numeric kind.
		want := x.Schema().At(in.NumCols() + di).Kind
		col, err := r.evalColumn(c, in, want)
		if err != nil {
			return nil, fmt.Errorf("exec: extend %q: %w", d.Name, err)
		}
		cols = append(cols, col)
	}
	return table.New(x.Schema(), cols)
}

// coerceColumn converts between numeric column kinds when an expression's
// runtime kind differs from the statically inferred one (e.g. NULL
// literals typed as int64).
func coerceColumn(c *table.Column, want value.Kind) (*table.Column, error) {
	if c.Kind() == want {
		return c, nil
	}
	out := table.NewColumn(want, c.Len())
	for i := 0; i < c.Len(); i++ {
		v := c.Value(i)
		if v.IsNull() {
			if err := out.Append(value.Null); err != nil {
				return nil, err
			}
			continue
		}
		switch want {
		case value.KindFloat64:
			f, ok := v.AsFloat()
			if !ok {
				return nil, fmt.Errorf("exec: cannot coerce %v to float64", v.Kind())
			}
			if err := out.Append(value.NewFloat(f)); err != nil {
				return nil, err
			}
		case value.KindInt64:
			iv, ok := v.AsInt()
			if !ok {
				return nil, fmt.Errorf("exec: cannot coerce %v to int64", v.Kind())
			}
			if err := out.Append(value.NewInt(iv)); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("exec: cannot coerce %v to %v", v.Kind(), want)
		}
	}
	return out, nil
}

func (r *Runtime) evalSort(x *core.Sort, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	keys := make([]table.SortKey, len(x.Specs))
	for i, s := range x.Specs {
		p := in.Schema().IndexOf(s.Col)
		if p < 0 {
			return nil, fmt.Errorf("exec: sort: no column %q", s.Col)
		}
		keys[i] = table.SortKey{Col: p, Desc: s.Desc}
	}
	return in.Sort(keys), nil
}

func (r *Runtime) evalDistinct(x *core.Distinct, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	return distinctRows(in), nil
}

// rowKeyer encodes whole rows of a table into canonical key bytes through
// one reusable buffer, shared by the key-encoded operators (distinct,
// union, except, intersect) so each row costs zero steady-state
// allocations to encode.
type rowKeyer struct {
	t   *table.Table
	buf []byte
}

func newRowKeyer(t *table.Table) *rowKeyer {
	return &rowKeyer{t: t, buf: make([]byte, 0, 64)}
}

// key returns the canonical encoding of row i. The result aliases the
// keyer's buffer and is only valid until the next call; map operations
// on string(key) are safe because Go copies the bytes on conversion.
func (k *rowKeyer) key(i int) []byte {
	k.buf = k.buf[:0]
	for c := 0; c < k.t.NumCols(); c++ {
		k.buf = value.AppendKey(k.buf, k.t.Value(i, c))
	}
	return k.buf
}

func distinctRows(in *table.Table) *table.Table {
	seen := make(map[string]struct{}, in.NumRows())
	idx := make([]int, 0, in.NumRows())
	keyer := newRowKeyer(in)
	for i := 0; i < in.NumRows(); i++ {
		k := string(keyer.key(i))
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			idx = append(idx, i)
		}
	}
	return in.Gather(idx)
}

func (r *Runtime) evalUnion(x *core.Union, env *Env) (*table.Table, error) {
	l, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	rt, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	// Align the right input to the left schema (kinds already checked).
	rt, err = rt.WithSchema(l.Schema())
	if err != nil {
		return nil, fmt.Errorf("exec: union: %w", err)
	}
	out, err := l.Concat(rt)
	if err != nil {
		return nil, fmt.Errorf("exec: union: %w", err)
	}
	if !x.All {
		out = distinctRows(out)
	}
	return out.WithSchema(x.Schema())
}

func rowKeySet(t *table.Table) map[string]struct{} {
	set := make(map[string]struct{}, t.NumRows())
	keyer := newRowKeyer(t)
	for i := 0; i < t.NumRows(); i++ {
		set[string(keyer.key(i))] = struct{}{}
	}
	return set
}

func (r *Runtime) evalExcept(x *core.Except, env *Env) (*table.Table, error) {
	l, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	rt, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	right := rowKeySet(rt)
	ld := distinctRows(l)
	idx := make([]int, 0, ld.NumRows())
	keyer := newRowKeyer(ld)
	for i := 0; i < ld.NumRows(); i++ {
		if _, hit := right[string(keyer.key(i))]; !hit {
			idx = append(idx, i)
		}
	}
	return ld.Gather(idx).WithSchema(x.Schema())
}

func (r *Runtime) evalIntersect(x *core.Intersect, env *Env) (*table.Table, error) {
	l, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	rt, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	right := rowKeySet(rt)
	ld := distinctRows(l)
	idx := make([]int, 0, ld.NumRows())
	keyer := newRowKeyer(ld)
	for i := 0; i < ld.NumRows(); i++ {
		if _, hit := right[string(keyer.key(i))]; hit {
			idx = append(idx, i)
		}
	}
	return ld.Gather(idx).WithSchema(x.Schema())
}
