// Package exec implements the generic execution runtime shared by every
// nexus engine: a recursive evaluator for the full Big Data algebra over
// columnar tables. Engines specialize it through the Override hook — the
// array engine substitutes dense-array kernels, the linear-algebra engine
// substitutes blocked matmul, the graph engine substitutes native
// iterative kernels — and fall back to this runtime for everything else.
// That fallback is what makes every operator "translatable to a back-end
// system (or a combination of such systems)" (desideratum D2).
package exec

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Env carries variable bindings (Iterate loop variables and Let
// bindings) during evaluation. Bindings shadow outward.
type Env struct {
	parent *Env
	name   string
	val    *table.Table
}

// Bind returns a child environment with one more binding.
func (e *Env) Bind(name string, t *table.Table) *Env {
	return &Env{parent: e, name: name, val: t}
}

// Lookup resolves a variable, innermost binding first.
func (e *Env) Lookup(name string) (*table.Table, bool) {
	for env := e; env != nil; env = env.parent {
		if env.name == name {
			return env.val, true
		}
	}
	return nil, false
}

// RecFunc recursively evaluates a sub-plan in an environment; Override
// implementations use it to evaluate their children.
type RecFunc func(n core.Node, env *Env) (*table.Table, error)

// Runtime executes algebra plans. Datasets resolves Scan leaves;
// Override, when non-nil, is consulted for every node and may take over
// its evaluation (handled=true).
type Runtime struct {
	Datasets func(name string) (*table.Table, bool)
	Override func(n core.Node, env *Env, rec RecFunc) (t *table.Table, handled bool, err error)

	// Stats accumulate across Run calls; callers may reset between runs.
	Stats Stats
}

// Stats counts work done by the runtime, reported by the benchmark
// harness.
type Stats struct {
	NodesExecuted int
	RowsProduced  int64
	Iterations    int
}

// Run evaluates a closed plan (no free variables).
func (r *Runtime) Run(plan core.Node) (*table.Table, error) {
	if fv := core.FreeVars(plan); len(fv) > 0 {
		return nil, fmt.Errorf("exec: plan has free variables %v", fv)
	}
	return r.Eval(plan, nil)
}

// Eval evaluates a plan in an environment.
func (r *Runtime) Eval(n core.Node, env *Env) (*table.Table, error) {
	if n == nil {
		return nil, fmt.Errorf("exec: nil plan")
	}
	if r.Override != nil {
		t, handled, err := r.Override(n, env, r.Eval)
		if err != nil {
			return nil, err
		}
		if handled {
			r.Stats.NodesExecuted++
			if t != nil {
				r.Stats.RowsProduced += int64(t.NumRows())
			}
			return t, nil
		}
	}
	t, err := r.evalGeneric(n, env)
	if err != nil {
		return nil, err
	}
	r.Stats.NodesExecuted++
	r.Stats.RowsProduced += int64(t.NumRows())
	return t, nil
}

func (r *Runtime) evalGeneric(n core.Node, env *Env) (*table.Table, error) {
	switch x := n.(type) {
	case *core.Scan:
		if r.Datasets == nil {
			return nil, fmt.Errorf("exec: no dataset resolver for scan %q", x.Dataset)
		}
		t, ok := r.Datasets(x.Dataset)
		if !ok {
			return nil, fmt.Errorf("exec: unknown dataset %q", x.Dataset)
		}
		if !t.Schema().EqualIgnoreDims(x.Schema()) {
			return nil, fmt.Errorf("exec: dataset %q schema %v does not match plan schema %v", x.Dataset, t.Schema(), x.Schema())
		}
		// Present the dataset under the plan's schema so dimension tags
		// declared in the plan apply.
		return t.WithSchema(x.Schema())
	case *core.Literal:
		return x.Table, nil
	case *core.Var:
		t, ok := env.Lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("exec: unbound variable %q", x.Name)
		}
		return t, nil
	case *core.Filter:
		return r.evalFilter(x, env)
	case *core.Project:
		return r.evalProject(x, env)
	case *core.Rename:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		return in.WithSchema(x.Schema())
	case *core.Extend:
		return r.evalExtend(x, env)
	case *core.Join:
		return r.evalJoin(x, env)
	case *core.Product:
		return r.evalProduct(x, env)
	case *core.GroupAgg:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		return groupAggregate(in, x.Keys, x.Aggs, x.Schema())
	case *core.Distinct:
		return r.evalDistinct(x, env)
	case *core.Sort:
		return r.evalSort(x, env)
	case *core.Limit:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		lo := int(x.Offset)
		hi := lo + int(x.N)
		return in.Slice(lo, hi), nil
	case *core.Union:
		return r.evalUnion(x, env)
	case *core.Except:
		return r.evalExcept(x, env)
	case *core.Intersect:
		return r.evalIntersect(x, env)
	case *core.AsArray, *core.DropDims:
		in, err := r.Eval(n.Children()[0], env)
		if err != nil {
			return nil, err
		}
		return in.WithSchema(n.Schema())
	case *core.SliceDim:
		return r.evalSliceDim(x, env)
	case *core.Dice:
		return r.evalDice(x, env)
	case *core.Transpose:
		return r.evalTranspose(x, env)
	case *core.Window:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		return windowAggregate(in, x)
	case *core.ReduceDims:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		// Desugar: group by the surviving dimensions.
		keys := x.Schema().DimNames()
		out, err := groupAggregate(in, keys, x.Aggs, x.Schema().DropDims())
		if err != nil {
			return nil, err
		}
		return out.WithSchema(x.Schema())
	case *core.Fill:
		in, err := r.Eval(x.Children()[0], env)
		if err != nil {
			return nil, err
		}
		return fillDense(in, x.Default)
	case *core.Shift:
		return r.evalShift(x, env)
	case *core.MatMul:
		return r.evalMatMulSparse(x, env)
	case *core.ElemWise:
		return r.evalElemWise(x, env)
	case *core.Iterate:
		return r.evalIterate(x, env)
	case *core.Let:
		bound, err := r.Eval(x.Bound(), env)
		if err != nil {
			return nil, err
		}
		return r.Eval(x.In(), env.Bind(x.Name, bound))
	}
	return nil, fmt.Errorf("exec: unsupported operator %v", n.Kind())
}

func (r *Runtime) evalFilter(x *core.Filter, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	c, err := expr.Compile(x.Pred, in.Schema())
	if err != nil {
		return nil, fmt.Errorf("exec: filter: %w", err)
	}
	col, err := c.EvalBatch(in)
	if err != nil {
		return nil, fmt.Errorf("exec: filter: %w", err)
	}
	idx := make([]int, 0, in.NumRows()/2+1)
	for i := 0; i < in.NumRows(); i++ {
		if !col.IsNull(i) && col.Kind() == value.KindBool && col.Bools()[i] {
			idx = append(idx, i)
		}
	}
	return in.Gather(idx), nil
}

func (r *Runtime) evalProject(x *core.Project, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	positions := make([]int, len(x.Cols))
	for i, c := range x.Cols {
		p := in.Schema().IndexOf(c)
		if p < 0 {
			return nil, fmt.Errorf("exec: project: no column %q", c)
		}
		positions[i] = p
	}
	out := in.Project(positions)
	return out.WithSchema(x.Schema())
}

func (r *Runtime) evalExtend(x *core.Extend, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	cols := make([]*table.Column, 0, in.NumCols()+len(x.Defs))
	for i := 0; i < in.NumCols(); i++ {
		cols = append(cols, in.Col(i))
	}
	for di, d := range x.Defs {
		c, err := expr.Compile(d.E, in.Schema())
		if err != nil {
			return nil, fmt.Errorf("exec: extend %q: %w", d.Name, err)
		}
		col, err := c.EvalBatch(in)
		if err != nil {
			return nil, fmt.Errorf("exec: extend %q: %w", d.Name, err)
		}
		// The schema fixed the output kind at plan time; coerce numeric
		// columns if the runtime produced the other numeric kind.
		want := x.Schema().At(in.NumCols() + di).Kind
		col, err = coerceColumn(col, want)
		if err != nil {
			return nil, fmt.Errorf("exec: extend %q: %w", d.Name, err)
		}
		cols = append(cols, col)
	}
	return table.New(x.Schema(), cols)
}

// coerceColumn converts between numeric column kinds when an expression's
// runtime kind differs from the statically inferred one (e.g. NULL
// literals typed as int64).
func coerceColumn(c *table.Column, want value.Kind) (*table.Column, error) {
	if c.Kind() == want {
		return c, nil
	}
	out := table.NewColumn(want, c.Len())
	for i := 0; i < c.Len(); i++ {
		v := c.Value(i)
		if v.IsNull() {
			if err := out.Append(value.Null); err != nil {
				return nil, err
			}
			continue
		}
		switch want {
		case value.KindFloat64:
			f, ok := v.AsFloat()
			if !ok {
				return nil, fmt.Errorf("exec: cannot coerce %v to float64", v.Kind())
			}
			if err := out.Append(value.NewFloat(f)); err != nil {
				return nil, err
			}
		case value.KindInt64:
			iv, ok := v.AsInt()
			if !ok {
				return nil, fmt.Errorf("exec: cannot coerce %v to int64", v.Kind())
			}
			if err := out.Append(value.NewInt(iv)); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("exec: cannot coerce %v to %v", v.Kind(), want)
		}
	}
	return out, nil
}

func (r *Runtime) evalSort(x *core.Sort, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	keys := make([]table.SortKey, len(x.Specs))
	for i, s := range x.Specs {
		p := in.Schema().IndexOf(s.Col)
		if p < 0 {
			return nil, fmt.Errorf("exec: sort: no column %q", s.Col)
		}
		keys[i] = table.SortKey{Col: p, Desc: s.Desc}
	}
	return in.Sort(keys), nil
}

func (r *Runtime) evalDistinct(x *core.Distinct, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	return distinctRows(in), nil
}

func distinctRows(in *table.Table) *table.Table {
	seen := make(map[string]struct{}, in.NumRows())
	idx := make([]int, 0, in.NumRows())
	buf := make([]byte, 0, 64)
	for i := 0; i < in.NumRows(); i++ {
		buf = buf[:0]
		for c := 0; c < in.NumCols(); c++ {
			buf = value.AppendKey(buf, in.Value(i, c))
		}
		k := string(buf)
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			idx = append(idx, i)
		}
	}
	return in.Gather(idx)
}

func (r *Runtime) evalUnion(x *core.Union, env *Env) (*table.Table, error) {
	l, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	rt, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	// Align the right input to the left schema (kinds already checked).
	rt, err = rt.WithSchema(l.Schema())
	if err != nil {
		return nil, fmt.Errorf("exec: union: %w", err)
	}
	out, err := l.Concat(rt)
	if err != nil {
		return nil, fmt.Errorf("exec: union: %w", err)
	}
	if !x.All {
		out = distinctRows(out)
	}
	return out.WithSchema(x.Schema())
}

func rowKeySet(t *table.Table) map[string]struct{} {
	set := make(map[string]struct{}, t.NumRows())
	buf := make([]byte, 0, 64)
	for i := 0; i < t.NumRows(); i++ {
		buf = buf[:0]
		for c := 0; c < t.NumCols(); c++ {
			buf = value.AppendKey(buf, t.Value(i, c))
		}
		set[string(buf)] = struct{}{}
	}
	return set
}

func (r *Runtime) evalExcept(x *core.Except, env *Env) (*table.Table, error) {
	l, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	rt, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	right := rowKeySet(rt)
	ld := distinctRows(l)
	idx := make([]int, 0, ld.NumRows())
	buf := make([]byte, 0, 64)
	for i := 0; i < ld.NumRows(); i++ {
		buf = buf[:0]
		for c := 0; c < ld.NumCols(); c++ {
			buf = value.AppendKey(buf, ld.Value(i, c))
		}
		if _, hit := right[string(buf)]; !hit {
			idx = append(idx, i)
		}
	}
	return ld.Gather(idx).WithSchema(x.Schema())
}

func (r *Runtime) evalIntersect(x *core.Intersect, env *Env) (*table.Table, error) {
	l, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	rt, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	right := rowKeySet(rt)
	ld := distinctRows(l)
	idx := make([]int, 0, ld.NumRows())
	buf := make([]byte, 0, 64)
	for i := 0; i < ld.NumRows(); i++ {
		buf = buf[:0]
		for c := 0; c < ld.NumCols(); c++ {
			buf = value.AppendKey(buf, ld.Value(i, c))
		}
		if _, hit := right[string(buf)]; hit {
			idx = append(idx, i)
		}
	}
	return ld.Gather(idx).WithSchema(x.Schema())
}
