package exec

import (
	"nexus/internal/core"
	"nexus/internal/schema"
	"nexus/internal/table"
)

// GroupAggregate exposes the hash-aggregation kernel directly, outside a
// full plan walk: group in by the key columns and compute each aggregate
// spec per group, producing a table with the given output schema (keys
// then aggregates). With no keys the whole input forms one group. The
// streaming runtime's incremental window state is built from this
// kernel's Accumulator; this entry point is the batch reference it is
// verified against (see internal/stream's kernel-equivalence test).
func GroupAggregate(in *table.Table, keys []string, aggs []core.AggSpec, outSchema schema.Schema) (*table.Table, error) {
	return groupAggregate(&Runtime{Parallelism: 1}, in, keys, aggs, outSchema)
}
