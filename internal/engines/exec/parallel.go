package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/expr"
	"nexus/internal/schema"
)

// ExprCache memoizes expr.Compile results keyed by the expression's
// structural hash and the schema it is bound to, so a plan's predicates
// and projections compile once per plan — not once per micro-batch and
// once per Iterate iteration. It is safe for concurrent use and can be
// shared across Runtimes (an engine keeps one for its lifetime).
type ExprCache struct {
	mu sync.Mutex
	m  map[exprCacheKey]*expr.Compiled
}

type exprCacheKey struct {
	exprHash   uint64
	schemaHash uint64
}

// NewExprCache returns an empty compiled-expression cache.
func NewExprCache() *ExprCache {
	return &ExprCache{m: make(map[exprCacheKey]*expr.Compiled)}
}

// maxCachedExprs bounds a cache's entry count. Expressions embed
// constants, so a long-lived engine serving ad-hoc queries with varying
// literals would otherwise accumulate compiled programs without bound;
// on overflow the cache resets wholesale (compilation is cheap relative
// to plan execution, and steady-state plans re-warm in one pass).
const maxCachedExprs = 4096

// Compile returns the compiled form of e bound to sch, reusing a prior
// compilation when the same (expression, schema) pair was seen. Hash
// collisions are guarded by full structural comparison before reuse.
func (c *ExprCache) Compile(e expr.Expr, sch schema.Schema) (*expr.Compiled, error) {
	key := exprCacheKey{exprHash: expr.Hash(e), schemaHash: schemaHash(sch)}
	c.mu.Lock()
	hit, ok := c.m[key]
	c.mu.Unlock()
	if ok && expr.Equal(hit.Expr(), e) && hit.Schema().Equal(sch) {
		metExprCacheHit.Inc()
		return hit, nil
	}
	metExprCacheMiss.Inc()
	compiled, err := expr.Compile(e, sch)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.m) >= maxCachedExprs {
		c.m = make(map[exprCacheKey]*expr.Compiled)
	}
	c.m[key] = compiled
	c.mu.Unlock()
	return compiled, nil
}

// schemaHash digests attribute names, kinds and dimension tags, without
// allocating.
func schemaHash(s schema.Schema) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h = (h ^ uint64(b)) * prime
	}
	for i := 0; i < s.Len(); i++ {
		a := s.At(i)
		for j := 0; j < len(a.Name); j++ {
			mix(a.Name[j])
		}
		mix(0)
		mix(byte(a.Kind))
		if a.Dim {
			mix(1)
		} else {
			mix(2)
		}
	}
	return h
}

// compile resolves through the runtime's cache, creating a private cache
// on first use when none was injected.
func (r *Runtime) compile(e expr.Expr, sch schema.Schema) (*expr.Compiled, error) {
	if r.Cache == nil {
		r.Cache = NewExprCache()
	}
	return r.Cache.Compile(e, sch)
}

// morselRows is the chunk size of parallel execution: small enough that a
// morsel's working set stays cache-resident, large enough to amortize
// scheduling.
const morselRows = 4096

// workers resolves the Parallelism knob: 0 means one worker per available
// CPU, 1 disables parallel execution.
func (r *Runtime) workers() int {
	p := r.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return p
}

// morselCount returns the number of morselRows-sized chunks covering n.
func morselCount(n int) int {
	return (n + morselRows - 1) / morselRows
}

// forEachMorsel splits [0, n) into morselRows-sized chunks and runs
// fn(m, lo, hi) for chunk m over row range [lo, hi), fanning chunks out
// over at most `workers` goroutines. fn runs concurrently; per-chunk
// results must be written to distinct slots (index by m). The first error
// cancels remaining work.
func forEachMorsel(workers, n int, fn func(m, lo, hi int) error) error {
	nm := morselCount(n)
	if nm == 0 {
		return nil
	}
	if workers > nm {
		workers = nm
	}
	if workers <= 1 {
		for m := 0; m < nm; m++ {
			lo := m * morselRows
			hi := min(lo+morselRows, n)
			if err := fn(m, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		firstMu sync.Mutex
		first   error
		wg      sync.WaitGroup
	)
	// Queue wait per morsel: time between fan-out and a worker picking
	// the morsel up. One clock read per 4096 rows — noise-level cost.
	fanOut := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= nm || failed.Load() {
					return
				}
				metMorselWait.ObserveSince(fanOut)
				lo := m * morselRows
				hi := min(lo+morselRows, n)
				if err := fn(m, lo, hi); err != nil {
					firstMu.Lock()
					if first == nil {
						first = err
					}
					firstMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
