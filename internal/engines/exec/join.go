package exec

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/table"
	"nexus/internal/value"
)

// evalJoin implements equijoins as a build/probe hash join with an
// optional residual predicate evaluated over candidate pairs. The right
// input is the build side.
func (r *Runtime) evalJoin(x *core.Join, env *Env) (*table.Table, error) {
	left, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	right, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	return HashJoin(left, right, x)
}

// HashJoin joins two materialized tables per the join node's parameters.
// It is exported for reuse by the reference oracle tests and the array
// engine's alignment paths.
func HashJoin(left, right *table.Table, x *core.Join) (*table.Table, error) {
	lk, err := keyPositions(left, x.LeftKeys)
	if err != nil {
		return nil, fmt.Errorf("exec: join: %w", err)
	}
	rk, err := keyPositions(right, x.RightKeys)
	if err != nil {
		return nil, fmt.Errorf("exec: join: %w", err)
	}

	// Build: hash the right side on its keys.
	build := make(map[string][]int32, right.NumRows())
	buf := make([]byte, 0, 64)
	for i := 0; i < right.NumRows(); i++ {
		buf = encodeKeys(buf[:0], right, rk, i)
		build[string(buf)] = append(build[string(buf)], int32(i))
	}

	// Probe: candidate pairs.
	var li, ri []int
	for i := 0; i < left.NumRows(); i++ {
		buf = encodeKeys(buf[:0], left, lk, i)
		for _, j := range build[string(buf)] {
			li = append(li, i)
			ri = append(ri, int(j))
		}
	}

	// Residual filtering over candidate pairs.
	if x.Residual != nil && len(li) > 0 {
		pairSchema := left.Schema().Concat(right.Schema())
		lg := left.Gather(li)
		rg := right.Gather(ri)
		cols := make([]*table.Column, 0, lg.NumCols()+rg.NumCols())
		for i := 0; i < lg.NumCols(); i++ {
			cols = append(cols, lg.Col(i))
		}
		for i := 0; i < rg.NumCols(); i++ {
			cols = append(cols, rg.Col(i))
		}
		pairs, err := table.New(pairSchema, cols)
		if err != nil {
			return nil, fmt.Errorf("exec: join residual: %w", err)
		}
		c, err := expr.Compile(x.Residual, pairSchema)
		if err != nil {
			return nil, fmt.Errorf("exec: join residual: %w", err)
		}
		keep, err := c.EvalBatch(pairs)
		if err != nil {
			return nil, fmt.Errorf("exec: join residual: %w", err)
		}
		fl := li[:0]
		fr := ri[:0]
		for i := range li {
			if !keep.IsNull(i) && keep.Kind() == value.KindBool && keep.Bools()[i] {
				fl = append(fl, li[i])
				fr = append(fr, ri[i])
			}
		}
		li, ri = fl, fr
	}

	switch x.Type {
	case core.JoinInner:
		return assembleJoin(left, right, li, ri, false)
	case core.JoinLeft:
		// Pad unmatched left rows with NULLs on the right.
		matched := make([]bool, left.NumRows())
		for _, i := range li {
			matched[i] = true
		}
		for i := 0; i < left.NumRows(); i++ {
			if !matched[i] {
				li = append(li, i)
				ri = append(ri, -1)
			}
		}
		return assembleJoin(left, right, li, ri, true)
	case core.JoinSemi, core.JoinAnti:
		matched := make([]bool, left.NumRows())
		for _, i := range li {
			matched[i] = true
		}
		idx := make([]int, 0, left.NumRows())
		want := x.Type == core.JoinSemi
		for i := 0; i < left.NumRows(); i++ {
			if matched[i] == want {
				idx = append(idx, i)
			}
		}
		out := left.Gather(idx)
		return out.WithSchema(x.Schema())
	}
	return nil, fmt.Errorf("exec: join: unsupported type %v", x.Type)
}

func assembleJoin(left, right *table.Table, li, ri []int, pad bool) (*table.Table, error) {
	lg := left.Gather(li)
	cols := make([]*table.Column, 0, left.NumCols()+right.NumCols())
	for i := 0; i < lg.NumCols(); i++ {
		cols = append(cols, lg.Col(i))
	}
	for i := 0; i < right.NumCols(); i++ {
		if pad {
			cols = append(cols, right.Col(i).GatherPad(ri))
		} else {
			cols = append(cols, right.Col(i).Gather(ri))
		}
	}
	outSchema := left.Schema().Concat(right.Schema())
	return table.New(outSchema, cols)
}

func keyPositions(t *table.Table, keys []string) ([]int, error) {
	out := make([]int, len(keys))
	for i, k := range keys {
		p := t.Schema().IndexOf(k)
		if p < 0 {
			return nil, fmt.Errorf("no key column %q in %v", k, t.Schema())
		}
		out[i] = p
	}
	return out, nil
}

func encodeKeys(buf []byte, t *table.Table, positions []int, row int) []byte {
	for _, p := range positions {
		buf = value.AppendKey(buf, t.Value(row, p))
	}
	return buf
}

// evalProduct is the cross product; the output size is the product of the
// input sizes, guarded against accidental explosions.
func (r *Runtime) evalProduct(x *core.Product, env *Env) (*table.Table, error) {
	left, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	right, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	const maxProductRows = 64 << 20
	total := int64(left.NumRows()) * int64(right.NumRows())
	if total > maxProductRows {
		return nil, fmt.Errorf("exec: product of %d x %d rows exceeds the %d-row safety bound", left.NumRows(), right.NumRows(), maxProductRows)
	}
	li := make([]int, 0, total)
	ri := make([]int, 0, total)
	for i := 0; i < left.NumRows(); i++ {
		for j := 0; j < right.NumRows(); j++ {
			li = append(li, i)
			ri = append(ri, j)
		}
	}
	out, err := assembleJoin(left, right, li, ri, false)
	if err != nil {
		return nil, err
	}
	return out.WithSchema(x.Schema())
}
