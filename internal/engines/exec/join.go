package exec

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/table"
	"nexus/internal/value"
)

// evalJoin implements equijoins as a build/probe hash join with an
// optional residual predicate evaluated over candidate pairs. The right
// input is the build side.
func (r *Runtime) evalJoin(x *core.Join, env *Env) (*table.Table, error) {
	left, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	right, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	return r.hashJoin(left, right, x)
}

// HashJoin joins two materialized tables per the join node's parameters.
// It is exported for reuse by the reference oracle tests and the array
// engine's alignment paths; it runs on a fresh runtime with default
// parallelism.
func HashJoin(left, right *table.Table, x *core.Join) (*table.Table, error) {
	return (&Runtime{}).hashJoin(left, right, x)
}

func (r *Runtime) hashJoin(left, right *table.Table, x *core.Join) (*table.Table, error) {
	lk, err := keyPositions(left, x.LeftKeys)
	if err != nil {
		return nil, fmt.Errorf("exec: join: %w", err)
	}
	rk, err := keyPositions(right, x.RightKeys)
	if err != nil {
		return nil, fmt.Errorf("exec: join: %w", err)
	}

	// Candidate pairs: a single null-free int64 key pair probes a raw
	// int64-keyed table — no byte encoding at all; everything else goes
	// through canonical key encoding. Both probe phases run in ordered
	// morsels so the output keeps the left-row-major order.
	var li, ri []int
	if len(lk) == 1 && len(rk) == 1 &&
		left.Col(lk[0]).Kind() == value.KindInt64 && right.Col(rk[0]).Kind() == value.KindInt64 &&
		left.Col(lk[0]).Validity() == nil && right.Col(rk[0]).Validity() == nil {
		li, ri, err = r.probeInt64(left.Col(lk[0]).Ints(), right.Col(rk[0]).Ints())
	} else {
		li, ri, err = r.probeEncoded(left, right, lk, rk)
	}
	if err != nil {
		return nil, fmt.Errorf("exec: join: %w", err)
	}

	// Residual filtering over candidate pairs, through the cached
	// compiled predicate and the selection-vector path.
	if x.Residual != nil && len(li) > 0 {
		pairSchema := left.Schema().Concat(right.Schema())
		lg := left.Gather(li)
		rg := right.Gather(ri)
		cols := make([]*table.Column, 0, lg.NumCols()+rg.NumCols())
		for i := 0; i < lg.NumCols(); i++ {
			cols = append(cols, lg.Col(i))
		}
		for i := 0; i < rg.NumCols(); i++ {
			cols = append(cols, rg.Col(i))
		}
		pairs, err := table.New(pairSchema, cols)
		if err != nil {
			return nil, fmt.Errorf("exec: join residual: %w", err)
		}
		c, err := r.compile(x.Residual, pairSchema)
		if err != nil {
			return nil, fmt.Errorf("exec: join residual: %w", err)
		}
		sel, err := r.selectRows(c, pairs)
		if err != nil {
			return nil, fmt.Errorf("exec: join residual: %w", err)
		}
		fl := make([]int, len(sel))
		fr := make([]int, len(sel))
		for i, s := range sel {
			fl[i] = li[s]
			fr[i] = ri[s]
		}
		li, ri = fl, fr
	}

	switch x.Type {
	case core.JoinInner:
		return assembleJoin(left, right, li, ri, false)
	case core.JoinLeft:
		// Pad unmatched left rows with NULLs on the right.
		matched := make([]bool, left.NumRows())
		for _, i := range li {
			matched[i] = true
		}
		for i := 0; i < left.NumRows(); i++ {
			if !matched[i] {
				li = append(li, i)
				ri = append(ri, -1)
			}
		}
		return assembleJoin(left, right, li, ri, true)
	case core.JoinSemi, core.JoinAnti:
		matched := make([]bool, left.NumRows())
		for _, i := range li {
			matched[i] = true
		}
		idx := make([]int, 0, left.NumRows())
		want := x.Type == core.JoinSemi
		for i := 0; i < left.NumRows(); i++ {
			if matched[i] == want {
				idx = append(idx, i)
			}
		}
		out := left.Gather(idx)
		return out.WithSchema(x.Schema())
	}
	return nil, fmt.Errorf("exec: join: unsupported type %v", x.Type)
}

// pairPart holds one probe morsel's candidate pairs.
type pairPart struct {
	li, ri []int
}

// concatPairs stitches ordered morsel outputs into the final pair lists.
func concatPairs(parts []pairPart) ([]int, []int) {
	total := 0
	for _, p := range parts {
		total += len(p.li)
	}
	li := make([]int, 0, total)
	ri := make([]int, 0, total)
	for _, p := range parts {
		li = append(li, p.li...)
		ri = append(ri, p.ri...)
	}
	return li, ri
}

// probeInt64 is the single-int64-key fast path: build a map from raw key
// values (no canonical encoding) and probe it morsel-parallel. Unique
// build keys — the common foreign-key shape — store their row directly in
// the map; only duplicated keys spill to a chain list.
func (r *Runtime) probeInt64(lkeys, rkeys []int64) ([]int, []int, error) {
	build := make(map[int64]int32, len(rkeys))
	var dups map[int64][]int32
	for i, k := range rkeys {
		j, ok := build[k]
		if !ok {
			build[k] = int32(i)
			continue
		}
		if dups == nil {
			dups = make(map[int64][]int32)
		}
		if j >= 0 {
			dups[k] = append(dups[k], j)
			build[k] = -1
		}
		dups[k] = append(dups[k], int32(i))
	}
	probe := func(lo, hi int, pl, pr []int) ([]int, []int) {
		for i := lo; i < hi; i++ {
			j, ok := build[lkeys[i]]
			if !ok {
				continue
			}
			if j >= 0 {
				pl = append(pl, i)
				pr = append(pr, int(j))
				continue
			}
			for _, jj := range dups[lkeys[i]] {
				pl = append(pl, i)
				pr = append(pr, int(jj))
			}
		}
		return pl, pr
	}
	n := len(lkeys)
	w := r.workers()
	if w <= 1 || n < 2*morselRows {
		li, ri := probe(0, n, make([]int, 0, n), make([]int, 0, n))
		return li, ri, nil
	}
	parts := make([]pairPart, morselCount(n))
	err := forEachMorsel(w, n, func(m, lo, hi int) error {
		pl, pr := probe(lo, hi, make([]int, 0, hi-lo), make([]int, 0, hi-lo))
		parts[m] = pairPart{pl, pr}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	li, ri := concatPairs(parts)
	return li, ri, nil
}

// probeEncoded is the generic path: canonical byte encoding of the key
// columns (hash-consistent across kinds, NULL joins NULL), serial build,
// morsel-parallel probe against the frozen map.
func (r *Runtime) probeEncoded(left, right *table.Table, lk, rk []int) ([]int, []int, error) {
	build := make(map[string][]int32, right.NumRows())
	buf := make([]byte, 0, 64)
	for i := 0; i < right.NumRows(); i++ {
		buf = encodeKeys(buf[:0], right, rk, i)
		build[string(buf)] = append(build[string(buf)], int32(i))
	}
	n := left.NumRows()
	w := r.workers()
	if w <= 1 || n < 2*morselRows {
		li := make([]int, 0, n)
		ri := make([]int, 0, n)
		for i := 0; i < n; i++ {
			buf = encodeKeys(buf[:0], left, lk, i)
			for _, j := range build[string(buf)] {
				li = append(li, i)
				ri = append(ri, int(j))
			}
		}
		return li, ri, nil
	}
	parts := make([]pairPart, morselCount(n))
	err := forEachMorsel(w, n, func(m, lo, hi int) error {
		pl := make([]int, 0, hi-lo)
		pr := make([]int, 0, hi-lo)
		kbuf := make([]byte, 0, 64)
		for i := lo; i < hi; i++ {
			kbuf = encodeKeys(kbuf[:0], left, lk, i)
			for _, j := range build[string(kbuf)] {
				pl = append(pl, i)
				pr = append(pr, int(j))
			}
		}
		parts[m] = pairPart{pl, pr}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	li, ri := concatPairs(parts)
	return li, ri, nil
}

// isIdentity reports whether idx is exactly 0..n-1 — the one-match-per-
// row join shape, where gathering would only copy columns verbatim.
func isIdentity(idx []int, n int) bool {
	if len(idx) != n {
		return false
	}
	for i, j := range idx {
		if i != j {
			return false
		}
	}
	return true
}

func assembleJoin(left, right *table.Table, li, ri []int, pad bool) (*table.Table, error) {
	lg := left
	if !isIdentity(li, left.NumRows()) {
		lg = left.Gather(li)
	}
	cols := make([]*table.Column, 0, left.NumCols()+right.NumCols())
	for i := 0; i < lg.NumCols(); i++ {
		cols = append(cols, lg.Col(i))
	}
	for i := 0; i < right.NumCols(); i++ {
		if pad {
			cols = append(cols, right.Col(i).GatherPad(ri))
		} else {
			cols = append(cols, right.Col(i).Gather(ri))
		}
	}
	outSchema := left.Schema().Concat(right.Schema())
	return table.New(outSchema, cols)
}

func keyPositions(t *table.Table, keys []string) ([]int, error) {
	out := make([]int, len(keys))
	for i, k := range keys {
		p := t.Schema().IndexOf(k)
		if p < 0 {
			return nil, fmt.Errorf("no key column %q in %v", k, t.Schema())
		}
		out[i] = p
	}
	return out, nil
}

func encodeKeys(buf []byte, t *table.Table, positions []int, row int) []byte {
	for _, p := range positions {
		buf = value.AppendKey(buf, t.Value(row, p))
	}
	return buf
}

// evalProduct is the cross product; the output size is the product of the
// input sizes, guarded against accidental explosions.
func (r *Runtime) evalProduct(x *core.Product, env *Env) (*table.Table, error) {
	left, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	right, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	const maxProductRows = 64 << 20
	total := int64(left.NumRows()) * int64(right.NumRows())
	if total > maxProductRows {
		return nil, fmt.Errorf("exec: product of %d x %d rows exceeds the %d-row safety bound", left.NumRows(), right.NumRows(), maxProductRows)
	}
	li := make([]int, 0, total)
	ri := make([]int, 0, total)
	for i := 0; i < left.NumRows(); i++ {
		for j := 0; j < right.NumRows(); j++ {
			li = append(li, i)
			ri = append(ri, j)
		}
	}
	out, err := assembleJoin(left, right, li, ri, false)
	if err != nil {
		return nil, err
	}
	return out.WithSchema(x.Schema())
}
