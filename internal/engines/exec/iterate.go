package exec

import (
	"fmt"
	"math"
	"sync/atomic"

	"nexus/internal/core"
	"nexus/internal/table"
	"nexus/internal/value"
)

// evalIterate runs the control-iteration loop inside the engine: state :=
// init; repeat state := body(state) until the convergence metric fires or
// MaxIters is reached. Running the loop *here* — rather than in the
// client — is the paper's "control iteration" extension: one shipped
// expression tree executes the whole fixpoint, instead of one round trip
// per iteration.
func (r *Runtime) evalIterate(x *core.Iterate, env *Env) (*table.Table, error) {
	state, err := r.Eval(x.Init(), env)
	if err != nil {
		return nil, fmt.Errorf("exec: iterate init: %w", err)
	}
	state, err = state.WithSchema(x.Schema())
	if err != nil {
		return nil, fmt.Errorf("exec: iterate init: %w", err)
	}
	for iter := 0; iter < x.MaxIters; iter++ {
		next, err := r.Eval(x.Body(), env.Bind(x.LoopVar, state))
		if err != nil {
			return nil, fmt.Errorf("exec: iterate step %d: %w", iter+1, err)
		}
		next, err = next.WithSchema(x.Schema())
		if err != nil {
			return nil, fmt.Errorf("exec: iterate step %d: %w", iter+1, err)
		}
		atomic.AddInt64(&r.Stats.Iterations, 1)
		if x.Conv != nil {
			delta, err := ConvergenceDelta(state, next, x.Conv)
			if err != nil {
				return nil, fmt.Errorf("exec: iterate step %d: %w", iter+1, err)
			}
			if delta <= x.Conv.Tol {
				return next, nil
			}
		}
		state = next
	}
	return state, nil
}

// ConvergenceDelta computes the convergence metric between successive
// iteration states. For the norm metrics, rows are matched on the key
// formed by every column except the metric column; unmatched rows
// contribute their full magnitude. For MetricRowDelta it is the size of
// the symmetric difference of the row multisets.
func ConvergenceDelta(prev, next *table.Table, conv *core.Convergence) (float64, error) {
	if conv.Metric == core.MetricRowDelta {
		return rowDelta(prev, next), nil
	}
	col := prev.Schema().IndexOf(conv.Col)
	if col < 0 {
		return 0, fmt.Errorf("no convergence column %q", conv.Col)
	}
	prevVals := make(map[string]float64, prev.NumRows())
	buf := make([]byte, 0, 64)
	rowKey := func(t *table.Table, row int) string {
		buf = buf[:0]
		for c := 0; c < t.NumCols(); c++ {
			if c == col {
				continue
			}
			buf = value.AppendKey(buf, t.Value(row, c))
		}
		return string(buf)
	}
	colVal := func(t *table.Table, row int) float64 {
		f, ok := t.Value(row, col).AsFloat()
		if !ok {
			return 0
		}
		return f
	}
	for i := 0; i < prev.NumRows(); i++ {
		prevVals[rowKey(prev, i)] = colVal(prev, i)
	}
	var acc float64
	accumulate := func(d float64) {
		switch conv.Metric {
		case core.MetricL1:
			acc += math.Abs(d)
		case core.MetricL2:
			acc += d * d
		case core.MetricLInf:
			if a := math.Abs(d); a > acc {
				acc = a
			}
		}
	}
	seen := make(map[string]bool, next.NumRows())
	for i := 0; i < next.NumRows(); i++ {
		k := rowKey(next, i)
		seen[k] = true
		accumulate(colVal(next, i) - prevVals[k])
	}
	for k, v := range prevVals {
		if !seen[k] {
			accumulate(v)
		}
	}
	if conv.Metric == core.MetricL2 {
		return math.Sqrt(acc), nil
	}
	return acc, nil
}

func rowDelta(prev, next *table.Table) float64 {
	counts := make(map[string]int, prev.NumRows())
	buf := make([]byte, 0, 64)
	key := func(t *table.Table, row int) string {
		buf = buf[:0]
		for c := 0; c < t.NumCols(); c++ {
			buf = value.AppendKey(buf, t.Value(row, c))
		}
		return string(buf)
	}
	for i := 0; i < prev.NumRows(); i++ {
		counts[key(prev, i)]++
	}
	for i := 0; i < next.NumRows(); i++ {
		counts[key(next, i)]--
	}
	diff := 0
	for _, c := range counts {
		if c < 0 {
			c = -c
		}
		diff += c
	}
	return float64(diff)
}
