package exec

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"nexus/internal/core"
	"nexus/internal/obs"
)

// Execution-layer metrics. Per-kernel counters are pre-resolved into a
// kind-indexed array so the per-node cost is one slice index plus one
// atomic add — cheap enough for the BENCH_2 hot loops.
var (
	metOps = obs.Default.CounterVec("nexus_exec_ops_total",
		"Operator evaluations by kernel.", "op")
	metMorselWait = obs.Default.Histogram("nexus_exec_morsel_wait_seconds",
		"Time each morsel spent queued before a worker started it.",
		obs.LatencyBuckets())
	metExprCache = obs.Default.CounterVec("nexus_exec_expr_cache_total",
		"Compiled-expression cache lookups by result.", "result")
	metExprCacheHit  = metExprCache.With("hit")
	metExprCacheMiss = metExprCache.With("miss")
)

var opCounters = func() []*obs.Counter {
	kinds := core.AllOpKinds()
	maxK := 0
	for _, k := range kinds {
		if int(k) > maxK {
			maxK = int(k)
		}
	}
	out := make([]*obs.Counter, maxK+1)
	for _, k := range kinds {
		out[int(k)] = metOps.With(k.String())
	}
	return out
}()

func countOp(k core.OpKind) {
	if i := int(k); i >= 0 && i < len(opCounters) && opCounters[i] != nil {
		opCounters[i].Inc()
	}
}

// OpStats is what one plan node did during a traced execution. Wall
// time is inclusive of the node's children (the recursive evaluator's
// natural measure, as in EXPLAIN ANALYZE elsewhere); Calls exceeds 1
// when the node re-evaluates, e.g. inside an Iterate loop or across a
// stream's micro-batches.
type OpStats struct {
	Calls   int64
	RowsOut int64
	Wall    time.Duration
}

// Trace records per-node execution statistics when attached to a
// Runtime. Nodes are keyed by identity, so a trace is only meaningful
// for the exact plan instance that ran. Safe for concurrent use.
type Trace struct {
	mu  sync.Mutex
	ops map[core.Node]*OpStats
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{ops: make(map[core.Node]*OpStats)}
}

func (tr *Trace) record(n core.Node, rows int, d time.Duration) {
	tr.mu.Lock()
	st := tr.ops[n]
	if st == nil {
		st = &OpStats{}
		tr.ops[n] = st
	}
	st.Calls++
	st.RowsOut += int64(rows)
	st.Wall += d
	tr.mu.Unlock()
}

// Get returns the recorded stats for a node.
func (tr *Trace) Get(n core.Node) (OpStats, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	st, ok := tr.ops[n]
	if !ok {
		return OpStats{}, false
	}
	return *st, true
}

// ExplainAnalyze renders the plan as core.Explain does — one operator
// per line, indented, with schemas — annotating every node with the
// observed calls, output rows and inclusive wall time from the trace.
func ExplainAnalyze(n core.Node, tr *Trace) string {
	var b strings.Builder
	analyzeInto(&b, n, tr, 0)
	return b.String()
}

func analyzeInto(b *strings.Builder, n core.Node, tr *Trace, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Describe())
	fmt.Fprintf(b, "  → %v", n.Schema())
	if st, ok := tr.Get(n); ok {
		fmt.Fprintf(b, "  (calls=%d rows=%d time=%s)", st.Calls, st.RowsOut, formatWall(st.Wall))
	} else {
		b.WriteString("  (not executed)")
	}
	b.WriteByte('\n')
	for _, c := range n.Children() {
		analyzeInto(b, c, tr, depth+1)
	}
}

func formatWall(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
