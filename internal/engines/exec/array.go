package exec

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Generic (sparse, table-backed) implementations of the dimension-aware
// operators. The array engine overrides these with dense kernels; this
// code is the semantic reference and the fallback that makes the
// operators executable on any provider.

func (r *Runtime) evalSliceDim(x *core.SliceDim, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	p := in.Schema().IndexOf(x.Dim)
	if p < 0 {
		return nil, fmt.Errorf("exec: slice: no dimension %q", x.Dim)
	}
	col := in.Col(p)
	idx := make([]int, 0, in.NumRows())
	for i := 0; i < in.NumRows(); i++ {
		if !col.IsNull(i) && col.Ints()[i] == x.At {
			idx = append(idx, i)
		}
	}
	sel := in.Gather(idx)
	keep := make([]int, 0, in.NumCols()-1)
	for i := 0; i < in.NumCols(); i++ {
		if i != p {
			keep = append(keep, i)
		}
	}
	return sel.Project(keep).WithSchema(x.Schema())
}

func (r *Runtime) evalDice(x *core.Dice, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	type bound struct {
		col    *table.Column
		lo, hi int64
	}
	bounds := make([]bound, len(x.Bounds))
	for i, b := range x.Bounds {
		p := in.Schema().IndexOf(b.Dim)
		if p < 0 {
			return nil, fmt.Errorf("exec: dice: no dimension %q", b.Dim)
		}
		bounds[i] = bound{col: in.Col(p), lo: b.Lo, hi: b.Hi}
	}
	idx := make([]int, 0, in.NumRows())
rows:
	for i := 0; i < in.NumRows(); i++ {
		for _, b := range bounds {
			if b.col.IsNull(i) {
				continue rows
			}
			v := b.col.Ints()[i]
			if v < b.lo || v >= b.hi {
				continue rows
			}
		}
		idx = append(idx, i)
	}
	return in.Gather(idx).WithSchema(x.Schema())
}

func (r *Runtime) evalTranspose(x *core.Transpose, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	// Reorder columns to match the output schema's attribute order.
	positions := make([]int, x.Schema().Len())
	for i := 0; i < x.Schema().Len(); i++ {
		p := in.Schema().IndexOf(x.Schema().At(i).Name)
		if p < 0 {
			return nil, fmt.Errorf("exec: transpose: no column %q", x.Schema().At(i).Name)
		}
		positions[i] = p
	}
	return in.Project(positions).WithSchema(x.Schema())
}

func (r *Runtime) evalShift(x *core.Shift, env *Env) (*table.Table, error) {
	in, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	p := in.Schema().IndexOf(x.Dim)
	if p < 0 {
		return nil, fmt.Errorf("exec: shift: no dimension %q", x.Dim)
	}
	src := in.Col(p)
	shifted := make([]int64, in.NumRows())
	for i := 0; i < in.NumRows(); i++ {
		if !src.IsNull(i) {
			shifted[i] = src.Ints()[i] + x.Offset
		}
	}
	cols := make([]*table.Column, in.NumCols())
	for i := 0; i < in.NumCols(); i++ {
		if i == p {
			cols[i] = table.IntColumn(shifted)
		} else {
			cols[i] = in.Col(i)
		}
	}
	return table.New(x.Schema(), cols)
}

// coordKey encodes the dimension coordinates of a row.
func coordKey(buf []byte, t *table.Table, dimPos []int, row int) []byte {
	for _, p := range dimPos {
		buf = value.AppendKey(buf, t.Value(row, p))
	}
	return buf
}

// windowAggregate is the generic stencil: for every cell, aggregate Arg
// over the neighbourhood box. Sparse cells absent from the input simply
// do not contribute; the output contains one row per input cell.
func windowAggregate(in *table.Table, x *core.Window) (*table.Table, error) {
	dims := in.Schema().DimNames()
	dimPos := make([]int, len(dims))
	for i, d := range dims {
		dimPos[i] = in.Schema().IndexOf(d)
	}
	argPos := in.Schema().IndexOf(x.Arg)
	if argPos < 0 {
		return nil, fmt.Errorf("exec: window: no attribute %q", x.Arg)
	}

	// Extent lookup per dimension; unlisted dims get (0, 0).
	before := make([]int64, len(dims))
	after := make([]int64, len(dims))
	for _, e := range x.Extents {
		for i, d := range dims {
			if d == e.Dim {
				before[i] = e.Before
				after[i] = e.After
			}
		}
	}

	// Index cells by coordinates.
	cells := make(map[string]int, in.NumRows())
	buf := make([]byte, 0, 64)
	for i := 0; i < in.NumRows(); i++ {
		buf = coordKey(buf[:0], in, dimPos, i)
		cells[string(buf)] = i
	}

	outKind := x.Schema().At(x.Schema().Len() - 1).Kind
	b := table.NewBuilder(x.Schema(), in.NumRows())
	coords := make([]int64, len(dims))
	neighbour := make([]int64, len(dims))
	rowVals := make([]value.Value, 0, len(dims)+1)
	for i := 0; i < in.NumRows(); i++ {
		for d, p := range dimPos {
			coords[d] = in.Col(p).Ints()[i]
		}
		acc := NewAccumulator(x.Agg)
		// Enumerate the neighbourhood box with an odometer.
		copy(neighbour, coords)
		for d := range neighbour {
			neighbour[d] = coords[d] - before[d]
		}
		for {
			buf = buf[:0]
			for _, c := range neighbour {
				buf = value.AppendKey(buf, value.NewInt(c))
			}
			if j, ok := cells[string(buf)]; ok {
				if x.Agg == core.AggCount {
					acc.Add(value.NewInt(1))
				} else {
					acc.Add(in.Col(argPos).Value(j))
				}
			}
			// Odometer increment.
			d := len(neighbour) - 1
			for d >= 0 {
				neighbour[d]++
				if neighbour[d] <= coords[d]+after[d] {
					break
				}
				neighbour[d] = coords[d] - before[d]
				d--
			}
			if d < 0 {
				break
			}
		}
		rowVals = rowVals[:0]
		for range dims {
			rowVals = append(rowVals, value.Null)
		}
		for d := range dims {
			rowVals[d] = value.NewInt(coords[d])
		}
		rowVals = append(rowVals, acc.Result(outKind))
		if err := b.Append(rowVals...); err != nil {
			return nil, fmt.Errorf("exec: window: %w", err)
		}
	}
	return b.Build(), nil
}

// fillDense densifies the dimension box of the input: every coordinate in
// the bounding box appears exactly once; value attributes of missing
// cells take def (coerced per column kind).
func fillDense(in *table.Table, def value.Value) (*table.Table, error) {
	sch := in.Schema()
	dimPos := sch.DimIndexes()
	if len(dimPos) == 0 {
		return nil, fmt.Errorf("exec: fill: input has no dimensions")
	}
	if in.NumRows() == 0 {
		return in, nil
	}
	lo := make([]int64, len(dimPos))
	hi := make([]int64, len(dimPos))
	for d, p := range dimPos {
		col := in.Col(p).Ints()
		lo[d], hi[d] = col[0], col[0]
		for _, v := range col {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	total := int64(1)
	for d := range dimPos {
		span := hi[d] - lo[d] + 1
		total *= span
		const maxFillCells = 64 << 20
		if total > maxFillCells {
			return nil, fmt.Errorf("exec: fill: dense box of %d cells exceeds the %d-cell safety bound", total, int64(maxFillCells))
		}
	}

	// Index existing cells.
	cells := make(map[string]int, in.NumRows())
	buf := make([]byte, 0, 64)
	for i := 0; i < in.NumRows(); i++ {
		buf = coordKey(buf[:0], in, dimPos, i)
		cells[string(buf)] = i
	}

	// Default values per non-dim column.
	defaults := make([]value.Value, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		a := sch.At(i)
		if a.Dim {
			continue
		}
		if def.IsNull() {
			defaults[i] = value.Null
			continue
		}
		switch a.Kind {
		case value.KindFloat64:
			f, _ := def.AsFloat()
			defaults[i] = value.NewFloat(f)
		case value.KindInt64:
			iv, _ := def.AsInt()
			defaults[i] = value.NewInt(iv)
		default:
			defaults[i] = def
		}
	}

	b := table.NewBuilder(sch, int(total))
	coords := make([]int64, len(dimPos))
	copy(coords, lo)
	rowVals := make([]value.Value, sch.Len())
	for {
		buf = buf[:0]
		for _, c := range coords {
			buf = value.AppendKey(buf, value.NewInt(c))
		}
		src, exists := cells[string(buf)]
		d := 0
		for i := 0; i < sch.Len(); i++ {
			if sch.At(i).Dim {
				rowVals[i] = value.NewInt(coords[dimIndexOf(dimPos, i)])
				d++
				continue
			}
			if exists {
				rowVals[i] = in.Value(src, i)
			} else {
				rowVals[i] = defaults[i]
			}
		}
		if err := b.Append(rowVals...); err != nil {
			return nil, fmt.Errorf("exec: fill: %w", err)
		}
		// Odometer.
		k := len(coords) - 1
		for k >= 0 {
			coords[k]++
			if coords[k] <= hi[k] {
				break
			}
			coords[k] = lo[k]
			k--
		}
		if k < 0 {
			break
		}
	}
	return b.Build(), nil
}

func dimIndexOf(dimPos []int, col int) int {
	for d, p := range dimPos {
		if p == col {
			return d
		}
	}
	return -1
}

// evalMatMulSparse is the generic matrix multiply over the sparse table
// representation: group left cells by row, right cells by column, and
// accumulate products over the shared inner dimension. It exists so that
// MatMul is translatable everywhere; the linalg engine's dense kernel is
// the fast path.
func (r *Runtime) evalMatMulSparse(x *core.MatMul, env *Env) (*table.Table, error) {
	left, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	right, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	return MatMulSparse(left, right, x.Schema().DimNames()[0], x.Schema().DimNames()[1], x.As)
}

// MatMulSparse multiplies two matrices in their sparse (coordinate list)
// form. Exported as the semantic reference for property tests.
func MatMulSparse(left, right *table.Table, outI, outJ, as string) (*table.Table, error) {
	li, lk, lv, err := matrixCols(left)
	if err != nil {
		return nil, fmt.Errorf("exec: matmul left: %w", err)
	}
	ri, rj, rv, err := matrixCols(right)
	if err != nil {
		return nil, fmt.Errorf("exec: matmul right: %w", err)
	}
	// Bucket right rows by inner coordinate.
	byK := map[int64][]int{}
	rks := right.Col(ri).Ints()
	for row := 0; row < right.NumRows(); row++ {
		byK[rks[row]] = append(byK[rks[row]], row)
	}
	type cell struct{ i, j int64 }
	acc := map[cell]float64{}
	var order []cell
	lis := left.Col(li).Ints()
	lks := left.Col(lk).Ints()
	for row := 0; row < left.NumRows(); row++ {
		lval, ok := left.Col(lv).Value(row).AsFloat()
		if !ok {
			continue
		}
		for _, rrow := range byK[lks[row]] {
			rval, ok := right.Col(rv).Value(rrow).AsFloat()
			if !ok {
				continue
			}
			c := cell{i: lis[row], j: right.Col(rj).Ints()[rrow]}
			if _, seen := acc[c]; !seen {
				order = append(order, c)
			}
			acc[c] += lval * rval
		}
	}
	sch, err := schema.TryNew(
		schema.Attribute{Name: outI, Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: outJ, Kind: value.KindInt64, Dim: true},
		schema.Attribute{Name: as, Kind: value.KindFloat64},
	)
	if err != nil {
		return nil, fmt.Errorf("exec: matmul: %w", err)
	}
	b := table.NewBuilder(sch, len(order))
	for _, c := range order {
		if err := b.Append(value.NewInt(c.i), value.NewInt(c.j), value.NewFloat(acc[c])); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// matrixCols returns (rowDimPos, colDimPos, valuePos) for a 2-D array
// table with one value attribute.
func matrixCols(t *table.Table) (rowPos, colPos, valPos int, err error) {
	dims := t.Schema().DimIndexes()
	if len(dims) != 2 {
		return 0, 0, 0, fmt.Errorf("need 2 dims, have %d in %v", len(dims), t.Schema())
	}
	valPos = -1
	for i := 0; i < t.Schema().Len(); i++ {
		if !t.Schema().At(i).Dim {
			if valPos >= 0 {
				return 0, 0, 0, fmt.Errorf("more than one value attribute in %v", t.Schema())
			}
			valPos = i
		}
	}
	if valPos < 0 {
		return 0, 0, 0, fmt.Errorf("no value attribute in %v", t.Schema())
	}
	return dims[0], dims[1], valPos, nil
}

// evalElemWise aligns two sparse arrays on their coordinates (inner
// alignment) and applies the operator to their value attributes.
func (r *Runtime) evalElemWise(x *core.ElemWise, env *Env) (*table.Table, error) {
	left, err := r.Eval(x.Children()[0], env)
	if err != nil {
		return nil, err
	}
	right, err := r.Eval(x.Children()[1], env)
	if err != nil {
		return nil, err
	}
	ldims := left.Schema().DimIndexes()
	rdims := right.Schema().DimIndexes()
	lval, err := singleValuePos(left)
	if err != nil {
		return nil, fmt.Errorf("exec: elemwise left: %w", err)
	}
	rval, err := singleValuePos(right)
	if err != nil {
		return nil, fmt.Errorf("exec: elemwise right: %w", err)
	}
	rIndex := make(map[string]int, right.NumRows())
	buf := make([]byte, 0, 64)
	for i := 0; i < right.NumRows(); i++ {
		buf = coordKey(buf[:0], right, rdims, i)
		rIndex[string(buf)] = i
	}
	b := table.NewBuilder(x.Schema(), left.NumRows())
	rowVals := make([]value.Value, 0, len(ldims)+1)
	for i := 0; i < left.NumRows(); i++ {
		buf = coordKey(buf[:0], left, ldims, i)
		j, ok := rIndex[string(buf)]
		if !ok {
			continue
		}
		res, err := value.Apply(x.Op, left.Col(lval).Value(i), right.Col(rval).Value(j))
		if err != nil {
			return nil, fmt.Errorf("exec: elemwise: %w", err)
		}
		// Coerce to the declared output kind.
		want := x.Schema().At(x.Schema().Len() - 1).Kind
		if !res.IsNull() && res.Kind() != want && want == value.KindFloat64 {
			if f, ok := res.AsFloat(); ok {
				res = value.NewFloat(f)
			}
		}
		rowVals = rowVals[:0]
		for _, p := range ldims {
			rowVals = append(rowVals, left.Value(i, p))
		}
		rowVals = append(rowVals, res)
		if err := b.Append(rowVals...); err != nil {
			return nil, fmt.Errorf("exec: elemwise: %w", err)
		}
	}
	return b.Build(), nil
}

func singleValuePos(t *table.Table) (int, error) {
	pos := -1
	for i := 0; i < t.Schema().Len(); i++ {
		if !t.Schema().At(i).Dim {
			if pos >= 0 {
				return 0, fmt.Errorf("more than one value attribute in %v", t.Schema())
			}
			pos = i
		}
	}
	if pos < 0 {
		return 0, fmt.Errorf("no value attribute in %v", t.Schema())
	}
	return pos, nil
}
