package exec

import (
	"fmt"

	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Accumulator is the running state of one aggregate over one group. It is
// exported for reuse by the array engine's window kernels.
type Accumulator struct {
	fn       core.AggFunc
	count    int64
	sumInt   int64
	sumFloat float64
	isFloat  bool
	minmax   value.Value
	distinct map[string]struct{}
}

// NewAccumulator returns an empty accumulator for the aggregate function.
func NewAccumulator(fn core.AggFunc) *Accumulator {
	a := &Accumulator{fn: fn, minmax: value.Null}
	if fn == core.AggCountDistinct {
		a.distinct = make(map[string]struct{})
	}
	return a
}

// Add folds one value into the accumulator. NULLs are ignored except by
// count(*) (which is fed non-null markers by the caller).
func (a *Accumulator) Add(v value.Value) {
	if v.IsNull() {
		return
	}
	switch a.fn {
	case core.AggCount:
		a.count++
	case core.AggCountDistinct:
		a.distinct[string(value.AppendKey(nil, v))] = struct{}{}
	case core.AggSum, core.AggAvg:
		a.count++
		switch v.Kind() {
		case value.KindInt64:
			a.sumInt += v.Int()
		case value.KindFloat64:
			a.isFloat = true
			a.sumFloat += v.Float()
		}
	case core.AggMin:
		if a.minmax.IsNull() || value.Less(v, a.minmax) {
			a.minmax = v
		}
	case core.AggMax:
		if a.minmax.IsNull() || value.Less(a.minmax, v) {
			a.minmax = v
		}
	}
}

// Result returns the aggregate value, coerced to the statically inferred
// kind.
func (a *Accumulator) Result(want value.Kind) value.Value {
	switch a.fn {
	case core.AggCount:
		return value.NewInt(a.count)
	case core.AggCountDistinct:
		return value.NewInt(int64(len(a.distinct)))
	case core.AggSum:
		if a.count == 0 {
			return value.Null
		}
		if a.isFloat || want == value.KindFloat64 {
			return value.NewFloat(a.sumFloat + float64(a.sumInt))
		}
		return value.NewInt(a.sumInt)
	case core.AggAvg:
		if a.count == 0 {
			return value.Null
		}
		return value.NewFloat((a.sumFloat + float64(a.sumInt)) / float64(a.count))
	case core.AggMin, core.AggMax:
		return a.minmax
	}
	return value.Null
}

// groupAggregate is the hash-aggregation kernel: group the input by the
// key columns and compute each aggregate spec per group. With no keys the
// whole input forms one group (and an empty input still yields one row,
// matching SQL's global aggregates).
func groupAggregate(in *table.Table, keys []string, aggs []core.AggSpec, outSchema schema.Schema) (*table.Table, error) {
	keyPos := make([]int, len(keys))
	for i, k := range keys {
		p := in.Schema().IndexOf(k)
		if p < 0 {
			return nil, fmt.Errorf("exec: groupagg: no key column %q", k)
		}
		keyPos[i] = p
	}

	// Materialize argument columns once (vectorized where possible).
	argCols := make([]*table.Column, len(aggs))
	for i, a := range aggs {
		if a.Arg == nil {
			continue
		}
		c, err := expr.Compile(a.Arg, in.Schema())
		if err != nil {
			return nil, fmt.Errorf("exec: groupagg %q: %w", a.As, err)
		}
		col, err := c.EvalBatch(in)
		if err != nil {
			return nil, fmt.Errorf("exec: groupagg %q: %w", a.As, err)
		}
		argCols[i] = col
	}

	type group struct {
		firstRow int
		accs     []*Accumulator
	}
	groups := make(map[string]*group, 64)
	order := make([]*group, 0, 64)
	buf := make([]byte, 0, 64)
	newGroup := func(row int) *group {
		g := &group{firstRow: row, accs: make([]*Accumulator, len(aggs))}
		for i, a := range aggs {
			g.accs[i] = NewAccumulator(a.Func)
		}
		return g
	}
	for row := 0; row < in.NumRows(); row++ {
		buf = buf[:0]
		for _, p := range keyPos {
			buf = value.AppendKey(buf, in.Value(row, p))
		}
		g, ok := groups[string(buf)]
		if !ok {
			g = newGroup(row)
			groups[string(buf)] = g
			order = append(order, g)
		}
		for i, a := range aggs {
			if a.Arg == nil {
				// count(*): count the row unconditionally.
				g.accs[i].Add(value.NewInt(1))
				continue
			}
			g.accs[i].Add(argCols[i].Value(row))
		}
	}
	if len(keys) == 0 && len(order) == 0 {
		order = append(order, newGroup(-1))
	}

	b := table.NewBuilder(outSchema, len(order))
	rowBuf := make([]value.Value, 0, outSchema.Len())
	for _, g := range order {
		rowBuf = rowBuf[:0]
		for _, p := range keyPos {
			rowBuf = append(rowBuf, in.Value(g.firstRow, p))
		}
		for i := range aggs {
			want := outSchema.At(len(keyPos) + i).Kind
			rowBuf = append(rowBuf, g.accs[i].Result(want))
		}
		if err := b.Append(rowBuf...); err != nil {
			return nil, fmt.Errorf("exec: groupagg: %w", err)
		}
	}
	return b.Build(), nil
}
