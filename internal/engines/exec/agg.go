package exec

import (
	"fmt"
	"sort"

	"nexus/internal/core"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Accumulator is the running state of one aggregate over one group. It is
// exported for reuse by the array engine's window kernels.
type Accumulator struct {
	fn       core.AggFunc
	count    int64
	sumInt   int64
	sumFloat float64
	isFloat  bool
	minmax   value.Value
	distinct map[string]struct{}
}

// NewAccumulator returns an empty accumulator for the aggregate function.
func NewAccumulator(fn core.AggFunc) *Accumulator {
	a := &Accumulator{fn: fn, minmax: value.Null}
	if fn == core.AggCountDistinct {
		a.distinct = make(map[string]struct{})
	}
	return a
}

// Add folds one value into the accumulator. NULLs are ignored except by
// count(*) (which is fed non-null markers by the caller).
func (a *Accumulator) Add(v value.Value) {
	if v.IsNull() {
		return
	}
	switch a.fn {
	case core.AggCount:
		a.count++
	case core.AggCountDistinct:
		a.distinct[string(value.AppendKey(nil, v))] = struct{}{}
	case core.AggSum, core.AggAvg:
		a.count++
		switch v.Kind() {
		case value.KindInt64:
			a.sumInt += v.Int()
		case value.KindFloat64:
			a.isFloat = true
			a.sumFloat += v.Float()
		}
	case core.AggMin:
		if a.minmax.IsNull() || value.Less(v, a.minmax) {
			a.minmax = v
		}
	case core.AggMax:
		if a.minmax.IsNull() || value.Less(a.minmax, v) {
			a.minmax = v
		}
	}
}

// AddN folds the same value n times — exactly equivalent to n sequential
// Add calls. Run-length encoded inputs fold whole runs through it in
// O(1) per run: count(*)-style counts and integer sums collapse to one
// multiply, min/max and count-distinct to a single Add. Float sums are
// the exception and loop n scalar additions: float addition is not
// associative, and an encoded fold must stay bit-identical to the
// row-at-a-time path it replaces.
func (a *Accumulator) AddN(v value.Value, n int) {
	if n <= 0 || v.IsNull() {
		return
	}
	switch a.fn {
	case core.AggCount:
		a.count += int64(n)
	case core.AggCountDistinct, core.AggMin, core.AggMax:
		a.Add(v)
	case core.AggSum, core.AggAvg:
		a.count += int64(n)
		switch v.Kind() {
		case value.KindInt64:
			a.sumInt += v.Int() * int64(n)
		case value.KindFloat64:
			a.isFloat = true
			f := v.Float()
			for i := 0; i < n; i++ {
				a.sumFloat += f
			}
		}
	}
}

// AddRows counts n rows regardless of value — the count(*) feed, where
// a row's existence is what is counted (groupAggregate's nil-column
// fold does the same count++ per row).
func (a *Accumulator) AddRows(n int) {
	a.count += int64(n)
}

// Result returns the aggregate value, coerced to the statically inferred
// kind.
func (a *Accumulator) Result(want value.Kind) value.Value {
	switch a.fn {
	case core.AggCount:
		return value.NewInt(a.count)
	case core.AggCountDistinct:
		return value.NewInt(int64(len(a.distinct)))
	case core.AggSum:
		if a.count == 0 {
			return value.Null
		}
		if a.isFloat || want == value.KindFloat64 {
			return value.NewFloat(a.sumFloat + float64(a.sumInt))
		}
		return value.NewInt(a.sumInt)
	case core.AggAvg:
		if a.count == 0 {
			return value.Null
		}
		return value.NewFloat((a.sumFloat + float64(a.sumInt)) / float64(a.count))
	case core.AggMin, core.AggMax:
		return a.minmax
	}
	return value.Null
}

// AccSnapshot is the serializable state of one Accumulator — everything
// needed to resume the aggregate on another machine. The streaming
// window-state handoff (internal/wire's WindowState codec) ships these
// between servers.
type AccSnapshot struct {
	Fn       core.AggFunc
	Count    int64
	SumInt   int64
	SumFloat float64
	IsFloat  bool
	MinMax   value.Value
	Distinct []string // canonical key encodings, sorted for determinism
}

// Snapshot captures the accumulator's state.
func (a *Accumulator) Snapshot() AccSnapshot {
	s := AccSnapshot{
		Fn:       a.fn,
		Count:    a.count,
		SumInt:   a.sumInt,
		SumFloat: a.sumFloat,
		IsFloat:  a.isFloat,
		MinMax:   a.minmax,
	}
	if a.distinct != nil {
		s.Distinct = make([]string, 0, len(a.distinct))
		for k := range a.distinct {
			s.Distinct = append(s.Distinct, k)
		}
		sort.Strings(s.Distinct)
	}
	return s
}

// RestoreAccumulator rebuilds an accumulator from a snapshot; folding
// more values into it continues exactly where the snapshot left off.
func RestoreAccumulator(s AccSnapshot) *Accumulator {
	a := &Accumulator{
		fn:       s.Fn,
		count:    s.Count,
		sumInt:   s.SumInt,
		sumFloat: s.SumFloat,
		isFloat:  s.IsFloat,
		minmax:   s.MinMax,
	}
	if s.Fn == core.AggCountDistinct {
		a.distinct = make(map[string]struct{}, len(s.Distinct))
		for _, k := range s.Distinct {
			a.distinct[k] = struct{}{}
		}
	}
	return a
}

// groupAggregate is the hash-aggregation kernel: group the input by the
// key columns and compute each aggregate spec per group. With no keys the
// whole input forms one group (and an empty input still yields one row,
// matching SQL's global aggregates).
func groupAggregate(r *Runtime, in *table.Table, keys []string, aggs []core.AggSpec, outSchema schema.Schema) (*table.Table, error) {
	keyPos := make([]int, len(keys))
	for i, k := range keys {
		p := in.Schema().IndexOf(k)
		if p < 0 {
			return nil, fmt.Errorf("exec: groupagg: no key column %q", k)
		}
		keyPos[i] = p
	}

	// Materialize argument columns once through the vectorized kernels.
	argCols := make([]*table.Column, len(aggs))
	for i, a := range aggs {
		if a.Arg == nil {
			continue
		}
		c, err := r.compile(a.Arg, in.Schema())
		if err != nil {
			return nil, fmt.Errorf("exec: groupagg %q: %w", a.As, err)
		}
		col, err := r.evalColumn(c, in, value.KindNull)
		if err != nil {
			return nil, fmt.Errorf("exec: groupagg %q: %w", a.As, err)
		}
		argCols[i] = col
	}

	// Phase 1: assign each row a dense group id. A single null-free int64
	// key hashes raw values; the general case hashes the canonical key
	// encoding. The per-row state after this phase is just an int32.
	n := in.NumRows()
	gids := make([]int32, n)
	var firstRows []int
	switch {
	case len(keyPos) == 0:
		if n > 0 {
			firstRows = []int{0}
		}
	case len(keyPos) == 1 && in.Col(keyPos[0]).Kind() == value.KindInt64 && in.Col(keyPos[0]).Validity() == nil:
		vals := in.Col(keyPos[0]).Ints()
		m := make(map[int64]int32, 64)
		for i, k := range vals {
			id, ok := m[k]
			if !ok {
				id = int32(len(firstRows))
				m[k] = id
				firstRows = append(firstRows, i)
			}
			gids[i] = id
		}
	default:
		m := make(map[string]int32, 64)
		buf := make([]byte, 0, 64)
		for i := 0; i < n; i++ {
			buf = buf[:0]
			for _, p := range keyPos {
				buf = value.AppendKey(buf, in.Value(i, p))
			}
			id, ok := m[string(buf)]
			if !ok {
				id = int32(len(firstRows))
				m[string(buf)] = id
				firstRows = append(firstRows, i)
			}
			gids[i] = id
		}
	}
	if len(keys) == 0 && len(firstRows) == 0 {
		// SQL global aggregate over empty input: one group, no rows.
		firstRows = []int{-1}
	}

	// Phase 2: fold each aggregate column into per-group accumulators in
	// one columnar pass per aggregate.
	accs := make([][]Accumulator, len(aggs))
	for i, a := range aggs {
		as := make([]Accumulator, len(firstRows))
		for g := range as {
			as[g].fn = a.Func
			as[g].minmax = value.Null
			if a.Func == core.AggCountDistinct {
				as[g].distinct = make(map[string]struct{})
			}
		}
		foldColumn(as, gids, argCols[i], a.Func)
		accs[i] = as
	}

	b := table.NewBuilder(outSchema, len(firstRows))
	rowBuf := make([]value.Value, 0, outSchema.Len())
	for g, firstRow := range firstRows {
		rowBuf = rowBuf[:0]
		for _, p := range keyPos {
			rowBuf = append(rowBuf, in.Value(firstRow, p))
		}
		for i := range aggs {
			want := outSchema.At(len(keyPos) + i).Kind
			rowBuf = append(rowBuf, accs[i][g].Result(want))
		}
		if err := b.Append(rowBuf...); err != nil {
			return nil, fmt.Errorf("exec: groupagg: %w", err)
		}
	}
	return b.Build(), nil
}

// foldColumn folds one aggregate's argument column into per-group
// accumulators. Sum/avg/count over numeric payloads run tight loops over
// the raw slices; min/max/count-distinct go through the boxed Add, which
// carries their comparison and dedup logic.
func foldColumn(as []Accumulator, gids []int32, col *table.Column, fn core.AggFunc) {
	n := len(gids)
	if col == nil {
		// count(*): every row counts, NULL or not.
		for _, g := range gids {
			as[g].count++
		}
		return
	}
	valid := col.Validity()
	switch {
	case fn == core.AggCount:
		if valid == nil {
			for _, g := range gids {
				as[g].count++
			}
		} else {
			for i, g := range gids {
				if valid[i] {
					as[g].count++
				}
			}
		}
	case (fn == core.AggSum || fn == core.AggAvg) && col.Kind() == value.KindInt64:
		ints := col.Ints()
		if valid == nil {
			for i, g := range gids {
				a := &as[g]
				a.count++
				a.sumInt += ints[i]
			}
		} else {
			for i, g := range gids {
				if valid[i] {
					a := &as[g]
					a.count++
					a.sumInt += ints[i]
				}
			}
		}
	case (fn == core.AggSum || fn == core.AggAvg) && col.Kind() == value.KindFloat64:
		floats := col.Floats()
		for g := range as {
			as[g].isFloat = true
		}
		if valid == nil {
			for i, g := range gids {
				a := &as[g]
				a.count++
				a.sumFloat += floats[i]
			}
		} else {
			for i, g := range gids {
				if valid[i] {
					a := &as[g]
					a.count++
					a.sumFloat += floats[i]
				}
			}
		}
	default:
		for i := 0; i < n; i++ {
			as[gids[i]].Add(col.Value(i))
		}
	}
}
