package exec

import (
	"fmt"
	"sync"
	"testing"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/expr"
	"nexus/internal/table"
)

// buildPipelinePlan assembles a filter → extend → join → group-agg plan
// large enough that every operator crosses the morsel threshold.
func buildPipelinePlan(t *testing.T, ds map[string]*table.Table) core.Node {
	t.Helper()
	sales, err := core.NewScan("sales", ds["sales"].Schema())
	if err != nil {
		t.Fatal(err)
	}
	cust, err := core.NewScan("customers", ds["customers"].Schema())
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFilter(sales, expr.Gt(expr.Column("qty"), expr.CInt(2)))
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewExtend(f, []core.ColDef{{Name: "notional", E: expr.Mul(expr.Column("price"), expr.Column("qty"))}})
	if err != nil {
		t.Fatal(err)
	}
	j, err := core.NewJoin(e, cust, core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := core.NewGroupAgg(j, []string{"segment"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Column("notional"), As: "rev"},
		{Func: core.AggCount, As: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ga
}

// TestParallelMatchesSerial runs the same plan serially and with an
// oversubscribed worker pool and requires byte-identical results. Under
// -race this also exercises the morsel pool for data races.
func TestParallelMatchesSerial(t *testing.T) {
	const rows = 3 * morselRows
	ds := map[string]*table.Table{
		"sales":     datagen.Sales(31, rows, rows/10, 50),
		"customers": datagen.Customers(32, rows/10),
	}
	plan := buildPipelinePlan(t, ds)

	serial := runtimeFor(ds)
	serial.Parallelism = 1
	want, err := serial.Run(plan)
	if err != nil {
		t.Fatal(err)
	}

	parallel := runtimeFor(ds)
	parallel.Parallelism = 8
	got, err := parallel.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualRows(want, got) {
		t.Fatalf("parallel result differs from serial:\nserial: %d rows\nparallel: %d rows", want.NumRows(), got.NumRows())
	}
	if serial.Stats.RowsProduced != parallel.Stats.RowsProduced {
		t.Fatalf("stats diverge: serial %+v, parallel %+v", serial.Stats, parallel.Stats)
	}
}

// TestConcurrentRuntimesSharedCache runs many goroutines through one
// shared ExprCache (the engine configuration) with parallel morsels on —
// the shape -race must prove safe.
func TestConcurrentRuntimesSharedCache(t *testing.T) {
	const rows = 2*morselRows + 123
	ds := map[string]*table.Table{
		"sales":     datagen.Sales(33, rows, rows/10, 50),
		"customers": datagen.Customers(34, rows/10),
	}
	plan := buildPipelinePlan(t, ds)
	cache := NewExprCache()

	base := runtimeFor(ds)
	base.Parallelism = 1
	want, err := base.Run(plan)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 6)
	for g := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt := runtimeFor(ds)
			rt.Cache = cache
			rt.Parallelism = 4
			got, err := rt.Run(plan)
			if err != nil {
				errs[g] = err
				return
			}
			if !table.EqualRows(want, got) {
				errs[g] = fmt.Errorf("goroutine %d: result differs", g)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestForEachMorselErrors checks that a failing morsel aborts the sweep
// and surfaces its error.
func TestForEachMorselErrors(t *testing.T) {
	boom := fmt.Errorf("boom")
	err := forEachMorsel(4, 10*morselRows, func(m, lo, hi int) error {
		if m == 3 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if err := forEachMorsel(4, 0, func(m, lo, hi int) error { return fmt.Errorf("should not run") }); err != nil {
		t.Fatal(err)
	}
	// Full coverage: every row visited exactly once, in-range bounds.
	var mu sync.Mutex
	seen := make([]bool, 3*morselRows+17)
	err = forEachMorsel(3, len(seen), func(m, lo, hi int) error {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			if seen[i] {
				return fmt.Errorf("row %d visited twice", i)
			}
			seen[i] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("row %d not visited", i)
		}
	}
}
