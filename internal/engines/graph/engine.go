package graph

import (
	"fmt"
	"sort"
	"sync"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/provider"
	"nexus/internal/schema"
	"nexus/internal/table"
)

// Kernel names advertised in the provider's capability set and targeted
// by the planner's intent recognition.
const (
	KernelPageRank            = "pagerank"
	KernelConnectedComponents = "cc"
	KernelSSSP                = "sssp"
)

// Engine is the graph-analytics provider: relational core plus control
// iteration, with native kernels substituted for recognized iterate
// shapes.
type Engine struct {
	name  string
	cache *exec.ExprCache // compiled-expression cache shared across Executes

	mu       sync.RWMutex
	datasets map[string]*table.Table

	// KernelCalls counts native-kernel substitutions, observable by the
	// intent-preservation experiment.
	kernelCalls int64
}

var _ provider.Provider = (*Engine)(nil)

// New returns an empty graph engine.
func New(name string) *Engine {
	if name == "" {
		name = "graph"
	}
	return &Engine{name: name, cache: exec.NewExprCache(), datasets: map[string]*table.Table{}}
}

// Name implements provider.Provider.
func (e *Engine) Name() string { return e.name }

// Capabilities implements provider.Provider: the relational core and
// control iteration (no array operators, no matmul), plus the native
// kernels.
func (e *Engine) Capabilities() provider.Capabilities {
	return provider.NewCapabilities(
		core.KScan, core.KLiteral, core.KVar, core.KLet,
		core.KFilter, core.KProject, core.KRename, core.KExtend,
		core.KJoin, core.KProduct, core.KGroupAgg, core.KDistinct,
		core.KSort, core.KLimit, core.KUnion,
		core.KIterate,
	).WithKernels(KernelPageRank, KernelConnectedComponents, KernelSSSP)
}

// Store implements provider.Provider.
func (e *Engine) Store(name string, t *table.Table) error {
	if name == "" {
		return fmt.Errorf("graph: empty dataset name")
	}
	if t == nil {
		return fmt.Errorf("graph: nil table for %q", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.datasets[name] = t
	return nil
}

// Drop implements provider.Provider.
func (e *Engine) Drop(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.datasets, name)
}

// Dataset returns a hosted table.
func (e *Engine) Dataset(name string) (*table.Table, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.datasets[name]
	return t, ok
}

// DatasetSchema implements provider.Provider.
func (e *Engine) DatasetSchema(name string) (schema.Schema, bool) {
	t, ok := e.Dataset(name)
	if !ok {
		return schema.Schema{}, false
	}
	return t.Schema(), true
}

// Datasets implements provider.Provider.
func (e *Engine) Datasets() []provider.DatasetInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]provider.DatasetInfo, 0, len(e.datasets))
	for n, t := range e.datasets {
		out = append(out, provider.DatasetInfo{Name: n, Schema: t.Schema(), Rows: int64(t.NumRows())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// KernelCalls returns how many plans were executed by native kernels.
func (e *Engine) KernelCalls() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.kernelCalls
}

func (e *Engine) bumpKernelCalls() {
	e.mu.Lock()
	e.kernelCalls++
	e.mu.Unlock()
}

// Execute implements provider.Provider. Recognized iterate shapes run on
// the native kernels; everything else runs on the generic runtime.
func (e *Engine) Execute(plan core.Node) (*table.Table, error) {
	if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
		return nil, fmt.Errorf("graph %q: operator %v not supported", e.name, missing)
	}
	rt := &exec.Runtime{Datasets: e.Dataset, Override: e.override, Cache: e.cache}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("graph %q: %w", e.name, err)
	}
	return t, nil
}

// ExecuteTraced is Execute with a per-operator trace attached: tr
// records calls, output rows and inclusive wall time for every node of
// this plan instance (subtrees a native kernel absorbed show as not
// executed — the kernel's root carries their time).
func (e *Engine) ExecuteTraced(plan core.Node, tr *exec.Trace) (*table.Table, error) {
	if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
		return nil, fmt.Errorf("graph %q: operator %v not supported", e.name, missing)
	}
	rt := &exec.Runtime{Datasets: e.Dataset, Override: e.override, Cache: e.cache, Trace: tr}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("graph %q: %w", e.name, err)
	}
	return t, nil
}

// ExecuteGeneric runs the plan with kernel substitution disabled — the
// baseline of the intent-preservation comparison.
func (e *Engine) ExecuteGeneric(plan core.Node) (*table.Table, error) {
	rt := &exec.Runtime{Datasets: e.Dataset, Cache: e.cache}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("graph %q (generic): %w", e.name, err)
	}
	return t, nil
}

// override substitutes native kernels for recognized plan shapes. The
// recognizers only fire on whole Let/Iterate subtrees, so partial matches
// fall through to the generic loop untouched.
func (e *Engine) override(n core.Node, env *exec.Env, rec exec.RecFunc) (*table.Table, bool, error) {
	switch n.Kind() {
	case core.KLet, core.KIterate:
	default:
		return nil, false, nil
	}
	if spec, ok := RecognizePageRank(n); ok {
		t, err := e.runPageRank(spec)
		if err != nil {
			return nil, false, err
		}
		e.bumpKernelCalls()
		return t, true, nil
	}
	if edges, vertices, ok := RecognizeConnectedComponents(n); ok {
		t, err := e.runCC(edges, vertices, n.Schema())
		if err != nil {
			return nil, false, err
		}
		e.bumpKernelCalls()
		return t, true, nil
	}
	if edges, vertices, src, ok := RecognizeSSSP(n); ok {
		t, err := e.runSSSP(edges, vertices, src)
		if err != nil {
			return nil, false, err
		}
		e.bumpKernelCalls()
		return t, true, nil
	}
	return nil, false, nil
}

func (e *Engine) csrFor(edgesName string, n int) (*CSR, error) {
	edges, ok := e.Dataset(edgesName)
	if !ok {
		return nil, fmt.Errorf("graph: unknown dataset %q", edgesName)
	}
	return BuildCSR(edges, n)
}

func (e *Engine) vertexCount(verticesName string) (int, error) {
	v, ok := e.Dataset(verticesName)
	if !ok {
		return 0, fmt.Errorf("graph: unknown dataset %q", verticesName)
	}
	return v.NumRows(), nil
}

func (e *Engine) runPageRank(spec *PageRankSpec) (*table.Table, error) {
	nv, err := e.vertexCount(spec.VerticesDataset)
	if err != nil {
		return nil, err
	}
	if nv != spec.N {
		return nil, fmt.Errorf("graph: pagerank plan says %d vertices, dataset has %d", spec.N, nv)
	}
	csr, err := e.csrFor(spec.EdgesDataset, spec.N)
	if err != nil {
		return nil, err
	}
	rank, _ := PageRankNative(csr, spec.Damping, spec.MaxIters, spec.Tol)
	return RankTable(rank), nil
}

func (e *Engine) runCC(edgesName, verticesName string, outSchema schema.Schema) (*table.Table, error) {
	n, err := e.vertexCount(verticesName)
	if err != nil {
		return nil, err
	}
	csr, err := e.csrFor(edgesName, n)
	if err != nil {
		return nil, err
	}
	labels := ConnectedComponentsNative(csr)
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(i)
	}
	t := table.MustNew(LabelSchema(), []*table.Column{
		table.IntColumn(vs),
		table.IntColumn(labels),
	})
	if !t.Schema().EqualIgnoreDims(outSchema) {
		return nil, fmt.Errorf("graph: cc kernel schema %v does not match plan %v", t.Schema(), outSchema)
	}
	return t, nil
}

func (e *Engine) runSSSP(edgesName, verticesName string, src int64) (*table.Table, error) {
	n, err := e.vertexCount(verticesName)
	if err != nil {
		return nil, err
	}
	csr, err := e.csrFor(edgesName, n)
	if err != nil {
		return nil, err
	}
	dist := BFSNative(csr, int(src))
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(i)
	}
	return table.MustNew(DistSchema(), []*table.Column{
		table.IntColumn(vs),
		table.FloatColumn(dist),
	}), nil
}
