package graph

import (
	"fmt"
	"math"

	"nexus/internal/core"
	"nexus/internal/expr"
	"nexus/internal/schema"
)

// This file expresses the three iterative graph algorithms as *generic*
// Big Data algebra plans — pure control iteration over joins and
// aggregates, executable by any provider that supports the relational
// core plus Iterate. The graph engine recognizes these shapes and swaps
// in its native CSR kernels (intent preservation, desideratum D3); every
// other engine runs them as written (translatability, D2).

// PageRankPlan builds the canonical PageRank fixpoint:
//
//	let deg = group edges by src agg deg = count()
//	iterate state from (vertices extended with rank = 1/n):
//	    share   = rank / outdeg               (NULL for dangling nodes)
//	    insum   = per-destination sum of shares
//	    dmass   = total dangling rank
//	    rank'   = (1-d)/n + d*(insum + dmass/n)
//	until l1(Δrank) <= tol, max maxIters
//
// edgesName/verticesName are the datasets; their schemas must be
// (src,dst int64) and (v int64).
func PageRankPlan(edgesName string, edgesSchema schema.Schema, verticesName string, verticesSchema schema.Schema, n int, damping float64, maxIters int, tol float64) (core.Node, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: pagerank over %d vertices", n)
	}
	edges, err := core.NewScan(edgesName, edgesSchema)
	if err != nil {
		return nil, err
	}
	vertices, err := core.NewScan(verticesName, verticesSchema)
	if err != nil {
		return nil, err
	}
	degPlan, err := core.NewGroupAgg(edges, []string{"src"}, []core.AggSpec{
		{Func: core.AggCount, As: "deg"},
	})
	if err != nil {
		return nil, err
	}

	init, err := core.NewExtend(vertices, []core.ColDef{
		{Name: "rank", E: expr.CFloat(1.0 / float64(n))},
	})
	if err != nil {
		return nil, err
	}

	state, err := core.NewVar("state", init.Schema())
	if err != nil {
		return nil, err
	}
	deg, err := core.NewVar("deg", degPlan.Schema())
	if err != nil {
		return nil, err
	}

	withdeg, err := core.NewJoin(state, deg, core.JoinLeft, []string{"v"}, []string{"src"}, nil)
	if err != nil {
		return nil, err
	}
	contrib, err := core.NewExtend(withdeg, []core.ColDef{
		{Name: "share", E: expr.Div(expr.Column("rank"), expr.NewCall("float", expr.Column("deg")))},
	})
	if err != nil {
		return nil, err
	}
	perEdge, err := core.NewJoin(edges, contrib, core.JoinInner, []string{"src"}, []string{"v"}, nil)
	if err != nil {
		return nil, err
	}
	insums, err := core.NewGroupAgg(perEdge, []string{"dst"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Column("share"), As: "insum"},
	})
	if err != nil {
		return nil, err
	}
	danglingOnly, err := core.NewFilter(withdeg, expr.IsNull(expr.Column("deg")))
	if err != nil {
		return nil, err
	}
	dang, err := core.NewGroupAgg(danglingOnly, nil, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Column("rank"), As: "dmass"},
	})
	if err != nil {
		return nil, err
	}
	st2, err := core.NewJoin(state, insums, core.JoinLeft, []string{"v"}, []string{"dst"}, nil)
	if err != nil {
		return nil, err
	}
	st3, err := core.NewProduct(st2, dang)
	if err != nil {
		return nil, err
	}
	newRank := expr.Add(
		expr.CFloat((1-damping)/float64(n)),
		expr.Mul(
			expr.CFloat(damping),
			expr.Add(
				expr.NewCall("coalesce", expr.Column("insum"), expr.CFloat(0)),
				expr.Div(
					expr.NewCall("coalesce", expr.Column("dmass"), expr.CFloat(0)),
					expr.CFloat(float64(n)),
				),
			),
		),
	)
	upd, err := core.NewExtend(st3, []core.ColDef{{Name: "nrank", E: newRank}})
	if err != nil {
		return nil, err
	}
	proj, err := core.NewProject(upd, []string{"v", "nrank"})
	if err != nil {
		return nil, err
	}
	body, err := core.NewRename(proj, []string{"nrank"}, []string{"rank"})
	if err != nil {
		return nil, err
	}
	it, err := core.NewIterate(init, body, "state", maxIters, &core.Convergence{
		Metric: core.MetricL1, Col: "rank", Tol: tol,
	})
	if err != nil {
		return nil, err
	}
	return core.NewLet("deg", degPlan, it)
}

// PageRankSpec is the result of recognizing a PageRank-shaped plan.
type PageRankSpec struct {
	EdgesDataset    string
	VerticesDataset string
	N               int
	Damping         float64
	MaxIters        int
	Tol             float64
}

// RecognizePageRank structurally matches a plan against the canonical
// PageRank shape built by PageRankPlan, extracting its parameters. This
// is the engine-side half of intent preservation: the algebra carried the
// loop as plain joins and aggregates, and the recognizer recovers "this
// is PageRank" without any out-of-band annotation.
func RecognizePageRank(plan core.Node) (*PageRankSpec, bool) {
	let, ok := plan.(*core.Let)
	if !ok {
		return nil, false
	}
	// Binding must be a per-source degree count over an edge scan.
	degAgg, ok := let.Bound().(*core.GroupAgg)
	if !ok || len(degAgg.Keys) != 1 || degAgg.Keys[0] != "src" ||
		len(degAgg.Aggs) != 1 || degAgg.Aggs[0].Func != core.AggCount {
		return nil, false
	}
	edgeScan, ok := degAgg.Children()[0].(*core.Scan)
	if !ok {
		return nil, false
	}
	it, ok := let.In().(*core.Iterate)
	if !ok || it.Conv == nil || it.Conv.Col != "rank" {
		return nil, false
	}
	// Init: vertices extended with a constant rank 1/n.
	initExt, ok := it.Init().(*core.Extend)
	if !ok || len(initExt.Defs) != 1 || initExt.Defs[0].Name != "rank" {
		return nil, false
	}
	vertScan, ok := initExt.Children()[0].(*core.Scan)
	if !ok {
		return nil, false
	}
	initConst, ok := initExt.Defs[0].E.(*expr.Const)
	if !ok {
		return nil, false
	}
	invN, okF := initConst.Val.AsFloat()
	if !okF || invN <= 0 {
		return nil, false
	}
	n := int(math.Round(1 / invN))

	// Body: rename(project(extend(product(join, globalagg)))).
	ren, ok := it.Body().(*core.Rename)
	if !ok {
		return nil, false
	}
	proj, ok := ren.Children()[0].(*core.Project)
	if !ok {
		return nil, false
	}
	upd, ok := proj.Children()[0].(*core.Extend)
	if !ok || len(upd.Defs) != 1 {
		return nil, false
	}
	if _, ok := upd.Children()[0].(*core.Product); !ok {
		return nil, false
	}
	// The update expression carries base and damping:
	// base + d*(coalesce(insum,0) + coalesce(dmass,0)/n).
	add, ok := upd.Defs[0].E.(*expr.Bin)
	if !ok || add.Op.String() != "+" {
		return nil, false
	}
	baseC, ok := add.L.(*expr.Const)
	if !ok {
		return nil, false
	}
	mul, ok := add.R.(*expr.Bin)
	if !ok || mul.Op.String() != "*" {
		return nil, false
	}
	dC, ok := mul.L.(*expr.Const)
	if !ok {
		return nil, false
	}
	base, _ := baseC.Val.AsFloat()
	d, _ := dC.Val.AsFloat()
	if d <= 0 || d >= 1 || n <= 0 {
		return nil, false
	}
	if math.Abs(base-(1-d)/float64(n)) > 1e-9 {
		return nil, false
	}
	return &PageRankSpec{
		EdgesDataset:    edgeScan.Dataset,
		VerticesDataset: vertScan.Dataset,
		N:               n,
		Damping:         d,
		MaxIters:        it.MaxIters,
		Tol:             it.Conv.Tol,
	}, true
}

// ConnectedComponentsPlan builds min-label propagation over the
// symmetrized edge relation:
//
//	let sym = edges ∪ reverse(edges)
//	iterate state from (v, label = v):
//	    nl     = per-destination min of source labels
//	    label' = min(label, nl)
//	until no row changes, max maxIters.
func ConnectedComponentsPlan(edgesName string, edgesSchema schema.Schema, verticesName string, verticesSchema schema.Schema, maxIters int) (core.Node, error) {
	edges, err := core.NewScan(edgesName, edgesSchema)
	if err != nil {
		return nil, err
	}
	vertices, err := core.NewScan(verticesName, verticesSchema)
	if err != nil {
		return nil, err
	}
	flippedProj, err := core.NewProject(edges, []string{"dst", "src"})
	if err != nil {
		return nil, err
	}
	flipped, err := core.NewRename(flippedProj, []string{"dst", "src"}, []string{"src", "dst"})
	if err != nil {
		return nil, err
	}
	sym, err := core.NewUnion(edges, flipped, true)
	if err != nil {
		return nil, err
	}

	init, err := core.NewExtend(vertices, []core.ColDef{
		{Name: "label", E: expr.Column("v")},
	})
	if err != nil {
		return nil, err
	}
	state, err := core.NewVar("state", init.Schema())
	if err != nil {
		return nil, err
	}
	symVar, err := core.NewVar("sym", sym.Schema())
	if err != nil {
		return nil, err
	}
	j, err := core.NewJoin(symVar, state, core.JoinInner, []string{"src"}, []string{"v"}, nil)
	if err != nil {
		return nil, err
	}
	m, err := core.NewGroupAgg(j, []string{"dst"}, []core.AggSpec{
		{Func: core.AggMin, Arg: expr.Column("label"), As: "nl"},
	})
	if err != nil {
		return nil, err
	}
	joined, err := core.NewJoin(state, m, core.JoinLeft, []string{"v"}, []string{"dst"}, nil)
	if err != nil {
		return nil, err
	}
	upd, err := core.NewExtend(joined, []core.ColDef{
		{Name: "l2", E: expr.NewCall("min", expr.Column("label"), expr.NewCall("coalesce", expr.Column("nl"), expr.Column("label")))},
	})
	if err != nil {
		return nil, err
	}
	proj, err := core.NewProject(upd, []string{"v", "l2"})
	if err != nil {
		return nil, err
	}
	body, err := core.NewRename(proj, []string{"l2"}, []string{"label"})
	if err != nil {
		return nil, err
	}
	it, err := core.NewIterate(init, body, "state", maxIters, &core.Convergence{
		Metric: core.MetricRowDelta, Col: "label", Tol: 0,
	})
	if err != nil {
		return nil, err
	}
	return core.NewLet("sym", sym, it)
}

// RecognizeConnectedComponents matches the shape built by
// ConnectedComponentsPlan and extracts the datasets.
func RecognizeConnectedComponents(plan core.Node) (edges, vertices string, ok bool) {
	let, isLet := plan.(*core.Let)
	if !isLet || let.Name != "sym" {
		return "", "", false
	}
	union, isU := let.Bound().(*core.Union)
	if !isU {
		return "", "", false
	}
	edgeScan, isS := union.Children()[0].(*core.Scan)
	if !isS {
		return "", "", false
	}
	it, isIt := let.In().(*core.Iterate)
	if !isIt || it.Conv == nil || it.Conv.Metric != core.MetricRowDelta {
		return "", "", false
	}
	initExt, isE := it.Init().(*core.Extend)
	if !isE || len(initExt.Defs) != 1 || initExt.Defs[0].Name != "label" {
		return "", "", false
	}
	vertScan, isS := initExt.Children()[0].(*core.Scan)
	if !isS {
		return "", "", false
	}
	// The body must take per-destination minima.
	found := false
	core.Walk(it.Body(), func(n core.Node) bool {
		if g, isG := n.(*core.GroupAgg); isG {
			if len(g.Aggs) == 1 && g.Aggs[0].Func == core.AggMin {
				found = true
			}
		}
		return true
	})
	if !found {
		return "", "", false
	}
	return edgeScan.Dataset, vertScan.Dataset, true
}

// SSSPPlan builds BFS hop counts from src as a fixpoint:
//
//	iterate state from (v, dist = v==src ? 0 : +Inf):
//	    nd    = per-destination min(dist(src) + 1)
//	    dist' = min(dist, nd)
//	until no row changes, max maxIters.
func SSSPPlan(edgesName string, edgesSchema schema.Schema, verticesName string, verticesSchema schema.Schema, src int64, maxIters int) (core.Node, error) {
	edges, err := core.NewScan(edgesName, edgesSchema)
	if err != nil {
		return nil, err
	}
	vertices, err := core.NewScan(verticesName, verticesSchema)
	if err != nil {
		return nil, err
	}
	init, err := core.NewExtend(vertices, []core.ColDef{
		{Name: "dist", E: expr.NewCall("if",
			expr.Eq(expr.Column("v"), expr.CInt(src)),
			expr.CFloat(0),
			expr.CFloat(math.Inf(1)))},
	})
	if err != nil {
		return nil, err
	}
	state, err := core.NewVar("state", init.Schema())
	if err != nil {
		return nil, err
	}
	j, err := core.NewJoin(edges, state, core.JoinInner, []string{"src"}, []string{"v"}, nil)
	if err != nil {
		return nil, err
	}
	m, err := core.NewGroupAgg(j, []string{"dst"}, []core.AggSpec{
		{Func: core.AggMin, Arg: expr.Add(expr.Column("dist"), expr.CFloat(1)), As: "nd"},
	})
	if err != nil {
		return nil, err
	}
	joined, err := core.NewJoin(state, m, core.JoinLeft, []string{"v"}, []string{"dst"}, nil)
	if err != nil {
		return nil, err
	}
	upd, err := core.NewExtend(joined, []core.ColDef{
		{Name: "d2", E: expr.NewCall("min", expr.Column("dist"), expr.NewCall("coalesce", expr.Column("nd"), expr.Column("dist")))},
	})
	if err != nil {
		return nil, err
	}
	proj, err := core.NewProject(upd, []string{"v", "d2"})
	if err != nil {
		return nil, err
	}
	body, err := core.NewRename(proj, []string{"d2"}, []string{"dist"})
	if err != nil {
		return nil, err
	}
	return core.NewIterate(init, body, "state", maxIters, &core.Convergence{
		Metric: core.MetricRowDelta, Col: "dist", Tol: 0,
	})
}

// RecognizeSSSP matches the shape built by SSSPPlan, extracting the
// datasets and source vertex.
func RecognizeSSSP(plan core.Node) (edges, vertices string, src int64, ok bool) {
	it, isIt := plan.(*core.Iterate)
	if !isIt || it.Conv == nil || it.Conv.Metric != core.MetricRowDelta || it.Conv.Col != "dist" {
		return "", "", 0, false
	}
	initExt, isE := it.Init().(*core.Extend)
	if !isE || len(initExt.Defs) != 1 || initExt.Defs[0].Name != "dist" {
		return "", "", 0, false
	}
	vertScan, isS := initExt.Children()[0].(*core.Scan)
	if !isS {
		return "", "", 0, false
	}
	call, isC := initExt.Defs[0].E.(*expr.Call)
	if !isC || call.Name != "if" || len(call.Args) != 3 {
		return "", "", 0, false
	}
	eq, isB := call.Args[0].(*expr.Bin)
	if !isB {
		return "", "", 0, false
	}
	srcC, isK := eq.R.(*expr.Const)
	if !isK {
		return "", "", 0, false
	}
	srcV, okI := srcC.Val.AsInt()
	if !okI {
		return "", "", 0, false
	}
	var edgeName string
	core.Walk(it.Body(), func(n core.Node) bool {
		if s, isScan := n.(*core.Scan); isScan && s.Schema().Has("src") && s.Schema().Has("dst") {
			edgeName = s.Dataset
			return false
		}
		return true
	})
	if edgeName == "" {
		return "", "", 0, false
	}
	return edgeName, vertScan.Dataset, srcV, true
}
