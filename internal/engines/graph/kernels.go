// Package graph implements the graph-analytics provider of the nexus
// framework: a vertex-centric engine with native iterative kernels
// (PageRank, connected components, BFS shortest paths) over a CSR
// representation, plus algebra plan builders that express the same
// algorithms as generic control iteration — the two execution strategies
// the control-iteration experiment (E5) compares.
package graph

import (
	"fmt"
	"math"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// CSR is a compressed-sparse-row adjacency structure for a directed
// graph with vertices 0..N-1.
type CSR struct {
	N       int
	RowPtr  []int32
	ColIdx  []int32
	OutDeg  []int32
	inverse *CSR // lazily built reverse graph
}

// BuildCSR builds the CSR from an edge table with int64 src/dst columns.
// Vertex ids must lie in [0, n).
func BuildCSR(edges *table.Table, n int) (*CSR, error) {
	srcCol := edges.ColByName("src")
	dstCol := edges.ColByName("dst")
	if srcCol == nil || dstCol == nil {
		return nil, fmt.Errorf("graph: edge table needs src and dst columns, have %v", edges.Schema())
	}
	src := srcCol.Ints()
	dst := dstCol.Ints()
	c := &CSR{N: n, RowPtr: make([]int32, n+1), OutDeg: make([]int32, n)}
	for i := range src {
		if src[i] < 0 || src[i] >= int64(n) || dst[i] < 0 || dst[i] >= int64(n) {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", src[i], dst[i], n)
		}
		c.OutDeg[src[i]]++
	}
	for v := 0; v < n; v++ {
		c.RowPtr[v+1] = c.RowPtr[v] + c.OutDeg[v]
	}
	c.ColIdx = make([]int32, len(src))
	next := make([]int32, n)
	copy(next, c.RowPtr[:n])
	for i := range src {
		c.ColIdx[next[src[i]]] = int32(dst[i])
		next[src[i]]++
	}
	return c, nil
}

// Out returns the out-neighbours of v.
func (c *CSR) Out(v int) []int32 { return c.ColIdx[c.RowPtr[v]:c.RowPtr[v+1]] }

// Reverse returns the transposed graph (cached).
func (c *CSR) Reverse() *CSR {
	if c.inverse != nil {
		return c.inverse
	}
	r := &CSR{N: c.N, RowPtr: make([]int32, c.N+1), OutDeg: make([]int32, c.N)}
	for v := 0; v < c.N; v++ {
		for _, w := range c.Out(v) {
			r.OutDeg[w]++
		}
	}
	for v := 0; v < c.N; v++ {
		r.RowPtr[v+1] = r.RowPtr[v] + r.OutDeg[v]
	}
	r.ColIdx = make([]int32, len(c.ColIdx))
	next := make([]int32, c.N)
	copy(next, r.RowPtr[:c.N])
	for v := 0; v < c.N; v++ {
		for _, w := range c.Out(v) {
			r.ColIdx[next[w]] = int32(v)
			next[w]++
		}
	}
	c.inverse = r
	return r
}

// PageRankNative runs PageRank over the CSR until the L1 delta drops to
// tol or maxIters is reached, returning the rank vector and the number of
// iterations executed. Dangling mass is redistributed uniformly, matching
// the algebra formulation and the ref oracle.
func PageRankNative(c *CSR, damping float64, maxIters int, tol float64) ([]float64, int) {
	n := c.N
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1.0 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	iters := 0
	for it := 0; it < maxIters; it++ {
		iters++
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			deg := int(c.OutDeg[u])
			if deg == 0 {
				dangling += rank[u]
				continue
			}
			share := rank[u] / float64(deg)
			for _, v := range c.Out(u) {
				next[v] += share
			}
		}
		base := (1-damping)*inv + damping*dangling*inv
		var delta float64
		for i := range next {
			next[i] = base + damping*next[i]
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if tol > 0 && delta <= tol {
			break
		}
	}
	return rank, iters
}

// ConnectedComponentsNative labels vertices with the minimum vertex id
// reachable in their (undirected) component, via union-find over the edge
// list interpreted symmetrically.
func ConnectedComponentsNative(c *CSR) []int64 {
	parent := make([]int32, c.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := 0; u < c.N; u++ {
		for _, v := range c.Out(u) {
			a, b := find(int32(u)), find(v)
			if a != b {
				if a < b {
					parent[b] = a
				} else {
					parent[a] = b
				}
			}
		}
	}
	out := make([]int64, c.N)
	minOf := make(map[int32]int64, 16)
	for i := 0; i < c.N; i++ {
		r := find(int32(i))
		if m, ok := minOf[r]; !ok || int64(i) < m {
			minOf[r] = int64(i)
		}
	}
	for i := 0; i < c.N; i++ {
		out[i] = minOf[find(int32(i))]
	}
	return out
}

// BFSNative computes hop distances from src; unreachable vertices get
// +Inf (matching the algebra formulation).
func BFSNative(c *CSR, src int) []float64 {
	dist := make([]float64, c.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	queue := make([]int32, 0, c.N)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range c.Out(int(u)) {
			if math.IsInf(dist[v], 1) {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// RankSchema is the (v, rank) state schema of the PageRank loop.
func RankSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "v", Kind: value.KindInt64},
		schema.Attribute{Name: "rank", Kind: value.KindFloat64},
	)
}

// RankTable materializes a rank vector as a (v, rank) table.
func RankTable(rank []float64) *table.Table {
	vs := make([]int64, len(rank))
	for i := range vs {
		vs[i] = int64(i)
	}
	return table.MustNew(RankSchema(), []*table.Column{
		table.IntColumn(vs),
		table.FloatColumn(rank),
	})
}

// LabelSchema is the (v, label) state schema of connected components.
func LabelSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "v", Kind: value.KindInt64},
		schema.Attribute{Name: "label", Kind: value.KindInt64},
	)
}

// DistSchema is the (v, dist) state schema of shortest paths.
func DistSchema() schema.Schema {
	return schema.New(
		schema.Attribute{Name: "v", Kind: value.KindInt64},
		schema.Attribute{Name: "dist", Kind: value.KindFloat64},
	)
}

// VerticesSchema is the single-column vertex relation (v).
func VerticesSchema() schema.Schema {
	return schema.New(schema.Attribute{Name: "v", Kind: value.KindInt64})
}

// VerticesTable returns the relation {0..n-1}.
func VerticesTable(n int) *table.Table {
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(i)
	}
	return table.MustNew(VerticesSchema(), []*table.Column{table.IntColumn(vs)})
}
