package graph

import (
	"math"
	"testing"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/relational"
	"nexus/internal/ref"
	"nexus/internal/table"
)

const (
	testN = 200
	testM = 800
)

func testGraphEngine(t *testing.T, seed int64) (*Engine, *table.Table) {
	t.Helper()
	edges := datagen.UniformGraph(seed, testN, testM)
	e := New("graph")
	if err := e.Store("edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := e.Store("vertices", VerticesTable(testN)); err != nil {
		t.Fatal(err)
	}
	return e, edges
}

func TestCSRConstruction(t *testing.T) {
	edges := datagen.UniformGraph(1, 50, 200)
	csr, err := BuildCSR(edges, 50)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for v := 0; v < 50; v++ {
		total += len(csr.Out(v))
	}
	if total != 200 {
		t.Fatalf("CSR has %d edges, want 200", total)
	}
	// Reverse must preserve edge count and invert adjacency.
	rev := csr.Reverse()
	total = 0
	for v := 0; v < 50; v++ {
		total += len(rev.Out(v))
	}
	if total != 200 {
		t.Fatalf("reverse CSR has %d edges", total)
	}
}

func TestPageRankNativeAgainstOracle(t *testing.T) {
	edges := datagen.UniformGraph(2, 100, 400)
	csr, err := BuildCSR(edges, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := PageRankNative(csr, 0.85, 30, 0) // fixed 30 iterations
	want := ref.PageRank(datagen.AdjacencyList(edges, 100), 100, 0.85, 30)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, oracle %g", i, got[i], want[i])
		}
	}
	// Ranks must sum to 1.
	var sum float64
	for _, r := range got {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %g", sum)
	}
}

func TestPageRankPlanRecognized(t *testing.T) {
	e, _ := testGraphEngine(t, 3)
	plan, err := PageRankPlan("edges", datagen.EdgeSchema(), "vertices", VerticesSchema(), testN, 0.85, 50, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := RecognizePageRank(plan)
	if !ok {
		t.Fatal("canonical PageRank plan not recognized")
	}
	if spec.N != testN || math.Abs(spec.Damping-0.85) > 1e-12 || spec.EdgesDataset != "edges" {
		t.Fatalf("recognized spec %+v", spec)
	}
	before := e.KernelCalls()
	if _, err := e.Execute(plan); err != nil {
		t.Fatal(err)
	}
	if e.KernelCalls() != before+1 {
		t.Fatal("native kernel was not used")
	}
}

// The decisive correctness test: native kernel, generic in-engine loop,
// and the textbook oracle must all agree on PageRank.
func TestPageRankThreeWayAgreement(t *testing.T) {
	const n, m, iters = 80, 320, 25
	edges := datagen.UniformGraph(4, n, m)

	e := New("graph")
	if err := e.Store("edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := e.Store("vertices", VerticesTable(n)); err != nil {
		t.Fatal(err)
	}
	re := relational.New("rel")
	if err := re.Store("edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := re.Store("vertices", VerticesTable(n)); err != nil {
		t.Fatal(err)
	}

	// Fixed iteration count (tol=0 ⇒ never converges early) so all three
	// strategies run the same number of steps.
	plan, err := PageRankPlan("edges", datagen.EdgeSchema(), "vertices", VerticesSchema(), n, 0.85, iters, 0)
	if err != nil {
		t.Fatal(err)
	}

	native, err := e.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	generic, err := re.Execute(plan) // relational engine: no kernels
	if err != nil {
		t.Fatal(err)
	}
	oracle := ref.PageRank(datagen.AdjacencyList(edges, n), n, 0.85, iters)

	nm := rankMap(native)
	gm := rankMap(generic)
	for v := 0; v < n; v++ {
		if math.Abs(nm[int64(v)]-oracle[v]) > 1e-9 {
			t.Fatalf("native rank[%d] = %g, oracle %g", v, nm[int64(v)], oracle[v])
		}
		if math.Abs(gm[int64(v)]-oracle[v]) > 1e-9 {
			t.Fatalf("generic rank[%d] = %g, oracle %g", v, gm[int64(v)], oracle[v])
		}
	}
}

func rankMap(t *table.Table) map[int64]float64 {
	vs := t.ColByName("v").Ints()
	var col []float64
	if c := t.ColByName("rank"); c != nil {
		col = c.Floats()
	} else {
		col = t.ColByName("dist").Floats()
	}
	out := make(map[int64]float64, len(vs))
	for i := range vs {
		out[vs[i]] = col[i]
	}
	return out
}

func TestConnectedComponentsThreeWay(t *testing.T) {
	const n, m = 60, 80 // sparse ⇒ several components
	edges := datagen.UniformGraph(5, n, m)

	e := New("graph")
	if err := e.Store("edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := e.Store("vertices", VerticesTable(n)); err != nil {
		t.Fatal(err)
	}
	re := relational.New("rel")
	if err := re.Store("edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := re.Store("vertices", VerticesTable(n)); err != nil {
		t.Fatal(err)
	}

	plan, err := ConnectedComponentsPlan("edges", datagen.EdgeSchema(), "vertices", VerticesSchema(), n)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := RecognizeConnectedComponents(plan); !ok {
		t.Fatal("CC plan not recognized")
	}
	native, err := e.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	generic, err := re.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle over the symmetrized edge list.
	src := edges.ColByName("src").Ints()
	dst := edges.ColByName("dst").Ints()
	pairs := make([][2]int, len(src))
	for i := range src {
		pairs[i] = [2]int{int(src[i]), int(dst[i])}
	}
	oracle := ref.ConnectedComponents(n, pairs)

	nm := labelMap(native)
	gm := labelMap(generic)
	for v := 0; v < n; v++ {
		if nm[int64(v)] != int64(oracle[v]) {
			t.Fatalf("native label[%d] = %d, oracle %d", v, nm[int64(v)], oracle[v])
		}
		if gm[int64(v)] != int64(oracle[v]) {
			t.Fatalf("generic label[%d] = %d, oracle %d", v, gm[int64(v)], oracle[v])
		}
	}
}

func labelMap(t *table.Table) map[int64]int64 {
	vs := t.ColByName("v").Ints()
	ls := t.ColByName("label").Ints()
	out := make(map[int64]int64, len(vs))
	for i := range vs {
		out[vs[i]] = ls[i]
	}
	return out
}

func TestSSSPThreeWay(t *testing.T) {
	const n, m, src = 70, 250, 0
	edges := datagen.UniformGraph(6, n, m)

	e := New("graph")
	if err := e.Store("edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := e.Store("vertices", VerticesTable(n)); err != nil {
		t.Fatal(err)
	}
	re := relational.New("rel")
	if err := re.Store("edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := re.Store("vertices", VerticesTable(n)); err != nil {
		t.Fatal(err)
	}

	plan, err := SSSPPlan("edges", datagen.EdgeSchema(), "vertices", VerticesSchema(), src, n)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, gotSrc, ok := RecognizeSSSP(plan); !ok || gotSrc != src {
		t.Fatalf("SSSP plan not recognized (src=%d ok=%v)", gotSrc, ok)
	}
	native, err := e.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	generic, err := re.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ref.SSSP(datagen.AdjacencyList(edges, n), n, src)

	nm := rankMap(native)
	gm := rankMap(generic)
	for v := 0; v < n; v++ {
		nv, gv, ov := nm[int64(v)], gm[int64(v)], oracle[v]
		if !floatEq(nv, ov) {
			t.Fatalf("native dist[%d] = %g, oracle %g", v, nv, ov)
		}
		if !floatEq(gv, ov) {
			t.Fatalf("generic dist[%d] = %g, oracle %g", v, gv, ov)
		}
	}
}

func floatEq(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) < 1e-9
}

func TestRecognizerRejectsOtherIterates(t *testing.T) {
	// An arbitrary iterate must NOT be recognized as a kernel.
	e, _ := testGraphEngine(t, 7)
	sch := RankSchema()
	init, err := core.NewScan("notranks", sch)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := core.NewVar("s", sch)
	it, err := core.NewIterate(init, v, "s", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := RecognizePageRank(it); ok {
		t.Fatal("false positive pagerank recognition")
	}
	if _, _, ok := RecognizeConnectedComponents(it); ok {
		t.Fatal("false positive cc recognition")
	}
	if _, _, _, ok := RecognizeSSSP(it); ok {
		t.Fatal("false positive sssp recognition")
	}
	_ = e
}

func TestBFSNativeUnreachable(t *testing.T) {
	// Two disconnected vertices: 1 unreachable from 0.
	edges := table.MustNew(datagen.EdgeSchema(), []*table.Column{
		table.IntColumn([]int64{0}),
		table.IntColumn([]int64{2}),
	})
	csr, err := BuildCSR(edges, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist := BFSNative(csr, 0)
	if dist[0] != 0 || dist[2] != 1 || !math.IsInf(dist[1], 1) {
		t.Fatalf("dist = %v", dist)
	}
}
