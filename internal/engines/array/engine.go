package array

import (
	"fmt"
	"sort"
	"sync"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/provider"
	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Engine is the dense array provider. It executes the dimension-aware
// operators with dense kernels when inputs convert to Dense form, and the
// rest of the algebra via the generic runtime. Set-difference operators
// and MatMul are deliberately outside its capability set (a SciDB-class
// engine pairs with a ScaLAPACK-class engine for gemm — exactly the
// paper's multi-server example).
type Engine struct {
	name  string
	cache *exec.ExprCache // compiled-expression cache shared across Executes

	mu       sync.RWMutex
	datasets map[string]*table.Table
}

var _ provider.Provider = (*Engine)(nil)

// New returns an empty array engine.
func New(name string) *Engine {
	if name == "" {
		name = "array"
	}
	return &Engine{name: name, cache: exec.NewExprCache(), datasets: map[string]*table.Table{}}
}

// Name implements provider.Provider.
func (e *Engine) Name() string { return e.name }

// Capabilities implements provider.Provider.
func (e *Engine) Capabilities() provider.Capabilities {
	return provider.AllOps().Without(core.KExcept, core.KIntersect, core.KMatMul)
}

// Store implements provider.Provider.
func (e *Engine) Store(name string, t *table.Table) error {
	if name == "" {
		return fmt.Errorf("array: empty dataset name")
	}
	if t == nil {
		return fmt.Errorf("array: nil table for %q", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.datasets[name] = t
	return nil
}

// Drop implements provider.Provider.
func (e *Engine) Drop(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.datasets, name)
}

// Dataset returns a hosted table.
func (e *Engine) Dataset(name string) (*table.Table, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.datasets[name]
	return t, ok
}

// DatasetSchema implements provider.Provider.
func (e *Engine) DatasetSchema(name string) (schema.Schema, bool) {
	t, ok := e.Dataset(name)
	if !ok {
		return schema.Schema{}, false
	}
	return t.Schema(), true
}

// Datasets implements provider.Provider.
func (e *Engine) Datasets() []provider.DatasetInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]provider.DatasetInfo, 0, len(e.datasets))
	for n, t := range e.datasets {
		out = append(out, provider.DatasetInfo{Name: n, Schema: t.Schema(), Rows: int64(t.NumRows())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Execute implements provider.Provider, rejecting plans that exceed the
// advertised capabilities (a real server would too).
func (e *Engine) Execute(plan core.Node) (*table.Table, error) {
	if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
		return nil, fmt.Errorf("array %q: operator %v not supported", e.name, missing)
	}
	rt := &exec.Runtime{Datasets: e.Dataset, Override: e.override, Cache: e.cache}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("array %q: %w", e.name, err)
	}
	return t, nil
}

// ExecuteTraced is Execute with a per-operator trace attached: tr
// records calls, output rows and inclusive wall time for every node of
// this plan instance (subtrees a dense kernel absorbed show as not
// executed — the kernel's root carries their time).
func (e *Engine) ExecuteTraced(plan core.Node, tr *exec.Trace) (*table.Table, error) {
	if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
		return nil, fmt.Errorf("array %q: operator %v not supported", e.name, missing)
	}
	rt := &exec.Runtime{Datasets: e.Dataset, Override: e.override, Cache: e.cache, Trace: tr}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("array %q: %w", e.name, err)
	}
	return t, nil
}

// override substitutes dense kernels for window, fill, elemwise and
// transpose when the operand converts to Dense form; on any conversion
// obstacle it falls back to the generic sparse implementation, keeping
// semantics identical.
func (e *Engine) override(n core.Node, env *exec.Env, rec exec.RecFunc) (*table.Table, bool, error) {
	switch x := n.(type) {
	case *core.Window:
		in, err := rec(x.Children()[0], env)
		if err != nil {
			return nil, false, err
		}
		out, ok := e.denseWindow(in, x)
		if !ok {
			return nil, false, nil
		}
		return out, true, nil
	case *core.Fill:
		in, err := rec(x.Children()[0], env)
		if err != nil {
			return nil, false, err
		}
		d, err := FromTable(in)
		if err != nil {
			return nil, false, nil // fall back
		}
		f, ok := x.Default.AsFloat()
		if !ok && !x.Default.IsNull() {
			return nil, false, nil
		}
		d.FillValue(f)
		out, err := d.ToTable()
		if err != nil {
			return nil, false, err
		}
		out, err = out.WithSchema(x.Schema())
		if err != nil {
			return nil, false, nil
		}
		return out, true, nil
	case *core.Transpose:
		in, err := rec(x.Children()[0], env)
		if err != nil {
			return nil, false, err
		}
		d, err := FromTable(in)
		if err != nil {
			return nil, false, nil
		}
		perm := make([]int, len(x.Perm))
		for i, name := range x.Perm {
			perm[i] = -1
			for j, dn := range d.DimNames {
				if dn == name {
					perm[i] = j
				}
			}
			if perm[i] < 0 {
				return nil, false, nil
			}
		}
		out, err := d.Transpose(perm).ToTable()
		if err != nil {
			return nil, false, err
		}
		out, err = out.WithSchema(x.Schema())
		if err != nil {
			return nil, false, nil
		}
		return out, true, nil
	case *core.ElemWise:
		l, err := rec(x.Children()[0], env)
		if err != nil {
			return nil, false, err
		}
		r, err := rec(x.Children()[1], env)
		if err != nil {
			return nil, false, err
		}
		out, ok := e.denseElemWise(l, r, x)
		if !ok {
			return nil, false, nil
		}
		return out, true, nil
	}
	return nil, false, nil
}

// denseWindow runs the stencil over the dense buffer: O(cells × window)
// with no hashing, versus the generic sparse path's hash lookups.
func (e *Engine) denseWindow(in *table.Table, x *core.Window) (*table.Table, bool) {
	if x.Agg != core.AggSum && x.Agg != core.AggAvg && x.Agg != core.AggMin && x.Agg != core.AggMax && x.Agg != core.AggCount {
		return nil, false
	}
	d, err := FromTable(in)
	if err != nil {
		return nil, false
	}
	before := make([]int64, len(d.DimNames))
	after := make([]int64, len(d.DimNames))
	for _, ext := range x.Extents {
		found := false
		for i, dn := range d.DimNames {
			if dn == ext.Dim {
				before[i], after[i] = ext.Before, ext.After
				found = true
			}
		}
		if !found {
			return nil, false
		}
	}
	n := d.NumCells()
	out := &Dense{
		DimNames: d.DimNames, Lo: d.Lo, Shape: d.Shape,
		Vals: make([]float64, n), ValName: x.As,
	}
	if d.Present != nil {
		out.Present = make([]bool, n)
		copy(out.Present, d.Present)
	}
	coords := make([]int64, len(d.Shape))
	neigh := make([]int64, len(d.Shape))
	copy(coords, d.Lo)
	for off := int64(0); off < n && n > 0; off++ {
		if d.Present == nil || d.Present[off] {
			var (
				sum   float64
				count int64
				best  float64
				first = true
			)
			for i := range neigh {
				neigh[i] = coords[i] - before[i]
			}
			for {
				if v, ok := d.At(neigh); ok {
					sum += v
					count++
					if first || (x.Agg == core.AggMin && v < best) || (x.Agg == core.AggMax && v > best) {
						best = v
						first = false
					}
				}
				k := len(neigh) - 1
				for k >= 0 {
					neigh[k]++
					if neigh[k] <= coords[k]+after[k] {
						break
					}
					neigh[k] = coords[k] - before[k]
					k--
				}
				if k < 0 {
					break
				}
			}
			switch x.Agg {
			case core.AggSum:
				out.Vals[off] = sum
			case core.AggAvg:
				if count > 0 {
					out.Vals[off] = sum / float64(count)
				}
			case core.AggCount:
				out.Vals[off] = float64(count)
			case core.AggMin, core.AggMax:
				out.Vals[off] = best
			}
		}
		for k := len(coords) - 1; k >= 0; k-- {
			coords[k]++
			if coords[k] < d.Lo[k]+d.Shape[k] {
				break
			}
			coords[k] = d.Lo[k]
		}
	}
	t, err := out.ToTable()
	if err != nil {
		return nil, false
	}
	// Window's schema may declare an integer aggregate (e.g. count); the
	// dense kernel produces floats. Convert when needed.
	t2, err := conformTo(t, x.Schema())
	if err != nil {
		return nil, false
	}
	return t2, true
}

func (e *Engine) denseElemWise(l, r *table.Table, x *core.ElemWise) (*table.Table, bool) {
	if !x.Op.Arithmetic() {
		return nil, false
	}
	dl, err := FromTable(l)
	if err != nil {
		return nil, false
	}
	dr, err := FromTable(r)
	if err != nil {
		return nil, false
	}
	if len(dl.Shape) != len(dr.Shape) {
		return nil, false
	}
	// Intersect boxes.
	lo := make([]int64, len(dl.Shape))
	shape := make([]int64, len(dl.Shape))
	for i := range lo {
		lo[i] = dl.Lo[i]
		if dr.Lo[i] > lo[i] {
			lo[i] = dr.Lo[i]
		}
		hiL := dl.Lo[i] + dl.Shape[i]
		hiR := dr.Lo[i] + dr.Shape[i]
		hi := hiL
		if hiR < hi {
			hi = hiR
		}
		if hi < lo[i] {
			hi = lo[i]
		}
		shape[i] = hi - lo[i]
	}
	out := &Dense{DimNames: dl.DimNames, Lo: lo, Shape: shape, ValName: x.As}
	n := out.NumCells()
	out.Vals = make([]float64, n)
	out.Present = make([]bool, n)
	coords := make([]int64, len(shape))
	copy(coords, lo)
	for off := int64(0); off < n && n > 0; off++ {
		lv, lok := dl.At(coords)
		rv, rok := dr.At(coords)
		if lok && rok {
			out.Present[off] = true
			switch x.Op {
			case value.OpAdd:
				out.Vals[off] = lv + rv
			case value.OpSub:
				out.Vals[off] = lv - rv
			case value.OpMul:
				out.Vals[off] = lv * rv
			case value.OpDiv:
				out.Vals[off] = lv / rv
			default:
				return nil, false
			}
		}
		for k := len(coords) - 1; k >= 0; k-- {
			coords[k]++
			if coords[k] < lo[k]+shape[k] {
				break
			}
			coords[k] = lo[k]
		}
	}
	t, err := out.ToTable()
	if err != nil {
		return nil, false
	}
	t2, err := conformTo(t, x.Schema())
	if err != nil {
		return nil, false
	}
	return t2, true
}

// conformTo renames/retypes the dense kernel's output columns to the
// plan-declared schema (dense kernels always produce float64 values;
// integer-typed outputs are converted).
func conformTo(t *table.Table, want schema.Schema) (*table.Table, error) {
	if t.NumCols() != want.Len() {
		return nil, fmt.Errorf("array: kernel arity %d vs schema %v", t.NumCols(), want)
	}
	cols := make([]*table.Column, t.NumCols())
	for i := 0; i < t.NumCols(); i++ {
		src := t.Col(i)
		if src.Kind() == want.At(i).Kind {
			cols[i] = src
			continue
		}
		if src.Kind() == value.KindFloat64 && want.At(i).Kind == value.KindInt64 {
			ints := make([]int64, src.Len())
			for r, f := range src.Floats() {
				ints[r] = int64(f)
			}
			cols[i] = table.IntColumn(ints)
			continue
		}
		return nil, fmt.Errorf("array: cannot conform %v to %v", src.Kind(), want.At(i).Kind)
	}
	return table.New(want, cols)
}
