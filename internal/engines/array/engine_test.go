package array

import (
	"math"
	"testing"
	"testing/quick"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/exec"
	"nexus/internal/ref"
	"nexus/internal/table"
	"nexus/internal/value"
)

func scanOf(t *testing.T, e *Engine, name string) *core.Scan {
	t.Helper()
	sch, ok := e.DatasetSchema(name)
	if !ok {
		t.Fatalf("no dataset %q", name)
	}
	s, err := core.NewScan(name, sch)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDenseRoundTrip(t *testing.T) {
	grid := datagen.Grid(1, 7, 9)
	d, err := FromTable(grid)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumCells() != 63 {
		t.Fatalf("cells = %d, want 63", d.NumCells())
	}
	if d.Present != nil {
		t.Fatal("fully dense grid should have nil presence mask")
	}
	back, err := d.ToTable()
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualUnordered(grid, back) {
		t.Fatal("dense round trip lost data")
	}
}

func TestDenseSparseRoundTrip(t *testing.T) {
	sch := datagen.GridSchema()
	b := table.NewBuilder(sch, 3)
	b.MustAppend(value.NewInt(5), value.NewInt(5), value.NewFloat(1.5))
	b.MustAppend(value.NewInt(7), value.NewInt(6), value.NewFloat(2.5))
	b.MustAppend(value.NewInt(5), value.NewInt(8), value.NewFloat(-1))
	sparse := b.Build()
	d, err := FromTable(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if d.Present == nil {
		t.Fatal("sparse input should carry a presence mask")
	}
	if d.Lo[0] != 5 || d.Lo[1] != 5 {
		t.Fatalf("lo = %v", d.Lo)
	}
	back, err := d.ToTable()
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualUnordered(sparse, back) {
		t.Fatal("sparse round trip lost data")
	}
}

func TestDenseTranspose(t *testing.T) {
	grid := datagen.Grid(2, 4, 6)
	d, _ := FromTable(grid)
	tr := d.Transpose([]int{1, 0})
	if tr.Shape[0] != 6 || tr.Shape[1] != 4 {
		t.Fatalf("transposed shape = %v", tr.Shape)
	}
	for x := int64(0); x < 4; x++ {
		for y := int64(0); y < 6; y++ {
			a, _ := d.At([]int64{x, y})
			b, _ := tr.At([]int64{y, x})
			if a != b {
				t.Fatalf("transpose mismatch at (%d,%d)", x, y)
			}
		}
	}
}

// genericRun executes a plan on the raw reference runtime (no dense
// kernels), the semantic baseline for the array engine.
func genericRun(t *testing.T, datasets map[string]*table.Table, plan core.Node) *table.Table {
	t.Helper()
	rt := &exec.Runtime{Datasets: func(name string) (*table.Table, bool) {
		tab, ok := datasets[name]
		return tab, ok
	}}
	out, err := rt.Run(plan)
	if err != nil {
		t.Fatalf("generic run: %v", err)
	}
	return out
}

// The dense window kernel must agree with the generic sparse
// implementation run by the reference runtime.
func TestDenseWindowMatchesGeneric(t *testing.T) {
	series := datagen.Series(3, 300)
	ae := New("array")
	if err := ae.Store("s", series); err != nil {
		t.Fatal(err)
	}
	ds := map[string]*table.Table{"s": series}
	for _, agg := range []core.AggFunc{core.AggSum, core.AggAvg, core.AggMin, core.AggMax, core.AggCount} {
		w, err := core.NewWindow(scanOf(t, ae, "s"), []core.DimExtent{{Dim: "t", Before: 3, After: 3}}, agg, "temp", "w")
		if err != nil {
			t.Fatal(err)
		}
		got, err := ae.Execute(w)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		want := genericRun(t, ds, w)
		if got.Checksum() != want.Checksum() {
			// Floating aggregation order may differ; compare cell-wise.
			if !windowsClose(got, want) {
				t.Fatalf("%v: dense window disagrees with generic", agg)
			}
		}
	}
}

func windowsClose(a, b *table.Table) bool {
	if a.NumRows() != b.NumRows() {
		return false
	}
	am := map[int64]float64{}
	ts := a.ColByName("t").Ints()
	for i := 0; i < a.NumRows(); i++ {
		f, _ := a.Value(i, a.Schema().IndexOf("w")).AsFloat()
		am[ts[i]] = f
	}
	bts := b.ColByName("t").Ints()
	for i := 0; i < b.NumRows(); i++ {
		f, _ := b.Value(i, b.Schema().IndexOf("w")).AsFloat()
		if math.Abs(f-am[bts[i]]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestDenseWindowAgainstOracle(t *testing.T) {
	series := datagen.Series(4, 128)
	ae := New("array")
	if err := ae.Store("s", series); err != nil {
		t.Fatal(err)
	}
	w, err := core.NewWindow(scanOf(t, ae, "s"), []core.DimExtent{{Dim: "t", Before: 2, After: 1}}, core.AggSum, "temp", "w")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ae.Execute(w)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 128)
	vals := series.ColByName("temp").Floats()
	for i := range vals {
		for j := i - 2; j <= i+1; j++ {
			if j >= 0 && j < len(vals) {
				want[i] += vals[j]
			}
		}
	}
	ts := out.ColByName("t").Ints()
	ws := out.ColByName("w").Floats()
	for i := range ts {
		if math.Abs(ws[i]-want[ts[i]]) > 1e-9 {
			t.Fatalf("window at %d: %g want %g", ts[i], ws[i], want[ts[i]])
		}
	}
}

func TestDenseElemWiseMatchesGeneric(t *testing.T) {
	a := datagen.Matrix(5, 8, 8, "i", "j")
	b := datagen.Matrix(6, 8, 8, "i", "j")
	ae := New("array")
	if err := ae.Store("A", a); err != nil {
		t.Fatal(err)
	}
	if err := ae.Store("B", b); err != nil {
		t.Fatal(err)
	}
	ds := map[string]*table.Table{"A": a, "B": b}
	for _, op := range []value.BinOp{value.OpAdd, value.OpSub, value.OpMul} {
		ew, err := core.NewElemWise(scanOf(t, ae, "A"), scanOf(t, ae, "B"), op, "r")
		if err != nil {
			t.Fatal(err)
		}
		got, err := ae.Execute(ew)
		if err != nil {
			t.Fatal(err)
		}
		want := genericRun(t, ds, ew)
		if !table.EqualUnordered(got, want) {
			t.Fatalf("%v: dense elemwise disagrees with generic", op)
		}
	}
}

func TestFillKernel(t *testing.T) {
	sch := datagen.GridSchema()
	b := table.NewBuilder(sch, 2)
	b.MustAppend(value.NewInt(0), value.NewInt(0), value.NewFloat(5))
	b.MustAppend(value.NewInt(1), value.NewInt(2), value.NewFloat(7))
	ae := New("array")
	if err := ae.Store("g", b.Build()); err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFill(scanOf(t, ae, "g"), value.NewFloat(-1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ae.Execute(f)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 6 { // box 2x3
		t.Fatalf("fill: %d rows, want 6", out.NumRows())
	}
	var negs int
	for _, v := range out.ColByName("v").Floats() {
		if v == -1 {
			negs++
		}
	}
	if negs != 4 {
		t.Fatalf("fill: %d filled cells, want 4", negs)
	}
}

func TestCapabilityRejection(t *testing.T) {
	ae := New("array")
	a := datagen.Matrix(7, 3, 3, "i", "k")
	bm := datagen.Matrix(8, 3, 3, "k", "j")
	if err := ae.Store("A", a); err != nil {
		t.Fatal(err)
	}
	if err := ae.Store("B", bm); err != nil {
		t.Fatal(err)
	}
	mm, err := core.NewMatMul(scanOf(t, ae, "A"), scanOf(t, ae, "B"), "v")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ae.Execute(mm); err == nil {
		t.Fatal("array engine must reject MatMul (outside its capabilities)")
	}
}

// Property: FromTable/ToTable round-trips arbitrary sparse 1-D arrays
// with distinct coordinates.
func TestDenseRoundTripProperty(t *testing.T) {
	f := func(coords []int16, seed int64) bool {
		seen := map[int64]bool{}
		var cs []int64
		for _, c := range coords {
			v := int64(c % 500)
			if !seen[v] {
				seen[v] = true
				cs = append(cs, v)
			}
		}
		if len(cs) == 0 {
			return true
		}
		vals := make([]float64, len(cs))
		for i := range vals {
			vals[i] = float64((seed+int64(i)*2654435761)%1000) / 7
		}
		tab := table.MustNew(datagen.SeriesSchema(), []*table.Column{
			table.IntColumn(cs), table.FloatColumn(vals),
		})
		d, err := FromTable(tab)
		if err != nil {
			return false
		}
		back, err := d.ToTable()
		if err != nil {
			return false
		}
		return table.EqualUnordered(tab, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The reference window oracle and the dense kernel agree on dense series.
func TestWindowOracleCrossCheck(t *testing.T) {
	series := datagen.Series(11, 64)
	want := ref.WindowSum1D(series.ColByName("temp").Floats(), 1, 1)
	ae := New("array")
	if err := ae.Store("s", series); err != nil {
		t.Fatal(err)
	}
	w, _ := core.NewWindow(scanOf(t, ae, "s"), []core.DimExtent{{Dim: "t", Before: 1, After: 1}}, core.AggSum, "temp", "w")
	out, err := ae.Execute(w)
	if err != nil {
		t.Fatal(err)
	}
	ts := out.ColByName("t").Ints()
	ws := out.ColByName("w").Floats()
	for i := range ts {
		if math.Abs(ws[i]-want[ts[i]]) > 1e-9 {
			t.Fatalf("t=%d: %g want %g", ts[i], ws[i], want[ts[i]])
		}
	}
}
