// Package array implements the SciDB-class provider of the nexus
// framework: an n-dimensional dense array engine over the fused
// tabular/array model. Dimension-tagged tables convert to dense buffers
// (with presence masks for sparse inputs); window (stencil), fill,
// element-wise and transpose run as dense kernels, while the rest of the
// algebra falls back to the generic runtime.
package array

import (
	"fmt"

	"nexus/internal/schema"
	"nexus/internal/table"
	"nexus/internal/value"
)

// Dense is an n-dimensional dense array of float64 cells: the physical
// representation the engine uses for dimension-tagged tables with one
// numeric value attribute. Cells absent from the sparse input are marked
// in the presence mask.
type Dense struct {
	DimNames []string
	Lo       []int64 // inclusive lower bound per dimension
	Shape    []int64 // extent per dimension
	Vals     []float64
	Present  []bool // nil = all present
	ValName  string
}

// NumCells returns the dense cell count.
func (d *Dense) NumCells() int64 {
	n := int64(1)
	for _, s := range d.Shape {
		n *= s
	}
	return n
}

// offset computes the row-major offset of the coordinates.
func (d *Dense) offset(coords []int64) int64 {
	off := int64(0)
	for i := range coords {
		off = off*d.Shape[i] + (coords[i] - d.Lo[i])
	}
	return off
}

// At returns the value at coordinates and whether the cell is present.
func (d *Dense) At(coords []int64) (float64, bool) {
	for i, c := range coords {
		if c < d.Lo[i] || c >= d.Lo[i]+d.Shape[i] {
			return 0, false
		}
	}
	off := d.offset(coords)
	if d.Present != nil && !d.Present[off] {
		return 0, false
	}
	return d.Vals[off], true
}

// maxDenseCells bounds materialization so that a sparse table with two
// far-apart coordinates cannot allocate unbounded memory.
const maxDenseCells = 64 << 20

// FromTable converts a dimension-tagged table with exactly one numeric
// value attribute to dense form. The bounding box is derived from the
// data.
func FromTable(t *table.Table) (*Dense, error) {
	sch := t.Schema()
	dimPos := sch.DimIndexes()
	if len(dimPos) == 0 {
		return nil, fmt.Errorf("array: input has no dimensions: %v", sch)
	}
	valPos := -1
	for i := 0; i < sch.Len(); i++ {
		if sch.At(i).Dim {
			continue
		}
		if valPos >= 0 {
			return nil, fmt.Errorf("array: more than one value attribute in %v", sch)
		}
		if !sch.At(i).Kind.Numeric() {
			return nil, fmt.Errorf("array: value attribute %q is %v, need numeric", sch.At(i).Name, sch.At(i).Kind)
		}
		valPos = i
	}
	if valPos < 0 {
		return nil, fmt.Errorf("array: no value attribute in %v", sch)
	}

	d := &Dense{ValName: sch.At(valPos).Name}
	for _, p := range dimPos {
		d.DimNames = append(d.DimNames, sch.At(p).Name)
	}
	if t.NumRows() == 0 {
		d.Lo = make([]int64, len(dimPos))
		d.Shape = make([]int64, len(dimPos))
		return d, nil
	}
	d.Lo = make([]int64, len(dimPos))
	d.Shape = make([]int64, len(dimPos))
	hi := make([]int64, len(dimPos))
	for i, p := range dimPos {
		col := t.Col(p).Ints()
		d.Lo[i], hi[i] = col[0], col[0]
		for _, v := range col {
			if v < d.Lo[i] {
				d.Lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
		d.Shape[i] = hi[i] - d.Lo[i] + 1
	}
	if n := d.NumCells(); n > maxDenseCells {
		return nil, fmt.Errorf("array: dense box of %d cells exceeds the %d-cell bound", n, int64(maxDenseCells))
	}
	d.Vals = make([]float64, d.NumCells())
	present := make([]bool, d.NumCells())
	allPresent := int64(t.NumRows()) == d.NumCells()
	coords := make([]int64, len(dimPos))
	for row := 0; row < t.NumRows(); row++ {
		for i, p := range dimPos {
			coords[i] = t.Col(p).Ints()[row]
		}
		f, ok := t.Value(row, valPos).AsFloat()
		off := d.offset(coords)
		if ok {
			d.Vals[off] = f
			present[off] = true
		}
	}
	if !allPresent {
		d.Present = present
	} else {
		// Even with a full box, NULL values leave gaps.
		for _, p := range present {
			if !p {
				d.Present = present
				break
			}
		}
	}
	return d, nil
}

// ToTable converts back to the sparse table representation, emitting only
// present cells in row-major order.
func (d *Dense) ToTable() (*table.Table, error) {
	attrs := make([]schema.Attribute, 0, len(d.DimNames)+1)
	for _, n := range d.DimNames {
		attrs = append(attrs, schema.Attribute{Name: n, Kind: value.KindInt64, Dim: true})
	}
	attrs = append(attrs, schema.Attribute{Name: d.ValName, Kind: value.KindFloat64})
	sch, err := schema.TryNew(attrs...)
	if err != nil {
		return nil, fmt.Errorf("array: %w", err)
	}
	n := d.NumCells()
	dimCols := make([][]int64, len(d.DimNames))
	for i := range dimCols {
		dimCols[i] = make([]int64, 0, n)
	}
	vals := make([]float64, 0, n)
	coords := make([]int64, len(d.DimNames))
	copy(coords, d.Lo)
	if n > 0 && len(d.Vals) > 0 {
		for off := int64(0); off < n; off++ {
			if d.Present == nil || d.Present[off] {
				for i := range coords {
					dimCols[i] = append(dimCols[i], coords[i])
				}
				vals = append(vals, d.Vals[off])
			}
			// Row-major odometer.
			for k := len(coords) - 1; k >= 0; k-- {
				coords[k]++
				if coords[k] < d.Lo[k]+d.Shape[k] {
					break
				}
				coords[k] = d.Lo[k]
			}
		}
	}
	cols := make([]*table.Column, 0, len(dimCols)+1)
	for _, dc := range dimCols {
		cols = append(cols, table.IntColumn(dc))
	}
	cols = append(cols, table.FloatColumn(vals))
	return table.New(sch, cols)
}

// Transpose returns the array with dimensions permuted per perm, where
// perm[i] is the index of the source dimension that becomes output
// dimension i.
func (d *Dense) Transpose(perm []int) *Dense {
	out := &Dense{ValName: d.ValName}
	for _, p := range perm {
		out.DimNames = append(out.DimNames, d.DimNames[p])
		out.Lo = append(out.Lo, d.Lo[p])
		out.Shape = append(out.Shape, d.Shape[p])
	}
	n := d.NumCells()
	out.Vals = make([]float64, n)
	if d.Present != nil {
		out.Present = make([]bool, n)
	}
	src := make([]int64, len(d.Shape))
	dst := make([]int64, len(d.Shape))
	copy(src, d.Lo)
	for off := int64(0); off < n && n > 0; off++ {
		for i, p := range perm {
			dst[i] = src[p]
		}
		doff := out.offset(dst)
		out.Vals[doff] = d.Vals[off]
		if d.Present != nil {
			out.Present[doff] = d.Present[off]
		}
		for k := len(src) - 1; k >= 0; k-- {
			src[k]++
			if src[k] < d.Lo[k]+d.Shape[k] {
				break
			}
			src[k] = d.Lo[k]
		}
	}
	return out
}

// FillValue replaces absent cells with v and clears the presence mask.
func (d *Dense) FillValue(v float64) {
	if d.Present == nil {
		return
	}
	for off, p := range d.Present {
		if !p {
			d.Vals[off] = v
		}
	}
	d.Present = nil
}
