// Package relational implements the column-store-class provider of the
// nexus framework: a vectorized, in-memory columnar engine that executes
// the complete Big Data algebra through the generic runtime — hash joins,
// hash aggregation, stable sorts, set operations, and a generic loop for
// control iteration. It doubles as the semantic reference engine: every
// other engine's results are property-tested against it.
package relational

import (
	"fmt"
	"sort"
	"sync"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/provider"
	"nexus/internal/schema"
	"nexus/internal/table"
)

// Engine is an in-memory columnar relational provider.
type Engine struct {
	name  string
	cache *exec.ExprCache // compiled-expression cache shared across Executes

	mu       sync.RWMutex
	datasets map[string]*table.Table
}

var _ provider.Provider = (*Engine)(nil)

// New returns an empty engine with the given provider name.
func New(name string) *Engine {
	if name == "" {
		name = "relational"
	}
	return &Engine{name: name, cache: exec.NewExprCache(), datasets: map[string]*table.Table{}}
}

// Name implements provider.Provider.
func (e *Engine) Name() string { return e.name }

// Capabilities implements provider.Provider: the full relational algebra,
// control iteration, and the dimension-tagging/reduction operators that
// desugar to relational plans — but not the dense-array kernels (window,
// fill, transpose, element-wise) or matrix multiply, which a column store
// would not implement natively. Those operators reach this provider only
// after the planner desugars or re-routes them (desideratum D2's
// "combination of such systems").
func (e *Engine) Capabilities() provider.Capabilities {
	return provider.AllOps().Without(
		core.KMatMul, core.KWindow, core.KFill, core.KElemWise, core.KTranspose,
	)
}

// Store implements provider.Provider.
func (e *Engine) Store(name string, t *table.Table) error {
	if name == "" {
		return fmt.Errorf("relational: empty dataset name")
	}
	if t == nil {
		return fmt.Errorf("relational: nil table for %q", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.datasets[name] = t
	return nil
}

// Drop implements provider.Provider.
func (e *Engine) Drop(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.datasets, name)
}

// Dataset returns the named table.
func (e *Engine) Dataset(name string) (*table.Table, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.datasets[name]
	return t, ok
}

// DatasetSchema implements provider.Provider.
func (e *Engine) DatasetSchema(name string) (schema.Schema, bool) {
	t, ok := e.Dataset(name)
	if !ok {
		return schema.Schema{}, false
	}
	return t.Schema(), true
}

// Datasets implements provider.Provider.
func (e *Engine) Datasets() []provider.DatasetInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]provider.DatasetInfo, 0, len(e.datasets))
	for n, t := range e.datasets {
		out = append(out, provider.DatasetInfo{Name: n, Schema: t.Schema(), Rows: int64(t.NumRows())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Execute implements provider.Provider: it evaluates the whole plan tree
// locally, rejecting plans outside the advertised capabilities. A fresh
// runtime per call keeps Execute safe for concurrent use.
func (e *Engine) Execute(plan core.Node) (*table.Table, error) {
	if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
		return nil, fmt.Errorf("relational %q: operator %v not supported", e.name, missing)
	}
	rt := &exec.Runtime{Datasets: e.Dataset, Cache: e.cache}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("relational %q: %w", e.name, err)
	}
	return t, nil
}

// ExecuteTraced is Execute with a per-operator trace attached: tr
// records calls, output rows and inclusive wall time for every node of
// this plan instance (see exec.ExplainAnalyze).
func (e *Engine) ExecuteTraced(plan core.Node, tr *exec.Trace) (*table.Table, error) {
	if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
		return nil, fmt.Errorf("relational %q: operator %v not supported", e.name, missing)
	}
	rt := &exec.Runtime{Datasets: e.Dataset, Cache: e.cache, Trace: tr}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("relational %q: %w", e.name, err)
	}
	return t, nil
}

// ExecuteWithStats evaluates the plan and also returns runtime counters,
// used by the benchmark harness. Unlike Execute it does not enforce the
// advertised capability set: it is the raw reference runtime, used by
// tests and baselines that deliberately run any operator here.
func (e *Engine) ExecuteWithStats(plan core.Node) (*table.Table, exec.Stats, error) {
	rt := &exec.Runtime{Datasets: e.Dataset, Cache: e.cache}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, rt.Stats, fmt.Errorf("relational %q: %w", e.name, err)
	}
	return t, rt.Stats, nil
}
