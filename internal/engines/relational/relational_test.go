package relational

import (
	"sync"
	"testing"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/expr"
)

func TestStoreAndCatalog(t *testing.T) {
	e := New("")
	if e.Name() != "relational" {
		t.Fatalf("default name %q", e.Name())
	}
	if err := e.Store("", datagen.Sales(1, 10, 5, 5)); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := e.Store("sales", nil); err == nil {
		t.Fatal("nil table accepted")
	}
	if err := e.Store("sales", datagen.Sales(1, 100, 10, 5)); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.DatasetSchema("sales"); !ok {
		t.Fatal("schema lookup failed")
	}
	infos := e.Datasets()
	if len(infos) != 1 || infos[0].Rows != 100 {
		t.Fatalf("datasets = %+v", infos)
	}
	e.Drop("sales")
	if _, ok := e.Dataset("sales"); ok {
		t.Fatal("drop ignored")
	}
}

func TestExecuteEnforcesCapabilities(t *testing.T) {
	e := New("r")
	a := datagen.Matrix(1, 4, 4, "i", "k")
	b := datagen.Matrix(2, 4, 4, "k", "j")
	if err := e.Store("A", a); err != nil {
		t.Fatal(err)
	}
	if err := e.Store("B", b); err != nil {
		t.Fatal(err)
	}
	sa, _ := core.NewScan("A", a.Schema())
	sb, _ := core.NewScan("B", b.Schema())
	mm, err := core.NewMatMul(sa, sb, "v")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(mm); err == nil {
		t.Fatal("relational engine must reject MatMul per its advertised capabilities")
	}
	// The raw stats runtime intentionally bypasses the capability gate.
	out, stats, err := e.ExecuteWithStats(mm)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 16 || stats.NodesExecuted == 0 {
		t.Fatalf("rows=%d stats=%+v", out.NumRows(), stats)
	}
}

func TestConcurrentExecute(t *testing.T) {
	e := New("r")
	if err := e.Store("sales", datagen.Sales(3, 2000, 100, 20)); err != nil {
		t.Fatal(err)
	}
	sch, _ := e.DatasetSchema("sales")
	scan, _ := core.NewScan("sales", sch)
	ga, err := core.NewGroupAgg(scan, []string{"region"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "rev"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Execute(ga)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := e.Execute(ga)
			if err != nil {
				errs <- err
				return
			}
			if got.Checksum() != want.Checksum() {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
