// Package linalg implements the ScaLAPACK-class provider of the nexus
// framework: a dense linear-algebra engine whose centerpiece is a
// cache-blocked, multi-core matrix multiply. It is the server with a
// "direct implementation of matrix multiply" from the paper's intent-
// preservation desideratum: plans that reach it with a MatMul node run
// orders of magnitude faster than the join+aggregate encoding of the
// same computation on a relational engine.
package linalg

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"nexus/internal/core"
	"nexus/internal/engines/array"
	"nexus/internal/engines/exec"
	"nexus/internal/provider"
	"nexus/internal/schema"
	"nexus/internal/table"
)

// Engine is the dense linear-algebra provider.
type Engine struct {
	name  string
	cache *exec.ExprCache // compiled-expression cache shared across Executes

	mu       sync.RWMutex
	datasets map[string]*table.Table
}

var _ provider.Provider = (*Engine)(nil)

// New returns an empty linalg engine.
func New(name string) *Engine {
	if name == "" {
		name = "linalg"
	}
	return &Engine{name: name, cache: exec.NewExprCache(), datasets: map[string]*table.Table{}}
}

// Name implements provider.Provider.
func (e *Engine) Name() string { return e.name }

// Capabilities implements provider.Provider: an analytics server, not a
// database — no joins, grouping, sorting or iteration, but native MatMul,
// Transpose, ElemWise and dimension reductions.
func (e *Engine) Capabilities() provider.Capabilities {
	return provider.NewCapabilities(
		core.KScan, core.KLiteral, core.KVar, core.KLet,
		core.KMatMul, core.KTranspose, core.KElemWise, core.KReduceDims,
		core.KExtend, core.KProject, core.KRename,
		core.KAsArray, core.KDropDims, core.KFill, core.KDice, core.KSlice, core.KShift,
	)
}

// Store implements provider.Provider.
func (e *Engine) Store(name string, t *table.Table) error {
	if name == "" {
		return fmt.Errorf("linalg: empty dataset name")
	}
	if t == nil {
		return fmt.Errorf("linalg: nil table for %q", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.datasets[name] = t
	return nil
}

// Drop implements provider.Provider.
func (e *Engine) Drop(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.datasets, name)
}

// Dataset returns a hosted table.
func (e *Engine) Dataset(name string) (*table.Table, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.datasets[name]
	return t, ok
}

// DatasetSchema implements provider.Provider.
func (e *Engine) DatasetSchema(name string) (schema.Schema, bool) {
	t, ok := e.Dataset(name)
	if !ok {
		return schema.Schema{}, false
	}
	return t.Schema(), true
}

// Datasets implements provider.Provider.
func (e *Engine) Datasets() []provider.DatasetInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]provider.DatasetInfo, 0, len(e.datasets))
	for n, t := range e.datasets {
		out = append(out, provider.DatasetInfo{Name: n, Schema: t.Schema(), Rows: int64(t.NumRows())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Execute implements provider.Provider.
func (e *Engine) Execute(plan core.Node) (*table.Table, error) {
	if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
		return nil, fmt.Errorf("linalg %q: operator %v not supported", e.name, missing)
	}
	rt := &exec.Runtime{Datasets: e.Dataset, Override: e.override, Cache: e.cache}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("linalg %q: %w", e.name, err)
	}
	return t, nil
}

// ExecuteTraced is Execute with a per-operator trace attached: tr
// records calls, output rows and inclusive wall time for every node of
// this plan instance (subtrees a BLAS-style kernel absorbed show as not
// executed — the kernel's root carries their time).
func (e *Engine) ExecuteTraced(plan core.Node, tr *exec.Trace) (*table.Table, error) {
	if ok, missing := e.Capabilities().SupportsPlan(plan); !ok {
		return nil, fmt.Errorf("linalg %q: operator %v not supported", e.name, missing)
	}
	rt := &exec.Runtime{Datasets: e.Dataset, Override: e.override, Cache: e.cache, Trace: tr}
	t, err := rt.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("linalg %q: %w", e.name, err)
	}
	return t, nil
}

func (e *Engine) override(n core.Node, env *exec.Env, rec exec.RecFunc) (*table.Table, bool, error) {
	mm, ok := n.(*core.MatMul)
	if !ok {
		return nil, false, nil
	}
	l, err := rec(mm.Children()[0], env)
	if err != nil {
		return nil, false, err
	}
	r, err := rec(mm.Children()[1], env)
	if err != nil {
		return nil, false, err
	}
	dl, err := array.FromTable(l)
	if err != nil {
		return nil, false, nil // fall back to the sparse path
	}
	dr, err := array.FromTable(r)
	if err != nil {
		return nil, false, nil
	}
	if len(dl.Shape) != 2 || len(dr.Shape) != 2 {
		return nil, false, nil
	}
	dl.FillValue(0) // absent cells are implicit zeros for gemm
	dr.FillValue(0)
	out, err := MatMulDense(dl, dr, mm.As)
	if err != nil {
		return nil, false, err
	}
	// The kernel names output dims after the plan's schema.
	outT, err := out.ToTable()
	if err != nil {
		return nil, false, err
	}
	outT, err = outT.WithSchema(mm.Schema())
	if err != nil {
		return nil, false, err
	}
	return outT, true, nil
}

// blockSize is tuned for L1-resident tiles of float64.
const blockSize = 64

// MatMulDense computes C = A·B over dense 2-D arrays with a cache-blocked
// ikj loop nest parallelized across row blocks. A must be m×k with
// matching inner extent k×n on B.
func MatMulDense(a, b *array.Dense, as string) (*array.Dense, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("linalg: matmul needs 2-D operands")
	}
	m, k := int(a.Shape[0]), int(a.Shape[1])
	k2, n := int(b.Shape[0]), int(b.Shape[1])
	if k != k2 {
		return nil, fmt.Errorf("linalg: inner extents differ: %d vs %d", k, k2)
	}
	c := make([]float64, m*n)
	av, bv := a.Vals, b.Vals

	workers := runtime.GOMAXPROCS(0)
	if workers > m/2+1 {
		workers = m/2 + 1
	}
	var wg sync.WaitGroup
	rowsPer := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i0 := lo; i0 < hi; i0 += blockSize {
				iMax := min(i0+blockSize, hi)
				for k0 := 0; k0 < k; k0 += blockSize {
					kMax := min(k0+blockSize, k)
					for j0 := 0; j0 < n; j0 += blockSize {
						jMax := min(j0+blockSize, n)
						for i := i0; i < iMax; i++ {
							ci := c[i*n : (i+1)*n]
							ai := av[i*k : (i+1)*k]
							for kk := k0; kk < kMax; kk++ {
								aik := ai[kk]
								if aik == 0 {
									continue
								}
								bk := bv[kk*n : (kk+1)*n]
								for j := j0; j < jMax; j++ {
									ci[j] += aik * bk[j]
								}
							}
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	outI, outJ := a.DimNames[0], b.DimNames[1]
	if outI == outJ {
		outJ += "_r"
	}
	return &array.Dense{
		DimNames: []string{outI, outJ},
		Lo:       []int64{a.Lo[0], b.Lo[1]},
		Shape:    []int64{int64(m), int64(n)},
		Vals:     c,
		ValName:  as,
	}, nil
}

// Dot computes the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
