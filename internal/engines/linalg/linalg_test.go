package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/array"
	"nexus/internal/engines/exec"
	"nexus/internal/ref"
	"nexus/internal/table"
)

func scanOf(t *testing.T, e *Engine, name string) *core.Scan {
	t.Helper()
	sch, ok := e.DatasetSchema(name)
	if !ok {
		t.Fatalf("no dataset %q", name)
	}
	s, err := core.NewScan(name, sch)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMatMulDenseAgainstNaive(t *testing.T) {
	for _, dims := range [][3]int{{4, 4, 4}, {7, 3, 5}, {1, 9, 2}, {65, 67, 63}, {128, 64, 96}} {
		m, k, n := dims[0], dims[1], dims[2]
		at := datagen.Matrix(100, m, k, "i", "k")
		bt := datagen.Matrix(200, k, n, "k", "j")
		da, err := array.FromTable(at)
		if err != nil {
			t.Fatal(err)
		}
		db, err := array.FromTable(bt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MatMulDense(da, db, "v")
		if err != nil {
			t.Fatal(err)
		}
		want := ref.MatMulDense(datagen.MatrixDense(100, m, k), datagen.MatrixDense(200, k, n), m, k, n)
		for i := range want {
			if math.Abs(got.Vals[i]-want[i]) > 1e-9*float64(k) {
				t.Fatalf("dims %v: cell %d: %g want %g", dims, i, got.Vals[i], want[i])
			}
		}
	}
}

func TestMatMulInnerMismatch(t *testing.T) {
	da, _ := array.FromTable(datagen.Matrix(1, 3, 4, "i", "k"))
	db, _ := array.FromTable(datagen.Matrix(2, 5, 3, "k", "j"))
	if _, err := MatMulDense(da, db, "v"); err == nil {
		t.Fatal("expected inner-extent mismatch error")
	}
}

func TestEngineExecutesMatMulNode(t *testing.T) {
	const m, k, n = 12, 9, 11
	e := New("la")
	if err := e.Store("A", datagen.Matrix(300, m, k, "i", "k")); err != nil {
		t.Fatal(err)
	}
	if err := e.Store("B", datagen.Matrix(301, k, n, "k", "j")); err != nil {
		t.Fatal(err)
	}
	mm, err := core.NewMatMul(scanOf(t, e, "A"), scanOf(t, e, "B"), "v")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(mm)
	if err != nil {
		t.Fatal(err)
	}
	// Reference result from the generic sparse path.
	ds := map[string]*table.Table{
		"A": datagen.Matrix(300, m, k, "i", "k"),
		"B": datagen.Matrix(301, k, n, "k", "j"),
	}
	rt := &exec.Runtime{Datasets: func(name string) (*table.Table, bool) {
		tab, ok := ds[name]
		return tab, ok
	}}
	want, err := rt.Run(mm)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("dense %d cells, sparse %d", got.NumRows(), want.NumRows())
	}
	gm := cellsOf(got)
	wm := cellsOf(want)
	for key, gv := range gm {
		if math.Abs(gv-wm[key]) > 1e-9*float64(k) {
			t.Fatalf("cell %v: dense %g sparse %g", key, gv, wm[key])
		}
	}
}

func cellsOf(t *table.Table) map[[2]int64]float64 {
	is := t.ColByName("i").Ints()
	js := t.ColByName("j").Ints()
	vs := t.ColByName("v").Floats()
	out := make(map[[2]int64]float64, len(is))
	for r := range is {
		out[[2]int64{is[r], js[r]}] = vs[r]
	}
	return out
}

func TestCapabilityRejectsJoins(t *testing.T) {
	e := New("la")
	if err := e.Store("s", datagen.Sales(1, 10, 5, 5)); err != nil {
		t.Fatal(err)
	}
	sc := scanOf(t, e, "s")
	ga, err := core.NewGroupAgg(sc, []string{"region"}, []core.AggSpec{{Func: core.AggCount, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(ga); err == nil {
		t.Fatal("linalg engine must reject GroupAgg")
	}
}

func TestBlasHelpers(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if d := Dot(x, y); d != 32 {
		t.Fatalf("dot = %g", d)
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("axpy = %v", y)
	}
	if n := Norm2([]float64{3, 4}); n != 5 {
		t.Fatalf("norm2 = %g", n)
	}
}

// Property: (A·I) == A for random small matrices.
func TestMatMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		m, k := int(seed%5)+2, int(seed%7)+2
		at := datagen.Matrix(seed, m, k, "i", "k")
		da, err := array.FromTable(at)
		if err != nil {
			return false
		}
		// Identity k×k.
		idVals := make([]float64, k*k)
		for i := 0; i < k; i++ {
			idVals[i*k+i] = 1
		}
		id := &array.Dense{
			DimNames: []string{"k", "j"},
			Lo:       []int64{0, 0},
			Shape:    []int64{int64(k), int64(k)},
			Vals:     idVals,
			ValName:  "v",
		}
		got, err := MatMulDense(da, id, "v")
		if err != nil {
			return false
		}
		for i := range got.Vals {
			if math.Abs(got.Vals[i]-da.Vals[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over scalar doubling: (2A)·B == 2(A·B).
func TestMatMulScalingProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		m, k, n := int(seed%4)+2, int(seed%5)+2, int(seed%3)+2
		a := datagen.MatrixDense(seed, m, k)
		b := datagen.MatrixDense(seed+1, k, n)
		a2 := make([]float64, len(a))
		for i := range a {
			a2[i] = 2 * a[i]
		}
		mk := func(vals []float64, rows, cols int, dn [2]string) *array.Dense {
			return &array.Dense{
				DimNames: []string{dn[0], dn[1]},
				Lo:       []int64{0, 0},
				Shape:    []int64{int64(rows), int64(cols)},
				Vals:     vals, ValName: "v",
			}
		}
		ab, err := MatMulDense(mk(a, m, k, [2]string{"i", "k"}), mk(b, k, n, [2]string{"k", "j"}), "v")
		if err != nil {
			return false
		}
		a2b, err := MatMulDense(mk(a2, m, k, [2]string{"i", "k"}), mk(b, k, n, [2]string{"k", "j"}), "v")
		if err != nil {
			return false
		}
		for i := range ab.Vals {
			if math.Abs(a2b.Vals[i]-2*ab.Vals[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
