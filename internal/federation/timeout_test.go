package federation

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"nexus/internal/core"
	"nexus/internal/schema"
	"nexus/internal/stream"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// minimalSpec is the smallest encodable stream spec: the identity plan
// over a one-column schema.
func minimalSpec(t *testing.T) stream.Spec {
	t.Helper()
	v, err := core.NewVar(stream.BatchVar, schema.New(
		schema.Attribute{Name: "ts", Kind: value.KindInt64}))
	if err != nil {
		t.Fatal(err)
	}
	return stream.Spec{Pre: v, BatchSize: 16}
}

// silentListener accepts connections and never writes a byte — the
// pathological peer the old deadline-free DialTCP would hang on
// forever.
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Read and ignore so the client's writes succeed; never reply.
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln
}

// TestDialTCPContextHandshakeTimeout: a server that accepts but never
// answers the hello surfaces a typed timeout instead of blocking
// forever.
func TestDialTCPContextHandshakeTimeout(t *testing.T) {
	ln := silentListener(t)
	start := time.Now()
	_, err := DialTCPContext(context.Background(), ln.Addr().String(),
		DialOpts{HandshakeTimeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial blocked %v; the deadline did not fire", elapsed)
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error %T (%v), want *TimeoutError", err, err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatal("timeout error does not match ErrTimeout")
	}
	if !te.Timeout() {
		t.Fatal("TimeoutError.Timeout() = false")
	}
	if te.Op != "hello" {
		t.Fatalf("Op = %q, want hello", te.Op)
	}
}

// TestDialTCPContextHonorsCancellation: a canceled context aborts the
// dial immediately.
func TestDialTCPContextHonorsCancellation(t *testing.T) {
	ln := silentListener(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialTCPContext(ctx, ln.Addr().String(), DialOpts{}); err == nil {
		t.Fatal("dial with canceled context succeeded")
	}
}

// TestSubscribeContextHandshakeTimeout: a server that accepts the
// subscription frame but never acks surfaces the typed timeout.
func TestSubscribeContextHandshakeTimeout(t *testing.T) {
	ln := silentListener(t)
	tr := &TCP{addr: ln.Addr().String()}
	start := time.Now()
	_, err := tr.SubscribeContext(context.Background(),
		wire.StreamSub{SourceKind: wire.StreamSrcDataset, Dataset: "d", TimeCol: "ts", Spec: minimalSpec(t)},
		DialOpts{HandshakeTimeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("subscribe to a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("subscribe blocked %v; the deadline did not fire", elapsed)
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error %T (%v), want *TimeoutError", err, err)
	}
	if te.Op != "subscribe" {
		t.Fatalf("Op = %q, want subscribe", te.Op)
	}
}

// TestDialTCPDefaultHasDeadline pins the satellite fix itself: the
// plain DialTCP entry point now carries the default handshake deadline,
// so even legacy callers cannot hang forever on a silent peer.
func TestDialTCPDefaultHasDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the default 5s handshake deadline")
	}
	ln := silentListener(t)
	done := make(chan error, 1)
	go func() {
		_, err := DialTCP(ln.Addr().String())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("dial to a silent server succeeded")
		}
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("error %v, want ErrTimeout", err)
		}
	case <-time.After(DefaultConnectTimeout + 5*time.Second):
		t.Fatal("DialTCP still hangs without a deadline")
	}
}
