package federation

import (
	"errors"
	"fmt"

	"nexus/internal/wire"
)

// ErrRefused is the sentinel every admission-control refusal matches:
// errors.Is(err, ErrRefused) holds whether the server shed the request
// under load or the tenant's quota ran out. Refusals are not failures
// of the request itself — retrying later, or at a lower rate, is the
// intended reaction.
var ErrRefused = errors.New("federation: refused by admission control")

// RefusedError is the typed error for a request the server declined via
// MsgRefused. Code distinguishes quota exhaustion from load shedding.
type RefusedError struct {
	Op   string // "subscribe", "execute", "append", "store"
	Code uint32 // wire.RefusedOverQuota or wire.RefusedShedding
	Msg  string // server-supplied reason
}

func (e *RefusedError) Error() string {
	return fmt.Sprintf("federation: %s refused (%s): %s", e.Op, refusedCodeName(e.Code), e.Msg)
}

// Is makes errors.Is(err, ErrRefused) match.
func (e *RefusedError) Is(target error) bool { return target == ErrRefused }

// OverQuota reports whether the refusal was a per-tenant quota limit
// (as opposed to server-wide load shedding).
func (e *RefusedError) OverQuota() bool { return e.Code == wire.RefusedOverQuota }

// Shedding reports whether the refusal was backpressure-driven load
// shedding (the server's credit-stall tail crossed its bound).
func (e *RefusedError) Shedding() bool { return e.Code == wire.RefusedShedding }

func refusedCodeName(code uint32) string {
	switch code {
	case wire.RefusedOverQuota:
		return "over quota"
	case wire.RefusedShedding:
		return "shedding load"
	}
	return fmt.Sprintf("code %d", code)
}

// decodeRefused turns a MsgRefused payload into the typed error.
func decodeRefused(op string, payload []byte) error {
	_, code, msg, err := wire.DecodeRefused(payload)
	if err != nil {
		return err
	}
	return &RefusedError{Op: op, Code: code, Msg: msg}
}
