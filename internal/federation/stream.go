package federation

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/obs/trace"
	"nexus/internal/schema"
	"nexus/internal/server"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// Federated streaming: a Subscription is the client half of one
// long-running stream hosted by a remote provider. Results arrive as
// watermarked batches under credit-based flow control; push-mode
// subscriptions feed events upstream under a publish window; and a
// subscriber can detach with the pipeline's window state and resume on
// the same — or a different — provider.

// StreamTransport is a Transport that can host long-running stream
// subscriptions.
type StreamTransport interface {
	Transport
	// Subscribe opens one subscription. The sub's ID is assigned by the
	// transport; the caller configures everything else.
	Subscribe(sub wire.StreamSub) (*Subscription, error)
}

// DefaultCredit is the result-batch window a subscription grants the
// server up front; the client returns one credit per consumed batch.
const DefaultCredit = 32

// SubBatch is one message from a subscription: a result table (nil for
// watermark-only progress updates) and the event-time watermark in force
// when it was sent.
type SubBatch struct {
	Table     *table.Table
	Watermark int64
	Seq       uint64
}

// Subscription is a live federated stream. Batches arrives results and
// watermark progress; Publish/EndInput feed push-mode sources; Detach
// retrieves the window state for resumption elsewhere.
//
// A subscription runs in one of two transport modes: over a dedicated
// connection it owns (conn non-nil — the reader pulls frames off the
// socket directly), or as one stream of a multiplexed connection (mx
// non-nil — the Mux demultiplexes frames into this subscription's
// inbox and the reader pulls from there). The frame semantics are
// identical; only next() and the sever path differ.
type Subscription struct {
	conn   net.Conn      // dedicated-connection mode; nil under a mux
	mx     *Mux          // mux mode; nil on a dedicated connection
	inbox  chan subFrame // mux mode: frames demultiplexed for this sub
	id     uint64
	outSch schema.Schema
	sp     *trace.Span // client span covering the stream's lifetime; nil untraced

	wmu sync.Mutex // serializes frame writes (publisher + control)

	out    chan SubBatch
	done   chan struct{} // reader terminated; state/stats/err final
	closed chan struct{} // subscriber stopped consuming; reader discards

	closeOnce sync.Once

	mu        sync.Mutex
	pubCond   *sync.Cond
	pubCredit int64
	state     *stream.State
	stats     *stream.Stats
	err       error
	discards  []SubBatch // results the reader dropped during a close handshake
	detaching bool       // a Detach handshake is in flight; Close must not sever it
}

// subFrame is one demultiplexed frame handed to a mux-mode
// subscription's reader.
type subFrame struct {
	typ     wire.MsgType
	payload []byte
}

var subIDs atomic.Uint64

// SubscribeConn opens a subscription over an established connection
// speaking the nexus wire protocol. It assigns the subscription ID,
// performs the subscribe/ack exchange, and starts the reader that
// delivers batches and auto-grants credit.
func SubscribeConn(conn net.Conn, sub wire.StreamSub) (*Subscription, error) {
	return subscribeConnTimeout(conn, sub, 0)
}

// subscribeConnTimeout is SubscribeConn with a deadline on the
// subscribe/ack handshake (0 = none). Once the ack is in, the deadline
// is lifted — the subscription itself is long-running by design. Every
// failure exit closes the dialed connection before returning: the
// deferred cleanup covers each path (write failure, short reply,
// refusal, corrupt ack), so a mid-handshake error can leak neither the
// socket nor a reader goroutine.
func subscribeConnTimeout(conn net.Conn, sub wire.StreamSub, handshake time.Duration) (_ *Subscription, err error) {
	sub.ID = subIDs.Add(1)
	if sub.Credit == 0 {
		sub.Credit = DefaultCredit
	}
	// Traced subscriptions carry a client span for the stream's whole
	// life (see Mux.Subscribe); a failed handshake ends it here.
	sp, tc := clientSpan(sub.Trace, "client.subscribe",
		trace.String("addr", conn.RemoteAddr().String()))
	sub.Trace = tc
	ok := false
	defer func() {
		if !ok {
			conn.Close()
			sp.End(err)
		}
	}()
	if handshake > 0 {
		_ = conn.SetDeadline(time.Now().Add(handshake))
	}
	timeoutErr := func(err error) error {
		if handshake > 0 && isTimeout(err) {
			return &TimeoutError{Op: "subscribe", Addr: conn.RemoteAddr().String(), Elapsed: handshake}
		}
		return err
	}
	if _, err := wire.WriteFrame(conn, wire.MsgSubscribeStream, wire.EncodeSubscribeStream(sub)); err != nil {
		return nil, timeoutErr(err)
	}
	typ, payload, _, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, timeoutErr(err)
	}
	if handshake > 0 {
		_ = conn.SetDeadline(time.Time{})
	}
	switch typ {
	case wire.MsgSubAck:
	case wire.MsgError:
		_, msg, _ := wire.DecodeError(payload)
		return nil, fmt.Errorf("federation: subscribe: %s", msg)
	case wire.MsgRefused:
		return nil, decodeRefused("subscribe", payload)
	default:
		return nil, fmt.Errorf("federation: server replied %v to subscribe", typ)
	}
	ackID, outSch, err := wire.DecodeSubAck(payload)
	if err != nil {
		return nil, err
	}
	if ackID != sub.ID {
		return nil, fmt.Errorf("federation: subscribe ack for id %d, want %d", ackID, sub.ID)
	}
	s := &Subscription{
		conn:      conn,
		id:        sub.ID,
		outSch:    outSch,
		sp:        sp,
		out:       make(chan SubBatch, 1),
		done:      make(chan struct{}),
		closed:    make(chan struct{}),
		pubCredit: server.PublishWindow,
	}
	s.pubCond = sync.NewCond(&s.mu)
	ok = true
	go s.readLoop()
	return s, nil
}

// OutputSchema is the schema of result batches.
func (s *Subscription) OutputSchema() schema.Schema { return s.outSch }

// Batches delivers results and watermark updates until the subscription
// terminates (channel close). Check Err afterwards.
func (s *Subscription) Batches() <-chan SubBatch { return s.out }

// readLoop is the subscription's single reader: it consumes frames from
// its transport — the dedicated socket, or the mux-fed inbox — and
// dispatches them until the terminal frame or a transport failure.
func (s *Subscription) readLoop() {
	// The client subscription span ends with the stream, carrying the
	// terminal error (a severed transport or dropped connection closes
	// it with error status — it never lingers open in the ring).
	defer func() { s.sp.End(s.Err()) }()
	defer close(s.done)
	defer close(s.out)
	if s.mx != nil {
		defer s.mx.forgetSub(s.id)
	} else {
		defer s.conn.Close()
	}
	// Release any Publish blocked on credit once the stream is over.
	defer s.pubCond.Broadcast()
	for {
		typ, payload, err := s.next()
		if err != nil {
			s.fail(fmt.Errorf("federation: subscription read: %w", err))
			return
		}
		if s.handleFrame(typ, payload) {
			return
		}
	}
}

// next delivers the subscription's next frame from its transport.
func (s *Subscription) next() (wire.MsgType, []byte, error) {
	if s.mx == nil {
		typ, payload, _, err := wire.ReadFrame(s.conn)
		return typ, payload, err
	}
	f, ok := <-s.inbox
	if !ok {
		return 0, nil, s.mx.subSeverErr()
	}
	return f.typ, f.payload, nil
}

// handleFrame dispatches one stream frame, reporting whether it was
// terminal (the reader must stop).
func (s *Subscription) handleFrame(typ wire.MsgType, payload []byte) (done bool) {
	switch typ {
	case wire.MsgStreamBatch:
		_, seq, mark, t, err := wire.DecodeStreamBatch(payload)
		if err != nil {
			s.fail(err)
			return true
		}
		select {
		case s.out <- SubBatch{Table: t, Watermark: mark, Seq: seq}:
			// Consumed (or buffered): hand the server its credit back.
			s.writeFrame(wire.MsgCredit, wire.EncodeCredit(s.id, 1))
		case <-s.closed:
			// The subscriber stopped consuming mid-close. The server
			// already counts this batch as delivered, so it is not in
			// any handed-off state — keep it for Detach to return.
			s.mu.Lock()
			s.discards = append(s.discards, SubBatch{Table: t, Watermark: mark, Seq: seq})
			s.mu.Unlock()
		}
	case wire.MsgWatermark:
		_, mark, err := wire.DecodeWatermark(payload)
		if err != nil {
			s.fail(err)
			return true
		}
		select {
		case s.out <- SubBatch{Table: nil, Watermark: mark}:
		case <-s.closed:
		default:
			// Watermark-only updates are droppable if the consumer is
			// behind; the next batch carries the mark anyway.
		}
	case wire.MsgCredit:
		_, n, err := wire.DecodeCredit(payload)
		if err != nil {
			s.fail(err)
			return true
		}
		s.mu.Lock()
		s.pubCredit += int64(n)
		s.mu.Unlock()
		s.pubCond.Broadcast()
	case wire.MsgWindowState:
		_, st, err := wire.DecodeWindowState(payload)
		if err != nil {
			s.fail(err)
		} else {
			s.mu.Lock()
			s.state = st
			s.mu.Unlock()
		}
		return true
	case wire.MsgStreamEnd:
		_, stats, err := wire.DecodeStreamEnd(payload)
		if err != nil {
			s.fail(err)
		} else {
			s.mu.Lock()
			s.stats = &stats
			s.mu.Unlock()
		}
		return true
	case wire.MsgError:
		_, msg, _ := wire.DecodeError(payload)
		s.fail(fmt.Errorf("federation: subscription: %s", msg))
		return true
	default:
		s.fail(fmt.Errorf("federation: unexpected subscription frame %v", typ))
		return true
	}
	return false
}

func (s *Subscription) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Err returns the subscription's terminal error, if any.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// State returns the window state a detach handed back, if any (valid
// once the subscription has terminated). The merge loops use it to
// tell "partition detached" from "partition failed".
func (s *Subscription) State() *stream.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// writeFrame sends one frame under the write lock (the mux's shared
// one, or this subscription's own in dedicated-connection mode).
func (s *Subscription) writeFrame(t wire.MsgType, payload []byte) error {
	if s.mx != nil {
		return s.mx.writeRaw(t, payload)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	_, err := wire.WriteFrame(s.conn, t, payload)
	return err
}

// Publish pushes one event batch upstream (push-mode subscriptions),
// blocking while the publish window is exhausted.
func (s *Subscription) Publish(t *table.Table) error {
	s.mu.Lock()
	for s.pubCredit <= 0 {
		if s.err != nil || s.terminatedLocked() {
			err := s.err
			s.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("federation: publish on finished subscription")
			}
			return err
		}
		s.pubCond.Wait()
	}
	s.pubCredit--
	s.mu.Unlock()
	return s.writeFrame(wire.MsgStreamPublish, wire.EncodeStreamPublish(s.id, t))
}

// terminatedLocked reports whether the reader has finished (s.mu held).
func (s *Subscription) terminatedLocked() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// EndInput ends a push-mode stream: the remote pipeline drains, flushes
// its final windows, and terminates with stats.
func (s *Subscription) EndInput() error {
	return s.writeFrame(wire.MsgStreamClose, wire.EncodeStreamClose(s.id, wire.CloseEndInput))
}

// Detach stops the remote pipeline and returns its window state — the
// handoff object another provider (or a later reconnect) resumes from —
// plus any result batches that were already delivered and credited but
// not yet consumed. Those batches are NOT represented in the state (the
// server counts them as emitted), so the caller must process them before
// resuming.
func (s *Subscription) Detach() (*stream.State, []SubBatch, error) {
	s.mu.Lock()
	s.detaching = true
	s.mu.Unlock()
	s.closeOnce.Do(func() { close(s.closed) })
	if err := s.writeFrame(wire.MsgStreamClose, wire.EncodeStreamClose(s.id, wire.CloseDetach)); err != nil {
		return nil, nil, err
	}
	<-s.done
	// The reader is finished and s.out is closed: first whatever was
	// buffered for consumption, then whatever the reader had to set
	// aside during the handshake — that is their emission order.
	var pending []SubBatch
	for b := range s.out {
		pending = append(pending, b)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pending = append(pending, s.discards...)
	if s.state == nil {
		if s.err != nil {
			return nil, pending, s.err
		}
		return nil, pending, fmt.Errorf("federation: detach returned no state")
	}
	return s.state, pending, nil
}

// Cancel aborts the subscription without asking for state.
func (s *Subscription) Cancel() error {
	s.closeOnce.Do(func() { close(s.closed) })
	if err := s.writeFrame(wire.MsgStreamClose, wire.EncodeStreamClose(s.id, wire.CloseCancel)); err != nil {
		return err
	}
	<-s.done
	return nil
}

// Wait blocks until the stream terminates and returns its final stats.
func (s *Subscription) Wait() (*stream.Stats, error) {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.stats, s.err
	}
	if s.stats == nil {
		return nil, fmt.Errorf("federation: subscription ended without stats")
	}
	return s.stats, nil
}

// Close tears the subscription down (abrupt; prefer Cancel/Detach).
// When a Detach handshake is already in flight — a merge loop closing
// its partitions while the caller detaches them — Close lets the
// handshake finish instead of severing the connection under it. On a
// dedicated connection the sever closes the socket; under a mux it
// must not (siblings share it) — instead the server is asked to cancel
// the stream best-effort and the subscription is cut loose from the
// demultiplexer.
func (s *Subscription) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	s.mu.Lock()
	detaching := s.detaching
	s.mu.Unlock()
	if !detaching {
		if s.mx != nil {
			_ = s.mx.writeRaw(wire.MsgStreamClose, wire.EncodeStreamClose(s.id, wire.CloseCancel))
			s.mx.severSub(s.id)
		} else {
			s.conn.Close()
		}
	}
	<-s.done
}

// Subscribe implements StreamTransport for TCP: each subscription runs
// on its own connection, so request/response traffic never interleaves
// with stream frames. The dial and the subscribe/ack handshake run
// under the default timeouts (see DialOpts).
func (t *TCP) Subscribe(sub wire.StreamSub) (*Subscription, error) {
	return t.SubscribeContext(context.Background(), sub, DialOpts{})
}

// SubscribeContext is Subscribe with a caller-supplied context and
// network budgets: the per-subscription dial respects ctx and
// opts.ConnectTimeout, and the subscribe/ack exchange runs under
// opts.HandshakeTimeout. Budgets that run out surface as *TimeoutError.
func (t *TCP) SubscribeContext(ctx context.Context, sub wire.StreamSub, opts DialOpts) (*Subscription, error) {
	opts = opts.withDefaults()
	conn, err := dialConn(ctx, t.addr, opts)
	if err != nil {
		return nil, err
	}
	return subscribeConnTimeout(conn, sub, opts.HandshakeTimeout)
}

// Subscribe implements StreamTransport for InProc: the subscription runs
// real protocol bytes through an in-memory pipe served by the same
// server code path a TCP subscription hits, so the two transports cannot
// diverge. The transport's shared expression cache spans subscriptions,
// like a TCP server's does.
func (t *InProc) Subscribe(sub wire.StreamSub) (*Subscription, error) {
	cli, srv := net.Pipe()
	go func() { _ = server.ServeConnCached(t.prov, srv, t.exprCache()) }()
	return SubscribeConn(cli, sub)
}
