package federation

import (
	"testing"

	"nexus/internal/core"
	"nexus/internal/datagen"
	"nexus/internal/engines/graph"
	"nexus/internal/engines/linalg"
	"nexus/internal/engines/relational"
	"nexus/internal/expr"
	"nexus/internal/planner"
	"nexus/internal/provider"
	"nexus/internal/server"
	"nexus/internal/table"
)

// twoSiteSetup spreads the star schema across two relational providers:
// site A holds the fact table, site B the dimensions. It also returns a
// single-engine oracle holding everything.
func twoSiteSetup(t *testing.T, rows int) (a, b *relational.Engine, oracle *relational.Engine, reg *provider.Registry) {
	t.Helper()
	sales := datagen.Sales(1, rows, 100, 30)
	customers := datagen.Customers(2, 100)
	a = relational.New("siteA")
	b = relational.New("siteB")
	oracle = relational.New("oracle")
	if err := a.Store("sales", sales); err != nil {
		t.Fatal(err)
	}
	if err := b.Store("customers", customers); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Store("sales", sales); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Store("customers", customers); err != nil {
		t.Fatal(err)
	}
	reg = provider.NewRegistry()
	if err := reg.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(b); err != nil {
		t.Fatal(err)
	}
	return a, b, oracle, reg
}

// crossSitePlan builds: sales ⋈ customers, filter, aggregate by segment.
func crossSitePlan(t *testing.T, reg *provider.Registry) core.Node {
	t.Helper()
	_, salesSchema, _ := reg.FindDataset("sales")
	_, custSchema, _ := reg.FindDataset("customers")
	ss, err := core.NewScan("sales", salesSchema)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := core.NewScan("customers", custSchema)
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFilter(ss, expr.Gt(expr.Column("qty"), expr.CInt(3)))
	if err != nil {
		t.Fatal(err)
	}
	j, err := core.NewJoin(f, cs, core.JoinInner, []string{"cust_id"}, []string{"cust_id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := core.NewGroupAgg(j, []string{"segment"}, []core.AggSpec{
		{Func: core.AggSum, Arg: expr.Mul(expr.Column("price"), expr.Column("qty")), As: "rev"},
		{Func: core.AggCount, As: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ga
}

func TestFederatedJoinInProcBothModes(t *testing.T) {
	a, b, oracle, reg := twoSiteSetup(t, 3000)
	_ = a
	_ = b
	plan := crossSitePlan(t, reg)
	opt, err := planner.Optimize(plan, planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pp, err := planner.Partition(opt, reg, planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Fragments) < 2 {
		t.Fatalf("expected a multi-fragment plan, got %d fragments", len(pp.Fragments))
	}
	coord := NewCoordinator(NewInProc(a), NewInProc(b))

	want, err := oracle.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}

	direct, md, err := coord.Run(pp, ModeDirect)
	if err != nil {
		t.Fatal(err)
	}
	routed, mr, err := coord.Run(pp, ModeRouted)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualUnordered(direct, want) || !table.EqualUnordered(routed, want) {
		t.Fatal("federated results differ from single-engine oracle")
	}

	// The whole point: direct mode moves zero intermediate bytes through
	// the client; routed mode moves them all.
	if md.IntermediateViaClient != 0 {
		t.Fatalf("direct mode moved %d intermediate bytes via client", md.IntermediateViaClient)
	}
	if mr.IntermediateViaClient == 0 {
		t.Fatal("routed mode should move intermediates via client")
	}
	if md.PeerBytes == 0 {
		t.Fatal("direct mode should move bytes peer-to-peer")
	}
	if mr.ClientBytesIn <= md.ClientBytesIn {
		t.Fatalf("routed mode should receive more at the client (routed %d vs direct %d)", mr.ClientBytesIn, md.ClientBytesIn)
	}
}

func TestFederatedJoinOverTCP(t *testing.T) {
	a, b, oracle, reg := twoSiteSetup(t, 1500)
	sa, err := server.Serve(a, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := server.Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	sa.Logf = t.Logf
	sb.Logf = t.Logf

	ta, err := DialTCP(sa.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := DialTCP(sb.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	if ta.ProviderName() != "siteA" || tb.ProviderName() != "siteB" {
		t.Fatalf("hello exchange returned %q and %q", ta.ProviderName(), tb.ProviderName())
	}
	if !ta.Capabilities().Supports(core.KJoin) {
		t.Fatal("capabilities lost in hello exchange")
	}

	plan := crossSitePlan(t, reg)
	opt, err := planner.Optimize(plan, planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pp, err := planner.Partition(opt, reg, planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(ta, tb)

	want, err := oracle.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeDirect, ModeRouted} {
		got, m, err := coord.Run(pp, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !table.EqualUnordered(got, want) {
			t.Fatalf("%v: result differs from oracle", mode)
		}
		if mode == ModeDirect && m.IntermediateViaClient != 0 {
			t.Fatalf("direct over TCP moved %d bytes via client", m.IntermediateViaClient)
		}
		if mode == ModeRouted && m.IntermediateViaClient == 0 {
			t.Fatal("routed over TCP moved no bytes via client")
		}
	}
}

func TestTCPServerRejectsBadPlan(t *testing.T) {
	e := relational.New("r")
	if err := e.Store("sales", datagen.Sales(3, 100, 10, 5)); err != nil {
		t.Fatal(err)
	}
	s, err := server.Serve(e, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Logf = t.Logf
	tr, err := DialTCP(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// A scan of a dataset the server does not host must produce a server
	// error, not a broken connection.
	missing, _ := core.NewScan("nope", datagen.SalesSchema())
	if _, err := tr.Execute(missing, nil); err == nil {
		t.Fatal("expected execution error for unknown dataset")
	}
	// The connection must remain usable afterwards.
	ok, _ := core.NewScan("sales", datagen.SalesSchema())
	res, err := tr.Execute(ok, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 100 {
		t.Fatalf("got %d rows", res.NumRows())
	}
}

func TestTCPStoreAndDrop(t *testing.T) {
	e := relational.New("r")
	s, err := server.Serve(e, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Logf = t.Logf
	tr, err := DialTCP(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	tab := datagen.Customers(4, 25)
	var m Metrics
	if err := tr.Store("c", tab, &m); err != nil {
		t.Fatal(err)
	}
	if m.ClientBytesOut == 0 {
		t.Fatal("store bytes not accounted")
	}
	got, ok := e.Dataset("c")
	if !ok || got.NumRows() != 25 {
		t.Fatal("store did not reach the provider")
	}
	tr.Drop("c", &m)
	if _, ok := e.Dataset("c"); ok {
		t.Fatal("drop did not remove the dataset")
	}
}

// Federated PageRank: edges live on a relational site; the planner ships
// them to the graph engine which runs the native kernel.
func TestFederatedPageRankKernelRouting(t *testing.T) {
	const n = 100
	edges := datagen.UniformGraph(5, n, 400)
	rel := relational.New("rel")
	if err := rel.Store("edges", edges); err != nil {
		t.Fatal(err)
	}
	if err := rel.Store("vertices", graph.VerticesTable(n)); err != nil {
		t.Fatal(err)
	}
	gr := graph.New("gr")
	la := linalg.New("la")
	reg := provider.NewRegistry()
	for _, p := range []provider.Provider{rel, gr, la} {
		if err := reg.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := graph.PageRankPlan("edges", datagen.EdgeSchema(), "vertices", graph.VerticesSchema(), n, 0.85, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := planner.Partition(plan, reg, planner.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pp.Root().Provider != "gr" {
		t.Fatalf("pagerank routed to %s", pp.Root().Provider)
	}
	coord := NewCoordinator(NewInProc(rel), NewInProc(gr), NewInProc(la))
	got, m, err := coord.Run(pp, ModeDirect)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != n {
		t.Fatalf("pagerank produced %d rows", got.NumRows())
	}
	if gr.KernelCalls() == 0 {
		t.Fatal("native kernel not used after federated routing")
	}
	if m.IntermediateViaClient != 0 {
		t.Fatal("dataset shipping crossed the client in direct mode")
	}
	// Cleanup must remove the shipped datasets from the graph engine.
	if _, ok := gr.Dataset("edges"); ok {
		t.Fatal("shipped edges not cleaned up")
	}
}
