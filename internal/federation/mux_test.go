package federation

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"nexus/internal/core"
	"nexus/internal/engines/relational"
	"nexus/internal/server"
	"nexus/internal/stream"
	"nexus/internal/table"
	"nexus/internal/value"
	"nexus/internal/wire"
)

// muxServer starts one TCP server hosting the events dataset and
// returns it (the mux tests all multiplex against a single server).
func muxServer(t *testing.T, events *table.Table) *server.Server {
	t.Helper()
	eng := relational.New("muxsrv")
	if err := eng.Store("events", events); err != nil {
		t.Fatal(err)
	}
	srv, err := server.Serve(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	t.Cleanup(srv.Close)
	return srv
}

// muxEventsSub builds the standard dataset-replay subscription the mux
// tests open many copies of.
func muxEventsSub(t *testing.T, events *table.Table, pk pipelineKind, credit uint32) wire.StreamSub {
	t.Helper()
	sp, err := pk.build(stream.NewReplay(events, "ts")).Spec()
	if err != nil {
		t.Fatal(err)
	}
	return wire.StreamSub{
		SourceKind: wire.StreamSrcDataset,
		Dataset:    "events", TimeCol: "ts",
		Spec:   sp,
		Credit: credit,
	}
}

// canonRows renders a table as sorted canonical row encodings without a
// testing.T, so concurrent drain goroutines can use it.
func canonRows(tab *table.Table) []string {
	rows := make([]string, tab.NumRows())
	var buf []byte
	for i := 0; i < tab.NumRows(); i++ {
		buf = buf[:0]
		for c := 0; c < tab.NumCols(); c++ {
			buf = value.AppendKey(buf, tab.Value(i, c))
		}
		rows[i] = string(buf)
	}
	sortStrings(rows)
	return rows
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// drainRows consumes a subscription to its end and returns its sorted
// canonical rows (goroutine-safe: no testing.T).
func drainRows(s *Subscription) ([]string, error) {
	collect := stream.NewCollect(s.OutputSchema())
	for b := range s.Batches() {
		if b.Table == nil {
			continue
		}
		if err := collect.Emit(b.Table); err != nil {
			return nil, err
		}
	}
	if _, err := s.Wait(); err != nil {
		return nil, err
	}
	out, err := collect.Table()
	if err != nil {
		return nil, err
	}
	return canonRows(out), nil
}

// TestMuxManySubsByteIdentical is the acceptance differential: many
// subscriptions multiplexed over ONE TCP connection must each produce
// windows byte-identical to a subscription running on its own dedicated
// connection (256 subscriptions; 64 under -short).
func TestMuxManySubsByteIdentical(t *testing.T) {
	n := 256
	if testing.Short() {
		n = 64
	}
	events := evTable(41, 1200, 6)
	srv := muxServer(t, events)
	pk := diffPipelines()[0] // tumbling aggregate

	// Baseline: the existing one-connection-per-subscription transport.
	tcp, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tcp.Close)
	base, err := tcp.Subscribe(muxEventsSub(t, events, pk, 8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := drainRows(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline produced no rows; differential is vacuous")
	}

	mx, err := DialMux(srv.Addr(), DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mx.Close)

	subs := make([]*Subscription, n)
	for i := range subs {
		s, err := mx.Subscribe(muxEventsSub(t, events, pk, 4))
		if err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
		subs[i] = s
	}
	got := make([][]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = drainRows(subs[i])
		}(i)
	}
	wg.Wait()
	for i := range subs {
		if errs[i] != nil {
			t.Fatalf("mux subscription %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("mux subscription %d differs from the dedicated-connection baseline (%d rows vs %d)", i, len(got[i]), len(want))
		}
	}
}

// TestMuxStalledSiblingIsolation proves per-stream credit independence:
// a subscription whose consumer reads NOTHING (credit exhausted, server
// stalled on it) must not stall a sibling sharing the connection — and
// once finally drained, the stalled stream is complete and correct too.
func TestMuxStalledSiblingIsolation(t *testing.T) {
	events := evTable(43, 1000, 6)
	srv := muxServer(t, events)
	pk := diffPipelines()[0]

	tcp, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tcp.Close)
	base, err := tcp.Subscribe(muxEventsSub(t, events, pk, 8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := drainRows(base)
	if err != nil {
		t.Fatal(err)
	}

	mx, err := DialMux(srv.Addr(), DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mx.Close)

	// The stalled sibling: credit 1, nobody reading. The server emits
	// one batch and then blocks on credit for this stream only.
	slow, err := mx.Subscribe(muxEventsSub(t, events, pk, 1))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := mx.Subscribe(muxEventsSub(t, events, pk, 8))
	if err != nil {
		t.Fatal(err)
	}

	type res struct {
		rows []string
		err  error
	}
	fastDone := make(chan res, 1)
	go func() {
		rows, err := drainRows(fast)
		fastDone <- res{rows, err}
	}()
	select {
	case r := <-fastDone:
		if r.err != nil {
			t.Fatalf("fast sibling failed: %v", r.err)
		}
		if !reflect.DeepEqual(r.rows, want) {
			t.Fatal("fast sibling differs from baseline while sibling stalled")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("fast sibling blocked behind a stalled stream: per-stream credit is not isolated")
	}

	// Now drain the stalled stream; nothing was lost while it waited.
	rows, err := drainRows(slow)
	if err != nil {
		t.Fatalf("stalled stream failed after resume: %v", err)
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatal("stalled stream differs from baseline after late drain")
	}
}

// TestMuxWatermarkBurstDoesNotOverflow regresses an inbox-overflow bug:
// watermark-only progress frames are not credit-bound (the server sends
// one per micro-batch), so a window spanning many micro-batches could
// flood a stalled stream's inbox with watermarks until the first
// must-deliver batch found it full and poisoned the whole mux. The fix
// caps watermarks to a dedicated slack (dropping the rest) so the
// credit-bound reserve is always free.
func TestMuxWatermarkBurstDoesNotOverflow(t *testing.T) {
	events := evTable(47, 4000, 0)
	srv := muxServer(t, events)
	// ~125 micro-batches — and as many watermark frames — per window:
	// far more than any inbox holds.
	burst := pipelineKind{"wmburst", 0, func(src stream.Source) *stream.Builder {
		return stream.NewBuilder(src).WithBatchSize(4).
			Aggregate(core.StreamWindow{Kind: core.WindowTumbling, Size: 500, Slide: 500},
				[]string{"k"}, []core.AggSpec{{Func: core.AggCount, As: "n"}})
	}}

	tcp, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tcp.Close)
	base, err := tcp.Subscribe(muxEventsSub(t, events, burst, 8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := drainRows(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline produced no rows; regression is vacuous")
	}

	mx, err := DialMux(srv.Addr(), DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mx.Close)

	// The victim: credit 1 and nobody reading, so the watermark burst
	// arrives while its inbox has no consumer keeping up.
	held, err := mx.Subscribe(muxEventsSub(t, events, burst, 1))
	if err != nil {
		t.Fatal(err)
	}
	sib, err := mx.Subscribe(muxEventsSub(t, events, burst, 8))
	if err != nil {
		t.Fatal(err)
	}

	type res struct {
		rows []string
		err  error
	}
	sibDone := make(chan res, 1)
	go func() {
		rows, err := drainRows(sib)
		sibDone <- res{rows, err}
	}()
	select {
	case r := <-sibDone:
		if r.err != nil {
			t.Fatalf("sibling failed during watermark burst: %v", r.err)
		}
		if !reflect.DeepEqual(r.rows, want) {
			t.Fatal("sibling differs from baseline during watermark burst")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sibling blocked during watermark burst")
	}

	// The held stream must survive its own burst: late-drained it is
	// complete and correct, and the mux was never poisoned.
	rows, err := drainRows(held)
	if err != nil {
		t.Fatalf("held stream failed after watermark burst: %v", err)
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatal("held stream differs from baseline after watermark burst")
	}
	if err := mx.Err(); err != nil {
		t.Fatalf("mux poisoned by watermark burst: %v", err)
	}
}

// TestMuxInterleavedSoak mixes 64 concurrent subscriptions with
// interleaved Execute and Append calls over ONE multiplexed connection
// (run under -race in CI). Every subscription must match the dedicated
// baseline and every call must return the right answer.
func TestMuxInterleavedSoak(t *testing.T) {
	const nSubs = 64
	events := evTable(47, 800, 6)
	srv := muxServer(t, events)
	pk := diffPipelines()[2] // count windows: no lateness, quick

	tcp, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tcp.Close)
	base, err := tcp.Subscribe(muxEventsSub(t, events, pk, 8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := drainRows(base)
	if err != nil {
		t.Fatal(err)
	}

	mx, err := DialMux(srv.Addr(), DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mx.Close)

	scan, err := core.NewScan("events", evSchema())
	if err != nil {
		t.Fatal(err)
	}
	wantScan := int64(events.NumRows())

	var wg sync.WaitGroup
	errCh := make(chan error, nSubs+8)

	for i := 0; i < nSubs; i++ {
		s, err := mx.Subscribe(muxEventsSub(t, events, pk, 4))
		if err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, s *Subscription) {
			defer wg.Done()
			rows, err := drainRows(s)
			if err != nil {
				errCh <- fmt.Errorf("sub %d: %w", i, err)
				return
			}
			if !reflect.DeepEqual(rows, want) {
				errCh <- fmt.Errorf("sub %d differs from baseline", i)
			}
		}(i, s)
	}
	// Interleaved queries on the same connection.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tab, err := mx.Execute(scan, nil)
				if err != nil {
					errCh <- fmt.Errorf("execute (worker %d, call %d): %w", g, i, err)
					return
				}
				if int64(tab.NumRows()) != wantScan {
					errCh <- fmt.Errorf("execute returned %d rows, want %d", tab.NumRows(), wantScan)
					return
				}
			}
		}(g)
	}
	// Interleaved appends to a separate sink dataset.
	chunk := evTable(48, 10, 0)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if err := mx.Append("soak_sink", chunk, nil); err != nil {
					errCh <- fmt.Errorf("append (worker %d, call %d): %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// All 30 appends of 10 rows landed exactly once.
	sink, err := mx.Execute(mustScan(t, "soak_sink", evSchema()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sink.NumRows() != 300 {
		t.Fatalf("sink has %d rows after 30 appends of 10, want 300", sink.NumRows())
	}
}

func mustScan(t *testing.T, name string, sch interface{ Len() int }) core.Node {
	t.Helper()
	n, err := core.NewScan(name, evSchema())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// silentServer accepts connections, answers the hello handshake, and
// then reads frames forever without ever replying — the hung-server
// scenario the per-request deadlines exist for.
func silentServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, _, _, err := wire.ReadFrame(conn); err != nil { // hello
					return
				}
				if _, err := wire.WriteFrame(conn, wire.MsgHelloAck, wire.EncodeHelloAck(wire.HelloInfo{Name: "silent"})); err != nil {
					return
				}
				for { // swallow every request, answer nothing
					if _, _, _, err := wire.ReadFrame(conn); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestTCPRequestTimeoutSilentServer is the regression for the client
// hang: the old code cleared ALL deadlines after the handshake, so a
// server that accepted a request and never answered hung Execute/call
// forever. Now the exchange is bounded by RequestTimeout, fails with a
// typed *TimeoutError, and poisons the connection.
func TestTCPRequestTimeoutSilentServer(t *testing.T) {
	addr := silentServer(t)
	tr, err := DialTCPContext(t.Context(), addr, DialOpts{RequestTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatalf("handshake should succeed against the silent server: %v", err)
	}
	t.Cleanup(tr.Close)

	start := time.Now()
	err = tr.Store("x", evTable(1, 4, 0), nil)
	if err == nil {
		t.Fatal("store against a silent server succeeded")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) || te.Op != "store" {
		t.Fatalf("want *TimeoutError{Op: store}, got %#v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed out only after %v — the deadline did not bound the exchange", elapsed)
	}

	// The connection is poisoned: a late reply would desynchronize the
	// framing, so later calls must fail fast instead of reusing it.
	start = time.Now()
	if err := tr.Store("y", evTable(1, 4, 0), nil); err == nil {
		t.Fatal("second store on a poisoned connection succeeded")
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("second store waited on the network instead of failing fast")
	}
}

// TestMuxRequestTimeoutSilentServer: the same hang bound on the
// multiplexed transport. A timed-out call must poison the whole mux —
// FIFO correlation cannot skip a late reply.
func TestMuxRequestTimeoutSilentServer(t *testing.T) {
	addr := silentServer(t)
	mx, err := DialMuxContext(t.Context(), addr, DialOpts{RequestTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatalf("handshake should succeed against the silent server: %v", err)
	}
	t.Cleanup(mx.Close)

	err = mx.Store("x", evTable(1, 4, 0), nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if mx.Err() == nil {
		t.Fatal("a timed-out call must poison the mux")
	}
	if err := mx.Store("y", evTable(1, 4, 0), nil); err == nil {
		t.Fatal("store on a poisoned mux succeeded")
	}
}

// TestSubscribeNoLeakOnBadSubAck: a server that answers the subscribe
// handshake with garbage must leave no open client connection behind
// (the mid-handshake error paths each close the dialed socket).
func TestSubscribeNoLeakOnBadSubAck(t *testing.T) {
	cases := []struct {
		name  string
		reply func(conn net.Conn) error
	}{
		{"wrong-frame", func(conn net.Conn) error {
			_, err := wire.WriteFrame(conn, wire.MsgResult, []byte{9, 9})
			return err
		}},
		{"corrupt-ack", func(conn net.Conn) error {
			_, err := wire.WriteFrame(conn, wire.MsgSubAck, []byte{1})
			return err
		}},
		{"wrong-id-ack", func(conn net.Conn) error {
			var e wire.Encoder
			e.U64(99999) // not the requested subscription ID
			_, err := wire.WriteFrame(conn, wire.MsgSubAck, e.Bytes())
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			sawClose := make(chan error, 1)
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					sawClose <- err
					return
				}
				defer conn.Close()
				if _, _, _, err := wire.ReadFrame(conn); err != nil { // the subscribe
					sawClose <- err
					return
				}
				if err := tc.reply(conn); err != nil {
					sawClose <- err
					return
				}
				// If the client closed its side, this read errors promptly.
				_, _, _, err = wire.ReadFrame(conn)
				sawClose <- err
			}()

			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			events := evTable(3, 50, 0)
			sub := muxEventsSub(t, events, diffPipelines()[0], 4)
			sub.ID = 7
			if _, err := subscribeConnTimeout(conn, sub, 2*time.Second); err == nil {
				t.Fatal("subscribe succeeded against a broken handshake")
			}
			select {
			case err := <-sawClose:
				if err == nil {
					t.Fatal("server read succeeded after the failed handshake; expected the client socket closed")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("client connection leaked: server never saw it close")
			}
		})
	}
}

// TestAdmissionSubscriptionQuota: an over-quota tenant's new
// subscription is refused with the typed wire error while its in-quota
// streams — and other tenants — keep streaming; finished streams return
// their slot.
func TestAdmissionSubscriptionQuota(t *testing.T) {
	events := evTable(53, 600, 6)
	srv := muxServer(t, events)
	srv.SetAdmission(server.AdmissionConfig{
		Default: server.TenantQuota{MaxSubscriptions: 4},
		Tenants: map[string]server.TenantQuota{"gold": {MaxSubscriptions: 2}},
	})
	pk := diffPipelines()[0]

	gold, err := DialMux(srv.Addr(), DialOpts{Tenant: "gold"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gold.Close)

	// Two in-quota subscriptions, held open by withheld credit.
	s1, err := gold.Subscribe(muxEventsSub(t, events, pk, 1))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := gold.Subscribe(muxEventsSub(t, events, pk, 1))
	if err != nil {
		t.Fatal(err)
	}

	// The third is over quota: typed refusal, not a generic error.
	_, err = gold.Subscribe(muxEventsSub(t, events, pk, 1))
	if err == nil {
		t.Fatal("over-quota subscribe admitted")
	}
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("want ErrRefused, got %v", err)
	}
	var re *RefusedError
	if !errors.As(err, &re) || !re.OverQuota() {
		t.Fatalf("want *RefusedError{OverQuota}, got %#v", err)
	}

	// A different tenant is unaffected by gold's quota and streams to
	// completion while gold is at its cap.
	other, err := DialMux(srv.Addr(), DialOpts{Tenant: "bronze"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(other.Close)
	b1, err := other.Subscribe(muxEventsSub(t, events, pk, 8))
	if err != nil {
		t.Fatalf("in-quota tenant refused while another tenant is over quota: %v", err)
	}
	if rows, err := drainRows(b1); err != nil || len(rows) == 0 {
		t.Fatalf("in-quota tenant did not stream: rows=%d err=%v", len(rows), err)
	}

	// Gold's held streams still complete (quota never touches admitted
	// streams), and a finished stream returns its slot.
	if _, err := drainRows(s1); err != nil {
		t.Fatal(err)
	}
	admitted := false
	for i := 0; i < 50; i++ { // slot release races the terminal frame
		if s4, err := gold.Subscribe(muxEventsSub(t, events, pk, 8)); err == nil {
			if _, err := drainRows(s4); err != nil {
				t.Fatal(err)
			}
			admitted = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !admitted {
		t.Fatal("slot not returned after a subscription completed")
	}
	if _, err := drainRows(s2); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionAppendQuota: append rows are charged against the
// tenant's token bucket; an exhausted bucket refuses with the typed
// error instead of failing the request generically.
func TestAdmissionAppendQuota(t *testing.T) {
	events := evTable(59, 50, 0)
	srv := muxServer(t, events)
	srv.SetAdmission(server.AdmissionConfig{
		Default: server.TenantQuota{AppendRowsPerSec: 1}, // burst 2
	})
	tr, err := DialTCPContext(t.Context(), srv.Addr(), DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)

	// First append is admitted (bucket positive) and overdraws it.
	if err := tr.Append("sink", evTable(60, 40, 0), nil); err != nil {
		t.Fatalf("first append refused: %v", err)
	}
	err = tr.Append("sink", evTable(61, 40, 0), nil)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("want ErrRefused for the over-budget append, got %v", err)
	}
	var re *RefusedError
	if !errors.As(err, &re) || !re.OverQuota() {
		t.Fatalf("want *RefusedError{OverQuota}, got %#v", err)
	}
}

// TestAdmissionScanQuota: executes are admitted optimistically and
// charged by result rows; the debt refuses the next query.
func TestAdmissionScanQuota(t *testing.T) {
	events := evTable(67, 500, 0)
	srv := muxServer(t, events)
	srv.SetAdmission(server.AdmissionConfig{
		Default: server.TenantQuota{ScanRowsPerSec: 1}, // burst 2
	})
	tr, err := DialTCPContext(t.Context(), srv.Addr(), DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	scan, err := core.NewScan("events", evSchema())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := tr.Execute(scan, nil); err != nil {
		t.Fatalf("first execute refused: %v", err)
	}
	_, err = tr.Execute(scan, nil)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("want ErrRefused for the over-budget execute, got %v", err)
	}
}

// TestAdmissionShedding: sustained credit stalls (slow consumers) push
// the windowed stall p99 over the configured bound, after which NEW
// subscriptions are shed with the typed error while the existing slow
// stream keeps running to completion.
func TestAdmissionShedding(t *testing.T) {
	events := evTable(71, 1500, 6)
	srv := muxServer(t, events)
	srv.SetAdmission(server.AdmissionConfig{
		ShedStallP99: time.Millisecond,
	})
	pk := diffPipelines()[0]

	mx, err := DialMux(srv.Addr(), DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mx.Close)

	// A deliberately slow consumer: credit 1, ~10ms between reads. Each
	// server-side emit stalls on credit for ~the read gap, well over the
	// 1ms shed bound.
	slow, err := mx.Subscribe(muxEventsSub(t, events, pk, 1))
	if err != nil {
		t.Fatal(err)
	}
	collect := stream.NewCollect(slow.OutputSchema())
	reads := 0
	for b := range slow.Batches() {
		if b.Table != nil {
			if err := collect.Emit(b.Table); err != nil {
				t.Fatal(err)
			}
		}
		reads++
		if reads >= 6 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The server is now shedding: a new subscription is refused typed.
	_, err = mx.Subscribe(muxEventsSub(t, events, pk, 8))
	if err == nil {
		t.Fatal("subscribe admitted while the server is shedding")
	}
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("want ErrRefused, got %v", err)
	}
	var re *RefusedError
	if !errors.As(err, &re) || !re.Shedding() {
		t.Fatalf("want *RefusedError{Shedding}, got %#v", err)
	}

	// The existing stream is untouched by shedding and completes.
	for b := range slow.Batches() {
		if b.Table != nil {
			if err := collect.Emit(b.Table); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := slow.Wait(); err != nil {
		t.Fatalf("existing stream killed by shedding: %v", err)
	}
}
