package federation

import (
	"fmt"
	"math"

	"nexus/internal/stream"
	"nexus/internal/table"
)

// Watermark-ordered merge of partitioned subscriptions. Each partition
// emits its windows in ascending (window_end, window_start) order, and a
// partition whose watermark has passed a window's end can never emit
// that window again — those two invariants let the coordinator release a
// window as soon as every partition either delivered it, watermarked
// past it, or finished, without buffering whole streams.

// winKey orders windows by (end, start) — ascending emission order for
// every window kind.
type winKey struct{ end, start int64 }

func (a winKey) less(b winKey) bool {
	if a.end != b.end {
		return a.end < b.end
	}
	return a.start < b.start
}

// mergePart is one partition's merge state.
type mergePart struct {
	buf       []SubBatch // pending windows, ascending winKey
	watermark int64
	done      bool
}

// batchKey reads a windowed result's bounds from its first row. Every
// row in one emitted batch shares them.
func batchKey(t *table.Table) (winKey, error) {
	startIdx := t.Schema().IndexOf(stream.WindowStartCol)
	endIdx := t.Schema().IndexOf(stream.WindowEndCol)
	if startIdx < 0 || endIdx < 0 || t.NumRows() == 0 {
		return winKey{}, fmt.Errorf("federation: merge needs windowed results with %s/%s columns", stream.WindowStartCol, stream.WindowEndCol)
	}
	return winKey{start: t.Col(startIdx).Ints()[0], end: t.Col(endIdx).Ints()[0]}, nil
}

// MergeWindows consumes N partitioned subscriptions and delivers merged
// window results to emit in global watermark order: ascending by
// (window_end, window_start), with same-window results from different
// partitions concatenated in partition index order. It returns the
// summed stats of all partitions (Watermark is the minimum) once every
// partition ends. On error it cancels the remaining subscriptions.
func MergeWindows(subs []*Subscription, emit func(*table.Table) error) (stream.Stats, error) {
	var total stream.Stats
	total.Watermark = math.MaxInt64

	type tagged struct {
		part int
		b    SubBatch
		ok   bool
	}
	agg := make(chan tagged)
	quit := make(chan struct{})
	for i, s := range subs {
		go func(i int, s *Subscription) {
			for b := range s.Batches() {
				select {
				case agg <- tagged{part: i, b: b, ok: true}:
				case <-quit:
					return
				}
			}
			select {
			case agg <- tagged{part: i}:
			case <-quit:
			}
		}(i, s)
	}
	cancelAll := func() {
		// Release the forwarders first — closing quit lets them exit
		// without a drain goroutine to leak — then tear the
		// subscriptions down.
		close(quit)
		for _, s := range subs {
			s.Close()
		}
	}

	parts := make([]mergePart, len(subs))
	for i := range parts {
		parts[i].watermark = math.MinInt64
	}

	// flush releases every window no partition can precede anymore.
	flush := func() error {
		for {
			// Find the minimum pending window across partition heads.
			lo := winKey{}
			have := false
			for i := range parts {
				if len(parts[i].buf) > 0 {
					k, err := batchKey(parts[i].buf[0].Table)
					if err != nil {
						return err
					}
					if !have || k.less(lo) {
						lo, have = k, true
					}
				}
			}
			if !have {
				return nil
			}
			// Each partition emits windows in strictly ascending key order,
			// so a partition with a buffered head can only produce windows
			// ≥ its head ≥ lo; a partition whose watermark passed lo.end
			// has already emitted everything ending at or before it; a done
			// partition produces nothing. Only a live, empty, behind-the-
			// watermark partition can still precede lo — then wait.
			for i := range parts {
				p := &parts[i]
				if p.done || p.watermark >= lo.end || len(p.buf) > 0 {
					continue
				}
				return nil
			}
			// Emit lo: concat equal-key heads in partition index order.
			var pieces []*table.Table
			for i := range parts {
				p := &parts[i]
				if len(p.buf) == 0 {
					continue
				}
				k, err := batchKey(p.buf[0].Table)
				if err != nil {
					return err
				}
				if k == lo {
					pieces = append(pieces, p.buf[0].Table)
					p.buf = p.buf[1:]
				}
			}
			merged, err := pieces[0].Concat(pieces[1:]...)
			if err != nil {
				return err
			}
			if err := emit(merged); err != nil {
				return err
			}
		}
	}

	live := len(subs)
	for live > 0 {
		m := <-agg
		p := &parts[m.part]
		if !m.ok {
			p.done = true
			live--
			stats, err := subs[m.part].Wait()
			if err != nil {
				// A detached partition terminates with window state instead
				// of stats: its delivered-but-unmerged windows still flush
				// below, and the caller collects the state for resumption.
				if subs[m.part].State() == nil {
					cancelAll()
					return total, fmt.Errorf("federation: partition %d: %w", m.part, err)
				}
			} else {
				total.Events += stats.Events
				total.Batches += stats.Batches
				total.Windows += stats.Windows
				total.Late += stats.Late
				total.OutRows += stats.OutRows
				if stats.Watermark < total.Watermark {
					total.Watermark = stats.Watermark
				}
			}
		} else {
			if m.b.Watermark > p.watermark {
				p.watermark = m.b.Watermark
			}
			if m.b.Table != nil {
				p.buf = append(p.buf, m.b)
			}
		}
		if err := flush(); err != nil {
			cancelAll()
			return total, err
		}
	}
	// All partitions done: whatever remains is safe to release in order.
	if err := flush(); err != nil {
		return total, err
	}
	return total, nil
}

// MergeArrival fans non-windowed partitioned results in as they arrive
// (stateless pipelines have no window order to preserve). Stats sum as
// in MergeWindows.
func MergeArrival(subs []*Subscription, emit func(*table.Table) error) (stream.Stats, error) {
	var total stream.Stats
	total.Watermark = math.MaxInt64

	type tagged struct {
		part int
		b    SubBatch
		ok   bool
	}
	agg := make(chan tagged)
	quit := make(chan struct{})
	for i, s := range subs {
		go func(i int, s *Subscription) {
			for b := range s.Batches() {
				select {
				case agg <- tagged{part: i, b: b, ok: true}:
				case <-quit:
					return
				}
			}
			select {
			case agg <- tagged{part: i}:
			case <-quit:
			}
		}(i, s)
	}
	cancelAll := func() {
		// Release the forwarders first — closing quit lets them exit
		// without a drain goroutine to leak — then tear the
		// subscriptions down.
		close(quit)
		for _, s := range subs {
			s.Close()
		}
	}
	live := len(subs)
	for live > 0 {
		m := <-agg
		if !m.ok {
			live--
			stats, err := subs[m.part].Wait()
			if err != nil {
				if subs[m.part].State() == nil {
					cancelAll()
					return total, fmt.Errorf("federation: partition %d: %w", m.part, err)
				}
				continue // detached partition: state collected by the caller
			}
			total.Events += stats.Events
			total.Batches += stats.Batches
			total.Windows += stats.Windows
			total.Late += stats.Late
			total.OutRows += stats.OutRows
			if stats.Watermark < total.Watermark {
				total.Watermark = stats.Watermark
			}
			continue
		}
		if m.b.Table == nil {
			continue
		}
		if err := emit(m.b.Table); err != nil {
			cancelAll()
			return total, err
		}
	}
	return total, nil
}
