package federation

import (
	"net"
	"testing"
	"time"

	"nexus/internal/engines/relational"
	"nexus/internal/netfault"
	"nexus/internal/obs/trace"
	"nexus/internal/server"
	"nexus/internal/stream"
	"nexus/internal/wire"
)

// netfaultServer starts a TCP server hosting the events dataset and
// returns its address.
func netfaultServer(t *testing.T) string {
	t.Helper()
	eng := relational.New("nf")
	if err := eng.Store("events", evTable(5, 400, 8)); err != nil {
		t.Fatal(err)
	}
	srv, err := server.Serve(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	t.Cleanup(srv.Close)
	return srv.Addr()
}

// netfaultSub builds a traced dataset subscription spec (tumbling
// windows over the shared events fixture — many output batches, so the
// client returns credit repeatedly and a write-side cut always lands).
func netfaultSub(t *testing.T, tc wire.TraceCtx) wire.StreamSub {
	t.Helper()
	sp, err := diffPipelines()[0].build(stream.NewReplay(evTable(5, 400, 8), "ts")).Spec()
	if err != nil {
		t.Fatal(err)
	}
	return wire.StreamSub{
		SourceKind: wire.StreamSrcDataset,
		Dataset:    "events", TimeCol: "ts",
		Spec:   sp,
		Credit: 1,
		Trace:  tc,
	}
}

// waitSubscribeSpan polls the local ring for this trace's
// client.subscribe span (the reader's deferred End races the output
// channel close, so the span can land just after Batches drains).
func waitSubscribeSpan(t *testing.T, id trace.TraceID) trace.SpanData {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got []trace.SpanData
		for _, sd := range trace.Default.TraceSpans(id) {
			if sd.Name == "client.subscribe" {
				got = append(got, sd)
			}
		}
		if len(got) == 1 {
			return got[0]
		}
		if len(got) > 1 {
			t.Fatalf("client.subscribe recorded %d times — span leaked into the ring", len(got))
		}
		if time.Now().After(deadline) {
			t.Fatalf("client.subscribe span never closed; trace has %v", trace.Default.TraceSpans(id))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubscribeTraceClosesOnSeveredTransport: a netfault cut mid-stream
// terminates the subscription AND closes its client span with error
// status — exactly once, parented under the caller's root, never left
// open or duplicated in the ring.
func TestSubscribeTraceClosesOnSeveredTransport(t *testing.T) {
	addr := netfaultServer(t)
	root := trace.Default.NewRoot("netfault.test")
	tc := traceToWire(root.Context())
	defer root.End(nil)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	faults := netfault.NewFaults(5)
	sub, err := SubscribeConn(faults.Wrap(conn), netfaultSub(t, tc))
	if err != nil {
		t.Fatalf("subscribe handshake: %v", err)
	}
	// Sever on the next client write: the first credit return after a
	// delivered batch cuts the socket, so the reader's next frame fails.
	faults.CutAfter(1)

	batches := 0
	for b := range sub.Batches() {
		if b.Table != nil {
			batches++
		}
	}
	if sub.Err() == nil {
		t.Fatalf("subscription survived a severed transport (%d batches)", batches)
	}
	if faults.Cuts.Load() == 0 {
		t.Fatal("fault schedule never cut the connection")
	}

	sd := waitSubscribeSpan(t, root.Context().TraceID)
	if sd.Error == "" {
		t.Fatalf("client.subscribe closed without error status: %+v", sd)
	}
	if sd.ParentID != root.Context().SpanID {
		t.Fatalf("client.subscribe parent = %d, want root %d", sd.ParentID, root.Context().SpanID)
	}
	if sd.TraceID != root.Context().TraceID.String() {
		t.Fatalf("client.subscribe trace = %s, want %s", sd.TraceID, root.Context().TraceID)
	}
}

// TestSubscribeTraceClosesOnHandshakeCut: the cut landing on the
// subscribe frame itself — before any ack — still ends the span with
// error status via the handshake cleanup path.
func TestSubscribeTraceClosesOnHandshakeCut(t *testing.T) {
	addr := netfaultServer(t)
	root := trace.Default.NewRoot("netfault.handshake")
	tc := traceToWire(root.Context())
	defer root.End(nil)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	faults := netfault.NewFaults(7)
	faults.CutAfter(1) // the subscribe frame is the first write
	if _, err := SubscribeConn(faults.Wrap(conn), netfaultSub(t, tc)); err == nil {
		t.Fatal("subscribe succeeded over a cut transport")
	}

	sd := waitSubscribeSpan(t, root.Context().TraceID)
	if sd.Error == "" {
		t.Fatalf("client.subscribe closed without error status: %+v", sd)
	}
}
