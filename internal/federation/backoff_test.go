package federation

import (
	"context"
	"testing"
	"time"
)

// TestBackoffGrowsAndCaps pins the schedule: each Next doubles from
// Base, jitter adds at most the Jitter fraction, and the cap applies
// before jitter — so the delay never exceeds Max*(1+Jitter).
func TestBackoffGrowsAndCaps(t *testing.T) {
	b := NewBackoff(42)
	b.Base = 10 * time.Millisecond
	b.Max = 80 * time.Millisecond
	b.Jitter = 0.2

	wantLo := []time.Duration{10, 20, 40, 80, 80, 80} // ms, pre-jitter
	for i, lo := range wantLo {
		lo *= time.Millisecond
		hi := time.Duration(float64(lo) * 1.2)
		d := b.Next()
		if d < lo || d > hi {
			t.Fatalf("Next #%d = %v, want [%v, %v]", i+1, d, lo, hi)
		}
	}
	if got := b.Attempts(); got != len(wantLo) {
		t.Fatalf("Attempts = %d, want %d", got, len(wantLo))
	}

	b.Reset()
	if got := b.Attempts(); got != 0 {
		t.Fatalf("Attempts after Reset = %d", got)
	}
	if d := b.Next(); d < 10*time.Millisecond || d > 12*time.Millisecond {
		t.Fatalf("Next after Reset = %v, want ~Base", d)
	}
}

// TestBackoffDeterministicSeed: the same seed yields the same jittered
// schedule — chaos runs replay exactly.
func TestBackoffDeterministicSeed(t *testing.T) {
	mk := func() []time.Duration {
		b := NewBackoff(7)
		b.Base, b.Max = time.Millisecond, 8*time.Millisecond
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, c := mk(), mk()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("delay #%d differs across identical seeds: %v vs %v", i, a[i], c[i])
		}
	}
}

// TestBackoffObserveResetsAfterHealthyPeriod: a connection that
// survived HealthyAfter resets the schedule; a shorter life does not;
// negative HealthyAfter disables the reset entirely.
func TestBackoffObserveResetsAfterHealthyPeriod(t *testing.T) {
	b := NewBackoff(1)
	b.Base = 10 * time.Millisecond
	b.Max = 80 * time.Millisecond
	b.HealthyAfter = time.Second

	b.Next()
	b.Next()
	b.Next() // schedule now at 80ms
	b.Observe(500 * time.Millisecond)
	if got := b.Attempts(); got != 3 {
		t.Fatalf("short life reset the schedule (attempts %d)", got)
	}
	b.Observe(time.Second)
	if got := b.Attempts(); got != 0 {
		t.Fatalf("healthy life did not reset the schedule (attempts %d)", got)
	}
	if d := b.Next(); d > 12*time.Millisecond {
		t.Fatalf("Next after healthy reset = %v, want ~Base", d)
	}

	b2 := NewBackoff(1)
	b2.HealthyAfter = -1
	b2.Next()
	b2.Observe(time.Hour)
	if got := b2.Attempts(); got != 1 {
		t.Fatalf("disabled reset still reset (attempts %d)", got)
	}
}

// TestBackoffWaitHonorsCancellation: a canceled context aborts the wait
// immediately instead of sleeping out the delay.
func TestBackoffWaitHonorsCancellation(t *testing.T) {
	b := NewBackoff(1)
	b.Base = 10 * time.Second // would stall the test if ignored
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := b.Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Wait slept %v past cancellation", elapsed)
	}
}
