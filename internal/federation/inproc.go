package federation

import (
	"fmt"
	"sync"

	"nexus/internal/core"
	"nexus/internal/engines/exec"
	"nexus/internal/provider"
	"nexus/internal/table"
	"nexus/internal/wire"
)

// InProc is an in-process transport: it calls the provider directly but
// runs every plan and table through the wire codec so that byte
// accounting matches what a socket transport would measure. Benchmarks
// use it to isolate protocol economics from kernel scheduling noise.
type InProc struct {
	prov provider.Provider

	// cache is shared by every stream subscription hosted through this
	// transport, matching the per-server cache a TCP server keeps.
	cacheOnce sync.Once
	cache     *exec.ExprCache
}

var _ Transport = (*InProc)(nil)

// NewInProc wraps a provider as an in-process transport.
func NewInProc(p provider.Provider) *InProc { return &InProc{prov: p} }

// exprCache returns the transport's shared compiled-expression cache.
func (t *InProc) exprCache() *exec.ExprCache {
	t.cacheOnce.Do(func() { t.cache = exec.NewExprCache() })
	return t.cache
}

// ProviderName implements Transport.
func (t *InProc) ProviderName() string { return t.prov.Name() }

// PeerAddr implements Transport (in-process peers are reached directly).
func (t *InProc) PeerAddr() string { return "" }

// Execute implements Transport.
func (t *InProc) Execute(plan core.Node, m *Metrics) (*table.Table, error) {
	planBytes := wire.EncodePlan(plan)
	// Round-trip the plan through the codec: the provider sees exactly
	// what a remote server would decode.
	decoded, err := wire.DecodePlan(planBytes)
	if err != nil {
		return nil, fmt.Errorf("inproc: plan codec: %w", err)
	}
	if m != nil {
		m.ClientBytesOut += int64(len(planBytes)) + frameOverhead
		m.RoundTrips++
	}
	res, err := t.prov.Execute(decoded)
	if err != nil {
		return nil, err
	}
	resBytes := wire.EncodeTable(res)
	if m != nil {
		m.ClientBytesIn += int64(len(resBytes)) + frameOverhead
	}
	out, err := wire.DecodeTable(resBytes)
	if err != nil {
		return nil, fmt.Errorf("inproc: result codec: %w", err)
	}
	return out, nil
}

// ExecuteTo implements Transport: the result moves provider→provider; the
// client pays only for the plan and a small ack.
func (t *InProc) ExecuteTo(plan core.Node, peer Transport, storeAs string, m *Metrics) error {
	peerIn, ok := peer.(*InProc)
	if !ok {
		return fmt.Errorf("inproc: peer transport is %T, want *InProc", peer)
	}
	planBytes := wire.EncodePlan(plan)
	decoded, err := wire.DecodePlan(planBytes)
	if err != nil {
		return fmt.Errorf("inproc: plan codec: %w", err)
	}
	if m != nil {
		m.ClientBytesOut += int64(len(planBytes)) + frameOverhead
		m.RoundTrips++
	}
	res, err := t.prov.Execute(decoded)
	if err != nil {
		return err
	}
	resBytes := wire.EncodeTable(res)
	shipped, err := wire.DecodeTable(resBytes)
	if err != nil {
		return fmt.Errorf("inproc: ship codec: %w", err)
	}
	if m != nil {
		m.PeerBytes += int64(len(resBytes)) + frameOverhead
		m.ClientBytesIn += ackBytes // the ack
	}
	return peerIn.prov.Store(storeAs, shipped)
}

// Store implements Transport.
func (t *InProc) Store(name string, tab *table.Table, m *Metrics) error {
	b := wire.EncodeStore(name, tab)
	if m != nil {
		m.ClientBytesOut += int64(len(b)) + frameOverhead
		m.ClientBytesIn += ackBytes
		m.RoundTrips++
	}
	decodedName, decoded, err := wire.DecodeStore(b)
	if err != nil {
		return fmt.Errorf("inproc: store codec: %w", err)
	}
	return t.prov.Store(decodedName, decoded)
}

// Drop implements Transport.
func (t *InProc) Drop(name string, m *Metrics) {
	if m != nil {
		m.ClientBytesOut += int64(len(name)) + frameOverhead
		m.ClientBytesIn += ackBytes
		m.RoundTrips++
	}
	t.prov.Drop(name)
}

// Framing constants mirrored from the wire message layer: 5 header bytes
// per frame, and an ack payload of id+rows+bytes (24) plus its frame.
const (
	frameOverhead = 5
	ackBytes      = 24 + frameOverhead
)
